#!/usr/bin/env python3
"""Validate Chrome trace-event JSON written by the telemetry layer.

The telemetry exporter (support/telemetry.hpp, --trace-out / LCLGRID_TRACE)
writes the trace-event format that chrome://tracing and Perfetto load: a
top-level object with a traceEvents array of "X" (complete) duration events
plus one "M" thread_name metadata event per thread. CI runs this over the
traces captured by scripts/bench_smoke.sh (BENCH_TRACE_DIR) so a malformed
exporter fails the push that broke it.

Checks per file:
  * the document parses and traceEvents is a non-empty array
  * every event has a string ph; "X" events carry a non-empty name,
    finite ts/dur >= 0, and integer pid/tid
  * any "B"/"E" begin/end events pair up per (pid, tid)
  * per thread, "X" events are laminar: sorted by start, each event either
    nests inside the enclosing open event or starts after it ends (the
    exporter emits one event per RAII scope, so overlap without nesting
    means corrupted timestamps)

Usage: check_trace_json.py [--expect NAME_PREFIX]... <file-or-directory>...
Directories are scanned (non-recursively) for *.trace.json (falling back
to *.json if no file matches). Each --expect requires at least one "X"
event whose name starts with the prefix, in each file. Exits non-zero
with one line per violation.
"""

import json
import math
import sys
from pathlib import Path


def finite_nonneg(value):
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value >= 0
    )


def integer(value):
    return isinstance(value, int) and not isinstance(value, bool)


def check_events(events, expects, errors):
    complete = []
    begin_depth = {}
    for index, event in enumerate(events):
        label = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{label}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            errors.append(f"{label}: missing ph")
            continue
        if phase in ("B", "E"):
            key = (event.get("pid"), event.get("tid"))
            depth = begin_depth.get(key, 0) + (1 if phase == "B" else -1)
            if depth < 0:
                errors.append(f'{label}: "E" without a matching "B"')
                depth = 0
            begin_depth[key] = depth
        if phase != "X":
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{label}: X event with missing/empty name")
            continue
        ok = True
        for key in ("ts", "dur"):
            if not finite_nonneg(event.get(key)):
                errors.append(f"{label} ({name}): {key} not finite and >= 0")
                ok = False
        for key in ("pid", "tid"):
            if not integer(event.get(key)):
                errors.append(f"{label} ({name}): {key} not an integer")
                ok = False
        if ok:
            complete.append(event)

    for key, depth in sorted(begin_depth.items(), key=str):
        if depth != 0:
            errors.append(f'unbalanced "B"/"E" events on (pid, tid)={key}')

    # Laminar nesting per thread: walking events sorted by (start, -dur),
    # each event must either nest inside the innermost open interval or
    # begin at/after its end.
    by_thread = {}
    for event in complete:
        by_thread.setdefault((event["pid"], event["tid"]), []).append(event)
    for key, thread_events in sorted(by_thread.items()):
        thread_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for event in thread_events:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                errors.append(
                    f'(pid, tid)={key}: "{event["name"]}" [{start}, {end}] '
                    f'overlaps "{stack[-1][2]}" without nesting'
                )
                continue
            stack.append((start, end, event["name"]))

    for prefix in expects:
        if not any(e["name"].startswith(prefix) for e in complete):
            errors.append(f'no X event with name prefix "{prefix}"')


def check_file(path, expects):
    errors = []
    try:
        with path.open() as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as error:
        return [str(error)]
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ['"traceEvents" must be an array']
    if not events:
        return ['"traceEvents" must not be empty']
    check_events(events, expects, errors)
    return errors


def collect(arguments):
    files = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            traces = sorted(path.glob("*.trace.json"))
            files.extend(traces if traces else sorted(path.glob("*.json")))
        else:
            files.append(path)
    return files


def main(arguments):
    expects = []
    paths = []
    index = 0
    while index < len(arguments):
        if arguments[index] == "--expect" and index + 1 < len(arguments):
            expects.append(arguments[index + 1])
            index += 2
        else:
            paths.append(arguments[index])
            index += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = collect(paths)
    if not files:
        print("check_trace_json: no trace files found", file=sys.stderr)
        return 1
    failed = False
    for path in files:
        errors = check_file(path, expects)
        if errors:
            failed = True
            for error in errors:
                print(f"FAIL {path}: {error}")
        else:
            print(f"ok   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
