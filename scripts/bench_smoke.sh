#!/usr/bin/env bash
# Smoke-runs every bench binary at tiny sizes so the benches cannot bit-rot:
# CI executes this after the test suite. Each binary must appear in the `run`
# list below -- the coverage check at the end fails the script if a new
# bench/*.cpp was added without registering smoke arguments here.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
declare -A covered

run() {
  local name="$1"
  shift
  covered["$name"]=1
  if [ ! -x "$build/$name" ]; then
    echo "-- $name: not built, skipping"
    return 0
  fi
  echo "== $name $*"
  "$build/$name" "$@" > /dev/null
}

# JSON benches (repo schema {name, config, results[]}).
run bench_verify_throughput 64 0.05 --threads 2
run bench_family_sweep --smoke --threads 2
run bench_sat --smoke

# Google Benchmark binaries (skipped automatically if the library was
# unavailable at configure time).
run bench_simulator --benchmark_min_time=0.01

# Figure / table reproductions. The slow ones take --smoke.
run fig2_cycle_classification
run fig_colouring_rounds
run fig_corner_coordination
run fig_edge_colouring_rounds
run fig_normal_form
run fig_randomised
run tab_edge_colouring --smoke
run tab_orientation --smoke
run tab_orientation_invariant
run tab_qsum_invariant
run tab_synthesis_tiles --smoke
run tab_turing_lcl --smoke
run tab_vertex_colouring

# Coverage check: every bench source must be registered above. The glob is
# anchored to the script's repo so the check works from any cwd.
missing=0
for source in "$repo_root"/bench/*.cpp; do
  name="$(basename "$source" .cpp)"
  if [ -z "${covered[$name]:-}" ]; then
    echo "ERROR: $name has no smoke entry in scripts/bench_smoke.sh"
    missing=1
  fi
done
exit "$missing"
