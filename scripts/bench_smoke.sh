#!/usr/bin/env bash
# Smoke-runs every bench binary at tiny sizes so the benches cannot bit-rot:
# CI executes this after the test suite. Each binary must appear in the `run`
# list below -- the coverage check at the end fails the script if a new
# bench/*.cpp was added without registering smoke arguments here.
#
# When BENCH_JSON_DIR is set, the stdout of the `run_json` entries (the
# binaries emitting the repo {name, config, results[]} schema) is captured
# to $BENCH_JSON_DIR/<name>[-tag].json, and each entry additionally writes
# its telemetry metrics snapshot (--metrics-out) to
# $BENCH_JSON_DIR/<name>[-tag].metrics.json -- the snapshot follows the
# same repo schema, so scripts/check_bench_json.py validates both. When
# BENCH_TRACE_DIR is set, each entry also writes a Chrome trace
# (--trace-out) to $BENCH_TRACE_DIR/<name>[-tag].trace.json, validated by
# scripts/check_trace_json.py. With -DLCLGRID_TELEMETRY=OFF the binaries
# warn and write no telemetry files, which both checkers tolerate (they
# only scan files that exist).
#
# Usage: [BENCH_JSON_DIR=dir] [BENCH_TRACE_DIR=dir] scripts/bench_smoke.sh
#        [build-dir]   (build-dir default: build)
set -euo pipefail

build="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
declare -A covered

run() {
  local name="$1"
  shift
  covered["$name"]=1
  if [ ! -x "$build/$name" ]; then
    echo "-- $name: not built, skipping"
    return 0
  fi
  echo "== $name $*"
  "$build/$name" "$@" > /dev/null
}

# Like `run`, but the binary emits the repo JSON schema: capture it when
# BENCH_JSON_DIR is set. An optional leading `-t tag` suffixes the capture
# file so one binary can contribute several configurations.
run_json() {
  local tag=""
  if [ "$1" = "-t" ]; then
    tag="-$2"
    shift 2
  fi
  local name="$1"
  shift
  covered["$name"]=1
  if [ ! -x "$build/$name" ]; then
    echo "-- $name: not built, skipping"
    return 0
  fi
  echo "== $name $*"
  if [ -n "${BENCH_TRACE_DIR:-}" ]; then
    mkdir -p "$BENCH_TRACE_DIR"
    set -- "$@" --trace-out "$BENCH_TRACE_DIR/$name$tag.trace.json"
  fi
  if [ -n "${BENCH_JSON_DIR:-}" ]; then
    mkdir -p "$BENCH_JSON_DIR"
    set -- "$@" --metrics-out "$BENCH_JSON_DIR/$name$tag.metrics.json"
    "$build/$name" "$@" > "$BENCH_JSON_DIR/$name$tag.json"
  else
    "$build/$name" "$@" > /dev/null
  fi
}

# JSON benches (repo schema {name, config, results[]}).
# --smoke sweeps d = 2, 3 and 4 through the compiled-table kernels
# (including the bitsliced paths -- check_bench_json.py requires their
# columns); the explicit --dims runs keep the per-dimension entry points
# covered even if the default dimension list changes.
run_json -t smoke bench_verify_throughput --smoke --threads 2
run_json -t d3 bench_verify_throughput 24 0.02 --threads 2 --dims 3
# n = 32 keeps the 5^4 = 625-node d=4 torus comfortably above the
# bitslice::kMinNodesForBitslice selection floor (check_bench_json.py
# requires the bitsliced rows), with headroom against floor bumps.
run_json -t d4 bench_verify_throughput 32 0.02 --threads 2 --dims 4
# The streaming (out-of-core) tier: a tiny --mmap sweep writes the on-disk
# labelling, verifies it from the mapping serial + sharded, and reports the
# peak_rss_kb / nodes_per_sec_per_core columns check_bench_json.py gates.
run_json -t mmap bench_verify_throughput --smoke --threads 2 --dims 2 --mmap
# The LCLGRID_BITSLICE=0 escape hatch must keep the bench (and the auto-
# selected batched paths) healthy; bash scopes the prefixed variable to
# this one call.
LCLGRID_BITSLICE=0 run_json -t bitslice-off bench_verify_throughput --smoke --threads 2
run_json bench_family_sweep --smoke --threads 2
run_json bench_sat --smoke
# The verification service daemon: an in-process daemon on an ephemeral
# loopback port, hammered by client threads. --smoke clamps duration and
# clients; the soak tag additionally exercises the explicit-BUSY admission
# path (the run fails if any burst response goes missing).
run_json -t smoke bench_service --smoke
run_json -t soak bench_service --soak 1 --clients 2
# Graceful degradation A/B (docs/robustness.md): shed on vs off under 2x
# the admission budget of allowDegrade count requests; the run fails if
# the shed-on pass never downgrades or the shed-off pass ever does.
run_json -t overload bench_service --overload --seconds 0.4 --clients 2

# Armed-but-never-firing fault points (LCLGRID_FAULTS, docs/robustness.md):
# with any point armed, every FAULT_POINT site in the process takes its
# slow path. One run per JSON bench proves env arming cannot disturb
# results and keeps the armed cost visible in the captured JSON -- the
# <= 2% overhead methodology is documented in docs/robustness.md.
armed='service.dispatch:delay=0@nth=1000000000'
LCLGRID_FAULTS="$armed" run_json -t faults-armed bench_verify_throughput --smoke --threads 2
LCLGRID_FAULTS="$armed" run_json -t faults-armed bench_family_sweep --smoke --threads 2
LCLGRID_FAULTS="$armed" run_json -t faults-armed bench_sat --smoke
LCLGRID_FAULTS="$armed" run_json -t faults-armed bench_service --smoke

# Google Benchmark binaries (skipped automatically if the library was
# unavailable at configure time).
run bench_simulator --benchmark_min_time=0.01

# Figure / table reproductions. The slow ones take --smoke.
run fig2_cycle_classification
run fig_colouring_rounds
run fig_corner_coordination
run fig_edge_colouring_rounds
run fig_normal_form
run fig_randomised
run tab_edge_colouring --smoke
run tab_orientation --smoke
run tab_orientation_invariant
run tab_qsum_invariant
run tab_synthesis_tiles --smoke
run tab_turing_lcl --smoke
run tab_vertex_colouring

# Coverage check: every bench source must be registered above. The glob is
# anchored to the script's repo so the check works from any cwd.
missing=0
for source in "$repo_root"/bench/*.cpp; do
  name="$(basename "$source" .cpp)"
  if [ -z "${covered[$name]:-}" ]; then
    echo "ERROR: $name has no smoke entry in scripts/bench_smoke.sh"
    missing=1
  fi
done
exit "$missing"
