#!/usr/bin/env python3
"""Validate bench JSON output against the repo-wide schema.

Every JSON-emitting bench binary (and the engine's sweep driver) writes one
top-level document of the form

    { "name": <bench/driver id>, "config": { ... }, "results": [ ... ] }

so the perf-trajectory tooling can ingest every binary uniformly. CI runs
this over the JSON captured by scripts/bench_smoke.sh before uploading the
files as workflow artifacts: a bench that drifts off the schema fails the
push that broke it, not the tooling run weeks later.

Usage: check_bench_json.py <file-or-directory>...
Directories are scanned (non-recursively) for *.json. Exits non-zero with
one line per violation.
"""

import json
import math
import sys
from pathlib import Path


def reject_constant(token):
    raise ValueError(f"non-finite number {token!r} (JSON has no NaN/Inf)")


def positive_finite(value):
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value > 0
    )


def check_verify_throughput(doc, results, errors):
    """Bench-specific gate for the kernel-tier bench: the bitsliced paths
    must be present (a sweep that silently lost them would hide a
    selection regression) and every bitsliced entry must carry a finite,
    positive speedup_vs_table column. The 4x acceptance ratio itself is a
    full-size run's job -- CI smoke sizes are too small and noisy.

    Every row must carry a positive finite nodes_per_sec_per_core (the
    normalised column the perf trajectory plots); a --mmap run must
    contain the mmap_stream rows with a positive finite peak_rss_kb (the
    bounded-memory claim's measurable form). A --mmap-only run skips the
    in-core sweep, so the bitsliced requirement is waived there."""
    config = doc.get("config") if isinstance(doc.get("config"), dict) else {}
    mmap_only = config.get("mmap_only") is True
    bitsliced = [
        entry
        for entry in results
        if isinstance(entry, dict)
        and str(entry.get("path", "")).startswith("bitsliced")
    ]
    if not bitsliced and not mmap_only:
        errors.append('verify_throughput has no "bitsliced" results')
    for entry in bitsliced:
        label = f"{entry.get('problem')}/{entry.get('path')}"
        speedup = entry.get("speedup_vs_table")
        if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
            errors.append(f"{label}: missing speedup_vs_table")
        elif not math.isfinite(speedup) or speedup <= 0:
            errors.append(f"{label}: speedup_vs_table not a positive finite")
    for entry in results:
        if not isinstance(entry, dict):
            continue
        label = f"{entry.get('problem')}/{entry.get('path')}"
        if not positive_finite(entry.get("nodes_per_sec_per_core")):
            errors.append(f"{label}: missing/invalid nodes_per_sec_per_core")
    if config.get("mmap") is True:
        mmap_rows = [
            entry
            for entry in results
            if isinstance(entry, dict)
            and str(entry.get("path", "")).startswith("mmap_stream")
        ]
        if not mmap_rows:
            errors.append(
                'verify_throughput config says mmap but has no "mmap_stream" '
                "results"
            )
        for entry in mmap_rows:
            label = f"{entry.get('problem')}/{entry.get('path')}"
            if not positive_finite(entry.get("peak_rss_kb")):
                errors.append(f"{label}: missing/invalid peak_rss_kb")
    for key in ("checksum_ok", "fingerprint_ok"):
        if doc.get(key) is not True:
            errors.append(f'verify_throughput "{key}" is not true')


def check_bench_sat(doc, results, errors):
    """Gate for the SAT engine bench: every row carries the arena
    clause-store columns (arena_bytes / gc_runs / live_literals from the
    incremental arm's live solver, peak_rss_kb from getrusage) as finite,
    non-negative numbers. These are the columns the arena-GC perf
    trajectory plots (docs/sat.md); a row that loses them means the bench
    stopped reading the live solver's stats snapshot."""
    for entry in results:
        if not isinstance(entry, dict):
            continue
        label = f"{entry.get('scenario')}/{entry.get('case')}"
        for key in ("arena_bytes", "gc_runs", "live_literals", "peak_rss_kb"):
            value = entry.get(key)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not math.isfinite(value)
                or value < 0
            ):
                errors.append(f"{label}: missing/invalid {key}")


def check_bench_service(doc, results, errors):
    """Gate for the verification service bench: every per-op row carries a
    positive finite qps and p99_us (the columns the service perf
    trajectory plots, docs/service.md). A row that loses them means the
    bench stopped timing round-trips -- a zero-request op would emit qps 0
    and fail here, which is the point: the smoke run must actually drive
    every op. Every row also carries the robustness columns shed /
    timeouts / retries (docs/robustness.md) as non-negative integers --
    dropping one would silently stop tracking degradation, deadline and
    retry behaviour across the perf trajectory."""

    def nonneg_int(value):
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and value >= 0
        )

    for entry in results:
        if not isinstance(entry, dict):
            continue
        label = f"bench_service/{entry.get('op')}"
        for key in ("qps", "p99_us"):
            if not positive_finite(entry.get(key)):
                errors.append(f"{label}: missing/invalid {key}")
        for key in ("shed", "timeouts", "retries"):
            if not nonneg_int(entry.get(key)):
                errors.append(f"{label}: missing/invalid {key}")


def check_metrics_snapshot(doc, results, errors):
    """Gate for the telemetry exporter (support/telemetry.hpp): every
    results[] entry is {kind: counter|gauge|histogram, name, ...} with a
    non-empty dot-separated name; counters carry a non-negative integer
    value (they are monotonic by contract), gauges an integer value, and
    histograms integer count/sum/min/max with count >= 0."""

    def integer(value):
        return isinstance(value, int) and not isinstance(value, bool)

    for index, entry in enumerate(results):
        if not isinstance(entry, dict):
            continue
        label = f"results[{index}]"
        kind = entry.get("kind")
        name = entry.get("name")
        if kind not in ("counter", "gauge", "histogram"):
            errors.append(f"{label}: kind {kind!r} not counter/gauge/histogram")
            continue
        if not isinstance(name, str) or not name:
            errors.append(f"{label}: missing/empty name")
            continue
        label = f"{label} ({name})"
        if kind in ("counter", "gauge"):
            if not integer(entry.get("value")):
                errors.append(f"{label}: {kind} value must be an integer")
            elif kind == "counter" and entry["value"] < 0:
                errors.append(f"{label}: counter value is negative")
        else:
            for key in ("count", "sum", "min", "max"):
                if not integer(entry.get(key)):
                    errors.append(f"{label}: histogram {key} must be an integer")
            count = entry.get("count")
            if integer(count) and count < 0:
                errors.append(f"{label}: histogram count is negative")


def check_document(doc, errors):
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        return
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        errors.append('"name" must be a non-empty string')
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append('"config" must be an object')
    results = doc.get("results")
    if not isinstance(results, list):
        errors.append('"results" must be an array')
        return
    if not results:
        errors.append('"results" must not be empty')
    for index, entry in enumerate(results):
        if not isinstance(entry, dict):
            errors.append(f"results[{index}] is not an object")
            continue
        for key, value in entry.items():
            if isinstance(value, float) and not math.isfinite(value):
                errors.append(f"results[{index}].{key} is not finite")
    if name == "verify_throughput":
        check_verify_throughput(doc, results, errors)
    elif name == "bench_sat":
        check_bench_sat(doc, results, errors)
    elif name == "bench_service":
        check_bench_service(doc, results, errors)
    elif name == "metrics_snapshot":
        check_metrics_snapshot(doc, results, errors)


def check_file(path):
    errors = []
    try:
        with path.open() as handle:
            doc = json.load(handle, parse_constant=reject_constant)
    except (OSError, ValueError) as error:
        return [str(error)]
    check_document(doc, errors)
    return errors


def collect(arguments):
    files = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    return files


def main(arguments):
    if not arguments:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = collect(arguments)
    if not files:
        print("check_bench_json: no JSON files found", file=sys.stderr)
        return 1
    failed = False
    for path in files:
        errors = check_file(path)
        if errors:
            failed = True
            for error in errors:
                print(f"FAIL {path}: {error}")
        else:
            print(f"ok   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
