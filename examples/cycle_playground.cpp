// 1-dimensional playground: define your own LCL on directed cycles with a
// window predicate, get its exact complexity class and an optimal
// synthesized algorithm -- everything on cycles is decidable (Section 4),
// in sharp contrast with 2-dimensional grids (Theorem 3).
#include <cstdio>

#include "cycle/classifier.hpp"
#include "cycle/cycle_synthesis.hpp"
#include "local/ids.hpp"

using namespace lclgrid::cycle;
namespace local = lclgrid::local;

int main() {
  // A custom problem: binary labels, no two consecutive 1s, and no run of
  // three 0s ("spaced marks") -- a classic Theta(log* n) pattern.
  CycleLcl spacedMarks(
      "spaced-marks", 2, 1, [](const std::vector<int>& w) {
        if (w[1] == 1 && (w[0] == 1 || w[2] == 1)) return false;  // no 11
        if (w[0] == 0 && w[1] == 0 && w[2] == 0) return false;    // no 000
        return true;
      });

  auto classification = classifyCycleLcl(spacedMarks);
  std::printf("%s: %s\n", spacedMarks.name().c_str(),
              complexityName(classification.complexity).c_str());
  if (classification.complexity == ComplexityClass::LogStar) {
    std::printf("  flexible H-node %d with flexibility %d\n",
                classification.flexibleNode, classification.flexibility);
  }

  CycleAlgorithm algorithm(spacedMarks);
  for (int n : {20, 200, 2000}) {
    auto run = algorithm.execute(local::randomIds(n, 7));
    std::printf("  n=%-5d -> %s in %d rounds%s\n", n,
                run.solved ? "solved" : "no solution", run.rounds,
                run.solved && spacedMarks.verifyCycle(run.labels)
                    ? " (verified)"
                    : "");
  }

  // Compare with an inherently global custom problem: marks exactly every
  // 4 positions. Walks in H exist only with length divisible by 4, so no
  // flexibility -- and on cycles this is decided, not conjectured.
  CycleLcl exactFour("exact-4-spacing", 4, 1, [](const std::vector<int>& w) {
    return w[1] == (w[0] + 3) % 4 && w[2] == (w[1] + 3) % 4;
  });
  auto rigid = classifyCycleLcl(exactFour);
  std::printf("%s: %s\n", exactFour.name().c_str(),
              complexityName(rigid.complexity).c_str());
  CycleAlgorithm globalAlgorithm(exactFour);
  for (int n : {16, 18}) {
    auto run = globalAlgorithm.execute(local::randomIds(n, 7));
    std::printf("  n=%-3d -> %s (rounds=%d)\n", n,
                run.solved ? "solved" : "no solution at this n", run.rounds);
  }
  return 0;
}
