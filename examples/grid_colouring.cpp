// Grid colouring showcase: synthesize the 4-colouring normal form (the
// paper's flagship example, k = 3 with 2079 tiles), run it on a torus, show
// the colouring, and contrast it with the global 3-colouring baseline.
#include <cstdio>

#include "algorithms/global_baseline.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/ids.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/synthesizer.hpp"

using namespace lclgrid;

int main() {
  std::printf("Synthesizing the 4-colouring normal form (k=3, 7x5 tiles)...\n");
  auto synthesis =
      synthesis::synthesize(problems::vertexColouring(4), {.maxK = 3});
  if (!synthesis.success) {
    std::printf("synthesis failed\n");
    return 1;
  }
  for (const auto& attempt : synthesis.attempts) {
    std::printf("  k=%d %dx%d: %s (%lld tiles, %.2fs)\n", attempt.k,
                attempt.shape.height, attempt.shape.width,
                attempt.success ? "SAT" : attempt.failureReason.c_str(),
                attempt.tileCount, attempt.seconds);
  }

  synthesis::NormalFormAlgorithm algorithm(*synthesis.rule);
  Torus2D torus(26);
  auto run = algorithm.execute(torus, local::randomIds(torus.size(), 11));
  if (!run.solved) {
    std::printf("run failed: %s\n", run.failure.c_str());
    return 1;
  }
  auto lcl = problems::vertexColouring(4);
  std::printf("\n4-colouring of a %dx%d torus in %d rounds (verified: %s):\n\n%s\n",
              torus.n(), torus.n(), run.rounds,
              verify(torus, lcl, run.labels) ? "yes" : "NO",
              renderLabelling(torus, lcl, run.labels).c_str());

  // The global baseline for the 3-colouring problem -- correct, optimal for
  // a global problem, and linear in n.
  auto baseline =
      algorithms::solveByGathering(torus, problems::vertexColouring(3));
  std::printf("3-colouring needs the global baseline: %d rounds (Theta(n)).\n",
              baseline.rounds);
  std::printf("4-colouring rounds stay put as n grows; try editing the size.\n");
  return 0;
}
