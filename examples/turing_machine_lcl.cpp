// The undecidability construction, hands on: build L_M for a halting and a
// non-halting Turing machine, attempt the fast anchor-tiling solution, and
// render a piece of it -- the execution table of M sits north-east of every
// anchor.
#include <cstdio>

#include "local/ids.hpp"
#include "turing/lm_builder.hpp"
#include "turing/lm_verifier.hpp"
#include "turing/zoo.hpp"

using namespace lclgrid;
using namespace lclgrid::turing;

namespace {

void showTile(const Torus2D& torus, const LmLabelling& labels, int anchor,
              int radius) {
  for (int dy = radius; dy >= -2; --dy) {
    for (int dx = -2; dx <= radius; ++dx) {
      const LmLabel& cell =
          labels[static_cast<std::size_t>(torus.shift(anchor, dx, dy))];
      char tape = ' ';
      if (cell.hasTape) {
        tape = cell.headState >= 0 ? 'q' : static_cast<char>('0' + cell.tapeSymbol);
      }
      std::printf("%2s%c ", qTypeName(cell.type).c_str(), tape);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // A machine that halts: writes three 1s and stops.
  Machine halting = onesWriter(3);
  Torus2D torus(60);
  auto ids = local::randomIds(torus.size(), 5);
  auto run = solveLmLogStar(torus, halting, ids, /*stepBudget=*/64);
  std::printf("machine %s: %s\n", halting.name().c_str(),
              run.solved ? "fast construction found" : run.failure.c_str());
  if (run.solved) {
    std::printf("  halting steps: %d, anchor tile size: %d, verified: %s\n",
                run.stepsUsed, run.anchorSeparation,
                verifyLm(torus, halting, run.labels) ? "yes" : "NO");
    // Find an anchor and show its neighbourhood with the execution table
    // (types + tape symbols; 'q' marks the head).
    for (int v = 0; v < torus.size(); ++v) {
      if (run.labels[static_cast<std::size_t>(v)].type == QType::A) {
        std::printf("\nanchor tile at node %d (execution table of %s):\n\n", v,
                    halting.name().c_str());
        showTile(torus, run.labels, v, run.stepsUsed + 2);
        break;
      }
    }
  }

  // A machine that never halts: the construction fails at every budget,
  // and only the global 3-colouring fallback P1 remains.
  Machine looping = rightRunner();
  std::printf("\nmachine %s:\n", looping.name().c_str());
  for (int budget : {10, 100, 1000}) {
    auto attempt = solveLmLogStar(torus, looping, ids, budget);
    std::printf("  budget %4d: %s\n", budget,
                attempt.solved ? "constructed (?!)" : attempt.failure.c_str());
  }
  auto fallback = solveLmGlobal(torus);
  std::printf("  P1 fallback (3-colouring): solved in %d rounds, verified: %s\n",
              fallback.rounds,
              verifyLm(torus, looping, fallback.labels) ? "yes" : "NO");
  std::printf(
      "\nDeciding which of the two outcomes occurs for a general machine is\n"
      "the halting problem -- the complexity of L_M is undecidable "
      "(Theorem 3).\n");
  return 0;
}
