// Edge labellings on grids: the (2d+1)-edge-colouring algorithm of Section
// 10 on a cycle (d = 1), and X-orientations across all three complexity
// classes of Theorem 22.
#include <cstdio>

#include "algorithms/edge_colouring.hpp"
#include "algorithms/orientations.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/ids.hpp"

using namespace lclgrid;
using namespace lclgrid::algorithms;

int main() {
  // (2d+1)-edge-colouring for d = 1: 3 colours on a directed cycle.
  {
    TorusD cycle(1, 120);
    auto run = edgeColouringGrid(cycle, local::randomIds(120, 9));
    std::printf("3-edge-colouring of a 120-cycle: %s in %d rounds "
                "(k=%d, spacing=%d)\n",
                run.solved ? "solved" : run.failure.c_str(), run.rounds, run.k,
                run.rowSpacing);
    if (run.solved) {
      std::printf("  first 30 edge colours: ");
      for (int e = 0; e < 30; ++e) std::printf("%d", run.colour[e]);
      std::printf("...\n  verified: %s\n\n",
                  isProperEdgeColouringD(cycle, run.colour, 3) ? "yes" : "NO");
    }
  }

  // X-orientations, one per complexity class.
  Torus2D torus(16);
  auto ids = local::randomIds(torus.size(), 21);
  for (std::set<int> x : {std::set<int>{2}, {1, 3, 4}, {0, 3, 4}}) {
    auto run = solveOrientation(torus, x, ids);
    std::printf("%-20s class=%-14s rounds=%-5d %s\n",
                problems::orientationSetName(x).c_str(),
                orientationClassName(run.algorithmClass).c_str(), run.rounds,
                run.solved
                    ? (verify(torus, problems::orientation(x), run.labels)
                           ? "verified"
                           : "VERIFY FAILED")
                    : run.failure.c_str());
  }

  // A global case on an odd torus: no {1,3}-orientation exists (Lemma 24).
  Torus2D odd(5);
  auto infeasible =
      solveOrientation(odd, {1, 3}, local::randomIds(odd.size(), 3));
  std::printf("{1,3} on n=5: %s (Lemma 24: impossible for odd n)\n",
              infeasible.solved ? "solved (?!)" : infeasible.failure.c_str());
  return 0;
}
