// Quickstart: define an LCL problem, classify it with the synthesis oracle,
// run the synthesized optimal algorithm on a torus, and verify the output.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/ids.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/oracle.hpp"

using namespace lclgrid;

int main() {
  // 1. An LCL problem in radius-1 cross form: maximal independent set.
  GridLcl problem = problems::maximalIndependentSet();
  std::printf("problem: %s (alphabet size %d)\n", problem.name().c_str(),
              problem.sigma());

  // 2. Classify it on 2-dimensional toroidal grids (Section 7's oracle):
  //    O(1) / Theta(log* n) (+ an optimal algorithm) / global.
  synthesis::OracleOptions options;
  options.synthesis.maxK = 2;
  auto report = synthesis::classifyOnGrid(problem, options);
  std::printf("oracle verdict: %s\n",
              synthesis::gridComplexityName(report.complexity).c_str());

  if (report.complexity != synthesis::GridComplexity::LogStar) return 0;

  // 3. The oracle handed us a normal form A' o S_k: run it on a real torus
  //    with random unique identifiers.
  synthesis::NormalFormAlgorithm algorithm(*report.rule);
  std::printf("normal form: k = %d, window %dx%d, %d tiles\n",
              report.rule->k, report.rule->shape.height,
              report.rule->shape.width, report.rule->tileSet.size());

  Torus2D torus(32);
  auto ids = local::randomIds(torus.size(), /*seed=*/42);
  auto run = algorithm.execute(torus, ids);
  std::printf("executed on a %dx%d torus: %d LOCAL rounds "
              "(S_k: %d, A': radius %d)\n",
              torus.n(), torus.n(), run.rounds, run.misRounds,
              run.localRadius);

  // 4. Verify with the LCL checker.
  bool ok = run.solved && verify(torus, problem, run.labels);
  std::printf("verified: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
