// The one-sided complexity oracle as a command-line tool: pick a problem by
// name, and the oracle classifies it on 2-dimensional toroidal grids --
// producing an optimal algorithm when the answer is Theta(log* n).
//
//   ./build/examples/synthesis_oracle vertex-colouring 4
//   ./build/examples/synthesis_oracle orientation 1,3,4
//   ./build/examples/synthesis_oracle mis
#include <cstdio>
#include <cstring>
#include <optional>
#include <set>
#include <string>

#include "lcl/problems.hpp"
#include "synthesis/oracle.hpp"

using namespace lclgrid;

namespace {

std::optional<GridLcl> parseProblem(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  std::string name = argv[1];
  if (name == "mis") return problems::maximalIndependentSet();
  if (name == "matching") return problems::maximalMatching();
  if (name == "independent-set") return problems::independentSet();
  if (name == "vertex-colouring" && argc >= 3) {
    return problems::vertexColouring(std::atoi(argv[2]));
  }
  if (name == "edge-colouring" && argc >= 3) {
    return problems::edgeColouring(std::atoi(argv[2]));
  }
  if (name == "orientation" && argc >= 3) {
    std::set<int> x;
    for (const char* p = argv[2]; *p; ++p) {
      if (*p >= '0' && *p <= '4') x.insert(*p - '0');
    }
    return problems::orientation(x);
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  auto problem = parseProblem(argc, argv);
  if (!problem) {
    std::printf(
        "usage: synthesis_oracle <problem> [arg]\n"
        "  problems: mis | matching | independent-set |\n"
        "            vertex-colouring <k> | edge-colouring <k> |\n"
        "            orientation <digits, e.g. 134>\n");
    // Default demonstration run.
    problem = problems::vertexColouring(4);
    std::printf("\nrunning the default: %s\n", problem->name().c_str());
  }

  std::printf("classifying %s on 2-dimensional toroidal grids...\n",
              problem->name().c_str());
  synthesis::OracleOptions options;
  options.synthesis.maxK = 3;
  auto report = synthesis::classifyOnGrid(*problem, options);

  std::printf("feasibility probe:");
  for (auto [n, feasible] : report.feasibility) {
    std::printf(" n=%d:%s", n, feasible ? "yes" : "NO");
  }
  std::printf("\n");
  for (const auto& attempt : report.attempts) {
    std::printf("  synthesis k=%d window %dx%d: %s (%lld tiles, %.2fs)\n",
                attempt.k, attempt.shape.height, attempt.shape.width,
                attempt.success ? "SAT" : attempt.failureReason.c_str(),
                attempt.tileCount, attempt.seconds);
  }
  std::printf("verdict: %s\n",
              synthesis::gridComplexityName(report.complexity).c_str());
  if (report.complexity == synthesis::GridComplexity::Constant) {
    std::printf("trivial label: %s\n",
                problem->labelName(report.trivialLabel).c_str());
  }
  if (report.rule) {
    std::printf("optimal algorithm: A' o S_%d with %d tiles of %dx%d\n",
                report.rule->k, report.rule->tileSet.size(),
                report.rule->shape.height, report.rule->shape.width);
  }
  if (report.complexity == synthesis::GridComplexity::ConjecturedGlobal) {
    std::printf(
        "note: by Theorem 3 this verdict is one-sided -- no procedure can\n"
        "prove globality for every problem; the budgeted failure is the\n"
        "honest finite answer.\n");
  }
  return 0;
}
