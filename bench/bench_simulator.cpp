// E14 -- substrate benchmark: throughput of the LOCAL-model building blocks
// (Cole-Vishkin, Linial steps, power-graph MIS, tile window reads).
#include <benchmark/benchmark.h>

#include "local/cole_vishkin.hpp"
#include "local/graph_view.hpp"
#include "local/ids.hpp"
#include "local/linial.hpp"
#include "local/mis.hpp"
#include "tiles/enumerator.hpp"

namespace {

using namespace lclgrid;

void BM_ColeVishkinCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto ids = local::randomIds(n, 3);
  local::CycleFamily family{n, [n](int v) { return (v + 1) % n; }};
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::colourCycleFamily3(family, ids));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColeVishkinCycle)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_MisOnPowerGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Torus2D torus(n);
  auto ids = local::randomIds(torus.size(), 5);
  auto view = local::l1PowerView(torus, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::computeMis(view, ids));
  }
  state.SetItemsProcessed(state.iterations() * torus.size());
}
BENCHMARK(BM_MisOnPowerGraph)->Args({32, 1})->Args({32, 3})->Args({64, 3});

void BM_TileEnumeration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiles::enumerateTiles(3, 7, 5, nullptr));
  }
}
BENCHMARK(BM_TileEnumeration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
