// E13 -- substrate benchmark: the CDCL SAT solver on pigeonhole (UNSAT),
// random 3-SAT near the phase transition, and the actual synthesis CSP of
// the paper's flagship case (4-colouring at k = 3).
#include <benchmark/benchmark.h>

#include "lcl/problems.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "support/numeric.hpp"
#include "synthesis/synthesizer.hpp"

namespace {

using lclgrid::sat::Result;
using lclgrid::sat::Solver;

void buildPigeonhole(Solver& solver, int holes) {
  int pigeons = holes + 1;
  std::vector<std::vector<int>> var(
      static_cast<std::size_t>(pigeons),
      std::vector<int>(static_cast<std::size_t>(holes)));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      var[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)] =
          solver.newVar();
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<int> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(
          var[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]);
    }
    solver.addClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        solver.addClause(
            {-var[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)],
             -var[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]});
      }
    }
  }
}

void BM_PigeonholeUnsat(benchmark::State& state) {
  for (auto _ : state) {
    Solver solver;
    buildPigeonhole(solver, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_PigeonholeUnsat)->Arg(5)->Arg(6)->Arg(7)->Arg(8);

void BM_RandomThreeSat(benchmark::State& state) {
  const int numVars = static_cast<int>(state.range(0));
  const int numClauses = static_cast<int>(4.26 * numVars);
  for (auto _ : state) {
    state.PauseTiming();
    lclgrid::SplitMix64 rng(static_cast<std::uint64_t>(state.iterations()));
    Solver solver;
    for (int i = 0; i < numVars; ++i) solver.newVar();
    for (int c = 0; c < numClauses; ++c) {
      std::vector<int> clause;
      for (int j = 0; j < 3; ++j) {
        int var = static_cast<int>(rng.nextBelow(
                      static_cast<std::uint64_t>(numVars))) + 1;
        clause.push_back(rng.nextBelow(2) ? var : -var);
      }
      solver.addClause(clause);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_RandomThreeSat)->Arg(50)->Arg(100)->Arg(150);

void BM_FourColouringSynthesisCsp(benchmark::State& state) {
  // The paper's flagship SAT instance: 2079 tiles, 4 labels each.
  for (auto _ : state) {
    auto attempt = lclgrid::synthesis::synthesizeForShape(
        lclgrid::problems::vertexColouring(4), 3,
        lclgrid::tiles::TileShape{7, 5});
    if (!attempt.success) state.SkipWithError("synthesis failed");
    benchmark::DoNotOptimize(attempt);
  }
}
BENCHMARK(BM_FourColouringSynthesisCsp)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
