// Incremental-vs-fresh SAT engine benchmark, in the repo-wide
// {name, config, results[]} JSON schema.
//
// Three scenarios quantify what assumption-based incremental solving buys
// the Section 7 pipeline over the seed's fresh-solver-per-instance regime:
//  * synthesis_ladder  -- the full k/window ladder per problem, one live
//    solver with activation-literal clause groups vs a fresh solver per
//    (k, shape). Same verdicts by construction (differential-tested); this
//    row shows the two regimes cost about the same when every instance is
//    solved exactly once with no budget staging.
//  * staged_ladder     -- the ladder's budget-staged deepening loop (solve
//    with a small conflict budget, double it while the verdict is Unknown).
//    The fresh regime re-encodes and re-searches from zero at every stage;
//    the incremental solver resumes from its learnt clauses, so the staged
//    loop costs barely more than one unbudgeted solve. This is the family
//    sweep's progressive-deepening pattern and the headline >= 2x.
//  * seeded_branches   -- solveGlobally's seeded branch enumeration (force
//    one node to each label, first satisfiable branch wins): fresh solver
//    per branch vs one live solver taking each branch as an assumption.
//    On infeasible instances every branch re-proves the same core; the
//    live solver proves it once.
//
// Usage: bench_sat [--smoke] [--trace-out F] [--metrics-out F]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "grid/torus2d.hpp"
#include "lcl/problems.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "support/json.hpp"
#include "support/numeric.hpp"
#include "support/telemetry.hpp"
#include "support/timing.hpp"
#include "synthesis/synthesizer.hpp"
#include "tiles/tile.hpp"

using namespace lclgrid;

namespace {

struct Arm {
  double seconds = 0.0;
  long long conflicts = 0;
  // Filled from sat::Solver::snapshotStats() where the arm owns the solver
  // (the seeded_branches scenario); 0 where the solver is internal to the
  // synthesis pipeline.
  long long decisions = 0;
  long long propagations = 0;
  long long restarts = 0;
  // Arena clause-store columns (docs/sat.md), read off the live solver of
  // the incremental arms; gated by scripts/check_bench_json.py.
  long long arenaBytes = 0;
  long long gcRuns = 0;
  long long liveLiterals = 0;
  std::string verdict;
};

using support::secondsSince;

/// Fold a solver's public stats snapshot into an arm (additive, so the
/// fresh regime can accumulate across its throwaway solvers).
void foldStats(Arm& arm, const sat::SolverStats& stats) {
  arm.decisions += stats.decisions;
  arm.propagations += stats.propagations;
  arm.restarts += stats.restarts;
}

/// Capture the arena snapshot of a live solver (the incremental arms own
/// exactly one solver, so these are set, not accumulated).
void captureArena(Arm& arm, const sat::SolverStats& stats) {
  arm.arenaBytes = stats.arenaBytes;
  arm.gcRuns = stats.gcRuns;
  arm.liveLiterals = stats.liveLiterals;
}

std::string ladderVerdict(const synthesis::SynthesisResult& result) {
  if (result.success) return "sat";
  return result.attempts.empty() ? "none"
                                 : result.attempts.back().failureReason;
}

// --- scenario: full synthesis ladder, fresh vs incremental -----------------

Arm runLadder(const GridLcl& lcl, int maxK, bool incremental) {
  synthesis::SynthesisOptions options;
  options.maxK = maxK;
  options.incremental = incremental;
  auto start = std::chrono::steady_clock::now();
  Arm arm;
  synthesis::SynthesisResult result;
  if (incremental) {
    // Drive IncrementalSynthesizer directly (synthesize() delegates to it
    // in this regime) so the live solver's arena columns are readable once
    // the ladder finishes.
    synthesis::IncrementalSynthesizer live(lcl);
    result = live.run(options);
    captureArena(arm, live.solver().snapshotStats());
  } else {
    result = synthesis::synthesize(lcl, options);
  }
  arm.seconds = secondsSince(start);
  for (const auto& attempt : result.attempts) {
    arm.conflicts += attempt.satConflicts;
  }
  arm.verdict = ladderVerdict(result);
  return arm;
}

// --- scenario: budget-staged deepening at one (k, shape) -------------------

Arm runStagedFresh(const GridLcl& lcl, int k, tiles::TileShape shape,
                   std::int64_t initialBudget) {
  Arm arm;
  auto start = std::chrono::steady_clock::now();
  std::int64_t budget = initialBudget;
  while (true) {
    auto attempt = synthesis::synthesizeForShape(lcl, k, shape, budget);
    arm.conflicts += attempt.satConflicts;
    if (attempt.success || attempt.failureReason != "sat budget exhausted") {
      arm.verdict = attempt.success ? "sat" : attempt.failureReason;
      break;
    }
    budget *= 2;
  }
  arm.seconds = secondsSince(start);
  return arm;
}

Arm runStagedIncremental(const GridLcl& lcl, int k, tiles::TileShape shape,
                         std::int64_t initialBudget) {
  Arm arm;
  auto start = std::chrono::steady_clock::now();
  synthesis::IncrementalSynthesizer live(lcl);
  std::int64_t budget = initialBudget;
  auto attempt = live.attemptShape(k, shape, budget);
  arm.conflicts += attempt.satConflicts;
  while (!attempt.success && attempt.failureReason == "sat budget exhausted") {
    budget *= 2;
    attempt = live.resolveActive(budget);
    arm.conflicts += attempt.satConflicts;
  }
  arm.verdict = attempt.success ? "sat" : attempt.failureReason;
  captureArena(arm, live.solver().snapshotStats());
  arm.seconds = secondsSince(start);
  return arm;
}

// --- scenario: seeded branch enumeration on the torus CSP ------------------

std::vector<sat::DomainVar> encodeTorusCsp(const Torus2D& torus,
                                           const GridLcl& lcl,
                                           sat::Solver& solver) {
  const int sigma = lcl.sigma();
  std::vector<sat::DomainVar> label;
  label.reserve(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    label.push_back(sat::makeDomainVar(solver, sigma));
  }
  std::vector<int> clause;
  for (int v = 0; v < torus.size(); ++v) {
    const int nN = torus.step(v, Dir::North);
    const int nE = torus.step(v, Dir::East);
    const int nS = torus.step(v, Dir::South);
    const int nW = torus.step(v, Dir::West);
    lcl.table().forEachForbidden([&](int c, int n, int e, int s, int w) {
      clause.clear();
      clause.push_back(label[static_cast<std::size_t>(v)].isNot(c));
      if (lcl.deps() & kDepN)
        clause.push_back(label[static_cast<std::size_t>(nN)].isNot(n));
      if (lcl.deps() & kDepE)
        clause.push_back(label[static_cast<std::size_t>(nE)].isNot(e));
      if (lcl.deps() & kDepS)
        clause.push_back(label[static_cast<std::size_t>(nS)].isNot(s));
      if (lcl.deps() & kDepW)
        clause.push_back(label[static_cast<std::size_t>(nW)].isNot(w));
      solver.addClause(clause);
    });
  }
  return label;
}

/// The branch schedule of solveGlobally's seeded mode, shared by both arms
/// so they do identical logical work.
struct BranchPlan {
  int forcedNode = 0;
  std::vector<int> order;
};

BranchPlan branchPlan(const Torus2D& torus, const GridLcl& lcl,
                      std::uint64_t seed) {
  SplitMix64 rng(seed);
  BranchPlan plan;
  plan.forcedNode =
      static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(torus.size())));
  plan.order.resize(static_cast<std::size_t>(lcl.sigma()));
  for (int i = 0; i < lcl.sigma(); ++i) {
    plan.order[static_cast<std::size_t>(i)] = i;
  }
  for (int i = lcl.sigma() - 1; i > 0; --i) {
    int j = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(i + 1)));
    std::swap(plan.order[static_cast<std::size_t>(i)],
              plan.order[static_cast<std::size_t>(j)]);
  }
  return plan;
}

Arm runBranchesFresh(const Torus2D& torus, const GridLcl& lcl, int seeds) {
  // The seed regime: every branch re-encodes the CSP into a fresh solver
  // and re-derives every conflict from scratch.
  Arm arm;
  auto start = std::chrono::steady_clock::now();
  bool feasible = false;
  for (int seed = 1; seed <= seeds; ++seed) {
    auto plan = branchPlan(torus, lcl, static_cast<std::uint64_t>(seed));
    for (int candidate : plan.order) {
      sat::Solver solver;
      auto label = encodeTorusCsp(torus, lcl, solver);
      solver.addClause(
          {label[static_cast<std::size_t>(plan.forcedNode)].is(candidate)});
      auto outcome = solver.solve();
      arm.conflicts += solver.conflicts();
      foldStats(arm, solver.snapshotStats());
      if (outcome == sat::Result::Sat) {
        feasible = true;
        break;
      }
    }
  }
  arm.verdict = feasible ? "sat" : "unsat";
  arm.seconds = secondsSince(start);
  return arm;
}

Arm runBranchesIncremental(const Torus2D& torus, const GridLcl& lcl,
                           int seeds) {
  // One live solver for all seeds and branches: encode once, then one
  // assumption solve per branch; learnt clauses accumulate across the
  // whole enumeration.
  Arm arm;
  auto start = std::chrono::steady_clock::now();
  sat::Solver solver;
  auto label = encodeTorusCsp(torus, lcl, solver);
  bool feasible = false;
  for (int seed = 1; seed <= seeds; ++seed) {
    auto plan = branchPlan(torus, lcl, static_cast<std::uint64_t>(seed));
    for (int candidate : plan.order) {
      auto outcome = solver.solve(
          {label[static_cast<std::size_t>(plan.forcedNode)].is(candidate)},
          -1);
      if (outcome == sat::Result::Sat) {
        feasible = true;
        break;
      }
    }
  }
  arm.conflicts = solver.conflicts();
  foldStats(arm, solver.snapshotStats());
  captureArena(arm, solver.snapshotStats());
  arm.verdict = feasible ? "sat" : "unsat";
  arm.seconds = secondsSince(start);
  return arm;
}

// --- report ----------------------------------------------------------------

double ratio(double fresh, double incremental) {
  return incremental > 0.0 ? fresh / incremental : 0.0;
}

void emitResult(support::JsonWriter& json, const char* scenario,
                const std::string& caseName, const Arm& fresh,
                const Arm& incremental) {
  json.beginObject();
  json.key("scenario").value(scenario);
  json.key("case").value(caseName);
  json.key("fresh_seconds").value(fresh.seconds);
  json.key("fresh_conflicts").value(fresh.conflicts);
  json.key("fresh_verdict").value(fresh.verdict);
  json.key("incremental_seconds").value(incremental.seconds);
  json.key("incremental_conflicts").value(incremental.conflicts);
  json.key("incremental_verdict").value(incremental.verdict);
  if (fresh.decisions + incremental.decisions > 0) {
    json.key("fresh_decisions").value(fresh.decisions);
    json.key("fresh_propagations").value(fresh.propagations);
    json.key("fresh_restarts").value(fresh.restarts);
    json.key("incremental_decisions").value(incremental.decisions);
    json.key("incremental_propagations").value(incremental.propagations);
    json.key("incremental_restarts").value(incremental.restarts);
  }
  json.key("conflict_ratio")
      .value(ratio(static_cast<double>(fresh.conflicts),
                   static_cast<double>(incremental.conflicts)));
  json.key("speedup").value(ratio(fresh.seconds, incremental.seconds));
  // Arena clause-store columns, read off the incremental arm's live solver
  // at the end of its run (fresh arms discard their solvers, so the live
  // arena is the one the clause-store work targets). peak_rss_kb is
  // process-wide and monotone across rows. Gated by check_bench_json.py.
  json.key("arena_bytes").value(incremental.arenaBytes);
  json.key("gc_runs").value(incremental.gcRuns);
  json.key("live_literals").value(incremental.liveLiterals);
  json.key("peak_rss_kb").value(support::peakRssKb());
  json.endObject();
  std::fprintf(stderr,
               "%-16s %-28s fresh %8lld cf %7.3fs | incr %8lld cf %7.3fs\n",
               scenario, caseName.c_str(), fresh.conflicts, fresh.seconds,
               incremental.conflicts, incremental.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string traceOut;
  std::string metricsOut;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      traceOut = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metricsOut = argv[++i];
    }
  }
  if (!traceOut.empty()) telemetry::setTraceEnabled(true);

  const std::int64_t initialBudget = smoke ? 16 : 64;
  support::JsonWriter json;
  json.beginObject();
  json.key("name").value("bench_sat");
  json.key("config").beginObject();
  json.key("smoke").value(smoke);
  json.key("staged_initial_budget").value(initialBudget);
  json.endObject();
  json.key("results").beginArray();

  // Scenario 1: the full ladder, solved once per instance.
  {
    struct Case {
      GridLcl lcl;
      int maxK;
    };
    std::vector<Case> cases;
    cases.push_back({problems::vertexColouring(3), smoke ? 1 : 2});
    if (!smoke) cases.push_back({problems::vertexColouring(4), 3});
    cases.push_back({problems::orientation({1, 3, 4}), 1});
    for (const Case& c : cases) {
      Arm fresh = runLadder(c.lcl, c.maxK, /*incremental=*/false);
      Arm incremental = runLadder(c.lcl, c.maxK, /*incremental=*/true);
      emitResult(json, "synthesis_ladder",
                 c.lcl.name() + " maxK=" + std::to_string(c.maxK), fresh,
                 incremental);
    }
  }

  // Scenario 2: budget-staged deepening at a fixed rung of the ladder.
  {
    struct Case {
      GridLcl lcl;
      int k;
      tiles::TileShape shape;
    };
    // maximal-matching dominates this scenario by design: its instances
    // pair a heavy encode (millions of blocking clauses) with an UNSAT
    // proof that outlives the early budgets, so the fresh regime pays the
    // full re-encode + re-search at every stage. The 4-colouring flagship
    // rung decides within the first budget and shows the two regimes at
    // parity when staging never engages -- kept as the honest baseline.
    std::vector<Case> cases;
    if (smoke) {
      cases.push_back({problems::maximalMatching(), 1, {3, 2}});
    } else {
      cases.push_back({problems::maximalMatching(), 1, {3, 3}});
      cases.push_back({problems::vertexColouring(4), 3, {7, 5}});
    }
    for (const Case& c : cases) {
      Arm fresh = runStagedFresh(c.lcl, c.k, c.shape, initialBudget);
      Arm incremental =
          runStagedIncremental(c.lcl, c.k, c.shape, initialBudget);
      emitResult(json, "staged_ladder",
                 c.lcl.name() + " k=" + std::to_string(c.k) + " " +
                     std::to_string(c.shape.height) + "x" +
                     std::to_string(c.shape.width),
                 fresh, incremental);
    }
  }

  // Scenario 3: seeded branch enumeration over the torus CSP.
  {
    struct Case {
      GridLcl lcl;
      int n;
      int seeds;
    };
    std::vector<Case> cases;
    cases.push_back({problems::orientation({1, 3}), 3, smoke ? 2 : 4});
    if (!smoke) cases.push_back({problems::vertexColouring(2), 5, 4});
    for (const Case& c : cases) {
      Torus2D torus(c.n);
      Arm fresh = runBranchesFresh(torus, c.lcl, c.seeds);
      Arm incremental = runBranchesIncremental(torus, c.lcl, c.seeds);
      emitResult(json, "seeded_branches",
                 c.lcl.name() + " n=" + std::to_string(c.n) + " seeds=" +
                     std::to_string(c.seeds),
                 fresh, incremental);
    }
  }

  json.endArray();
  json.endObject();
  std::printf("%s\n", json.str().c_str());

  if (!traceOut.empty() && !telemetry::writeTraceFile(traceOut)) {
    std::fprintf(stderr, "warning: could not write trace to %s\n",
                 traceOut.c_str());
  }
  if (!metricsOut.empty() && !telemetry::writeMetricsFile(metricsOut)) {
    std::fprintf(stderr, "warning: could not write metrics to %s\n",
                 metricsOut.c_str());
  }
  return 0;
}
