// E9 -- Section 9: the 3-colouring row invariant. For greedy 3-colourings
// of tori: s_r(G) is the same for every row r (Lemma 12); s is odd for odd
// n and |s| <= n/2 (Lemma 14); distinct global colourings realise distinct
// s -- a global degree of freedom that forces Omega(n) via the q-sum
// coordination problem (Theorems 9 and 10).
#include <cstdio>
#include <set>

#include "lcl/global_solver.hpp"
#include "lcl/problems.hpp"
#include "lowerbound/qsum.hpp"
#include "lowerbound/three_colouring_invariant.hpp"
#include "support/table.hpp"

using namespace lclgrid;
using namespace lclgrid::lowerbound;

int main() {
  std::printf("E9: the 3-colouring row invariant s(G) (Section 9)\n\n");

  AsciiTable table({"n", "seed", "rows agree (Lemma 12)", "s(G)",
                    "parity ok (Lemma 14)", "|s| <= n/2"});
  for (int n : {5, 6, 7, 8, 9, 11}) {
    std::set<long long> values;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Torus2D torus(n);
      auto solved = solveGlobally(torus, problems::vertexColouring(3), seed);
      if (!solved.feasible) continue;
      auto colours = makeGreedy(torus, solved.labels);
      auto rows = allRowInvariants(torus, colours);
      bool agree = true;
      for (long long r : rows) agree &= r == rows[0];
      long long s = rows[0];
      values.insert(s);
      bool parity = n % 2 == 0 || ((s % 2 + 2) % 2) == 1;
      table.addRow({fmtInt(n), fmtInt(static_cast<long long>(seed)),
                    agree ? "yes" : "NO", fmtInt(s), parity ? "yes" : "NO",
                    2 * std::abs(s) <= n ? "yes" : "NO"});
    }
    if (values.size() > 1) {
      std::printf("  n=%d realises %zu distinct s values across seeds\n", n,
                  values.size());
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("q-sum coordination (Theorem 10) sanity:\n");
  AsciiTable qsum({"n", "target", "conditions hold", "global solver rounds"});
  for (auto [n, target] : {std::pair{9, 1LL}, {9, 3LL}, {16, 0LL}, {25, 5LL}}) {
    auto run = solveQSumGlobally(n, target);
    qsum.addRow({fmtInt(n), fmtInt(target),
                 qSumConditionsHold(n, target) ? "yes" : "no",
                 run.solved ? fmtInt(run.rounds) : "-"});
  }
  std::printf("%s\n", qsum.render().c_str());
  std::printf(
      "Shape check: the row invariant is constant across rows on every\n"
      "colouring, odd for odd n, bounded by n/2 -- exactly the q(n) family\n"
      "whose coordination problem needs Omega(n) rounds; hence 3-colouring\n"
      "is Omega(n) (Theorem 9).\n");
  return 0;
}
