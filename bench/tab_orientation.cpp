// E5 -- Theorem 22: the complete classification of X-orientations over all
// 32 subsets X of {0,...,4}, paper claim vs. the synthesis oracle +
// feasibility probe, plus a verified run of the optimal algorithm for each
// solvable case.
#include <cstdio>
#include <cstring>
#include <set>

#include "algorithms/orientations.hpp"
#include "lcl/problems.hpp"
#include "lcl/global_solver.hpp"
#include "lcl/verifier.hpp"
#include "local/ids.hpp"
#include "support/table.hpp"
#include "synthesis/oracle.hpp"

using namespace lclgrid;
using namespace lclgrid::algorithms;

int main(int argc, char** argv) {
  // --smoke: every 8th subset only (CI bit-rot check).
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int maskStep = smoke ? 8 : 1;
  std::printf("E5: X-orientation classification (Theorem 22), all 32 subsets\n\n");

  AsciiTable table({"X", "paper (Thm 22)", "oracle verdict",
                    "run n=16: rounds", "verified"});
  int matches = 0;
  int rows = 0;
  for (int mask = 0; mask < 32; mask += maskStep) {
    ++rows;
    std::set<int> x;
    for (int v = 0; v <= 4; ++v) {
      if (mask & (1 << v)) x.insert(v);
    }
    OrientationClass paper = classifyOrientationPaper(x);

    synthesis::OracleOptions options;
    options.synthesis.maxK = 1;
    // n=3 is the cheap odd probe: parity obstructions at n=5 cost millions
    // of SAT conflicts (counting is hard for resolution).
    options.probeSizes = {3, 4};
    auto report =
        classifyOnGrid(problems::orientation(x), options);

    // Agreement between the paper row and the measured verdict.
    bool agree = false;
    switch (paper) {
      case OrientationClass::Constant:
        agree = report.complexity == synthesis::GridComplexity::Constant;
        break;
      case OrientationClass::LogStar:
        agree = report.complexity == synthesis::GridComplexity::LogStar;
        break;
      case OrientationClass::Global:
      case OrientationClass::Unsolvable:
        agree = report.complexity ==
                    synthesis::GridComplexity::ConjecturedGlobal ||
                report.complexity == synthesis::GridComplexity::UnsolvableSomeN;
        break;
    }
    matches += agree;

    std::string runInfo = "-";
    std::string verified = "-";
    if (paper != OrientationClass::Unsolvable) {
      Torus2D torus(16);
      // Budgeted feasibility pre-check: counting-UNSAT orientations (e.g.
      // X = {1}) are exponentially hard for resolution at n = 16.
      auto probe = solveGlobally(torus, problems::orientation(x), 0,
                                 /*conflictBudget=*/200'000);
      if (!probe.decided) {
        runInfo = "budget@16";
      } else if (!probe.feasible) {
        runInfo = "infeasible@16";
      } else {
        auto run =
            solveOrientation(torus, x, local::randomIds(torus.size(), 5));
        if (run.solved) {
          runInfo = fmtInt(run.rounds);
          verified = verify(torus, problems::orientation(x), run.labels)
                         ? "yes"
                         : "NO";
        } else {
          runInfo = "infeasible@16";
        }
      }
    }
    table.addRow({problems::orientationSetName(x),
                  orientationClassName(paper),
                  synthesis::gridComplexityName(report.complexity), runInfo,
                  verified});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper/measured agreement: %d / %d rows\n", matches, rows);
  return matches == rows ? 0 : 1;
}
