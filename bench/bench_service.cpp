// Service daemon throughput: an in-process VerificationService on a TCP
// loopback socket, hammered by concurrent blocking clients with the mixed
// request stream the daemon exists for -- verification (fingerprint-
// referenced after a first by-spec request, inline labels handed to the
// engine zero-copy), classification (report-cache hits after the first)
// and stats polls. Reports per-op requests / qps / p50 / p99 latency as
// JSON in the repo-wide {name, config, results[]} schema -- the qps and
// p99_us columns are what scripts/check_bench_json.py gates and the perf
// trajectory plots (docs/service.md).
//
// Soak mode additionally drives the overload path on purpose: each client
// periodically bursts more kSleep requests than its admission budget, so
// the daemon must answer the excess with explicit kBusy frames (never a
// silent drop, never a crash) while the other clients' traffic continues.
// CI runs the soak under AddressSanitizer; the run fails if any burst
// response goes missing or the expected kBusy rejections never occur.
//
// Chaos mode (--soak S --chaos, docs/robustness.md) additionally arms
// probabilistic fault points across the whole stack (dropped response
// frames, injected connection resets, scheduling jitter, short I/O) and
// swaps the clients for retrying clients with deadlines; every few dozen
// requests a client abandons its connection mid-request (a simulated
// client kill). The run exits non-zero if any request is LOST (retries
// exhausted) or answered WRONG (a verify result that disagrees with the
// known labelling) -- under chaos every failure must stay typed and
// recoverable.
//
// Overload mode (--overload) A/Bs the graceful-degradation policy: each
// client keeps 2x its admission budget of allowDegrade countViolations
// requests pipelined against a small shed threshold, once with shedding
// enabled and once without; the two rows' p99 latencies are the bounded-
// degradation acceptance numbers quoted in docs/robustness.md.
//
// Usage: bench_service [--smoke] [--soak S] [--chaos] [--overload]
//                      [--seconds S] [--clients N]
//                      [--service-threads N] [--engine-threads N]
//                      [--trace-out F] [--metrics-out F]
//   --smoke            CI sizes: 2 clients, ~0.3 s
//   --soak S           run S seconds with overload bursts (implies
//                      test-ops and a small admission budget)
//   --chaos            (with --soak) arm probabilistic faults + retrying
//                      clients + random client kills
//   --overload         run the shed on/off degradation A/B instead of the
//                      throughput run
//   --seconds S        measurement window (default 2.0)
//   --clients N        concurrent client connections (default 4)
//   --service-threads N  daemon worker threads (default 2)
//   --engine-threads N   per-request engine thread budget (default 1)
//   --trace-out F    enable span tracing, write Chrome trace JSON to F
//   --metrics-out F  write the telemetry metrics snapshot to F
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/retry.hpp"
#include "service/service.hpp"
#include "support/faultpoint.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"

using namespace lclgrid;
using service::RetryingClient;
using service::ServiceClient;
namespace fp = lclgrid::support::faultpoint;

namespace {

using Clock = std::chrono::steady_clock;

double microsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Proper 4-colouring of the even-sided torus: colour = 2*(y%2) + (x%2),
/// so both axes flip a distinct bit between neighbours.
std::vector<int> fourColouring(int n) {
  std::vector<int> labels(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      labels[static_cast<std::size_t>(y) * n + x] = 2 * (y % 2) + (x % 2);
    }
  }
  return labels;
}

struct OpStats {
  std::int64_t requests = 0;
  std::vector<double> latenciesUs;
};

struct ClientStats {
  OpStats verify;
  OpStats classify;
  OpStats stats;
  std::int64_t burstRequests = 0;
  std::int64_t busy = 0;
  std::int64_t missingResponses = 0;  // burst replies that never arrived
  std::int64_t lost = 0;   // chaos: retries exhausted, request abandoned
  std::int64_t wrong = 0;  // chaos: a verdict disagreed with the labelling
  std::int64_t kills = 0;  // chaos: simulated client kills
  service::RetryStats retry;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(std::ceil(q * double(sorted.size())) - 1));
  return sorted[index];
}

void clientLoop(int port, double seconds, bool soak, int burstSize,
                ClientStats* out) {
  ServiceClient client = ServiceClient::connectTcp(port);
  const int n = 32;
  const std::vector<int> labels = fourColouring(n);

  service::VerifyRequestFrame bySpec;
  bySpec.spec = "vc:4";
  bySpec.countViolations = true;
  bySpec.n = static_cast<std::uint32_t>(n);
  bySpec.labels = labels;
  const auto first = client.verify(bySpec);
  if (!first) return;  // busy on the very first request: nothing to measure
  ++out->verify.requests;

  // The steady-state request: fingerprint-referenced (no spec resolution,
  // the daemon's cache hot path).
  service::VerifyRequestFrame byFingerprint = bySpec;
  byFingerprint.problemRef = service::ProblemRefKind::kFingerprint;
  byFingerprint.fingerprint = first->fingerprint;
  byFingerprint.spec.clear();

  service::ClassifyRequestFrame classifyFrame;
  classifyFrame.spec = "cvc:3";

  const auto deadline =
      Clock::now() + std::chrono::duration<double>(seconds);
  std::int64_t iteration = 0;
  while (Clock::now() < deadline) {
    ++iteration;
    if (soak && iteration % 8 == 0) {
      // Deliberate overload: more sleeps than the admission budget,
      // back-to-back. Every frame must be answered -- kPong or kBusy.
      for (int i = 0; i < burstSize; ++i) {
        std::vector<std::uint8_t> payload;
        service::wire::appendU32(payload, 2);  // ms
        client.sendFrame(service::wire::FrameType::kSleep,
                         1000u + static_cast<std::uint32_t>(i), payload);
      }
      out->burstRequests += burstSize;
      for (int i = 0; i < burstSize; ++i) {
        const auto reply = client.receive();
        if (!reply) {
          ++out->missingResponses;
          return;
        }
        if (reply->type == service::wire::FrameType::kBusy) ++out->busy;
      }
      continue;
    }
    // Offsets chosen to never collide with the soak burst branch above.
    if (iteration % 16 == 5) {
      const auto start = Clock::now();
      if (client.classify(classifyFrame)) {
        out->classify.latenciesUs.push_back(microsSince(start));
        ++out->classify.requests;
      } else {
        ++out->busy;
      }
      continue;
    }
    if (iteration % 32 == 11 || out->stats.requests == 0) {
      const auto start = Clock::now();
      if (client.stats()) {
        out->stats.latenciesUs.push_back(microsSince(start));
        ++out->stats.requests;
      } else {
        ++out->busy;
      }
      continue;
    }
    const auto start = Clock::now();
    if (client.verify(byFingerprint)) {
      out->verify.latenciesUs.push_back(microsSince(start));
      ++out->verify.requests;
    } else {
      ++out->busy;
    }
  }
}

void emitOpRow(support::JsonWriter& json, const char* op, OpStats& stats,
               double elapsedSeconds, std::int64_t busy, std::int64_t shed,
               std::int64_t timeouts, std::int64_t retries) {
  std::sort(stats.latenciesUs.begin(), stats.latenciesUs.end());
  json.beginObject();
  json.key("op").value(op);
  json.key("requests").value(static_cast<long long>(stats.requests));
  json.key("busy").value(static_cast<long long>(busy));
  json.key("qps").value(double(stats.requests) / elapsedSeconds);
  json.key("p50_us").value(percentile(stats.latenciesUs, 0.50));
  json.key("p99_us").value(percentile(stats.latenciesUs, 0.99));
  // Robustness columns gated by scripts/check_bench_json.py: degradation
  // downgrades, kTimeout answers and absorbed retryable failures.
  json.key("shed").value(static_cast<long long>(shed));
  json.key("timeouts").value(static_cast<long long>(timeouts));
  json.key("retries").value(static_cast<long long>(retries));
  json.endObject();
}

// --- chaos mode --------------------------------------------------------------

/// The probabilistic fault mix armed for --chaos. Fixed seeds keep the
/// schedule reproducible for a given request interleaving; every entry is
/// an outcome the hardening layers must absorb as a typed, retryable
/// failure -- never a hang, crash or wrong answer.
constexpr const char* kChaosFaults =
    "service.write_response:drop@p=0.004@seed=101,"       // lost responses
    "service.read_request:errno=ECONNRESET@p=0.003@seed=102,"  // conn resets
    "service.dispatch:delay=1@p=0.02@seed=103,"           // scheduling jitter
    "pool.task:delay=1@p=0.01@seed=104,"                  // engine jitter
    "client.send:short=5@p=0.02@seed=105,"                // partial sends
    "client.recv:short=3@p=0.02@seed=106";                // partial recvs

void chaosClientLoop(int port, double seconds, int index, ClientStats* out) {
  service::RetryPolicy policy;
  policy.maxAttempts = 6;
  policy.baseDelayMs = 1;
  policy.maxDelayMs = 40;
  policy.jitterSeed =
      0x9e3779b97f4a7c15ull + 977ull * static_cast<unsigned>(index + 1);
  ServiceClient raw = ServiceClient::connectTcp(port);
  // The client deadline is what turns a dropped response frame into a
  // typed TimeoutError instead of a hang; it bounds every stall below.
  raw.setDeadlineMs(250);
  RetryingClient client(std::move(raw), policy);

  const int n = 24;
  // frame.labels is a zero-copy span; the backing vector must outlive
  // every verify call below.
  const std::vector<int> labels = fourColouring(n);
  service::VerifyRequestFrame bySpec;
  bySpec.spec = "vc:4";
  bySpec.countViolations = true;
  bySpec.n = static_cast<std::uint32_t>(n);
  bySpec.labels = labels;

  service::ClassifyRequestFrame classifyFrame;
  classifyFrame.spec = "cvc:3";

  const auto deadline =
      Clock::now() + std::chrono::duration<double>(seconds);
  std::int64_t iteration = 0;
  while (Clock::now() < deadline) {
    ++iteration;
    if (iteration % 29 == 13) {
      // Simulated client kill: abandon the connection with a request in
      // flight. The daemon's worker must cope with the dead socket; the
      // client reconnects and carries on as a fresh connection.
      std::vector<std::uint8_t> payload;
      service::wire::appendU32(payload, 1);  // ms
      try {
        client.client().sendFrame(service::wire::FrameType::kSleep, 4096u,
                                  payload);
      } catch (const std::exception&) {
        // The kill is the point; a send failure just means it died earlier.
      }
      client.client().close();
      ++out->kills;
      for (int attempt = 0; attempt < 8 && !client.client().connected();
           ++attempt) {
        try {
          client.client().reconnect();
        } catch (const std::exception&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
      if (!client.client().connected()) {
        ++out->lost;
        break;
      }
      continue;
    }
    try {
      if (iteration % 16 == 5) {
        const auto start = Clock::now();
        (void)client.classify(classifyFrame);
        out->classify.latenciesUs.push_back(microsSince(start));
        ++out->classify.requests;
      } else if (iteration % 32 == 11) {
        const auto start = Clock::now();
        (void)client.stats();
        out->stats.latenciesUs.push_back(microsSince(start));
        ++out->stats.requests;
      } else {
        const auto start = Clock::now();
        const auto result = client.verify(bySpec);
        out->verify.latenciesUs.push_back(microsSince(start));
        ++out->verify.requests;
        // The labelling is a proper 4-colouring; any other verdict is a
        // silent wrong answer, which chaos must never produce.
        if (!result.feasible || result.violations != 0) ++out->wrong;
      }
    } catch (const std::exception&) {
      // Retries exhausted (or a non-retryable error): the request is LOST.
      ++out->lost;
      if (!client.client().connected()) {
        try {
          client.client().reconnect();
        } catch (const std::exception&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
    }
  }
  out->retry = client.retryStats();
}

// --- overload mode -----------------------------------------------------------

struct OverloadClient {
  OpStats lat;
  std::int64_t busy = 0;
  std::int64_t timeouts = 0;
  std::int64_t degraded = 0;
  std::int64_t exact = 0;
};

/// Keeps 2x the admission budget of allowDegrade countViolations requests
/// pipelined on one connection; classifies every response frame. Latency is
/// measured from the start of each pipelined round to each response.
void overloadClientLoop(int port, double seconds, int window,
                        const std::vector<std::uint8_t>* payload,
                        OverloadClient* out) {
  ServiceClient client = ServiceClient::connectTcp(port);
  client.setDeadlineMs(10000);
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(seconds);
  std::uint32_t id = 1;
  try {
    while (Clock::now() < deadline) {
      const auto start = Clock::now();
      for (int i = 0; i < window; ++i) {
        client.sendFrame(service::wire::FrameType::kVerify, id++, *payload);
      }
      for (int i = 0; i < window; ++i) {
        const auto reply = client.receive();
        if (!reply) return;
        if (reply->type == service::wire::FrameType::kBusy) {
          ++out->busy;
        } else if (reply->type == service::wire::FrameType::kTimeout) {
          ++out->timeouts;
        } else if (reply->type == service::wire::FrameType::kVerifyResult) {
          out->lat.latenciesUs.push_back(microsSince(start));
          ++out->lat.requests;
          const auto result = service::decodeVerifyResult(reply->payload);
          if (result.degraded) {
            ++out->degraded;
          } else {
            ++out->exact;
          }
        }
      }
    }
  } catch (const std::exception&) {
    // A deadline or framing failure ends this client's contribution; the
    // remaining clients keep the pass meaningful.
  }
}

struct OverloadPass {
  OpStats lat;
  std::int64_t busy = 0;
  std::int64_t timeouts = 0;
  std::int64_t degraded = 0;
  std::int64_t exact = 0;
  std::int64_t shedDowngrades = 0;
  std::int64_t daemonTimeouts = 0;
  double elapsed = 0;
};

OverloadPass runOverloadPass(bool shedOn, double seconds, int clients,
                             int serviceThreads, int engineThreads) {
  service::ServiceConfig config;
  config.serviceThreads = serviceThreads;
  config.engineThreads = engineThreads;
  config.maxQueuedPerClient = 8;
  config.shedEnabled = shedOn;
  config.shedQueueDepth = std::max(2, serviceThreads);
  service::VerificationService daemon(config);
  daemon.start();

  // A labelling with an adjacent clash at the origin: early-exit verify
  // (the degraded form) finds it almost immediately, while an exact count
  // still scans all n^2 cells -- the asymmetry shedding exists to exploit.
  const int n = 256;
  std::vector<int> labels = fourColouring(n);
  labels[1] = labels[0];
  service::VerifyRequestFrame frame;
  frame.spec = "vc:4";
  frame.countViolations = true;
  frame.allowDegrade = true;
  frame.n = static_cast<std::uint32_t>(n);
  frame.labels = labels;  // span: `labels` stays alive past the encode
  const std::vector<std::uint8_t> payload =
      service::encodeVerifyRequest(frame);

  const int window = 2 * config.maxQueuedPerClient;  // 2x admission budget
  std::vector<OverloadClient> perClient(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto started = Clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back(overloadClientLoop, daemon.port(), seconds, window,
                         &payload, &perClient[static_cast<std::size_t>(i)]);
  }
  for (std::thread& thread : threads) thread.join();
  OverloadPass pass;
  pass.elapsed =
      std::chrono::duration<double>(Clock::now() - started).count();
  daemon.stop();
  const service::ServiceCounters counters = daemon.counters();
  pass.shedDowngrades = counters.shedDowngrades;
  pass.daemonTimeouts = counters.timeouts;
  for (OverloadClient& client : perClient) {
    pass.lat.requests += client.lat.requests;
    pass.lat.latenciesUs.insert(pass.lat.latenciesUs.end(),
                                client.lat.latenciesUs.begin(),
                                client.lat.latenciesUs.end());
    pass.busy += client.busy;
    pass.timeouts += client.timeouts;
    pass.degraded += client.degraded;
    pass.exact += client.exact;
  }
  return pass;
}

void emitOverloadRow(support::JsonWriter& json, const char* op,
                     OverloadPass& pass) {
  std::sort(pass.lat.latenciesUs.begin(), pass.lat.latenciesUs.end());
  json.beginObject();
  json.key("op").value(op);
  json.key("requests").value(static_cast<long long>(pass.lat.requests));
  json.key("busy").value(static_cast<long long>(pass.busy));
  json.key("qps").value(double(pass.lat.requests) / pass.elapsed);
  json.key("p50_us").value(percentile(pass.lat.latenciesUs, 0.50));
  json.key("p99_us").value(percentile(pass.lat.latenciesUs, 0.99));
  json.key("shed").value(static_cast<long long>(pass.shedDowngrades));
  json.key("timeouts").value(static_cast<long long>(pass.daemonTimeouts));
  json.key("retries").value(0LL);
  json.key("degraded").value(static_cast<long long>(pass.degraded));
  json.key("exact").value(static_cast<long long>(pass.exact));
  json.endObject();
}

int runOverload(double seconds, int clients, int serviceThreads,
                int engineThreads) {
  OverloadPass shedOn =
      runOverloadPass(true, seconds, clients, serviceThreads, engineThreads);
  OverloadPass shedOff =
      runOverloadPass(false, seconds, clients, serviceThreads, engineThreads);

  support::JsonWriter json;
  json.beginObject();
  json.key("name").value("bench_service");
  json.key("config").beginObject();
  json.key("mode").value("overload");
  json.key("clients").value(clients);
  json.key("service_threads").value(serviceThreads);
  json.key("engine_threads").value(engineThreads);
  json.key("seconds").value(shedOn.elapsed + shedOff.elapsed);
  json.key("window_per_client").value(2 * 8);
  json.endObject();
  json.key("results").beginArray();
  emitOverloadRow(json, "overload_shed_on", shedOn);
  emitOverloadRow(json, "overload_shed_off", shedOff);
  json.endArray();
  json.endObject();
  std::printf("%s\n", json.str().c_str());

  // Acceptance: the shed-on pass must actually have downgraded work
  // (otherwise the A/B measured nothing), the shed-off pass must stay
  // exact, and both passes must have completed requests.
  if (shedOn.lat.requests == 0 || shedOff.lat.requests == 0) {
    std::fprintf(stderr, "bench_service: an overload pass saw no results\n");
    return 1;
  }
  if (shedOn.shedDowngrades == 0 || shedOn.degraded == 0) {
    std::fprintf(stderr,
                 "bench_service: overload never engaged degradation\n");
    return 1;
  }
  if (shedOff.degraded != 0) {
    std::fprintf(stderr,
                 "bench_service: shed-off pass produced degraded results\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  int clients = 4;
  int serviceThreads = 2;
  int engineThreads = 1;
  bool smoke = false;
  bool soak = false;
  bool chaos = false;
  bool overload = false;
  std::string traceOut;
  std::string metricsOut;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
      soak = true;
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--service-threads") == 0 &&
               i + 1 < argc) {
      serviceThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--engine-threads") == 0 && i + 1 < argc) {
      engineThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      traceOut = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metricsOut = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--soak S] [--chaos] [--overload] "
                   "[--seconds S] "
                   "[--clients N] [--service-threads N] [--engine-threads N] "
                   "[--trace-out F] [--metrics-out F]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    seconds = std::min(seconds, 0.3);
    clients = std::min(clients, 2);
  }
  if (clients < 1 || serviceThreads < 1 || seconds <= 0) {
    std::fprintf(stderr, "bench_service: bad arguments\n");
    return 2;
  }
  if (chaos && !soak) {
    std::fprintf(stderr, "bench_service: --chaos requires --soak\n");
    return 2;
  }
  if (overload) {
    return runOverload(seconds, clients, serviceThreads, engineThreads);
  }
  if (!traceOut.empty()) telemetry::setTraceEnabled(true);

  service::ServiceConfig config;
  config.serviceThreads = serviceThreads;
  config.engineThreads = engineThreads;
  if (soak) {
    config.enableTestOps = true;
    config.maxQueuedPerClient = 2;  // small budget: bursts must draw kBusy
  }
  if (chaos) {
    // A modest queue-wait deadline keeps the kTimeout path live under the
    // injected scheduling jitter; the retrying clients absorb it.
    config.requestDeadlineMs = 100;
    // LCLGRID_CHAOS_FAULTS overrides the default mix (fault triage: run
    // the chaos harness against a single entry at a time).
    const char* overrideSpec = std::getenv("LCLGRID_CHAOS_FAULTS");
    fp::armSpecString(overrideSpec != nullptr ? overrideSpec : kChaosFaults);
  }
  const int burstSize = config.maxQueuedPerClient + 4;
  service::VerificationService daemon(config);
  daemon.start();

  std::vector<ClientStats> perClient(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto started = Clock::now();
  for (int i = 0; i < clients; ++i) {
    if (chaos) {
      threads.emplace_back(chaosClientLoop, daemon.port(), seconds, i,
                           &perClient[static_cast<std::size_t>(i)]);
    } else {
      threads.emplace_back(clientLoop, daemon.port(), seconds, soak,
                           burstSize, &perClient[static_cast<std::size_t>(i)]);
    }
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - started).count();
  daemon.stop();
  const service::ServiceCounters daemonCounters = daemon.counters();
  std::int64_t faultsFired = 0;
  if (chaos) {
    for (const auto& point : fp::registeredPoints()) faultsFired += point.fired;
    fp::disarmAll();
  }

  OpStats verify;
  OpStats classify;
  OpStats stats;
  OpStats all;
  std::int64_t busy = 0;
  std::int64_t burstRequests = 0;
  std::int64_t missing = 0;
  std::int64_t lost = 0;
  std::int64_t wrong = 0;
  std::int64_t kills = 0;
  std::int64_t retries = 0;
  for (ClientStats& client : perClient) {
    const auto merge = [&all](OpStats& into, OpStats& from) {
      into.requests += from.requests;
      all.requests += from.requests;
      all.latenciesUs.insert(all.latenciesUs.end(), from.latenciesUs.begin(),
                             from.latenciesUs.end());
      into.latenciesUs.insert(into.latenciesUs.end(),
                              from.latenciesUs.begin(),
                              from.latenciesUs.end());
    };
    merge(verify, client.verify);
    merge(classify, client.classify);
    merge(stats, client.stats);
    all.requests += client.burstRequests;
    burstRequests += client.burstRequests;
    busy += client.busy;
    missing += client.missingResponses;
    lost += client.lost;
    wrong += client.wrong;
    kills += client.kills;
    // Absorbed retryable failures: every one cost an extra attempt.
    retries += client.retry.busy + client.retry.timeouts +
               client.retry.disconnects;
  }

  support::JsonWriter json;
  json.beginObject();
  json.key("name").value("bench_service");
  json.key("config").beginObject();
  json.key("clients").value(clients);
  json.key("service_threads").value(serviceThreads);
  json.key("engine_threads").value(engineThreads);
  json.key("seconds").value(elapsed);
  json.key("smoke").value(smoke);
  json.key("soak").value(soak);
  json.key("chaos").value(chaos);
  json.key("max_queued_per_client").value(config.maxQueuedPerClient);
  json.key("burst_requests").value(static_cast<long long>(burstRequests));
  json.key("busy_rejections").value(static_cast<long long>(busy));
  json.key("missing_responses").value(static_cast<long long>(missing));
  json.key("client_kills").value(static_cast<long long>(kills));
  json.key("lost_responses").value(static_cast<long long>(lost));
  json.key("wrong_responses").value(static_cast<long long>(wrong));
  json.key("faults_fired").value(static_cast<long long>(faultsFired));
  json.endObject();
  json.key("results").beginArray();
  emitOpRow(json, "verify", verify, elapsed, 0, 0, 0, 0);
  emitOpRow(json, "classify", classify, elapsed, 0, 0, 0, 0);
  emitOpRow(json, "stats", stats, elapsed, 0, 0, 0, 0);
  emitOpRow(json, "all", all, elapsed, busy, daemonCounters.shedDowngrades,
            daemonCounters.timeouts, retries);
  json.endArray();
  json.endObject();
  std::printf("%s\n", json.str().c_str());

  if (!traceOut.empty() && !telemetry::writeTraceFile(traceOut)) {
    std::fprintf(stderr, "bench_service: failed to write %s\n",
                 traceOut.c_str());
  }
  if (!metricsOut.empty() && !telemetry::writeMetricsFile(metricsOut)) {
    std::fprintf(stderr, "bench_service: failed to write %s\n",
                 metricsOut.c_str());
  }

  // Soak acceptance: every burst frame answered, and the overload path
  // actually exercised (a soak where kBusy never fires measured nothing).
  if (missing != 0) {
    std::fprintf(stderr, "bench_service: %lld burst responses missing\n",
                 static_cast<long long>(missing));
    return 1;
  }
  if (soak && burstRequests > 0 && busy == 0) {
    std::fprintf(stderr,
                 "bench_service: soak drove %lld burst requests but saw no "
                 "kBusy rejection\n",
                 static_cast<long long>(burstRequests));
    return 1;
  }
  // Chaos acceptance: every request eventually answered correctly (no lost
  // or wrong responses), and the armed faults actually fired -- a chaos
  // run where nothing went wrong on purpose validated nothing.
  if (chaos) {
    if (lost != 0 || wrong != 0) {
      std::fprintf(stderr,
                   "bench_service: chaos lost %lld and mis-answered %lld "
                   "requests\n",
                   static_cast<long long>(lost), static_cast<long long>(wrong));
      return 1;
    }
    if (faultsFired == 0) {
      std::fprintf(stderr,
                   "bench_service: chaos armed faults but none fired\n");
      return 1;
    }
  }
  return 0;
}
