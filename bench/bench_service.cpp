// Service daemon throughput: an in-process VerificationService on a TCP
// loopback socket, hammered by concurrent blocking clients with the mixed
// request stream the daemon exists for -- verification (fingerprint-
// referenced after a first by-spec request, inline labels handed to the
// engine zero-copy), classification (report-cache hits after the first)
// and stats polls. Reports per-op requests / qps / p50 / p99 latency as
// JSON in the repo-wide {name, config, results[]} schema -- the qps and
// p99_us columns are what scripts/check_bench_json.py gates and the perf
// trajectory plots (docs/service.md).
//
// Soak mode additionally drives the overload path on purpose: each client
// periodically bursts more kSleep requests than its admission budget, so
// the daemon must answer the excess with explicit kBusy frames (never a
// silent drop, never a crash) while the other clients' traffic continues.
// CI runs the soak under AddressSanitizer; the run fails if any burst
// response goes missing or the expected kBusy rejections never occur.
//
// Usage: bench_service [--smoke] [--soak S] [--seconds S] [--clients N]
//                      [--service-threads N] [--engine-threads N]
//                      [--trace-out F] [--metrics-out F]
//   --smoke            CI sizes: 2 clients, ~0.3 s
//   --soak S           run S seconds with overload bursts (implies
//                      test-ops and a small admission budget)
//   --seconds S        measurement window (default 2.0)
//   --clients N        concurrent client connections (default 4)
//   --service-threads N  daemon worker threads (default 2)
//   --engine-threads N   per-request engine thread budget (default 1)
//   --trace-out F    enable span tracing, write Chrome trace JSON to F
//   --metrics-out F  write the telemetry metrics snapshot to F
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/service.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"

using namespace lclgrid;
using service::ServiceClient;

namespace {

using Clock = std::chrono::steady_clock;

double microsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Proper 4-colouring of the even-sided torus: colour = 2*(y%2) + (x%2),
/// so both axes flip a distinct bit between neighbours.
std::vector<int> fourColouring(int n) {
  std::vector<int> labels(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      labels[static_cast<std::size_t>(y) * n + x] = 2 * (y % 2) + (x % 2);
    }
  }
  return labels;
}

struct OpStats {
  std::int64_t requests = 0;
  std::vector<double> latenciesUs;
};

struct ClientStats {
  OpStats verify;
  OpStats classify;
  OpStats stats;
  std::int64_t burstRequests = 0;
  std::int64_t busy = 0;
  std::int64_t missingResponses = 0;  // burst replies that never arrived
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(std::ceil(q * double(sorted.size())) - 1));
  return sorted[index];
}

void clientLoop(int port, double seconds, bool soak, int burstSize,
                ClientStats* out) {
  ServiceClient client = ServiceClient::connectTcp(port);
  const int n = 32;
  const std::vector<int> labels = fourColouring(n);

  service::VerifyRequestFrame bySpec;
  bySpec.spec = "vc:4";
  bySpec.countViolations = true;
  bySpec.n = static_cast<std::uint32_t>(n);
  bySpec.labels = labels;
  const auto first = client.verify(bySpec);
  if (!first) return;  // busy on the very first request: nothing to measure
  ++out->verify.requests;

  // The steady-state request: fingerprint-referenced (no spec resolution,
  // the daemon's cache hot path).
  service::VerifyRequestFrame byFingerprint = bySpec;
  byFingerprint.problemRef = service::ProblemRefKind::kFingerprint;
  byFingerprint.fingerprint = first->fingerprint;
  byFingerprint.spec.clear();

  service::ClassifyRequestFrame classifyFrame;
  classifyFrame.spec = "cvc:3";

  const auto deadline =
      Clock::now() + std::chrono::duration<double>(seconds);
  std::int64_t iteration = 0;
  while (Clock::now() < deadline) {
    ++iteration;
    if (soak && iteration % 8 == 0) {
      // Deliberate overload: more sleeps than the admission budget,
      // back-to-back. Every frame must be answered -- kPong or kBusy.
      for (int i = 0; i < burstSize; ++i) {
        std::vector<std::uint8_t> payload;
        service::wire::appendU32(payload, 2);  // ms
        client.sendFrame(service::wire::FrameType::kSleep,
                         1000u + static_cast<std::uint32_t>(i), payload);
      }
      out->burstRequests += burstSize;
      for (int i = 0; i < burstSize; ++i) {
        const auto reply = client.receive();
        if (!reply) {
          ++out->missingResponses;
          return;
        }
        if (reply->type == service::wire::FrameType::kBusy) ++out->busy;
      }
      continue;
    }
    // Offsets chosen to never collide with the soak burst branch above.
    if (iteration % 16 == 5) {
      const auto start = Clock::now();
      if (client.classify(classifyFrame)) {
        out->classify.latenciesUs.push_back(microsSince(start));
        ++out->classify.requests;
      } else {
        ++out->busy;
      }
      continue;
    }
    if (iteration % 32 == 11 || out->stats.requests == 0) {
      const auto start = Clock::now();
      if (client.stats()) {
        out->stats.latenciesUs.push_back(microsSince(start));
        ++out->stats.requests;
      } else {
        ++out->busy;
      }
      continue;
    }
    const auto start = Clock::now();
    if (client.verify(byFingerprint)) {
      out->verify.latenciesUs.push_back(microsSince(start));
      ++out->verify.requests;
    } else {
      ++out->busy;
    }
  }
}

void emitOpRow(support::JsonWriter& json, const char* op, OpStats& stats,
               double elapsedSeconds, std::int64_t busy) {
  std::sort(stats.latenciesUs.begin(), stats.latenciesUs.end());
  json.beginObject();
  json.key("op").value(op);
  json.key("requests").value(static_cast<long long>(stats.requests));
  json.key("busy").value(static_cast<long long>(busy));
  json.key("qps").value(double(stats.requests) / elapsedSeconds);
  json.key("p50_us").value(percentile(stats.latenciesUs, 0.50));
  json.key("p99_us").value(percentile(stats.latenciesUs, 0.99));
  json.endObject();
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  int clients = 4;
  int serviceThreads = 2;
  int engineThreads = 1;
  bool smoke = false;
  bool soak = false;
  std::string traceOut;
  std::string metricsOut;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
      soak = true;
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--service-threads") == 0 &&
               i + 1 < argc) {
      serviceThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--engine-threads") == 0 && i + 1 < argc) {
      engineThreads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      traceOut = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metricsOut = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--soak S] [--seconds S] "
                   "[--clients N] [--service-threads N] [--engine-threads N] "
                   "[--trace-out F] [--metrics-out F]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    seconds = std::min(seconds, 0.3);
    clients = std::min(clients, 2);
  }
  if (clients < 1 || serviceThreads < 1 || seconds <= 0) {
    std::fprintf(stderr, "bench_service: bad arguments\n");
    return 2;
  }
  if (!traceOut.empty()) telemetry::setTraceEnabled(true);

  service::ServiceConfig config;
  config.serviceThreads = serviceThreads;
  config.engineThreads = engineThreads;
  if (soak) {
    config.enableTestOps = true;
    config.maxQueuedPerClient = 2;  // small budget: bursts must draw kBusy
  }
  const int burstSize = config.maxQueuedPerClient + 4;
  service::VerificationService daemon(config);
  daemon.start();

  std::vector<ClientStats> perClient(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto started = Clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back(clientLoop, daemon.port(), seconds, soak, burstSize,
                         &perClient[static_cast<std::size_t>(i)]);
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - started).count();
  daemon.stop();

  OpStats verify;
  OpStats classify;
  OpStats stats;
  OpStats all;
  std::int64_t busy = 0;
  std::int64_t burstRequests = 0;
  std::int64_t missing = 0;
  for (ClientStats& client : perClient) {
    const auto merge = [&all](OpStats& into, OpStats& from) {
      into.requests += from.requests;
      all.requests += from.requests;
      all.latenciesUs.insert(all.latenciesUs.end(), from.latenciesUs.begin(),
                             from.latenciesUs.end());
      into.latenciesUs.insert(into.latenciesUs.end(),
                              from.latenciesUs.begin(),
                              from.latenciesUs.end());
    };
    merge(verify, client.verify);
    merge(classify, client.classify);
    merge(stats, client.stats);
    all.requests += client.burstRequests;
    burstRequests += client.burstRequests;
    busy += client.busy;
    missing += client.missingResponses;
  }

  support::JsonWriter json;
  json.beginObject();
  json.key("name").value("bench_service");
  json.key("config").beginObject();
  json.key("clients").value(clients);
  json.key("service_threads").value(serviceThreads);
  json.key("engine_threads").value(engineThreads);
  json.key("seconds").value(elapsed);
  json.key("smoke").value(smoke);
  json.key("soak").value(soak);
  json.key("max_queued_per_client").value(config.maxQueuedPerClient);
  json.key("burst_requests").value(static_cast<long long>(burstRequests));
  json.key("busy_rejections").value(static_cast<long long>(busy));
  json.key("missing_responses").value(static_cast<long long>(missing));
  json.endObject();
  json.key("results").beginArray();
  emitOpRow(json, "verify", verify, elapsed, 0);
  emitOpRow(json, "classify", classify, elapsed, 0);
  emitOpRow(json, "stats", stats, elapsed, 0);
  emitOpRow(json, "all", all, elapsed, busy);
  json.endArray();
  json.endObject();
  std::printf("%s\n", json.str().c_str());

  if (!traceOut.empty() && !telemetry::writeTraceFile(traceOut)) {
    std::fprintf(stderr, "bench_service: failed to write %s\n",
                 traceOut.c_str());
  }
  if (!metricsOut.empty() && !telemetry::writeMetricsFile(metricsOut)) {
    std::fprintf(stderr, "bench_service: failed to write %s\n",
                 metricsOut.c_str());
  }

  // Soak acceptance: every burst frame answered, and the overload path
  // actually exercised (a soak where kBusy never fires measured nothing).
  if (missing != 0) {
    std::fprintf(stderr, "bench_service: %lld burst responses missing\n",
                 static_cast<long long>(missing));
    return 1;
  }
  if (soak && burstRequests > 0 && busy == 0) {
    std::fprintf(stderr,
                 "bench_service: soak drove %lld burst requests but saw no "
                 "kBusy rejection\n",
                 static_cast<long long>(burstRequests));
    return 1;
  }
  return 0;
}
