// E11 -- Theorem 27 (Appendix A.3): corner coordination is Theta(sqrt n) on
// general graphs. The upper-bound algorithm (sides directed corner-to-
// corner after a boundary walk) uses ~sqrt(N) rounds on an N-node grid;
// Proposition 28's ball-growth count is reproduced alongside.
#include <cmath>
#include <cstdio>

#include "corner/corner_algorithm.hpp"
#include "local/ids.hpp"
#include "support/table.hpp"

using namespace lclgrid;
using namespace lclgrid::corner;

int main() {
  std::printf("E11: corner coordination rounds vs sqrt(N) (Theorem 27)\n\n");

  AsciiTable table({"m", "N = m^2", "rounds", "2*sqrt(N)", "verified"});
  for (int m : {4, 8, 16, 32, 64, 128}) {
    BoundedGrid grid(m);
    auto run = solveCornerCoordination(grid, local::randomIds(grid.size(), 3));
    table.addRow({fmtInt(m), fmtInt(grid.size()), fmtInt(run.rounds),
                  fmtDouble(2 * std::sqrt(grid.size()), 1),
                  run.solved && verifyCornerLabelling(grid, run.labelling)
                      ? "yes"
                      : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Proposition 28: |B_r(corner)| = (r+2 choose 2):\n");
  AsciiTable ball({"r", "|B_r|", "(r+2 choose 2)"});
  BoundedGrid grid(64);
  for (int r : {0, 1, 2, 4, 8, 16}) {
    ball.addRow({fmtInt(r), fmtInt(cornerBallSize(grid, r)),
                 fmtInt((r + 2) * (r + 1) / 2)});
  }
  std::printf("%s\n", ball.render().c_str());
  std::printf(
      "Shape check: rounds grow as sqrt(N) (each row doubles m and the\n"
      "round count doubles with it), matching the Theta(sqrt n) bound; the\n"
      "quadratic ball growth is why 2*sqrt(n) rounds always reach a corner.\n");
  return 0;
}
