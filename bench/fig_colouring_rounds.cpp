// E6 -- Theorem 4 vs Theorem 9 as a round-complexity figure: the
// synthesized normal-form 4-colouring (Theta(log* n): flat in n) against
// the brute-force global 3-colouring (Theta(n): linear in n). The explicit
// Section 8 construction is reported separately: at laptop-scale ell its
// radius-assignment CSP is infeasible (see DESIGN.md), which the pipeline
// reports honestly.
#include <cstdio>

#include "algorithms/four_colouring.hpp"
#include "lcl/global_solver.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/ids.hpp"
#include "support/numeric.hpp"
#include "support/table.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/synthesizer.hpp"

using namespace lclgrid;

int main() {
  std::printf("E6: 4-colouring rounds (Theta(log* n)) vs global 3-colouring (Theta(n))\n\n");

  auto fourCol = problems::vertexColouring(4);
  auto synthesis = synthesis::synthesize(fourCol, {.maxK = 3});
  if (!synthesis.success) {
    std::printf("synthesis failed -- cannot run the experiment\n");
    return 1;
  }
  synthesis::NormalFormAlgorithm algorithm(*synthesis.rule);

  AsciiTable table({"n", "log* n", "4-col normal form: rounds", "verified",
                    "3-col brute force: rounds"});
  for (int n : {24, 32, 48, 64, 96, 128}) {
    Torus2D torus(n);
    auto run = algorithm.execute(torus, local::randomIds(torus.size(), 7));
    bool ok = run.solved && verify(torus, fourCol, run.labels);
    table.addRow({fmtInt(n), fmtInt(logStar(n)), fmtInt(run.rounds),
                  ok ? "yes" : "NO", fmtInt(bruteForceRounds(n))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Section 8 explicit construction (d = 2), honest parameter report:\n");
  AsciiTable sec8({"n", "ell ladder outcome", "note"});
  for (int n : {32, 64}) {
    TorusD torus(2, n);
    auto run = algorithms::fourColouring(
        torus, local::randomIds(static_cast<int>(torus.size()), 7));
    sec8.addRow({fmtInt(n),
                 run.solved ? ("solved, ell=" + fmtInt(run.ell)) : run.failure,
                 run.solved ? (run.radiusByBacktracking ? "radii by backtracking"
                                                        : "greedy radii")
                            : "paper needs ell = 1+12d*16^d"});
  }
  std::printf("%s\n", sec8.render().c_str());
  std::printf(
      "Shape check: the normal-form rounds are flat in n (log* n is constant\n"
      "at these sizes) while the brute-force global solver scales linearly.\n");
  return 0;
}
