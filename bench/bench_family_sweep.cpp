// Family sweep throughput: the engine's concurrent oracle driver over the
// X-orientation family of Theorem 22 (all 32 subsets X of {0..4}) plus the
// vertex-colouring ladder -- the multi-instance classification workload of
// the ROADMAP, the kind of machine classification that problem-family
// surveys lean on. Reports the sweep wall time serial vs. threaded and the
// fingerprint-cache statistics, as JSON in the repo-wide
// {name, config, results[]} schema.
//
// Usage: bench_family_sweep [--threads N] [--smoke]
//                            [--trace-out F] [--metrics-out F]
//   --threads N  lanes for the concurrent sweep (default: hw concurrency)
//   --smoke      tiny family / budgets, for CI bit-rot checks
//   --trace-out F    enable span tracing, write Chrome trace JSON to F
//   --metrics-out F  write the telemetry metrics snapshot to F
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "engine/family_sweep.hpp"
#include "engine/thread_pool.hpp"
#include "lcl/problems.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"

using namespace lclgrid;

int main(int argc, char** argv) {
  int threads = engine::defaultThreads();
  bool smoke = false;
  std::string traceOut;
  std::string metricsOut;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      traceOut = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metricsOut = argv[++i];
    }
  }
  if (threads < 1) {
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--smoke] [--trace-out F] "
                 "[--metrics-out F] (N >= 1)\n",
                 argv[0]);
    return 2;
  }
  if (!traceOut.empty()) telemetry::setTraceEnabled(true);

  // The family: every X-orientation (32 subsets), the vertex-colouring
  // ladder, and a deliberate duplicate relation (weak-2-colouring-4 is
  // proper 2-colouring) to exercise the fingerprint cache. Smoke mode keeps
  // a representative slice.
  std::vector<GridLcl> family;
  const int maskStep = smoke ? 8 : 1;
  for (int mask = 0; mask < 32; mask += maskStep) {
    std::set<int> x;
    for (int v = 0; v <= 4; ++v) {
      if (mask & (1 << v)) x.insert(v);
    }
    family.push_back(problems::orientation(x));
  }
  for (int k = 2; k <= (smoke ? 3 : 5); ++k) {
    family.push_back(problems::vertexColouring(k));
  }
  family.push_back(problems::weakColouring(2, 4));

  engine::SweepOptions options;
  options.oracle.synthesis.maxK = 1;
  // n=3 is the cheap odd probe: parity obstructions at n=5 cost millions
  // of SAT conflicts (counting is hard for resolution).
  options.oracle.probeSizes = smoke ? std::vector<int>{3} : std::vector<int>{3, 4};
  options.oracle.probeConflictBudget = smoke ? 50'000 : 300'000;

  options.engine.threads = 1;
  auto serial = engine::sweepFamily(family, options);

  options.engine.threads = threads;
  auto sweep = engine::sweepFamily(family, options);

  std::string json = engine::sweepReportJson(sweep, options);
  // Splice the serial-vs-threaded comparison into the top-level object;
  // guard the shape assumption so a report format change can never emit
  // silently corrupt JSON to the perf-trajectory tooling.
  if (json.empty() || json.back() != '}') {
    std::fprintf(stderr, "FAIL: sweep report is not a JSON object\n");
    return 1;
  }
  support::JsonWriter extra;
  extra.beginObject();
  extra.key("serial_seconds").value(serial.seconds);
  extra.key("threaded_seconds").value(sweep.seconds);
  extra.key("sweep_speedup").value(serial.seconds / sweep.seconds);
  extra.key("smoke").value(smoke);
  extra.endObject();
  json.back() = ',';
  json += extra.str().substr(1);
  std::printf("%s\n", json.c_str());

  if (!traceOut.empty() && !telemetry::writeTraceFile(traceOut)) {
    std::fprintf(stderr, "warning: could not write trace to %s\n",
                 traceOut.c_str());
  }
  if (!metricsOut.empty() && !telemetry::writeMetricsFile(metricsOut)) {
    std::fprintf(stderr, "warning: could not write metrics to %s\n",
                 metricsOut.c_str());
  }

  // Shape check: the cache must have collapsed the duplicate relation
  // (vertex-2-colouring appears again as weak-2-colouring-4).
  if (sweep.cacheHits < 1) {
    std::fprintf(stderr, "FAIL: fingerprint cache never hit\n");
    return 1;
  }
  for (std::size_t i = 0; i < family.size(); ++i) {
    if (serial.entries[i].report->complexity !=
        sweep.entries[i].report->complexity) {
      std::fprintf(stderr, "FAIL: serial and threaded verdicts disagree\n");
      return 1;
    }
  }
  return 0;
}
