// E2 -- the synthesis case numbers of Section 7: the 16 anchor tiles of
// dimensions 3x2 at k = 1 (displayed in the paper), the 2079 tiles of
// dimensions 7x5 at k = 3 used by the 4-colouring synthesis, and the SAT
// solve "in a matter of seconds".
#include <chrono>
#include <cstdio>

#include "lcl/problems.hpp"
#include "support/table.hpp"
#include "synthesis/synthesizer.hpp"
#include "tiles/enumerator.hpp"

using namespace lclgrid;

int main() {
  std::printf("E2: tile enumeration and the 4-colouring synthesis (Section 7)\n\n");

  AsciiTable tileTable({"k", "window (rows x cols)", "tiles (paper)",
                        "tiles (measured)", "candidates tried", "seconds"});
  struct Case {
    int k, h, w;
    const char* paper;
  };
  for (const Case& c : {Case{1, 3, 2, "16 (figure)"}, Case{1, 3, 3, "-"},
                        Case{2, 5, 3, "-"}, Case{2, 5, 5, "-"},
                        Case{3, 7, 5, "2079"}, Case{3, 7, 7, "-"}}) {
    tiles::EnumerationStats stats;
    auto t0 = std::chrono::steady_clock::now();
    auto set = tiles::enumerateTiles(c.k, c.h, c.w, &stats);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    tileTable.addRow({fmtInt(c.k),
                      fmtInt(c.h) + "x" + fmtInt(c.w), c.paper,
                      fmtInt(set.size()), fmtInt(stats.candidatesTried),
                      fmtDouble(seconds, 3)});
  }
  std::printf("%s\n", tileTable.render().c_str());

  std::printf("4-colouring synthesis per (k, window):\n");
  AsciiTable synth({"k", "window", "tiles", "clauses", "SAT conflicts",
                    "result (paper)", "result (measured)", "seconds"});
  auto lcl = problems::vertexColouring(4);
  struct SCase {
    int k, h, w;
    const char* paper;
  };
  for (const SCase& c :
       {SCase{1, 3, 2, "no solution"}, SCase{2, 5, 4, "no solution"},
        SCase{3, 7, 5, "SAT in seconds"}}) {
    auto attempt = synthesis::synthesizeForShape(lcl, c.k,
                                                 tiles::TileShape{c.h, c.w});
    synth.addRow({fmtInt(c.k), fmtInt(c.h) + "x" + fmtInt(c.w),
                  fmtInt(attempt.tileCount), fmtInt(attempt.clauseCount),
                  fmtInt(attempt.satConflicts), c.paper,
                  attempt.success ? "SAT" : attempt.failureReason,
                  fmtDouble(attempt.seconds, 3)});
  }
  std::printf("%s\n", synth.render().c_str());
  std::printf(
      "Shape check: k=1 gives exactly the paper's 16 tiles; k=3 with 7x5\n"
      "windows gives exactly 2079 tiles; synthesis fails below k=3 and\n"
      "succeeds at k=3 within seconds.\n");
  return 0;
}
