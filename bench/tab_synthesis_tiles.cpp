// E2 -- the synthesis case numbers of Section 7: the 16 anchor tiles of
// dimensions 3x2 at k = 1 (displayed in the paper), the 2079 tiles of
// dimensions 7x5 at k = 3 used by the 4-colouring synthesis, and the SAT
// solve "in a matter of seconds". The synthesis table now runs every case
// twice -- a fresh solver per instance vs ONE live incremental solver
// walking the ladder (PR 3) -- and prints both columns side by side; the
// verdicts must agree case by case.
//
// Usage: tab_synthesis_tiles [--smoke]
//   --smoke   trim to the k <= 2 cases (CI bit-rot check)
#include <chrono>
#include <cstdio>
#include <cstring>

#include "lcl/problems.hpp"
#include "support/table.hpp"
#include "synthesis/synthesizer.hpp"
#include "tiles/enumerator.hpp"
#include "support/timing.hpp"

using namespace lclgrid;

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("E2: tile enumeration and the 4-colouring synthesis (Section 7)\n\n");

  AsciiTable tileTable({"k", "window (rows x cols)", "tiles (paper)",
                        "tiles (measured)", "candidates tried", "seconds"});
  struct Case {
    int k, h, w;
    const char* paper;
  };
  std::vector<Case> tileCases = {Case{1, 3, 2, "16 (figure)"},
                                 Case{1, 3, 3, "-"}, Case{2, 5, 3, "-"},
                                 Case{2, 5, 5, "-"}};
  if (!smoke) {
    tileCases.push_back(Case{3, 7, 5, "2079"});
    tileCases.push_back(Case{3, 7, 7, "-"});
  }
  for (const Case& c : tileCases) {
    tiles::EnumerationStats stats;
    const lclgrid::support::Stopwatch clock;
    auto set = tiles::enumerateTiles(c.k, c.h, c.w, &stats);
    double seconds = clock.seconds();
    tileTable.addRow({fmtInt(c.k),
                      fmtInt(c.h) + "x" + fmtInt(c.w), c.paper,
                      fmtInt(set.size()), fmtInt(stats.candidatesTried),
                      fmtDouble(seconds, 3)});
  }
  std::printf("%s\n", tileTable.render().c_str());

  std::printf("4-colouring synthesis per (k, window), fresh vs incremental:\n");
  AsciiTable synth({"k", "window", "tiles", "clauses", "result (paper)",
                    "result (fresh)", "result (incr)", "conflicts (fresh)",
                    "conflicts (incr)", "seconds (fresh)", "seconds (incr)"});
  auto lcl = problems::vertexColouring(4);
  synthesis::IncrementalSynthesizer live(lcl);
  struct SCase {
    int k, h, w;
    const char* paper;
  };
  std::vector<SCase> synthCases = {SCase{1, 3, 2, "no solution"},
                                   SCase{2, 5, 4, "no solution"}};
  if (!smoke) synthCases.push_back(SCase{3, 7, 5, "SAT in seconds"});
  bool verdictsAgree = true;
  for (const SCase& c : synthCases) {
    auto fresh = synthesis::synthesizeForShape(lcl, c.k,
                                               tiles::TileShape{c.h, c.w});
    auto incremental = live.attemptShape(c.k, tiles::TileShape{c.h, c.w});
    if (fresh.success != incremental.success ||
        fresh.failureReason != incremental.failureReason) {
      verdictsAgree = false;
    }
    synth.addRow({fmtInt(c.k), fmtInt(c.h) + "x" + fmtInt(c.w),
                  fmtInt(fresh.tileCount), fmtInt(fresh.clauseCount), c.paper,
                  fresh.success ? "SAT" : fresh.failureReason,
                  incremental.success ? "SAT" : incremental.failureReason,
                  fmtInt(fresh.satConflicts), fmtInt(incremental.satConflicts),
                  fmtDouble(fresh.seconds, 3),
                  fmtDouble(incremental.seconds, 3)});
  }
  std::printf("%s\n", synth.render().c_str());
  if (!verdictsAgree) {
    std::fprintf(stderr, "FAIL: fresh and incremental verdicts disagree\n");
    return 1;
  }
  if (smoke) {
    std::printf(
        "Smoke mode: k <= 2 cases only; synthesis fails below k = 3 in both\n"
        "regimes, as the paper requires.\n");
    return 0;
  }
  std::printf(
      "Shape check: k=1 gives exactly the paper's 16 tiles; k=3 with 7x5\n"
      "windows gives exactly 2079 tiles; synthesis fails below k=3 and\n"
      "succeeds at k=3 within seconds -- in the fresh and the incremental\n"
      "regime alike (the incremental column rides one live solver across\n"
      "the whole ladder).\n");
  return 0;
}
