// E4 -- edge colouring thresholds (Section 1.3, Theorems 15 and 21):
// k-edge-colouring of d-dimensional grids is Theta(log* n) for k >= 2d+1
// and global for k <= 2d; with 2d colours no solution exists for odd n
// (parity obstruction), established here by the SAT feasibility probe.
//
// --smoke probes n in {3, 4} only (CI bit-rot check).
#include <cstdio>
#include <cstring>

#include "grid/torus2d.hpp"
#include "lcl/global_solver.hpp"
#include "lcl/problems.hpp"
#include "support/table.hpp"

using namespace lclgrid;

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("E4: edge k-colouring on 2-dimensional grids (d = 2)\n\n");

  const std::vector<int> sizes =
      smoke ? std::vector<int>{3, 4} : std::vector<int>{3, 4, 5, 6};
  std::vector<std::string> header = {"k", "paper"};
  for (int n : sizes) header.push_back("feasible n=" + std::to_string(n));
  AsciiTable table(header);
  for (int k = 3; k <= 6; ++k) {
    const char* paper = k <= 4 ? (k < 4 ? "unsolvable (k < 2d)" : "Theta(n): odd n infeasible")
                               : "Theta(log* n)";
    std::vector<std::string> cells;
    for (int n : sizes) {
      Torus2D torus(n);
      // Parity-based UNSAT instances (2d colours, odd n) are exponentially
      // hard for resolution, so a conflict budget keeps the table honest:
      // Theorem 21's counting argument is the actual proof.
      auto result = solveGlobally(torus, problems::edgeColouring(k), 0,
                                  /*conflictBudget=*/300'000);
      cells.push_back(!result.decided
                          ? "budget (Thm 21: NO)"
                          : (result.feasible ? "yes" : "NO"));
    }
    std::vector<std::string> row = {fmtInt(k), paper};
    row.insert(row.end(), cells.begin(), cells.end());
    table.addRow(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check (Theorem 21): 4 = 2d colours are infeasible exactly on\n"
      "odd n (every node needs one incident edge of each colour, but n^2*d/2\n"
      "is not an integer); 5 = 2d+1 colours always feasible -- and solvable\n"
      "in Theta(log* n) by the Section 10 algorithm (see E7). 3 < 2d colours\n"
      "admit no labelling at all.\n");
  return 0;
}
