// E8 -- Section 6: L_M is solvable by the fast anchor-tiling construction
// iff M halts on the empty tape. Halting machines: the construction
// materialises at step budget >= halting time and the labelling passes the
// L_M verifier. Non-halting machines: the construction fails at every
// budget (the finite face of undecidability) and only the Theta(n)
// 3-colouring fallback P1 remains.
//
// --smoke runs a two-machine slice on small tori (CI bit-rot check).
#include <cstdio>
#include <cstring>

#include "local/ids.hpp"
#include "support/table.hpp"
#include "turing/lm_builder.hpp"
#include "turing/lm_verifier.hpp"
#include "turing/zoo.hpp"

using namespace lclgrid;
using namespace lclgrid::turing;

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("E8: the undecidability construction L_M (Section 6)\n\n");

  AsciiTable table({"machine", "halts?", "halting steps",
                    "fast construction", "verified", "rounds (const part)",
                    "P1 fallback rounds"});
  struct Case {
    Machine machine;
    int torusSize;
  };
  std::vector<Case> cases;
  if (smoke) {
    // One halting and one non-halting machine keep both code paths alive.
    cases = {{onesWriter(1), 32}, {rightRunner(), 32}};
  } else {
    cases = {
        {onesWriter(1), 32},    {onesWriter(2), 48},  {onesWriter(3), 60},
        {bouncer(1), 48},       {bouncer(2), 72},     {unaryCounter(2), 80},
        {rightRunner(), 48},    {blinker(), 48},
    };
  }
  const int budget = smoke ? 100 : 200;
  for (auto& c : cases) {
    auto oracle = lmOracle(c.machine, budget);
    Torus2D torus(c.torusSize);
    auto ids = local::randomIds(torus.size(), 11);
    auto fast = solveLmLogStar(torus, c.machine, ids, budget);
    std::string verified = "-";
    if (fast.solved) {
      verified = verifyLm(torus, c.machine, fast.labels) ? "yes" : "NO";
    }
    auto fallback = solveLmGlobal(torus);
    table.addRow({c.machine.name(), oracle.halting ? "yes" : "no (budget 200)",
                  oracle.halting ? fmtInt(oracle.haltingSteps) : "-",
                  fast.solved ? "constructed" : fast.failure, verified,
                  fast.solved ? fmtInt(fast.rounds) : "-",
                  fmtInt(fallback.rounds)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: every halting machine admits the anchor-tiling solution\n"
      "(=> Theta(log* n) with the S_k component of E12); every non-halting\n"
      "machine fails at all budgets, leaving only the Theta(n) fallback --\n"
      "deciding between the two complexities decides halting (Theorem 3).\n");
  return 0;
}
