// E15 -- the randomised side (Section 12): the paper notes that randomised
// complexities on grids collapse similarly (nothing between omega(log* n)
// and o(sqrt(log n))). This bench compares the deterministic S_k (iterated
// Linial + KW + greedy, Theta(log* n) with poly(Delta) constants) against
// Luby's randomised MIS (O(log n) iterations, tiny constants) as the
// symmetry-breaking engine of the normal form.
#include <cstdio>

#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/graph_view.hpp"
#include "local/ids.hpp"
#include "local/luby_mis.hpp"
#include "local/mis.hpp"
#include "support/numeric.hpp"
#include "support/table.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/synthesizer.hpp"

using namespace lclgrid;

int main() {
  std::printf("E15: deterministic vs randomised symmetry breaking (Section 12)\n\n");

  std::printf("MIS of G^(3) (the 4-colouring anchors):\n");
  AsciiTable table({"n", "log* n", "deterministic rounds",
                    "Luby rounds (seed avg of 3)", "Luby iterations"});
  for (int n : {24, 48, 96, 192}) {
    Torus2D torus(n);
    auto view = local::l1PowerView(torus, 3);
    auto det = local::computeMis(view, local::randomIds(torus.size(), 5));
    long long lubyRounds = 0, lubyIters = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto luby = local::lubyMis(view, seed);
      if (!local::isMaximalIndependentSet(view, luby.inSet)) {
        std::printf("LUBY OUTPUT INVALID at n=%d!\n", n);
        return 1;
      }
      lubyRounds += luby.gridRounds;
      lubyIters += luby.iterations;
    }
    table.addRow({fmtInt(n), fmtInt(logStar(n)), fmtInt(det.gridRounds),
                  fmtInt(lubyRounds / 3), fmtInt(lubyIters / 3)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("4-colouring normal form with a randomised S_k:\n");
  auto synthesis = synthesis::synthesize(problems::vertexColouring(4), {.maxK = 3});
  if (synthesis.success) {
    synthesis::NormalFormAlgorithm algorithm(*synthesis.rule);
    AsciiTable nf({"n", "rounds (A' + Luby S_3)", "verified"});
    for (int n : {32, 64}) {
      Torus2D torus(n);
      auto view = local::l1PowerView(torus, 3);
      auto luby = local::lubyMis(view, 11);
      std::vector<std::uint8_t> anchors(luby.inSet.begin(), luby.inSet.end());
      auto run = algorithm.executeOnAnchors(torus, anchors);
      nf.addRow({fmtInt(n),
                 run.solved ? fmtInt(run.rounds + luby.gridRounds) : run.failure,
                 run.solved && verify(torus, problems::vertexColouring(4),
                                      run.labels)
                     ? "yes"
                     : "NO"});
    }
    std::printf("%s\n", nf.render().c_str());
  }
  std::printf(
      "Shape check: the deterministic pipeline pays poly(Delta) constants\n"
      "for its Theta(log* n) guarantee; Luby needs only ~O(log n) cheap\n"
      "iterations, and A' is agnostic to which anchor engine produced its\n"
      "input -- the normal form composes with either (Section 12's theme:\n"
      "randomisation changes constants and the gap location, not the\n"
      "structure).\n");
  return 0;
}
