// E12 -- the normal form A' o S_k (Figure 1 / Theorem 2): the problem-
// independent S_k component (MIS of G^(k)) runs in O(log* n) rounds -- flat
// across sizes -- while A' is a constant-radius lookup. Also runs the
// Theorem 2 speed-up transformer end to end: Voronoi local coordinates feed
// the inner algorithm an instance-size lie, and the output still verifies.
#include <cstdio>

#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/graph_view.hpp"
#include "local/ids.hpp"
#include "local/mis.hpp"
#include "speedup/speedup.hpp"
#include "support/numeric.hpp"
#include "support/table.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/synthesizer.hpp"

using namespace lclgrid;

int main() {
  std::printf("E12: the normal form A' o S_k and the Theorem 2 speed-up\n\n");

  std::printf("S_k: MIS of G^(k) rounds across sizes (problem-independent part):\n");
  AsciiTable sk({"n", "log* n", "k=1 rounds", "k=2 rounds", "k=3 rounds"});
  for (int n : {16, 32, 64, 128}) {
    Torus2D torus(n);
    std::vector<std::string> row = {fmtInt(n), fmtInt(logStar(n))};
    for (int k : {1, 2, 3}) {
      auto mis = local::computeMis(local::l1PowerView(torus, k),
                                   local::randomIds(torus.size(), 17));
      row.push_back(fmtInt(mis.gridRounds));
    }
    sk.addRow(row);
  }
  std::printf("%s\n", sk.render().c_str());

  std::printf("A' component: constant radius lookup (4-colouring rule, k=3):\n");
  auto synthesis = synthesis::synthesize(problems::vertexColouring(4), {.maxK = 3});
  if (synthesis.success) {
    synthesis::NormalFormAlgorithm algorithm(*synthesis.rule);
    Torus2D torus(48);
    auto run = algorithm.execute(torus, local::randomIds(torus.size(), 3));
    std::printf(
        "  window %dx%d, |tiles| = %d, A' radius = %d rounds, total = %d "
        "(of which S_k = %d)\n\n",
        synthesis.rule->shape.height, synthesis.rule->shape.width,
        synthesis.rule->tileSet.size(), run.localRadius, run.rounds,
        run.misRounds);
  }

  std::printf("Theorem 2 transformer (inner = synthesized MIS algorithm):\n");
  auto misSynthesis =
      synthesis::synthesize(problems::maximalIndependentSet(), {.maxK = 1});
  if (misSynthesis.success) {
    synthesis::NormalFormAlgorithm inner(*misSynthesis.rule);
    speedup::InnerAlgorithm innerFn =
        [&inner](const Torus2D& torus, const std::vector<std::uint64_t>& ids,
                 int) {
          auto run = inner.execute(torus, ids);
          return speedup::InnerRun{run.labels, run.rounds};
        };
    AsciiTable sp({"n", "k (lie)", "anchor rounds", "inner rounds T(k)",
                   "verified", "T(k) < k/4-4"});
    for (int n : {48, 64, 96}) {
      Torus2D torus(n);
      auto result = speedup::speedUp(torus, local::randomIds(torus.size(), 9),
                                     16, innerFn);
      bool ok = result.solved &&
                verify(torus, problems::maximalIndependentSet(), result.labels);
      sp.addRow({fmtInt(n), fmtInt(result.k), fmtInt(result.anchorRounds),
                 fmtInt(result.innerRounds), ok ? "yes" : "NO",
                 result.theoremGuarantee ? "yes" : "no (see DESIGN.md)"});
    }
    std::printf("%s\n", sp.render().c_str());
  }
  std::printf(
      "Shape check: S_k rounds are flat in n for every k (the log* n column\n"
      "does not move at these scales); the transformer output verifies even\n"
      "though the universal T(k) < k/4-4 certificate needs larger k -- the\n"
      "concrete inner algorithm only requires locally-proper colours.\n");
  return 0;
}
