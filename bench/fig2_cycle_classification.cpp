// E1 -- Figure 2 (Section 4): the decidable classification of LCL problems
// on directed cycles, read off the output neighbourhood graph H: self-loops
// give O(1), flexible states give Theta(log* n), otherwise Theta(n).
// Regenerates the figure's four classifications plus further problems, and
// demonstrates the synthesized optimal algorithms.
#include <cstdio>
#include <vector>

#include "cycle/classifier.hpp"
#include "cycle/cycle_synthesis.hpp"
#include "local/ids.hpp"
#include "support/table.hpp"

using namespace lclgrid;
using namespace lclgrid::cycle;

int main() {
  std::printf("E1: LCL problems on directed cycles (paper Figure 2)\n\n");

  struct Row {
    CycleLcl lcl;
    const char* paperClass;
  };
  std::vector<Row> rows = {
      {cycleIndependentSet(), "O(1)  [self-loop]"},
      {cycleColouring(3), "Theta(log* n)  [flexible states]"},
      {cycleMaximalIndependentSet(), "Theta(log* n)  [flexible states]"},
      {cycleColouring(2), "Theta(n)"},
      {cycleMaximalMatching(), "(not in figure)"},
      {cycleColouring(4), "(not in figure)"},
      {cycleExactSpacing(3), "(not in figure)"},
      {cycleDominatingMarks(3), "(not in figure)"},
      {cycleColouring(1), "(not in figure)"},
  };

  AsciiTable table({"problem", "paper", "measured", "flexible node",
                    "flexibility", "run n=500: rounds / solved"});
  for (auto& row : rows) {
    auto classification = classifyCycleLcl(row.lcl);
    std::string runInfo = "-";
    if (classification.complexity != ComplexityClass::Unsolvable) {
      CycleAlgorithm algorithm(row.lcl);
      auto ids = local::randomIds(500, 42);
      auto run = algorithm.execute(ids);
      runInfo = run.solved ? fmtInt(run.rounds) + " / yes"
                           : "no solution at n=500";
      if (run.solved && !row.lcl.verifyCycle(run.labels)) {
        runInfo += "  VERIFY FAILED";
      }
    }
    table.addRow({row.lcl.name(), row.paperClass,
                  complexityName(classification.complexity),
                  classification.flexibleNode >= 0
                      ? fmtInt(classification.flexibleNode)
                      : "-",
                  classification.flexibility >= 0
                      ? fmtInt(classification.flexibility)
                      : "-",
                  runInfo});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: IS constant, 3-colouring & MIS & matching local,\n"
      "2-colouring & exact spacing global, 1-colouring unsolvable.\n");
  return 0;
}
