// E7 -- Theorem 15: (2d+1)-edge-colouring in Theta(log* n), exercised for
// d = 1 (3 colours on cycles, a size sweep) and d = 2 (5 colours, one
// large torus -- the j,k-independent-set geometry needs n >= ~200, see
// DESIGN.md).
#include <cstdio>

#include "algorithms/edge_colouring.hpp"
#include "local/ids.hpp"
#include "support/numeric.hpp"
#include "support/table.hpp"

using namespace lclgrid;
using namespace lclgrid::algorithms;

int main() {
  std::printf("E7: (2d+1)-edge-colouring rounds (Theorem 15)\n\n");

  std::printf("d = 1 (3-edge-colouring of the cycle):\n");
  AsciiTable one({"n", "log* n", "rounds", "k", "row spacing", "verified"});
  for (int n : {64, 128, 256, 512, 1024, 2048}) {
    TorusD torus(1, n);
    auto run = edgeColouringGrid(torus, local::randomIds(n, 13));
    one.addRow({fmtInt(n), fmtInt(lclgrid::logStar(n)),
                run.solved ? fmtInt(run.rounds) : "-", fmtInt(run.k),
                fmtInt(run.rowSpacing),
                run.solved && isProperEdgeColouringD(torus, run.colour, 3)
                    ? "yes"
                    : "NO"});
  }
  std::printf("%s\n", one.render().c_str());

  std::printf("d = 2 (5-edge-colouring of the torus):\n");
  AsciiTable two({"n", "rounds", "k", "row spacing", "verified"});
  for (int n : {224, 288}) {
    TorusD torus(2, n);
    auto run = edgeColouringGrid(
        torus, local::randomIds(static_cast<int>(torus.size()), 3));
    two.addRow({fmtInt(n), run.solved ? fmtInt(run.rounds) : run.failure,
                fmtInt(run.k), fmtInt(run.rowSpacing),
                run.solved && isProperEdgeColouringD(torus, run.colour, 5)
                    ? "yes"
                    : "NO"});
  }
  std::printf("%s\n", two.render().c_str());
  std::printf(
      "Shape check: rounds are flat across a 32x size sweep for d = 1 and\n"
      "essentially flat for d = 2 (the wobble comes from anchor-placement\n"
      "variance, not from n). Compare the Theta(n) brute force: n/2 rounds\n"
      "would dominate long before these constants at scale.\n");
  return 0;
}
