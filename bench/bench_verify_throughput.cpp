// Verification throughput: the compiled-table batched engine (serial and
// sharded across the engine's work-stealing pool) vs. the seed's functional
// path (std::function predicate + Torus2D::step per node). Reports verified
// nodes/sec per path and the speedup ratios, as JSON in the repo-wide
// {name, config, results[]} schema for the perf trajectory.
//
// Usage: bench_verify_throughput [n] [min_seconds] [--threads N]
//   n            torus side (default 512)
//   min_seconds  measurement window per path (default 1.0)
//   --threads N  lanes for the sharded paths (default: hardware concurrency)
//
// The functional baseline is a faithful transcription of the seed's
// listViolations inner loop; the table path is lcl::countViolations, whose
// kernel walks flat row buffers and does one table-row load plus a bit test
// per node; the sharded path runs the same kernel split by grid rows with
// per-shard accumulators -- its violation count must be bit-identical.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"
#include "grid/torus2d.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "support/json.hpp"

using namespace lclgrid;

namespace {

/// The seed's per-node verification loop, kept as the measurement baseline:
/// four Torus2D::step calls and one std::function dispatch per node.
std::int64_t functionalCountViolations(const Torus2D& torus,
                                       const GridLcl::Predicate& ok,
                                       int sigma,
                                       std::span<const int> labels) {
  std::int64_t bad = 0;
  for (int v = 0; v < torus.size(); ++v) {
    int c = labels[static_cast<std::size_t>(v)];
    if (c < 0 || c >= sigma) {
      ++bad;
      continue;
    }
    int n = labels[static_cast<std::size_t>(torus.step(v, Dir::North))];
    int e = labels[static_cast<std::size_t>(torus.step(v, Dir::East))];
    int s = labels[static_cast<std::size_t>(torus.step(v, Dir::South))];
    int w = labels[static_cast<std::size_t>(torus.step(v, Dir::West))];
    if (!ok(c, n, e, s, w)) ++bad;
  }
  return bad;
}

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct PathResult {
  std::string path;
  double seconds = 0.0;
  double nodesPerSec = 0.0;
  long long passes = 0;
  std::int64_t violations = 0;  // checksum: must match across paths
};

template <typename Body>
PathResult measure(std::string path, std::int64_t nodesPerPass,
                   double minSeconds, Body&& body) {
  PathResult result;
  result.path = std::move(path);
  // Warm-up pass (page in the labelling and the table).
  result.violations = body();
  auto start = std::chrono::steady_clock::now();
  do {
    result.violations = body();
    ++result.passes;
    result.seconds = secondsSince(start);
  } while (result.seconds < minSeconds);
  result.nodesPerSec =
      static_cast<double>(nodesPerPass) * result.passes / result.seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int n = 512;
  double minSeconds = 1.0;
  int threads = engine::defaultThreads();
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (positional == 0) {
      n = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 1) {
      minSeconds = std::atof(argv[i]);
      ++positional;
    }
  }
  if (n < 1 || threads < 1) {
    std::fprintf(stderr,
                 "usage: %s [n] [min_seconds] [--threads N] (n, N >= 1)\n",
                 argv[0]);
    return 2;
  }

  Torus2D torus(n);
  GridLcl lcl = problems::vertexColouring(4);
  engine::ThreadPool pool(threads);
  engine::EngineOptions engineOptions{.threads = threads, .pool = &pool};

  // Feasible diagonal 4-colouring when 4 | n; the full grid is scanned
  // either way, so feasibility only affects the violation checksum.
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] = (torus.xOf(v) + torus.yOf(v)) % 4;
  }

  const std::int64_t nodes = torus.size();
  std::vector<PathResult> results;
  results.push_back(measure("functional", nodes, minSeconds, [&]() {
    return functionalCountViolations(torus, lcl.predicate(), lcl.sigma(),
                                     labels);
  }));
  results.push_back(measure("table", nodes, minSeconds, [&]() {
    return countViolations(torus, lcl, labels);
  }));
  results.push_back(measure("table_sharded", nodes, minSeconds, [&]() {
    return countViolations(torus, lcl, labels, engineOptions);
  }));

  // Batched paths: 8 labellings back-to-back through one call.
  const int batchSize = 8;
  std::vector<int> batch;
  batch.reserve(labels.size() * static_cast<std::size_t>(batchSize));
  for (int i = 0; i < batchSize; ++i) {
    batch.insert(batch.end(), labels.begin(), labels.end());
  }
  auto sumCounts = [&](const std::vector<std::int64_t>& counts) {
    std::int64_t total = 0;
    for (auto count : counts) total += count;
    return total / batchSize;
  };
  results.push_back(
      measure("batched", nodes * batchSize, minSeconds, [&]() {
        return sumCounts(countViolationsBatch(torus, lcl, batch));
      }));
  results.push_back(
      measure("batched_sharded", nodes * batchSize, minSeconds, [&]() {
        return sumCounts(countViolationsBatch(torus, lcl, batch, engineOptions));
      }));

  bool checksumOk = true;
  for (const PathResult& result : results) {
    checksumOk = checksumOk && result.violations == results[0].violations;
  }
  const double functionalRate = results[0].nodesPerSec;
  const double tableRate = results[1].nodesPerSec;

  support::JsonWriter json;
  json.beginObject();
  json.key("name").value("verify_throughput");
  json.key("config").beginObject();
  json.key("problem").value(lcl.name());
  json.key("torus_n").value(n);
  json.key("nodes").value(static_cast<std::int64_t>(nodes));
  json.key("batch").value(batchSize);
  json.key("threads").value(threads);
  json.key("min_seconds").value(minSeconds);
  json.endObject();
  json.key("results").beginArray();
  for (const PathResult& result : results) {
    json.beginObject();
    json.key("path").value(result.path);
    json.key("nodes_per_sec").value(result.nodesPerSec);
    json.key("passes").value(result.passes);
    json.key("seconds").value(result.seconds);
    json.key("violations").value(result.violations);
    json.key("speedup_vs_functional")
        .value(result.nodesPerSec / functionalRate);
    if (result.path == "table_sharded") {
      json.key("speedup_vs_table").value(result.nodesPerSec / tableRate);
    }
    json.endObject();
  }
  json.endArray();
  json.key("checksum_ok").value(checksumOk);
  json.endObject();
  std::printf("%s\n", json.str().c_str());

  if (!checksumOk) {
    std::fprintf(stderr, "FAIL: paths disagree on the violation count\n");
    return 1;
  }
  return 0;
}
