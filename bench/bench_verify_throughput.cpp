// Verification throughput: compiled-table batched engine vs. the seed's
// functional path (std::function predicate + Torus2D::step per node) on a
// 512 x 512 torus. Reports verified nodes/sec for both paths and their
// ratio, as JSON for the perf trajectory.
//
// The functional baseline below is a faithful transcription of the seed's
// listViolations inner loop; the table path is lcl::countViolations, whose
// kernel walks flat row buffers and does one table-row load plus a bit test
// per node.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "grid/torus2d.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"

using namespace lclgrid;

namespace {

/// The seed's per-node verification loop, kept as the measurement baseline:
/// four Torus2D::step calls and one std::function dispatch per node.
std::int64_t functionalCountViolations(const Torus2D& torus,
                                       const GridLcl::Predicate& ok,
                                       int sigma,
                                       std::span<const int> labels) {
  std::int64_t bad = 0;
  for (int v = 0; v < torus.size(); ++v) {
    int c = labels[static_cast<std::size_t>(v)];
    if (c < 0 || c >= sigma) {
      ++bad;
      continue;
    }
    int n = labels[static_cast<std::size_t>(torus.step(v, Dir::North))];
    int e = labels[static_cast<std::size_t>(torus.step(v, Dir::East))];
    int s = labels[static_cast<std::size_t>(torus.step(v, Dir::South))];
    int w = labels[static_cast<std::size_t>(torus.step(v, Dir::West))];
    if (!ok(c, n, e, s, w)) ++bad;
  }
  return bad;
}

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct PathResult {
  double seconds = 0.0;
  double nodesPerSec = 0.0;
  long long passes = 0;
  std::int64_t violations = 0;  // checksum: must match across paths
};

template <typename Body>
PathResult measure(std::int64_t nodesPerPass, double minSeconds, Body&& body) {
  PathResult result;
  // Warm-up pass (page in the labelling and the table).
  result.violations = body();
  auto start = std::chrono::steady_clock::now();
  do {
    result.violations = body();
    ++result.passes;
    result.seconds = secondsSince(start);
  } while (result.seconds < minSeconds);
  result.nodesPerSec =
      static_cast<double>(nodesPerPass) * result.passes / result.seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const double minSeconds = argc > 2 ? std::atof(argv[2]) : 1.0;

  Torus2D torus(n);
  GridLcl lcl = problems::vertexColouring(4);

  // Feasible diagonal 4-colouring when 4 | n; the full grid is scanned
  // either way, so feasibility only affects the violation checksum.
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] = (torus.xOf(v) + torus.yOf(v)) % 4;
  }

  const std::int64_t nodes = torus.size();
  PathResult functional =
      measure(nodes, minSeconds, [&]() {
        return functionalCountViolations(torus, lcl.predicate(), lcl.sigma(),
                                         labels);
      });
  PathResult table = measure(nodes, minSeconds, [&]() {
    return countViolations(torus, lcl, labels);
  });

  // Batched path: 8 labellings back-to-back through one call.
  const int batchSize = 8;
  std::vector<int> batch;
  batch.reserve(labels.size() * batchSize);
  for (int i = 0; i < batchSize; ++i) {
    batch.insert(batch.end(), labels.begin(), labels.end());
  }
  PathResult batched =
      measure(nodes * batchSize, minSeconds, [&]() -> std::int64_t {
        auto counts = countViolationsBatch(torus, lcl, batch);
        std::int64_t total = 0;
        for (auto count : counts) total += count;
        return total / batchSize;
      });

  const bool checksumOk = functional.violations == table.violations &&
                          table.violations == batched.violations;
  const double speedup = table.nodesPerSec / functional.nodesPerSec;
  const double batchedSpeedup = batched.nodesPerSec / functional.nodesPerSec;

  std::printf(
      "{\n"
      "  \"bench\": \"verify_throughput\",\n"
      "  \"problem\": \"%s\",\n"
      "  \"torus_n\": %d,\n"
      "  \"nodes\": %lld,\n"
      "  \"violations\": %lld,\n"
      "  \"checksum_ok\": %s,\n"
      "  \"functional_nodes_per_sec\": %.3e,\n"
      "  \"table_nodes_per_sec\": %.3e,\n"
      "  \"batched_nodes_per_sec\": %.3e,\n"
      "  \"table_speedup\": %.2f,\n"
      "  \"batched_speedup\": %.2f\n"
      "}\n",
      lcl.name().c_str(), n, static_cast<long long>(nodes),
      static_cast<long long>(table.violations), checksumOk ? "true" : "false",
      functional.nodesPerSec, table.nodesPerSec, batched.nodesPerSec, speedup,
      batchedSpeedup);

  if (!checksumOk) {
    std::fprintf(stderr, "FAIL: paths disagree on the violation count\n");
    return 1;
  }
  return 0;
}
