// Verification throughput: the three kernel tiers of the batched engine --
// functional (std::function predicate + step calls per node), the compiled
// row-pointer table kernel, and the bit-sliced kernel (64 nodes per word,
// docs/perf.md) -- serial and sharded across the engine's work-stealing
// pool, swept over torus dimensions and problems. d = 2 measures the
// Torus2D/LclTable stack on several registry problems (including at least
// two decomposable sigma <= 4 problems, the bit-sliced kernel's headline
// case); d = 3 and d = 4 measure the TorusD/LclTableD stack (whose d = 2
// case delegates to the 2D table, so there is exactly one 2D code path).
// Reports verified nodes/sec per (dims, problem, path) and the speedup
// ratios, as JSON in the repo-wide {name, config, results[]} schema.
//
// Timing hygiene: every problem's table is compiled once, at GridLcl
// construction, before any timed region; the table fingerprint is recorded
// up front and asserted unchanged after the sweep, so the JSON measures
// kernel throughput only -- a path that recompiled (or mutated) the table
// would fail the run. The "table" paths pin the row-pointer kernel and the
// "bitsliced" paths pin the bit-sliced kernel via bitslice::setEnabled;
// the batched paths run whatever the process default (LCLGRID_BITSLICE)
// selects, i.e. what an unconfigured caller gets.
//
// The --mmap mode adds the fourth tier (docs/perf.md): each 2D sweep also
// writes its labelling to the on-disk LCLLABv1 format (row by row -- no
// full-grid staging buffer beyond the labels the sweep already holds) and
// measures streamCountViolations on the memory-mapped file, serial and
// sharded. Those rows additionally report peak_rss_kb (getrusage high-water
// mark), the bounded-memory claim's measurable form: with --mmap-only the
// resident peak stays at the rolling window, independent of grid size.
//
// Usage: bench_verify_throughput [n] [min_seconds] [--threads N]
//                                [--dims LIST] [--smoke]
//                                [--mmap] [--mmap-only] [--mmap-dir DIR]
//   n            2D torus side (default 512); the d >= 3 sides are derived
//                as floor((n*n)^(1/d)) so every sweep touches ~n^2 nodes
//   min_seconds  measurement window per path (default 1.0)
//   --threads N  lanes for the sharded paths (default: hardware concurrency)
//   --dims LIST  comma-separated dimension list (default "2,3,4")
//   --smoke      tiny sizes and windows for CI (n = 32, min_seconds = 0.02)
//   --mmap       add the streaming (out-of-core) paths to every 2D sweep
//   --mmap-only  only the streaming paths (for n too large to hold in-core:
//                implies --mmap, forces --dims 2, skips the in-core sweep)
//   --mmap-dir   directory for the temporary labelling files (default
//                $TMPDIR or /tmp; a 10^9-node torus needs ~4 GB free)
//   --trace-out F    enable span tracing and write a Chrome trace-event
//                    JSON (Perfetto-loadable) to F at exit
//   --metrics-out F  write the telemetry counters/gauges/histograms as a
//                    {name, config, results[]} metrics snapshot to F
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"
#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"
#include "lcl/grid_lcl_d.hpp"
#include "lcl/label_planes.hpp"
#include "lcl/problems.hpp"
#include "lcl/stream_verify.hpp"
#include "lcl/verifier.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"
#include "support/timing.hpp"

using namespace lclgrid;

namespace {

/// The seed's per-node verification loop on Torus2D, kept as the 2D
/// measurement baseline: four Torus2D::step calls and one std::function
/// dispatch per node.
std::int64_t functionalCountViolations(const Torus2D& torus,
                                       const GridLcl::Predicate& ok,
                                       int sigma,
                                       std::span<const int> labels) {
  std::int64_t bad = 0;
  for (int v = 0; v < torus.size(); ++v) {
    int c = labels[static_cast<std::size_t>(v)];
    if (c < 0 || c >= sigma) {
      ++bad;
      continue;
    }
    int n = labels[static_cast<std::size_t>(torus.step(v, Dir::North))];
    int e = labels[static_cast<std::size_t>(torus.step(v, Dir::East))];
    int s = labels[static_cast<std::size_t>(torus.step(v, Dir::South))];
    int w = labels[static_cast<std::size_t>(torus.step(v, Dir::West))];
    if (!ok(c, n, e, s, w)) ++bad;
  }
  return bad;
}

/// The same seed-style loop on TorusD: 2d TorusD::step calls and one
/// std::function dispatch per node -- the slow functional path the
/// compiled LclTableD kernel replaces.
std::int64_t functionalCountViolationsD(const TorusD& torus,
                                        const GridLclD::Predicate& ok,
                                        int sigma,
                                        std::span<const int> labels) {
  const int dims = torus.dims();
  std::vector<int> nbrs(static_cast<std::size_t>(2 * dims), 0);
  std::int64_t bad = 0;
  for (long long v = 0; v < torus.size(); ++v) {
    int c = labels[static_cast<std::size_t>(v)];
    if (c < 0 || c >= sigma) {
      ++bad;
      continue;
    }
    for (int a = 0; a < dims; ++a) {
      nbrs[static_cast<std::size_t>(2 * a)] =
          labels[static_cast<std::size_t>(torus.step(v, a, true))];
      nbrs[static_cast<std::size_t>(2 * a + 1)] =
          labels[static_cast<std::size_t>(torus.step(v, a, false))];
    }
    if (!ok(c, nbrs)) ++bad;
  }
  return bad;
}

using support::secondsSince;

struct PathResult {
  int dims = 2;
  int n = 0;
  std::string problem;  // the sweep's actual problem name (per dimension)
  std::string path;
  double seconds = 0.0;
  double nodesPerSec = 0.0;
  int lanes = 1;  // pool lanes the path used (1 for every serial path)
  long long passes = 0;
  std::int64_t violations = 0;  // checksum: must match within a sweep
  long long peakRssKb = 0;      // recorded on the mmap paths only
};

/// Process peak resident set in KiB (a high-water mark, so meaningful for
/// the mmap paths only when the in-core sweep is skipped); 0 when the
/// platform has no getrusage.
long long peakRssKb() { return std::max(0LL, support::peakRssKb()); }

template <typename Body>
PathResult measure(int dims, int n, std::string path,
                   std::int64_t nodesPerPass, double minSeconds,
                   Body&& body) {
  PathResult result;
  result.dims = dims;
  result.n = n;
  result.path = std::move(path);
  // Warm-up pass (page in the labelling and the table).
  result.violations = body();
  auto start = std::chrono::steady_clock::now();
  do {
    result.violations = body();
    ++result.passes;
    result.seconds = secondsSince(start);
  } while (result.seconds < minSeconds);
  result.nodesPerSec =
      static_cast<double>(nodesPerPass) * result.passes / result.seconds;
  return result;
}

/// Side of the d-dimensional sweep: the largest side with side^d <= n2d^2
/// nodes. Computed with an exact integer check around the floating-point
/// root -- floor(pow(...)) alone undershoots exact roots on some libms
/// (e.g. pow(512*512, 1/3) = 63.999...), which would silently change the
/// recorded sweep sizes across platforms.
int sideForDims(int n2d, int dims) {
  const double nodes = static_cast<double>(n2d) * n2d;
  int side = static_cast<int>(std::floor(
      std::pow(nodes, 1.0 / static_cast<double>(dims))));
  auto fits = [&](int candidate) {
    double total = 1.0;
    for (int a = 0; a < dims; ++a) total *= candidate;
    return total <= nodes;
  };
  while (fits(side + 1)) ++side;
  while (side > 4 && !fits(side)) --side;
  return std::max(4, side);
}

}  // namespace

int main(int argc, char** argv) {
  int n = 512;
  double minSeconds = 1.0;
  int threads = engine::defaultThreads();
  std::vector<int> dimsList = {2, 3, 4};
  bool mmapMode = false;
  bool mmapOnly = false;
  std::string mmapDir;
  std::string traceOut;
  std::string metricsOut;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      traceOut = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metricsOut = argv[++i];
    } else if (std::strcmp(argv[i], "--dims") == 0 && i + 1 < argc) {
      dimsList.clear();
      for (const char* cursor = argv[++i]; *cursor != '\0';) {
        char* end = nullptr;
        const long dims = std::strtol(cursor, &end, 10);
        if (end == cursor) break;
        dimsList.push_back(static_cast<int>(dims));
        cursor = *end == ',' ? end + 1 : end;
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      n = 32;
      minSeconds = 0.02;
    } else if (std::strcmp(argv[i], "--mmap") == 0) {
      mmapMode = true;
    } else if (std::strcmp(argv[i], "--mmap-only") == 0) {
      mmapMode = true;
      mmapOnly = true;
    } else if (std::strcmp(argv[i], "--mmap-dir") == 0 && i + 1 < argc) {
      mmapDir = argv[++i];
    } else if (positional == 0) {
      n = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 1) {
      minSeconds = std::atof(argv[i]);
      ++positional;
    }
  }
  if (mmapOnly) dimsList = {2};  // the streaming sweep is the 2D sweep
  if (mmapDir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    mmapDir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  bool dimsOk = !dimsList.empty();
  for (int dims : dimsList) dimsOk = dimsOk && dims >= 1 && dims <= 8;
  // Torus2D indexes nodes with int; the guard keeps n*n (and the mmap
  // payload offsets derived from it) in range. n = 46340 is ~2.1e9 nodes.
  const bool sizeOk =
      static_cast<long long>(n) * n <= 2147483647LL;
  if (n < 4 || threads < 1 || !dimsOk || !sizeOk) {
    std::fprintf(stderr,
                 "usage: %s [n] [min_seconds] [--threads N] [--dims LIST] "
                 "[--smoke] [--mmap] [--mmap-only] [--mmap-dir DIR] "
                 "[--trace-out F] [--metrics-out F] "
                 "(n >= 4, n*n <= INT_MAX, N >= 1, dims in [1, 8])\n",
                 argv[0]);
    return 2;
  }
  if (!traceOut.empty()) telemetry::setTraceEnabled(true);

  engine::ThreadPool pool(threads);
  engine::EngineOptions engineOptions{.threads = threads, .pool = &pool};
  const int batchSize = 8;
  const int colours = 4;
  // What an unconfigured caller's auto-selection picks (LCLGRID_BITSLICE);
  // restored around the explicitly pinned table/bitsliced paths.
  const bool defaultBitslice = bitslice::enabled();

  std::vector<PathResult> results;
  bool checksumOk = true;
  bool fingerprintOk = true;

  for (int dims : dimsList) {
    if (dims == 2) {
      Torus2D torus(n);
      // The decomposable sigma <= 4 problems are the bit-sliced kernel's
      // headline case (>= 4x target); noHorizontalOnePair exercises the
      // generic pair-network form on the same sweep. --mmap-only keeps a
      // single problem: the sweep cost there is dominated by writing and
      // re-reading the (potentially multi-GB) labelling file.
      std::vector<GridLcl> problems2d;
      problems2d.push_back(problems::vertexColouring(colours));
      if (!mmapOnly) {
        problems2d.push_back(problems::vertexColouring(3));
        problems2d.push_back(problems::noHorizontalOnePair());
      }
      for (const GridLcl& lcl : problems2d) {
        // Compiled once, here, outside every timed region.
        const std::uint64_t fingerprint = lcl.table().fingerprint();
        const std::int64_t nodes = torus.size();
        const std::size_t first = results.size();
        if (!mmapOnly) {
          // The in-core sweep holds the whole labelling (and its 8x batch
          // copy); --mmap-only skips it so the resident peak reported on
          // the streaming rows measures the rolling window alone.
          std::vector<int> labels(static_cast<std::size_t>(torus.size()));
          for (int v = 0; v < torus.size(); ++v) {
            labels[static_cast<std::size_t>(v)] =
                (torus.xOf(v) + torus.yOf(v)) % lcl.sigma();
          }
          results.push_back(
              measure(dims, n, "functional", nodes, minSeconds, [&]() {
                return functionalCountViolations(torus, lcl.predicate(),
                                                 lcl.sigma(), labels);
              }));
          bitslice::setEnabled(false);  // pin the row-pointer kernel
          results.push_back(
              measure(dims, n, "table", nodes, minSeconds, [&]() {
                return countViolations(torus, lcl, labels);
              }));
          results.push_back(
              measure(dims, n, "table_sharded", nodes, minSeconds, [&]() {
                return countViolations(torus, lcl, labels, engineOptions);
              }));
          results.back().lanes = threads;
          bitslice::setEnabled(true);  // pin the bit-sliced kernel
          if (verifier_detail::bitsliceSelected(lcl, torus.size())) {
            results.push_back(
                measure(dims, n, "bitsliced", nodes, minSeconds, [&]() {
                  return countViolations(torus, lcl, labels);
                }));
            results.push_back(measure(
                dims, n, "bitsliced_sharded", nodes, minSeconds, [&]() {
                  return countViolations(torus, lcl, labels, engineOptions);
                }));
            results.back().lanes = threads;
          }
          bitslice::setEnabled(defaultBitslice);

          // Batched paths: 8 labellings back-to-back through one call, on
          // the process-default kernel selection.
          std::vector<int> batch;
          batch.reserve(labels.size() * static_cast<std::size_t>(batchSize));
          for (int i = 0; i < batchSize; ++i) {
            batch.insert(batch.end(), labels.begin(), labels.end());
          }
          auto sumCounts = [&](const std::vector<std::int64_t>& counts) {
            std::int64_t total = 0;
            for (auto count : counts) total += count;
            return total / batchSize;
          };
          results.push_back(measure(
              dims, n, "batched", nodes * batchSize, minSeconds, [&]() {
                return sumCounts(countViolationsBatch(torus, lcl, batch));
              }));
          results.push_back(measure(
              dims, n, "batched_sharded", nodes * batchSize, minSeconds,
              [&]() {
                return sumCounts(
                    countViolationsBatch(torus, lcl, batch, engineOptions));
              }));
          results.back().lanes = threads;
        }
        if (mmapMode) {
          // The streaming tier: the same diagonal labelling written to the
          // on-disk format row by row (one row buffer -- never the full
          // grid), then verified from the mapping.
          const std::string path = mmapDir + "/lclgrid_bench_" +
                                   std::to_string(n) + "_" +
                                   std::to_string(first) + ".lcllab";
          {
            StreamLabellingWriter writer(path, lcl.sigma(), 2, n);
            std::vector<int> row(static_cast<std::size_t>(n));
            for (int y = 0; y < n; ++y) {
              for (int x = 0; x < n; ++x) {
                row[static_cast<std::size_t>(x)] = (x + y) % lcl.sigma();
              }
              writer.appendLabels(row);
            }
            writer.close();
          }
          StreamLabelling mapped(path);
          results.push_back(
              measure(dims, n, "mmap_stream", nodes, minSeconds, [&]() {
                return streamCountViolations(mapped, lcl);
              }));
          results.back().peakRssKb = peakRssKb();
          results.push_back(measure(
              dims, n, "mmap_stream_sharded", nodes, minSeconds, [&]() {
                return streamCountViolations(mapped, lcl, engineOptions);
              }));
          results.back().lanes = threads;
          results.back().peakRssKb = peakRssKb();
          std::remove(path.c_str());
        }
        for (std::size_t i = first; i < results.size(); ++i) {
          results[i].problem = lcl.name();
          checksumOk =
              checksumOk && results[i].violations == results[first].violations;
        }
        fingerprintOk =
            fingerprintOk && lcl.table().fingerprint() == fingerprint;
      }
    } else {
      const int side = sideForDims(n, dims);
      TorusD torus(dims, side);
      GridLclD lcl = problems_d::vertexColouring(dims, colours);
      const std::uint64_t fingerprint = lcl.table().fingerprint();
      std::vector<int> labels(static_cast<std::size_t>(torus.size()));
      for (long long v = 0; v < torus.size(); ++v) {
        int sum = 0;
        for (int a = 0; a < dims; ++a) sum += torus.coord(v, a);
        labels[static_cast<std::size_t>(v)] = sum % colours;
      }
      const std::int64_t nodes = torus.size();
      const std::size_t first = results.size();
      results.push_back(
          measure(dims, side, "functional", nodes, minSeconds, [&]() {
            return functionalCountViolationsD(torus, lcl.predicate(),
                                              lcl.sigma(), labels);
          }));
      bitslice::setEnabled(false);
      results.push_back(measure(dims, side, "table", nodes, minSeconds, [&]() {
        return countViolations(torus, lcl, labels);
      }));
      results.push_back(
          measure(dims, side, "table_sharded", nodes, minSeconds, [&]() {
            return countViolations(torus, lcl, labels, engineOptions);
          }));
      results.back().lanes = threads;
      bitslice::setEnabled(true);
      if (verifier_detail::bitsliceSelectedD(lcl, torus.size())) {
        results.push_back(
            measure(dims, side, "bitsliced", nodes, minSeconds, [&]() {
              return countViolations(torus, lcl, labels);
            }));
        results.push_back(
            measure(dims, side, "bitsliced_sharded", nodes, minSeconds, [&]() {
              return countViolations(torus, lcl, labels, engineOptions);
            }));
        results.back().lanes = threads;
      }
      bitslice::setEnabled(defaultBitslice);
      for (std::size_t i = first; i < results.size(); ++i) {
        results[i].problem = lcl.name();
        checksumOk =
            checksumOk && results[i].violations == results[first].violations;
      }
      fingerprintOk =
          fingerprintOk && lcl.table().fingerprint() == fingerprint;
    }
  }

  // Per-sweep speedup baselines: the functional and table rates of the
  // (dims, problem) sweep each result belongs to.
  auto rateOf = [&](int dims, const std::string& problem, const char* path) {
    for (const PathResult& result : results) {
      if (result.dims == dims && result.problem == problem &&
          result.path == path) {
        return result.nodesPerSec;
      }
    }
    return 0.0;
  };

  support::JsonWriter json;
  json.beginObject();
  json.key("name").value("verify_throughput");
  json.key("config").beginObject();
  // The per-dimension problem names and sides live on each result entry;
  // the config records the shared anchor size and thread count.
  json.key("problem_family").value("vertex-colouring(4) + registry");
  json.key("torus_n").value(n);
  json.key("batch").value(batchSize);
  json.key("threads").value(threads);
  json.key("min_seconds").value(minSeconds);
  json.key("bitslice_default").value(defaultBitslice);
  json.key("mmap").value(mmapMode);
  json.key("mmap_only").value(mmapOnly);
  json.key("dims").beginArray();
  for (int dims : dimsList) json.value(dims);
  json.endArray();
  json.endObject();
  json.key("results").beginArray();
  for (const PathResult& result : results) {
    json.beginObject();
    json.key("dims").value(result.dims);
    json.key("torus_n").value(result.n);
    json.key("problem").value(result.problem);
    json.key("path").value(result.path);
    json.key("nodes_per_sec").value(result.nodesPerSec);
    json.key("nodes_per_sec_per_core")
        .value(result.nodesPerSec / result.lanes);
    json.key("lanes").value(result.lanes);
    json.key("passes").value(result.passes);
    json.key("seconds").value(result.seconds);
    json.key("violations").value(result.violations);
    if (result.path == "mmap_stream" || result.path == "mmap_stream_sharded") {
      json.key("peak_rss_kb").value(result.peakRssKb);
    }
    const double functionalRate =
        rateOf(result.dims, result.problem, "functional");
    if (functionalRate > 0.0) {
      json.key("speedup_vs_functional")
          .value(result.nodesPerSec / functionalRate);
    }
    if (result.path == "table_sharded" || result.path == "bitsliced" ||
        result.path == "bitsliced_sharded" || result.path == "mmap_stream" ||
        result.path == "mmap_stream_sharded") {
      const double tableRate = rateOf(result.dims, result.problem, "table");
      if (tableRate > 0.0) {
        json.key("speedup_vs_table").value(result.nodesPerSec / tableRate);
      }
    }
    json.endObject();
  }
  json.endArray();
  json.key("checksum_ok").value(checksumOk);
  json.key("fingerprint_ok").value(fingerprintOk);
  json.endObject();
  std::printf("%s\n", json.str().c_str());

  if (!traceOut.empty() && !telemetry::writeTraceFile(traceOut)) {
    std::fprintf(stderr, "warning: could not write trace to %s\n",
                 traceOut.c_str());
  }
  if (!metricsOut.empty() && !telemetry::writeMetricsFile(metricsOut)) {
    std::fprintf(stderr, "warning: could not write metrics to %s\n",
                 metricsOut.c_str());
  }

  if (!checksumOk) {
    std::fprintf(stderr, "FAIL: paths disagree on the violation count\n");
    return 1;
  }
  if (!fingerprintOk) {
    std::fprintf(stderr,
                 "FAIL: a timed path recompiled or mutated a table\n");
    return 1;
  }
  return 0;
}
