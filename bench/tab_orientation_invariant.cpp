// E10 -- Theorem 25: the {0,3,4}-orientation invariant r(i): the sum of
// vertical-edge labels between rows i and i+1 is invariant across i for
// every valid orientation, reducing the problem to q-sum coordination.
#include <cstdio>

#include "lcl/global_solver.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "lowerbound/orientation_invariant.hpp"
#include "support/table.hpp"

using namespace lclgrid;
using namespace lclgrid::lowerbound;

int main() {
  std::printf("E10: the {0,3,4}-orientation row invariant r(i) (Theorem 25)\n\n");

  AsciiTable table({"n", "seed", "feasible", "rows agree", "r(G)",
                    "|r| <= n/2 + 1"});
  for (int n : {4, 5, 6, 7, 8}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Torus2D torus(n);
      auto lcl = problems::orientation({0, 3, 4});
      auto solved = solveGlobally(torus, lcl, seed);
      if (!solved.feasible) {
        table.addRow({fmtInt(n), fmtInt(static_cast<long long>(seed)), "no",
                      "-", "-", "-"});
        continue;
      }
      auto sums = allVerticalRowSums(torus, solved.labels);
      bool agree = true;
      for (long long s : sums) agree &= s == sums[0];
      table.addRow({fmtInt(n), fmtInt(static_cast<long long>(seed)), "yes",
                    agree ? "yes" : "NO", fmtInt(sums[0]),
                    std::abs(sums[0]) <= n / 2 + 1 ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: r(i) is the same between every pair of consecutive rows\n"
      "on every valid orientation -- the {0,3,4}-orientation problem carries\n"
      "a global invariant and is Theta(n) (Theorem 25), completing the\n"
      "classification of Theorem 22.\n");
  return 0;
}
