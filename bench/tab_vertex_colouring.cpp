// E3 -- vertex colouring thresholds (Section 1.3, Theorems 4 and 9):
// k-colouring of 2-dimensional grids is global for k <= 3 and
// Theta(log* n) for k >= 4. Measured with the synthesis oracle plus the
// SAT feasibility probe.
#include <cstdio>

#include "lcl/problems.hpp"
#include "support/table.hpp"
#include "synthesis/oracle.hpp"

using namespace lclgrid;
using namespace lclgrid::synthesis;

int main() {
  std::printf("E3: vertex k-colouring on 2-dimensional grids\n\n");

  AsciiTable table({"k", "paper", "oracle verdict", "synthesis k",
                    "feasible n=4/5/6/7"});
  for (int k = 2; k <= 6; ++k) {
    const char* paper = k <= 3 ? "Theta(n) (global)" : "Theta(log* n)";
    OracleOptions options;
    options.synthesis.maxK = (k >= 4) ? 3 : 2;  // budget for the one-sided oracle
    auto report = classifyOnGrid(problems::vertexColouring(k), options);
    std::string feasibility;
    for (auto [n, feasible] : report.feasibility) {
      feasibility += feasible ? "y" : "n";
      feasibility += "/";
    }
    if (!feasibility.empty()) feasibility.pop_back();
    table.addRow({fmtInt(k), paper, gridComplexityName(report.complexity),
                  report.rule ? fmtInt(report.rule->k) : "-", feasibility});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: k=2 unsolvable for odd n (global family); k=3 resists\n"
      "synthesis up to the budget (conjectured global, Theorem 9 proves it);\n"
      "k>=4 synthesized at k=3 or below => Theta(log* n) with an optimal\n"
      "normal-form algorithm in hand (Theorem 4).\n");
  return 0;
}
