// The verification service daemon (src/service): protocol round-trips,
// request semantics against the in-process engine, and -- the point of a
// networked daemon -- the error paths: bad magic, oversized and truncated
// frames, mid-request disconnects, unknown specs/fingerprints, the
// explicit-BUSY admission policy, and concurrent-client determinism across
// service thread counts. Every service here binds an ephemeral TCP
// loopback port (or a throwaway Unix socket), so tests can run in
// parallel.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "grid/torus2d.hpp"
#include "lcl/problems.hpp"
#include "lcl/stream_verify.hpp"
#include "lcl/verifier.hpp"
#include "service/client.hpp"
#include "service/problem_registry.hpp"
#include "service/service.hpp"
#include "support/json.hpp"

using namespace lclgrid;
using service::JsonDebugClient;
using service::ServiceClient;
using service::ServiceConfig;
using service::VerificationService;
namespace wire = service::wire;

namespace {

ServiceConfig testConfig() {
  ServiceConfig config;
  config.serviceThreads = 2;
  config.enableTestOps = true;
  return config;
}

std::vector<int> properFourColouring(int n) {
  std::vector<int> labels(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      labels[static_cast<std::size_t>(y) * n + x] = 2 * (y % 2) + (x % 2);
    }
  }
  return labels;
}

service::VerifyRequestFrame verifyFrame(const std::string& spec, int n,
                                        std::span<const int> labels,
                                        bool count = true) {
  service::VerifyRequestFrame frame;
  frame.spec = spec;
  frame.countViolations = count;
  frame.n = static_cast<std::uint32_t>(n);
  frame.labels = labels;
  return frame;
}

std::string tempName(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += '/';
  path += stem;
  path += '.';
  path += std::to_string(::getpid());
  return path;
}

}  // namespace

TEST(ServiceProtocol, HeaderAndPayloadRoundTrips) {
  std::vector<std::uint8_t> bytes;
  wire::appendHeader(bytes, wire::FrameType::kVerify, 42, 1234);
  ASSERT_EQ(bytes.size(), wire::kHeaderBytes);
  wire::FrameHeader header;
  ASSERT_TRUE(wire::decodeHeader(bytes.data(), &header));
  EXPECT_EQ(header.type, wire::FrameType::kVerify);
  EXPECT_EQ(header.requestId, 42u);
  EXPECT_EQ(header.payloadBytes, 1234u);
  bytes[0] = 'X';
  EXPECT_FALSE(wire::decodeHeader(bytes.data(), &header));

  const std::vector<int> labels = {0, 1, 2, 3};
  service::VerifyRequestFrame request;
  request.spec = "vc:4";
  request.countViolations = true;
  request.tierPin = 2;
  request.threads = 3;
  request.n = 2;
  request.labels = labels;
  const std::vector<std::uint8_t> payload = encodeVerifyRequest(request);
  const service::VerifyRequestFrame decoded = service::decodeVerifyRequest(payload);
  EXPECT_EQ(decoded.spec, "vc:4");
  EXPECT_TRUE(decoded.countViolations);
  EXPECT_EQ(decoded.tierPin, 2);
  EXPECT_EQ(decoded.threads, 3u);
  ASSERT_EQ(decoded.labels.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(decoded.labels[i], labels[i]);
  }

  service::VerifyResultFrame result;
  result.feasible = true;
  result.tier = 2;
  result.violations = 7;
  result.labellings = 3;
  result.fingerprint = 0xabcdef0102030405ull;
  result.nanos = 123456;
  result.violationsPerLabelling = {0, 7, 0};
  const service::VerifyResultFrame echoed =
      service::decodeVerifyResult(encodeVerifyResult(result));
  EXPECT_EQ(echoed.feasible, result.feasible);
  EXPECT_EQ(echoed.violations, result.violations);
  EXPECT_EQ(echoed.fingerprint, result.fingerprint);
  EXPECT_EQ(echoed.violationsPerLabelling, result.violationsPerLabelling);

  service::ClassifyRequestFrame classifyRequest;
  classifyRequest.spec = "cmis";
  const service::ClassifyRequestFrame classifyEchoed =
      service::decodeClassifyRequest(encodeClassifyRequest(classifyRequest));
  EXPECT_EQ(classifyEchoed.spec, "cmis");
}

TEST(ServiceProtocol, MalformedPayloadsThrow) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(service::decodeVerifyRequest(empty), service::ProtocolError);
  // A spec length pointing past the payload.
  service::VerifyRequestFrame request;
  request.spec = "vc:4";
  request.labelling = service::LabellingKind::kPath;
  request.path = "x";
  std::vector<std::uint8_t> payload = encodeVerifyRequest(request);
  payload[28] = 0xff;  // specLen low byte
  EXPECT_THROW(service::decodeVerifyRequest(payload), service::ProtocolError);
  // Label payload not matching batch * n^dims.
  const std::vector<int> labels = {0, 1, 2};
  service::VerifyRequestFrame wrong;
  wrong.spec = "vc:4";
  wrong.n = 2;  // needs 4 labels, has 3
  wrong.labels = labels;
  std::vector<std::uint8_t> bad;
  EXPECT_NO_THROW(bad = encodeVerifyRequest(wrong));
  EXPECT_THROW(service::decodeVerifyRequest(bad), service::ProtocolError);
}

TEST(ServiceDaemon, VerifyMatchesLocalEngine) {
  VerificationService daemon(testConfig());
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  EXPECT_TRUE(client.ping());

  const int n = 8;
  const Torus2D torus(n);
  const GridLcl local = problems::vertexColouring(4);
  std::vector<int> labels = properFourColouring(n);
  auto feasible = client.verify(verifyFrame("vc:4", n, labels));
  ASSERT_TRUE(feasible.has_value());
  EXPECT_TRUE(feasible->feasible);
  EXPECT_EQ(feasible->violations, 0);
  EXPECT_EQ(feasible->fingerprint, local.table().fingerprint());

  labels[5] = labels[4];  // adjacent equal pair
  auto infeasible = client.verify(verifyFrame("vc:4", n, labels));
  ASSERT_TRUE(infeasible.has_value());
  EXPECT_FALSE(infeasible->feasible);
  EXPECT_EQ(infeasible->violations, countViolations(torus, local, labels));
  daemon.stop();
}

TEST(ServiceDaemon, FingerprintReferenceAndUnknownFingerprint) {
  VerificationService daemon(testConfig());
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  const int n = 6;
  const std::vector<int> labels = properFourColouring(n);
  const auto bySpec = client.verify(verifyFrame("vc:4", n, labels));
  ASSERT_TRUE(bySpec.has_value());

  service::VerifyRequestFrame byFingerprint = verifyFrame("", n, labels);
  byFingerprint.problemRef = service::ProblemRefKind::kFingerprint;
  byFingerprint.fingerprint = bySpec->fingerprint;
  const auto cached = client.verify(byFingerprint);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->feasible, bySpec->feasible);

  byFingerprint.fingerprint ^= 1;
  try {
    (void)client.verify(byFingerprint);
    FAIL() << "expected RemoteError";
  } catch (const service::RemoteError& error) {
    EXPECT_NE(std::string(error.what()).find("unknown problem fingerprint"),
              std::string::npos);
  }
  daemon.stop();
}

TEST(ServiceDaemon, BatchAndDProblemAndPathRequests) {
  VerificationService daemon(testConfig());
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());

  // Batch: 2 labellings, one proper and one broken.
  const int n = 6;
  std::vector<int> batch = properFourColouring(n);
  std::vector<int> broken = properFourColouring(n);
  broken[1] = broken[0];
  batch.insert(batch.end(), broken.begin(), broken.end());
  service::VerifyRequestFrame frame = verifyFrame("vc:4", n, batch);
  frame.batch = 2;
  const auto result = client.verify(frame);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->labellings, 2);
  ASSERT_EQ(result->violationsPerLabelling.size(), 2u);
  EXPECT_EQ(result->violationsPerLabelling[0], 0);
  EXPECT_GT(result->violationsPerLabelling[1], 0);

  // d-dimensional: xorParity on the 3-torus, all-zero labels are feasible
  // iff every line's parity is 0 -- all zeros: feasible.
  std::vector<int> zeros(4 * 4 * 4, 0);
  service::VerifyRequestFrame frameD = verifyFrame("xor:3", 4, zeros);
  frameD.dims = 3;
  const auto resultD = client.verify(frameD);
  ASSERT_TRUE(resultD.has_value());
  EXPECT_TRUE(resultD->feasible);

  // Path request: the daemon opens the LCLLABv1 file itself (stream tier).
  const std::string path = tempName("service_stream");
  const std::vector<int> labels = properFourColouring(8);
  writeLabellingFile(path, 4, 2, 8, labels);
  service::VerifyRequestFrame pathFrame;
  pathFrame.spec = "vc:4";
  pathFrame.countViolations = true;
  pathFrame.labelling = service::LabellingKind::kPath;
  pathFrame.path = path;
  const auto streamed = client.verify(pathFrame);
  ASSERT_TRUE(streamed.has_value());
  EXPECT_TRUE(streamed->feasible);
  EXPECT_EQ(streamed->tier, 3);  // VerifyTier::kStream
  std::remove(path.c_str());
  daemon.stop();
}

TEST(ServiceDaemon, ClassifyGridAndCycle) {
  VerificationService daemon(testConfig());
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());

  service::ClassifyRequestFrame cycleRequest;
  cycleRequest.spec = "cvc:3";
  const auto cycleJson = client.classify(cycleRequest);
  ASSERT_TRUE(cycleJson.has_value());
  const support::JsonValue cycleDoc = support::parseJson(*cycleJson);
  EXPECT_EQ(cycleDoc.at("engine").asString(), "cycle");
  EXPECT_FALSE(cycleDoc.at("complexity").asString().empty());

  service::ClassifyRequestFrame gridRequest;
  gridRequest.spec = "vc:2";
  const auto gridJson = client.classify(gridRequest);
  ASSERT_TRUE(gridJson.has_value());
  const support::JsonValue gridDoc = support::parseJson(*gridJson);
  EXPECT_EQ(gridDoc.at("engine").asString(), "grid");
  EXPECT_FALSE(gridDoc.at("cache_hit").asBool());

  // Second classification of the same problem: served from the report
  // cache.
  const auto cachedJson = client.classify(gridRequest);
  ASSERT_TRUE(cachedJson.has_value());
  EXPECT_TRUE(support::parseJson(*cachedJson).at("cache_hit").asBool());
  daemon.stop();
}

TEST(ServiceDaemon, ErrorPathsBadMagicOversizedTruncatedDisconnect) {
  ServiceConfig config = testConfig();
  config.maxPayloadBytes = 4096;
  VerificationService daemon(config);
  daemon.start();

  {  // Bad magic mid-stream: kError, then the daemon closes the stream.
    ServiceClient client = ServiceClient::connectTcp(daemon.port());
    ASSERT_TRUE(client.ping());  // binary mode established
    std::vector<std::uint8_t> garbage(wire::kHeaderBytes, 0x5a);
    client.sendRaw(garbage);
    const auto reply = client.receive();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, wire::FrameType::kError);
    EXPECT_FALSE(client.receive().has_value());  // connection closed
  }
  {  // Oversized frame: kError naming the limit, then close.
    ServiceClient client = ServiceClient::connectTcp(daemon.port());
    client.sendFrame(wire::FrameType::kPing, 9, {});
    ASSERT_TRUE(client.receive().has_value());
    std::vector<std::uint8_t> header;
    wire::appendHeader(header, wire::FrameType::kVerify, 10, 1u << 20);
    client.sendRaw(header);
    const auto reply = client.receive();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, wire::FrameType::kError);
    EXPECT_FALSE(client.receive().has_value());
  }
  {  // Truncated frame then disconnect: the daemon just drops the
     // connection; no crash, and it still serves new clients.
    ServiceClient client = ServiceClient::connectTcp(daemon.port());
    std::vector<std::uint8_t> header;
    wire::appendHeader(header, wire::FrameType::kVerify, 11, 100);
    header.resize(header.size() + 10, 0);  // 10 of the promised 100 bytes
    client.sendRaw(header);
    client.close();
  }
  {  // Disconnect mid-request: the response hits a closed socket; the
     // daemon must shrug it off.
    ServiceClient client = ServiceClient::connectTcp(daemon.port());
    std::vector<std::uint8_t> payload;
    wire::appendU32(payload, 50);  // ms
    client.sendFrame(wire::FrameType::kSleep, 12, payload);
    client.close();
  }
  ServiceClient survivor = ServiceClient::connectTcp(daemon.port());
  EXPECT_TRUE(survivor.ping());
  daemon.stop();
}

TEST(ServiceDaemon, UnknownSpecAndCycleVerifyRejected) {
  VerificationService daemon(testConfig());
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  const std::vector<int> labels(16, 0);
  EXPECT_THROW((void)client.verify(verifyFrame("nope:1", 4, labels)),
               service::RemoteError);
  EXPECT_THROW((void)client.verify(verifyFrame("cmis", 4, labels)),
               service::RemoteError);
  service::ClassifyRequestFrame dRequest;
  dRequest.spec = "xor:3";
  EXPECT_THROW((void)client.classify(dRequest), service::RemoteError);
  daemon.stop();
}

TEST(ServiceDaemon, OverloadAnswersExplicitBusyNeverSilent) {
  ServiceConfig config = testConfig();
  config.serviceThreads = 1;
  config.maxQueuedPerClient = 1;
  VerificationService daemon(config);
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  ASSERT_TRUE(client.ping());

  // 5 sleeps back-to-back against a budget of 1: every frame must be
  // answered -- admitted ones with kPong, the excess with kBusy.
  const int frames = 5;
  for (int i = 0; i < frames; ++i) {
    std::vector<std::uint8_t> payload;
    wire::appendU32(payload, 30);
    client.sendFrame(wire::FrameType::kSleep,
                     static_cast<std::uint32_t>(100 + i), payload);
  }
  int pongs = 0;
  int busy = 0;
  for (int i = 0; i < frames; ++i) {
    const auto reply = client.receive();
    ASSERT_TRUE(reply.has_value()) << "response " << i << " went missing";
    if (reply->type == wire::FrameType::kPong) ++pongs;
    if (reply->type == wire::FrameType::kBusy) ++busy;
  }
  EXPECT_EQ(pongs + busy, frames);
  EXPECT_GE(busy, 1);
  EXPECT_GE(pongs, 1);
  EXPECT_GE(daemon.counters().busyRejections, 1);

  // After the backlog drains, the client is admitted again.
  EXPECT_TRUE(client.sleepMs(1));
  daemon.stop();
}

TEST(ServiceDaemon, ConcurrentClientsDeterministicAcrossServiceThreads) {
  const int n = 8;
  const Torus2D torus(n);
  const GridLcl local = problems::vertexColouring(4);
  std::vector<int> broken = properFourColouring(n);
  broken[7] = broken[6];
  const std::int64_t expected = countViolations(torus, local, broken);
  ASSERT_GT(expected, 0);

  for (int serviceThreads : {1, 2, 8}) {
    ServiceConfig config = testConfig();
    config.serviceThreads = serviceThreads;
    VerificationService daemon(config);
    daemon.start();
    std::vector<std::thread> clients;
    std::vector<int> failures(8, 0);
    for (int c = 0; c < 8; ++c) {
      clients.emplace_back([&, c] {
        ServiceClient client = ServiceClient::connectTcp(daemon.port());
        for (int i = 0; i < 20; ++i) {
          const auto result = client.verify(verifyFrame("vc:4", n, broken));
          if (!result || result->violations != expected) {
            ++failures[static_cast<std::size_t>(c)];
          }
        }
      });
    }
    for (std::thread& thread : clients) thread.join();
    for (int count : failures) {
      EXPECT_EQ(count, 0) << "serviceThreads=" << serviceThreads;
    }
    daemon.stop();
  }
}

TEST(ServiceDaemon, JsonDebugMode) {
  VerificationService daemon(testConfig());
  daemon.start();
  JsonDebugClient client = JsonDebugClient::connectTcp(daemon.port());

  const auto pong = client.request(R"({"op":"ping","id":1})");
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(support::parseJson(*pong).at("pong").asBool());

  const auto feasible = client.request(
      R"({"op":"verify","id":2,"problem":"vc:4","count":true,"n":2,)"
      R"("labels":[0,1,2,3]})");
  ASSERT_TRUE(feasible.has_value());
  const support::JsonValue doc = support::parseJson(*feasible);
  EXPECT_TRUE(doc.at("ok").asBool());
  EXPECT_TRUE(doc.at("feasible").asBool());
  EXPECT_EQ(doc.at("violations").asInt(), 0);

  const auto classified =
      client.request(R"({"op":"classify","id":3,"problem":"cvc:3"})");
  ASSERT_TRUE(classified.has_value());
  EXPECT_EQ(support::parseJson(*classified)
                .at("classification")
                .at("engine")
                .asString(),
            "cycle");

  const auto stats = client.request(R"({"op":"stats","id":4})");
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(support::parseJson(*stats)
                .at("stats")
                .at("service")
                .at("requests")
                .asInt(),
            3);

  const auto unknownOp = client.request(R"({"op":"frobnicate","id":5})");
  ASSERT_TRUE(unknownOp.has_value());
  EXPECT_NE(support::parseJson(*unknownOp).find("error"), nullptr);

  const auto parseError = client.request("this is not json");
  ASSERT_TRUE(parseError.has_value());
  EXPECT_NE(support::parseJson(*parseError).find("error"), nullptr);
  daemon.stop();
}

TEST(ServiceDaemon, StatsFrameCarriesServiceAndCacheCounters) {
  VerificationService daemon(testConfig());
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  const std::vector<int> labels = properFourColouring(6);
  ASSERT_TRUE(client.verify(verifyFrame("vc:4", 6, labels)).has_value());
  ASSERT_TRUE(client.verify(verifyFrame("vc:4", 6, labels)).has_value());
  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  const support::JsonValue doc = support::parseJson(*stats);
  const support::JsonValue& svc = doc.at("service");
  EXPECT_GE(svc.at("requests").asInt(), 2);
  EXPECT_GE(svc.at("verify_requests").asInt(), 2);
  // Same spec twice: the second resolution hits the problem cache.
  EXPECT_GE(svc.at("problem_cache").at("hits").asInt(), 1);
  EXPECT_NE(doc.find("metrics"), nullptr);
  daemon.stop();
}

TEST(ServiceDaemon, UnixSocketAndShutdownRequest) {
  ServiceConfig config = testConfig();
  config.unixSocketPath = tempName("service_sock");
  VerificationService daemon(config);
  daemon.start();
  EXPECT_EQ(daemon.port(), -1);
  ServiceClient client = ServiceClient::connectUnix(config.unixSocketPath);
  EXPECT_TRUE(client.ping());
  const std::vector<int> labels = properFourColouring(6);
  EXPECT_TRUE(client.verify(verifyFrame("vc:4", 6, labels)).has_value());
  client.requestShutdown();
  daemon.waitForShutdown();  // returns because the client asked
  daemon.stop();
}
