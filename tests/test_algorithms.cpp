#include <gtest/gtest.h>

#include "algorithms/edge_colouring.hpp"
#include "algorithms/four_colouring.hpp"
#include "algorithms/global_baseline.hpp"
#include "algorithms/orientations.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/ids.hpp"
#include "local/row_anchors.hpp"
#include "local/ruling_set.hpp"

namespace lclgrid::algorithms {
namespace {

// --- edge colouring (Section 10) -------------------------------------------

class EdgeColouringOneDim : public ::testing::TestWithParam<int> {};

TEST_P(EdgeColouringOneDim, ThreeColoursOnCycles) {
  // Theorem 15, d = 1: 3-edge-colouring of the cycle in Theta(log* n).
  int n = GetParam();
  TorusD torus(1, n);
  auto run = edgeColouringGrid(torus, local::randomIds(n, 13));
  ASSERT_TRUE(run.solved) << run.failure;
  EXPECT_EQ(run.palette, 3);
  EXPECT_TRUE(isProperEdgeColouringD(torus, run.colour, 3));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EdgeColouringOneDim,
                         ::testing::Values(30, 61, 128, 501));

TEST(EdgeColouring, TwoDimensionalFiveColouring) {
  // Theorem 15, d = 2: 5-edge-colouring in Theta(log* n). The j,k-
  // independent set geometry needs n >= ~2 spacing (see DESIGN.md).
  TorusD torus(2, 224);
  auto run = edgeColouringGrid(torus, local::randomIds(
                                          static_cast<int>(torus.size()), 3));
  ASSERT_TRUE(run.solved) << run.failure;
  EXPECT_EQ(run.palette, 5);
  EXPECT_TRUE(isProperEdgeColouringD(torus, run.colour, 5));
}

TEST(EdgeColouring, RoundsFlatAcrossCycleSizes) {
  TorusD small(1, 64), large(1, 2048);
  auto runSmall = edgeColouringGrid(small, local::randomIds(64, 5));
  auto runLarge = edgeColouringGrid(large, local::randomIds(2048, 5));
  ASSERT_TRUE(runSmall.solved);
  ASSERT_TRUE(runLarge.solved);
  EXPECT_LE(runLarge.rounds, runSmall.rounds + 120);
}

TEST(EdgeColouring, VerifierCatchesBadColourings) {
  TorusD torus(2, 4);
  std::vector<int> colour(static_cast<std::size_t>(torus.size()) * 2, 0);
  EXPECT_FALSE(isProperEdgeColouringD(torus, colour, 5));
}

TEST(EdgeColouring, FourColoursImpossibleOnOddTorus) {
  // Theorem 21 for d=2 via the LCL feasibility oracle (SAT): see also the
  // lcl tests; here we check the parity argument's arithmetic directly.
  // n odd => n^2 * d / 2 is not an integer for colour-class sizes.
  for (int n : {3, 5, 7}) {
    long long edgesPerColour = static_cast<long long>(n) * n * 2;
    EXPECT_EQ(edgesPerColour % 2, 0);  // total edges even...
    EXPECT_EQ((static_cast<long long>(n) * n) % 2, 1);  // ...but nd/2 odd
  }
}

// --- row anchors (substrate of Section 10) ---------------------------------

class RowAnchorProperties
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RowAnchorProperties, SeparationAndDomination) {
  auto [n, spacing] = GetParam();
  TorusD torus(2, n);
  auto anchors = local::sparseRowAnchors(
      torus, 0, spacing, local::randomIds(static_cast<int>(torus.size()), 7));
  ASSERT_EQ(anchors.separation, spacing);
  // Check both properties row by row along axis 0.
  for (int y = 0; y < n; ++y) {
    std::vector<int> positions;
    for (int x = 0; x < n; ++x) {
      if (anchors.inSet[static_cast<std::size_t>(
              torus.id({x, y}))]) {
        positions.push_back(x);
      }
    }
    ASSERT_FALSE(positions.empty()) << "row " << y << " has no anchor";
    for (std::size_t i = 0; i < positions.size(); ++i) {
      int next = positions[(i + 1) % positions.size()];
      int gap = (next - positions[i] + n) % n;
      if (gap == 0) gap = n;
      EXPECT_GT(gap, anchors.separation);
      EXPECT_LE(gap, 2 * anchors.domination + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RowAnchorProperties,
    ::testing::Values(std::make_tuple(40, 6), std::make_tuple(64, 10),
                      std::make_tuple(96, 18)));

// --- ruling sets ------------------------------------------------------------

TEST(RulingSet, HierarchicalSeparationAndDomination) {
  Torus2D torus(48);
  auto ids = local::randomIds(torus.size(), 3);
  for (int target : {3, 7, 12}) {
    auto ruling = local::hierarchicalRulingSet(torus, target, ids);
    EXPECT_GE(ruling.separation, target);
    std::vector<int> anchors;
    for (int v = 0; v < torus.size(); ++v) {
      if (ruling.inSet[static_cast<std::size_t>(v)]) anchors.push_back(v);
    }
    ASSERT_FALSE(anchors.empty());
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      for (std::size_t j = i + 1; j < anchors.size(); ++j) {
        EXPECT_GT(torus.linf(anchors[i], anchors[j]), ruling.separation);
      }
    }
    for (int v = 0; v < torus.size(); ++v) {
      int closest = torus.n();
      for (int a : anchors) closest = std::min(closest, torus.linf(v, a));
      EXPECT_LE(closest, ruling.domination);
    }
  }
}

TEST(RulingSet, MisCompletionReachesExactDomination) {
  Torus2D torus(40);
  auto ids = local::randomIds(torus.size(), 17);
  auto mis = local::misOfLinfPower(torus, 5, ids);
  std::vector<int> anchors;
  for (int v = 0; v < torus.size(); ++v) {
    if (mis.inSet[static_cast<std::size_t>(v)]) anchors.push_back(v);
  }
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (std::size_t j = i + 1; j < anchors.size(); ++j) {
      EXPECT_GT(torus.linf(anchors[i], anchors[j]), 5);
    }
  }
  for (int v = 0; v < torus.size(); ++v) {
    int closest = torus.n();
    for (int a : anchors) closest = std::min(closest, torus.linf(v, a));
    EXPECT_LE(closest, 5);
  }
}

// --- orientations (Section 11) ----------------------------------------------

TEST(Orientations, PaperClassificationTable) {
  using enum OrientationClass;
  EXPECT_EQ(classifyOrientationPaper({2}), Constant);
  EXPECT_EQ(classifyOrientationPaper({0, 2, 4}), Constant);
  EXPECT_EQ(classifyOrientationPaper({1, 3, 4}), LogStar);
  EXPECT_EQ(classifyOrientationPaper({0, 1, 3}), LogStar);
  EXPECT_EQ(classifyOrientationPaper({0, 1, 3, 4}), LogStar);
  EXPECT_EQ(classifyOrientationPaper({1, 3}), Global);
  EXPECT_EQ(classifyOrientationPaper({0, 3, 4}), Global);
  EXPECT_EQ(classifyOrientationPaper({0, 4}), Global);
  EXPECT_EQ(classifyOrientationPaper({}), Unsolvable);
}

class OrientationSolvers
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OrientationSolvers, SolveAndVerifyAcrossClasses) {
  auto [n, which] = GetParam();
  std::set<int> xs[] = {{2}, {1, 3, 4}, {0, 1, 3}, {0, 3, 4}};
  const std::set<int>& x = xs[which];
  Torus2D torus(n);
  auto run = solveOrientation(torus, x, local::randomIds(torus.size(), 3));
  ASSERT_TRUE(run.solved) << run.failure;
  EXPECT_TRUE(verify(torus, problems::orientation(x), run.labels));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, OrientationSolvers,
    ::testing::Combine(::testing::Values(12, 16), ::testing::Values(0, 1, 2, 3)));

TEST(Orientations, ConstantCaseUsesZeroRounds) {
  Torus2D torus(10);
  auto run = solveOrientation(torus, {2}, local::randomIds(torus.size(), 1));
  ASSERT_TRUE(run.solved);
  EXPECT_EQ(run.rounds, 0);
}

TEST(Orientations, GlobalCaseReportsInfeasibilityOnOddTori) {
  Torus2D torus(5);
  auto run = solveOrientation(torus, {1, 3}, local::randomIds(torus.size(), 1));
  EXPECT_FALSE(run.solved);
}

// --- global baseline ----------------------------------------------------------

TEST(GlobalBaseline, SolvesAndCountsDiameterRounds) {
  Torus2D torus(6);
  auto run = solveByGathering(torus, problems::vertexColouring(3));
  ASSERT_TRUE(run.solved);
  EXPECT_TRUE(verify(torus, problems::vertexColouring(3), run.labels));
  EXPECT_EQ(run.rounds, 6);
}

TEST(GlobalBaseline, RoundsGrowLinearly) {
  auto small = solveByGathering(Torus2D(6), problems::vertexColouring(3));
  auto large = solveByGathering(Torus2D(12), problems::vertexColouring(3));
  EXPECT_EQ(large.rounds, 2 * small.rounds);
}

// --- Section 8 pipeline -------------------------------------------------------

TEST(FourColouring, VerifierRejectsBadColourings) {
  TorusD torus(2, 8);
  std::vector<int> allSame(static_cast<std::size_t>(torus.size()), 1);
  EXPECT_FALSE(isProperColouringD(torus, allSame, 4));
}

TEST(FourColouring, PipelineReportsHonestOutcome) {
  // At laptop-scale ell the radius-assignment CSP of Section 8 is
  // infeasible (see DESIGN.md); the pipeline must either produce a verified
  // colouring or report the failure explicitly -- never a bad colouring.
  TorusD torus(2, 32);
  auto run = fourColouring(torus, local::randomIds(
                                      static_cast<int>(torus.size()), 3));
  if (run.solved) {
    EXPECT_TRUE(isProperColouringD(torus, run.colour, 4));
  } else {
    EXPECT_FALSE(run.failure.empty());
  }
}

}  // namespace
}  // namespace lclgrid::algorithms
