// Arena clause store + watcher hygiene (ISSUE 8).
//
// Two families of tests:
//  * SatWatcherHygiene -- the regression tests for the two watcher bugs:
//    reduceLearntDb() used to leave watch-list entries pointing at reclaimed
//    clauses (the blocker fast path in propagate() keeps a watcher without
//    ever touching the clause, so an entry behind a permanently-true blocker
//    survived forever), and only compactDatabase() scrubbed eagerly. The
//    invariant pinned down here: after any reduction or compaction, every
//    watch-list entry points at a live clause, so the total watcher count is
//    exactly 2 * liveClauses().
//  * SatArenaGc -- the mark-and-compact garbage collector, driven with a
//    tiny dead-fraction threshold (Solver::setGcDeadFraction test hook) so
//    collections run constantly while the PR 3 incremental-session fuzz
//    pattern interleaves addClause / solve(assumptions) / ClauseGroup
//    retire / compactDatabase. Verdicts, models and cores are cross-checked
//    against a brute-force reference on the mirrored clause list, and the
//    SolverStats invariants (liveClauses/liveLiterals never negative, arena
//    bytes shrink across a collection) are asserted at every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "support/numeric.hpp"

namespace lclgrid::sat {
namespace {

// Brute-force reference over an explicit clause list (DIMACS literals).
bool bruteForceSat(int numVars, const std::vector<std::vector<int>>& clauses) {
  for (int assignment = 0; assignment < (1 << numVars); ++assignment) {
    bool allSatisfied = true;
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (int lit : clause) {
        int var = std::abs(lit) - 1;
        bool value = (assignment >> var) & 1;
        if ((lit > 0) == value) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        allSatisfied = false;
        break;
      }
    }
    if (allSatisfied) return true;
  }
  return false;
}

std::vector<std::vector<int>> randomCnf(SplitMix64& rng, int numVars,
                                        int numClauses, int width = 3) {
  std::vector<std::vector<int>> clauses;
  clauses.reserve(static_cast<std::size_t>(numClauses));
  for (int i = 0; i < numClauses; ++i) {
    std::vector<int> clause;
    for (int j = 0; j < width; ++j) {
      int var = static_cast<int>(
                    rng.nextBelow(static_cast<std::uint64_t>(numVars))) +
                1;
      clause.push_back(rng.nextBelow(2) ? -var : var);
    }
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

// Pigeonhole principle: n+1 pigeons into n holes -- hard UNSAT, generates
// plenty of learnt clauses for the reduction tests.
void buildPigeonhole(Solver& solver, int holes) {
  int pigeons = holes + 1;
  std::vector<std::vector<int>> var(
      static_cast<std::size_t>(pigeons),
      std::vector<int>(static_cast<std::size_t>(holes)));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      var[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)] =
          solver.newVar();
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<int> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(
          var[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]);
    }
    solver.addClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        solver.addClause(
            {-var[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)],
             -var[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]});
      }
    }
  }
}

/// The watcher-hygiene invariant: every stored (non-unit) clause holds
/// exactly two watch entries, and nothing else is in any list.
void expectWatcherHygiene(const Solver& solver) {
  EXPECT_EQ(solver.watcherCount(), 2 * solver.liveClauses());
}

// --- watcher hygiene regressions -------------------------------------------

TEST(SatWatcherHygiene, ReductionScrubsWatchListsInLongSession) {
  // A long incremental session: budgeted solves accumulate learnt clauses,
  // explicit reductions delete half of them. Before the fix, every
  // reduction leaked the deleted clauses' watch entries (reduceLearntDb
  // never scrubbed; the blocker fast path retained them indefinitely), so
  // the watcher count drifted above 2 * liveClauses and never came back.
  Solver solver;
  buildPigeonhole(solver, 7);
  expectWatcherHygiene(solver);

  std::int64_t deletedSoFar = 0;
  Result result = Result::Unknown;
  for (int round = 0; round < 6 && result == Result::Unknown; ++round) {
    result = solver.solve(400);
    solver.reduceLearntDb();
    expectWatcherHygiene(solver);
    deletedSoFar = solver.learntDeleted();
  }
  EXPECT_GT(deletedSoFar, 0);
  // The session stays correct after all those reductions: the formula is
  // still pigeonhole-unsat.
  while (result == Result::Unknown) result = solver.solve(100000);
  EXPECT_EQ(result, Result::Unsat);
}

TEST(SatWatcherHygiene, TrueBlockerDoesNotRetainReclaimedClause) {
  // The precise bug shape: a clause watched with a blocker that is pinned
  // true at level 0 is never traversed by propagate() (the fast path keeps
  // the watcher without touching the clause), so lazily-dropped deletion
  // never reached it. Retiring the group reclaims the clauses; the eager
  // scrub must drop their watchers even though the blockers stay true.
  Solver solver;
  int x = solver.newVar();
  int y = solver.newVar();
  int z = solver.newVar();

  ClauseGroup group(solver);
  // Clauses watching x as one of the two watched literals (the sorted
  // clause puts x first), so the co-watched literal's entry carries x as
  // its blocker.
  group.addClause(solver, {x, y, z});
  group.addClause(solver, {x, -y, z});
  group.addClause(solver, {x, y, -z});
  ASSERT_EQ(solver.solve({group.activation()}, -1), Result::Sat);

  // Now pin the blocker permanently true at level 0 and exercise the fast
  // path: every propagation through these lists takes the blocker exit
  // without ever touching the clauses.
  solver.addClause({x});
  ASSERT_EQ(solver.solve({group.activation(), -y}, -1), Result::Sat);
  expectWatcherHygiene(solver);

  const std::size_t watchersWithGroup = solver.watcherCount();
  group.retire(solver);  // purges the group via compactDatabase()
  EXPECT_LT(solver.watcherCount(), watchersWithGroup);
  expectWatcherHygiene(solver);

  // Propagation through the scrubbed lists stays sound.
  ASSERT_EQ(solver.solve({-y, -z}, -1), Result::Sat);
  EXPECT_FALSE(solver.modelValue(y));
  EXPECT_FALSE(solver.modelValue(z));
  expectWatcherHygiene(solver);
}

// --- arena garbage collection ----------------------------------------------

TEST(SatArenaGc, RetireTriggersCollectionAndShrinksArena) {
  Solver solver;
  solver.setGcDeadFraction(1e-9);  // any dead word triggers a collection
  const int k = 10;
  std::vector<int> vars;
  for (int i = 0; i < k; ++i) vars.push_back(solver.newVar());
  solver.addClause({vars[0], vars[1]});  // persistent backbone

  ClauseGroup group(solver);
  for (int i = 0; i + 1 < k; ++i) {
    group.addClause(solver, {vars[i], vars[i + 1]});
    group.addClause(solver, {-vars[i], -vars[i + 1]});
  }
  ASSERT_EQ(solver.solve({group.activation()}, -1), Result::Sat);

  const std::size_t bytesWithGroup = solver.arenaBytes();
  const std::int64_t gcBefore = solver.gcRuns();
  group.retire(solver);
  EXPECT_GT(solver.gcRuns(), gcBefore);
  EXPECT_LT(solver.arenaBytes(), bytesWithGroup);
  expectWatcherHygiene(solver);

  // The remapped references still drive correct propagation: the backbone
  // survives, the retired clauses no longer constrain.
  ASSERT_EQ(solver.solve({-vars[0]}, -1), Result::Sat);
  EXPECT_TRUE(solver.modelValue(vars[1]));
  ASSERT_EQ(solver.solve({vars[0], vars[1]}, -1), Result::Sat);
}

TEST(SatArenaGc, CollectionDuringActiveSearchKeepsVerdict) {
  // Reductions (and therefore collections, at a tiny threshold) fire in
  // the middle of a search with a populated trail and live reason clauses;
  // the remap must leave the resumed search sound.
  Solver withGc;
  withGc.setGcDeadFraction(1e-9);
  buildPigeonhole(withGc, 6);
  Result result = Result::Unknown;
  std::int64_t budget = 64;
  while (result == Result::Unknown) {
    result = withGc.solve(budget);
    withGc.reduceLearntDb();  // delete + collect mid-session
    expectWatcherHygiene(withGc);
    budget *= 2;
  }
  EXPECT_EQ(result, Result::Unsat);
  EXPECT_GT(withGc.gcRuns(), 0);
}

TEST(SatArenaGc, StatsInvariantsHoldAcrossCollections) {
  Solver solver;
  solver.setGcDeadFraction(1e-9);
  SplitMix64 rng(0xC01157);
  const int numVars = 8;
  for (int i = 0; i < numVars; ++i) solver.newVar();
  for (int step = 0; step < 12; ++step) {
    for (const auto& clause : randomCnf(rng, numVars, 3)) {
      solver.addClause(clause);
    }
    (void)solver.solve(-1);
    solver.compactDatabase();
    const SolverStats stats = solver.snapshotStats();
    EXPECT_GE(stats.liveClauses, 0);
    EXPECT_GE(stats.liveLiterals, 0);
    EXPECT_GE(stats.arenaBytes, 0);
    EXPECT_GE(stats.gcRuns, 0);
    // Every stored clause has >= 2 literals (units live on the trail), and
    // after a collection the arena holds exactly the live database.
    EXPECT_GE(stats.liveLiterals, 2 * stats.liveClauses);
    EXPECT_EQ(static_cast<std::size_t>(stats.arenaBytes),
              (3 * static_cast<std::size_t>(stats.liveClauses) +
               static_cast<std::size_t>(stats.liveLiterals)) *
                  sizeof(std::uint32_t));
    if (!solver.ok()) break;
  }
}

// The PR 3 incremental-session fuzz, extended with forced GC: one live
// solver interleaves addClause bursts, assumption solves, activation-group
// retire (-> compactDatabase -> collection) and explicit compactDatabase
// calls, with the dead-fraction threshold at ~0 so the arena is collected
// and every reference remapped constantly. Every verdict, model and core is
// checked against brute force over the mirrored clause list -- exactly what
// a fresh solver would see.
class ArenaGcSessionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ArenaGcSessionFuzz, ForcedGcTracksFreshReference) {
  const int seed = GetParam();
  SplitMix64 rng(0xA7E4A + static_cast<std::uint64_t>(seed));
  const int numVars = 9;
  Solver solver;
  solver.setGcDeadFraction(1e-9);
  for (int i = 0; i < numVars; ++i) solver.newVar();
  // The mirror holds every clause the solver logically contains, including
  // guard-extended group clauses and the unit !guard of each retirement.
  std::vector<std::vector<int>> mirror;
  struct LiveGroup {
    ClauseGroup group;
    int guard;
  };
  std::vector<LiveGroup> groups;

  for (int step = 0; step < 14; ++step) {
    // Burst of permanent clauses.
    const int burst = 1 + static_cast<int>(rng.nextBelow(3));
    for (const auto& clause : randomCnf(rng, numVars, burst)) {
      solver.addClause(clause);
      mirror.push_back(clause);
    }
    // Occasionally open a scoped group with a couple of clauses.
    if (rng.nextBelow(3) == 0) {
      LiveGroup live{ClauseGroup(solver), 0};
      live.guard = live.group.activation();
      for (auto& clause : randomCnf(rng, numVars, 2)) {
        live.group.addClause(solver, clause);
        clause.push_back(-live.guard);
        mirror.push_back(clause);
      }
      groups.push_back(std::move(live));
    }
    // Occasionally retire the oldest open group (runs compactDatabase and,
    // at this threshold, a full collection).
    if (!groups.empty() && rng.nextBelow(3) == 0) {
      groups.front().group.retire(solver);
      mirror.push_back({-groups.front().guard});
      groups.erase(groups.begin());
    }
    if (rng.nextBelow(4) == 0) solver.compactDatabase();

    // Assumptions over the base variables plus open-group activations.
    std::vector<int> assumptions;
    if (rng.nextBelow(2)) {
      int var = static_cast<int>(rng.nextBelow(numVars)) + 1;
      assumptions.push_back(rng.nextBelow(2) ? -var : var);
    }
    for (const LiveGroup& live : groups) {
      if (rng.nextBelow(2)) assumptions.push_back(live.guard);
    }

    auto withUnits = mirror;
    for (int lit : assumptions) withUnits.push_back({lit});
    const int totalVars = solver.numVars();
    ASSERT_LE(totalVars, 20) << "brute-force ceiling";
    const bool expected = bruteForceSat(totalVars, withUnits);

    const std::size_t arenaBefore = solver.arenaBytes();
    const std::int64_t gcBefore = solver.gcRuns();
    Result result = solver.solve(assumptions, -1);
    ASSERT_NE(result, Result::Unknown);
    EXPECT_EQ(result == Result::Sat, expected)
        << "seed=" << seed << " step=" << step;

    const SolverStats stats = solver.snapshotStats();
    EXPECT_GE(stats.liveClauses, 0) << "seed=" << seed << " step=" << step;
    EXPECT_GE(stats.liveLiterals, 0) << "seed=" << seed << " step=" << step;
    if (stats.gcRuns > gcBefore) {
      // A collection ran somewhere in this step: the arena must not have
      // grown past its pre-step size plus this step's additions -- in
      // particular a retire-triggered collection shrinks it outright.
      EXPECT_LE(stats.arenaBytes,
                static_cast<std::int64_t>(arenaBefore) +
                    static_cast<std::int64_t>(stats.liveLiterals + 64) * 4)
          << "seed=" << seed << " step=" << step;
    }

    if (result == Result::Sat) {
      // The model satisfies the mirror (guard-extended clauses included)
      // and binds every assumption.
      for (int lit : assumptions) {
        EXPECT_EQ(solver.modelValue(std::abs(lit)), lit > 0);
      }
      for (const auto& clause : mirror) {
        bool satisfied = false;
        for (int lit : clause) {
          if (solver.modelValue(std::abs(lit)) == (lit > 0)) satisfied = true;
        }
        EXPECT_TRUE(satisfied) << "seed=" << seed << " step=" << step;
      }
    } else {
      // The core is a subset of the assumptions and itself unsat.
      const auto& core = solver.conflictCore();
      for (int lit : core) {
        EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), lit),
                  assumptions.end())
            << "core literal " << lit << " is not an assumption";
      }
      auto withCore = mirror;
      for (int lit : core) withCore.push_back({lit});
      EXPECT_FALSE(bruteForceSat(totalVars, withCore))
          << "seed=" << seed << " step=" << step;
    }
    if (!solver.ok()) break;  // formula itself unsat: session over
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaGcSessionFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace lclgrid::sat
