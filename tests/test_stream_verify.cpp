// The streaming (out-of-core) verifier tier: on-disk format round-trips,
// bit-identical agreement with the in-core engine across window geometries,
// kernel tiers and thread counts, the out-of-range functional fallback, and
// the reader's error paths. The format is load-bearing for the zero-copy
// claim -- the mapped payload must be byte-identical to the in-core label
// buffer -- so the round-trip tests compare entire label vectors, not
// counts.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine_options.hpp"
#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"
#include "lcl/grid_lcl_d.hpp"
#include "lcl/label_planes.hpp"
#include "lcl/problems.hpp"
#include "lcl/stream_verify.hpp"
#include "lcl/verifier.hpp"

using namespace lclgrid;

namespace {

/// A uniquely named file under the test temp dir, unlinked on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    static int counter = 0;
    path_ = std::filesystem::path(::testing::TempDir()) /
            (stem + "-" + std::to_string(++counter) + ".lcllab");
  }
  ~TempFile() {
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Restores the bit-slice gate on scope exit.
class GateGuard {
 public:
  GateGuard() : saved_(bitslice::enabled()) {}
  ~GateGuard() { bitslice::setEnabled(saved_); }

 private:
  bool saved_;
};

std::vector<GridLcl> problemRegistry() {
  std::vector<GridLcl> registry;
  for (int k = 2; k <= 5; ++k) registry.push_back(problems::vertexColouring(k));
  registry.push_back(problems::maximalIndependentSet());
  registry.push_back(problems::independentSet());
  registry.push_back(problems::maximalMatching());
  registry.push_back(problems::edgeColouring(3));
  registry.push_back(problems::orientation({1, 3}));
  registry.push_back(problems::noHorizontalOnePair());
  registry.push_back(problems::weakColouring(3, 1));
  return registry;
}

std::vector<int> randomLabels(long long count, int range, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, range - 1);
  std::vector<int> labels(static_cast<std::size_t>(count));
  for (int& label : labels) label = dist(rng);
  return labels;
}

/// Writes a file whose header fields are given verbatim (no validation),
/// for the reader error-path tests.
void writeRawFile(const std::string& path, const unsigned char magic[8],
                  std::uint32_t sigma, std::uint32_t dims, std::uint32_t n,
                  std::uint32_t reserved, const std::vector<int>& labels) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(reinterpret_cast<const char*>(magic), 8);
  const auto put32 = [&](std::uint32_t value) {
    unsigned char bytes[4] = {static_cast<unsigned char>(value & 0xFF),
                              static_cast<unsigned char>((value >> 8) & 0xFF),
                              static_cast<unsigned char>((value >> 16) & 0xFF),
                              static_cast<unsigned char>((value >> 24) & 0xFF)};
    out.write(reinterpret_cast<const char*>(bytes), 4);
  };
  put32(sigma);
  put32(dims);
  put32(n);
  put32(reserved);
  for (int label : labels) put32(static_cast<std::uint32_t>(label));
  ASSERT_TRUE(out.good());
}

}  // namespace

TEST(StreamFormat, WriterReaderRoundTrip2D) {
  for (int n : {3, 16, 65}) {
    const std::vector<int> labels =
        randomLabels(static_cast<long long>(n) * n, 4,
                     static_cast<std::uint32_t>(n));
    TempFile file("roundtrip2d");
    writeLabellingFile(file.str(), 4, 2, n, labels);
    StreamLabelling mapped(file.str());
    EXPECT_EQ(mapped.sigma(), 4);
    EXPECT_EQ(mapped.dims(), 2);
    EXPECT_EQ(mapped.n(), n);
    EXPECT_EQ(mapped.size(), static_cast<long long>(n) * n);
    EXPECT_EQ(mapped.lines(), n);
    const std::vector<int> back(mapped.labels(),
                                mapped.labels() + mapped.size());
    EXPECT_EQ(back, labels) << "n=" << n;
  }
}

TEST(StreamFormat, WriterReaderRoundTripD) {
  for (int dims : {1, 3, 4}) {
    const int n = dims >= 4 ? 3 : 5;
    long long size = 1;
    for (int a = 0; a < dims; ++a) size *= n;
    const std::vector<int> labels =
        randomLabels(size, 3, static_cast<std::uint32_t>(dims * 100 + n));
    TempFile file("roundtripd");
    writeLabellingFile(file.str(), 3, dims, n, labels);
    StreamLabelling mapped(file.str());
    EXPECT_EQ(mapped.dims(), dims);
    EXPECT_EQ(mapped.size(), size);
    const std::vector<int> back(mapped.labels(),
                                mapped.labels() + mapped.size());
    EXPECT_EQ(back, labels) << "dims=" << dims;
  }
}

TEST(StreamFormat, IncrementalWriterMatchesOneShot) {
  const int n = 33;
  const std::vector<int> labels =
      randomLabels(static_cast<long long>(n) * n, 5, 909u);
  TempFile oneShot("oneshot");
  writeLabellingFile(oneShot.str(), 5, 2, n, labels);
  TempFile rowByRow("rowbyrow");
  {
    StreamLabellingWriter writer(rowByRow.str(), 5, 2, n);
    for (int y = 0; y < n; ++y) {
      writer.appendLabels(std::span<const int>(labels).subspan(
          static_cast<std::size_t>(y) * n, static_cast<std::size_t>(n)));
    }
    EXPECT_EQ(writer.written(), static_cast<long long>(n) * n);
    writer.close();
  }
  std::ifstream a(oneShot.str(), std::ios::binary);
  std::ifstream b(rowByRow.str(), std::ios::binary);
  const std::string bytesA((std::istreambuf_iterator<char>(a)),
                           std::istreambuf_iterator<char>());
  const std::string bytesB((std::istreambuf_iterator<char>(b)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(bytesA, bytesB);
}

TEST(StreamFormat, WriterCloseRejectsShortPayload) {
  TempFile file("short");
  StreamLabellingWriter writer(file.str(), 3, 2, 4);
  const std::vector<int> oneRow = {0, 1, 2, 0};
  writer.appendLabels(oneRow);
  EXPECT_THROW(writer.close(), std::runtime_error);
}

TEST(StreamFormat, ReaderRejectsBadMagic) {
  const unsigned char wrong[8] = {'L', 'C', 'L', 'L', 'A', 'B', 'v', '9'};
  TempFile file("badmagic");
  writeRawFile(file.str(), wrong, 3, 2, 2, 0, {0, 1, 2, 0});
  EXPECT_THROW(StreamLabelling{file.str()}, std::runtime_error);
}

TEST(StreamFormat, ReaderRejectsTruncatedHeader) {
  TempFile file("shorthdr");
  std::ofstream out(file.str(), std::ios::binary);
  out.write("LCLLABv1\x03\x00", 10);
  out.close();
  EXPECT_THROW(StreamLabelling{file.str()}, std::runtime_error);
}

TEST(StreamFormat, ReaderRejectsTruncatedPayload) {
  const int n = 8;
  const std::vector<int> labels =
      randomLabels(static_cast<long long>(n) * n, 3, 5u);
  TempFile file("shortpay");
  writeLabellingFile(file.str(), 3, 2, n, labels);
  std::filesystem::resize_file(
      file.str(), stream_format::kHeaderBytes +
                      4 * (static_cast<std::uintmax_t>(n) * n - 1));
  EXPECT_THROW(StreamLabelling{file.str()}, std::runtime_error);
}

TEST(StreamFormat, ReaderRejectsTrailingBytes) {
  const int n = 4;
  const std::vector<int> labels(static_cast<std::size_t>(n) * n, 0);
  TempFile file("trailing");
  writeLabellingFile(file.str(), 3, 2, n, labels);
  std::ofstream out(file.str(), std::ios::binary | std::ios::app);
  out.write("x", 1);
  out.close();
  EXPECT_THROW(StreamLabelling{file.str()}, std::runtime_error);
}

TEST(StreamFormat, ReaderRejectsBadHeaderFields) {
  const unsigned char magic[8] = {'L', 'C', 'L', 'L', 'A', 'B', 'v', '1'};
  {
    TempFile file("zerosigma");
    writeRawFile(file.str(), magic, 0, 2, 2, 0, {0, 0, 0, 0});
    EXPECT_THROW(StreamLabelling{file.str()}, std::runtime_error);
  }
  {
    TempFile file("zerodims");
    writeRawFile(file.str(), magic, 3, 0, 2, 0, {0});
    EXPECT_THROW(StreamLabelling{file.str()}, std::runtime_error);
  }
  {
    TempFile file("reserved");
    writeRawFile(file.str(), magic, 3, 2, 2, 7, {0, 0, 0, 0});
    EXPECT_THROW(StreamLabelling{file.str()}, std::runtime_error);
  }
  {
    TempFile file("missing");
    EXPECT_THROW(StreamLabelling{file.str()}, std::runtime_error);
  }
}

TEST(StreamVerify, MismatchedProblemThrows) {
  const int n = 4;
  const std::vector<int> labels(static_cast<std::size_t>(n) * n, 0);
  TempFile file("mismatch");
  writeLabellingFile(file.str(), 3, 2, n, labels);
  StreamLabelling mapped(file.str());
  // sigma mismatch (2D): vertexColouring(4) has sigma 4, the file says 3.
  EXPECT_THROW(streamCountViolations(mapped, problems::vertexColouring(4)),
               std::invalid_argument);
  // dims mismatch (D): the file is 2-dimensional.
  EXPECT_THROW(
      streamCountViolations(mapped, problems_d::vertexColouring(3, 3)),
      std::invalid_argument);
  // sigma mismatch (D).
  EXPECT_THROW(
      streamCountViolations(mapped, problems_d::vertexColouring(2, 4)),
      std::invalid_argument);
  // 1-dimensional file through the 2D entry point.
  TempFile file1d("mismatch1d");
  writeLabellingFile(file1d.str(), 3, 1, n, std::vector<int>(n, 0));
  StreamLabelling mapped1d(file1d.str());
  EXPECT_THROW(streamCountViolations(mapped1d, problems::vertexColouring(3)),
               std::invalid_argument);
}

TEST(StreamVerify, MatchesInCoreOverRegistry2D) {
  GateGuard guard;
  // Sides straddling the word boundary plus a wrap-heavy small one; window
  // geometries down to one row per slab stress the rolling wrap stash.
  for (int n : {5, 64, 65}) {
    Torus2D torus(n);
    for (const GridLcl& lcl : problemRegistry()) {
      const std::vector<int> labels = randomLabels(
          torus.size(), lcl.sigma(), 41u + static_cast<std::uint32_t>(n));
      const std::int64_t reference = countViolations(torus, lcl, labels);
      const bool feasible = verify(torus, lcl, labels);
      TempFile file("registry2d");
      writeLabellingFile(file.str(), lcl.sigma(), 2, n, labels);
      StreamLabelling mapped(file.str());
      for (long long rows : {1LL, 2LL, 3LL, 0LL}) {
        const StreamWindow window{.rows = rows};
        ASSERT_EQ(streamCountViolations(mapped, lcl, window), reference)
            << lcl.name() << " n=" << n << " rows=" << rows;
        ASSERT_EQ(streamVerify(mapped, lcl, window), feasible)
            << lcl.name() << " n=" << n << " rows=" << rows;
      }
    }
  }
}

TEST(StreamVerify, MatchesInCoreWithBitsliceOnAndOff) {
  GateGuard guard;
  const int n = 65;
  Torus2D torus(n);
  const GridLcl lcl = problems::vertexColouring(4);
  const std::vector<int> labels = randomLabels(torus.size(), lcl.sigma(), 77u);
  TempFile file("tiers");
  writeLabellingFile(file.str(), lcl.sigma(), 2, n, labels);
  StreamLabelling mapped(file.str());
  bitslice::setEnabled(false);
  const std::int64_t viaTable = streamCountViolations(mapped, lcl);
  EXPECT_FALSE(stream_verify_detail::streamUsesBitslice(mapped, lcl));
  const std::int64_t reference = countViolations(torus, lcl, labels);
  bitslice::setEnabled(true);
  EXPECT_TRUE(stream_verify_detail::streamUsesBitslice(mapped, lcl));
  EXPECT_EQ(viaTable, reference);
  EXPECT_EQ(streamCountViolations(mapped, lcl), reference);
}

TEST(StreamVerify, ThreadedCountsAreBitIdentical2D) {
  GateGuard guard;
  const int n = 65;
  Torus2D torus(n);
  for (const GridLcl& lcl : problemRegistry()) {
    const std::vector<int> labels =
        randomLabels(torus.size(), lcl.sigma(), 271u);
    const std::int64_t reference = countViolations(torus, lcl, labels);
    const bool feasible = verify(torus, lcl, labels);
    TempFile file("threads2d");
    writeLabellingFile(file.str(), lcl.sigma(), 2, n, labels);
    StreamLabelling mapped(file.str());
    for (int threads : {1, 2, 8}) {
      engine::EngineOptions options{.threads = threads};
      ASSERT_EQ(streamCountViolations(mapped, lcl, options), reference)
          << lcl.name() << " threads=" << threads;
      ASSERT_EQ(streamVerify(mapped, lcl, options), feasible)
          << lcl.name() << " threads=" << threads;
    }
  }
}

TEST(StreamVerifyD, MatchesInCoreOnTorusD) {
  GateGuard guard;
  for (int dims : {1, 2, 3}) {
    std::vector<GridLclD> registry;
    registry.push_back(problems_d::vertexColouring(dims, 4));
    registry.push_back(problems_d::xorParity(dims));
    registry.push_back(problems_d::monotoneAxis(dims, 0, 3));
    for (int side : {4, 9}) {
      TorusD torus(dims, side);
      for (const GridLclD& lcl : registry) {
        const std::vector<int> labels = randomLabels(
            torus.size(), lcl.sigma(),
            static_cast<std::uint32_t>(dims * 1000 + side));
        const std::int64_t reference = countViolations(torus, lcl, labels);
        const bool feasible = verify(torus, lcl, labels);
        TempFile file("registryd");
        writeLabellingFile(file.str(), lcl.sigma(), dims, side, labels);
        StreamLabelling mapped(file.str());
        for (long long rows : {1LL, 3LL, 0LL}) {
          const StreamWindow window{.rows = rows};
          ASSERT_EQ(streamCountViolations(mapped, lcl, window), reference)
              << lcl.name() << " dims=" << dims << " side=" << side
              << " rows=" << rows;
          ASSERT_EQ(streamVerify(mapped, lcl, window), feasible)
              << lcl.name() << " dims=" << dims << " side=" << side
              << " rows=" << rows;
        }
        for (int threads : {2, 8}) {
          engine::EngineOptions options{.threads = threads};
          ASSERT_EQ(streamCountViolations(mapped, lcl, options), reference)
              << lcl.name() << " dims=" << dims << " side=" << side
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(StreamVerify, OutOfRangeLabelFallsBackToFunctionalTier) {
  GateGuard guard;
  bitslice::setEnabled(true);
  const int n = 33;
  Torus2D torus(n);
  const GridLcl lcl = problems::vertexColouring(3);
  std::vector<int> labels = randomLabels(torus.size(), lcl.sigma(), 11u);
  // A label at sigma poisons the table path; the streaming pass must
  // restart on the functional tier and agree with the in-core engine --
  // including when the bad label sits in the wrap stash (row 0) or the
  // final slab.
  for (const int victim :
       {0, n / 2, torus.size() / 2, torus.size() - 1}) {
    std::vector<int> poisoned = labels;
    poisoned[static_cast<std::size_t>(victim)] = lcl.sigma();
    const std::int64_t reference = countViolations(torus, lcl, poisoned);
    const bool feasible = verify(torus, lcl, poisoned);
    TempFile file("fallback");
    writeLabellingFile(file.str(), lcl.sigma(), 2, n, poisoned);
    StreamLabelling mapped(file.str());
    for (long long rows : {1LL, 4LL, 0LL}) {
      const StreamWindow window{.rows = rows};
      ASSERT_EQ(streamCountViolations(mapped, lcl, window), reference)
          << "victim=" << victim << " rows=" << rows;
      ASSERT_EQ(streamVerify(mapped, lcl, window), feasible)
          << "victim=" << victim << " rows=" << rows;
    }
    engine::EngineOptions options{.threads = 4};
    ASSERT_EQ(streamCountViolations(mapped, lcl, options), reference)
        << "victim=" << victim << " threaded";
  }
}

TEST(StreamVerify, DropBehindOffMatchesDropBehindOn) {
  const int n = 65;
  Torus2D torus(n);
  const GridLcl lcl = problems::maximalIndependentSet();
  const std::vector<int> labels = randomLabels(torus.size(), lcl.sigma(), 3u);
  TempFile file("dropoff");
  writeLabellingFile(file.str(), lcl.sigma(), 2, n, labels);
  StreamLabelling mapped(file.str());
  const StreamWindow keep{.rows = 2, .dropBehind = false};
  const StreamWindow drop{.rows = 2, .dropBehind = true};
  EXPECT_EQ(streamCountViolations(mapped, lcl, keep),
            streamCountViolations(mapped, lcl, drop));
}

TEST(StreamVerifyDetail, WindowGeometry) {
  using stream_verify_detail::resolveWindowRows;
  using stream_verify_detail::wrapWindowRows;
  // Explicit requests clamp to [1, lines]; the default targets ~8 MiB.
  EXPECT_EQ(resolveWindowRows(10, 100, 7), 7);
  EXPECT_EQ(resolveWindowRows(10, 100, 1000), 100);
  EXPECT_EQ(resolveWindowRows(10, 100, 0), 100);  // tiny rows: whole file
  const long long bigSide = 1 << 20;  // 4 MiB per row -> 2 rows per slab
  EXPECT_EQ(resolveWindowRows(static_cast<int>(bigSide), 1000, 0), 2);
  EXPECT_EQ(wrapWindowRows(1, 9), 1);
  EXPECT_EQ(wrapWindowRows(2, 9), 1);
  EXPECT_EQ(wrapWindowRows(3, 9), 9);
  EXPECT_EQ(wrapWindowRows(4, 9), 81);
}
