// The fault-injection framework (src/support/faultpoint) and the
// robustness machinery built on it: spec-grammar parsing, trigger
// semantics, the client's partial-I/O regression vectors, a fault matrix
// sweeping the registered service points at several service thread counts
// (every injected failure must yield a typed outcome -- never a hang, a
// crash, or a silently wrong answer), the streaming verifier's fault
// behaviour, fork-based crash-resume of the checkpointed streaming count
// at several distinct slab boundaries, queue-wait deadlines (kTimeout),
// graceful degradation under shed pressure, the retry/backoff client, and
// bounded-drain shutdown.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/thread_pool.hpp"
#include "lcl/problems.hpp"
#include "lcl/stream_verify.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"
#include "service/service.hpp"
#include "support/faultpoint.hpp"

using namespace lclgrid;
namespace fp = support::faultpoint;
using service::DisconnectError;
using service::RemoteError;
using service::RetryingClient;
using service::RetryPolicy;
using service::ServiceClient;
using service::ServiceConfig;
using service::TimeoutError;
using service::VerificationService;
namespace wire = service::wire;

namespace {

/// Every test that arms faults scopes them: leaking an armed point into
/// the next test would make the suite order-dependent.
struct FaultGuard {
  ~FaultGuard() { fp::disarmAll(); }
};

class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    static int counter = 0;
    path_ = std::filesystem::path(::testing::TempDir()) /
            (stem + "-" + std::to_string(++counter) + ".tmp");
  }
  ~TempFile() {
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
  std::string str() const { return path_.string(); }
  bool exists() const { return std::filesystem::exists(path_); }

 private:
  std::filesystem::path path_;
};

std::vector<int> properFourColouring(int n) {
  std::vector<int> labels(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      labels[static_cast<std::size_t>(y) * n + x] = 2 * (y % 2) + (x % 2);
    }
  }
  return labels;
}

service::VerifyRequestFrame verifyFrame(const std::string& spec, int n,
                                        std::span<const int> labels,
                                        bool count = true) {
  service::VerifyRequestFrame frame;
  frame.spec = spec;
  frame.countViolations = count;
  frame.n = static_cast<std::uint32_t>(n);
  frame.labels = labels;
  return frame;
}

ServiceConfig testConfig(int serviceThreads) {
  ServiceConfig config;
  config.serviceThreads = serviceThreads;
  config.enableTestOps = true;
  return config;
}

}  // namespace

// --- spec grammar -----------------------------------------------------------

TEST(FaultSpecGrammar, ParsesActionsAndTriggers) {
  std::string point;
  fp::FaultSpec spec = fp::parseEntry("svc.a:errno=EPIPE@nth=3", &point);
  EXPECT_EQ(point, "svc.a");
  EXPECT_EQ(spec.action, fp::Action::kErrno);
  EXPECT_EQ(spec.errnoValue, EPIPE);
  EXPECT_EQ(spec.nth, 3);

  spec = fp::parseEntry("svc.b:errno=104", &point);
  EXPECT_EQ(spec.errnoValue, 104);

  spec = fp::parseEntry("svc.c:short=7@once", &point);
  EXPECT_EQ(spec.action, fp::Action::kShort);
  EXPECT_EQ(spec.arg, 7);
  EXPECT_TRUE(spec.oneShot);

  spec = fp::parseEntry("svc.d:delay=25", &point);
  EXPECT_EQ(spec.action, fp::Action::kDelay);
  EXPECT_EQ(spec.arg, 25);

  spec = fp::parseEntry("svc.e:drop@p=0.25@seed=42", &point);
  EXPECT_EQ(spec.action, fp::Action::kDrop);
  EXPECT_DOUBLE_EQ(spec.probability, 0.25);
  EXPECT_EQ(spec.seed, 42u);

  spec = fp::parseEntry("svc.f:abort", &point);
  EXPECT_EQ(spec.action, fp::Action::kAbort);
}

TEST(FaultSpecGrammar, MalformedEntriesThrow) {
  std::string point;
  EXPECT_THROW(fp::parseEntry("noaction", &point), std::invalid_argument);
  EXPECT_THROW(fp::parseEntry("p:bogus", &point), std::invalid_argument);
  EXPECT_THROW(fp::parseEntry("p:errno", &point), std::invalid_argument);
  EXPECT_THROW(fp::parseEntry("p:errno=NOTANERRNO", &point),
               std::invalid_argument);
  EXPECT_THROW(fp::parseEntry("p:short=-1", &point), std::invalid_argument);
  EXPECT_THROW(fp::parseEntry("p:drop@p=1.5", &point), std::invalid_argument);
  EXPECT_THROW(fp::parseEntry("p:drop@nth=0", &point), std::invalid_argument);
  EXPECT_THROW(fp::parseEntry(":drop", &point), std::invalid_argument);
  EXPECT_THROW(fp::parseEntry("p:drop@mystery=1", &point),
               std::invalid_argument);
}

TEST(FaultSpecGrammar, SpecStringArmsEveryEntry) {
  FaultGuard guard;
  EXPECT_EQ(fp::armSpecString(
                "grammar.x:errno=EIO@once,grammar.y:delay=1@p=0.5@seed=9"),
            2);
  EXPECT_THROW(fp::armSpecString("grammar.x:errno=EIO,broken"),
               std::invalid_argument);
}

// --- trigger semantics ------------------------------------------------------

TEST(FaultTriggers, NthFiresExactlyOnceThenDisarms) {
  FaultGuard guard;
  fp::armEntry("trigger.nth:errno=EIO@nth=3");
  int fired = 0;
  for (int hit = 1; hit <= 6; ++hit) {
    const auto fault = FAULT_POINT("trigger.nth");
    if (fault) {
      ++fired;
      EXPECT_EQ(hit, 3);
      EXPECT_EQ(fault.errnoValue, EIO);
    }
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(fp::firedCount("trigger.nth"), 1);
  // The nth trigger disarmed the point: hits stop counting.
  EXPECT_EQ(fp::hitCount("trigger.nth"), 3);
}

TEST(FaultTriggers, OnceFiresOnFirstHit) {
  FaultGuard guard;
  fp::armEntry("trigger.once:drop@once");
  EXPECT_TRUE(static_cast<bool>(FAULT_POINT("trigger.once")));
  EXPECT_FALSE(static_cast<bool>(FAULT_POINT("trigger.once")));
  EXPECT_EQ(fp::firedCount("trigger.once"), 1);
}

TEST(FaultTriggers, ProbabilityIsSeededAndDeterministic) {
  FaultGuard guard;
  const auto run = [] {
    fp::armEntry("trigger.p:drop@p=0.5@seed=1234");
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(static_cast<bool>(FAULT_POINT("trigger.p")));
    }
    fp::disarm("trigger.p");
    return outcomes;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);  // same seed, same stream
  const long long fired = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 8);  // p=0.5 over 64 draws: wildly off means a broken RNG
  EXPECT_LT(fired, 56);
}

TEST(FaultTriggers, ReArmingResetsHitCounter) {
  FaultGuard guard;
  fp::armEntry("trigger.rearm:drop@nth=2");
  (void)FAULT_POINT("trigger.rearm");
  ASSERT_EQ(fp::hitCount("trigger.rearm"), 1);
  fp::armEntry("trigger.rearm:drop@nth=2");
  EXPECT_EQ(fp::hitCount("trigger.rearm"), 0);
}

// --- client partial-I/O regressions ----------------------------------------

TEST(ClientPartialIo, ShortWriteStillDeliversTheWholeFrame) {
  FaultGuard guard;
  VerificationService daemon(testConfig(1));
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  const int n = 6;
  const std::vector<int> labels = properFourColouring(n);

  // Clamp ONE send to 3 bytes mid-request: the client's send loop must
  // finish the frame, not truncate it (a truncated frame would desync the
  // stream and the daemon would kill the connection).
  fp::armEntry("client.send:short=3@once");
  const auto result = client.verify(verifyFrame("vc:4", n, labels));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->feasible);
  EXPECT_EQ(result->violations, 0);
  daemon.stop();
}

TEST(ClientPartialIo, ShortReadStillAssemblesTheWholeReply) {
  FaultGuard guard;
  VerificationService daemon(testConfig(1));
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  const int n = 6;
  const std::vector<int> labels = properFourColouring(n);

  fp::armEntry("client.recv:short=2@once");
  const auto result = client.verify(verifyFrame("vc:4", n, labels));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->feasible);
  daemon.stop();
}

TEST(ClientPartialIo, ServiceShortReadAndWriteAreAbsorbed) {
  FaultGuard guard;
  VerificationService daemon(testConfig(2));
  daemon.start();
  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  const int n = 6;
  const std::vector<int> labels = properFourColouring(n);

  fp::armEntry("service.read_request:short=4@once");
  auto result = client.verify(verifyFrame("vc:4", n, labels));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->feasible);

  fp::armEntry("service.write_response:short=8@once");
  result = client.verify(verifyFrame("vc:4", n, labels));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->feasible);
  daemon.stop();
}

// --- the fault matrix -------------------------------------------------------

TEST(FaultMatrix, EveryServicePointYieldsATypedOutcome) {
  // Entries paired with whether the daemon survives to serve the clean
  // follow-up on a FRESH connection (it must, for every entry).
  const std::vector<std::string> entries = {
      "service.accept:errno=ECONNRESET@once",
      "service.read_request:errno=ECONNRESET@once",
      "service.read_request:short=4@once",
      "service.dispatch:delay=2@once",
      "service.write_response:errno=EPIPE@once",
      "service.write_response:short=8@once",
      "service.write_response:drop@once",
      "client.connect:errno=ECONNREFUSED@once",
      "client.send:errno=EPIPE@once",
      "client.send:short=3@once",
      "client.recv:errno=ECONNRESET@once",
      "client.recv:errno=ETIMEDOUT@once",
      "client.recv:short=2@once",
  };
  const int n = 6;
  const std::vector<int> labels = properFourColouring(n);
  std::vector<int> broken = labels;
  broken[0] = broken[1];  // adjacent equal labels: known violation count
  service::VerifyRequestFrame reference = verifyFrame("vc:4", n, broken);

  for (const int serviceThreads : {1, 2, 8}) {
    VerificationService daemon(testConfig(serviceThreads));
    daemon.start();

    // The uninjected truth, once per daemon.
    std::int64_t expectedViolations;
    {
      ServiceClient probe = ServiceClient::connectTcp(daemon.port());
      const auto truth = probe.verify(reference);
      ASSERT_TRUE(truth.has_value());
      ASSERT_FALSE(truth->feasible);
      expectedViolations = truth->violations;
      ASSERT_GT(expectedViolations, 0);
    }

    for (const std::string& entry : entries) {
      FaultGuard guard;
      fp::armEntry(entry);
      // Injected pass: the outcome must be TYPED -- a real result, or one
      // of the client's exception types. The deadline bounds every stall,
      // so a hang fails the test as a TimeoutError instead of wedging.
      bool sawResult = false;
      try {
        ServiceClient client = ServiceClient::connectTcp(daemon.port());
        client.setDeadlineMs(2000);
        const auto result = client.verify(reference);
        if (result.has_value()) {
          // An answer that does arrive must be the RIGHT answer.
          EXPECT_EQ(result->violations, expectedViolations)
              << entry << " threads=" << serviceThreads;
          sawResult = true;
        }
      } catch (const TimeoutError&) {
      } catch (const DisconnectError&) {
      } catch (const RemoteError&) {
      } catch (const std::runtime_error&) {
        // connect()-level failures (client.connect, refused accepts).
      }
      fp::disarmAll();

      // Clean follow-up on a fresh connection: the daemon survived and
      // still answers correctly.
      ServiceClient after = ServiceClient::connectTcp(daemon.port());
      after.setDeadlineMs(2000);
      const auto clean = after.verify(reference);
      ASSERT_TRUE(clean.has_value())
          << entry << " threads=" << serviceThreads;
      EXPECT_EQ(clean->violations, expectedViolations)
          << entry << " threads=" << serviceThreads;
      // Benign injections (delay, short) should not even cost the result.
      if (entry.find(":delay") != std::string::npos ||
          entry.find(":short") != std::string::npos) {
        EXPECT_TRUE(sawResult) << entry << " threads=" << serviceThreads;
      }
    }
    daemon.stop();
  }
}

// --- streaming verifier faults ----------------------------------------------

TEST(StreamFaults, MmapOpenFailureThrowsTyped) {
  FaultGuard guard;
  TempFile file("faults-mmap");
  writeLabellingFile(file.str(), 4, 2, 6, properFourColouring(6));
  fp::armEntry("mmap.open:errno=EIO@once");
  EXPECT_THROW(StreamLabelling{file.str()}, std::runtime_error);
  // Disarmed after firing: the same open now succeeds.
  StreamLabelling mapped(file.str());
  EXPECT_EQ(mapped.n(), 6);
}

TEST(StreamFaults, WriterAppendFailureThrowsTyped) {
  FaultGuard guard;
  TempFile file("faults-writer");
  StreamLabellingWriter writer(file.str(), 4, 2, 6);
  fp::armEntry("stream.writer_append:errno=ENOSPC@once");
  const std::vector<int> row(6, 0);
  EXPECT_THROW(writer.appendLabels(row), std::runtime_error);
}

TEST(StreamFaults, CheckpointWriteFailureDegradesToNoCheckpoint) {
  FaultGuard guard;
  const int n = 8;
  std::vector<int> labels = properFourColouring(n);
  labels[3] = labels[4];
  TempFile file("faults-ckpt-degrade");
  writeLabellingFile(file.str(), 4, 2, n, labels);
  StreamLabelling mapped(file.str());
  const GridLcl lcl = problems::vertexColouring(4);
  const std::int64_t reference = streamCountViolations(mapped, lcl);

  TempFile checkpoint("faults-ckpt-degrade-ckpt");
  StreamWindow window;
  window.rows = 2;
  window.checkpointPath = checkpoint.str();
  fp::armEntry("stream.checkpoint_write:errno=EIO");  // every attempt fails
  // The count must still be exact -- a checkpoint is an optimisation, its
  // failure must never fail (or skew) verification.
  EXPECT_EQ(streamCountViolations(mapped, lcl, window), reference);
  EXPECT_FALSE(checkpoint.exists());
}

TEST(StreamCheckpoint, RoundTripAndCorruptionRejection) {
  TempFile path("faults-ckpt-roundtrip");
  StreamCheckpoint checkpoint;
  checkpoint.functionalPhase = true;
  checkpoint.labellingFingerprint = 0x1122334455667788ull;
  checkpoint.problemFingerprint = 0x99aabbccddeeff00ull;
  checkpoint.nextRow = 12;
  checkpoint.frontier = 0;
  checkpoint.total = 345;
  ASSERT_TRUE(writeStreamCheckpoint(path.str(), checkpoint));
  const auto loaded = loadStreamCheckpoint(path.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->functionalPhase, checkpoint.functionalPhase);
  EXPECT_EQ(loaded->labellingFingerprint, checkpoint.labellingFingerprint);
  EXPECT_EQ(loaded->problemFingerprint, checkpoint.problemFingerprint);
  EXPECT_EQ(loaded->nextRow, checkpoint.nextRow);
  EXPECT_EQ(loaded->total, checkpoint.total);

  // One flipped byte must fail the checksum.
  {
    std::FILE* f = std::fopen(path.str().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    std::fputc(0x5a, f);
    std::fclose(f);
  }
  EXPECT_FALSE(loadStreamCheckpoint(path.str()).has_value());
  EXPECT_FALSE(loadStreamCheckpoint(path.str() + ".missing").has_value());
}

// --- fork-based crash-resume ------------------------------------------------

TEST(StreamCrashResume, BitIdenticalAcrossAbortAtSlabBoundaries) {
  const int n = 12;  // 12 rows of 12; rows=2 slabs -> 6 slab boundaries
  std::vector<int> labels = properFourColouring(n);
  // Scatter violations so partial sums differ per slab.
  labels[5] = labels[6];
  labels[40] = labels[41];
  labels[100] = labels[101];
  TempFile file("faults-resume");
  writeLabellingFile(file.str(), 4, 2, n, labels);
  const GridLcl lcl = problems::vertexColouring(4);

  std::int64_t reference;
  {
    StreamLabelling mapped(file.str());
    reference = streamCountViolations(mapped, lcl);
    ASSERT_GT(reference, 0);
  }

  // Kill the pass immediately after its 1st, 2nd and 4th durable
  // checkpoint write -- three DISTINCT slab boundaries -- then resume.
  for (const int killAfter : {1, 2, 4}) {
    TempFile checkpoint("faults-resume-ckpt");
    StreamWindow window;
    window.rows = 2;
    window.checkpointPath = checkpoint.str();

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // In the child: abort right after the killAfter-th checkpoint is
      // durable (the stream.checkpoint point fires AFTER the rename).
      fp::armEntry("stream.checkpoint:abort@nth=" +
                   std::to_string(killAfter));
      try {
        StreamLabelling mapped(file.str());
        (void)streamCountViolations(mapped, lcl, window);
      } catch (...) {
      }
      _exit(0);  // reached only if the abort never fired
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT)
        << "killAfter=" << killAfter
        << ": the child finished without crashing";
    ASSERT_TRUE(checkpoint.exists()) << "killAfter=" << killAfter;

    // The resumed pass picks the cursor up mid-file and lands on the
    // EXACT uninterrupted count.
    StreamLabelling mapped(file.str());
    EXPECT_EQ(streamCountViolations(mapped, lcl, window), reference)
        << "killAfter=" << killAfter;
    // Completion removes the sidecar.
    EXPECT_FALSE(checkpoint.exists()) << "killAfter=" << killAfter;
  }
}

TEST(StreamCrashResume, StaleFingerprintRestartsFromScratch) {
  const int n = 8;
  std::vector<int> labels = properFourColouring(n);
  labels[9] = labels[10];
  TempFile file("faults-stale");
  writeLabellingFile(file.str(), 4, 2, n, labels);
  const GridLcl lcl = problems::vertexColouring(4);
  StreamLabelling mapped(file.str());
  const std::int64_t reference = streamCountViolations(mapped, lcl);

  // A checkpoint from "some other file": the fingerprints cannot match,
  // so the pass must ignore it and still produce the exact count.
  TempFile checkpoint("faults-stale-ckpt");
  StreamCheckpoint stale;
  stale.labellingFingerprint = 0xdeadbeef;
  stale.problemFingerprint = 0xfeedface;
  stale.nextRow = 4;
  stale.frontier = 4;
  stale.total = 9999;
  ASSERT_TRUE(writeStreamCheckpoint(checkpoint.str(), stale));

  StreamWindow window;
  window.rows = 2;
  window.checkpointPath = checkpoint.str();
  EXPECT_EQ(streamCountViolations(mapped, lcl, window), reference);
  EXPECT_FALSE(checkpoint.exists());
}

// --- deadlines and kTimeout -------------------------------------------------

TEST(ServiceDeadline, ExpiredQueueWaitAnswersTimeout) {
  ServiceConfig config = testConfig(1);
  config.requestDeadlineMs = 50;
  VerificationService daemon(config);
  daemon.start();

  // Occupy the single worker, then queue a ping that will out-wait its
  // deadline. Raw frames: a blocking call() would serialise the client.
  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  std::vector<std::uint8_t> sleepPayload;
  wire::appendU32(sleepPayload, 300);
  client.sendFrame(wire::FrameType::kSleep, 1, sleepPayload);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client.sendFrame(wire::FrameType::kPing, 2, {});

  const auto first = client.receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, wire::FrameType::kPong);
  EXPECT_EQ(first->requestId, 1u);
  const auto second = client.receive();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, wire::FrameType::kTimeout);
  EXPECT_EQ(second->requestId, 2u);
  EXPECT_GE(daemon.counters().timeouts, 1);
  daemon.stop();
}

TEST(ServiceDeadline, ClientSurfacesKTimeoutAsTimeoutError) {
  ServiceConfig config = testConfig(1);
  config.requestDeadlineMs = 30;
  VerificationService daemon(config);
  daemon.start();

  ServiceClient blocker = ServiceClient::connectTcp(daemon.port());
  std::vector<std::uint8_t> sleepPayload;
  wire::appendU32(sleepPayload, 250);
  blocker.sendFrame(wire::FrameType::kSleep, 1, sleepPayload);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  ServiceClient verifier = ServiceClient::connectTcp(daemon.port());
  const std::vector<int> labels = properFourColouring(6);
  EXPECT_THROW(verifier.verify(verifyFrame("vc:4", 6, labels)), TimeoutError);
  // A daemon-side kTimeout leaves the stream framed: the SAME connection
  // works again once the worker frees up.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto after = verifier.verify(verifyFrame("vc:4", 6, labels));
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->feasible);
  daemon.stop();
}

// --- graceful degradation ---------------------------------------------------

TEST(ServiceDegradation, ShedDowngradesOptedInCountsToVerify) {
  ServiceConfig config = testConfig(1);
  config.shedQueueDepth = 1;  // shed as soon as anything queues
  VerificationService daemon(config);
  daemon.start();

  const int n = 6;
  std::vector<int> broken = properFourColouring(n);
  broken[0] = broken[1];
  service::VerifyRequestFrame frame = verifyFrame("vc:4", n, broken);
  frame.allowDegrade = true;

  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  std::vector<std::uint8_t> sleepPayload;
  wire::appendU32(sleepPayload, 200);
  client.sendFrame(wire::FrameType::kSleep, 1, sleepPayload);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Two queued requests keep the depth at the threshold when the first
  // verify dispatches, so it sees shed pressure.
  const std::vector<std::uint8_t> payload =
      service::encodeVerifyRequest(frame);
  client.sendFrame(wire::FrameType::kVerify, 2, payload);
  client.sendFrame(wire::FrameType::kVerify, 3, payload);

  ASSERT_TRUE(client.receive().has_value());  // pong for the sleep
  const auto first = client.receive();
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->type, wire::FrameType::kVerifyResult);
  const auto result = service::decodeVerifyResult(first->payload);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.feasible);  // the downgrade keeps the verdict exact
  ASSERT_TRUE(client.receive().has_value());
  EXPECT_GE(daemon.counters().shedDowngrades, 1);
  daemon.stop();
}

TEST(ServiceDegradation, NoDegradeWithoutOptInOrWhenDisabled) {
  for (const bool shedEnabled : {true, false}) {
    ServiceConfig config = testConfig(1);
    config.shedQueueDepth = 1;
    config.shedEnabled = shedEnabled;
    VerificationService daemon(config);
    daemon.start();

    const int n = 6;
    std::vector<int> broken = properFourColouring(n);
    broken[0] = broken[1];
    service::VerifyRequestFrame frame = verifyFrame("vc:4", n, broken);
    frame.allowDegrade = !shedEnabled;  // opted in, but shedding is off

    ServiceClient client = ServiceClient::connectTcp(daemon.port());
    std::vector<std::uint8_t> sleepPayload;
    wire::appendU32(sleepPayload, 150);
    client.sendFrame(wire::FrameType::kSleep, 1, sleepPayload);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::vector<std::uint8_t> payload =
        service::encodeVerifyRequest(frame);
    client.sendFrame(wire::FrameType::kVerify, 2, payload);
    client.sendFrame(wire::FrameType::kVerify, 3, payload);

    ASSERT_TRUE(client.receive().has_value());
    const auto reply = client.receive();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, wire::FrameType::kVerifyResult);
    const auto result = service::decodeVerifyResult(reply->payload);
    EXPECT_FALSE(result.degraded);
    EXPECT_GT(result.violations, 0);  // the exact count survived
    ASSERT_TRUE(client.receive().has_value());
    daemon.stop();
  }
}

// --- retry / backoff --------------------------------------------------------

TEST(Retry, BackoffScheduleIsSeededBoundedAndDecorrelated) {
  VerificationService daemon(testConfig(1));
  daemon.start();
  RetryPolicy policy;
  policy.baseDelayMs = 2;
  policy.maxDelayMs = 50;
  policy.jitterSeed = 77;
  RetryingClient a(ServiceClient::connectTcp(daemon.port()), policy);
  RetryingClient b(ServiceClient::connectTcp(daemon.port()), policy);
  std::vector<int> draws;
  for (int i = 0; i < 16; ++i) {
    const int sleepA = a.drawBackoffMs();
    EXPECT_EQ(sleepA, b.drawBackoffMs());  // same seed, same schedule
    EXPECT_GE(sleepA, policy.baseDelayMs);
    EXPECT_LE(sleepA, policy.maxDelayMs);
    draws.push_back(sleepA);
  }
  // Decorrelated jitter is not a deterministic doubling ladder.
  EXPECT_GT(std::set<int>(draws.begin(), draws.end()).size(), 3u);
  daemon.stop();
}

TEST(Retry, ReconnectsAndSucceedsAfterInjectedDisconnect) {
  FaultGuard guard;
  VerificationService daemon(testConfig(2));
  daemon.start();
  RetryPolicy policy;
  policy.baseDelayMs = 1;
  policy.maxDelayMs = 5;
  RetryingClient client(ServiceClient::connectTcp(daemon.port()), policy);

  const int n = 6;
  const std::vector<int> labels = properFourColouring(n);
  fp::armEntry("client.recv:errno=ECONNRESET@once");
  const auto result = client.verify(verifyFrame("vc:4", n, labels));
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(client.retryStats().disconnects, 1);
  EXPECT_EQ(client.retryStats().reconnects, 1);
  EXPECT_GE(client.retryStats().attempts, 2);
  daemon.stop();
}

TEST(Retry, ClientDeadlineExpiryRetriesThroughReconnect) {
  FaultGuard guard;
  VerificationService daemon(testConfig(2));
  daemon.start();
  RetryPolicy policy;
  policy.baseDelayMs = 1;
  policy.maxDelayMs = 5;
  ServiceClient raw = ServiceClient::connectTcp(daemon.port());
  raw.setDeadlineMs(1000);
  RetryingClient client(std::move(raw), policy);

  // ETIMEDOUT from recv is exactly what a tripped SO_RCVTIMEO looks like:
  // the client must close (stream desynchronised) and the retry must
  // reconnect before the next attempt.
  fp::armEntry("client.recv:errno=ETIMEDOUT@once");
  const auto result =
      client.verify(verifyFrame("vc:4", 6, properFourColouring(6)));
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(client.retryStats().timeouts, 1);
  EXPECT_EQ(client.retryStats().reconnects, 1);
  daemon.stop();
}

TEST(Retry, ExhaustionRethrowsTheTypedFailure) {
  FaultGuard guard;
  VerificationService daemon(testConfig(1));
  daemon.start();
  RetryPolicy policy;
  policy.maxAttempts = 3;
  policy.baseDelayMs = 0;
  policy.maxDelayMs = 1;
  RetryingClient client(ServiceClient::connectTcp(daemon.port()), policy);

  fp::armEntry("client.recv:errno=ECONNRESET");  // every attempt dies
  EXPECT_THROW(
      client.verify(verifyFrame("vc:4", 6, properFourColouring(6))),
      DisconnectError);
  EXPECT_EQ(client.retryStats().attempts, 3);
  daemon.stop();
}

TEST(Retry, DaemonErrorsNeverRetry) {
  VerificationService daemon(testConfig(1));
  daemon.start();
  RetryPolicy policy;
  RetryingClient client(ServiceClient::connectTcp(daemon.port()), policy);
  service::VerifyRequestFrame bad =
      verifyFrame("no-such-problem", 6, properFourColouring(6));
  EXPECT_THROW(client.verify(bad), RemoteError);
  EXPECT_EQ(client.retryStats().attempts, 1);  // one try, no retry storm
  daemon.stop();
}

// --- bounded-drain shutdown -------------------------------------------------

TEST(ServiceDrain, QueuedRemainderAnswersTimeoutNotSilence) {
  ServiceConfig config = testConfig(1);
  config.drainTimeoutMs = 0;  // cancel the queue immediately on stop()
  VerificationService daemon(config);
  daemon.start();

  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  std::vector<std::uint8_t> sleepPayload;
  wire::appendU32(sleepPayload, 200);
  client.sendFrame(wire::FrameType::kSleep, 1, sleepPayload);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client.sendFrame(wire::FrameType::kPing, 2, {});
  client.sendFrame(wire::FrameType::kPing, 3, {});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::thread stopper([&daemon] { daemon.stop(); });
  // The executing sleep completes (never preempted); the queued pings are
  // answered kTimeout -- typed, not dropped, not executed.
  const auto first = client.receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, wire::FrameType::kPong);
  const auto second = client.receive();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, wire::FrameType::kTimeout);
  const auto third = client.receive();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->type, wire::FrameType::kTimeout);
  stopper.join();
  EXPECT_EQ(daemon.counters().timeouts, 2);
}

TEST(ServiceDrain, DrainWindowLetsQueuedWorkFinish) {
  ServiceConfig config = testConfig(1);
  config.drainTimeoutMs = 2000;
  VerificationService daemon(config);
  daemon.start();

  ServiceClient client = ServiceClient::connectTcp(daemon.port());
  std::vector<std::uint8_t> sleepPayload;
  wire::appendU32(sleepPayload, 50);
  client.sendFrame(wire::FrameType::kSleep, 1, sleepPayload);
  client.sendFrame(wire::FrameType::kPing, 2, {});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  std::thread stopper([&daemon] { daemon.stop(); });
  const auto first = client.receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, wire::FrameType::kPong);
  const auto second = client.receive();
  ASSERT_TRUE(second.has_value());
  // Inside the drain window the queued ping executes normally.
  EXPECT_EQ(second->type, wire::FrameType::kPong);
  stopper.join();
  EXPECT_EQ(daemon.counters().timeouts, 0);
}

// --- registry coverage ------------------------------------------------------

TEST(FaultRegistry, EveryHardenedPointIsRegistered) {
  // Drive each instrumented subsystem once so the lazy function-local
  // registrations have all run, then assert the registry knows the full
  // set docs/robustness.md documents.
  {
    VerificationService daemon(testConfig(1));
    daemon.start();
    ServiceClient client = ServiceClient::connectTcp(daemon.port());
    (void)client.ping();
    (void)client.verify(verifyFrame("vc:4", 6, properFourColouring(6)));
    daemon.stop();
  }
  {
    TempFile file("faults-registry");
    writeLabellingFile(file.str(), 4, 2, 6, properFourColouring(6));
    StreamLabelling mapped(file.str());
    TempFile checkpoint("faults-registry-ckpt");
    StreamWindow window;
    window.rows = 2;
    window.checkpointPath = checkpoint.str();
    (void)streamCountViolations(mapped, problems::vertexColouring(4),
                                window);
  }
  {
    // submit() routes through the worker's loop (parallelFor's helping
    // loop could consume every chunk on the caller thread and skip the
    // worker-side probe site).
    engine::ThreadPool pool(2);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran.store(true); });
    for (int spin = 0; spin < 2000 && !ran.load(); ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(ran.load());
  }

  std::vector<std::string> names;
  for (const auto& point : fp::registeredPoints()) {
    names.push_back(point.name);
  }
  for (const char* expected :
       {"client.connect", "client.recv", "client.send", "mmap.open",
        "pool.task", "service.accept", "service.dispatch",
        "service.read_request", "service.write_response", "stream.checkpoint",
        "stream.checkpoint_write", "stream.slab", "stream.writer_append"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing fault point: " << expected;
  }
}
