#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "grid/bounded_grid.hpp"
#include "grid/direction.hpp"
#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"

namespace lclgrid {
namespace {

TEST(Direction, OppositesAndOffsets) {
  EXPECT_EQ(opposite(Dir::North), Dir::South);
  EXPECT_EQ(opposite(Dir::East), Dir::West);
  for (Dir d : kAllDirs) {
    EXPECT_EQ(dxOf(d) + dxOf(opposite(d)), 0);
    EXPECT_EQ(dyOf(d) + dyOf(opposite(d)), 0);
  }
}

TEST(Torus2D, IdAndCoordinatesRoundTrip) {
  Torus2D torus(5);
  for (int v = 0; v < torus.size(); ++v) {
    auto [x, y] = torus.xy(v);
    EXPECT_EQ(torus.id(x, y), v);
  }
}

TEST(Torus2D, WrapsCoordinates) {
  Torus2D torus(4);
  EXPECT_EQ(torus.id(-1, 0), torus.id(3, 0));
  EXPECT_EQ(torus.id(0, -1), torus.id(0, 3));
  EXPECT_EQ(torus.id(4, 5), torus.id(0, 1));
}

TEST(Torus2D, StepsAreInverses) {
  Torus2D torus(7);
  for (int v = 0; v < torus.size(); ++v) {
    for (Dir d : kAllDirs) {
      EXPECT_EQ(torus.step(torus.step(v, d), opposite(d)), v);
    }
  }
}

TEST(Torus2D, StepMatchesOrientation) {
  Torus2D torus(6);
  int v = torus.id(2, 3);
  EXPECT_EQ(torus.step(v, Dir::North), torus.id(2, 4));
  EXPECT_EQ(torus.step(v, Dir::East), torus.id(3, 3));
  EXPECT_EQ(torus.step(v, Dir::South), torus.id(2, 2));
  EXPECT_EQ(torus.step(v, Dir::West), torus.id(1, 3));
}

TEST(Torus2D, DistancesWrapAround) {
  Torus2D torus(10);
  EXPECT_EQ(torus.l1(torus.id(0, 0), torus.id(9, 0)), 1);
  EXPECT_EQ(torus.l1(torus.id(0, 0), torus.id(5, 5)), 10);
  EXPECT_EQ(torus.linf(torus.id(0, 0), torus.id(9, 9)), 1);
  EXPECT_EQ(torus.linf(torus.id(0, 0), torus.id(4, 2)), 4);
}

TEST(Torus2D, L1BallSizesMatchFormula) {
  Torus2D torus(31);  // large enough that balls do not wrap
  int v = torus.id(15, 15);
  for (int r = 0; r <= 5; ++r) {
    auto ball = torus.l1Ball(v, r);
    // |B_1(r)| = 2r^2 + 2r + 1 on the 2-dimensional grid.
    EXPECT_EQ(static_cast<int>(ball.size()), 2 * r * r + 2 * r + 1) << r;
    for (int u : ball) EXPECT_LE(torus.l1(v, u), r);
  }
}

TEST(Torus2D, LinfBallSizesMatchFormula) {
  Torus2D torus(31);
  int v = torus.id(10, 10);
  for (int r = 0; r <= 5; ++r) {
    auto ball = torus.linfBall(v, r);
    EXPECT_EQ(static_cast<int>(ball.size()), (2 * r + 1) * (2 * r + 1)) << r;
  }
}

TEST(Torus2D, BallsDeduplicateOnSmallTori) {
  Torus2D torus(3);
  auto ball = torus.l1Ball(0, 5);  // radius exceeds torus size
  EXPECT_EQ(static_cast<int>(ball.size()), torus.size());
}

TEST(Torus2D, PowerDegreeBounds) {
  EXPECT_EQ(l1PowerDegreeBound(1), 4);
  EXPECT_EQ(l1PowerDegreeBound(3), 24);
  EXPECT_EQ(linfPowerDegreeBound(1), 8);
  Torus2D torus(31);
  EXPECT_EQ(static_cast<int>(torus.l1PowerNeighbours(5, 3).size()),
            l1PowerDegreeBound(3));
  EXPECT_EQ(static_cast<int>(torus.linfPowerNeighbours(5, 2).size()),
            linfPowerDegreeBound(2));
}

TEST(Torus2D, RejectsBadSize) { EXPECT_THROW(Torus2D(0), std::invalid_argument); }

// --- TorusD ---------------------------------------------------------------

TEST(TorusD, MatchesTorus2DDistances) {
  Torus2D t2(8);
  TorusD td(2, 8);
  for (int u = 0; u < t2.size(); ++u) {
    for (int v = 0; v < t2.size(); v += 7) {
      auto [ux, uy] = t2.xy(u);
      auto [vx, vy] = t2.xy(v);
      long long du = td.id({ux, uy});
      long long dv = td.id({vx, vy});
      EXPECT_EQ(t2.l1(u, v), td.l1(du, dv));
      EXPECT_EQ(t2.linf(u, v), td.linf(du, dv));
    }
  }
}

TEST(TorusD, CoordsRoundTrip) {
  TorusD torus(3, 5);
  for (long long v = 0; v < torus.size(); v += 11) {
    EXPECT_EQ(torus.id(torus.coords(v)), v);
  }
}

TEST(TorusD, StepInverses) {
  TorusD torus(3, 4);
  long long v = torus.id({1, 2, 3});
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_EQ(torus.step(torus.step(v, axis, true), axis, false), v);
  }
}

TEST(TorusD, LinfBallSize3D) {
  TorusD torus(3, 11);
  auto ball = torus.linfBall(torus.id({5, 5, 5}), 2);
  EXPECT_EQ(static_cast<long long>(ball.size()), 5LL * 5 * 5);
}

TEST(TorusD, L1BallSize3D) {
  TorusD torus(3, 11);
  auto ball = torus.l1Ball(torus.id({5, 5, 5}), 2);
  // |B_1(2)| in 3D: 1 + 6 + (6 + 12 + 8) hmm -- compute directly instead.
  long long count = 0;
  for (int dx = -2; dx <= 2; ++dx) {
    for (int dy = -2; dy <= 2; ++dy) {
      for (int dz = -2; dz <= 2; ++dz) {
        if (std::abs(dx) + std::abs(dy) + std::abs(dz) <= 2) ++count;
      }
    }
  }
  EXPECT_EQ(static_cast<long long>(ball.size()), count);
}

TEST(TorusD, EdgeCount) {
  TorusD torus(2, 6);
  EXPECT_EQ(torus.edgeCount(), 2LL * 36);
}

// --- BoundedGrid ------------------------------------------------------------

TEST(BoundedGrid, DegreesClassifyNodes) {
  BoundedGrid grid(5);
  int corners = 0, sides = 0, internal = 0;
  for (int v = 0; v < grid.size(); ++v) {
    switch (grid.degree(v)) {
      case 2: ++corners; break;
      case 3: ++sides; break;
      case 4: ++internal; break;
      default: FAIL() << "unexpected degree";
    }
  }
  EXPECT_EQ(corners, 4);
  EXPECT_EQ(sides, 4 * (5 - 2));
  EXPECT_EQ(internal, (5 - 2) * (5 - 2));
}

TEST(BoundedGrid, CornersAreDetected) {
  BoundedGrid grid(4);
  auto corners = grid.corners();
  EXPECT_EQ(corners.size(), 4u);
  for (int c : corners) EXPECT_TRUE(grid.isCorner(c));
  EXPECT_FALSE(grid.isCorner(grid.id(1, 1)));
  EXPECT_TRUE(grid.isBoundary(grid.id(0, 2)));
  EXPECT_FALSE(grid.isBoundary(grid.id(2, 2)));
}

TEST(BoundedGrid, NeighbourRespectsBoundary) {
  BoundedGrid grid(3);
  EXPECT_FALSE(grid.neighbour(grid.id(0, 0), Dir::West).has_value());
  EXPECT_FALSE(grid.neighbour(grid.id(0, 0), Dir::South).has_value());
  EXPECT_TRUE(grid.neighbour(grid.id(0, 0), Dir::North).has_value());
  EXPECT_TRUE(grid.neighbour(grid.id(0, 0), Dir::East).has_value());
}

}  // namespace
}  // namespace lclgrid
