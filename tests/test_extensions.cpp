#include <gtest/gtest.h>

#include "lcl/combinators.hpp"
#include "lcl/global_solver.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/graph_view.hpp"
#include "local/luby_mis.hpp"
#include "local/mis.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/rule_io.hpp"
#include "synthesis/synthesizer.hpp"
#include "local/ids.hpp"

namespace lclgrid {
namespace {

// --- combinators -------------------------------------------------------------

TEST(Combinators, DisjointUnionAcceptsEitherFamily) {
  Torus2D torus(6);
  auto p = problems::vertexColouring(2);
  auto q = problems::vertexColouring(3);
  auto u = problems::disjointUnion(p, q);
  EXPECT_EQ(u.sigma(), 5);

  // A pure-P solution (chequerboard).
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] = (torus.xOf(v) + torus.yOf(v)) % 2;
  }
  EXPECT_TRUE(verify(torus, u, labels));

  // A pure-Q solution (diagonal 3-colouring, offset by sigma(P)).
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] =
        2 + (torus.xOf(v) + torus.yOf(v)) % 3;
  }
  EXPECT_TRUE(verify(torus, u, labels));

  // Mixing families anywhere is rejected.
  labels[7] = 0;
  EXPECT_FALSE(verify(torus, u, labels));
}

TEST(Combinators, DisjointUnionSolvableIffEitherIs) {
  // On an odd torus 2-colouring is infeasible but 3-colouring saves the
  // union -- exactly the role P1 plays in L_M.
  Torus2D torus(5);
  auto u = problems::disjointUnion(problems::vertexColouring(2),
                                   problems::vertexColouring(3));
  auto result = solveGlobally(torus, u);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(verify(torus, u, result.labels));
}

TEST(Combinators, RelabelPreservesSolutions) {
  Torus2D torus(6);
  auto p = problems::vertexColouring(4);
  auto shuffled = problems::relabel(p, {2, 3, 0, 1});
  auto result = solveGlobally(torus, shuffled);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(verify(torus, shuffled, result.labels));
  EXPECT_TRUE(p.isEdgeDecomposable());
  EXPECT_TRUE(shuffled.isEdgeDecomposable());
}

TEST(Combinators, RelabelRejectsNonBijections) {
  auto p = problems::vertexColouring(3);
  EXPECT_THROW(problems::relabel(p, {0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(problems::relabel(p, {0, 1}), std::invalid_argument);
}

TEST(Combinators, FlipOrientationMapsXToFourMinusX) {
  // Section 11: {0,1,3}-orientation == flipped {1,3,4}-orientation. Verify
  // behaviourally: a labelling solves flip({1,3,4}) iff it solves {0,1,3}.
  Torus2D torus(8);
  auto direct = problems::orientation({0, 1, 3});
  auto flipped = problems::flipOrientation(problems::orientation({1, 3, 4}));
  auto solved = solveGlobally(torus, direct, 3);
  ASSERT_TRUE(solved.feasible);
  EXPECT_TRUE(verify(torus, flipped, solved.labels));
  auto solvedFlipped = solveGlobally(torus, flipped, 5);
  ASSERT_TRUE(solvedFlipped.feasible);
  EXPECT_TRUE(verify(torus, direct, solvedFlipped.labels));
}

TEST(Combinators, RestrictLabelsMonotone) {
  // 4-colouring restricted to 3 labels behaves like 3-colouring: feasible
  // but (per Theorem 9) global.
  auto p = problems::vertexColouring(4);
  auto restricted = problems::restrictLabels(p, {true, true, true, false});
  EXPECT_EQ(restricted.sigma(), 3);
  Torus2D torus(6);
  auto result = solveGlobally(torus, restricted);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(verify(torus, restricted, result.labels));
}

// --- Luby randomised MIS ------------------------------------------------------

class LubyMis : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LubyMis, ComputesMaximalIndependentSets) {
  auto [n, k, seed] = GetParam();
  Torus2D torus(n);
  auto view = local::l1PowerView(torus, k);
  auto result = local::lubyMis(view, static_cast<std::uint64_t>(seed) + 1);
  EXPECT_TRUE(local::isMaximalIndependentSet(view, result.inSet));
  EXPECT_GT(result.iterations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LubyMis,
    ::testing::Combine(::testing::Values(12, 20), ::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2)));

TEST(LubyMisRounds, GrowLogarithmicallyAtMost) {
  // Expected O(log n) iterations; check a generous bound empirically.
  for (int n : {16, 64}) {
    Torus2D torus(n);
    auto view = local::l1PowerView(torus, 1);
    auto result = local::lubyMis(view, 7);
    EXPECT_LE(result.iterations, 40) << n;
  }
}

// --- rule serialization ---------------------------------------------------------

TEST(RuleIo, RoundTripPreservesBehaviour) {
  auto lcl = problems::maximalIndependentSet();
  auto synthesis = synthesis::synthesize(lcl, {.maxK = 1});
  ASSERT_TRUE(synthesis.success);

  std::string text = synthesis::serializeRule(*synthesis.rule);
  auto reloaded = synthesis::parseRuleString(text);
  EXPECT_EQ(reloaded.k, synthesis.rule->k);
  EXPECT_EQ(reloaded.shape, synthesis.rule->shape);
  EXPECT_EQ(reloaded.labelOf, synthesis.rule->labelOf);

  // Behavioural equality on a real torus.
  Torus2D torus(20);
  auto ids = local::randomIds(torus.size(), 9);
  synthesis::NormalFormAlgorithm original(*synthesis.rule);
  synthesis::NormalFormAlgorithm parsed(reloaded);
  auto runA = original.execute(torus, ids);
  auto runB = parsed.execute(torus, ids);
  ASSERT_TRUE(runA.solved);
  ASSERT_TRUE(runB.solved);
  EXPECT_EQ(runA.labels, runB.labels);
}

TEST(RuleIo, RejectsMalformedInput) {
  EXPECT_THROW(synthesis::parseRuleString("garbage"), std::runtime_error);
  EXPECT_THROW(synthesis::parseRuleString("lclgrid-rule v1\nk 0\n"),
               std::runtime_error);
  EXPECT_THROW(
      synthesis::parseRuleString(
          "lclgrid-rule v1\nk 1\nshape 3 2\ntiles 2\n0 1\n"),
      std::runtime_error);  // truncated tile list
}

TEST(RuleIo, FourColouringRuleSurvivesSerialization) {
  auto lcl = problems::vertexColouring(4);
  auto synthesis = synthesis::synthesize(lcl, {.maxK = 3});
  ASSERT_TRUE(synthesis.success);
  auto reloaded =
      synthesis::parseRuleString(synthesis::serializeRule(*synthesis.rule));
  Torus2D torus(26);
  synthesis::NormalFormAlgorithm algorithm(reloaded);
  auto run = algorithm.execute(torus, local::randomIds(torus.size(), 3));
  ASSERT_TRUE(run.solved);
  EXPECT_TRUE(verify(torus, lcl, run.labels));
}

}  // namespace
}  // namespace lclgrid
