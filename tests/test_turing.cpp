#include <gtest/gtest.h>

#include "local/ids.hpp"
#include "turing/lm_builder.hpp"
#include "turing/lm_verifier.hpp"
#include "turing/machine.hpp"
#include "turing/zoo.hpp"

namespace lclgrid::turing {
namespace {

TEST(Machine, OnesWriterHaltsInExactlyCountSteps) {
  for (int count : {1, 2, 5, 9}) {
    auto table = runOnEmptyTape(onesWriter(count), 100);
    EXPECT_TRUE(table.halted);
    EXPECT_EQ(table.steps, count);
    // Final tape: `count` ones.
    const auto& last = table.rows.back();
    int ones = 0;
    for (int symbol : last.tape) ones += symbol == 1;
    EXPECT_EQ(ones, count);
  }
}

TEST(Machine, BouncerReturnsToOrigin) {
  auto table = runOnEmptyTape(bouncer(3), 100);
  ASSERT_TRUE(table.halted);
  EXPECT_EQ(table.rows.back().headCell, 0);
  EXPECT_FALSE(table.wentNegative);
}

TEST(Machine, NonHaltersExhaustBudget) {
  EXPECT_FALSE(runOnEmptyTape(rightRunner(), 500).halted);
  EXPECT_FALSE(runOnEmptyTape(blinker(), 500).halted);
}

TEST(Machine, BlinkerStaysBounded) {
  auto table = runOnEmptyTape(blinker(), 200);
  EXPECT_LE(table.width, 2);
}

TEST(Machine, ExecutionTableIsRectangular) {
  auto table = runOnEmptyTape(unaryCounter(3), 200);
  ASSERT_TRUE(table.halted);
  for (const auto& row : table.rows) {
    EXPECT_EQ(static_cast<int>(row.tape.size()), table.width);
  }
}

TEST(Machine, TransitionValidation) {
  Machine m("t", 2, 2);
  EXPECT_THROW(m.setTransition(2, 0, {0, 0, Move::Right}), std::out_of_range);
  EXPECT_THROW(m.setTransition(0, 0, {5, 0, Move::Right}), std::out_of_range);
}

TEST(LmProblem, AlphabetIsConstantSize) {
  // |Sigma| depends on the machine, not on n -- the LCL requirement.
  EXPECT_EQ(lmAlphabetSize(3, 2), 3 + 9 * 2 * (1 + 2 * 4));
  EXPECT_GT(lmAlphabetSize(5, 3), 0);
}

TEST(LmProblem, DiagStepsPointTowardAnchors) {
  EXPECT_EQ(diagDx(QType::NE), 1);
  EXPECT_EQ(diagDy(QType::NE), 1);
  EXPECT_EQ(diagDx(QType::SW), -1);
  EXPECT_EQ(diagDy(QType::SW), -1);
  EXPECT_EQ(diagDx(QType::N), 0);
  EXPECT_EQ(diagDy(QType::N), 1);
  EXPECT_EQ(diagDx(QType::A), 0);
  EXPECT_EQ(diagDy(QType::A), 0);
}

class HaltingMachines : public ::testing::TestWithParam<int> {};

TEST_P(HaltingMachines, FastConstructionVerifies) {
  int which = GetParam();
  Machine machines[] = {onesWriter(1), onesWriter(2), onesWriter(3),
                        bouncer(1), bouncer(2), unaryCounter(2)};
  const Machine& machine = machines[which];
  auto table = runOnEmptyTape(machine, 64);
  ASSERT_TRUE(table.halted);
  int span = std::max(table.width, static_cast<int>(table.rows.size()));
  // Torus size: a multiple of an even tile >= 2*span+2.
  int tile = 2 * span + 2;
  Torus2D torus(4 * tile);
  auto run = solveLmLogStar(torus, machine, local::randomIds(torus.size(), 3),
                            64);
  ASSERT_TRUE(run.solved) << run.failure;
  auto violations = listLmViolations(torus, machine, run.labels);
  EXPECT_TRUE(violations.empty())
      << violations.empty()
      << (violations.empty() ? "" : violations[0].rule + ": " +
                                        violations[0].description);
  EXPECT_EQ(run.stepsUsed, table.steps);
}

INSTANTIATE_TEST_SUITE_P(Zoo, HaltingMachines, ::testing::Range(0, 6));

TEST(LmConstruction, NonHaltingMachinesFailEveryBudget) {
  Torus2D torus(48);
  auto ids = local::randomIds(torus.size(), 3);
  for (const Machine& machine : {rightRunner(), blinker()}) {
    for (int budget : {1, 5, 20, 100}) {
      auto run = solveLmLogStar(torus, machine, ids, budget);
      EXPECT_FALSE(run.solved) << machine.name() << " budget " << budget;
    }
  }
}

TEST(LmConstruction, GlobalFallbackAlwaysWorks) {
  Torus2D torus(36);
  for (const Machine& machine : {rightRunner(), onesWriter(2)}) {
    auto run = solveLmGlobal(torus);
    ASSERT_TRUE(run.solved);
    EXPECT_TRUE(verifyLm(torus, machine, run.labels));
    EXPECT_EQ(run.rounds, 36);
  }
}

TEST(LmVerifier, RejectsMixedFamilies) {
  Torus2D torus(36);
  auto machine = onesWriter(2);
  auto run = solveLmGlobal(torus);
  ASSERT_TRUE(run.solved);
  run.labels[5].usesP1 = false;  // one node defects to P2
  EXPECT_FALSE(verifyLm(torus, machine, run.labels));
}

TEST(LmVerifier, RejectsBrokenDiagonalColouring) {
  auto machine = onesWriter(2);
  Torus2D torus(48);
  auto run = solveLmLogStar(torus, machine, local::randomIds(torus.size(), 3),
                            16);
  ASSERT_TRUE(run.solved);
  // Flip one diagonal colour inside a quadrant.
  for (int v = 0; v < torus.size(); ++v) {
    if (run.labels[static_cast<std::size_t>(v)].type == QType::NE) {
      run.labels[static_cast<std::size_t>(v)].diagColour ^= 1;
      break;
    }
  }
  EXPECT_FALSE(verifyLm(torus, machine, run.labels));
}

TEST(LmVerifier, RejectsTamperedExecutionTable) {
  auto machine = onesWriter(2);
  Torus2D torus(48);
  auto run = solveLmLogStar(torus, machine, local::randomIds(torus.size(), 3),
                            16);
  ASSERT_TRUE(run.solved);
  // Corrupt one tape symbol somewhere.
  for (int v = 0; v < torus.size(); ++v) {
    auto& label = run.labels[static_cast<std::size_t>(v)];
    if (label.hasTape && label.headState < 0 && label.tapeSymbol == 1) {
      label.tapeSymbol = 0;
      break;
    }
  }
  EXPECT_FALSE(verifyLm(torus, machine, run.labels));
}

TEST(LmVerifier, RejectsAnchorWithoutTable) {
  auto machine = onesWriter(1);
  Torus2D torus(48);
  auto run = solveLmLogStar(torus, machine, local::randomIds(torus.size(), 3),
                            16);
  ASSERT_TRUE(run.solved);
  for (int v = 0; v < torus.size(); ++v) {
    auto& label = run.labels[static_cast<std::size_t>(v)];
    if (label.type == QType::A) {
      // Remove the whole table of this anchor.
      auto table = runOnEmptyTape(machine, 16);
      for (int j = 0; j < static_cast<int>(table.rows.size()); ++j) {
        for (int i = 0; i < table.width; ++i) {
          auto& cell =
              run.labels[static_cast<std::size_t>(torus.shift(v, i, j))];
          cell.hasTape = false;
          cell.headState = -1;
          cell.tapeSymbol = 0;
        }
      }
      break;
    }
  }
  EXPECT_FALSE(verifyLm(torus, machine, run.labels));
}

TEST(LmOracle, OneSidedHaltingDetection) {
  EXPECT_TRUE(lmOracle(onesWriter(4), 10).halting);
  EXPECT_EQ(lmOracle(onesWriter(4), 10).haltingSteps, 4);
  EXPECT_FALSE(lmOracle(onesWriter(4), 3).halting);  // budget too small
  EXPECT_FALSE(lmOracle(rightRunner(), 1000).halting);
  EXPECT_FALSE(lmOracle(blinker(), 1000).halting);
}

}  // namespace
}  // namespace lclgrid::turing
