#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/graph_view.hpp"
#include "local/ids.hpp"
#include "local/mis.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/oracle.hpp"
#include "synthesis/synthesizer.hpp"
#include "tiles/enumerator.hpp"

namespace lclgrid::synthesis {
namespace {

TEST(Synthesis, FourColouringFailsAtKOneAndTwo) {
  // Section 7: "no solution exists for k = 1 or k = 2".
  auto lcl = problems::vertexColouring(4);
  for (int k : {1, 2}) {
    for (const auto& shape : candidateShapes(lcl, k, /*wider=*/true)) {
      auto attempt = synthesizeForShape(lcl, k, shape);
      EXPECT_FALSE(attempt.success) << "k=" << k;
      EXPECT_EQ(attempt.failureReason, "unsat");
    }
  }
}

TEST(Synthesis, FourColouringSucceedsAtKThreeWith7x5Tiles) {
  // Section 7: "synthesis succeeds with k = 3 for e.g. 7 x 5 tiles ...
  // 2079 tiles ... modern SAT solvers in a matter of seconds".
  auto lcl = problems::vertexColouring(4);
  auto attempt = synthesizeForShape(lcl, 3, tiles::TileShape{7, 5});
  ASSERT_TRUE(attempt.success);
  EXPECT_EQ(attempt.tileCount, 2079);
  EXPECT_LT(attempt.seconds, 30.0);  // "a matter of seconds"
  ASSERT_TRUE(attempt.rule.has_value());
  EXPECT_EQ(static_cast<int>(attempt.rule->labelOf.size()), 2079);
  for (int label : attempt.rule->labelOf) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(Synthesis, OrientationOneThreeFourSucceedsAtKOne) {
  // Lemma 23: {1,3,4}-orientation synthesized with k = 1.
  auto lcl = problems::orientation({1, 3, 4});
  SynthesisOptions options;
  options.maxK = 1;
  auto result = synthesize(lcl, options);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rule->k, 1);
}

TEST(Synthesis, MisSucceedsAtKOne) {
  auto result = synthesize(problems::maximalIndependentSet(),
                           SynthesisOptions{.maxK = 1});
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rule->k, 1);
}

TEST(Synthesis, ThreeColouringResistsSynthesis) {
  // Theorem 9 says 3-colouring is global; the one-sided oracle can only
  // report failure up to its budget -- which it must.
  auto result = synthesize(problems::vertexColouring(3),
                           SynthesisOptions{.maxK = 2});
  EXPECT_FALSE(result.success);
  for (const auto& attempt : result.attempts) {
    EXPECT_EQ(attempt.failureReason, "unsat");
  }
}

class NormalFormExecution
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NormalFormExecution, SynthesizedFourColouringSolvesAndVerifies) {
  auto [n, seed] = GetParam();
  auto lcl = problems::vertexColouring(4);
  static SynthesisResult cached = synthesize(lcl, SynthesisOptions{.maxK = 3});
  ASSERT_TRUE(cached.success);
  NormalFormAlgorithm algorithm(*cached.rule);
  ASSERT_GE(n, algorithm.minimumN());

  Torus2D torus(n);
  auto run = algorithm.execute(torus, local::randomIds(torus.size(), seed + 7));
  ASSERT_TRUE(run.solved) << run.failure;
  EXPECT_TRUE(verify(torus, lcl, run.labels));
  EXPECT_GT(run.misRounds, 0);
  EXPECT_GE(run.localRadius, 3);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, NormalFormExecution,
    ::testing::Combine(::testing::Values(24, 33, 48), ::testing::Values(0, 1)));

TEST(NormalForm, RoundsAreFlatAcrossSizes) {
  auto lcl = problems::vertexColouring(4);
  auto result = synthesize(lcl, SynthesisOptions{.maxK = 3});
  ASSERT_TRUE(result.success);
  NormalFormAlgorithm algorithm(*result.rule);
  Torus2D small(24), large(96);
  auto runSmall = algorithm.execute(small, local::randomIds(small.size(), 3));
  auto runLarge = algorithm.execute(large, local::randomIds(large.size(), 3));
  ASSERT_TRUE(runSmall.solved);
  ASSERT_TRUE(runLarge.solved);
  // Theta(log* n): a 16x larger instance costs at most a few extra rounds.
  EXPECT_LE(runLarge.rounds, runSmall.rounds + 60);
}

TEST(NormalForm, MisRuleReproducesAnMis) {
  // The synthesized rule for the MIS problem must output exactly an MIS;
  // with k=1 the anchors themselves are one, so A' essentially reads the
  // centre bit. Check behavioural equality on the torus.
  auto result = synthesize(problems::maximalIndependentSet(),
                           SynthesisOptions{.maxK = 1});
  ASSERT_TRUE(result.success);
  NormalFormAlgorithm algorithm(*result.rule);
  Torus2D torus(20);
  auto run = algorithm.execute(torus, local::randomIds(torus.size(), 5));
  ASSERT_TRUE(run.solved);
  EXPECT_TRUE(verify(torus, problems::maximalIndependentSet(), run.labels));
}

TEST(NormalForm, DeterministicGivenAnchors) {
  // A' depends only on the anchor pattern (Section 7: "A' does not depend
  // on the assignment of unique identifiers or on the value of n").
  auto result = synthesize(problems::vertexColouring(4),
                           SynthesisOptions{.maxK = 3});
  ASSERT_TRUE(result.success);
  NormalFormAlgorithm algorithm(*result.rule);
  Torus2D torus(30);
  auto misRun =
      local::computeMis(local::l1PowerView(torus, algorithm.rule().k),
                        local::randomIds(torus.size(), 9));
  std::vector<std::uint8_t> anchors(misRun.inSet.begin(), misRun.inSet.end());
  auto first = algorithm.executeOnAnchors(torus, anchors);
  auto second = algorithm.executeOnAnchors(torus, anchors);
  ASSERT_TRUE(first.solved);
  EXPECT_EQ(first.labels, second.labels);
}

TEST(Oracle, ClassifiesTheHeadlineProblems) {
  OracleOptions fast;
  fast.synthesis.maxK = 1;
  fast.probeSizes = {4, 5};

  EXPECT_EQ(classifyOnGrid(problems::independentSet(), fast).complexity,
            GridComplexity::Constant);
  EXPECT_EQ(classifyOnGrid(problems::orientation({2}), fast).complexity,
            GridComplexity::Constant);
  EXPECT_EQ(classifyOnGrid(problems::maximalIndependentSet(), fast).complexity,
            GridComplexity::LogStar);
  EXPECT_EQ(classifyOnGrid(problems::orientation({1, 3, 4}), fast).complexity,
            GridComplexity::LogStar);

  OracleOptions medium;
  medium.synthesis.maxK = 2;
  medium.probeSizes = {4, 5};
  EXPECT_EQ(classifyOnGrid(problems::vertexColouring(3), medium).complexity,
            GridComplexity::ConjecturedGlobal);
  EXPECT_EQ(classifyOnGrid(problems::vertexColouring(2), fast).complexity,
            GridComplexity::UnsolvableSomeN);
  // {1,3}-orientation: the parity obstruction at n=5 costs ~2M SAT
  // conflicts (counting arguments are hard for resolution), so probe the
  // cheap odd case n=3 instead.
  OracleOptions tiny;
  tiny.synthesis.maxK = 1;
  tiny.probeSizes = {3, 4};
  EXPECT_EQ(classifyOnGrid(problems::orientation({1, 3}), tiny).complexity,
            GridComplexity::UnsolvableSomeN);
}

TEST(Oracle, ReportsFeasibilityProbe) {
  OracleOptions options;
  options.synthesis.maxK = 1;
  options.probeSizes = {4, 5, 6};
  auto report = classifyOnGrid(problems::vertexColouring(2), options);
  ASSERT_EQ(report.feasibility.size(), 3u);
  EXPECT_TRUE(report.feasibility[0].second);   // n=4 even
  EXPECT_FALSE(report.feasibility[1].second);  // n=5 odd
  EXPECT_TRUE(report.feasibility[2].second);   // n=6 even
}

TEST(IncrementalSynthesis, LadderMatchesFreshRegime) {
  // synthesize() must reach the same verdict, rule shape and attempt ladder
  // whichever regime SynthesisOptions::incremental selects. (The full
  // registry version of this lives in tests/test_differential.cpp.)
  for (bool wider : {false, true}) {
    SynthesisOptions fresh;
    fresh.maxK = 3;
    fresh.tryWiderShapes = wider;
    fresh.incremental = false;
    SynthesisOptions incremental = fresh;
    incremental.incremental = true;

    auto lcl = problems::vertexColouring(4);
    auto a = synthesize(lcl, fresh);
    auto b = synthesize(lcl, incremental);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    EXPECT_EQ(a.rule->k, b.rule->k);
    EXPECT_TRUE(a.rule->shape == b.rule->shape);
    ASSERT_EQ(a.attempts.size(), b.attempts.size());
    for (std::size_t i = 0; i < a.attempts.size(); ++i) {
      EXPECT_EQ(a.attempts[i].success, b.attempts[i].success);
      EXPECT_EQ(a.attempts[i].failureReason, b.attempts[i].failureReason);
      EXPECT_EQ(a.attempts[i].tileCount, b.attempts[i].tileCount);
      EXPECT_EQ(a.attempts[i].clauseCount, b.attempts[i].clauseCount);
    }
  }
}

TEST(IncrementalSynthesis, SynthesizedRuleExecutes) {
  // The incremental regime's rule is decoded from a live solver's model
  // snapshot; it must drive the normal-form algorithm end to end.
  SynthesisOptions options;
  options.incremental = true;
  auto lcl = problems::vertexColouring(4);
  auto result = synthesize(lcl, options);
  ASSERT_TRUE(result.success);
  NormalFormAlgorithm algorithm(*result.rule);
  Torus2D torus(24);
  auto run = algorithm.execute(torus, local::randomIds(torus.size(), 11));
  ASSERT_TRUE(run.solved) << run.failure;
  EXPECT_TRUE(verify(torus, lcl, run.labels));
}

TEST(IncrementalSynthesis, ResolveActiveResumesAfterBudgetExhaustion) {
  // Budget-staged deepening: an Unknown attempt is resumed in place (no
  // re-encode) and must converge to the fresh verdict, spending conflicts
  // across stages rather than restarting from zero.
  auto lcl = problems::vertexColouring(4);
  IncrementalSynthesizer live(lcl);
  auto attempt = live.attemptShape(3, tiles::TileShape{7, 5}, 8);
  int stages = 1;
  while (!attempt.success && attempt.failureReason == "sat budget exhausted") {
    attempt = live.resolveActive(16 << stages);
    ++stages;
    ASSERT_LE(stages, 40);
  }
  EXPECT_TRUE(attempt.success);
  ASSERT_TRUE(attempt.rule.has_value());
  EXPECT_EQ(static_cast<int>(attempt.rule->labelOf.size()), 2079);
  EXPECT_GT(stages, 1) << "budget 8 was expected to exhaust at least once";
}

TEST(IncrementalSynthesis, ResolveActiveWithoutInstanceThrows) {
  auto lcl = problems::vertexColouring(3);
  IncrementalSynthesizer live(lcl);
  EXPECT_THROW(live.resolveActive(), std::logic_error);
}

TEST(IncrementalSynthesis, DefaultHonoursEnvironmentToggle) {
  // CI runs the whole shard under LCLGRID_INCREMENTAL_SAT=0/1; the options
  // default must track the toggle (unset or "1" => incremental).
  const char* env = std::getenv("LCLGRID_INCREMENTAL_SAT");
  const bool expected = env == nullptr || std::string(env) != "0";
  EXPECT_EQ(incrementalSatDefault(), expected);
  EXPECT_EQ(SynthesisOptions{}.incremental, expected);
}

TEST(Constraints, EdgeDecomposableUsesPairConstraints) {
  auto lcl = problems::vertexColouring(4);
  auto tileSet = tiles::enumerateTiles(1, 3, 2);
  auto system = buildConstraints(lcl, tileSet);
  EXPECT_TRUE(system.edgeDecomposable);
  EXPECT_FALSE(system.horizontal.empty());
  EXPECT_FALSE(system.vertical.empty());
  EXPECT_TRUE(system.crosses.empty());
}

TEST(Constraints, GeneralProblemsUseSuperWindows) {
  auto lcl = problems::maximalIndependentSet();
  auto tileSet = tiles::enumerateTiles(1, 3, 2);
  auto system = buildConstraints(lcl, tileSet);
  EXPECT_FALSE(system.edgeDecomposable);
  EXPECT_FALSE(system.crosses.empty());
}

}  // namespace
}  // namespace lclgrid::synthesis
