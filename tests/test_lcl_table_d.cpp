// Property tests for the d-dimensional compiled constraint-table core
// (LclTableD / GridLclD) and the TorusD verification stack:
//  * table == predicate agreement over all of sigma^(2d+1) tuples for
//    small alphabets at d = 1/2/3,
//  * the d = 2 delegation is bit-for-bit the existing LclTable (shared
//    rows, equal strides, equal derived data),
//  * per-axis pair projections and decomposability vs. brute force over
//    the raw predicate,
//  * disjointUnion / remap composition vs. predicate composition,
//  * serial TorusD verification vs. a step-based reference, and
//  * parallel-verify determinism: counts bit-identical at 1/2/8 threads.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"
#include "grid/torusd.hpp"
#include "lcl/grid_lcl.hpp"
#include "lcl/grid_lcl_d.hpp"
#include "lcl/lcl_table.hpp"
#include "lcl/lcl_table_d.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"

namespace lclgrid {
namespace {

/// d-dimensional problems at small parameters: every compiled problem the
/// d-dimensional front end ships, at d = 1, 2 and 3, plus dependency-mask
/// variety (full masks, two-slot masks, an asymmetric axis).
std::vector<GridLclD> problemRegistryD() {
  std::vector<GridLclD> registry;
  for (int dims = 1; dims <= 3; ++dims) {
    for (int colours = 2; colours <= 3; ++colours) {
      registry.push_back(problems_d::vertexColouring(dims, colours));
    }
    registry.push_back(problems_d::xorParity(dims));
    for (int axis = 0; axis < dims; ++axis) {
      registry.push_back(problems_d::monotoneAxis(dims, axis, 3));
    }
  }
  return registry;
}

/// Calls f(c, nbrs) for every tuple of sigma^(2d+1).
template <typename F>
void forEachTuple(int dims, int sigma, F&& f) {
  std::vector<int> nbrs(static_cast<std::size_t>(2 * dims), 0);
  while (true) {
    for (int c = 0; c < sigma; ++c) f(c, nbrs);
    int slot = 0;
    while (slot < 2 * dims && ++nbrs[static_cast<std::size_t>(slot)] == sigma) {
      nbrs[static_cast<std::size_t>(slot)] = 0;
      ++slot;
    }
    if (slot == 2 * dims) break;
  }
}

std::vector<int> randomLabels(long long count, int sigma,
                              std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, sigma - 1);
  std::vector<int> labels(static_cast<std::size_t>(count));
  for (int& label : labels) label = dist(rng);
  return labels;
}

TEST(LclTableD, TableAgreesWithPredicateOnAllTuples) {
  for (const GridLclD& lcl : problemRegistryD()) {
    ASSERT_TRUE(lcl.hasTable()) << lcl.name();
    const LclTableD& table = lcl.table();
    forEachTuple(lcl.dims(), lcl.sigma(), [&](int c, const std::vector<int>& nbrs) {
      EXPECT_EQ(table.allows(c, nbrs), lcl.predicate()(c, nbrs))
          << lcl.name() << " at c=" << c;
    });
  }
}

TEST(LclTableD, Dim2DelegationIsBitForBitTheLclTable) {
  // The same relation compiled through both front ends: the d = 2 table
  // must *be* the 2D table -- shared rows, equal strides in the slot
  // mapping [E, W, N, S], and equal derived data.
  const GridLcl flat = problems::vertexColouring(3);
  const GridLclD lifted = problems_d::vertexColouring(2, 3);
  ASSERT_TRUE(lifted.hasTable());
  const LclTableD& tableD = lifted.table();
  const LclTable& table2d = flat.table();

  ASSERT_NE(tableD.as2d(), nullptr);
  const LclTable& delegated = *tableD.as2d();
  EXPECT_TRUE(delegated.sameContent(table2d));
  EXPECT_EQ(delegated.fingerprint(), table2d.fingerprint());

  // The D view shares the delegated rows rather than copying them.
  EXPECT_EQ(tableD.rowData(), delegated.rowData());
  ASSERT_EQ(tableD.rowCount(), table2d.rowCount());
  for (std::size_t i = 0; i < table2d.rowCount(); ++i) {
    EXPECT_EQ(tableD.rowData()[i], table2d.rowData()[i]);
  }
  EXPECT_EQ(tableD.slotStrides()[0], table2d.strideE());
  EXPECT_EQ(tableD.slotStrides()[1], table2d.strideW());
  EXPECT_EQ(tableD.slotStrides()[2], table2d.strideN());
  EXPECT_EQ(tableD.slotStrides()[3], table2d.strideS());

  EXPECT_EQ(tableD.trivialLabel(), table2d.trivialLabel());
  EXPECT_EQ(tableD.edgeDecomposable(), table2d.edgeDecomposable());
  const int s = table2d.sigma();
  for (int lo = 0; lo < s; ++lo) {
    for (int up = 0; up < s; ++up) {
      EXPECT_EQ(tableD.pairOk(0, lo, up), table2d.horizontalOk(lo, up));
      EXPECT_EQ(tableD.pairOk(1, lo, up), table2d.verticalOk(lo, up));
    }
  }

  // Every query agrees with the flat table's (n, e, s, w) convention.
  forEachTuple(2, s, [&](int c, const std::vector<int>& nbrs) {
    EXPECT_EQ(tableD.allows(c, nbrs),
              table2d.allows(c, nbrs[2], nbrs[0], nbrs[3], nbrs[1]));
  });
}

TEST(LclTableD, Dim2CompileMatchesFromTable2D) {
  const GridLcl flat = problems::maximalIndependentSet();
  const LclTableD wrapped = LclTableD::fromTable2D(flat.table());
  const LclTableD compiled = LclTableD::compile(
      2, flat.sigma(), wrapped.deps(), [&](int c, std::span<const int> nbrs) {
        return flat.predicate()(c, nbrs[2], nbrs[0], nbrs[3], nbrs[1]);
      });
  EXPECT_TRUE(wrapped.sameContent(compiled));
  EXPECT_EQ(wrapped.fingerprint(), compiled.fingerprint());
}

TEST(LclTableD, PairProjectionsMatchBruteForce) {
  for (const GridLclD& lcl : problemRegistryD()) {
    const int s = lcl.sigma();
    const int d = lcl.dims();
    const LclTableD& table = lcl.table();
    // Brute force over the raw predicate: a pair (lower, upper) along axis
    // a participates iff it occurs in some allowed tuple, viewed from
    // either endpoint.
    std::vector<std::uint8_t> ref(
        static_cast<std::size_t>(d) * s * s, 0);
    auto refAt = [&](int axis, int lo, int up) -> std::uint8_t& {
      return ref[(static_cast<std::size_t>(axis) * s + lo) * s + up];
    };
    forEachTuple(d, s, [&](int c, const std::vector<int>& nbrs) {
      if (!lcl.predicate()(c, nbrs)) return;
      for (int a = 0; a < d; ++a) {
        refAt(a, c, nbrs[static_cast<std::size_t>(2 * a)]) = 1;
        refAt(a, nbrs[static_cast<std::size_t>(2 * a + 1)], c) = 1;
      }
    });
    for (int a = 0; a < d; ++a) {
      for (int lo = 0; lo < s; ++lo) {
        for (int up = 0; up < s; ++up) {
          EXPECT_EQ(table.pairOk(a, lo, up), refAt(a, lo, up) != 0)
              << lcl.name() << " axis " << a << " pair (" << lo << "," << up
              << ")";
        }
      }
    }
    // Decomposability vs. brute force: the projections reproduce the
    // relation exactly.
    bool decomposable = true;
    forEachTuple(d, s, [&](int c, const std::vector<int>& nbrs) {
      bool byPairs = true;
      for (int a = 0; a < d && byPairs; ++a) {
        byPairs = refAt(a, c, nbrs[static_cast<std::size_t>(2 * a)]) &&
                  refAt(a, nbrs[static_cast<std::size_t>(2 * a + 1)], c);
      }
      if (byPairs != lcl.predicate()(c, nbrs)) decomposable = false;
    });
    EXPECT_EQ(table.edgeDecomposable(), decomposable) << lcl.name();
  }
}

TEST(LclTableD, TrivialLabelMatchesConstantProbe) {
  for (const GridLclD& lcl : problemRegistryD()) {
    int expected = -1;
    std::vector<int> constant(static_cast<std::size_t>(2 * lcl.dims()), 0);
    for (int c = 0; c < lcl.sigma() && expected < 0; ++c) {
      std::fill(constant.begin(), constant.end(), c);
      if (lcl.predicate()(c, constant)) expected = c;
    }
    EXPECT_EQ(lcl.trivialLabel(), expected) << lcl.name();
    EXPECT_EQ(lcl.hasTrivialSolution(), expected >= 0) << lcl.name();
  }
}

TEST(LclTableD, DisjointUnionComposesFamilies) {
  for (int dims = 1; dims <= 3; ++dims) {
    const GridLclD p = problems_d::vertexColouring(dims, 2);
    const GridLclD q = problems_d::xorParity(dims);
    const LclTableD u = LclTableD::disjointUnion(p.table(), q.table());
    const int sigmaP = p.sigma();
    EXPECT_EQ(u.sigma(), sigmaP + q.sigma());
    EXPECT_EQ(u.dims(), dims);
    forEachTuple(dims, u.sigma(), [&](int c, const std::vector<int>& nbrs) {
      bool inP = c < sigmaP;
      bool consistent = true;
      for (int nbr : nbrs) consistent = consistent && ((nbr < sigmaP) == inP);
      bool expected = false;
      if (consistent) {
        std::vector<int> sub = nbrs;
        for (int& nbr : sub) nbr -= inP ? 0 : sigmaP;
        expected = inP ? p.predicate()(c, sub)
                       : q.predicate()(c - sigmaP, sub);
      }
      EXPECT_EQ(u.allows(c, nbrs), expected)
          << "d=" << dims << " c=" << c;
    });
  }
}

TEST(LclTableD, RemapPermutesAndRestrictsLabels) {
  for (int dims = 1; dims <= 3; ++dims) {
    const GridLclD p = problems_d::vertexColouring(dims, 3);
    // A swap of labels 0 and 2 plus a duplicate of label 1.
    const std::vector<int> toOld = {2, 1, 0, 1};
    const LclTableD r = LclTableD::remap(p.table(), toOld);
    EXPECT_EQ(r.sigma(), 4);
    forEachTuple(dims, 4, [&](int c, const std::vector<int>& nbrs) {
      std::vector<int> old = nbrs;
      for (int& nbr : old) nbr = toOld[static_cast<std::size_t>(nbr)];
      EXPECT_EQ(r.allows(c, nbrs),
                p.predicate()(toOld[static_cast<std::size_t>(c)], old));
    });
  }
}

TEST(LclTableD, ForbiddenIterationCoversComplement) {
  for (const GridLclD& lcl : problemRegistryD()) {
    const LclTableD& table = lcl.table();
    long long forbidden = 0;
    table.forEachForbidden([&](int c, std::span<const int> nbrs) {
      EXPECT_FALSE(lcl.predicate()(c, std::vector<int>(nbrs.begin(), nbrs.end())))
          << lcl.name();
      ++forbidden;
    });
    long long allowed = 0;
    table.forEachAllowed(
        [&](int, std::span<const int>) { ++allowed; });
    EXPECT_EQ(forbidden, table.forbiddenRowCount()) << lcl.name();
    EXPECT_EQ(forbidden + allowed,
              static_cast<long long>(table.rowCount()) * lcl.sigma())
        << lcl.name();
  }
}

TEST(LclTableD, FingerprintSeparatesRegistryAndTracksContent) {
  const auto registry = problemRegistryD();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    for (std::size_t j = i + 1; j < registry.size(); ++j) {
      const LclTableD& a = registry[i].table();
      const LclTableD& b = registry[j].table();
      EXPECT_EQ(a.sameContent(b), a.fingerprint() == b.fingerprint())
          << registry[i].name() << " vs " << registry[j].name();
    }
  }
  // Identity remap preserves content and fingerprint.
  const LclTableD& p = registry[0].table();
  std::vector<int> identity(static_cast<std::size_t>(p.sigma()));
  for (int c = 0; c < p.sigma(); ++c) identity[static_cast<std::size_t>(c)] = c;
  const LclTableD r = LclTableD::remap(p, identity);
  EXPECT_TRUE(r.sameContent(p));
  EXPECT_EQ(r.fingerprint(), p.fingerprint());
}

// --- TorusD verification ---------------------------------------------------

/// Step-based reference count, independent of the table kernels.
std::int64_t referenceCount(const TorusD& torus, const GridLclD& lcl,
                            const std::vector<int>& labels) {
  const int dims = torus.dims();
  std::vector<int> nbrs(static_cast<std::size_t>(2 * dims), 0);
  std::int64_t bad = 0;
  for (long long v = 0; v < torus.size(); ++v) {
    const int c = labels[static_cast<std::size_t>(v)];
    if (c < 0 || c >= lcl.sigma()) {
      ++bad;
      continue;
    }
    for (int a = 0; a < dims; ++a) {
      nbrs[static_cast<std::size_t>(2 * a)] =
          labels[static_cast<std::size_t>(torus.step(v, a, true))];
      nbrs[static_cast<std::size_t>(2 * a + 1)] =
          labels[static_cast<std::size_t>(torus.step(v, a, false))];
    }
    if (!lcl.predicate()(c, nbrs)) ++bad;
  }
  return bad;
}

TEST(VerifierD, TableKernelMatchesReferenceAcrossDims) {
  std::uint32_t seed = 1234;
  for (int dims = 1; dims <= 4; ++dims) {
    const int n = dims <= 2 ? 7 : (dims == 3 ? 5 : 4);
    const TorusD torus(dims, n);
    const std::vector<GridLclD> lcls = {
        problems_d::vertexColouring(dims, 3), problems_d::xorParity(dims),
        problems_d::monotoneAxis(dims, dims - 1, 3)};
    for (const GridLclD& lcl : lcls) {
      const auto labels = randomLabels(torus.size(), lcl.sigma(), seed++);
      const std::int64_t expected = referenceCount(torus, lcl, labels);
      EXPECT_EQ(countViolations(torus, lcl, labels), expected)
          << lcl.name() << " n=" << n;
      EXPECT_EQ(verify(torus, lcl, labels), expected == 0) << lcl.name();
      EXPECT_EQ(listViolations(torus, lcl, labels,
                               static_cast<int>(torus.size()))
                    .size(),
                static_cast<std::size_t>(expected))
          << lcl.name();
    }
  }
}

TEST(VerifierD, FeasibleColouringVerifies) {
  // (sum of coords) mod k is a proper colouring when k | n and k >= 3
  // (every +-1 step changes the sum by +-1 mod k != 0).
  const TorusD torus(3, 6);
  const GridLclD lcl = problems_d::vertexColouring(3, 3);
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (long long v = 0; v < torus.size(); ++v) {
    const auto coords = torus.coords(v);
    labels[static_cast<std::size_t>(v)] =
        (coords[0] + coords[1] + coords[2]) % 3;
  }
  EXPECT_TRUE(verify(torus, lcl, labels));
  EXPECT_EQ(countViolations(torus, lcl, labels), 0);
}

TEST(VerifierD, FunctionalFallbackAndOutOfRangeLabels) {
  const TorusD torus(3, 4);
  // sigma = 70 exceeds the 64-label table cap: functional path.
  GridLclD big("big-colouring-d3", 3, 70, LclTableD::fullDeps(3),
               [](int c, std::span<const int> nbrs) {
                 for (int nbr : nbrs) {
                   if (nbr == c) return false;
                 }
                 return true;
               });
  EXPECT_FALSE(big.hasTable());
  const auto labels = randomLabels(torus.size(), big.sigma(), 99);
  EXPECT_EQ(countViolations(torus, big, labels),
            referenceCount(torus, big, labels));

  // Out-of-alphabet labels force the compiled problem off the table path.
  const GridLclD small = problems_d::vertexColouring(3, 3);
  auto bad = randomLabels(torus.size(), small.sigma(), 100);
  bad[5] = 42;
  EXPECT_EQ(countViolations(torus, small, bad),
            referenceCount(torus, small, bad));
  EXPECT_FALSE(verify(torus, small, bad));
}

TEST(VerifierD, TableFirstProblemRejectsOutOfRangeLabels) {
  // A table-first GridLclD has no raw predicate; its fallback predicate
  // must reject out-of-alphabet labels instead of indexing the table with
  // them (the verifier feeds garbage labels through the predicate path).
  const GridLclD p = problems_d::vertexColouring(3, 2);
  const GridLclD q = problems_d::xorParity(3);
  const GridLclD u("union",
                   LclTableD::disjointUnion(p.table(), q.table()));
  const std::vector<int> garbage = {1000000, 0, 0, 0, 0, 0};
  EXPECT_FALSE(u.allows(0, std::span<const int>(garbage)));
  EXPECT_FALSE(u.predicate()(1000000, std::vector<int>(6, 0)));

  const TorusD torus(3, 4);
  auto labels = randomLabels(torus.size(), u.sigma(), 4242);
  labels[7] = 1000000;
  EXPECT_FALSE(verify(torus, u, labels));
  EXPECT_GE(countViolations(torus, u, labels), 1);
}

TEST(VerifierD, BatchesMatchSingleCalls) {
  const TorusD torus(3, 4);
  const GridLclD lcl = problems_d::vertexColouring(3, 3);
  const int batchSize = 5;
  std::vector<int> batch;
  std::vector<std::int64_t> expectedCounts;
  for (int i = 0; i < batchSize; ++i) {
    const auto labels = randomLabels(torus.size(), lcl.sigma(), 2000 + i);
    batch.insert(batch.end(), labels.begin(), labels.end());
    expectedCounts.push_back(countViolations(torus, lcl, labels));
  }
  EXPECT_EQ(countViolationsBatch(torus, lcl, batch), expectedCounts);
  const auto feasible = verifyBatch(torus, lcl, batch);
  ASSERT_EQ(feasible.size(), static_cast<std::size_t>(batchSize));
  for (int i = 0; i < batchSize; ++i) {
    EXPECT_EQ(feasible[static_cast<std::size_t>(i)] != 0,
              expectedCounts[static_cast<std::size_t>(i)] == 0);
  }
  std::vector<int> ragged(batch.begin(), batch.end() - 1);
  EXPECT_THROW(countViolationsBatch(torus, lcl, ragged),
               std::invalid_argument);
}

TEST(VerifierD, DimensionMismatchThrows) {
  const TorusD torus(3, 4);
  const GridLclD lcl = problems_d::vertexColouring(2, 3);
  const std::vector<int> labels(static_cast<std::size_t>(torus.size()), 0);
  EXPECT_THROW(countViolations(torus, lcl, labels), std::invalid_argument);
  EXPECT_THROW(verify(torus, lcl, labels), std::invalid_argument);
}

TEST(VerifierD, ParallelCountsBitIdenticalAt128Threads) {
  std::uint32_t seed = 777;
  for (int dims = 2; dims <= 3; ++dims) {
    const int n = dims == 2 ? 10 : 6;
    const TorusD torus(dims, n);
    const std::vector<GridLclD> lcls = {
        problems_d::vertexColouring(dims, 3), problems_d::xorParity(dims),
        problems_d::monotoneAxis(dims, 0, 3)};
    for (const GridLclD& lcl : lcls) {
      const auto labels = randomLabels(torus.size(), lcl.sigma(), seed++);
      const std::int64_t serial = countViolations(torus, lcl, labels);
      const bool feasible = verify(torus, lcl, labels);
      for (int threads : {1, 2, 8}) {
        engine::ThreadPool pool(threads);
        // Explicit grain pins chunk boundaries across thread counts.
        engine::EngineOptions options{
            .threads = threads, .grain = 2, .pool = &pool};
        EXPECT_EQ(countViolations(torus, lcl, labels, options), serial)
            << lcl.name() << " threads=" << threads;
        EXPECT_EQ(verify(torus, lcl, labels, options), feasible)
            << lcl.name() << " threads=" << threads;
      }
    }
  }
}

TEST(VerifierD, ParallelBatchesBitIdenticalAt128Threads) {
  const TorusD torus(3, 4);
  const GridLclD lcl = problems_d::xorParity(3);
  const int batchSize = 6;
  std::vector<int> batch;
  for (int i = 0; i < batchSize; ++i) {
    const auto labels = randomLabels(torus.size(), lcl.sigma(), 3000 + i);
    batch.insert(batch.end(), labels.begin(), labels.end());
  }
  const auto serialCounts = countViolationsBatch(torus, lcl, batch);
  const auto serialFeasible = verifyBatch(torus, lcl, batch);
  for (int threads : {1, 2, 8}) {
    engine::ThreadPool pool(threads);
    engine::EngineOptions options{
        .threads = threads, .grain = 1, .pool = &pool};
    EXPECT_EQ(countViolationsBatch(torus, lcl, batch, options), serialCounts)
        << "threads=" << threads;
    EXPECT_EQ(verifyBatch(torus, lcl, batch, options), serialFeasible)
        << "threads=" << threads;
  }
  // Single-labelling batch takes the sharded-single path.
  std::vector<int> one(batch.begin(),
                       batch.begin() + static_cast<std::size_t>(torus.size()));
  for (int threads : {2, 8}) {
    engine::ThreadPool pool(threads);
    engine::EngineOptions options{.threads = threads, .pool = &pool};
    EXPECT_EQ(countViolationsBatch(torus, lcl, one, options),
              countViolationsBatch(torus, lcl, one));
  }
}

}  // namespace
}  // namespace lclgrid
