// Tests for the telemetry layer (support/telemetry.hpp): counter-merge
// determinism across thread counts, span nesting, trace-JSON structure,
// retired-thread fold-in, and the disabled-build no-op contract. Every
// expectation branches on telemetry::kCompiledIn so the same suite passes
// under -DLCLGRID_TELEMETRY=OFF (where all probes compile to empty inline
// bodies and the snapshots are empty).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "engine/thread_pool.hpp"
#include "support/telemetry.hpp"

namespace lclgrid {
namespace {

std::int64_t counterValue(const telemetry::MetricsSnapshot& snapshot,
                          const std::string& name) {
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return -1;
}

TEST(TelemetryCounter, AddAndSnapshot) {
  const telemetry::Counter c = telemetry::counter("test.basic_counter");
  c.add(5);
  c.increment();
  const auto snapshot = telemetry::snapshotMetrics();
  if (!telemetry::kCompiledIn) {
    EXPECT_TRUE(snapshot.counters.empty());
    return;
  }
  EXPECT_GE(counterValue(snapshot, "test.basic_counter"), 6);
}

TEST(TelemetryCounter, SameNameSameSlot) {
  const telemetry::Counter a = telemetry::counter("test.shared_slot");
  const telemetry::Counter b = telemetry::counter("test.shared_slot");
  a.add(3);
  b.add(4);
  const auto snapshot = telemetry::snapshotMetrics();
  if (!telemetry::kCompiledIn) return;
  // Both handles feed one slot; its total moved by exactly 7.
  EXPECT_GE(counterValue(snapshot, "test.shared_slot"), 7);
}

// The tentpole determinism claim: the merged total is exact whenever the
// instrumented threads are quiescent, independent of how the increments
// were spread over pool lanes.
TEST(TelemetryCounter, MergeDeterministicAcrossThreadCounts) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const telemetry::Counter c = telemetry::counter("test.merge_determinism");
  const std::int64_t before =
      counterValue(telemetry::snapshotMetrics(), "test.merge_determinism");
  constexpr std::int64_t kItems = 10000;
  std::int64_t expected = before < 0 ? 0 : before;
  for (int threads : {1, 2, 8}) {
    engine::ThreadPool pool(threads);
    pool.parallelFor(0, kItems, /*grain=*/64,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) c.add(1);
                     });
    expected += kItems;
    // parallelFor has returned, so every lane is quiescent: the merge of
    // live shards + retired totals must be exact, at every thread count.
    EXPECT_EQ(
        counterValue(telemetry::snapshotMetrics(), "test.merge_determinism"),
        expected)
        << "threads=" << threads;
  }
}

TEST(TelemetryCounter, RetiredThreadsFoldIn) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const telemetry::Counter c = telemetry::counter("test.retired_fold");
  const std::int64_t before =
      counterValue(telemetry::snapshotMetrics(), "test.retired_fold");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() { c.add(100); });
  }
  for (auto& thread : threads) thread.join();
  // The shards died with their threads; the retired accumulator keeps the
  // counts.
  EXPECT_EQ(counterValue(telemetry::snapshotMetrics(), "test.retired_fold"),
            (before < 0 ? 0 : before) + 400);
}

TEST(TelemetryGauge, SetAndMax) {
  const telemetry::Gauge g = telemetry::gauge("test.gauge");
  g.set(10);
  g.max(5);   // below: no effect
  g.max(42);  // above: raises
  const auto snapshot = telemetry::snapshotMetrics();
  if (!telemetry::kCompiledIn) {
    EXPECT_TRUE(snapshot.gauges.empty());
    return;
  }
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "test.gauge") {
      EXPECT_EQ(gauge.value, 42);
      return;
    }
  }
  FAIL() << "gauge not in snapshot";
}

TEST(TelemetryHistogram, CountSumMinMax) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const telemetry::Histogram h = telemetry::histogram("test.histogram");
  h.record(1);
  h.record(7);
  h.record(100);
  const auto snapshot = telemetry::snapshotMetrics();
  for (const auto& hist : snapshot.histograms) {
    if (hist.name == "test.histogram") {
      EXPECT_GE(hist.count, 3);
      EXPECT_GE(hist.sum, 108);
      EXPECT_LE(hist.min, 1);
      EXPECT_GE(hist.max, 100);
      return;
    }
  }
  FAIL() << "histogram not in snapshot";
}

TEST(TelemetrySpan, DisabledRecordsNothing) {
  telemetry::setTraceEnabled(false);
  telemetry::clearTrace();
  {
    telemetry::ScopedSpan span("test/disabled");
    telemetry::ScopedSpan dynamic(std::string("test/disabled_dynamic"));
  }
  EXPECT_TRUE(telemetry::snapshotTrace().empty());
}

TEST(TelemetrySpan, NestingIsLaminar) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::setTraceEnabled(true);
  telemetry::clearTrace();
  {
    telemetry::ScopedSpan outer("test/outer");
    {
      telemetry::ScopedSpan inner("test/inner");
    }
    {
      telemetry::ScopedSpan sibling(std::string("test/sibling"));
    }
  }
  telemetry::setTraceEnabled(false);
  const auto trace = telemetry::snapshotTrace();
  ASSERT_EQ(trace.size(), 3u);
  const telemetry::TraceEvent* outer = nullptr;
  const telemetry::TraceEvent* inner = nullptr;
  const telemetry::TraceEvent* sibling = nullptr;
  for (const auto& event : trace) {
    if (event.name == "test/outer") outer = &event;
    if (event.name == "test/inner") inner = &event;
    if (event.name == "test/sibling") sibling = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(outer->tid, inner->tid);
  // Children are contained in the parent interval...
  EXPECT_GE(inner->startNs, outer->startNs);
  EXPECT_LE(inner->startNs + inner->durNs, outer->startNs + outer->durNs);
  EXPECT_GE(sibling->startNs, outer->startNs);
  EXPECT_LE(sibling->startNs + sibling->durNs,
            outer->startNs + outer->durNs);
  // ...and siblings do not overlap.
  EXPECT_GE(sibling->startNs, inner->startNs + inner->durNs);
}

TEST(TelemetrySpan, WorkerThreadsGetDistinctTids) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::setTraceEnabled(true);
  telemetry::clearTrace();
  std::thread worker([]() { telemetry::ScopedSpan span("test/worker"); });
  worker.join();
  {
    telemetry::ScopedSpan span("test/main");
  }
  telemetry::setTraceEnabled(false);
  const auto trace = telemetry::snapshotTrace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_NE(trace[0].tid, trace[1].tid);
}

// Minimal structural JSON scan: brackets balance outside string literals
// and the document is a single object. Enough to catch a malformed
// exporter without a JSON dependency; scripts/check_trace_json.py does the
// full parse in CI.
bool balancedJsonObject(const std::string& text) {
  int depth = 0;
  bool inString = false;
  bool sawAny = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') {
      inString = true;
    } else if (c == '{' || c == '[') {
      ++depth;
      sawAny = true;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    } else if (depth == 0 && !std::isspace(static_cast<unsigned char>(c)) &&
               sawAny) {
      return false;  // trailing garbage after the root closes
    }
  }
  return sawAny && depth == 0 && !inString;
}

TEST(TelemetryExport, ChromeTraceJsonWellFormed) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::setTraceEnabled(true);
  telemetry::clearTrace();
  {
    telemetry::ScopedSpan span("test/export");
  }
  telemetry::setTraceEnabled(false);
  const std::string json = telemetry::chromeTraceJson();
  EXPECT_TRUE(balancedJsonObject(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test/export\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name
}

TEST(TelemetryExport, MetricsJsonWellFormedAndNonEmpty) {
  if (!telemetry::kCompiledIn) {
    EXPECT_TRUE(telemetry::metricsJson().empty());
    return;
  }
  const std::string json = telemetry::metricsJson();
  EXPECT_TRUE(balancedJsonObject(json)) << json;
  EXPECT_NE(json.find("\"name\":\"metrics_snapshot\""), std::string::npos);
  // The built-in exports counter guarantees a non-empty results[].
  EXPECT_NE(json.find("\"telemetry.exports\""), std::string::npos);
}

TEST(TelemetryDisabledBuild, ApiIsInert) {
  // The full API must be callable in both worlds; under OFF everything
  // returns empty.
  if (telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled in";
  EXPECT_TRUE(telemetry::snapshotMetrics().counters.empty());
  EXPECT_TRUE(telemetry::snapshotTrace().empty());
  EXPECT_TRUE(telemetry::metricsJson().empty());
  EXPECT_TRUE(telemetry::chromeTraceJson().empty());
  EXPECT_FALSE(telemetry::traceEnabled());
  telemetry::setTraceEnabled(true);
  EXPECT_FALSE(telemetry::traceEnabled());
  EXPECT_EQ(telemetry::droppedTraceEvents(), 0);
}

}  // namespace
}  // namespace lclgrid
