#include <gtest/gtest.h>

#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "local/graph_view.hpp"
#include "local/ids.hpp"
#include "local/mis.hpp"
#include "speedup/speedup.hpp"
#include "speedup/voronoi.hpp"
#include "synthesis/normal_form.hpp"
#include "synthesis/synthesizer.hpp"

namespace lclgrid::speedup {
namespace {

std::vector<std::uint8_t> misAnchors(const Torus2D& torus, int k,
                                     std::uint64_t seed) {
  auto mis = local::computeMis(local::l1PowerView(torus, k),
                               local::randomIds(torus.size(), seed));
  return {mis.inSet.begin(), mis.inSet.end()};
}

TEST(Voronoi, EveryNodeFindsAnAnchor) {
  Torus2D torus(24);
  auto anchors = misAnchors(torus, 3, 5);
  auto tiling = buildVoronoi(torus, anchors, 3);
  for (int v = 0; v < torus.size(); ++v) {
    int anchor = tiling.anchorOf[static_cast<std::size_t>(v)];
    ASSERT_GE(anchor, 0);
    EXPECT_TRUE(anchors[static_cast<std::size_t>(anchor)]);
    auto [dx, dy] = tiling.offset[static_cast<std::size_t>(v)];
    EXPECT_EQ(torus.shift(v, dx, dy), anchor);
    EXPECT_LE(std::abs(dx) + std::abs(dy), 3);
  }
}

TEST(Voronoi, AnchorsMapToThemselves) {
  Torus2D torus(20);
  auto anchors = misAnchors(torus, 2, 9);
  auto tiling = buildVoronoi(torus, anchors, 2);
  for (int v = 0; v < torus.size(); ++v) {
    if (anchors[static_cast<std::size_t>(v)]) {
      EXPECT_EQ(tiling.anchorOf[static_cast<std::size_t>(v)], v);
    }
  }
}

TEST(Voronoi, ThrowsWithoutCoverage) {
  Torus2D torus(16);
  std::vector<std::uint8_t> anchors(static_cast<std::size_t>(torus.size()), 0);
  anchors[0] = 1;
  EXPECT_THROW(buildVoronoi(torus, anchors, 2), std::invalid_argument);
}

class LocalIdUniqueness : public ::testing::TestWithParam<int> {};

TEST_P(LocalIdUniqueness, NoRepeatsWithinHalfK) {
  // The key property of the Theorem 2 proof: local coordinates never repeat
  // within L1 distance k/2 when anchors form an MIS of G^(k/2).
  int k = GetParam();
  Torus2D torus(6 * k);
  auto anchors = misAnchors(torus, k / 2, 11);
  auto tiling = buildVoronoi(torus, anchors, k / 2);
  auto ids = localIdentifiers(torus, tiling, k / 2);
  for (int v = 0; v < torus.size(); ++v) {
    for (int u : torus.l1Ball(v, k / 2)) {
      if (u == v) continue;
      EXPECT_NE(ids[static_cast<std::size_t>(u)],
                ids[static_cast<std::size_t>(v)])
          << "repeat at distance " << torus.l1(u, v) << " (k=" << k << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, LocalIdUniqueness, ::testing::Values(4, 6, 8));

TEST(Speedup, TransformsSynthesizedMisAlgorithm) {
  // Theorem 2 end-to-end: inner algorithm = the synthesized normal form for
  // MIS; B runs it with Voronoi local identifiers and the instance-size lie.
  auto lcl = problems::maximalIndependentSet();
  auto synthesis = synthesis::synthesize(lcl, {.maxK = 1});
  ASSERT_TRUE(synthesis.success);
  synthesis::NormalFormAlgorithm inner(*synthesis.rule);

  InnerAlgorithm innerFn = [&inner](const Torus2D& torus,
                                    const std::vector<std::uint64_t>& ids,
                                    int /*claimedN*/) {
    auto run = inner.execute(torus, ids);
    if (!run.solved) throw std::runtime_error(run.failure);
    return InnerRun{run.labels, run.rounds};
  };

  Torus2D torus(64);
  auto ids = local::randomIds(torus.size(), 21);
  auto result = speedUp(torus, ids, /*k=*/16, innerFn);
  ASSERT_TRUE(result.solved) << result.failure;
  EXPECT_TRUE(verify(torus, lcl, result.labels));
  EXPECT_GT(result.anchorRounds, 0);
  EXPECT_GT(result.innerRounds, 0);
}

TEST(Speedup, RejectsBadParameters) {
  Torus2D torus(32);
  auto ids = local::randomIds(torus.size(), 1);
  InnerAlgorithm trivial = [](const Torus2D& t, const std::vector<std::uint64_t>&,
                              int) {
    return InnerRun{std::vector<int>(static_cast<std::size_t>(t.size()), 0), 0};
  };
  EXPECT_THROW(speedUp(torus, ids, 3, trivial), std::invalid_argument);
  EXPECT_THROW(speedUp(torus, ids, 64, trivial), std::invalid_argument);
}

TEST(Speedup, GuaranteeFlagReflectsRuntimeBound) {
  Torus2D torus(48);
  auto ids = local::randomIds(torus.size(), 2);
  InnerAlgorithm constantTime = [](const Torus2D& t,
                                   const std::vector<std::uint64_t>&, int) {
    // A 1-round inner algorithm for the trivially solvable all-zero
    // independent-set problem.
    return InnerRun{std::vector<int>(static_cast<std::size_t>(t.size()), 0), 1};
  };
  auto result = speedUp(torus, ids, 24, constantTime);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(result.theoremGuarantee);  // 1 < 24/4 - 4
  EXPECT_TRUE(verify(torus, problems::independentSet(), result.labels));
}

}  // namespace
}  // namespace lclgrid::speedup
