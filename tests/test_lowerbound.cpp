#include <gtest/gtest.h>

#include <set>

#include "lcl/global_solver.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "lowerbound/orientation_invariant.hpp"
#include "lowerbound/qsum.hpp"
#include "lowerbound/three_colouring_invariant.hpp"

namespace lclgrid::lowerbound {
namespace {

TEST(QSum, VerifierChecksSumAndRange) {
  EXPECT_TRUE(verifyQSum({1, -1, 0, 1}, 1));
  EXPECT_FALSE(verifyQSum({1, -1, 0, 1}, 0));
  EXPECT_FALSE(verifyQSum({2, -1}, 1));
}

TEST(QSum, GlobalSolverSatisfiesAnyFeasibleTarget) {
  for (int n : {9, 10, 25}) {
    for (long long target : {-3, -1, 0, 1, 5}) {
      auto run = solveQSumGlobally(n, target);
      ASSERT_TRUE(run.solved);
      EXPECT_TRUE(verifyQSum(run.labels, target));
      EXPECT_GE(run.rounds, n / 2);
    }
  }
}

TEST(QSum, Theorem10Conditions) {
  EXPECT_TRUE(qSumConditionsHold(9, 1));
  EXPECT_FALSE(qSumConditionsHold(9, 2));   // even target, odd n
  EXPECT_FALSE(qSumConditionsHold(10, 6));  // |q| > n/2
  EXPECT_TRUE(qSumConditionsHold(10, 4));
}

// --- Section 9: greedy colourings and the row invariant ----------------------

std::vector<int> diagonalColouring(const Torus2D& torus) {
  std::vector<int> colours(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    colours[static_cast<std::size_t>(v)] = (torus.xOf(v) + torus.yOf(v)) % 3;
  }
  return colours;
}

TEST(Greedyify, ProducesGreedyColouring) {
  Torus2D torus(9);
  auto colours = makeGreedy(torus, diagonalColouring(torus));
  EXPECT_TRUE(verify(torus, problems::vertexColouring(3), colours));
  EXPECT_TRUE(isGreedyColouring(torus, colours));
}

TEST(Greedyify, KeepsAlreadyGreedyColouringsProper) {
  Torus2D torus(6);
  auto colours = makeGreedy(torus, diagonalColouring(torus));
  auto again = makeGreedy(torus, colours);
  EXPECT_TRUE(isGreedyColouring(torus, again));
}

class RowInvariantOnSatColourings
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RowInvariantOnSatColourings, Lemma12RowsAgreeAndLemma14Parity) {
  auto [n, seed] = GetParam();
  Torus2D torus(n);
  auto solved = solveGlobally(torus, problems::vertexColouring(3),
                              static_cast<std::uint64_t>(seed));
  ASSERT_TRUE(solved.feasible);
  auto colours = makeGreedy(torus, solved.labels);
  ASSERT_TRUE(isGreedyColouring(torus, colours));

  auto rows = allRowInvariants(torus, colours);
  for (int r = 1; r < n; ++r) {
    EXPECT_EQ(rows[static_cast<std::size_t>(r)], rows[0])
        << "row invariant differs at row " << r << " (n=" << n << ")";
  }
  long long s = rows[0];
  if (n % 2 == 1) {
    EXPECT_EQ(((s % 2) + 2) % 2, 1) << "s(n) must be odd";
  }
  EXPECT_LE(std::abs(s), n / 2);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, RowInvariantOnSatColourings,
    ::testing::Combine(::testing::Values(5, 6, 7, 8, 9),
                       ::testing::Values(1, 2, 3)));

TEST(RowInvariant, DiagonalColouringHasNonZeroInvariantOnOddTori) {
  // The (x+y) mod 3 colouring winds around the torus; its cycles cross every
  // row consistently, producing a non-zero s -- and different global
  // colourings realise different s, which is why no local algorithm can
  // produce all of them (the q-sum reduction).
  Torus2D torus(9);
  auto colours = makeGreedy(torus, diagonalColouring(torus));
  auto rows = allRowInvariants(torus, colours);
  for (int r = 1; r < torus.n(); ++r) {
    EXPECT_EQ(rows[static_cast<std::size_t>(r)], rows[0]);
  }
  EXPECT_NE(rows[0], 0);
}

TEST(RowInvariant, DistinctColouringsRealiseDistinctInvariants) {
  Torus2D torus(7);
  std::set<long long> values;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto solved = solveGlobally(torus, problems::vertexColouring(3), seed);
    ASSERT_TRUE(solved.feasible);
    auto colours = makeGreedy(torus, solved.labels);
    values.insert(rowInvariant(torus, colours, 0));
  }
  // Not a theorem, but overwhelmingly likely across seeds; the experiment
  // demonstrates that s is a genuine global degree of freedom.
  EXPECT_GE(values.size(), 1u);
  for (long long s : values) {
    EXPECT_EQ(((s % 2) + 2) % 2, 1);
    EXPECT_LE(std::abs(s), 7 / 2 + 1);
  }
}

// --- Theorem 25: the {0,3,4}-orientation invariant ---------------------------

class OrientationInvariant
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OrientationInvariant, VerticalRowSumsAgree) {
  auto [n, seed] = GetParam();
  Torus2D torus(n);
  auto lcl = problems::orientation({0, 3, 4});
  auto solved = solveGlobally(torus, lcl, static_cast<std::uint64_t>(seed));
  ASSERT_TRUE(solved.feasible) << "no {0,3,4}-orientation on n=" << n;
  ASSERT_TRUE(verify(torus, lcl, solved.labels));

  auto sums = allVerticalRowSums(torus, solved.labels);
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(sums[static_cast<std::size_t>(i)], sums[0])
        << "r(i) differs at i=" << i << " (n=" << n << ")";
  }
  EXPECT_LE(std::abs(sums[0]), n / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, OrientationInvariant,
    ::testing::Combine(::testing::Values(4, 5, 6, 7),
                       ::testing::Values(1, 2)));

TEST(OrientationInvariant, InDegreesMatchVerifierSemantics) {
  Torus2D torus(6);
  // Input orientation: everything points north/east -> in-degree 2 at all.
  std::vector<int> labels(static_cast<std::size_t>(torus.size()),
                          problems::orientationLabel(true, true));
  auto degrees = inDegrees(torus, labels);
  for (int d : degrees) EXPECT_EQ(d, 2);
}

TEST(OrientationInvariant, ZeroVerticesGetLabelZero) {
  Torus2D torus(5);
  auto lcl = problems::orientation({0, 3, 4});
  auto solved = solveGlobally(torus, lcl, 1);
  ASSERT_TRUE(solved.feasible);
  auto degree = inDegrees(torus, solved.labels);
  for (int x = 0; x < torus.n(); ++x) {
    for (int i = 0; i < torus.n(); ++i) {
      int lower = torus.id(x, i);
      int upper = torus.id(x, i + 1);
      if (degree[static_cast<std::size_t>(lower)] == 0 ||
          degree[static_cast<std::size_t>(upper)] == 0) {
        EXPECT_EQ(verticalEdgeLabel(torus, degree, solved.labels, x, i), 0);
      }
    }
  }
}

}  // namespace
}  // namespace lclgrid::lowerbound
