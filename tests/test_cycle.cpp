#include <gtest/gtest.h>

#include "cycle/classifier.hpp"
#include "cycle/cycle_lcl.hpp"
#include "cycle/cycle_synthesis.hpp"
#include "cycle/neighbourhood_graph.hpp"
#include "local/ids.hpp"

namespace lclgrid::cycle {
namespace {

TEST(CycleLcl, ThreeColouringWindows) {
  auto lcl = cycleColouring(3);
  EXPECT_TRUE(lcl.allowsWindow({0, 1, 2}));
  EXPECT_TRUE(lcl.allowsWindow({0, 1, 0}));
  EXPECT_FALSE(lcl.allowsWindow({0, 0, 1}));
  EXPECT_FALSE(lcl.allowsWindow({1, 2, 2}));
}

TEST(CycleLcl, VerifiesWholeCycle) {
  auto lcl = cycleColouring(3);
  EXPECT_TRUE(lcl.verifyCycle({0, 1, 2, 0, 1, 2}));
  EXPECT_TRUE(lcl.verifyCycle({0, 1, 0, 1, 0, 2}));
  EXPECT_FALSE(lcl.verifyCycle({0, 1, 0, 1, 0, 0}));  // wraps into 0,0
  // Odd cycle is 2-colourable? No: wrap makes adjacent equal.
  auto two = cycleColouring(2);
  EXPECT_TRUE(two.verifyCycle({0, 1, 0, 1}));
  EXPECT_FALSE(two.verifyCycle({0, 1, 0, 1, 0}));
}

TEST(NeighbourhoodGraph, FigureTwoStructure) {
  // 3-colouring: 6 proper pairs as nodes, each with out-degree 2 (third
  // label or back) -- matches Figure 2.
  NeighbourhoodGraph graph(cycleColouring(3));
  int nonIsolated = 0;
  int edges = 0;
  for (int v = 0; v < graph.nodeCount(); ++v) {
    if (!graph.successors(v).empty()) ++nonIsolated;
    edges += static_cast<int>(graph.successors(v).size());
  }
  EXPECT_EQ(nonIsolated, 6);
  EXPECT_EQ(edges, 12);  // each of the 6 nodes has exactly 2 successors
  EXPECT_FALSE(graph.hasSelfLoop());
  EXPECT_TRUE(graph.hasCycle());
}

TEST(NeighbourhoodGraph, MisFlexibleStateMatchesPaper) {
  // Figure 2: in the MIS problem, state 00 is flexible with walks of length
  // 3 and 5 and hence of every length >= some k <= 8.
  NeighbourhoodGraph graph(cycleMaximalIndependentSet());
  int node00 = graph.nodeOf({0, 0});
  EXPECT_TRUE(graph.isFlexible(node00));
  EXPECT_TRUE(graph.closedWalk(node00, 3).has_value());
  EXPECT_FALSE(graph.closedWalk(node00, 4).has_value());
  EXPECT_TRUE(graph.closedWalk(node00, 5).has_value());
  EXPECT_TRUE(graph.closedWalk(node00, 8).has_value());
  auto flexibility = graph.minimumFlexibility();
  ASSERT_TRUE(flexibility.has_value());
  EXPECT_LE(flexibility->flexibility, 8);
}

TEST(NeighbourhoodGraph, TwoColouringIsRigid) {
  NeighbourhoodGraph graph(cycleColouring(2));
  for (int v = 0; v < graph.nodeCount(); ++v) {
    EXPECT_FALSE(graph.isFlexible(v));
  }
  EXPECT_TRUE(graph.hasCycle());
  EXPECT_FALSE(graph.hasSelfLoop());
}

TEST(NeighbourhoodGraph, IndependentSetHasSelfLoop) {
  NeighbourhoodGraph graph(cycleIndependentSet());
  EXPECT_TRUE(graph.hasSelfLoop());
}

TEST(NeighbourhoodGraph, ClosedWalksAreValidWalks) {
  NeighbourhoodGraph graph(cycleMaximalIndependentSet());
  int node = graph.nodeOf({0, 0});
  for (int length : {3, 5, 6, 7, 8, 9, 10}) {
    auto walk = graph.closedWalk(node, length);
    if (!walk) continue;
    ASSERT_EQ(static_cast<int>(walk->size()), length + 1);
    EXPECT_EQ(walk->front(), node);
    EXPECT_EQ(walk->back(), node);
    for (int t = 0; t < length; ++t) {
      const auto& succ = graph.successors((*walk)[static_cast<std::size_t>(t)]);
      EXPECT_NE(std::find(succ.begin(), succ.end(),
                          (*walk)[static_cast<std::size_t>(t + 1)]),
                succ.end());
    }
  }
}

// --- Figure 2 classification table ------------------------------------------

TEST(Classifier, FigureTwoClassifications) {
  EXPECT_EQ(classifyCycleLcl(cycleIndependentSet()).complexity,
            ComplexityClass::Constant);
  EXPECT_EQ(classifyCycleLcl(cycleColouring(3)).complexity,
            ComplexityClass::LogStar);
  EXPECT_EQ(classifyCycleLcl(cycleMaximalIndependentSet()).complexity,
            ComplexityClass::LogStar);
  EXPECT_EQ(classifyCycleLcl(cycleColouring(2)).complexity,
            ComplexityClass::Global);
}

TEST(Classifier, MoreProblems) {
  EXPECT_EQ(classifyCycleLcl(cycleMaximalMatching()).complexity,
            ComplexityClass::LogStar);
  EXPECT_EQ(classifyCycleLcl(cycleColouring(4)).complexity,
            ComplexityClass::LogStar);
  // All-marked is trivially constant.
  EXPECT_EQ(classifyCycleLcl(cycleDominatingMarks(1)).complexity,
            ComplexityClass::Constant);
  EXPECT_EQ(classifyCycleLcl(cycleDominatingMarks(3)).complexity,
            ComplexityClass::Constant);
  // Exact spacing is rigid: circuits exist only with period-divisible length.
  EXPECT_EQ(classifyCycleLcl(cycleExactSpacing(3)).complexity,
            ComplexityClass::Global);
  // 1-colouring has no feasible window at all.
  EXPECT_EQ(classifyCycleLcl(cycleColouring(1)).complexity,
            ComplexityClass::Unsolvable);
}

// --- synthesized algorithms --------------------------------------------------

class CycleSynthesisRun
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CycleSynthesisRun, ThreeColouringSolvesAndVerifies) {
  auto [n, seed] = GetParam();
  auto lcl = cycleColouring(3);
  CycleAlgorithm algorithm(lcl);
  auto ids = local::randomIds(n, static_cast<std::uint64_t>(seed) + 1);
  auto run = algorithm.execute(ids);
  ASSERT_TRUE(run.solved);
  EXPECT_TRUE(lcl.verifyCycle(run.labels));
  EXPECT_LT(run.rounds, n);  // genuinely sublinear at these sizes
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, CycleSynthesisRun,
    ::testing::Combine(::testing::Values(64, 129, 500, 1001),
                       ::testing::Values(0, 1, 2)));

TEST(CycleSynthesis, MisAlgorithmSolves) {
  auto lcl = cycleMaximalIndependentSet();
  CycleAlgorithm algorithm(lcl);
  for (int n : {50, 121, 256}) {
    auto ids = local::randomIds(n, 7);
    auto run = algorithm.execute(ids);
    ASSERT_TRUE(run.solved) << n;
    EXPECT_TRUE(lcl.verifyCycle(run.labels)) << n;
  }
}

TEST(CycleSynthesis, MaximalMatchingAlgorithmSolves) {
  auto lcl = cycleMaximalMatching();
  CycleAlgorithm algorithm(lcl);
  auto ids = local::randomIds(200, 3);
  auto run = algorithm.execute(ids);
  ASSERT_TRUE(run.solved);
  EXPECT_TRUE(lcl.verifyCycle(run.labels));
}

TEST(CycleSynthesis, ConstantProblemUsesZeroRounds) {
  CycleAlgorithm algorithm(cycleIndependentSet());
  auto ids = local::randomIds(100, 1);
  auto run = algorithm.execute(ids);
  ASSERT_TRUE(run.solved);
  EXPECT_EQ(run.rounds, 0);
  EXPECT_TRUE(cycleIndependentSet().verifyCycle(run.labels));
}

TEST(CycleSynthesis, GlobalTwoColouringSolvesEvenFailsOdd) {
  auto lcl = cycleColouring(2);
  CycleAlgorithm algorithm(lcl);
  {
    auto run = algorithm.execute(local::randomIds(100, 1));
    ASSERT_TRUE(run.solved);
    EXPECT_TRUE(lcl.verifyCycle(run.labels));
    EXPECT_GE(run.rounds, 50);  // gathered the whole cycle
  }
  {
    auto run = algorithm.execute(local::randomIds(101, 1));
    EXPECT_FALSE(run.solved);
  }
}

TEST(CycleSynthesis, LogStarRoundsGrowSlowly) {
  // The round count of the synthesized MIS-based algorithm must be flat-ish:
  // going from n=64 to n=4096 may add only a few rounds.
  auto lcl = cycleColouring(3);
  CycleAlgorithm algorithm(lcl);
  auto small = algorithm.execute(local::randomIds(64, 5));
  auto large = algorithm.execute(local::randomIds(4096, 5));
  ASSERT_TRUE(small.solved);
  ASSERT_TRUE(large.solved);
  EXPECT_LE(large.rounds, small.rounds + 20);
  EXPECT_LT(large.rounds, 200);
}

}  // namespace
}  // namespace lclgrid::cycle
