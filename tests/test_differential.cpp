// Differential suite for the incremental SAT engine (PR 3): assumption-based
// incremental classification must agree with fresh-solve-per-instance -- and
// with the PR 2 fingerprint-cached family_sweep path -- over the whole
// problem registry, at 1/2/8 engine threads.
//
// "Agree" is checked on a canonical rendering of the oracle report that
// covers every semantic field: complexity verdict, trivial label, the full
// attempt ladder (k, shape, tile count, clause count, outcome, failure
// reason), rule presence/shape/size/label-range, and every probe verdict.
// Wall times and SAT conflict counts are deliberately excluded: the two
// regimes solve different clause databases by design (that is the point),
// so their search statistics differ while every verdict must not.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "engine/family_sweep.hpp"
#include "grid/torus2d.hpp"
#include "lcl/global_solver.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "synthesis/oracle.hpp"

using namespace lclgrid;

namespace {

/// Every concrete problem class of the paper with a compiled table; same
/// family as tests/test_engine.cpp and tests/test_lcl_table.cpp.
std::vector<GridLcl> problemRegistry() {
  std::vector<GridLcl> registry;
  for (int k = 2; k <= 5; ++k) registry.push_back(problems::vertexColouring(k));
  registry.push_back(problems::maximalIndependentSet());
  registry.push_back(problems::independentSet());
  registry.push_back(problems::maximalMatching());
  registry.push_back(problems::edgeColouring(3));
  registry.push_back(problems::edgeColouring(4));
  registry.push_back(problems::orientation({2}));
  registry.push_back(problems::orientation({1, 3}));
  registry.push_back(problems::orientation({0, 4}));
  registry.push_back(problems::orientation({0, 1, 3}));
  registry.push_back(problems::noHorizontalOnePair());
  registry.push_back(problems::weakColouring(3, 1));
  registry.push_back(problems::weakColouring(2, 4));
  return registry;
}

std::string canonical(const synthesis::OracleReport& report, int sigma) {
  std::ostringstream os;
  os << synthesis::gridComplexityName(report.complexity);
  os << "|trivial=" << report.trivialLabel;
  os << "|attempts=[";
  for (const auto& attempt : report.attempts) {
    os << attempt.k << ":" << attempt.shape.height << "x"
       << attempt.shape.width << ":" << attempt.tileCount << ":"
       << attempt.clauseCount << ":"
       << (attempt.success ? "sat" : attempt.failureReason) << ";";
  }
  os << "]|rule=";
  if (report.rule) {
    bool labelsOk = true;
    for (int label : report.rule->labelOf) {
      if (label < 0 || label >= sigma) labelsOk = false;
    }
    os << "k" << report.rule->k << ":" << report.rule->shape.height << "x"
       << report.rule->shape.width << ":" << report.rule->labelOf.size()
       << ":" << (labelsOk ? "in-range" : "OUT-OF-RANGE");
  } else {
    os << "none";
  }
  os << "|feasibility=[";
  for (const auto& [n, feasible] : report.feasibility) {
    os << n << ":" << (feasible ? "yes" : "no") << ";";
  }
  os << "]";
  return os.str();
}

synthesis::OracleOptions oracleOptions(bool incremental) {
  synthesis::OracleOptions options;
  options.synthesis.maxK = 1;
  options.synthesis.tryWiderShapes = false;
  options.synthesis.incremental = incremental;
  // n=3 and n=4 probe one odd and one even torus cheaply; the odd-n parity
  // obstructions at n=5 cost millions of resolution conflicts and belong
  // to the benches, not here.
  options.probeSizes = {3, 4};
  return options;
}

/// Fresh-solver-per-instance reference classification of the registry.
std::vector<std::string> freshReference(const std::vector<GridLcl>& registry) {
  std::vector<std::string> reference;
  reference.reserve(registry.size());
  for (const GridLcl& lcl : registry) {
    reference.push_back(canonical(
        synthesis::classifyOnGrid(lcl, oracleOptions(/*incremental=*/false)),
        lcl.sigma()));
  }
  return reference;
}

}  // namespace

TEST(Differential, IncrementalClassificationMatchesFreshOnRegistry) {
  auto registry = problemRegistry();
  auto reference = freshReference(registry);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    auto incremental = synthesis::classifyOnGrid(
        registry[i], oracleOptions(/*incremental=*/true));
    EXPECT_EQ(canonical(incremental, registry[i].sigma()), reference[i])
        << registry[i].name();
  }
}

TEST(Differential, SweepMatchesFreshAtAllThreadCountsAndCacheModes) {
  auto registry = problemRegistry();
  auto reference = freshReference(registry);

  for (int threads : {1, 2, 8}) {
    for (bool incremental : {false, true}) {
      for (bool cache : {false, true}) {
        engine::SweepOptions options;
        options.oracle = oracleOptions(incremental);
        options.engine.threads = threads;
        options.cacheByFingerprint = cache;
        auto sweep = engine::sweepFamily(registry, options);
        ASSERT_EQ(sweep.entries.size(), registry.size());
        for (std::size_t i = 0; i < registry.size(); ++i) {
          ASSERT_NE(sweep.entries[i].report, nullptr);
          EXPECT_EQ(canonical(*sweep.entries[i].report, registry[i].sigma()),
                    reference[i])
              << registry[i].name() << " threads=" << threads
              << " incremental=" << incremental << " cache=" << cache;
        }
        // The PR 2 cache path must still collapse the duplicate relation
        // (vertex-2-colouring == weak-2-colouring-4) in both regimes.
        if (cache) {
          EXPECT_GE(sweep.cacheHits, 1)
              << "threads=" << threads << " incremental=" << incremental;
        } else {
          EXPECT_EQ(sweep.cacheHits, 0);
        }
      }
    }
  }
}

TEST(Differential, SynthesisLadderAttemptsAgreeShapeByShape) {
  // Per-attempt agreement, not just end-to-end: for every registry problem
  // the incremental ladder's attempt at each (k, shape) must reach the
  // verdict of a fresh solver on that exact instance.
  for (const GridLcl& lcl : problemRegistry()) {
    synthesis::IncrementalSynthesizer live(lcl);
    for (int k = 1; k <= 2; ++k) {
      for (const auto& shape :
           synthesis::candidateShapes(lcl, k, /*wider=*/false)) {
        auto fresh = synthesis::synthesizeForShape(lcl, k, shape);
        auto incremental = live.attemptShape(k, shape);
        EXPECT_EQ(incremental.success, fresh.success)
            << lcl.name() << " k=" << k;
        EXPECT_EQ(incremental.failureReason, fresh.failureReason)
            << lcl.name() << " k=" << k;
        EXPECT_EQ(incremental.tileCount, fresh.tileCount);
        EXPECT_EQ(incremental.clauseCount, fresh.clauseCount);
      }
    }
  }
}

TEST(Differential, ProberMatchesSolveGloballyOnRegistry) {
  for (const GridLcl& lcl : problemRegistry()) {
    FeasibilityProber prober(lcl);
    for (int n : {3, 4}) {
      Torus2D torus(n);
      auto fresh = solveGlobally(torus, lcl);
      auto probe = prober.probe(n);
      ASSERT_TRUE(fresh.decided);
      ASSERT_TRUE(probe.decided);
      EXPECT_EQ(probe.feasible, fresh.feasible) << lcl.name() << " n=" << n;
      if (probe.feasible) {
        // The prober's model is a genuine solution of the instance.
        EXPECT_EQ(static_cast<int>(probe.labels.size()), torus.size());
        EXPECT_TRUE(verify(torus, lcl, probe.labels)) << lcl.name();
      }
    }
    // Re-probing a size reuses its encoded block and stays consistent.
    auto again = prober.probe(4);
    EXPECT_EQ(again.feasible, prober.probe(4).feasible);
  }
}
