#include <gtest/gtest.h>

#include <vector>

#include "sat/cnf.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "support/numeric.hpp"

namespace lclgrid::sat {
namespace {

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver solver;
  EXPECT_EQ(solver.solve(), Result::Sat);
}

TEST(SatSolver, SingleUnit) {
  Solver solver;
  int x = solver.newVar();
  solver.addClause({x});
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_TRUE(solver.modelValue(x));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  Solver solver;
  int x = solver.newVar();
  solver.addClause({x});
  solver.addClause({-x});
  EXPECT_EQ(solver.solve(), Result::Unsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver solver;
  solver.newVar();
  solver.addClause({});
  EXPECT_EQ(solver.solve(), Result::Unsat);
}

TEST(SatSolver, TautologiesAreIgnored) {
  Solver solver;
  int x = solver.newVar();
  solver.addClause({x, -x});
  EXPECT_EQ(solver.solve(), Result::Sat);
}

TEST(SatSolver, SimpleImplicationChain) {
  Solver solver;
  int a = solver.newVar(), b = solver.newVar(), c = solver.newVar();
  solver.addClause({a});
  solver.addClause({-a, b});
  solver.addClause({-b, c});
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_TRUE(solver.modelValue(a));
  EXPECT_TRUE(solver.modelValue(b));
  EXPECT_TRUE(solver.modelValue(c));
}

TEST(SatSolver, XorChainForcesBacktracking) {
  // x1 xor x2 xor ... xor x8 = 1 encoded clause-wise with auxiliary parity
  // variables; satisfiable, requires search.
  Solver solver;
  const int n = 8;
  std::vector<int> x(n);
  for (int i = 0; i < n; ++i) x[i] = solver.newVar();
  // parity[i] = x0 xor ... xor xi
  std::vector<int> parity(n);
  parity[0] = x[0];
  for (int i = 1; i < n; ++i) {
    int p = solver.newVar();
    // p <-> parity[i-1] xor x[i]
    solver.addClause({-p, parity[i - 1], x[i]});
    solver.addClause({-p, -parity[i - 1], -x[i]});
    solver.addClause({p, -parity[i - 1], x[i]});
    solver.addClause({p, parity[i - 1], -x[i]});
    parity[i] = p;
  }
  solver.addClause({parity[n - 1]});
  ASSERT_EQ(solver.solve(), Result::Sat);
  bool total = false;
  for (int i = 0; i < n; ++i) total ^= solver.modelValue(x[i]);
  EXPECT_TRUE(total);
}

// Pigeonhole principle: n+1 pigeons into n holes, classic hard UNSAT family.
void buildPigeonhole(Solver& solver, int holes) {
  int pigeons = holes + 1;
  std::vector<std::vector<int>> var(
      static_cast<std::size_t>(pigeons),
      std::vector<int>(static_cast<std::size_t>(holes)));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      var[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)] =
          solver.newVar();
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<int> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(var[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]);
    }
    solver.addClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        solver.addClause(
            {-var[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)],
             -var[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]});
      }
    }
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver solver;
    buildPigeonhole(solver, holes);
    EXPECT_EQ(solver.solve(), Result::Unsat) << "holes=" << holes;
  }
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  Solver solver;
  buildPigeonhole(solver, 8);
  EXPECT_EQ(solver.solve(2), Result::Unknown);
}

// Cross-check against brute force on random small 3-SAT instances.
bool bruteForceSat(int numVars, const std::vector<std::vector<int>>& clauses) {
  for (int assignment = 0; assignment < (1 << numVars); ++assignment) {
    bool allSatisfied = true;
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (int lit : clause) {
        int var = std::abs(lit) - 1;
        bool value = (assignment >> var) & 1;
        if ((lit > 0) == value) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        allSatisfied = false;
        break;
      }
    }
    if (allSatisfied) return true;
  }
  return false;
}

class RandomThreeSat : public ::testing::TestWithParam<int> {};

TEST_P(RandomThreeSat, AgreesWithBruteForce) {
  const int seed = GetParam();
  SplitMix64 rng(static_cast<std::uint64_t>(seed));
  const int numVars = 12;
  // Near the 3-SAT phase transition (~4.27 clauses/var) to get a mix of
  // satisfiable and unsatisfiable instances.
  const int numClauses = 51;
  std::vector<std::vector<int>> clauses;
  for (int i = 0; i < numClauses; ++i) {
    std::vector<int> clause;
    for (int j = 0; j < 3; ++j) {
      int var = static_cast<int>(rng.nextBelow(numVars)) + 1;
      bool negated = rng.nextBelow(2) == 1;
      clause.push_back(negated ? -var : var);
    }
    clauses.push_back(clause);
  }

  Solver solver;
  for (int i = 0; i < numVars; ++i) solver.newVar();
  for (const auto& clause : clauses) solver.addClause(clause);
  Result result = solver.solve();
  bool expected = bruteForceSat(numVars, clauses);
  EXPECT_EQ(result == Result::Sat, expected);

  if (result == Result::Sat) {
    // The model must actually satisfy every clause.
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (int lit : clause) {
        if (solver.modelValue(std::abs(lit)) == (lit > 0)) satisfied = true;
      }
      EXPECT_TRUE(satisfied);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomThreeSat, ::testing::Range(0, 40));

TEST(SatSolver, GraphColouringTriangle) {
  // Triangle with 2 colours: UNSAT; with 3 colours: SAT.
  for (int colours = 2; colours <= 3; ++colours) {
    Solver solver;
    std::vector<DomainVar> node;
    for (int v = 0; v < 3; ++v) node.push_back(makeDomainVar(solver, colours));
    for (int u = 0; u < 3; ++u) {
      for (int v = u + 1; v < 3; ++v) {
        for (int c = 0; c < colours; ++c) {
          solver.addClause({node[static_cast<std::size_t>(u)].isNot(c),
                            node[static_cast<std::size_t>(v)].isNot(c)});
        }
      }
    }
    EXPECT_EQ(solver.solve() == Result::Sat, colours == 3);
  }
}

TEST(CnfBuilder, DomainVarDecodes) {
  Solver solver;
  DomainVar dv = makeDomainVar(solver, 5);
  solver.addClause({dv.is(3)});
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_EQ(dv.decode(solver), 3);
}

TEST(CnfBuilder, ExactlyOneExcludesPairs) {
  Solver solver;
  DomainVar dv = makeDomainVar(solver, 4);
  solver.addClause({dv.is(1)});
  solver.addClause({dv.is(2)});
  EXPECT_EQ(solver.solve(), Result::Unsat);
}

TEST(Dimacs, ParseAndSolveRoundTrip) {
  const std::string text =
      "c example\n"
      "p cnf 3 3\n"
      "1 2 0\n"
      "-1 3 0\n"
      "-2 -3 0\n";
  Cnf cnf = parseDimacsString(text);
  EXPECT_EQ(cnf.numVars, 3);
  ASSERT_EQ(cnf.clauses.size(), 3u);
  Solver solver;
  loadInto(cnf, solver);
  EXPECT_EQ(solver.solve(), Result::Sat);

  std::string rendered = toDimacsString(cnf);
  Cnf reparsed = parseDimacsString(rendered);
  EXPECT_EQ(reparsed.clauses, cnf.clauses);
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(parseDimacsString("1 2 0\n"), std::runtime_error);
  EXPECT_THROW(parseDimacsString("p cnf 1 1\n2 0\n"), std::runtime_error);
  EXPECT_THROW(parseDimacsString("p cnf 2 1\n1 2\n"), std::runtime_error);
}

TEST(SatSolver, StatisticsAdvance) {
  Solver solver;
  buildPigeonhole(solver, 5);
  EXPECT_EQ(solver.solve(), Result::Unsat);
  EXPECT_GT(solver.conflicts(), 0);
  EXPECT_GT(solver.decisions(), 0);
  EXPECT_GT(solver.propagations(), 0);
}

}  // namespace
}  // namespace lclgrid::sat
