#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sat/cnf.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "support/numeric.hpp"

namespace lclgrid::sat {
namespace {

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver solver;
  EXPECT_EQ(solver.solve(), Result::Sat);
}

TEST(SatSolver, SingleUnit) {
  Solver solver;
  int x = solver.newVar();
  solver.addClause({x});
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_TRUE(solver.modelValue(x));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  Solver solver;
  int x = solver.newVar();
  solver.addClause({x});
  solver.addClause({-x});
  EXPECT_EQ(solver.solve(), Result::Unsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver solver;
  solver.newVar();
  solver.addClause({});
  EXPECT_EQ(solver.solve(), Result::Unsat);
}

TEST(SatSolver, TautologiesAreIgnored) {
  Solver solver;
  int x = solver.newVar();
  solver.addClause({x, -x});
  EXPECT_EQ(solver.solve(), Result::Sat);
}

TEST(SatSolver, SimpleImplicationChain) {
  Solver solver;
  int a = solver.newVar(), b = solver.newVar(), c = solver.newVar();
  solver.addClause({a});
  solver.addClause({-a, b});
  solver.addClause({-b, c});
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_TRUE(solver.modelValue(a));
  EXPECT_TRUE(solver.modelValue(b));
  EXPECT_TRUE(solver.modelValue(c));
}

TEST(SatSolver, XorChainForcesBacktracking) {
  // x1 xor x2 xor ... xor x8 = 1 encoded clause-wise with auxiliary parity
  // variables; satisfiable, requires search.
  Solver solver;
  const int n = 8;
  std::vector<int> x(n);
  for (int i = 0; i < n; ++i) x[i] = solver.newVar();
  // parity[i] = x0 xor ... xor xi
  std::vector<int> parity(n);
  parity[0] = x[0];
  for (int i = 1; i < n; ++i) {
    int p = solver.newVar();
    // p <-> parity[i-1] xor x[i]
    solver.addClause({-p, parity[i - 1], x[i]});
    solver.addClause({-p, -parity[i - 1], -x[i]});
    solver.addClause({p, -parity[i - 1], x[i]});
    solver.addClause({p, parity[i - 1], -x[i]});
    parity[i] = p;
  }
  solver.addClause({parity[n - 1]});
  ASSERT_EQ(solver.solve(), Result::Sat);
  bool total = false;
  for (int i = 0; i < n; ++i) total ^= solver.modelValue(x[i]);
  EXPECT_TRUE(total);
}

// Pigeonhole principle: n+1 pigeons into n holes, classic hard UNSAT family.
void buildPigeonhole(Solver& solver, int holes) {
  int pigeons = holes + 1;
  std::vector<std::vector<int>> var(
      static_cast<std::size_t>(pigeons),
      std::vector<int>(static_cast<std::size_t>(holes)));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      var[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)] =
          solver.newVar();
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<int> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(var[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]);
    }
    solver.addClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        solver.addClause(
            {-var[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)],
             -var[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]});
      }
    }
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver solver;
    buildPigeonhole(solver, holes);
    EXPECT_EQ(solver.solve(), Result::Unsat) << "holes=" << holes;
  }
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  Solver solver;
  buildPigeonhole(solver, 8);
  EXPECT_EQ(solver.solve(2), Result::Unknown);
}

TEST(SatSolver, UnknownLeavesSolverUsable) {
  // The documented budget-exhaustion contract: after Unknown the solver is
  // back at level 0 with every clause (original and learnt) retained, and
  // any later call -- newVar, addClause, re-solve with a bigger budget --
  // behaves as if the budgeted call had never been interrupted.
  Solver solver;
  buildPigeonhole(solver, 6);
  ASSERT_EQ(solver.solve(5), Result::Unknown);
  const int varsAfterUnknown = solver.numVars();
  const std::int64_t learntAfterUnknown = solver.learntClauses();
  EXPECT_GT(solver.conflicts(), 0);
  EXPECT_TRUE(solver.ok());  // not proven unsat yet

  // Re-solving resumes from the learnt state and still proves Unsat.
  EXPECT_EQ(solver.solve(), Result::Unsat);
  EXPECT_EQ(solver.numVars(), varsAfterUnknown);
  EXPECT_GE(solver.learntClauses(), learntAfterUnknown);
  EXPECT_TRUE(solver.conflictCore().empty());  // unsat without assumptions
}

TEST(SatSolver, UnknownThenGrowFormula) {
  // Interrupt a satisfiable search, then extend the formula; the extension
  // must constrain the eventual model exactly as on a fresh solver.
  Solver solver;
  const int n = 14;
  std::vector<int> x(static_cast<std::size_t>(n));
  for (int& v : x) v = solver.newVar();
  lclgrid::SplitMix64 rng(99);
  for (int c = 0; c < 58; ++c) {
    std::vector<int> clause;
    for (int j = 0; j < 3; ++j) {
      int var = static_cast<int>(rng.nextBelow(n)) + 1;
      clause.push_back(rng.nextBelow(2) ? var : -var);
    }
    solver.addClause(clause);
  }
  (void)solver.solve(1);  // probably Unknown; any result leaves level 0
  int y = solver.newVar();
  solver.addClause({y});
  solver.addClause({-y, x[0]});
  Result result = solver.solve();
  if (result == Result::Sat) {
    EXPECT_TRUE(solver.modelValue(y));
    EXPECT_TRUE(solver.modelValue(x[0]));
  }
}

TEST(SatSolver, BudgetedStagesAgreeWithSingleSolve) {
  // Budget-staged deepening (the family-sweep pattern): repeatedly re-solve
  // with a growing budget until decided; the verdict must match a fresh
  // unbudgeted solver on the same formula.
  for (int holes = 4; holes <= 6; ++holes) {
    Solver staged;
    buildPigeonhole(staged, holes);
    Result result = Result::Unknown;
    std::int64_t budget = 4;
    while (result == Result::Unknown) {
      result = staged.solve(budget);
      budget *= 2;
    }
    EXPECT_EQ(result, Result::Unsat) << "holes=" << holes;
  }
}

TEST(SatSolver, SolveIsRepeatableAfterSat) {
  // A Sat call unwinds its trail; the solver accepts further clauses and
  // the next model honours them.
  Solver solver;
  int a = solver.newVar(), b = solver.newVar();
  solver.addClause({a, b});
  ASSERT_EQ(solver.solve(), Result::Sat);
  ASSERT_EQ(solver.solve(), Result::Sat);  // idempotent
  solver.addClause({-a});
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_FALSE(solver.modelValue(a));
  EXPECT_TRUE(solver.modelValue(b));
}

TEST(SatSolver, ReserveVarsCreatesMissingVariables) {
  Solver solver;
  solver.newVar();
  solver.reserveVars(5);
  EXPECT_EQ(solver.numVars(), 5);
  solver.reserveVars(3);  // no-op when already larger
  EXPECT_EQ(solver.numVars(), 5);
  solver.addClause({5});
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_TRUE(solver.modelValue(5));
}

// --- assumption-based solving --------------------------------------------

TEST(SatAssumptions, SatUnderAssumptionsBindsThem) {
  Solver solver;
  int a = solver.newVar(), b = solver.newVar(), c = solver.newVar();
  solver.addClause({-a, b});
  solver.addClause({-b, c});
  ASSERT_EQ(solver.solve({a}, -1), Result::Sat);
  EXPECT_TRUE(solver.modelValue(a));
  EXPECT_TRUE(solver.modelValue(b));
  EXPECT_TRUE(solver.modelValue(c));
  // The assumption does not persist: the formula alone allows !a.
  ASSERT_EQ(solver.solve({-a}, -1), Result::Sat);
  EXPECT_FALSE(solver.modelValue(a));
}

TEST(SatAssumptions, UnsatUnderAssumptionsKeepsSolverOk) {
  Solver solver;
  int a = solver.newVar(), b = solver.newVar();
  solver.addClause({-a, b});
  ASSERT_EQ(solver.solve({a, -b}, -1), Result::Unsat);
  EXPECT_TRUE(solver.ok());
  // The core names a guilty subset of the assumptions.
  for (int lit : solver.conflictCore()) {
    EXPECT_TRUE(lit == a || lit == -b) << lit;
  }
  EXPECT_FALSE(solver.conflictCore().empty());
  // The same solver solves satisfiable assumption sets afterwards.
  ASSERT_EQ(solver.solve({a, b}, -1), Result::Sat);
  ASSERT_EQ(solver.solve({-a, -b}, -1), Result::Sat);
}

TEST(SatAssumptions, ContradictoryAssumptionsGiveBothInCore) {
  Solver solver;
  int a = solver.newVar();
  solver.newVar();
  ASSERT_EQ(solver.solve({a, -a}, -1), Result::Unsat);
  std::vector<int> core = solver.conflictCore();
  std::sort(core.begin(), core.end());
  EXPECT_EQ(core, (std::vector<int>{-a, a}));
  EXPECT_TRUE(solver.ok());
}

TEST(SatAssumptions, FormulaUnsatGivesEmptyCore) {
  Solver solver;
  int a = solver.newVar();
  solver.addClause({a});
  solver.addClause({-a});
  EXPECT_EQ(solver.solve({a}, -1), Result::Unsat);
  EXPECT_TRUE(solver.conflictCore().empty());
  EXPECT_FALSE(solver.ok());
}

TEST(SatAssumptions, AssumptionFalsifiedAtLevelZero) {
  Solver solver;
  int a = solver.newVar();
  solver.addClause({-a});  // unit: a is false at level 0
  ASSERT_EQ(solver.solve({a}, -1), Result::Unsat);
  EXPECT_EQ(solver.conflictCore(), std::vector<int>{a});
  EXPECT_TRUE(solver.ok());
}

TEST(SatAssumptions, LearntClausesCarryAcrossCalls) {
  // Solving the same hard branch twice must not re-derive everything: the
  // second call starts from the first call's learnt clauses.
  Solver solver;
  buildPigeonhole(solver, 6);
  int toggle = solver.newVar();  // fresh var so assumptions are non-trivial
  ASSERT_EQ(solver.solve({toggle}, -1), Result::Unsat);
  // The pigeonhole core is independent of the toggle assumption, so the
  // final conflict is formula-level.
  EXPECT_FALSE(solver.ok());
}

TEST(SatAssumptions, GroupSwitchingSelectsSubformula) {
  // Two contradictory "instances" coexist in one solver via ClauseGroups;
  // flipping the activation assumption flips the verdict.
  Solver solver;
  int x = solver.newVar();
  ClauseGroup forcesTrue(solver);
  forcesTrue.addClause(solver, {x});
  ClauseGroup forcesFalse(solver);
  forcesFalse.addClause(solver, {-x});

  ASSERT_EQ(solver.solve({forcesTrue.activation()}, -1), Result::Sat);
  EXPECT_TRUE(solver.modelValue(x));
  ASSERT_EQ(solver.solve({forcesFalse.activation()}, -1), Result::Sat);
  EXPECT_FALSE(solver.modelValue(x));
  // Both at once: unsat, and the core names only activation literals.
  ASSERT_EQ(
      solver.solve({forcesTrue.activation(), forcesFalse.activation()}, -1),
      Result::Unsat);
  for (int lit : solver.conflictCore()) {
    EXPECT_TRUE(lit == forcesTrue.activation() ||
                lit == forcesFalse.activation());
  }
  EXPECT_TRUE(solver.ok());
}

TEST(SatAssumptions, RetiredGroupStopsConstraining) {
  Solver solver;
  int x = solver.newVar();
  ClauseGroup group(solver);
  group.addClause(solver, {x});
  group.retire(solver);
  EXPECT_FALSE(group.open());
  // x is free again even when the stale activation literal is assumed --
  // retirement pinned the guard false, so that assumption is now unsat,
  // with the stale activation as the core.
  ASSERT_EQ(solver.solve({-x}, -1), Result::Sat);
  EXPECT_FALSE(solver.modelValue(x));
  ASSERT_EQ(solver.solve({group.activation()}, -1), Result::Unsat);
  EXPECT_EQ(solver.conflictCore(), std::vector<int>{group.activation()});
}

TEST(SatAssumptions, RetireCompactsTheClauseDatabase) {
  // A retired group's clauses must leave the live database immediately
  // (ROADMAP PR 3 headroom item), not linger until learnt-DB reduction.
  Solver solver;
  const int k = 8;
  std::vector<int> vars;
  for (int i = 0; i < k; ++i) vars.push_back(solver.newVar());
  // A persistent backbone that must survive compaction.
  solver.addClause({vars[0], vars[1]});
  const std::size_t backboneClauses = solver.liveClauses();

  ClauseGroup group(solver);
  for (int i = 0; i + 1 < k; ++i) {
    group.addClause(solver, {vars[i], vars[i + 1]});
    group.addClause(solver, {-vars[i], -vars[i + 1]});
  }
  const std::size_t withGroup = solver.liveClauses();
  const std::size_t withGroupLiterals = solver.liveLiterals();
  ASSERT_GT(withGroup, backboneClauses);

  ASSERT_EQ(solver.solve({group.activation()}, -1), Result::Sat);
  group.retire(solver);
  // Every group clause (and any learnt clause mentioning the guard) is
  // satisfied by the unit !guard and must be purged.
  EXPECT_LT(solver.liveClauses(), withGroup);
  EXPECT_LT(solver.liveLiterals(), withGroupLiterals);
  EXPECT_LE(solver.liveClauses(), backboneClauses);

  // The solver stays fully usable: the backbone still constrains, the
  // retired clauses do not.
  ASSERT_EQ(solver.solve({-vars[0]}, -1), Result::Sat);
  EXPECT_TRUE(solver.modelValue(vars[1]));
  ASSERT_EQ(solver.solve({vars[0], vars[1]}, -1), Result::Sat);
}

TEST(SatAssumptions, CompactionKeepsLadderVerdicts) {
  // Climb a retire-as-you-go ladder of contradictory rungs; after every
  // retire the next rung must still solve correctly and the database must
  // not accumulate dead rungs.
  Solver solver;
  int x = solver.newVar();
  int y = solver.newVar();
  std::size_t previousLive = 0;
  for (int rung = 0; rung < 6; ++rung) {
    ClauseGroup group(solver);
    const bool even = rung % 2 == 0;
    group.addClause(solver, {even ? x : -x});
    group.addClause(solver, {even ? -y : y});
    ASSERT_EQ(solver.solve({group.activation()}, -1), Result::Sat);
    EXPECT_EQ(solver.modelValue(x), even);
    EXPECT_EQ(solver.modelValue(y), !even);
    group.retire(solver);
    const std::size_t live = solver.liveClauses();
    if (rung > 0) {
      // Steady state: retiring rung r purges its clauses, so the live
      // count does not grow with the rung index.
      EXPECT_LE(live, previousLive + 2);
    }
    previousLive = live;
  }
  EXPECT_TRUE(solver.ok());
}

TEST(SatAssumptions, CommittedGroupConstrainsUnconditionally) {
  Solver solver;
  int x = solver.newVar();
  ClauseGroup group(solver);
  group.addClause(solver, {x});
  group.commit(solver);
  ASSERT_EQ(solver.solve(), Result::Sat);  // no assumptions needed
  EXPECT_TRUE(solver.modelValue(x));
  EXPECT_EQ(solver.solve({-x}, -1), Result::Unsat);
}

// Cross-check against brute force on random small 3-SAT instances.
bool bruteForceSat(int numVars, const std::vector<std::vector<int>>& clauses) {
  for (int assignment = 0; assignment < (1 << numVars); ++assignment) {
    bool allSatisfied = true;
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (int lit : clause) {
        int var = std::abs(lit) - 1;
        bool value = (assignment >> var) & 1;
        if ((lit > 0) == value) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        allSatisfied = false;
        break;
      }
    }
    if (allSatisfied) return true;
  }
  return false;
}

class RandomThreeSat : public ::testing::TestWithParam<int> {};

TEST_P(RandomThreeSat, AgreesWithBruteForce) {
  const int seed = GetParam();
  SplitMix64 rng(static_cast<std::uint64_t>(seed));
  const int numVars = 12;
  // Near the 3-SAT phase transition (~4.27 clauses/var) to get a mix of
  // satisfiable and unsatisfiable instances.
  const int numClauses = 51;
  std::vector<std::vector<int>> clauses;
  for (int i = 0; i < numClauses; ++i) {
    std::vector<int> clause;
    for (int j = 0; j < 3; ++j) {
      int var = static_cast<int>(rng.nextBelow(numVars)) + 1;
      bool negated = rng.nextBelow(2) == 1;
      clause.push_back(negated ? -var : var);
    }
    clauses.push_back(clause);
  }

  Solver solver;
  for (int i = 0; i < numVars; ++i) solver.newVar();
  for (const auto& clause : clauses) solver.addClause(clause);
  Result result = solver.solve();
  bool expected = bruteForceSat(numVars, clauses);
  EXPECT_EQ(result == Result::Sat, expected);

  if (result == Result::Sat) {
    // The model must actually satisfy every clause.
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (int lit : clause) {
        if (solver.modelValue(std::abs(lit)) == (lit > 0)) satisfied = true;
      }
      EXPECT_TRUE(satisfied);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomThreeSat, ::testing::Range(0, 40));

// --- randomized fuzz: the SAT core against a brute-force enumerator ------
//
// All fuzz below runs on fixed seeds (SplitMix64 streams) so CI failures
// reproduce deterministically.

std::vector<std::vector<int>> randomCnf(SplitMix64& rng, int numVars,
                                        int numClauses, int width = 3) {
  std::vector<std::vector<int>> clauses;
  clauses.reserve(static_cast<std::size_t>(numClauses));
  for (int i = 0; i < numClauses; ++i) {
    std::vector<int> clause;
    for (int j = 0; j < width; ++j) {
      int var = static_cast<int>(rng.nextBelow(
                    static_cast<std::uint64_t>(numVars))) + 1;
      clause.push_back(rng.nextBelow(2) ? -var : var);
    }
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

class RandomCnfSizes : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfSizes, SolverAgreesWithBruteForceUpTo20Vars) {
  // Instance sizes climb to the brute-force ceiling n = 20; the clause/var
  // ratio sits near the phase transition so both verdicts occur.
  const int numVars = GetParam();
  SplitMix64 rng(0xF00D + static_cast<std::uint64_t>(numVars));
  const int rounds = numVars <= 14 ? 6 : 2;
  for (int round = 0; round < rounds; ++round) {
    const int numClauses = static_cast<int>(4.26 * numVars) + round;
    auto clauses = randomCnf(rng, numVars, numClauses);
    Solver solver;
    for (int i = 0; i < numVars; ++i) solver.newVar();
    for (const auto& clause : clauses) solver.addClause(clause);
    Result result = solver.solve();
    EXPECT_EQ(result == Result::Sat, bruteForceSat(numVars, clauses))
        << "vars=" << numVars << " round=" << round;
    if (result == Result::Sat) {
      for (const auto& clause : clauses) {
        bool satisfied = false;
        for (int lit : clause) {
          if (solver.modelValue(std::abs(lit)) == (lit > 0)) satisfied = true;
        }
        EXPECT_TRUE(satisfied);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomCnfSizes,
                         ::testing::Values(4, 8, 12, 16, 20));

class RandomAssumptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssumptionFuzz, AssumptionSolvesMatchBruteForceAndCoresHold) {
  const int seed = GetParam();
  SplitMix64 rng(0xA55 + static_cast<std::uint64_t>(seed));
  const int numVars = 10;
  const int numClauses = 38;  // mildly constrained: both verdicts occur
  auto clauses = randomCnf(rng, numVars, numClauses);

  Solver solver;
  for (int i = 0; i < numVars; ++i) solver.newVar();
  for (const auto& clause : clauses) solver.addClause(clause);
  const bool formulaSat = bruteForceSat(numVars, clauses);

  // Many assumption sets against ONE live solver: every call must agree
  // with brute force on (formula && assumptions), and every Unsat core
  // must itself be (a) a subset of the assumptions and (b) sufficient.
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<int> assumptions;
    for (int v = 1; v <= numVars; ++v) {
      std::uint64_t coin = rng.nextBelow(4);
      if (coin == 0) assumptions.push_back(v);
      if (coin == 1) assumptions.push_back(-v);
    }
    auto withUnits = clauses;
    for (int lit : assumptions) withUnits.push_back({lit});
    const bool expected = bruteForceSat(numVars, withUnits);

    Result result = solver.solve(assumptions, -1);
    ASSERT_NE(result, Result::Unknown);
    EXPECT_EQ(result == Result::Sat, expected)
        << "seed=" << seed << " trial=" << trial;

    if (result == Result::Sat) {
      for (int lit : assumptions) {
        EXPECT_EQ(solver.modelValue(std::abs(lit)), lit > 0);
      }
      for (const auto& clause : clauses) {
        bool satisfied = false;
        for (int lit : clause) {
          if (solver.modelValue(std::abs(lit)) == (lit > 0)) satisfied = true;
        }
        EXPECT_TRUE(satisfied);
      }
    } else {
      const auto& core = solver.conflictCore();
      if (formulaSat) {
        EXPECT_FALSE(core.empty());
      }
      for (int lit : core) {
        EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), lit),
                  assumptions.end())
            << "core literal " << lit << " is not an assumption";
      }
      // The core alone already makes the formula unsat.
      auto withCore = clauses;
      for (int lit : core) withCore.push_back({lit});
      EXPECT_FALSE(bruteForceSat(numVars, withCore));
    }
    if (!solver.ok()) break;  // formula itself unsat: nothing more to vary
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssumptionFuzz, ::testing::Range(0, 12));

class IncrementalSessionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSessionFuzz, GrowingFormulaTracksFreshReference) {
  // One live solver accumulates clauses across interleaved addClause /
  // solve(assumptions) steps; every verdict is cross-checked against a
  // brute-force reference over the clauses added so far. The arena GC is
  // forced down to a tiny dead-fraction threshold so learnt-clause
  // reduction and database compaction collect (and remap every live
  // reference) many times within one session; the wider group/retire/core
  // interleaving lives in test_sat_arena.cpp's ArenaGcSessionFuzz.
  const int seed = GetParam();
  SplitMix64 rng(0xBEEF + static_cast<std::uint64_t>(seed));
  const int numVars = 9;
  Solver solver;
  solver.setGcDeadFraction(1e-9);
  for (int i = 0; i < numVars; ++i) solver.newVar();
  std::vector<std::vector<int>> mirror;

  for (int step = 0; step < 10; ++step) {
    const int burst = 1 + static_cast<int>(rng.nextBelow(4));
    for (const auto& clause : randomCnf(rng, numVars, burst)) {
      solver.addClause(clause);
      mirror.push_back(clause);
    }
    std::vector<int> assumptions;
    if (rng.nextBelow(2)) {
      int var = static_cast<int>(rng.nextBelow(numVars)) + 1;
      assumptions.push_back(rng.nextBelow(2) ? -var : var);
    }
    auto withUnits = mirror;
    for (int lit : assumptions) withUnits.push_back({lit});
    Result result = solver.solve(assumptions, -1);
    ASSERT_NE(result, Result::Unknown);
    EXPECT_EQ(result == Result::Sat, bruteForceSat(numVars, withUnits))
        << "seed=" << seed << " step=" << step;
    if (!solver.ok()) {
      // Globally unsat: stays unsat under every later extension.
      solver.addClause({1});
      EXPECT_EQ(solver.solve(), Result::Unsat);
      break;
    }
    // Force collection pressure between solves and check the stats stay
    // coherent across relocation.
    if (rng.nextBelow(2)) {
      solver.reduceLearntDb();
    } else {
      solver.compactDatabase();
    }
    const SolverStats stats = solver.snapshotStats();
    EXPECT_GE(stats.liveClauses, 0) << "seed=" << seed << " step=" << step;
    EXPECT_GE(stats.liveLiterals, 0) << "seed=" << seed << " step=" << step;
    EXPECT_GE(stats.arenaBytes, 0) << "seed=" << seed << " step=" << step;
    EXPECT_EQ(solver.watcherCount(), 2 * solver.liveClauses())
        << "seed=" << seed << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSessionFuzz,
                         ::testing::Range(0, 16));

TEST(SatSolver, GraphColouringTriangle) {
  // Triangle with 2 colours: UNSAT; with 3 colours: SAT.
  for (int colours = 2; colours <= 3; ++colours) {
    Solver solver;
    std::vector<DomainVar> node;
    for (int v = 0; v < 3; ++v) node.push_back(makeDomainVar(solver, colours));
    for (int u = 0; u < 3; ++u) {
      for (int v = u + 1; v < 3; ++v) {
        for (int c = 0; c < colours; ++c) {
          solver.addClause({node[static_cast<std::size_t>(u)].isNot(c),
                            node[static_cast<std::size_t>(v)].isNot(c)});
        }
      }
    }
    EXPECT_EQ(solver.solve() == Result::Sat, colours == 3);
  }
}

TEST(CnfBuilder, DomainVarDecodes) {
  Solver solver;
  DomainVar dv = makeDomainVar(solver, 5);
  solver.addClause({dv.is(3)});
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_EQ(dv.decode(solver), 3);
}

TEST(CnfBuilder, ExactlyOneExcludesPairs) {
  Solver solver;
  DomainVar dv = makeDomainVar(solver, 4);
  solver.addClause({dv.is(1)});
  solver.addClause({dv.is(2)});
  EXPECT_EQ(solver.solve(), Result::Unsat);
}

TEST(Dimacs, ParseAndSolveRoundTrip) {
  const std::string text =
      "c example\n"
      "p cnf 3 3\n"
      "1 2 0\n"
      "-1 3 0\n"
      "-2 -3 0\n";
  Cnf cnf = parseDimacsString(text);
  EXPECT_EQ(cnf.numVars, 3);
  ASSERT_EQ(cnf.clauses.size(), 3u);
  Solver solver;
  loadInto(cnf, solver);
  EXPECT_EQ(solver.solve(), Result::Sat);

  std::string rendered = toDimacsString(cnf);
  Cnf reparsed = parseDimacsString(rendered);
  EXPECT_EQ(reparsed.clauses, cnf.clauses);
}

TEST(Dimacs, WriteParseWriteRoundTripFuzz) {
  // write -> parse -> write must be a fixed point: the reparse reproduces
  // the exact clause list and the second render is byte-identical. Fixed
  // seeds; clause widths 1..4 cover units and the common encodings.
  for (int seed = 0; seed < 25; ++seed) {
    SplitMix64 rng(0xD1AC5 + static_cast<std::uint64_t>(seed));
    Cnf cnf;
    cnf.numVars = 1 + static_cast<int>(rng.nextBelow(19));
    const int numClauses = static_cast<int>(rng.nextBelow(40));
    for (int i = 0; i < numClauses; ++i) {
      std::vector<int> clause;
      const int width = 1 + static_cast<int>(rng.nextBelow(4));
      for (int j = 0; j < width; ++j) {
        int var = static_cast<int>(
                      rng.nextBelow(static_cast<std::uint64_t>(cnf.numVars))) +
                  1;
        clause.push_back(rng.nextBelow(2) ? -var : var);
      }
      cnf.clauses.push_back(std::move(clause));
    }

    const std::string rendered = toDimacsString(cnf);
    Cnf reparsed = parseDimacsString(rendered);
    EXPECT_EQ(reparsed.numVars, cnf.numVars) << "seed=" << seed;
    EXPECT_EQ(reparsed.clauses, cnf.clauses) << "seed=" << seed;
    EXPECT_EQ(toDimacsString(reparsed), rendered) << "seed=" << seed;

    // And the solver agrees with brute force on the parsed instance.
    Solver solver;
    loadInto(reparsed, solver);
    EXPECT_EQ(solver.solve() == Result::Sat,
              bruteForceSat(cnf.numVars, cnf.clauses))
        << "seed=" << seed;
  }
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(parseDimacsString("1 2 0\n"), std::runtime_error);
  EXPECT_THROW(parseDimacsString("p cnf 1 1\n2 0\n"), std::runtime_error);
  EXPECT_THROW(parseDimacsString("p cnf 2 1\n1 2\n"), std::runtime_error);
}

namespace {

/// The parser's errors must name the failure, not surface a bare stoi
/// exception -- every message carries the "parseDimacs:" prefix plus a
/// distinguishing fragment.
void expectParseError(const std::string& text, const std::string& fragment) {
  try {
    parseDimacsString(text);
    FAIL() << "no error for: " << text;
  } catch (const std::runtime_error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("parseDimacs:"), std::string::npos) << what;
    EXPECT_NE(what.find(fragment), std::string::npos)
        << "message \"" << what << "\" lacks \"" << fragment << "\"";
  }
}

}  // namespace

TEST(Dimacs, HeaderErrorsAreSpecific) {
  expectParseError("", "missing \"p cnf\" header");
  expectParseError("c only comments\n", "missing \"p cnf\" header");
  expectParseError("p\n", "truncated header");
  expectParseError("p cnf 3\n", "truncated header");
  expectParseError("p dnf 3 1\n1 0\n", "not \"cnf\"");
  expectParseError("p cnf three 1\n", "header variable count");
  expectParseError("p cnf 3 many\n", "header clause count");
  expectParseError("p cnf -3 1\n", "negative count");
  expectParseError("p cnf 3 -1\n", "negative count");
  expectParseError("p cnf 3 1\np cnf 3 1\n1 0\n", "duplicate");
  expectParseError("1 0\np cnf 3 1\n", "before \"p cnf\" header");
}

TEST(Dimacs, LiteralErrorsAreSpecific) {
  expectParseError("p cnf 3 1\n4 0\n", "out of range");
  expectParseError("p cnf 3 1\n-4 0\n", "out of range");
  expectParseError("p cnf 3 1\n99999999999999999999 0\n", "out of int range");
  expectParseError("p cnf 3 1\n1x 0\n", "trailing characters");
  expectParseError("p cnf 3 1\nfoo 0\n", "expected literal");
  expectParseError("p cnf 3 1\n1 2\n", "unterminated clause");
  expectParseError("p cnf 0 1\n1 0\n", "out of range");
}

TEST(Dimacs, AcceptsTolerantButWellFormedInput) {
  // Comments anywhere, a clause count that disagrees with the body, and an
  // empty clause are all tolerated -- errors are reserved for input the
  // parser cannot interpret unambiguously.
  const Cnf cnf = parseDimacsString(
      "c leading comment\n"
      "p cnf 2 1\n"
      "c mid-stream comment\n"
      "1 -2 0\n"
      "0\n"
      "2 0\n");
  EXPECT_EQ(cnf.numVars, 2);
  ASSERT_EQ(cnf.clauses.size(), 3u);
  EXPECT_EQ(cnf.clauses[0], (std::vector<int>{1, -2}));
  EXPECT_TRUE(cnf.clauses[1].empty());
  EXPECT_EQ(cnf.clauses[2], (std::vector<int>{2}));
}

TEST(SatSolver, StatisticsAdvance) {
  Solver solver;
  buildPigeonhole(solver, 5);
  EXPECT_EQ(solver.solve(), Result::Unsat);
  EXPECT_GT(solver.conflicts(), 0);
  EXPECT_GT(solver.decisions(), 0);
  EXPECT_GT(solver.propagations(), 0);
}

}  // namespace
}  // namespace lclgrid::sat
