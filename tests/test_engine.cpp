// Engine determinism and runtime tests: the work-stealing pool's loops, the
// sharded verifier's bit-identity with the serial engine across thread
// counts, fingerprint-keyed sweep caching, and the JSON report schema.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/family_sweep.hpp"
#include "engine/thread_pool.hpp"
#include "grid/torus2d.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"

using namespace lclgrid;

namespace {

/// Same family as tests/test_lcl_table.cpp: every concrete problem class of
/// the paper with a compiled table.
std::vector<GridLcl> problemRegistry() {
  std::vector<GridLcl> registry;
  for (int k = 2; k <= 5; ++k) registry.push_back(problems::vertexColouring(k));
  registry.push_back(problems::maximalIndependentSet());
  registry.push_back(problems::independentSet());
  registry.push_back(problems::maximalMatching());
  registry.push_back(problems::edgeColouring(3));
  registry.push_back(problems::edgeColouring(4));
  registry.push_back(problems::orientation({2}));
  registry.push_back(problems::orientation({1, 3}));
  registry.push_back(problems::orientation({0, 4}));
  registry.push_back(problems::orientation({0, 1, 3}));
  registry.push_back(problems::noHorizontalOnePair());
  registry.push_back(problems::weakColouring(3, 1));
  registry.push_back(problems::weakColouring(2, 4));
  return registry;
}

std::vector<int> randomLabels(int count, int sigma, std::uint32_t seed,
                              bool withGarbage = false) {
  std::mt19937 rng(seed);
  // Occasionally out-of-alphabet labels exercise the functional fallback
  // and the out-of-range handling of the table path's precondition.
  std::uniform_int_distribution<int> dist(withGarbage ? -1 : 0,
                                          withGarbage ? sigma : sigma - 1);
  std::vector<int> labels(static_cast<std::size_t>(count));
  for (int& label : labels) label = dist(rng);
  return labels;
}

}  // namespace

TEST(ThreadPool, LanesMatchConstruction) {
  engine::ThreadPool one(1);
  EXPECT_EQ(one.lanes(), 1);
  engine::ThreadPool four(4);
  EXPECT_EQ(four.lanes(), 4);
  EXPECT_GE(engine::defaultThreads(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 8}) {
    engine::ThreadPool pool(threads);
    const std::int64_t items = 1013;  // prime: uneven chunking
    std::vector<std::atomic<int>> hits(items);
    for (auto& h : hits) h.store(0);
    pool.parallelFor(0, items, /*grain=*/7,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         hits[static_cast<std::size_t>(i)].fetch_add(1);
                       }
                     });
    for (std::int64_t i = 0; i < items; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ReduceIsDeterministicAcrossThreadCounts) {
  // A deliberately non-commutative combine: with a fixed explicit grain the
  // chunk-order reduction must give one answer for every thread count.
  auto runWith = [](int threads) {
    engine::ThreadPool pool(threads);
    return pool.parallelReduce(
        0, 1000, /*grain=*/13, std::uint64_t{1},
        [](std::int64_t begin, std::int64_t end) {
          std::uint64_t h = 0;
          for (std::int64_t i = begin; i < end; ++i) {
            h = h * 1099511628211ULL + static_cast<std::uint64_t>(i);
          }
          return h;
        },
        [](std::uint64_t a, std::uint64_t b) {
          return a * 31 + b;  // order-sensitive on purpose
        });
  };
  const std::uint64_t serial = runWith(1);
  EXPECT_EQ(runWith(2), serial);
  EXPECT_EQ(runWith(8), serial);
}

TEST(ThreadPool, DestructorDrainsSubmittedTasks) {
  // The drain contract of submit(): every task submitted before the
  // destructor runs, even if the pool is torn down immediately after.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    {
      engine::ThreadPool pool(3);
      for (int i = 0; i < 8; ++i) {
        pool.submit([&ran]() { ran.fetch_add(1); });
      }
    }
    ASSERT_EQ(ran.load(), 8) << "round " << round;
  }
}

TEST(ThreadPool, SubmitSwallowsTaskExceptions) {
  std::atomic<int> ran{0};
  {
    engine::ThreadPool pool(2);
    pool.submit([]() { throw std::runtime_error("detached boom"); });
    pool.submit([&ran]() { ran.fetch_add(1); });
    // Destruction joins: the throwing task must neither terminate the
    // process nor lose the task behind it.
  }
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  engine::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(0, 100, 1,
                       [](std::int64_t begin, std::int64_t) {
                         if (begin == 42) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<int> ran{0};
  pool.parallelFor(0, 10, 1,
                   [&](std::int64_t, std::int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

TEST(EngineVerifier, CountsBitIdenticalToSerialForRegistry) {
  for (const GridLcl& lcl : problemRegistry()) {
    for (int n : {3, 4, 5, 8}) {
      Torus2D torus(n);
      for (std::uint32_t seed : {1u, 2u}) {
        const bool garbage = seed == 2u;
        auto labels =
            randomLabels(torus.size(), lcl.sigma(), seed * 977, garbage);
        const std::int64_t serial = countViolations(torus, lcl, labels);
        const bool serialOk = verify(torus, lcl, labels);
        for (int threads : {1, 2, 8}) {
          engine::ThreadPool pool(threads);
          engine::EngineOptions options{.threads = threads, .pool = &pool};
          EXPECT_EQ(countViolations(torus, lcl, labels, options), serial)
              << lcl.name() << " n=" << n << " threads=" << threads;
          EXPECT_EQ(verify(torus, lcl, labels, options), serialOk)
              << lcl.name() << " n=" << n << " threads=" << threads;
        }
      }
    }
  }
}

TEST(EngineVerifier, BatchesBitIdenticalToSerialForRegistry) {
  const int batchSize = 5;
  for (const GridLcl& lcl : problemRegistry()) {
    for (int n : {4, 8}) {
      Torus2D torus(n);
      std::vector<int> batch;
      for (int i = 0; i < batchSize; ++i) {
        auto labels = randomLabels(torus.size(), lcl.sigma(),
                                   static_cast<std::uint32_t>(100 * n + i),
                                   /*withGarbage=*/i == 3);
        batch.insert(batch.end(), labels.begin(), labels.end());
      }
      const auto serialFeasible = verifyBatch(torus, lcl, batch);
      const auto serialCounts = countViolationsBatch(torus, lcl, batch);
      for (int threads : {1, 2, 8}) {
        engine::ThreadPool pool(threads);
        engine::EngineOptions options{.threads = threads, .pool = &pool};
        EXPECT_EQ(verifyBatch(torus, lcl, batch, options), serialFeasible)
            << lcl.name() << " n=" << n << " threads=" << threads;
        EXPECT_EQ(countViolationsBatch(torus, lcl, batch, options),
                  serialCounts)
            << lcl.name() << " n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(EngineVerifier, HeterogeneousBatchMatchesSerial) {
  GridLcl lcl = problems::vertexColouring(4);
  Torus2D small(4), medium(6), large(8);
  auto a = randomLabels(small.size(), lcl.sigma(), 7);
  auto b = randomLabels(medium.size(), lcl.sigma(), 8);
  auto c = randomLabels(large.size(), lcl.sigma(), 9);
  std::vector<LabellingInstance> instances = {
      {&small, a}, {&medium, b}, {&large, c}};
  const auto serial = verifyBatch(lcl, instances);
  for (int threads : {1, 2, 8}) {
    engine::ThreadPool pool(threads);
    engine::EngineOptions options{.threads = threads, .pool = &pool};
    EXPECT_EQ(verifyBatch(lcl, instances, options), serial)
        << "threads=" << threads;
  }
}

TEST(EngineVerifier, SingleLabellingBatchUsesRowSharding) {
  // A batch of one labelling on a big torus still parallelises (by rows);
  // results must match the serial batch entry points.
  GridLcl lcl = problems::maximalIndependentSet();
  Torus2D torus(32);
  auto labels = randomLabels(torus.size(), lcl.sigma(), 21);
  engine::ThreadPool pool(4);
  engine::EngineOptions options{.threads = 4, .pool = &pool};
  EXPECT_EQ(verifyBatch(torus, lcl, labels, options),
            verifyBatch(torus, lcl, labels));
  EXPECT_EQ(countViolationsBatch(torus, lcl, labels, options),
            countViolationsBatch(torus, lcl, labels));
}

TEST(EngineVerifier, SizeMismatchThrowsLikeSerial) {
  GridLcl lcl = problems::independentSet();
  Torus2D torus(4);
  std::vector<int> wrong(torus.size() - 1, 0);
  engine::EngineOptions options{.threads = 2};
  EXPECT_THROW(countViolations(torus, lcl, wrong, options),
               std::invalid_argument);
  EXPECT_THROW(verify(torus, lcl, wrong, options), std::invalid_argument);
}

TEST(LclTableFingerprint, EqualContentHashesEqual) {
  GridLcl a = problems::vertexColouring(3);
  GridLcl b = problems::vertexColouring(3);
  EXPECT_EQ(a.table().fingerprint(), b.table().fingerprint());
}

TEST(LclTableFingerprint, RegistryProblemsArePairwiseDistinct) {
  // One pair of registry entries is the same relation under two names:
  // "differ from all 4 neighbours with 2 labels" IS proper 2-colouring.
  // The fingerprint is content-based, so it must identify them -- and
  // separate everything else.
  auto sameRelation = [](const GridLcl& a, const GridLcl& b) {
    return (a.name() == "vertex-2-colouring" &&
            b.name() == "weak-2-colouring-4") ||
           (a.name() == "weak-2-colouring-4" &&
            b.name() == "vertex-2-colouring");
  };
  auto registry = problemRegistry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    for (std::size_t j = i + 1; j < registry.size(); ++j) {
      if (sameRelation(registry[i], registry[j])) {
        EXPECT_EQ(registry[i].table().fingerprint(),
                  registry[j].table().fingerprint());
      } else {
        EXPECT_NE(registry[i].table().fingerprint(),
                  registry[j].table().fingerprint())
            << registry[i].name() << " vs " << registry[j].name();
      }
    }
  }
}

namespace {

engine::SweepOptions tinySweepOptions(int threads) {
  engine::SweepOptions options;
  options.oracle.synthesis.maxK = 1;
  options.oracle.synthesis.tryWiderShapes = false;
  options.oracle.probeSizes = {4};
  options.engine.threads = threads;
  return options;
}

}  // namespace

TEST(FamilySweep, CacheRunsOracleOncePerFingerprint) {
  // Two copies of the same relation plus one distinct problem: the oracle
  // must run exactly twice, with the duplicate served from the cache.
  std::vector<GridLcl> family = {problems::independentSet(),
                                 problems::independentSet(),
                                 problems::noHorizontalOnePair()};
  for (int threads : {1, 2, 8}) {
    auto report = engine::sweepFamily(family, tinySweepOptions(threads));
    EXPECT_EQ(report.oracleRuns, 2) << "threads=" << threads;
    EXPECT_EQ(report.cacheHits, 1) << "threads=" << threads;
    ASSERT_EQ(report.entries.size(), 3u);
    EXPECT_FALSE(report.entries[0].cacheHit);
    EXPECT_TRUE(report.entries[1].cacheHit);
    EXPECT_FALSE(report.entries[2].cacheHit);
    // The cached entry shares the exact report of its runner.
    EXPECT_EQ(report.entries[1].report.get(), report.entries[0].report.get());
    ASSERT_NE(report.entries[0].report, nullptr);
    ASSERT_NE(report.entries[2].report, nullptr);
    // Both problems are trivially solvable => O(1).
    EXPECT_EQ(report.entries[0].report->complexity,
              synthesis::GridComplexity::Constant);
    EXPECT_EQ(report.entries[2].report->complexity,
              synthesis::GridComplexity::Constant);
  }
}

TEST(FamilySweep, CacheOffRunsEveryProblem) {
  std::vector<GridLcl> family = {problems::independentSet(),
                                 problems::independentSet()};
  auto options = tinySweepOptions(2);
  options.cacheByFingerprint = false;
  auto report = engine::sweepFamily(family, options);
  EXPECT_EQ(report.oracleRuns, 2);
  EXPECT_EQ(report.cacheHits, 0);
}

TEST(FamilySweep, VerdictsMatchSerialAcrossThreadCounts) {
  std::vector<GridLcl> family = {
      problems::independentSet(), problems::orientation({2}),
      problems::maximalIndependentSet(), problems::orientation({1, 3, 4})};
  auto options = tinySweepOptions(1);
  options.oracle.probeSizes = {3, 4};
  auto serial = engine::sweepFamily(family, options);
  for (int threads : {2, 8}) {
    auto aligned = tinySweepOptions(threads);
    aligned.oracle.probeSizes = {3, 4};
    auto parallel = engine::sweepFamily(family, aligned);
    ASSERT_EQ(parallel.entries.size(), serial.entries.size());
    for (std::size_t i = 0; i < serial.entries.size(); ++i) {
      EXPECT_EQ(parallel.entries[i].report->complexity,
                serial.entries[i].report->complexity)
          << family[i].name() << " threads=" << threads;
      EXPECT_EQ(parallel.entries[i].fingerprint,
                serial.entries[i].fingerprint);
    }
  }
}

TEST(FamilySweep, JsonFollowsRepoSchema) {
  std::vector<GridLcl> family = {problems::independentSet()};
  auto options = tinySweepOptions(1);
  auto report = engine::sweepFamily(family, options);
  const std::string json = engine::sweepReportJson(report, options);
  EXPECT_NE(json.find("\"name\":\"family_sweep\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"config\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"results\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"threads\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"complexity\":\"O(1)\""), std::string::npos) << json;
}
