#include <gtest/gtest.h>

#include <set>

#include "local/cole_vishkin.hpp"
#include "local/colour_reduction.hpp"
#include "local/distance_colouring.hpp"
#include "local/graph_view.hpp"
#include "local/ids.hpp"
#include "local/linial.hpp"
#include "local/mis.hpp"
#include "support/numeric.hpp"

namespace lclgrid::local {
namespace {

CycleFamily singleCycle(int n) {
  return CycleFamily{n, [n](int v) { return (v + 1) % n; }};
}

bool properOnCycle(const CycleFamily& family, const std::vector<int>& colour) {
  for (int v = 0; v < family.count; ++v) {
    if (colour[static_cast<std::size_t>(v)] ==
        colour[static_cast<std::size_t>(family.successor(v))]) {
      return false;
    }
  }
  return true;
}

TEST(Ids, DistinctAndInRange) {
  auto ids = randomIds(500, 11);
  std::set<std::uint64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 500u);
  for (auto id : ids) {
    EXPECT_GE(id, 1u);
    EXPECT_LT(id, idSpace(500) + 1);
  }
}

TEST(ColeVishkin, StepPreservesProperness) {
  auto family = singleCycle(64);
  auto ids = randomIds(64, 3);
  std::vector<std::uint64_t> colour = ids;
  for (int iteration = 0; iteration < 4; ++iteration) {
    colour = coleVishkinStep(family, colour);
    for (int v = 0; v < family.count; ++v) {
      EXPECT_NE(colour[static_cast<std::size_t>(v)],
                colour[static_cast<std::size_t>(family.successor(v))]);
    }
  }
}

class ColeVishkinSizes : public ::testing::TestWithParam<int> {};

TEST_P(ColeVishkinSizes, ProducesProperThreeColouring) {
  int n = GetParam();
  auto family = singleCycle(n);
  auto result = colourCycleFamily3(family, randomIds(n, 17));
  ASSERT_EQ(static_cast<int>(result.colour.size()), n);
  for (int c : result.colour) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 2);
  }
  EXPECT_TRUE(properOnCycle(family, result.colour));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ColeVishkinSizes,
                         ::testing::Values(3, 4, 5, 10, 64, 1000, 65536));

TEST(ColeVishkin, RoundsScaleAsLogStar) {
  auto small = colourCycleFamily3(singleCycle(64), randomIds(64, 1));
  auto large = colourCycleFamily3(singleCycle(65536), randomIds(65536, 1));
  // log*-type growth: a 1000x larger instance gains at most a few rounds.
  EXPECT_LE(large.rounds, small.rounds + 4);
  EXPECT_LE(large.rounds, 16);
}

TEST(ColeVishkin, WorksOnMultipleCyclesAtOnce) {
  // Two disjoint cycles of length 5 and 7 inside one family.
  CycleFamily family{12, [](int v) {
                       if (v < 5) return (v + 1) % 5;
                       return 5 + ((v - 5 + 1) % 7);
                     }};
  auto result = colourCycleFamily3(family, randomIds(12, 9));
  EXPECT_TRUE(properOnCycle(family, result.colour));
}

TEST(Linial, ParamsRespectConstraints) {
  auto params = chooseLinialParams(1'000'000, 8);
  EXPECT_GT(params.q, params.degree * 8);
  long long power = 1;
  for (int i = 0; i <= params.degree; ++i) power *= params.q;
  EXPECT_GE(power, 1'000'000);
}

TEST(Linial, StepProducesProperColouring) {
  Torus2D torus(16);
  auto view = torusView(torus);
  auto ids = randomIds(torus.size(), 5);
  std::vector<long long> colour(ids.begin(), ids.end());
  long long palette = static_cast<long long>(idSpace(torus.size())) + 1;
  auto params = chooseLinialParams(palette, view.maxDegree);
  auto next = linialStep(view, colour, palette, params);
  for (int v = 0; v < view.count; ++v) {
    EXPECT_LT(next[static_cast<std::size_t>(v)], params.newPaletteSize());
    for (int u : view.neighbours(v)) {
      EXPECT_NE(next[static_cast<std::size_t>(v)],
                next[static_cast<std::size_t>(u)]);
    }
  }
}

TEST(Linial, IterationReachesSmallPalette) {
  Torus2D torus(16);
  auto view = torusView(torus);
  auto result = iteratedLinial(view, randomIds(torus.size(), 2));
  // Fixpoint is O(Delta^2)-ish; for Delta=4 well under 1000.
  EXPECT_LT(result.paletteSize, 1000);
  EXPECT_GE(result.viewRounds, 1);
  for (int v = 0; v < view.count; ++v) {
    for (int u : view.neighbours(v)) {
      EXPECT_NE(result.colour[static_cast<std::size_t>(v)],
                result.colour[static_cast<std::size_t>(u)]);
    }
  }
}

TEST(ColourReduction, ReachesDegreePlusOne) {
  Torus2D torus(12);
  auto view = torusView(torus);
  auto base = iteratedLinial(view, randomIds(torus.size(), 4));
  auto reduced = reduceToDegreePlusOne(view, base.colour, base.paletteSize);
  EXPECT_EQ(reduced.paletteSize, view.maxDegree + 1);
  for (int v = 0; v < view.count; ++v) {
    EXPECT_GE(reduced.colour[static_cast<std::size_t>(v)], 0);
    EXPECT_LT(reduced.colour[static_cast<std::size_t>(v)], reduced.paletteSize);
    for (int u : view.neighbours(v)) {
      EXPECT_NE(reduced.colour[static_cast<std::size_t>(v)],
                reduced.colour[static_cast<std::size_t>(u)]);
    }
  }
}

class MisOnPowers : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MisOnPowers, ComputesMaximalIndependentSet) {
  auto [n, k] = GetParam();
  Torus2D torus(n);
  auto view = l1PowerView(torus, k);
  auto mis = computeMis(view, randomIds(torus.size(), 23));
  EXPECT_TRUE(isMaximalIndependentSet(view, mis.inSet));
  EXPECT_GT(mis.gridRounds, 0);
}

INSTANTIATE_TEST_SUITE_P(
    GridAndPower, MisOnPowers,
    ::testing::Combine(::testing::Values(8, 12, 17, 24),
                       ::testing::Values(1, 2, 3)));

TEST(Mis, LinfPowerAlsoWorks) {
  Torus2D torus(16);
  auto view = linfPowerView(torus, 2);
  auto mis = computeMis(view, randomIds(torus.size(), 31));
  EXPECT_TRUE(isMaximalIndependentSet(view, mis.inSet));
}

TEST(Mis, AnchorSpacingMatchesPowerRadius) {
  // MIS of G^(k): anchors pairwise L1 distance > k, every node within k.
  Torus2D torus(20);
  const int k = 3;
  auto mis = computeMis(l1PowerView(torus, k), randomIds(torus.size(), 77));
  std::vector<int> anchors;
  for (int v = 0; v < torus.size(); ++v) {
    if (mis.inSet[static_cast<std::size_t>(v)]) anchors.push_back(v);
  }
  ASSERT_FALSE(anchors.empty());
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (std::size_t j = i + 1; j < anchors.size(); ++j) {
      EXPECT_GT(torus.l1(anchors[i], anchors[j]), k);
    }
  }
  for (int v = 0; v < torus.size(); ++v) {
    int closest = torus.size();
    for (int a : anchors) closest = std::min(closest, torus.l1(v, a));
    EXPECT_LE(closest, k);
  }
}

TEST(DistanceColouring, LinfDistanceColouringIsValid) {
  Torus2D torus(18);
  const int k = 2;
  auto result = distanceColouringLinf(torus, k, randomIds(torus.size(), 13));
  EXPECT_TRUE(isDistanceColouring(torus, k, /*metricL1=*/false, result.colour));
  EXPECT_LE(result.paletteSize, (2 * k + 1) * (2 * k + 1));
}

TEST(DistanceColouring, L1DistanceColouringIsValid) {
  Torus2D torus(15);
  const int k = 2;
  auto result = distanceColouringL1(torus, k, randomIds(torus.size(), 19));
  EXPECT_TRUE(isDistanceColouring(torus, k, /*metricL1=*/true, result.colour));
}

TEST(DistanceColouring, RoundsFlatAcrossSizes) {
  const int k = 2;
  auto small = distanceColouringL1(Torus2D(12), k, randomIds(144, 3));
  auto large = distanceColouringL1(Torus2D(48), k, randomIds(48 * 48, 3));
  EXPECT_LE(large.gridRounds, small.gridRounds + 10 * k);
}

TEST(GraphView, TorusDViewMatchesDegree) {
  TorusD torus(3, 7);
  auto view = linfPowerViewD(torus, 1);
  EXPECT_EQ(view.maxDegree, 26);
  auto nbrs = view.neighbours(0);
  EXPECT_EQ(static_cast<int>(nbrs.size()), 26);
}

TEST(MisOnTorusD, ThreeDimensionalMis) {
  TorusD torus(3, 7);
  auto view = linfPowerViewD(torus, 1);
  auto mis = computeMis(view, randomIds(static_cast<int>(torus.size()), 41));
  EXPECT_TRUE(isMaximalIndependentSet(view, mis.inSet));
}

}  // namespace
}  // namespace lclgrid::local
