// The unified verify(VerifyRequest) front door (lcl/verify_api.hpp): bit-
// identity with every legacy overload it subsumes (serial and threaded,
// single and batch, 2D and d-dimensional, in-core and streaming), tier
// pinning incl. its error paths, the fingerprint-resolver idiom, the
// malformed-request diagnostics, and the classify() front door with its
// cross-call ReportCache.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/family_sweep.hpp"
#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"
#include "lcl/problems.hpp"
#include "lcl/stream_verify.hpp"
#include "lcl/verifier.hpp"
#include "lcl/verify_api.hpp"
#include "support/lru_cache.hpp"

using namespace lclgrid;

namespace {

std::vector<GridLcl> problemRegistry() {
  std::vector<GridLcl> registry;
  registry.push_back(problems::vertexColouring(4));
  registry.push_back(problems::maximalIndependentSet());
  registry.push_back(problems::maximalMatching());
  registry.push_back(problems::edgeColouring(4));
  registry.push_back(problems::orientation({2}));
  registry.push_back(problems::noHorizontalOnePair());
  registry.push_back(problems::weakColouring(3, 1));
  return registry;
}

std::vector<int> randomLabels(int sigma, std::size_t count,
                              std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> label(0, sigma - 1);
  std::vector<int> labels(count);
  for (int& value : labels) value = label(rng);
  return labels;
}

std::string tempPath(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += '/';
  path += stem;
  path += '.';
  path += std::to_string(::getpid());
  return path;
}

}  // namespace

TEST(VerifyApi, MatchesSerialAndThreadedOverloadsAcrossRegistry) {
  const Torus2D torus(8);
  int seed = 1;
  for (const GridLcl& problem : problemRegistry()) {
    const std::vector<int> labels = randomLabels(
        problem.sigma(), static_cast<std::size_t>(torus.size()), seed++);
    const bool expectFeasible = verify(torus, problem, labels);
    const std::int64_t expectCount = countViolations(torus, problem, labels);
    for (int threads : {1, 2, 8}) {
      VerifyRequest request;
      request.problem = &problem;
      request.torus = &torus;
      request.labels = labels;
      request.options.engine.threads = threads;

      VerifyResult decided = verify(request);
      EXPECT_EQ(decided.feasible, expectFeasible)
          << problem.name() << " threads=" << threads;
      EXPECT_EQ(decided.labellings, 1);
      EXPECT_EQ(decided.fingerprint, problem.table().fingerprint());
      EXPECT_GE(decided.nanos, 0);

      request.options.countViolations = true;
      VerifyResult counted = verify(request);
      EXPECT_EQ(counted.violations, expectCount)
          << problem.name() << " threads=" << threads;
      EXPECT_EQ(counted.feasible, expectCount == 0);

      // The legacy threaded overloads forward through the same entry.
      engine::EngineOptions options;
      options.threads = threads;
      EXPECT_EQ(verify(torus, problem, labels, options), expectFeasible);
      EXPECT_EQ(countViolations(torus, problem, labels, options), expectCount);
    }
  }
}

TEST(VerifyApi, TierPinsAgreeAndReportTheirTier) {
  const Torus2D torus(16);  // above the bit-slice node floor
  const GridLcl problem = problems::vertexColouring(4);
  const std::vector<int> labels =
      randomLabels(4, static_cast<std::size_t>(torus.size()), 7);
  const std::int64_t expect = countViolations(torus, problem, labels);
  for (int threads : {1, 4}) {
    for (TierPin pin : {TierPin::kAuto, TierPin::kFunctional, TierPin::kTable,
                        TierPin::kBitsliced}) {
      VerifyRequest request;
      request.problem = &problem;
      request.torus = &torus;
      request.labels = labels;
      request.options.countViolations = true;
      request.options.engine.threads = threads;
      request.options.tier = pin;
      const VerifyResult result = verify(request);
      EXPECT_EQ(result.violations, expect)
          << "pin=" << static_cast<int>(pin) << " threads=" << threads;
      switch (pin) {
        case TierPin::kFunctional:
          EXPECT_EQ(result.tier, VerifyTier::kFunctional);
          break;
        case TierPin::kTable:
          EXPECT_EQ(result.tier, VerifyTier::kTable);
          break;
        case TierPin::kBitsliced:
          EXPECT_EQ(result.tier, VerifyTier::kBitsliced);
          break;
        case TierPin::kAuto:
          break;  // whatever the engine selects
      }
    }
  }
}

TEST(VerifyApi, PinnedTableRejectsOutOfRangeLabels) {
  const Torus2D torus(4);
  const GridLcl problem = problems::maximalIndependentSet();
  std::vector<int> labels(static_cast<std::size_t>(torus.size()), 0);
  labels[3] = 99;  // out of range: only the functional tier may run
  VerifyRequest request;
  request.problem = &problem;
  request.torus = &torus;
  request.labels = labels;
  request.options.tier = TierPin::kTable;
  EXPECT_THROW(verify(request), std::invalid_argument);
  request.options.tier = TierPin::kBitsliced;
  EXPECT_THROW(verify(request), std::invalid_argument);
  request.options.tier = TierPin::kFunctional;
  const VerifyResult functional = verify(request);
  EXPECT_EQ(functional.tier, VerifyTier::kFunctional);
}

TEST(VerifyApi, BatchMatchesBatchOverloads) {
  const Torus2D torus(6);
  const GridLcl problem = problems::edgeColouring(4);
  const std::size_t nodes = static_cast<std::size_t>(torus.size());
  std::vector<int> batch;
  for (int i = 0; i < 4; ++i) {
    const std::vector<int> labels = randomLabels(problem.sigma(), nodes,
                                                 100 + static_cast<std::uint32_t>(i));
    batch.insert(batch.end(), labels.begin(), labels.end());
  }
  const std::vector<std::uint8_t> expectVerdicts =
      verifyBatch(torus, problem, batch);
  const std::vector<std::int64_t> expectCounts =
      countViolationsBatch(torus, problem, batch);
  for (int threads : {1, 2, 8}) {
    VerifyRequest request;
    request.problem = &problem;
    request.torus = &torus;
    request.labels = batch;
    request.options.engine.threads = threads;
    VerifyResult decided = verify(request);
    EXPECT_EQ(decided.labellings, 4);
    EXPECT_EQ(decided.feasiblePerLabelling, expectVerdicts);
    bool allFeasible = true;
    for (std::uint8_t verdict : expectVerdicts) allFeasible &= verdict != 0;
    EXPECT_EQ(decided.feasible, allFeasible);

    request.options.countViolations = true;
    VerifyResult counted = verify(request);
    EXPECT_EQ(counted.violationsPerLabelling, expectCounts);
    std::int64_t total = 0;
    for (std::int64_t count : expectCounts) total += count;
    EXPECT_EQ(counted.violations, total);
  }
}

TEST(VerifyApi, TorusDMatchesOverloads) {
  const TorusD torus(3, 4);
  const GridLclD problem = problems_d::xorParity(3);
  const std::vector<int> labels = randomLabels(
      problem.sigma(), static_cast<std::size_t>(torus.size()), 42);
  const std::int64_t expect = countViolations(torus, problem, labels);
  for (int threads : {1, 4}) {
    VerifyRequest request;
    request.problemD = &problem;
    request.torusD = &torus;
    request.labels = labels;
    request.options.countViolations = true;
    request.options.engine.threads = threads;
    const VerifyResult result = verify(request);
    EXPECT_EQ(result.violations, expect) << "threads=" << threads;
  }
}

TEST(VerifyApi, StreamRequestsMatchStreamOverloads) {
  const Torus2D torus(12);
  const GridLcl problem = problems::vertexColouring(3);
  const std::vector<int> labels = randomLabels(
      problem.sigma(), static_cast<std::size_t>(torus.size()), 9);
  const std::string path = tempPath("verify_api_stream");
  writeLabellingFile(path, problem.sigma(), 2, torus.n(), labels);
  const StreamLabelling file(path);
  const std::int64_t expect = streamCountViolations(file, problem);

  VerifyRequest request;
  request.problem = &problem;
  request.file = &file;
  request.options.countViolations = true;
  VerifyResult viaFile = verify(request);
  EXPECT_EQ(viaFile.violations, expect);
  EXPECT_EQ(viaFile.tier, VerifyTier::kStream);

  VerifyRequest viaPathRequest;
  viaPathRequest.problem = &problem;
  viaPathRequest.labellingPath = path;
  viaPathRequest.options.countViolations = true;
  viaPathRequest.options.window.rows = 4;
  EXPECT_EQ(verify(viaPathRequest).violations, expect);

  // Streaming accepts only the automatic tier.
  request.options.tier = TierPin::kTable;
  EXPECT_THROW(verify(request), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(VerifyApi, FingerprintResolver) {
  const Torus2D torus(6);
  const GridLcl problem = problems::maximalMatching();
  const std::vector<int> labels = randomLabels(
      problem.sigma(), static_cast<std::size_t>(torus.size()), 5);
  VerifyRequest request;
  request.fingerprint = problem.table().fingerprint();
  request.resolveFingerprint = [&problem](std::uint64_t fingerprint) {
    return fingerprint == problem.table().fingerprint() ? &problem : nullptr;
  };
  request.torus = &torus;
  request.labels = labels;
  request.options.countViolations = true;
  EXPECT_EQ(verify(request).violations, countViolations(torus, problem, labels));

  request.fingerprint ^= 1;  // unknown
  EXPECT_THROW(verify(request), std::invalid_argument);
  request.resolveFingerprint = nullptr;  // no resolver at all
  EXPECT_THROW(verify(request), std::invalid_argument);
}

TEST(VerifyApi, MalformedRequestsThrow) {
  const Torus2D torus(4);
  const TorusD torusD(3, 3);
  const GridLcl problem = problems::independentSet();
  const GridLclD problemD = problems_d::xorParity(3);
  std::vector<int> labels(static_cast<std::size_t>(torus.size()), 0);

  VerifyRequest ambiguous;
  ambiguous.problem = &problem;
  ambiguous.problemD = &problemD;
  ambiguous.torus = &torus;
  ambiguous.labels = labels;
  EXPECT_THROW(verify(ambiguous), std::invalid_argument);

  VerifyRequest noInstance;
  noInstance.problem = &problem;
  EXPECT_THROW(verify(noInstance), std::invalid_argument);

  // The legacy single-labelling overload's size contract is preserved.
  std::vector<int> wrongSize(static_cast<std::size_t>(torus.size()) + 1, 0);
  try {
    (void)verify(torus, problem, wrongSize, engine::EngineOptions{.threads = 2});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(), "verifier: labelling size mismatch");
  }
}

TEST(ClassifyApi, GridMatchesOracleAndCaches) {
  const GridLcl problem = problems::vertexColouring(2);
  synthesis::OracleOptions oracle;
  oracle.probeSizes = {4, 5};
  const synthesis::OracleReport direct = synthesis::classifyOnGrid(problem, oracle);

  engine::ReportCache cache(8, "");
  engine::ClassifyOptions options;
  options.oracle = oracle;
  options.reportCache = &cache;
  const engine::ClassifyResult fresh = engine::classify(problem, options);
  EXPECT_EQ(fresh.problem, problem.name());
  EXPECT_FALSE(fresh.cacheHit);
  EXPECT_EQ(fresh.complexity, synthesis::gridComplexityName(direct.complexity));
  ASSERT_NE(fresh.grid, nullptr);
  EXPECT_EQ(fresh.grid->complexity, direct.complexity);
  EXPECT_EQ(fresh.fingerprint, problem.table().fingerprint());

  const engine::ClassifyResult cached = engine::classify(problem, options);
  EXPECT_TRUE(cached.cacheHit);
  EXPECT_EQ(cached.complexity, fresh.complexity);
  EXPECT_EQ(cached.grid, fresh.grid);  // the very report object, shared
  EXPECT_GE(cache.stats().hits, 1);
}

TEST(ClassifyApi, CycleMatchesCycleClassifier) {
  const cycle::CycleLcl problem(
      "cycle-2col", 2, 1, [](const std::vector<int>& window) {
        return window[1] != window[0] && window[1] != window[2];
      });
  const cycle::Classification direct = cycle::classifyCycleLcl(problem);
  const engine::ClassifyResult result = engine::classify(problem);
  EXPECT_EQ(result.complexity, cycle::complexityName(direct.complexity));
  ASSERT_TRUE(result.cycle.has_value());
  EXPECT_EQ(result.cycle->complexity, direct.complexity);
  EXPECT_EQ(result.grid, nullptr);
  EXPECT_FALSE(result.cacheHit);
}

TEST(LruCache, EvictsLeastRecentlyUsedAndReportsStats) {
  support::LruCache<int, std::string> cache(2, "");
  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_EQ(cache.get(1).value(), "one");  // 1 becomes most recent
  cache.put(3, "three");                   // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  const support::LruStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 3);
}

TEST(LruCache, EvictionCallbackFiresOnOverflowOnly) {
  support::LruCache<int, int> cache(1, "");
  std::vector<std::pair<int, int>> evicted;
  cache.setEvictionCallback(
      [&evicted](const int& key, const int& value) {
        evicted.emplace_back(key, value);
      });
  cache.put(1, 10);
  cache.put(2, 20);  // evicts (1, 10)
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], std::make_pair(1, 10));
  cache.erase(2);  // NOT an eviction
  cache.put(3, 30);
  cache.clear();  // NOT an eviction
  EXPECT_EQ(evicted.size(), 1u);
}

TEST(LruCache, ZeroCapacityDisablesCaching) {
  support::LruCache<int, int> cache(0, "");
  cache.put(1, 10);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}
