#include <gtest/gtest.h>

#include <set>

#include "support/numeric.hpp"
#include "support/table.hpp"

namespace lclgrid {
namespace {

TEST(LogStar, KnownValues) {
  EXPECT_EQ(logStar(1), 0);
  EXPECT_EQ(logStar(2), 1);
  EXPECT_EQ(logStar(4), 2);
  EXPECT_EQ(logStar(16), 3);
  EXPECT_EQ(logStar(65536), 4);
  EXPECT_EQ(logStar(65537), 5);
}

TEST(LogStar, MonotoneOnPowers) {
  double previous = -1;
  for (double n : {1.0, 10.0, 100.0, 1e4, 1e8, 1e16}) {
    double current = logStar(n);
    EXPECT_GE(current, previous);
    previous = current;
  }
}

TEST(Primes, SmallCases) {
  EXPECT_TRUE(isPrime(2));
  EXPECT_TRUE(isPrime(3));
  EXPECT_FALSE(isPrime(1));
  EXPECT_FALSE(isPrime(9));
  EXPECT_TRUE(isPrime(97));
  EXPECT_FALSE(isPrime(91));
}

TEST(Primes, NextPrime) {
  EXPECT_EQ(nextPrime(2), 2);
  EXPECT_EQ(nextPrime(8), 11);
  EXPECT_EQ(nextPrime(14), 17);
  EXPECT_EQ(nextPrime(100), 101);
}

TEST(Gcd, Basics) {
  EXPECT_EQ(gcdLL(12, 18), 6);
  EXPECT_EQ(gcdLL(0, 5), 5);
  EXPECT_EQ(gcdLL(7, 13), 1);
}

TEST(PolyModQ, EvaluatesHorner) {
  // p(x) = 3 + 2x + x^2 over GF(7); p(2) = 3 + 4 + 4 = 11 = 4 (mod 7).
  EXPECT_EQ(evalPolyModQ({3, 2, 1}, 2, 7), 4);
  EXPECT_EQ(evalPolyModQ({0}, 5, 11), 0);
}

TEST(PolyModQ, DistinctPolynomialsAgreeOnFewPoints) {
  // Two distinct degree-d polynomials agree on at most d points -- the
  // property underlying Linial's colour reduction.
  const int q = 11;
  std::vector<int> p1 = {1, 2, 3};  // degree 2
  std::vector<int> p2 = {4, 0, 3};
  int agreements = 0;
  for (int x = 0; x < q; ++x) {
    if (evalPolyModQ(p1, x, q) == evalPolyModQ(p2, x, q)) ++agreements;
  }
  EXPECT_LE(agreements, 2);
}

TEST(Digits, RoundTrips) {
  auto digits = digitsBaseQ(123, 5, 4);
  ASSERT_EQ(digits.size(), 4u);
  long long value = 0;
  long long power = 1;
  for (int d : digits) {
    value += d * power;
    power *= 5;
  }
  EXPECT_EQ(value, 123);
}

TEST(Digits, ThrowsWhenTooNarrow) {
  EXPECT_THROW(digitsBaseQ(125, 5, 3), std::invalid_argument);
}

TEST(SplitMix, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, BoundedDrawsInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(RandomDistinct, ProducesDistinctValues) {
  auto values = randomDistinct(100, 1000, 3);
  std::set<std::uint64_t> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), 100u);
  for (auto v : values) EXPECT_LT(v, 1000u);
}

TEST(RandomDistinct, ThrowsWhenImpossible) {
  EXPECT_THROW(randomDistinct(10, 5, 1), std::invalid_argument);
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable table({"name", "value"});
  table.addRow({"alpha", "1"});
  table.addRow({"b", "12345"});
  std::string out = table.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(AsciiTable, RejectsBadRowWidth) {
  AsciiTable table({"one"});
  EXPECT_THROW(table.addRow({"a", "b"}), std::invalid_argument);
}

}  // namespace
}  // namespace lclgrid
