// Bit-sliced verification engine properties (lcl/label_planes.hpp + the
// kernels behind lcl/verifier.hpp's selection): LabelPlanes transposition
// round-trips, the cyclic shift helpers, PairNetwork equivalence with its
// predicate, plan synthesis expectations over the registry, and the
// headline contract -- bit-sliced counts are bit-for-bit identical to the
// row-pointer kernel over the whole problem registry, on odd and even
// torus sides (word-tail handling) and at 1/2/8 engine threads.
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"
#include "lcl/grid_lcl_d.hpp"
#include "lcl/label_planes.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"

using namespace lclgrid;

namespace {

/// Restores the process-wide kernel gate on scope exit, so a failing
/// assertion cannot leak a pinned kernel into later tests.
class GateGuard {
 public:
  GateGuard() : saved_(bitslice::enabled()) {}
  ~GateGuard() { bitslice::setEnabled(saved_); }

 private:
  bool saved_;
};

/// Same family as tests/test_lcl_table.cpp: every concrete problem class of
/// the paper with a compiled table.
std::vector<GridLcl> problemRegistry() {
  std::vector<GridLcl> registry;
  for (int k = 2; k <= 5; ++k) registry.push_back(problems::vertexColouring(k));
  registry.push_back(problems::maximalIndependentSet());
  registry.push_back(problems::independentSet());
  registry.push_back(problems::maximalMatching());
  registry.push_back(problems::edgeColouring(3));
  registry.push_back(problems::edgeColouring(4));
  registry.push_back(problems::orientation({2}));
  registry.push_back(problems::orientation({1, 3}));
  registry.push_back(problems::orientation({0, 4}));
  registry.push_back(problems::orientation({0, 1, 3}));
  registry.push_back(problems::noHorizontalOnePair());
  registry.push_back(problems::weakColouring(3, 1));
  registry.push_back(problems::weakColouring(2, 4));
  return registry;
}

std::vector<int> randomLabels(long long count, int range, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, range - 1);
  std::vector<int> labels(static_cast<std::size_t>(count));
  for (int& label : labels) label = dist(rng);
  return labels;
}

}  // namespace

TEST(LabelPlanes, TransposeRoundTripsOnOddAndEvenWidths) {
  for (int n : {1, 3, 5, 63, 64, 65, 127, 128, 130}) {
    for (int planes : {1, 2, 3, 6}) {
      const long long rows = 3;
      LabelPlanes buffer(n, rows, planes);
      const std::vector<int> labels =
          randomLabels(rows * n, 1 << planes,
                       static_cast<std::uint32_t>(n * 31 + planes));
      buffer.setRows(labels, 0, rows);
      std::vector<int> back(static_cast<std::size_t>(rows * n), -1);
      buffer.toLabels(back);
      ASSERT_EQ(back, labels) << "n=" << n << " planes=" << planes;
    }
  }
}

TEST(LabelPlanes, TransposedTailBitsAreZero) {
  // The shift helpers rely on bits >= n being zero in every plane word.
  for (int n : {1, 5, 63, 65, 130}) {
    LabelPlanes buffer(n, 1, 3);
    const std::vector<int> labels = randomLabels(n, 8, 7u * n);
    buffer.setRows(labels, 0, 1);
    const std::size_t W = buffer.wordsPerRow();
    for (int b = 0; b < 3; ++b) {
      const std::uint64_t last = buffer.row(0)[b * W + (W - 1)];
      EXPECT_EQ(last & ~bitslice::rowTailMask(n), 0u) << "n=" << n;
    }
  }
}

TEST(LabelPlanes, CyclicShiftsMatchPerBitDefinition) {
  for (int n : {1, 2, 5, 63, 64, 65, 129}) {
    const std::size_t W = bitslice::wordsPerRow(n);
    const std::vector<int> bits = randomLabels(n, 2, 91u * n);
    std::vector<std::uint64_t> src(W, 0), up(W, 0), down(W, 0);
    bitslice::transposeRow(bits.data(), n, 1, src.data());
    bitslice::shiftUpCyclic(src.data(), up.data(), n);
    bitslice::shiftDownCyclic(src.data(), down.data(), n);
    for (int x = 0; x < n; ++x) {
      const int upBit = static_cast<int>((up[x >> 6] >> (x & 63)) & 1u);
      const int downBit = static_cast<int>((down[x >> 6] >> (x & 63)) & 1u);
      ASSERT_EQ(upBit, bits[static_cast<std::size_t>((x + 1) % n)])
          << "n=" << n << " x=" << x;
      ASSERT_EQ(downBit, bits[static_cast<std::size_t>((x + n - 1) % n)])
          << "n=" << n << " x=" << x;
    }
    // The shifted streams keep the tail-zero invariant.
    EXPECT_EQ(up[W - 1] & ~bitslice::rowTailMask(n), 0u);
    EXPECT_EQ(down[W - 1] & ~bitslice::rowTailMask(n), 0u);
  }
}

TEST(PairNetworkBitslice, EvalMatchesPredicateOnRandomStreams) {
  std::mt19937 rng(20260726);
  for (int sigma = 1; sigma <= 8; ++sigma) {
    for (int round = 0; round < 8; ++round) {
      // Random pair relation, including the all-true / all-false corners.
      std::vector<std::uint8_t> table(
          static_cast<std::size_t>(sigma) * sigma, 0);
      for (auto& entry : table) {
        entry = static_cast<std::uint8_t>(
            round == 0 ? 1 : (round == 1 ? 0 : rng() & 1u));
      }
      const auto ok = [&](int lo, int hi) {
        return table[static_cast<std::size_t>(lo) * sigma + hi] != 0;
      };
      const bitslice::PairNetwork net =
          bitslice::compilePairNetwork(sigma, ok);
      const int n = 130;  // odd tail, three words
      const std::size_t W = bitslice::wordsPerRow(n);
      const std::vector<int> lo = randomLabels(n, sigma, rng());
      const std::vector<int> hi = randomLabels(n, sigma, rng());
      std::vector<std::uint64_t> loP(net.planes * W, 0);
      std::vector<std::uint64_t> hiP(net.planes * W, 0);
      bitslice::transposeRow(lo.data(), n, net.planes, loP.data());
      bitslice::transposeRow(hi.data(), n, net.planes, hiP.data());
      std::vector<std::uint64_t> out(W, 0);
      net.eval(loP.data(), hiP.data(), W, out.data());
      for (int x = 0; x < n; ++x) {
        const bool got = ((out[x >> 6] >> (x & 63)) & 1u) != 0;
        ASSERT_EQ(got, ok(lo[static_cast<std::size_t>(x)],
                          hi[static_cast<std::size_t>(x)]))
            << "sigma=" << sigma << " round=" << round << " x=" << x;
      }
    }
  }
}

TEST(PlanSynthesisBitslice, RegistryPlanShapesAreAsDocumented) {
  // Decomposable sigma <= 8 compiles pair networks; non-decomposable
  // sigma <= 4 compiles the nibble LUT; everything else stays on the
  // row-pointer kernel.
  using Kind = bitslice::BitslicePlan::Kind;
  const GridLcl colouring = problems::vertexColouring(4);
  ASSERT_NE(colouring.table().bitslicePlan(), nullptr);
  EXPECT_EQ(colouring.table().bitslicePlan()->kind, Kind::kPairPlanes);
  EXPECT_TRUE(colouring.table().bitslicePlan()->h.notEqual);
  const GridLcl weak = problems::weakColouring(3, 1);
  ASSERT_NE(weak.table().bitslicePlan(), nullptr);
  EXPECT_EQ(weak.table().bitslicePlan()->kind, Kind::kNibbleLut);
  const GridLcl edges = problems::edgeColouring(3);  // sigma = 9
  EXPECT_EQ(edges.table().bitslicePlan(), nullptr);
  const GridLclD colouring3 = problems_d::vertexColouring(3, 4);
  EXPECT_NE(colouring3.table().bitslicePlanD(), nullptr);
  const GridLclD colouring2 = problems_d::vertexColouring(2, 4);
  // d = 2 delegates: the plan lives on the 2D table.
  EXPECT_EQ(colouring2.table().bitslicePlanD(), nullptr);
  ASSERT_NE(colouring2.table().as2d(), nullptr);
  EXPECT_NE(colouring2.table().as2d()->bitslicePlan(), nullptr);
}

TEST(PlanSynthesisBitslice, GateAndSizeFloorControlSelection) {
  GateGuard guard;
  const GridLcl lcl = problems::vertexColouring(4);
  const long long big = 1 << 20;
  bitslice::setEnabled(true);
  EXPECT_TRUE(verifier_detail::bitsliceSelected(lcl, big));
  // Below the setup floor the row-pointer kernel stays selected.
  EXPECT_FALSE(verifier_detail::bitsliceSelected(
      lcl, bitslice::kMinNodesForBitslice - 1));
  bitslice::setEnabled(false);
  EXPECT_FALSE(verifier_detail::bitsliceSelected(lcl, big));
}

TEST(BitsliceVerifier, DirectKernelMatchesTableOnTinyOddSides) {
  // Below the selection floor the kernels are driven directly: tiny and
  // odd sides are exactly where the word-tail and wrap handling live.
  auto registry = problemRegistry();
  for (int n : {1, 2, 3, 5, 7, 13}) {
    for (const GridLcl& lcl : registry) {
      if (lcl.table().bitslicePlan() == nullptr) continue;
      const std::vector<int> labels = randomLabels(
          static_cast<long long>(n) * n, lcl.sigma(),
          static_cast<std::uint32_t>(n * 7919));
      const std::int64_t reference = verifier_detail::tableViolationRows(
          lcl.table(), n, labels.data(), 0, n, /*stopAtFirst=*/false);
      ASSERT_EQ(verifier_detail::bitsliceViolationRows(
                    lcl.table(), n, n, labels.data(), 0, n,
                    /*stopAtFirst=*/false),
                reference)
          << lcl.name() << " n=" << n;
      ASSERT_EQ(verifier_detail::bitsliceViolationRows(
                    lcl.table(), n, n, labels.data(), 0, n,
                    /*stopAtFirst=*/true) > 0,
                reference > 0)
          << lcl.name() << " n=" << n;
    }
  }
}

TEST(BitsliceVerifierD, DirectLineKernelMatchesTableOnTinySides) {
  for (int dims : {1, 3}) {
    for (int side : {2, 3, 5}) {
      TorusD torus(dims, side);
      const GridLclD lcl = problems_d::vertexColouring(dims, 4);
      ASSERT_NE(lcl.table().bitslicePlanD(), nullptr);
      const std::vector<int> labels = randomLabels(
          torus.size(), lcl.sigma(),
          static_cast<std::uint32_t>(dims * 100 + side));
      const long long lines = torus.size() / torus.n();
      const std::int64_t reference = verifier_detail::tableViolationLinesD(
          lcl.table(), torus, labels.data(), 0, lines, /*stopAtFirst=*/false);
      LabelPlanes planes =
          verifier_detail::bitsliceMakePlanesD(torus, lcl.table());
      verifier_detail::bitsliceStageLinesD(torus, labels, planes, 0, lines);
      ASSERT_EQ(verifier_detail::bitsliceViolationLinesD(
                    lcl.table(), torus, planes, labels.data(), 0, lines,
                    /*stopAtFirst=*/false),
                reference)
          << "dims=" << dims << " side=" << side;
    }
  }
}

TEST(BitsliceVerifier, MatchesRowPointerKernelOverRegistry2D) {
  GateGuard guard;
  auto registry = problemRegistry();
  // Odd sides stress the word-tail handling; 64 and 65 straddle the word
  // boundary; 3 makes every neighbour wrap.
  for (int n : {3, 5, 33, 64, 65}) {
    Torus2D torus(n);
    for (const GridLcl& lcl : registry) {
      for (std::uint32_t seed = 1; seed <= 3; ++seed) {
        const std::vector<int> labels = randomLabels(
            torus.size(), lcl.sigma(),
            seed * 977u + static_cast<std::uint32_t>(n));
        bitslice::setEnabled(false);
        const std::int64_t reference = countViolations(torus, lcl, labels);
        const bool feasible = verify(torus, lcl, labels);
        bitslice::setEnabled(true);
        ASSERT_EQ(countViolations(torus, lcl, labels), reference)
            << lcl.name() << " n=" << n << " seed=" << seed;
        ASSERT_EQ(verify(torus, lcl, labels), feasible)
            << lcl.name() << " n=" << n << " seed=" << seed;
      }
    }
  }
}

TEST(BitsliceVerifier, FeasibleColouringCountsZero) {
  GateGuard guard;
  bitslice::setEnabled(true);
  for (int n : {4, 64, 68}) {  // multiples of 4: the diagonal colouring wraps
    Torus2D torus(n);
    const GridLcl lcl = problems::vertexColouring(4);
    std::vector<int> labels(static_cast<std::size_t>(torus.size()));
    for (int v = 0; v < torus.size(); ++v) {
      labels[static_cast<std::size_t>(v)] = (torus.xOf(v) + torus.yOf(v)) % 4;
    }
    EXPECT_EQ(countViolations(torus, lcl, labels), 0) << n;
    EXPECT_TRUE(verify(torus, lcl, labels)) << n;
  }
}

TEST(BitsliceVerifier, ThreadedCountsAreBitIdentical2D) {
  GateGuard guard;
  bitslice::setEnabled(true);
  auto registry = problemRegistry();
  for (int n : {31, 64}) {
    Torus2D torus(n);
    for (const GridLcl& lcl : registry) {
      const std::vector<int> labels =
          randomLabels(torus.size(), lcl.sigma(),
                       1234u + static_cast<std::uint32_t>(n));
      const std::int64_t serial = countViolations(torus, lcl, labels);
      const bool feasible = verify(torus, lcl, labels);
      for (int threads : {1, 2, 8}) {
        engine::EngineOptions options{.threads = threads};
        ASSERT_EQ(countViolations(torus, lcl, labels, options), serial)
            << lcl.name() << " n=" << n << " threads=" << threads;
        ASSERT_EQ(verify(torus, lcl, labels, options), feasible)
            << lcl.name() << " n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(BitsliceVerifierD, MatchesRowPointerKernelOnTorusD) {
  GateGuard guard;
  for (int dims : {1, 2, 3}) {
    std::vector<GridLclD> registry;
    registry.push_back(problems_d::vertexColouring(dims, 4));
    registry.push_back(problems_d::vertexColouring(dims, 3));
    registry.push_back(problems_d::xorParity(dims));
    registry.push_back(problems_d::monotoneAxis(dims, 0, 3));
    for (int side : {3, 4, 9, 17}) {
      TorusD torus(dims, side);
      for (const GridLclD& lcl : registry) {
        const std::vector<int> labels = randomLabels(
            torus.size(), lcl.sigma(),
            static_cast<std::uint32_t>(dims * 131 + side));
        bitslice::setEnabled(false);
        const std::int64_t reference = countViolations(torus, lcl, labels);
        const bool feasible = verify(torus, lcl, labels);
        bitslice::setEnabled(true);
        ASSERT_EQ(countViolations(torus, lcl, labels), reference)
            << lcl.name() << " dims=" << dims << " side=" << side;
        ASSERT_EQ(verify(torus, lcl, labels), feasible)
            << lcl.name() << " dims=" << dims << " side=" << side;
        for (int threads : {1, 2, 8}) {
          engine::EngineOptions options{.threads = threads};
          ASSERT_EQ(countViolations(torus, lcl, labels, options), reference)
              << lcl.name() << " dims=" << dims << " side=" << side
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(BitsliceVerifierD, LargerOddTorusMatchesAcrossThreads) {
  // One bigger d = 3 instance so the staged line kernel crosses several
  // slabs per shard and the odd side exercises every wrap.
  GateGuard guard;
  TorusD torus(3, 17);
  const GridLclD lcl = problems_d::vertexColouring(3, 4);
  const std::vector<int> labels = randomLabels(torus.size(), 4, 555u);
  bitslice::setEnabled(false);
  const std::int64_t reference = countViolations(torus, lcl, labels);
  bitslice::setEnabled(true);
  EXPECT_EQ(countViolations(torus, lcl, labels), reference);
  for (int threads : {2, 8}) {
    engine::EngineOptions options{.threads = threads};
    EXPECT_EQ(countViolations(torus, lcl, labels, options), reference)
        << "threads=" << threads;
  }
}

TEST(BitsliceVerifierD, ProgressiveStagedVerifyHandlesFeasibleAndNot) {
  // The serial d >= 3 verify stages one outermost-axis block ahead of the
  // scan; a feasible labelling must survive the full staged sweep, and a
  // single violation in the last block must still be found.
  GateGuard guard;
  bitslice::setEnabled(true);
  TorusD torus(3, 8);  // 4 | 8: the diagonal colouring wraps cleanly
  const GridLclD lcl = problems_d::vertexColouring(3, 4);
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (long long v = 0; v < torus.size(); ++v) {
    int sum = 0;
    for (int a = 0; a < 3; ++a) sum += torus.coord(v, a);
    labels[static_cast<std::size_t>(v)] = sum % 4;
  }
  EXPECT_TRUE(verify(torus, lcl, labels));
  const int last = labels.back();
  labels.back() = labels[labels.size() - 2];  // clash on the last line
  EXPECT_FALSE(verify(torus, lcl, labels));
  labels.back() = last;
  labels[0] = labels[1];  // clash in the first block
  EXPECT_FALSE(verify(torus, lcl, labels));
}

TEST(BitsliceVerifier, BatchEntriesAgreeWithSerialKernel) {
  GateGuard guard;
  Torus2D torus(33);
  const GridLcl lcl = problems::vertexColouring(4);
  std::vector<int> batch;
  std::vector<std::int64_t> expected;
  for (std::uint32_t seed = 0; seed < 4; ++seed) {
    const std::vector<int> labels =
        randomLabels(torus.size(), lcl.sigma(), 31u + seed);
    bitslice::setEnabled(false);
    expected.push_back(countViolations(torus, lcl, labels));
    batch.insert(batch.end(), labels.begin(), labels.end());
  }
  bitslice::setEnabled(true);
  EXPECT_EQ(countViolationsBatch(torus, lcl, batch), expected);
  engine::EngineOptions options{.threads = 4};
  EXPECT_EQ(countViolationsBatch(torus, lcl, batch, options), expected);
}

namespace {

/// Restores the SIMD tier cap on scope exit. simdTier() reports the
/// effective tier (min of cap and availability), which re-applied as a cap
/// reproduces the original dispatch exactly.
class TierGuard {
 public:
  TierGuard() : saved_(bitslice::simdTier()) {}
  ~TierGuard() { bitslice::setSimdTier(saved_); }

 private:
  bitslice::SimdTier saved_;
};

}  // namespace

TEST(SimdTier, CapNeverExceedsAvailabilityAndOrdersCorrectly) {
  TierGuard guard;
  bitslice::setSimdTier(bitslice::SimdTier::kScalar);
  EXPECT_EQ(bitslice::simdTier(), bitslice::SimdTier::kScalar);
  bitslice::setSimdTier(bitslice::SimdTier::kAvx2);
  EXPECT_LE(bitslice::simdTier(), bitslice::SimdTier::kAvx2);
  if (bitslice::avx2Available()) {
    EXPECT_EQ(bitslice::simdTier(), bitslice::SimdTier::kAvx2);
  }
  bitslice::setSimdTier(bitslice::SimdTier::kAvx512);
  if (bitslice::avx512Available()) {
    EXPECT_TRUE(bitslice::avx2Available());  // the subsets imply AVX2
    EXPECT_EQ(bitslice::simdTier(), bitslice::SimdTier::kAvx512);
  } else if (bitslice::avx2Available()) {
    EXPECT_EQ(bitslice::simdTier(), bitslice::SimdTier::kAvx2);
  } else {
    EXPECT_EQ(bitslice::simdTier(), bitslice::SimdTier::kScalar);
  }
}

TEST(SimdTier, NotEqualKernelCountsMatchAcrossTiers) {
  // Rows long enough that the AVX-512 worker takes full 8-word strides
  // (W = ceil(781 / 64) = 13 >= 12) with a ragged tail word; the forced
  // scalar pass is the reference the wide clones must reproduce exactly.
  GateGuard gate;
  TierGuard guard;
  bitslice::setEnabled(true);
  Torus2D torus(781);
  const GridLcl lcl = problems::vertexColouring(4);
  ASSERT_TRUE(lcl.table().bitslicePlan()->h.notEqual);
  for (std::uint32_t seed : {11u, 12u}) {
    std::vector<int> labels = randomLabels(torus.size(), lcl.sigma(), seed);
    bitslice::setSimdTier(bitslice::SimdTier::kScalar);
    const std::int64_t reference = countViolations(torus, lcl, labels);
    const bool feasible = verify(torus, lcl, labels);
    for (auto tier : {bitslice::SimdTier::kAvx2, bitslice::SimdTier::kAvx512}) {
      bitslice::setSimdTier(tier);
      ASSERT_EQ(countViolations(torus, lcl, labels), reference)
          << "tier=" << static_cast<int>(tier) << " seed=" << seed;
      ASSERT_EQ(verify(torus, lcl, labels), feasible)
          << "tier=" << static_cast<int>(tier) << " seed=" << seed;
    }
  }
}

TEST(SimdTier, NotEqualFeasibleAndSingleViolationAgreeAcrossTiers) {
  GateGuard gate;
  TierGuard guard;
  bitslice::setEnabled(true);
  Torus2D torus(768);  // 4 | 768: diagonal colouring wraps; W = 12 exactly
  const GridLcl lcl = problems::vertexColouring(4);
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] = (torus.xOf(v) + torus.yOf(v)) % 4;
  }
  for (auto tier : {bitslice::SimdTier::kScalar, bitslice::SimdTier::kAvx2,
                    bitslice::SimdTier::kAvx512}) {
    bitslice::setSimdTier(tier);
    EXPECT_EQ(countViolations(torus, lcl, labels), 0)
        << "tier=" << static_cast<int>(tier);
    EXPECT_TRUE(verify(torus, lcl, labels)) << static_cast<int>(tier);
  }
  labels[1] = labels[0];  // one clash: two violated nodes (0<->1 edge sides)
  bitslice::setSimdTier(bitslice::SimdTier::kScalar);
  const std::int64_t reference = countViolations(torus, lcl, labels);
  EXPECT_GT(reference, 0);
  for (auto tier : {bitslice::SimdTier::kAvx2, bitslice::SimdTier::kAvx512}) {
    bitslice::setSimdTier(tier);
    EXPECT_EQ(countViolations(torus, lcl, labels), reference)
        << "tier=" << static_cast<int>(tier);
    EXPECT_FALSE(verify(torus, lcl, labels)) << static_cast<int>(tier);
  }
}

TEST(SimdTier, NibbleKernelCountsMatchAcrossTiers) {
  // weakColouring(3, 1) compiles the nibble LUT (non-decomposable,
  // sigma <= 4). 131 nodes per row = 16 full byte-words + 3 tail lanes for
  // the AVX2 gather, one full 64-lane stride + tail for AVX-512.
  GateGuard gate;
  TierGuard guard;
  bitslice::setEnabled(true);
  const GridLcl lcl = problems::weakColouring(3, 1);
  ASSERT_EQ(lcl.table().bitslicePlan()->kind,
            bitslice::BitslicePlan::Kind::kNibbleLut);
  for (int n : {67, 131}) {
    Torus2D torus(n);
    for (std::uint32_t seed : {21u, 22u, 23u}) {
      std::vector<int> labels = randomLabels(torus.size(), lcl.sigma(),
                                             seed + static_cast<unsigned>(n));
      bitslice::setSimdTier(bitslice::SimdTier::kScalar);
      const std::int64_t reference = countViolations(torus, lcl, labels);
      const bool feasible = verify(torus, lcl, labels);
      for (auto tier :
           {bitslice::SimdTier::kAvx2, bitslice::SimdTier::kAvx512}) {
        bitslice::setSimdTier(tier);
        ASSERT_EQ(countViolations(torus, lcl, labels), reference)
            << "tier=" << static_cast<int>(tier) << " n=" << n
            << " seed=" << seed;
        ASSERT_EQ(verify(torus, lcl, labels), feasible)
            << "tier=" << static_cast<int>(tier) << " n=" << n
            << " seed=" << seed;
      }
    }
  }
}

TEST(SimdTier, GenericPairPlanesUnaffectedByTierCap) {
  // Problems off the notEqual fast path stay on the minterm evaluator at
  // every tier -- the cap must not change their counts either.
  GateGuard gate;
  TierGuard guard;
  bitslice::setEnabled(true);
  Torus2D torus(257);
  const GridLcl lcl = problems::maximalIndependentSet();
  const std::vector<int> labels = randomLabels(torus.size(), lcl.sigma(), 7u);
  bitslice::setSimdTier(bitslice::SimdTier::kScalar);
  const std::int64_t reference = countViolations(torus, lcl, labels);
  bitslice::setSimdTier(bitslice::SimdTier::kAvx512);
  EXPECT_EQ(countViolations(torus, lcl, labels), reference);
}
