#include <gtest/gtest.h>

#include "corner/corner_algorithm.hpp"
#include "corner/corner_problem.hpp"
#include "local/ids.hpp"

namespace lclgrid::corner {
namespace {

class CornerAlgorithm : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CornerAlgorithm, SolvesAndVerifies) {
  auto [m, seed] = GetParam();
  BoundedGrid grid(m);
  auto run = solveCornerCoordination(
      grid, local::randomIds(grid.size(), static_cast<std::uint64_t>(seed) + 1));
  ASSERT_TRUE(run.solved);
  auto violations = listCornerViolations(grid, run.labelling);
  EXPECT_TRUE(violations.empty())
      << (violations.empty()
              ? ""
              : violations[0].rule + ": " + violations[0].description);
  // Rounds scale with the side length (Theta(sqrt N) in N = m^2 nodes).
  EXPECT_LE(run.rounds, 2 * m);
  EXPECT_GE(run.rounds, m - 1);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, CornerAlgorithm,
    ::testing::Combine(::testing::Values(3, 5, 8, 16, 31),
                       ::testing::Values(0, 1, 2)));

TEST(CornerChecker, EmptyLabellingViolatesRuleFive) {
  BoundedGrid grid(4);
  CornerLabelling empty;
  empty.edges.assign(static_cast<std::size_t>(2 * grid.size()), EdgeDir::None);
  auto violations = listCornerViolations(grid, empty);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].rule, "R5");
}

TEST(CornerChecker, MidSideMeetingIsRejected) {
  // Two flows directed toward the middle of the south side: the meeting
  // node is not a corner, so the trees meet illegally / end illegally.
  BoundedGrid grid(5);
  CornerLabelling labelling;
  labelling.edges.assign(static_cast<std::size_t>(2 * grid.size()),
                         EdgeDir::None);
  // South row: edges (0,0)-(1,0), (1,0)-(2,0) forward; (3,0)-(4,0), (2,0)-(3,0) backward.
  auto eastEdge = [&](int x, int y) { return 2 * grid.id(x, y) + 1; };
  labelling.edges[static_cast<std::size_t>(eastEdge(0, 0))] = EdgeDir::Forward;
  labelling.edges[static_cast<std::size_t>(eastEdge(1, 0))] = EdgeDir::Forward;
  labelling.edges[static_cast<std::size_t>(eastEdge(3, 0))] = EdgeDir::Backward;
  labelling.edges[static_cast<std::size_t>(eastEdge(2, 0))] = EdgeDir::Backward;
  auto violations = listCornerViolations(grid, labelling, 16);
  bool badEnd = false;
  for (const auto& violation : violations) {
    if (violation.rule == "R3" || violation.rule == "R4") badEnd = true;
  }
  EXPECT_TRUE(badEnd);
}

TEST(CornerChecker, BoundaryCycleDecomposesAtCorners) {
  // The clockwise boundary cycle decomposes into four corner-to-corner
  // side paths (trees break at corners), so the checker accepts it -- it is
  // a legitimate solution shape. (It is still not locally computable: the
  // clockwise direction is a global choice, cf. Theorem 27.)
  BoundedGrid grid(4);
  CornerLabelling labelling;
  labelling.edges.assign(static_cast<std::size_t>(2 * grid.size()),
                         EdgeDir::None);
  int m = grid.m();
  for (int x = 0; x + 1 < m; ++x) {
    labelling.edges[static_cast<std::size_t>(2 * grid.id(x, m - 1) + 1)] =
        EdgeDir::Forward;  // top: east
    labelling.edges[static_cast<std::size_t>(2 * grid.id(x, 0) + 1)] =
        EdgeDir::Backward;  // bottom: west
  }
  for (int y = 0; y + 1 < m; ++y) {
    labelling.edges[static_cast<std::size_t>(2 * grid.id(0, y))] =
        EdgeDir::Forward;  // left col: north
    labelling.edges[static_cast<std::size_t>(2 * grid.id(m - 1, y))] =
        EdgeDir::Backward;  // right col: south
  }
  EXPECT_TRUE(verifyCornerLabelling(grid, labelling));
}

TEST(CornerChecker, InteriorCycleIsRejected) {
  // A directed cycle with no corner on it cannot be decomposed: it has no
  // legal roots or leaves and re-enters its columns.
  BoundedGrid grid(6);
  CornerLabelling labelling;
  labelling.edges.assign(static_cast<std::size_t>(2 * grid.size()),
                         EdgeDir::None);
  // Unit square at (2,2): (2,2)->(3,2)->(3,3)->(2,3)->(2,2).
  labelling.edges[static_cast<std::size_t>(2 * grid.id(2, 2) + 1)] =
      EdgeDir::Forward;   // east
  labelling.edges[static_cast<std::size_t>(2 * grid.id(3, 2))] =
      EdgeDir::Forward;   // north
  labelling.edges[static_cast<std::size_t>(2 * grid.id(2, 3) + 1)] =
      EdgeDir::Backward;  // west
  labelling.edges[static_cast<std::size_t>(2 * grid.id(2, 2))] =
      EdgeDir::Backward;  // south
  EXPECT_FALSE(verifyCornerLabelling(grid, labelling));
}

TEST(CornerChecker, InteriorPathMustEndAtCorners) {
  BoundedGrid grid(5);
  CornerLabelling labelling;
  labelling.edges.assign(static_cast<std::size_t>(2 * grid.size()),
                         EdgeDir::None);
  // A short path in the interior: (1,2) -> (2,2) -> (3,2).
  labelling.edges[static_cast<std::size_t>(2 * grid.id(1, 2) + 1)] =
      EdgeDir::Forward;
  labelling.edges[static_cast<std::size_t>(2 * grid.id(2, 2) + 1)] =
      EdgeDir::Forward;
  auto violations = listCornerViolations(grid, labelling, 16);
  bool r3 = false;
  for (const auto& violation : violations) r3 |= violation.rule == "R3";
  EXPECT_TRUE(r3);
}

TEST(CornerBall, GrowthMatchesProposition28) {
  // |B_r(corner)| = (r+2 choose 2) while the ball is corner-free.
  BoundedGrid grid(32);
  for (int r = 0; r <= 8; ++r) {
    EXPECT_EQ(cornerBallSize(grid, r), (r + 2) * (r + 1) / 2) << r;
  }
}

TEST(CornerBall, SaturatesAtWholeGrid) {
  BoundedGrid grid(4);
  EXPECT_EQ(cornerBallSize(grid, 100), grid.size());
}

}  // namespace
}  // namespace lclgrid::corner
