#include <gtest/gtest.h>

#include <set>

#include "grid/torus2d.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"
#include "lcl/global_solver.hpp"
#include "local/graph_view.hpp"
#include "local/ids.hpp"
#include "local/mis.hpp"
#include "tiles/enumerator.hpp"
#include "tiles/tile.hpp"

namespace lclgrid::tiles {
namespace {

TEST(TilePattern, BitIndexingAndRendering) {
  TileShape shape{3, 2};
  std::uint64_t bits = parsePattern("10\n00\n01", shape);
  EXPECT_TRUE(hasAnchor(bits, shape, 0, 0));
  EXPECT_FALSE(hasAnchor(bits, shape, 0, 1));
  EXPECT_TRUE(hasAnchor(bits, shape, 2, 1));
  EXPECT_EQ(renderPattern(bits, shape), "10\n00\n01");
}

TEST(TilePattern, SubPatternExtraction) {
  TileShape from{3, 3};
  std::uint64_t bits = parsePattern("000\n010\n100", from);
  TileShape to{3, 2};
  // The paper's example: left window "00/01/10", right window "00/10/00".
  EXPECT_EQ(renderPattern(subPattern(bits, from, 0, 0, to), to), "00\n01\n10");
  EXPECT_EQ(renderPattern(subPattern(bits, from, 0, 1, to), to), "00\n10\n00");
}

TEST(TilePattern, SubPatternBoundsChecked) {
  TileShape from{2, 2};
  EXPECT_THROW(subPattern(0, from, 1, 1, TileShape{2, 2}), std::out_of_range);
}

TEST(TileSet, IndexLookup) {
  TileSet set(TileShape{1, 2}, 1, {0b00, 0b01, 0b10});
  EXPECT_EQ(set.size(), 3);
  EXPECT_EQ(set.indexOf(0b01), 1);
  EXPECT_EQ(set.indexOf(0b11), -1);
}

TEST(Enumerator, IndependenceCheck) {
  TileShape shape{3, 3};
  EXPECT_TRUE(isIndependentPattern(1, shape, parsePattern("100\n001\n100", shape)));
  EXPECT_FALSE(isIndependentPattern(1, shape, parsePattern("110\n000\n000", shape)));
  // Diagonal neighbours are at L1 distance 2: independent for k=1 but not
  // for k=2.
  EXPECT_TRUE(isIndependentPattern(1, shape, parsePattern("100\n010\n000", shape)));
  EXPECT_FALSE(isIndependentPattern(2, shape, parsePattern("100\n010\n000", shape)));
  // Distance 2 along a row under k=2 is likewise dependent.
  EXPECT_FALSE(isIndependentPattern(2, shape, parsePattern("101\n000\n000", shape)));
}

TEST(Enumerator, PaperHeadline16TilesForKOne) {
  // Section 7: "for k = 1 we have the following 3 x 2 tiles" -- 16 of them.
  EnumerationStats stats;
  auto tiles = enumerateTiles(1, 3, 2, &stats);
  EXPECT_EQ(tiles.size(), 16);
  EXPECT_EQ(stats.validTiles, 16);

  // The figure's patterns, verbatim.
  const char* expected[] = {
      "00\n00\n10", "00\n00\n01", "00\n10\n00", "00\n10\n01",
      "00\n01\n00", "00\n01\n10", "10\n00\n00", "10\n00\n10",
      "10\n00\n01", "10\n01\n00", "10\n01\n10", "01\n00\n00",
      "01\n00\n10", "01\n10\n00", "01\n10\n01", "00\n00\n00"};
  // All but the all-zero pattern must be present; all-zero must be absent.
  TileShape shape{3, 2};
  for (int i = 0; i < 15; ++i) {
    EXPECT_GE(tiles.indexOf(parsePattern(expected[i], shape)), 0) << expected[i];
  }
  EXPECT_EQ(tiles.indexOf(parsePattern("00\n00\n00", shape)), -1);
}

TEST(Enumerator, PaperHeadline2079TilesForKThree) {
  // Section 7: 4-colouring synthesis at k = 3 "turns out that we only need
  // to consider 2079 tiles" of dimensions 7 x 5.
  auto tiles = enumerateTiles(3, 7, 5, nullptr);
  EXPECT_EQ(tiles.size(), 2079);
}

TEST(Enumerator, AllZeroWindowValidityDependsOnShape) {
  // A 2x2 all-zero window can occur in an MIS of G^(1) (anchors can sit
  // just outside), but a 3x2 all-zero window cannot (shown by hand in the
  // paper's tile list).
  EXPECT_TRUE(isValidTile(1, TileShape{2, 2}, 0));
  EXPECT_FALSE(isValidTile(1, TileShape{3, 2}, 0));
}

TEST(Enumerator, HeredityOfSubtiles) {
  // Every sub-window of a valid tile is a valid tile (Appendix A.1).
  auto tiles = enumerateTiles(2, 5, 4, nullptr);
  TileShape shape{5, 4};
  TileShape sub{4, 3};
  for (int t = 0; t < tiles.size(); ++t) {
    for (int r = 0; r + sub.height <= shape.height; ++r) {
      for (int c = 0; c + sub.width <= shape.width; ++c) {
        std::uint64_t bits = subPattern(tiles.pattern(t), shape, r, c, sub);
        EXPECT_TRUE(isValidTile(2, sub, bits));
      }
    }
  }
}

class WindowsOfRealMis : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WindowsOfRealMis, EveryWindowOfARealMisIsInTheTileSet) {
  // Completeness: windows read off an actual MIS of G^(k) on a torus are
  // always enumerated (otherwise the synthesized algorithms could fail).
  auto [k, seed] = GetParam();
  const int height = 2 * k + 1;
  const int width = std::max(2, 2 * k - 1);
  auto tiles = enumerateTiles(k, height, width, nullptr);

  Torus2D torus(8 * k + 6);
  auto mis = local::computeMis(local::l1PowerView(torus, k),
                               local::randomIds(torus.size(), seed + 1));
  TileShape shape{height, width};
  for (int v = 0; v < torus.size(); ++v) {
    std::uint64_t bits = 0;
    for (int r = 0; r < height; ++r) {
      for (int c = 0; c < width; ++c) {
        // Row 0 is the northernmost row of the window anchored at v.
        int cell = torus.shift(v, c, -r);
        if (mis.inSet[static_cast<std::size_t>(cell)]) {
          bits |= 1ULL << bitIndex(shape, r, c);
        }
      }
    }
    EXPECT_GE(tiles.indexOf(bits), 0)
        << "window of a real MIS missing from the tile set:\n"
        << renderPattern(bits, shape);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PowersAndSeeds, WindowsOfRealMis,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(0, 1)));

TEST(Enumerator, CountsGrowWithWindowSize) {
  EXPECT_LT(enumerateTiles(1, 2, 2).size(), enumerateTiles(1, 3, 3).size());
  EXPECT_LT(enumerateTiles(1, 3, 3).size(), enumerateTiles(1, 4, 4).size());
}

TEST(Enumerator, RejectsOversizedShapes) {
  EXPECT_THROW(enumerateTiles(1, 8, 8, nullptr), std::invalid_argument);
  EXPECT_THROW(enumerateTiles(0, 3, 3, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace lclgrid::tiles
