#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "lcl/global_solver.hpp"
#include "lcl/grid_lcl.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"

namespace lclgrid {
namespace {

using problems::edgeColourOfE;
using problems::edgeColourOfN;
using problems::edgeLabelFrom;

std::vector<int> chequerboard(const Torus2D& torus) {
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] = (torus.xOf(v) + torus.yOf(v)) % 2;
  }
  return labels;
}

TEST(GridLcl, TrivialityDetection) {
  EXPECT_FALSE(problems::vertexColouring(4).hasTrivialSolution());
  EXPECT_FALSE(problems::maximalIndependentSet().hasTrivialSolution());
  EXPECT_TRUE(problems::independentSet().hasTrivialSolution());
  EXPECT_EQ(problems::independentSet().trivialLabel(), 0);
  EXPECT_TRUE(problems::noHorizontalOnePair().hasTrivialSolution());
  EXPECT_TRUE(problems::weakColouring(3, 0).hasTrivialSolution());
  EXPECT_FALSE(problems::weakColouring(3, 1).hasTrivialSolution());
}

TEST(GridLcl, VertexColouringIsEdgeDecomposable) {
  EXPECT_TRUE(problems::vertexColouring(3).isEdgeDecomposable());
  EXPECT_TRUE(problems::vertexColouring(4).isEdgeDecomposable());
  // The pair projections are exactly "different labels".
  auto lcl = problems::vertexColouring(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(lcl.horizontalOk(a, b), a != b);
      EXPECT_EQ(lcl.verticalOk(a, b), a != b);
    }
  }
}

TEST(GridLcl, MisIsNotEdgeDecomposable) {
  // "0 needs some 1 neighbour" is inherently a cross constraint.
  EXPECT_FALSE(problems::maximalIndependentSet().isEdgeDecomposable());
}

TEST(GridLcl, EdgeColouringIsNotEdgeDecomposable) {
  // The west neighbour's E-edge and the south neighbour's N-edge interact,
  // which horizontal/vertical pair constraints cannot capture. (k = 3 would
  // be vacuous: a node cannot give its 4 incident edges distinct colours
  // from a palette of 3, so no tuple is allowed at all.)
  EXPECT_FALSE(problems::edgeColouring(4).isEdgeDecomposable());
}

TEST(GridLcl, ThreeEdgeColouringIsInfeasibleEverywhere) {
  // With fewer than 4 colours no cross is ever allowed: each node needs its
  // four incident edges pairwise distinct.
  auto lcl = problems::edgeColouring(3);
  bool anyAllowed = false;
  for (int c = 0; c < lcl.sigma() && !anyAllowed; ++c) {
    for (int s = 0; s < lcl.sigma() && !anyAllowed; ++s) {
      for (int w = 0; w < lcl.sigma() && !anyAllowed; ++w) {
        if (lcl.allows(c, 0, 0, s, w)) anyAllowed = true;
      }
    }
  }
  EXPECT_FALSE(anyAllowed);
}

TEST(Verifier, ChequerboardIsProper2Colouring) {
  Torus2D torus(6);
  auto lcl = problems::vertexColouring(2);
  EXPECT_TRUE(verify(torus, lcl, chequerboard(torus)));
}

TEST(Verifier, OddTorusChequerboardFails) {
  Torus2D torus(5);  // wraps badly: x+y parity is inconsistent across seam
  auto lcl = problems::vertexColouring(2);
  EXPECT_FALSE(verify(torus, lcl, chequerboard(torus)));
}

TEST(Verifier, DiagonalThreeColouring) {
  Torus2D torus(6);
  auto lcl = problems::vertexColouring(3);
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] = (torus.xOf(v) + torus.yOf(v)) % 3;
  }
  EXPECT_TRUE(verify(torus, lcl, labels));
}

TEST(Verifier, ReportsViolationLocation) {
  Torus2D torus(4);
  auto lcl = problems::vertexColouring(2);
  auto labels = chequerboard(torus);
  labels[0] = 1;  // break the colouring at (0,0)
  auto violations = listViolations(torus, lcl, labels, 100);
  EXPECT_FALSE(violations.empty());
  bool mentionsOrigin = false;
  for (const auto& violation : violations) {
    if (violation.node == 0) mentionsOrigin = true;
  }
  EXPECT_TRUE(mentionsOrigin);
}

TEST(Verifier, RejectsOutOfAlphabetLabels) {
  Torus2D torus(4);
  auto lcl = problems::vertexColouring(2);
  auto labels = chequerboard(torus);
  labels[5] = 7;
  EXPECT_FALSE(verify(torus, lcl, labels));
}

TEST(Verifier, MisPatternOnTorus) {
  // Anchors on the even-sum diagonal pattern form a maximal independent set
  // when n is even.
  Torus2D torus(8);
  auto lcl = problems::maximalIndependentSet();
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] =
        (torus.xOf(v) + torus.yOf(v)) % 2 == 0 ? 1 : 0;
  }
  // Every other node on the even diagonal: that is NOT independent (adjacent
  // diagonal cells are at L1 distance 2) -- actually (x+y) even cells are
  // pairwise non-adjacent, and odd cells are dominated. Verify.
  EXPECT_TRUE(verify(torus, lcl, labels));
}

TEST(Verifier, MaximalMatchingHandBuilt) {
  Torus2D torus(4);
  auto lcl = problems::maximalMatching();
  // Match each node in even column x with its east neighbour in column x+1.
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] = (torus.xOf(v) % 2 == 0) ? 2 : 4;
  }
  EXPECT_TRUE(verify(torus, lcl, labels));
}

TEST(Verifier, EdgeColouringHandBuilt) {
  // Even torus: colour E-edges by x parity (0/1), N-edges by y parity (2/3).
  Torus2D torus(6);
  const int k = 4;
  auto lcl = problems::edgeColouring(k);
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    int eColour = torus.xOf(v) % 2;
    int nColour = 2 + torus.yOf(v) % 2;
    labels[static_cast<std::size_t>(v)] = edgeLabelFrom(eColour, nColour, k);
  }
  EXPECT_TRUE(verify(torus, lcl, labels));
}

TEST(Verifier, EdgeLabelHelpersRoundTrip) {
  const int k = 5;
  for (int e = 0; e < k; ++e) {
    for (int n = 0; n < k; ++n) {
      int label = edgeLabelFrom(e, n, k);
      EXPECT_EQ(edgeColourOfE(label, k), e);
      EXPECT_EQ(edgeColourOfN(label, k), n);
    }
  }
}

TEST(Orientation, InDegreeComputation) {
  using namespace problems;
  // All edges point east/north everywhere: every node has in-degree 2
  // (from its west and south neighbours).
  int allOut = orientationLabel(true, true);
  EXPECT_EQ(orientationInDegree(allOut, allOut, allOut), 2);
  // All edges point inwards at this node: in-degree 2 from own E/N edges
  // plus whatever the neighbours send -- with neighbours pointing away from
  // us (their E/N edges point at us? no: w's E-edge enters iff eOut(w)).
  int allIn = orientationLabel(false, false);
  EXPECT_EQ(orientationInDegree(allIn, allIn, allIn), 2);
  EXPECT_EQ(orientationInDegree(allIn, allOut, allOut), 4);
  EXPECT_EQ(orientationInDegree(allOut, allIn, allIn), 0);
}

TEST(Orientation, InputOrientationSolvesTwoInX) {
  Torus2D torus(5);
  auto lcl = problems::orientation({2});
  int allOut = problems::orientationLabel(true, true);
  std::vector<int> labels(static_cast<std::size_t>(torus.size()),
                          allOut);
  EXPECT_TRUE(verify(torus, lcl, labels));
  EXPECT_TRUE(lcl.hasTrivialSolution());
}

TEST(GlobalSolver, TwoColouringFeasibilityByParity) {
  auto lcl = problems::vertexColouring(2);
  for (int n = 4; n <= 7; ++n) {
    Torus2D torus(n);
    auto result = solveGlobally(torus, lcl);
    EXPECT_EQ(result.feasible, n % 2 == 0) << n;
    if (result.feasible) {
      EXPECT_TRUE(verify(torus, lcl, result.labels));
    }
  }
}

TEST(GlobalSolver, ThreeColouringAlwaysFeasible) {
  auto lcl = problems::vertexColouring(3);
  for (int n : {4, 5, 6, 7}) {
    Torus2D torus(n);
    auto result = solveGlobally(torus, lcl);
    ASSERT_TRUE(result.feasible) << n;
    EXPECT_TRUE(verify(torus, lcl, result.labels));
  }
}

TEST(GlobalSolver, MisFeasibleAndVerified) {
  auto lcl = problems::maximalIndependentSet();
  Torus2D torus(5);
  auto result = solveGlobally(torus, lcl);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(verify(torus, lcl, result.labels));
}

TEST(GlobalSolver, SeededSolutionsVaryButVerify) {
  auto lcl = problems::vertexColouring(4);
  Torus2D torus(5);
  std::set<std::vector<int>> distinct;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto result = solveGlobally(torus, lcl, seed);
    ASSERT_TRUE(result.feasible);
    EXPECT_TRUE(verify(torus, lcl, result.labels));
    distinct.insert(result.labels);
  }
  EXPECT_GE(distinct.size(), 2u);
}

TEST(GlobalSolver, FourEdgeColouringParityObstruction) {
  // Theorem 21 (d=2): no 4-edge-colouring when n is odd.
  auto lcl = problems::edgeColouring(4);
  {
    Torus2D torus(3);
    EXPECT_FALSE(solveGlobally(torus, lcl).feasible);
  }
  {
    Torus2D torus(4);
    auto result = solveGlobally(torus, lcl);
    ASSERT_TRUE(result.feasible);
    EXPECT_TRUE(verify(torus, lcl, result.labels));
  }
}

TEST(GlobalSolver, BruteForceRoundsIsDiameter) {
  EXPECT_EQ(bruteForceRounds(8), 8);
  EXPECT_EQ(bruteForceRounds(9), 8);
}

class OrientationFeasibility
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(OrientationFeasibility, OneThreeOrientationParity) {
  // Lemma 24: no {1,3}-orientation for odd n; feasible for even n.
  auto [n, expectFeasible] = GetParam();
  Torus2D torus(n);
  auto lcl = problems::orientation({1, 3});
  auto result = solveGlobally(torus, lcl);
  EXPECT_EQ(result.feasible, expectFeasible);
  if (result.feasible) {
    EXPECT_TRUE(verify(torus, lcl, result.labels));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, OrientationFeasibility,
    ::testing::Values(std::make_tuple(3, false), std::make_tuple(4, true),
                      std::make_tuple(5, false), std::make_tuple(6, true)));

TEST(RenderLabelling, ProducesGridText) {
  Torus2D torus(3);
  auto lcl = problems::vertexColouring(3);
  std::vector<int> labels(9, 0);
  std::string text = renderLabelling(torus, lcl, labels);
  EXPECT_EQ(text, "0 0 0\n0 0 0\n0 0 0\n");
}

}  // namespace
}  // namespace lclgrid
