// Property tests for the compiled constraint-table core: for every problem
// in the library the LclTable must agree with the raw constructor predicate
// on all of sigma^5, and the derived data (projections, decomposability,
// trivial labels) must match the seed's brute-force definitions. Also
// covers the table-composing combinators, the batched verifier and the
// compiled cycle window tables.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cycle/cycle_lcl.hpp"
#include "lcl/combinators.hpp"
#include "lcl/grid_lcl.hpp"
#include "lcl/problems.hpp"
#include "lcl/verifier.hpp"

namespace lclgrid {
namespace {

/// Every radius-1 problem the library ships, at representative parameters.
std::vector<GridLcl> problemRegistry() {
  std::vector<GridLcl> registry;
  for (int k = 2; k <= 5; ++k) registry.push_back(problems::vertexColouring(k));
  registry.push_back(problems::maximalIndependentSet());
  registry.push_back(problems::independentSet());
  registry.push_back(problems::maximalMatching());
  registry.push_back(problems::edgeColouring(3));
  registry.push_back(problems::edgeColouring(4));
  registry.push_back(problems::orientation({2}));
  registry.push_back(problems::orientation({1, 3}));
  registry.push_back(problems::orientation({0, 4}));
  registry.push_back(problems::orientation({0, 1, 3}));
  registry.push_back(problems::noHorizontalOnePair());
  registry.push_back(problems::weakColouring(3, 1));
  registry.push_back(problems::weakColouring(2, 4));
  return registry;
}

/// Reference projection data computed with the seed's sigma^5 brute force
/// over the raw predicate (no table involved).
struct ReferenceProjections {
  bool edgeDecomposable = false;
  std::vector<std::uint8_t> hPairs;
  std::vector<std::uint8_t> vPairs;
};

ReferenceProjections bruteForceProjections(const GridLcl& lcl) {
  const int s = lcl.sigma();
  const auto& ok = lcl.predicate();
  ReferenceProjections ref;
  ref.hPairs.assign(static_cast<std::size_t>(s) * s, 0);
  ref.vPairs.assign(static_cast<std::size_t>(s) * s, 0);
  for (int c = 0; c < s; ++c) {
    for (int n = 0; n < s; ++n) {
      for (int e = 0; e < s; ++e) {
        for (int so = 0; so < s; ++so) {
          for (int w = 0; w < s; ++w) {
            if (!ok(c, n, e, so, w)) continue;
            ref.hPairs[static_cast<std::size_t>(w) * s + c] = 1;
            ref.hPairs[static_cast<std::size_t>(c) * s + e] = 1;
            ref.vPairs[static_cast<std::size_t>(so) * s + c] = 1;
            ref.vPairs[static_cast<std::size_t>(c) * s + n] = 1;
          }
        }
      }
    }
  }
  ref.edgeDecomposable = true;
  for (int c = 0; c < s && ref.edgeDecomposable; ++c) {
    for (int n = 0; n < s && ref.edgeDecomposable; ++n) {
      for (int e = 0; e < s && ref.edgeDecomposable; ++e) {
        for (int so = 0; so < s && ref.edgeDecomposable; ++so) {
          for (int w = 0; w < s; ++w) {
            bool byPairs = ref.hPairs[static_cast<std::size_t>(w) * s + c] &&
                           ref.hPairs[static_cast<std::size_t>(c) * s + e] &&
                           ref.vPairs[static_cast<std::size_t>(so) * s + c] &&
                           ref.vPairs[static_cast<std::size_t>(c) * s + n];
            if (byPairs != ok(c, n, e, so, w)) {
              ref.edgeDecomposable = false;
              break;
            }
          }
        }
      }
    }
  }
  return ref;
}

/// Asserts table agreement with an arbitrary reference over all of sigma^5.
template <typename Reference>
void expectAgreesEverywhere(const GridLcl& lcl, Reference&& reference) {
  const int s = lcl.sigma();
  long long mismatches = 0;
  for (int c = 0; c < s; ++c) {
    for (int n = 0; n < s; ++n) {
      for (int e = 0; e < s; ++e) {
        for (int so = 0; so < s; ++so) {
          for (int w = 0; w < s; ++w) {
            if (lcl.allows(c, n, e, so, w) != reference(c, n, e, so, w)) {
              ++mismatches;
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(mismatches, 0) << lcl.name();
}

TEST(LclTable, EveryRegistryProblemCompiles) {
  for (const GridLcl& lcl : problemRegistry()) {
    EXPECT_TRUE(lcl.hasTable()) << lcl.name();
    EXPECT_EQ(lcl.table().sigma(), lcl.sigma()) << lcl.name();
  }
}

TEST(LclTable, TableAgreesWithPredicateOnSigmaToTheFive) {
  for (const GridLcl& lcl : problemRegistry()) {
    ASSERT_TRUE(lcl.hasTable()) << lcl.name();
    const auto& ok = lcl.predicate();
    expectAgreesEverywhere(
        lcl, [&ok](int c, int n, int e, int s, int w) {
          return ok(c, n, e, s, w);
        });
  }
}

TEST(LclTable, ProjectionsMatchBruteForce) {
  for (const GridLcl& lcl : problemRegistry()) {
    ReferenceProjections ref = bruteForceProjections(lcl);
    EXPECT_EQ(lcl.isEdgeDecomposable(), ref.edgeDecomposable) << lcl.name();
    const int s = lcl.sigma();
    for (int a = 0; a < s; ++a) {
      for (int b = 0; b < s; ++b) {
        EXPECT_EQ(lcl.horizontalOk(a, b),
                  ref.hPairs[static_cast<std::size_t>(a) * s + b] != 0)
            << lcl.name() << " h(" << a << "," << b << ")";
        EXPECT_EQ(lcl.verticalOk(a, b),
                  ref.vPairs[static_cast<std::size_t>(a) * s + b] != 0)
            << lcl.name() << " v(" << a << "," << b << ")";
      }
    }
  }
}

TEST(LclTable, TrivialLabelMatchesPredicateScan) {
  for (const GridLcl& lcl : problemRegistry()) {
    const auto& ok = lcl.predicate();
    int expected = -1;
    for (int c = 0; c < lcl.sigma(); ++c) {
      if (ok(c, c, c, c, c)) {
        expected = c;
        break;
      }
    }
    EXPECT_EQ(lcl.trivialLabel(), expected) << lcl.name();
    EXPECT_EQ(lcl.hasTrivialSolution(), expected >= 0) << lcl.name();
  }
}

TEST(LclTable, ForbiddenIterationMatchesRowCounts) {
  for (const GridLcl& lcl : problemRegistry()) {
    const LclTable& table = lcl.table();
    long long forbidden = 0;
    table.forEachForbidden(
        [&forbidden](int, int, int, int, int) { ++forbidden; });
    long long allowed = 0;
    table.forEachAllowed([&allowed](int, int, int, int, int) { ++allowed; });
    EXPECT_EQ(forbidden, table.forbiddenRowCount()) << lcl.name();
    EXPECT_EQ(allowed + forbidden,
              static_cast<long long>(table.rowCount()) * table.sigma())
        << lcl.name();
  }
}

TEST(LclTable, OutOfRangeArgumentsFallBackToPredicateSemantics) {
  auto lcl = problems::vertexColouring(3);
  const auto& ok = lcl.predicate();
  // The raw colouring predicate happily accepts garbage labels; allows()
  // must keep agreeing with it rather than reading out of the table.
  EXPECT_EQ(lcl.allows(7, 0, 1, 2, 0), ok(7, 0, 1, 2, 0));
  EXPECT_EQ(lcl.allows(0, -1, 1, 2, 0), ok(0, -1, 1, 2, 0));
}

// --- combinators compose tables directly ----------------------------------

TEST(TableCombinators, DisjointUnionMatchesSemantics) {
  GridLcl p = problems::vertexColouring(3);
  GridLcl q = problems::independentSet();
  GridLcl u = problems::disjointUnion(p, q);
  ASSERT_TRUE(u.hasTable());
  const int sigmaP = p.sigma();
  expectAgreesEverywhere(u, [&](int c, int n, int e, int s, int w) {
    bool cIsP = c < sigmaP;
    for (int other : {n, e, s, w}) {
      if ((other < sigmaP) != cIsP) return false;
    }
    if (cIsP) return p.allows(c, n, e, s, w);
    return q.allows(c - sigmaP, n - sigmaP, e - sigmaP, s - sigmaP,
                    w - sigmaP);
  });
}

TEST(TableCombinators, RelabelMatchesSemantics) {
  GridLcl p = problems::maximalMatching();
  std::vector<int> permutation = {4, 2, 0, 1, 3};
  GridLcl r = problems::relabel(p, permutation);
  ASSERT_TRUE(r.hasTable());
  // allows under new names == allows of the pre-images.
  std::vector<int> inverse(permutation.size());
  for (std::size_t old = 0; old < permutation.size(); ++old) {
    inverse[static_cast<std::size_t>(permutation[old])] =
        static_cast<int>(old);
  }
  expectAgreesEverywhere(r, [&](int c, int n, int e, int s, int w) {
    auto back = [&inverse](int label) {
      return inverse[static_cast<std::size_t>(label)];
    };
    return p.allows(back(c), back(n), back(e), back(s), back(w));
  });
}

TEST(TableCombinators, FlipOrientationMatchesSemantics) {
  GridLcl p = problems::orientation({1, 3});
  GridLcl f = problems::flipOrientation(p);
  ASSERT_TRUE(f.hasTable());
  expectAgreesEverywhere(f, [&](int c, int n, int e, int s, int w) {
    return p.allows(c ^ 3, n ^ 3, e ^ 3, s ^ 3, w ^ 3);
  });
  // Flipping {1,3} gives the {4-x : x in X} = {1,3} problem again: same
  // feasibility structure (the Section 11 complexity-equivalence argument).
  EXPECT_EQ(f.hasTrivialSolution(), p.hasTrivialSolution());
}

TEST(TableCombinators, RestrictLabelsMatchesSmallerProblem) {
  GridLcl big = problems::vertexColouring(4);
  GridLcl restricted =
      problems::restrictLabels(big, {true, true, true, false});
  ASSERT_TRUE(restricted.hasTable());
  GridLcl expected = problems::vertexColouring(3);
  expectAgreesEverywhere(restricted, [&](int c, int n, int e, int s, int w) {
    return expected.allows(c, n, e, s, w);
  });
}

// --- label-name hygiene ----------------------------------------------------

TEST(GridLclNames, LabelNameBoundsChecked) {
  auto lcl = problems::maximalMatching();
  EXPECT_EQ(lcl.labelName(-1), "?");
  EXPECT_EQ(lcl.labelName(lcl.sigma()), "?");
  EXPECT_EQ(lcl.labelName(127), "?");
  EXPECT_EQ(lcl.labelName(1), "N");
}

TEST(GridLclNames, UnnamedLabelsRenderAsNumbers) {
  auto lcl = problems::vertexColouring(3);
  EXPECT_EQ(lcl.labelName(2), "2");
  EXPECT_EQ(lcl.labelName(3), "?");
  EXPECT_EQ(lcl.labelName(-5), "?");
}

TEST(GridLclNames, SetLabelNamesValidatesArity) {
  auto lcl = problems::vertexColouring(3);
  EXPECT_THROW(lcl.setLabelNames({"a", "b"}), std::invalid_argument);
  EXPECT_THROW(lcl.setLabelNames({"a", "b", "c", "d"}), std::invalid_argument);
  EXPECT_NO_THROW(lcl.setLabelNames({"a", "b", "c"}));
  EXPECT_EQ(lcl.labelName(1), "b");
}

// --- batched verification ---------------------------------------------------

std::vector<int> diagonalColouring(const Torus2D& torus, int k) {
  std::vector<int> labels(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    labels[static_cast<std::size_t>(v)] = (torus.xOf(v) + torus.yOf(v)) % k;
  }
  return labels;
}

TEST(BatchVerifier, CountMatchesListViolations) {
  Torus2D torus(6);
  auto lcl = problems::vertexColouring(3);
  auto labels = diagonalColouring(torus, 3);
  EXPECT_EQ(countViolations(torus, lcl, labels), 0);
  labels[7] = labels[8];  // one broken node breaks its whole neighbourhood
  auto reported = listViolations(torus, lcl, labels, torus.size());
  EXPECT_EQ(countViolations(torus, lcl, labels),
            static_cast<std::int64_t>(reported.size()));
  EXPECT_FALSE(verify(torus, lcl, labels));
}

TEST(BatchVerifier, BatchOverManyLabellings) {
  Torus2D torus(5);
  auto lcl = problems::vertexColouring(3);
  auto good = diagonalColouring(torus, 3);  // 5 % 3 != 0... check via verify
  bool goodFeasible = verify(torus, lcl, good);
  auto bad = good;
  bad[0] = bad[1];

  std::vector<int> batch;
  batch.insert(batch.end(), good.begin(), good.end());
  batch.insert(batch.end(), bad.begin(), bad.end());
  batch.insert(batch.end(), good.begin(), good.end());

  auto feasible = verifyBatch(torus, lcl, batch);
  ASSERT_EQ(feasible.size(), 3u);
  EXPECT_EQ(feasible[0] != 0, goodFeasible);
  EXPECT_EQ(feasible[1], 0);
  EXPECT_EQ(feasible[2] != 0, goodFeasible);

  auto counts = countViolationsBatch(torus, lcl, batch);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], countViolations(torus, lcl, good));
  EXPECT_EQ(counts[1], countViolations(torus, lcl, bad));
  EXPECT_GT(counts[1], 0);
}

TEST(BatchVerifier, RejectsMisalignedBatch) {
  Torus2D torus(4);
  auto lcl = problems::vertexColouring(2);
  std::vector<int> batch(torus.size() + 1, 0);
  EXPECT_THROW(verifyBatch(torus, lcl, batch), std::invalid_argument);
}

TEST(BatchVerifier, HeterogeneousToriInOnePass) {
  Torus2D small(4), large(8);
  auto lcl = problems::vertexColouring(2);
  auto smallLabels = diagonalColouring(small, 2);
  auto largeLabels = diagonalColouring(large, 2);
  auto badLabels = smallLabels;
  badLabels[3] = badLabels[3] == 0 ? 1 : 0;

  std::vector<LabellingInstance> instances = {
      {&small, smallLabels}, {&large, largeLabels}, {&small, badLabels}};
  auto feasible = verifyBatch(lcl, instances);
  ASSERT_EQ(feasible.size(), 3u);
  EXPECT_EQ(feasible[0], 1);
  EXPECT_EQ(feasible[1], 1);
  EXPECT_EQ(feasible[2], 0);
}

TEST(BatchVerifier, OutOfAlphabetLabelsStillRejected) {
  Torus2D torus(4);
  auto lcl = problems::vertexColouring(2);
  auto labels = diagonalColouring(torus, 2);
  labels[5] = 9;
  EXPECT_FALSE(verify(torus, lcl, labels));
  EXPECT_GE(countViolations(torus, lcl, labels), 1);
}

TEST(BatchVerifier, TinyToriWrapCorrectly) {
  // n = 1 and n = 2 wrap every direction onto the same one or two nodes;
  // the row-pointer kernel must agree with the step-based reference.
  auto lcl = problems::vertexColouring(2);
  for (int n : {1, 2, 3}) {
    Torus2D torus(n);
    std::vector<int> labels(static_cast<std::size_t>(torus.size()));
    for (int pattern = 0; pattern < (1 << torus.size()); ++pattern) {
      for (int v = 0; v < torus.size(); ++v) {
        labels[static_cast<std::size_t>(v)] = (pattern >> v) & 1;
      }
      EXPECT_EQ(verify(torus, lcl, labels),
                listViolations(torus, lcl, labels, 1).empty())
          << "n=" << n << " pattern=" << pattern;
    }
  }
}

// --- compiled cycle window tables ------------------------------------------

TEST(CycleWindowTable, AgreesWithPredicateOnAllWindows) {
  std::vector<cycle::CycleLcl> registry = {
      cycle::cycleColouring(2),      cycle::cycleColouring(3),
      cycle::cycleMaximalIndependentSet(), cycle::cycleMaximalMatching(),
      cycle::cycleDominatingMarks(2), cycle::cycleExactSpacing(3)};
  for (const auto& lcl : registry) {
    ASSERT_TRUE(lcl.hasWindowTable()) << lcl.name();
    const auto& table = lcl.windowTable();
    std::vector<int> window(static_cast<std::size_t>(lcl.windowLength()), 0);
    for (long long code = 0; code < table.windowCount(); ++code) {
      long long rest = code;
      for (int i = 0; i < lcl.windowLength(); ++i) {
        window[static_cast<std::size_t>(i)] = static_cast<int>(rest % lcl.sigma());
        rest /= lcl.sigma();
      }
      EXPECT_EQ(table.allowsCode(code), lcl.allowsWindow(window))
          << lcl.name() << " code=" << code;
      EXPECT_EQ(table.encode(window), code) << lcl.name();
    }
  }
}

TEST(CycleWindowTable, RollingVerifierMatchesWindowByWindow) {
  auto lcl = cycle::cycleExactSpacing(3);
  // All rotations of the feasible countdown pattern, plus corruptions.
  std::vector<int> labels = {2, 1, 0, 2, 1, 0, 2, 1, 0};
  EXPECT_TRUE(lcl.verifyCycle(labels));
  EXPECT_EQ(lcl.firstViolation(labels), -1);
  labels[4] = 0;
  EXPECT_FALSE(lcl.verifyCycle(labels));
  int violation = lcl.firstViolation(labels);
  ASSERT_GE(violation, 0);
  // The reported window must genuinely be infeasible.
  std::vector<int> window(static_cast<std::size_t>(lcl.windowLength()));
  for (int offset = 0; offset < lcl.windowLength(); ++offset) {
    window[static_cast<std::size_t>(offset)] =
        labels[static_cast<std::size_t>(
            (violation + offset) % static_cast<int>(labels.size()))];
  }
  EXPECT_FALSE(lcl.allowsWindow(window));
}

TEST(CycleWindowTable, OutOfAlphabetCycleLabelsRejected) {
  auto lcl = cycle::cycleColouring(3);
  std::vector<int> labels = {0, 1, 2, 0, 1, 5};
  EXPECT_FALSE(lcl.verifyCycle(labels));
}

// --- fingerprint properties (the family-sweep cache key) --------------------

TEST(Fingerprint, EqualTablesHashEqualAcrossConstructionPaths) {
  // Equal content => equal fingerprint, regardless of how the table was
  // built: a re-compile of the same predicate, the identity remap, and a
  // repeated disjointUnion must all collide with their originals exactly.
  for (const GridLcl& lcl : problemRegistry()) {
    const LclTable& table = lcl.table();
    LclTable recompiled =
        LclTable::compile(lcl.sigma(), lcl.deps(), lcl.predicate());
    EXPECT_TRUE(table.sameContent(recompiled)) << lcl.name();
    EXPECT_EQ(table.fingerprint(), recompiled.fingerprint()) << lcl.name();

    std::vector<int> identity(static_cast<std::size_t>(lcl.sigma()));
    for (int i = 0; i < lcl.sigma(); ++i) {
      identity[static_cast<std::size_t>(i)] = i;
    }
    LclTable remapped = LclTable::remap(table, identity);
    EXPECT_TRUE(table.sameContent(remapped)) << lcl.name();
    EXPECT_EQ(table.fingerprint(), remapped.fingerprint()) << lcl.name();
  }

  const LclTable& p = problems::independentSet().table();
  const LclTable& q = problems::maximalIndependentSet().table();
  EXPECT_EQ(LclTable::disjointUnion(p, q).fingerprint(),
            LclTable::disjointUnion(p, q).fingerprint());
}

TEST(Fingerprint, NearCollidingTablesAreDistinguished) {
  // The cache's collision guard: tables that differ in exactly one tuple
  // (the hardest near-collision to separate) must differ in sameContent --
  // and, for FNV-1a over the rows, in fingerprint as well. sweepFamily
  // compares sameContent behind the hash, so even an engineered 64-bit
  // collision could never alias two different relations.
  const int sigma = 3;
  const std::uint8_t deps = kDepN | kDepE;
  auto base = [](int c, int n, int e, int, int) {
    return (c + n + e) % 3 != 0;
  };
  LclTable baseTable = LclTable::compile(sigma, deps, base);
  LclTable baseAgain = LclTable::compile(sigma, deps, base);
  ASSERT_TRUE(baseTable.sameContent(baseAgain));

  for (int fc = 0; fc < sigma; ++fc) {
    for (int fn = 0; fn < sigma; ++fn) {
      for (int fe = 0; fe < sigma; ++fe) {
        auto flipped = [&](int c, int n, int e, int s, int w) {
          bool value = base(c, n, e, s, w);
          if (c == fc && n == fn && e == fe) return !value;
          return value;
        };
        LclTable flippedTable = LclTable::compile(sigma, deps, flipped);
        EXPECT_FALSE(baseTable.sameContent(flippedTable))
            << "flip at (" << fc << "," << fn << "," << fe << ")";
        EXPECT_NE(baseTable.fingerprint(), flippedTable.fingerprint())
            << "flip at (" << fc << "," << fn << "," << fe << ")";
      }
    }
  }
}

TEST(Fingerprint, DepsMaskIsPartOfTheContent) {
  // The same relation compiled under different dependency masks stores
  // different rows; the guard must separate them too (documented on
  // LclTable::fingerprint).
  const int sigma = 2;
  auto alwaysTrue = [](int, int, int, int, int) { return true; };
  LclTable narrow = LclTable::compile(sigma, kDepN, alwaysTrue);
  LclTable wide = LclTable::compile(sigma, kDepN | kDepE, alwaysTrue);
  EXPECT_FALSE(narrow.sameContent(wide));
  EXPECT_NE(narrow.fingerprint(), wide.fingerprint());
}

}  // namespace
}  // namespace lclgrid
