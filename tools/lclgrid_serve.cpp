// The verification service daemon binary (docs/service.md): hosts
// service::VerificationService on a Unix socket or TCP loopback and blocks
// until a client sends a kShutdown frame (or the process receives SIGINT /
// SIGTERM). Clients speak the binary framing of service/protocol.hpp, or
// plain newline JSON for debugging:
//
//   printf '{"op":"stats","id":1}\n' | nc 127.0.0.1 <port>
//
// Usage: lclgrid_serve [--unix PATH | --port N] [--threads N]
//                      [--engine-threads N] [--max-queued N] [--cache N]
//                      [--report-cache N] [--max-payload BYTES]
//                      [--max-connections N] [--test-ops]
//                      [--drain-timeout-ms N] [--deadline-ms N]
//                      [--send-timeout-ms N] [--shed | --no-shed]
//                      [--shed-depth N]
//   --unix PATH        listen on a Unix socket (default: TCP loopback)
//   --port N           TCP port (default 0 = ephemeral; resolved port is
//                      printed on stdout)
//   --threads N        service worker threads (default 2)
//   --engine-threads N per-request engine thread budget (default 1)
//   --max-queued N     admitted requests per client before kBusy (default 8)
//   --cache N          compiled-problem LRU capacity (default 64)
//   --report-cache N   oracle-report LRU capacity (default 64)
//   --max-payload B    frame payload size limit in bytes (default 64 MiB)
//   --max-connections N  concurrent connections (default 64)
//   --test-ops         enable the kSleep test operation
//   --drain-timeout-ms N  shutdown drains admitted requests this long, then
//                      answers the queued remainder kTimeout (default 2000)
//   --deadline-ms N    per-request queue-wait deadline; expired requests
//                      answer kTimeout, never execute (default 0 = none)
//   --send-timeout-ms N  SO_SNDTIMEO per connection (default 5000)
//   --shed / --no-shed enable / disable load shedding (default on)
//   --shed-depth N     queue depth where shedding engages (default
//                      4 * threads)
//
// Fault injection (docs/robustness.md): set LCLGRID_FAULTS, e.g.
//   LCLGRID_FAULTS='service.write_response:drop@nth=3' lclgrid_serve ...
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "service/service.hpp"

namespace {

lclgrid::service::VerificationService* gService = nullptr;

void onSignal(int) {
  // stop() is not async-signal-safe; just flip the daemon's shutdown flag
  // the same way a client kShutdown frame would. The write below is safe:
  // requestShutdown only touches atomics + a cv (worst case the signal
  // lands before gService is set and the default exit applies next time).
  if (gService != nullptr) gService->noteSignalShutdown();
}

}  // namespace

int main(int argc, char** argv) {
  lclgrid::service::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const auto intArg = [&](const char* flag, int* out) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        *out = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    int value = 0;
    if (std::strcmp(argv[i], "--unix") == 0 && i + 1 < argc) {
      config.unixSocketPath = argv[++i];
    } else if (intArg("--port", &config.tcpPort) ||
               intArg("--threads", &config.serviceThreads) ||
               intArg("--engine-threads", &config.engineThreads) ||
               intArg("--max-queued", &config.maxQueuedPerClient) ||
               intArg("--max-connections", &config.maxConnections) ||
               intArg("--drain-timeout-ms", &config.drainTimeoutMs) ||
               intArg("--deadline-ms", &config.requestDeadlineMs) ||
               intArg("--send-timeout-ms", &config.sendTimeoutMs) ||
               intArg("--shed-depth", &config.shedQueueDepth)) {
      // parsed in place
    } else if (std::strcmp(argv[i], "--shed") == 0) {
      config.shedEnabled = true;
    } else if (std::strcmp(argv[i], "--no-shed") == 0) {
      config.shedEnabled = false;
    } else if (intArg("--cache", &value)) {
      config.problemCacheCapacity = static_cast<std::size_t>(value);
    } else if (intArg("--report-cache", &value)) {
      config.reportCacheCapacity = static_cast<std::size_t>(value);
    } else if (intArg("--max-payload", &value)) {
      config.maxPayloadBytes = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--test-ops") == 0) {
      config.enableTestOps = true;
    } else {
      std::fprintf(stderr, "lclgrid_serve: unknown argument %s\n", argv[i]);
      return 2;
    }
  }

  lclgrid::service::VerificationService service(config);
  try {
    service.start();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "lclgrid_serve: %s\n", error.what());
    return 1;
  }
  gService = &service;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  if (config.unixSocketPath.empty()) {
    std::printf("listening on 127.0.0.1:%d\n", service.port());
  } else {
    std::printf("listening on %s\n", config.unixSocketPath.c_str());
  }
  std::fflush(stdout);
  service.waitForShutdown();
  service.stop();
  std::printf("%s\n", service.statsJson().c_str());
  return 0;
}
