#include "cycle/cycle_lcl.hpp"

#include <mutex>
#include <stdexcept>

namespace lclgrid::cycle {

long long CycleWindowTable::windowCountFor(int sigma, int windowLength) {
  if (sigma < 1 || windowLength < 1) return -1;
  long long windows = 1;
  for (int i = 0; i < windowLength; ++i) {
    if (windows > kMaxWindows / sigma) return -1;
    windows *= sigma;
  }
  return windows <= kMaxWindows ? windows : -1;
}

bool CycleWindowTable::compilable(int sigma, int windowLength) {
  return windowCountFor(sigma, windowLength) > 0;
}

CycleWindowTable::CycleWindowTable(int sigma, int windowLength)
    : sigma_(sigma), windowLength_(windowLength) {
  if (!compilable(sigma, windowLength)) {
    throw std::invalid_argument(
        "CycleWindowTable: window relation too large to compile");
  }
  windowCount_ = 1;
  for (int i = 0; i < windowLength; ++i) windowCount_ *= sigma;
  words_.assign(static_cast<std::size_t>((windowCount_ + 63) >> 6), 0);
}

CycleWindowTable CycleWindowTable::compile(int sigma, int windowLength,
                                           const WindowPredicate& ok) {
  if (!ok) {
    throw std::invalid_argument("CycleWindowTable::compile: missing predicate");
  }
  CycleWindowTable table(sigma, windowLength);
  // Enumerate codes in counting order, maintaining the decoded window like
  // a base-sigma odometer: one predicate call per window, no re-decoding.
  std::vector<int> window(static_cast<std::size_t>(windowLength), 0);
  for (long long code = 0; code < table.windowCount_; ++code) {
    if (ok(window)) {
      table.words_[static_cast<std::size_t>(code >> 6)] |=
          std::uint64_t{1} << (static_cast<std::uint64_t>(code) & 63u);
    }
    for (int digit = 0; digit < windowLength; ++digit) {
      int& value = window[static_cast<std::size_t>(digit)];
      if (++value < sigma) break;
      value = 0;
    }
  }
  return table;
}

long long CycleWindowTable::encode(std::span<const int> window) const {
  if (static_cast<int>(window.size()) != windowLength_) {
    throw std::invalid_argument("CycleWindowTable: wrong window length");
  }
  long long code = 0;
  for (int i = windowLength_ - 1; i >= 0; --i) {
    int label = window[static_cast<std::size_t>(i)];
    if (label < 0 || label >= sigma_) {
      throw std::invalid_argument("CycleWindowTable: label out of range");
    }
    code = code * sigma_ + label;
  }
  return code;
}

CycleLcl::CycleLcl(std::string name, int sigma, int radius, WindowPredicate ok)
    : name_(std::move(name)), sigma_(sigma), radius_(radius), ok_(std::move(ok)) {
  if (sigma < 1) throw std::invalid_argument("CycleLcl: empty alphabet");
  if (radius < 1) throw std::invalid_argument("CycleLcl: radius must be >= 1");
  if (!ok_) throw std::invalid_argument("CycleLcl: missing predicate");
}

bool CycleLcl::hasWindowTable() const {
  return CycleWindowTable::compilable(sigma_, windowLength());
}

std::shared_ptr<const CycleWindowTable> CycleLcl::tableIfCompiled() const {
  return std::atomic_load_explicit(&table_, std::memory_order_acquire);
}

const CycleWindowTable& CycleLcl::windowTable() const {
  // Lock-free once compiled; the mutex only serialises the one-time
  // compile (it is global because CycleLcl must stay copyable and
  // compiles are rare). table_ is only ever set once, so the returned
  // reference stays valid for the problem's lifetime.
  if (auto table = tableIfCompiled()) return *table;
  static std::mutex compileMutex;
  std::lock_guard<std::mutex> lock(compileMutex);
  if (auto table = tableIfCompiled()) return *table;
  if (!hasWindowTable()) {
    throw std::logic_error("CycleLcl: '" + name_ +
                           "' has no compiled window table");
  }
  auto compiled = std::make_shared<const CycleWindowTable>(
      CycleWindowTable::compile(sigma_, windowLength(), ok_));
  std::atomic_store_explicit(&table_, compiled, std::memory_order_release);
  return *compiled;
}

bool CycleLcl::allowsWindow(const std::vector<int>& window) const {
  if (static_cast<int>(window.size()) != windowLength()) {
    throw std::invalid_argument("CycleLcl: wrong window length");
  }
  for (int label : window) {
    if (label < 0 || label >= sigma_) return false;
  }
  // Use the compiled table when some batch consumer already paid for it;
  // a lone query does not justify the compile.
  if (auto table = tableIfCompiled()) {
    return table->allowsCode(table->encode(window));
  }
  return ok_(window);
}

int CycleLcl::firstViolationFunctional(const std::vector<int>& labels) const {
  const int n = static_cast<int>(labels.size());
  std::vector<int> window(static_cast<std::size_t>(windowLength()));
  for (int start = 0; start < n; ++start) {
    for (int offset = 0; offset < windowLength(); ++offset) {
      window[static_cast<std::size_t>(offset)] =
          labels[static_cast<std::size_t>((start + offset) % n)];
    }
    if (!allowsWindow(window)) return start;
  }
  return -1;
}

int CycleLcl::firstViolation(const std::vector<int>& labels) const {
  const int n = static_cast<int>(labels.size());
  if (n < windowLength()) {
    throw std::invalid_argument("CycleLcl: cycle shorter than window");
  }
  bool inRange = true;
  for (int label : labels) {
    if (label < 0 || label >= sigma_) {
      inRange = false;
      break;
    }
  }
  // The rolling-code path needs the compiled table; build it implicitly
  // only when it is small (or already paid for) -- a lone verify of a
  // large-alphabet problem must not trigger a sigma^(2r+1) compile.
  // Out-of-range labels keep the seed's window-by-window semantics.
  const long long windows =
      CycleWindowTable::windowCountFor(sigma_, windowLength());
  const bool tableWorthIt =
      windows > 0 &&
      (tableIfCompiled() != nullptr || windows <= kAutoCompileWindows);
  if (!inRange || !tableWorthIt) {
    return firstViolationFunctional(labels);
  }

  const CycleWindowTable& table = windowTable();
  const int length = windowLength();
  // Rolling base-sigma window code: position 0 is the least-significant
  // digit, so advancing the window is one divide plus one multiply-add.
  long long high = 1;
  for (int i = 0; i < length - 1; ++i) high *= sigma_;
  long long code = 0;
  for (int i = length - 1; i >= 0; --i) {
    code = code * sigma_ + labels[static_cast<std::size_t>(i % n)];
  }
  for (int start = 0; start < n; ++start) {
    if (!table.allowsCode(code)) return start;
    code = code / sigma_ +
           high * labels[static_cast<std::size_t>((start + length) % n)];
  }
  return -1;
}

bool CycleLcl::verifyCycle(const std::vector<int>& labels) const {
  return firstViolation(labels) == -1;
}

CycleLcl cycleColouring(int k) {
  if (k < 1) throw std::invalid_argument("cycleColouring: k must be >= 1");
  return CycleLcl("cycle-" + std::to_string(k) + "-colouring", k, 1,
                  [](const std::vector<int>& w) {
                    return w[0] != w[1] && w[1] != w[2];
                  });
}

CycleLcl cycleMaximalIndependentSet() {
  return CycleLcl("cycle-mis", 2, 1, [](const std::vector<int>& w) {
    if (w[1] == 1) return w[0] == 0 && w[2] == 0;
    return w[0] == 1 || w[2] == 1;
  });
}

CycleLcl cycleIndependentSet() {
  return CycleLcl("cycle-independent-set", 2, 1,
                  [](const std::vector<int>& w) {
                    if (w[1] == 1) return w[0] == 0 && w[2] == 0;
                    return true;
                  });
}

CycleLcl cycleMaximalMatching() {
  // Label = the node's outgoing edge is matched (1) or not (0).
  // Matching: consecutive outgoing edges cannot both be matched.
  // Maximality: an edge with both endpoints unmatched is forbidden, i.e.
  // labels (0,0,0) around a node would leave edge (v, succ v) augmentable
  // when neither v's incoming nor succ's outgoing edge is matched.
  return CycleLcl("cycle-maximal-matching", 2, 1,
                  [](const std::vector<int>& w) {
                    if (w[0] == 1 && w[1] == 1) return false;
                    if (w[1] == 1 && w[2] == 1) return false;
                    // Edge owned by w[1] is unmatched and both endpoints
                    // unmatched: w[0] (incoming of w1) and w[2] (outgoing of
                    // the successor) both unmatched too.
                    if (w[0] == 0 && w[1] == 0 && w[2] == 0) return false;
                    return true;
                  });
}

CycleLcl cycleDominatingMarks(int spacing) {
  if (spacing < 1 || spacing > 3) {
    throw std::invalid_argument("cycleDominatingMarks: spacing must be 1..3");
  }
  // Radius-1 form: among any window of 3 consecutive nodes, at least one of
  // the first `spacing` of them... for radius-1 we only support spacing <= 3:
  // the window of length 3 must contain a mark among its first `spacing`+?
  // Simplest faithful form: no window of 3 is completely unmarked when
  // spacing == 3; tighter versions forbid unmarked pairs/singles.
  return CycleLcl(
      "cycle-dominating-marks-" + std::to_string(spacing), 2, 1,
      [spacing](const std::vector<int>& w) {
        int window = 0;
        for (int i = 0; i < 3; ++i) window += w[static_cast<std::size_t>(i)];
        if (spacing == 1) return w[1] == 1;           // everything marked
        if (spacing == 2) return w[0] + w[1] >= 1;    // no 2 consecutive 0s
        return window >= 1;                           // no 3 consecutive 0s
      });
}

CycleLcl cycleExactSpacing(int period) {
  if (period < 2) throw std::invalid_argument("cycleExactSpacing: period >= 2");
  // Alphabet {0, ..., period-1}: a countdown to the next mark; label 0 is
  // the mark. Feasible iff labels decrease by 1 mod period along the cycle.
  return CycleLcl("cycle-exact-spacing-" + std::to_string(period), period, 1,
                  [period](const std::vector<int>& w) {
                    return w[1] == (w[0] + period - 1) % period &&
                           w[2] == (w[1] + period - 1) % period;
                  });
}

}  // namespace lclgrid::cycle
