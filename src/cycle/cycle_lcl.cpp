#include "cycle/cycle_lcl.hpp"

#include <stdexcept>

namespace lclgrid::cycle {

CycleLcl::CycleLcl(std::string name, int sigma, int radius, WindowPredicate ok)
    : name_(std::move(name)), sigma_(sigma), radius_(radius), ok_(std::move(ok)) {
  if (sigma < 1) throw std::invalid_argument("CycleLcl: empty alphabet");
  if (radius < 1) throw std::invalid_argument("CycleLcl: radius must be >= 1");
  if (!ok_) throw std::invalid_argument("CycleLcl: missing predicate");
}

bool CycleLcl::allowsWindow(const std::vector<int>& window) const {
  if (static_cast<int>(window.size()) != windowLength()) {
    throw std::invalid_argument("CycleLcl: wrong window length");
  }
  for (int label : window) {
    if (label < 0 || label >= sigma_) return false;
  }
  return ok_(window);
}

int CycleLcl::firstViolation(const std::vector<int>& labels) const {
  const int n = static_cast<int>(labels.size());
  if (n < windowLength()) {
    throw std::invalid_argument("CycleLcl: cycle shorter than window");
  }
  std::vector<int> window(static_cast<std::size_t>(windowLength()));
  for (int start = 0; start < n; ++start) {
    for (int offset = 0; offset < windowLength(); ++offset) {
      window[static_cast<std::size_t>(offset)] =
          labels[static_cast<std::size_t>((start + offset) % n)];
    }
    if (!allowsWindow(window)) return start;
  }
  return -1;
}

bool CycleLcl::verifyCycle(const std::vector<int>& labels) const {
  return firstViolation(labels) == -1;
}

CycleLcl cycleColouring(int k) {
  if (k < 1) throw std::invalid_argument("cycleColouring: k must be >= 1");
  return CycleLcl("cycle-" + std::to_string(k) + "-colouring", k, 1,
                  [](const std::vector<int>& w) {
                    return w[0] != w[1] && w[1] != w[2];
                  });
}

CycleLcl cycleMaximalIndependentSet() {
  return CycleLcl("cycle-mis", 2, 1, [](const std::vector<int>& w) {
    if (w[1] == 1) return w[0] == 0 && w[2] == 0;
    return w[0] == 1 || w[2] == 1;
  });
}

CycleLcl cycleIndependentSet() {
  return CycleLcl("cycle-independent-set", 2, 1,
                  [](const std::vector<int>& w) {
                    if (w[1] == 1) return w[0] == 0 && w[2] == 0;
                    return true;
                  });
}

CycleLcl cycleMaximalMatching() {
  // Label = the node's outgoing edge is matched (1) or not (0).
  // Matching: consecutive outgoing edges cannot both be matched.
  // Maximality: an edge with both endpoints unmatched is forbidden, i.e.
  // labels (0,0,0) around a node would leave edge (v, succ v) augmentable
  // when neither v's incoming nor succ's outgoing edge is matched.
  return CycleLcl("cycle-maximal-matching", 2, 1,
                  [](const std::vector<int>& w) {
                    if (w[0] == 1 && w[1] == 1) return false;
                    if (w[1] == 1 && w[2] == 1) return false;
                    // Edge owned by w[1] is unmatched and both endpoints
                    // unmatched: w[0] (incoming of w1) and w[2] (outgoing of
                    // the successor) both unmatched too.
                    if (w[0] == 0 && w[1] == 0 && w[2] == 0) return false;
                    return true;
                  });
}

CycleLcl cycleDominatingMarks(int spacing) {
  if (spacing < 1 || spacing > 3) {
    throw std::invalid_argument("cycleDominatingMarks: spacing must be 1..3");
  }
  // Radius-1 form: among any window of 3 consecutive nodes, at least one of
  // the first `spacing` of them... for radius-1 we only support spacing <= 3:
  // the window of length 3 must contain a mark among its first `spacing`+?
  // Simplest faithful form: no window of 3 is completely unmarked when
  // spacing == 3; tighter versions forbid unmarked pairs/singles.
  return CycleLcl(
      "cycle-dominating-marks-" + std::to_string(spacing), 2, 1,
      [spacing](const std::vector<int>& w) {
        int window = 0;
        for (int i = 0; i < 3; ++i) window += w[static_cast<std::size_t>(i)];
        if (spacing == 1) return w[1] == 1;           // everything marked
        if (spacing == 2) return w[0] + w[1] >= 1;    // no 2 consecutive 0s
        return window >= 1;                           // no 3 consecutive 0s
      });
}

CycleLcl cycleExactSpacing(int period) {
  if (period < 2) throw std::invalid_argument("cycleExactSpacing: period >= 2");
  // Alphabet {0, ..., period-1}: a countdown to the next mark; label 0 is
  // the mark. Feasible iff labels decrease by 1 mod period along the cycle.
  return CycleLcl("cycle-exact-spacing-" + std::to_string(period), period, 1,
                  [period](const std::vector<int>& w) {
                    return w[1] == (w[0] + period - 1) % period &&
                           w[2] == (w[1] + period - 1) % period;
                  });
}

}  // namespace lclgrid::cycle
