#include "cycle/classifier.hpp"

namespace lclgrid::cycle {

std::string complexityName(ComplexityClass c) {
  switch (c) {
    case ComplexityClass::Unsolvable: return "unsolvable";
    case ComplexityClass::Constant: return "O(1)";
    case ComplexityClass::LogStar: return "Theta(log* n)";
    case ComplexityClass::Global: return "Theta(n)";
  }
  return "?";
}

Classification classifyCycleLcl(const CycleLcl& lcl) {
  NeighbourhoodGraph graph(lcl);
  Classification result;
  result.hasSelfLoop = graph.hasSelfLoop();
  result.hasCycle = graph.hasCycle();

  if (!result.hasCycle) {
    result.complexity = ComplexityClass::Unsolvable;
    return result;
  }
  if (result.hasSelfLoop) {
    result.complexity = ComplexityClass::Constant;
    return result;
  }
  if (auto flexibility = graph.minimumFlexibility()) {
    result.complexity = ComplexityClass::LogStar;
    result.flexibleNode = flexibility->node;
    result.flexibility = flexibility->flexibility;
    return result;
  }
  result.complexity = ComplexityClass::Global;
  return result;
}

}  // namespace lclgrid::cycle
