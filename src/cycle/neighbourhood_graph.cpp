#include "cycle/neighbourhood_graph.hpp"

#include <numeric>
#include <stdexcept>

#include "support/numeric.hpp"

namespace lclgrid::cycle {

namespace {
long long intPow(int base, int exponent) {
  long long result = 1;
  for (int i = 0; i < exponent; ++i) result *= base;
  return result;
}
}  // namespace

NeighbourhoodGraph::NeighbourhoodGraph(const CycleLcl& lcl)
    : sigma_(lcl.sigma()), radius_(lcl.radius()), seqLength_(2 * lcl.radius()) {
  long long nodes = intPow(sigma_, seqLength_);
  if (nodes > 2'000'000) {
    throw std::invalid_argument(
        "NeighbourhoodGraph: alphabet/radius too large to materialise");
  }
  adjacency_.assign(static_cast<std::size_t>(nodes), {});

  // Every feasible (2r+1)-window u1..u_{2r+1} yields the edge
  // (u1..u_{2r}) -> (u2..u_{2r+1}). Window codes are base-sigma with
  // position 0 least significant, so the edge endpoints are the low and
  // high 2r digits of the code.
  if (lcl.hasWindowTable()) {
    // Read the edges straight off the compiled truth table: all-forbidden
    // stretches are skipped 64 windows at a time.
    lcl.windowTable().forEachAllowed([&](long long code) {
      int from = static_cast<int>(code % nodes);
      int to = static_cast<int>(code / sigma_);
      adjacency_[static_cast<std::size_t>(from)].push_back(to);
    });
  } else {
    const long long windows = intPow(sigma_, seqLength_ + 1);
    std::vector<int> window(static_cast<std::size_t>(seqLength_ + 1));
    for (long long code = 0; code < windows; ++code) {
      long long rest = code;
      for (int i = 0; i <= seqLength_; ++i) {
        window[static_cast<std::size_t>(i)] = static_cast<int>(rest % sigma_);
        rest /= sigma_;
      }
      if (!lcl.allowsWindow(window)) continue;
      int from = windowToNode(window, 0);
      int to = windowToNode(window, 1);
      adjacency_[static_cast<std::size_t>(from)].push_back(to);
    }
  }
}

int NeighbourhoodGraph::windowToNode(const std::vector<int>& window,
                                     int offset) const {
  int node = 0;
  for (int i = seqLength_ - 1; i >= 0; --i) {
    node = node * sigma_ + window[static_cast<std::size_t>(offset + i)];
  }
  return node;
}

int NeighbourhoodGraph::edgeCount() const {
  int total = 0;
  for (const auto& out : adjacency_) total += static_cast<int>(out.size());
  return total;
}

std::vector<int> NeighbourhoodGraph::nodeLabels(int node) const {
  std::vector<int> labels(static_cast<std::size_t>(seqLength_));
  for (int i = 0; i < seqLength_; ++i) {
    labels[static_cast<std::size_t>(i)] = node % sigma_;
    node /= sigma_;
  }
  return labels;
}

int NeighbourhoodGraph::nodeOf(const std::vector<int>& labels) const {
  if (static_cast<int>(labels.size()) != seqLength_) {
    throw std::invalid_argument("nodeOf: wrong sequence length");
  }
  int node = 0;
  for (int i = seqLength_ - 1; i >= 0; --i) {
    node = node * sigma_ + labels[static_cast<std::size_t>(i)];
  }
  return node;
}

bool NeighbourhoodGraph::hasSelfLoop() const {
  for (int v = 0; v < nodeCount(); ++v) {
    for (int u : successors(v)) {
      if (u == v) return true;
    }
  }
  return false;
}

std::vector<std::vector<bool>> NeighbourhoodGraph::walkTable(
    int from, int maxLength) const {
  std::vector<std::vector<bool>> reachable(
      static_cast<std::size_t>(maxLength + 1),
      std::vector<bool>(static_cast<std::size_t>(nodeCount()), false));
  reachable[0][static_cast<std::size_t>(from)] = true;
  for (int t = 1; t <= maxLength; ++t) {
    for (int v = 0; v < nodeCount(); ++v) {
      if (!reachable[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(v)]) {
        continue;
      }
      for (int u : successors(v)) {
        reachable[static_cast<std::size_t>(t)][static_cast<std::size_t>(u)] = true;
      }
    }
  }
  return reachable;
}

bool NeighbourhoodGraph::isFlexible(int node) const {
  const int bound = nodeCount() * nodeCount() + 2 * nodeCount() + 2;
  auto table = walkTable(node, bound);
  // Shortest closed walk through node.
  int shortest = -1;
  for (int t = 1; t <= bound; ++t) {
    if (table[static_cast<std::size_t>(t)][static_cast<std::size_t>(node)]) {
      shortest = t;
      break;
    }
  }
  if (shortest < 0) return false;
  // Flexible iff some run of `shortest` consecutive lengths all admit closed
  // walks (then every larger length does too, by appending the short cycle).
  int run = 0;
  for (int t = 1; t <= bound; ++t) {
    run = table[static_cast<std::size_t>(t)][static_cast<std::size_t>(node)]
              ? run + 1
              : 0;
    if (run >= shortest) return true;
  }
  return false;
}

std::optional<NeighbourhoodGraph::Flexibility>
NeighbourhoodGraph::minimumFlexibility() const {
  std::optional<Flexibility> best;
  const int bound = nodeCount() * nodeCount() + 2 * nodeCount() + 2;
  for (int node = 0; node < nodeCount(); ++node) {
    auto table = walkTable(node, bound);
    int shortest = -1;
    for (int t = 1; t <= bound; ++t) {
      if (table[static_cast<std::size_t>(t)][static_cast<std::size_t>(node)]) {
        shortest = t;
        break;
      }
    }
    if (shortest < 0) continue;
    // The flexibility of `node` is the smallest k such that all lengths >= k
    // admit closed walks: find the last length with no closed walk, within
    // the provably sufficient bound.
    int run = 0;
    int flexibleFrom = -1;
    for (int t = 1; t <= bound; ++t) {
      bool closed =
          table[static_cast<std::size_t>(t)][static_cast<std::size_t>(node)];
      run = closed ? run + 1 : 0;
      if (run >= shortest) {
        flexibleFrom = t - run + 1;
        break;
      }
    }
    if (flexibleFrom < 0) continue;
    if (!best || flexibleFrom < best->flexibility) {
      best = Flexibility{node, flexibleFrom};
    }
  }
  return best;
}

std::optional<std::vector<int>> NeighbourhoodGraph::closedWalk(
    int node, int length) const {
  if (length < 1) throw std::invalid_argument("closedWalk: length must be >= 1");
  auto table = walkTable(node, length);
  if (!table[static_cast<std::size_t>(length)][static_cast<std::size_t>(node)]) {
    return std::nullopt;
  }
  // Reverse adjacency for backtracking.
  std::vector<std::vector<int>> predecessors(
      static_cast<std::size_t>(nodeCount()));
  for (int v = 0; v < nodeCount(); ++v) {
    for (int u : successors(v)) {
      predecessors[static_cast<std::size_t>(u)].push_back(v);
    }
  }
  std::vector<int> walk(static_cast<std::size_t>(length + 1));
  walk[static_cast<std::size_t>(length)] = node;
  int current = node;
  for (int t = length; t >= 1; --t) {
    for (int p : predecessors[static_cast<std::size_t>(current)]) {
      if (table[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(p)]) {
        walk[static_cast<std::size_t>(t - 1)] = p;
        current = p;
        break;
      }
    }
  }
  return walk;
}

bool NeighbourhoodGraph::hasCycle() const {
  // Kahn-style peeling: repeatedly delete nodes with no outgoing edges; a
  // nonempty remainder contains a cycle.
  std::vector<int> outDegree(static_cast<std::size_t>(nodeCount()), 0);
  std::vector<std::vector<int>> predecessors(
      static_cast<std::size_t>(nodeCount()));
  for (int v = 0; v < nodeCount(); ++v) {
    outDegree[static_cast<std::size_t>(v)] =
        static_cast<int>(successors(v).size());
    for (int u : successors(v)) {
      predecessors[static_cast<std::size_t>(u)].push_back(v);
    }
  }
  std::vector<int> stack;
  for (int v = 0; v < nodeCount(); ++v) {
    if (outDegree[static_cast<std::size_t>(v)] == 0) stack.push_back(v);
  }
  int removed = 0;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    ++removed;
    for (int p : predecessors[static_cast<std::size_t>(v)]) {
      if (--outDegree[static_cast<std::size_t>(p)] == 0) stack.push_back(p);
    }
  }
  return removed < nodeCount();
}

}  // namespace lclgrid::cycle
