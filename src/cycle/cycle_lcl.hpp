// LCL problems on directed cycles (1-dimensional grids), Section 4. A
// radius-r problem is specified by its alphabet and the set of feasible
// (2r+1)-windows of consecutive output labels, read in the direction of the
// cycle's orientation.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace lclgrid::cycle {

class CycleLcl {
 public:
  using WindowPredicate = std::function<bool(const std::vector<int>&)>;

  /// `radius` is the checkability radius r; windows have length 2r+1.
  CycleLcl(std::string name, int sigma, int radius, WindowPredicate ok);

  const std::string& name() const { return name_; }
  int sigma() const { return sigma_; }
  int radius() const { return radius_; }
  int windowLength() const { return 2 * radius_ + 1; }

  bool allowsWindow(const std::vector<int>& window) const;

  /// Verifies a full labelling of a directed cycle of length n >= window
  /// length: every cyclic window must be feasible.
  bool verifyCycle(const std::vector<int>& labels) const;
  /// First violating position, or -1 when feasible.
  int firstViolation(const std::vector<int>& labels) const;

 private:
  std::string name_;
  int sigma_;
  int radius_;
  WindowPredicate ok_;
};

// --- the problem library of Figure 2 (plus friends) ------------------------

CycleLcl cycleColouring(int k);
CycleLcl cycleMaximalIndependentSet();
CycleLcl cycleIndependentSet();
/// Maximal matching on the directed cycle; each node labels its outgoing
/// edge: 1 = matched, 0 = unmatched. Matched edges must not be adjacent and
/// no two consecutive unmatched edges may leave an augmenting edge.
CycleLcl cycleMaximalMatching();
/// Orientation-free "at least one of k consecutive nodes is marked".
CycleLcl cycleDominatingMarks(int spacing);
/// Exact spacing problem: marked nodes must be exactly `period` apart
/// (global for period >= 2; used as a Theta(n) witness beyond 2-colouring).
CycleLcl cycleExactSpacing(int period);

}  // namespace lclgrid::cycle
