// LCL problems on directed cycles (1-dimensional grids), Section 4. A
// radius-r problem is specified by its alphabet and the set of feasible
// (2r+1)-windows of consecutive output labels, read in the direction of the
// cycle's orientation.
//
// Like the 2-dimensional GridLcl, the window predicate is a finite relation
// -- sigma^(2r+1) bits -- and is compiled on demand into a packed truth
// table (CycleWindowTable). Cycle verification then slides a base-sigma
// window code along the labelling (one divide and one multiply-add per
// step, one bit test per window), and the neighbourhood graph of Section 4
// is read directly off the table's set bits.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace lclgrid::cycle {

/// Dense truth table over all sigma^windowLength windows. Window codes are
/// base-sigma integers with position 0 as the least-significant digit.
class CycleWindowTable {
 public:
  /// Bit-count cap (32 MiB) for the packed table.
  static constexpr long long kMaxWindows = 1LL << 28;

  using WindowPredicate = std::function<bool(const std::vector<int>&)>;

  static bool compilable(int sigma, int windowLength);
  /// sigma^windowLength, or -1 when it exceeds kMaxWindows.
  static long long windowCountFor(int sigma, int windowLength);
  static CycleWindowTable compile(int sigma, int windowLength,
                                  const WindowPredicate& ok);

  int sigma() const { return sigma_; }
  int windowLength() const { return windowLength_; }
  long long windowCount() const { return windowCount_; }

  bool allowsCode(long long code) const {
    return (words_[static_cast<std::size_t>(code >> 6)] >>
            (static_cast<std::uint64_t>(code) & 63u)) &
           1u;
  }

  /// Base-sigma code of an explicit window (labels must be in range).
  long long encode(std::span<const int> window) const;

  /// Visits the code of every allowed window, in increasing order;
  /// all-forbidden words are skipped 64 windows at a time.
  template <typename F>
  void forEachAllowed(F&& f) const {
    for (std::size_t wordIndex = 0; wordIndex < words_.size(); ++wordIndex) {
      std::uint64_t word = words_[wordIndex];
      if (word == 0) continue;
      const long long base = static_cast<long long>(wordIndex) << 6;
      for (int bit = 0; bit < 64; ++bit) {
        if ((word >> bit) & 1u) f(base + bit);
      }
    }
  }

 private:
  CycleWindowTable(int sigma, int windowLength);

  int sigma_;
  int windowLength_;
  long long windowCount_;
  std::vector<std::uint64_t> words_;
};

class CycleLcl {
 public:
  using WindowPredicate = std::function<bool(const std::vector<int>&)>;

  /// `radius` is the checkability radius r; windows have length 2r+1.
  CycleLcl(std::string name, int sigma, int radius, WindowPredicate ok);

  const std::string& name() const { return name_; }
  int sigma() const { return sigma_; }
  int radius() const { return radius_; }
  int windowLength() const { return 2 * radius_ + 1; }

  bool allowsWindow(const std::vector<int>& window) const;

  /// True iff the window relation fits the compiled representation.
  bool hasWindowTable() const;
  /// The compiled window table (built lazily, cached, compile guarded by a
  /// mutex); throws std::logic_error when hasWindowTable() is false.
  const CycleWindowTable& windowTable() const;

  /// Window relations up to this size are compiled implicitly by cycle
  /// verification; larger ones keep the seed's window-by-window loop until
  /// a consumer asks for windowTable() explicitly (a lone verify must not
  /// pay a sigma^(2r+1) compile).
  static constexpr long long kAutoCompileWindows = 1LL << 20;

  /// Verifies a full labelling of a directed cycle of length n >= window
  /// length: every cyclic window must be feasible.
  bool verifyCycle(const std::vector<int>& labels) const;
  /// First violating position, or -1 when feasible.
  int firstViolation(const std::vector<int>& labels) const;

 private:
  int firstViolationFunctional(const std::vector<int>& labels) const;
  /// Atomic snapshot of the lazily compiled table (null until compiled).
  std::shared_ptr<const CycleWindowTable> tableIfCompiled() const;

  std::string name_;
  int sigma_;
  int radius_;
  WindowPredicate ok_;
  // Lazily compiled truth table; shared so CycleLcl copies stay cheap and
  // the compile is paid once per problem. Accessed via the atomic
  // shared_ptr free functions: set once under the compile mutex, read
  // lock-free everywhere else.
  mutable std::shared_ptr<const CycleWindowTable> table_;
};

// --- the problem library of Figure 2 (plus friends) ------------------------

CycleLcl cycleColouring(int k);
CycleLcl cycleMaximalIndependentSet();
CycleLcl cycleIndependentSet();
/// Maximal matching on the directed cycle; each node labels its outgoing
/// edge: 1 = matched, 0 = unmatched. Matched edges must not be adjacent and
/// no two consecutive unmatched edges may leave an augmenting edge.
CycleLcl cycleMaximalMatching();
/// Orientation-free "at least one of k consecutive nodes is marked".
CycleLcl cycleDominatingMarks(int spacing);
/// Exact spacing problem: marked nodes must be exactly `period` apart
/// (global for period >= 2; used as a Theta(n) witness beyond 2-colouring).
CycleLcl cycleExactSpacing(int period);

}  // namespace lclgrid::cycle
