// The output neighbourhood graph H of a cycle LCL (Section 4, Figure 2):
// nodes are sequences of 2r output labels, and each feasible (2r+1)-window
// u1...u_{2r+1} induces the edge (u1...u_{2r}, u2...u_{2r+1}). Walks in H
// correspond exactly to feasible labellings, so the complexity of the LCL
// can be read off H: self-loops give O(1), flexible nodes give
// Theta(log* n), anything else is Theta(n) (or unsolvable).
#pragma once

#include <optional>
#include <vector>

#include "cycle/cycle_lcl.hpp"

namespace lclgrid::cycle {

class NeighbourhoodGraph {
 public:
  explicit NeighbourhoodGraph(const CycleLcl& lcl);

  int sigma() const { return sigma_; }
  int radius() const { return radius_; }
  int nodeCount() const { return static_cast<int>(adjacency_.size()); }
  int edgeCount() const;

  /// Decodes a node id into its 2r-label sequence.
  std::vector<int> nodeLabels(int node) const;
  /// Node id of a 2r-label sequence.
  int nodeOf(const std::vector<int>& labels) const;

  const std::vector<int>& successors(int node) const {
    return adjacency_[static_cast<std::size_t>(node)];
  }

  bool hasSelfLoop() const;

  /// A node is flexible if it lies on closed walks of coprime lengths; the
  /// flexibility of a node is the smallest k such that closed walks of every
  /// length >= k exist through it (Section 4).
  bool isFlexible(int node) const;
  /// Smallest flexibility over all flexible nodes, with the node achieving
  /// it; nullopt if no node is flexible.
  struct Flexibility {
    int node = -1;
    int flexibility = -1;
  };
  std::optional<Flexibility> minimumFlexibility() const;

  /// Closed walk from `node` to itself of exactly `length` steps, if one
  /// exists (length >= 1). Used by the synthesis to fill segments between
  /// anchors.
  std::optional<std::vector<int>> closedWalk(int node, int length) const;

  /// True iff some infinite walk exists (i.e. some cycle in H); otherwise
  /// the LCL is unsolvable on all large cycles.
  bool hasCycle() const;

 private:
  int windowToNode(const std::vector<int>& window, int offset) const;
  /// reachable_[len][v]: a walk of length len from `from` reaches v.
  std::vector<std::vector<bool>> walkTable(int from, int maxLength) const;

  int sigma_;
  int radius_;
  int seqLength_;  // 2r
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace lclgrid::cycle
