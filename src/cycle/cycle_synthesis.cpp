#include "cycle/cycle_synthesis.hpp"

#include <stdexcept>

#include "local/graph_view.hpp"
#include "local/ids.hpp"
#include "local/mis.hpp"

namespace lclgrid::cycle {

namespace {

/// GraphView of the k-th power of a directed n-cycle (nodes 0..n-1 in cycle
/// order; the identifiers carry the symmetry-breaking input, not the node
/// numbering, which distributed algorithms never inspect).
local::GraphView cyclePowerView(int n, int k) {
  local::GraphView view;
  view.count = n;
  view.maxDegree = std::min(2 * k, n - 1);
  view.simulationFactor = k;
  view.neighbours = [n, k](int v) {
    std::vector<int> nbrs;
    nbrs.reserve(static_cast<std::size_t>(2 * k));
    for (int delta = 1; delta <= k; ++delta) {
      int forward = (v + delta) % n;
      int backward = (v - delta % n + n) % n;
      if (forward != v) nbrs.push_back(forward);
      if (backward != v && backward != forward) nbrs.push_back(backward);
    }
    return nbrs;
  };
  return view;
}

}  // namespace

CycleAlgorithm::CycleAlgorithm(const CycleLcl& lcl)
    : lcl_(lcl), classification_(classifyCycleLcl(lcl)) {
  graph_ = std::make_unique<NeighbourhoodGraph>(lcl_);
  if (classification_.complexity != ComplexityClass::LogStar) return;

  // Anchors live on C^(k): gaps between consecutive anchors are in
  // [k+1, 2k+1], so we need closed walks of the flexible node for every
  // such length; flexibility f guarantees lengths >= f, hence k + 1 >= f.
  anchorPower_ = std::max(1, classification_.flexibility - 1);
  const int k = anchorPower_;
  walks_.clear();
  for (int gap = k + 1; gap <= 2 * k + 1; ++gap) {
    auto walk = graph_->closedWalk(classification_.flexibleNode, gap);
    if (!walk) {
      throw std::logic_error(
          "CycleAlgorithm: missing closed walk despite flexibility");
    }
    walks_.push_back(std::move(*walk));
  }
}

CycleRun CycleAlgorithm::execute(const std::vector<std::uint64_t>& ids) const {
  const int n = static_cast<int>(ids.size());
  if (n < lcl_.windowLength()) {
    throw std::invalid_argument("CycleAlgorithm: cycle too short");
  }
  switch (classification_.complexity) {
    case ComplexityClass::Unsolvable:
      return {};
    case ComplexityClass::Constant:
      return executeConstant(n);
    case ComplexityClass::LogStar:
      // Small instances fall back to gathering (constant rounds for fixed k).
      if (n < 2 * (2 * anchorPower_ + 1)) return executeGlobal(n);
      return executeLogStar(ids);
    case ComplexityClass::Global:
      return executeGlobal(n);
  }
  return {};
}

CycleRun CycleAlgorithm::executeConstant(int n) const {
  // A self-loop in H is a constant feasible window; emit its label.
  for (int label = 0; label < lcl_.sigma(); ++label) {
    std::vector<int> window(static_cast<std::size_t>(lcl_.windowLength()),
                            label);
    if (lcl_.allowsWindow(window)) {
      CycleRun run;
      run.solved = true;
      run.rounds = 0;
      run.labels.assign(static_cast<std::size_t>(n), label);
      return run;
    }
  }
  throw std::logic_error("executeConstant: no constant window despite class");
}

CycleRun CycleAlgorithm::executeLogStar(
    const std::vector<std::uint64_t>& ids) const {
  const int n = static_cast<int>(ids.size());
  const int k = anchorPower_;

  // Problem-independent part: anchors = MIS of C^(k).
  auto view = cyclePowerView(n, k);
  auto mis = local::computeMis(view, ids);

  CycleRun run;
  run.rounds = mis.gridRounds;
  run.labels.assign(static_cast<std::size_t>(n), -1);

  // Problem-dependent part: each anchor fills the gap to the next anchor
  // with the closed walk of the flexible node of matching length. Offset t
  // of a gap takes the first label of the walk's H-node at step t. This is
  // O(k) additional rounds.
  std::vector<int> anchors;
  for (int v = 0; v < n; ++v) {
    if (mis.inSet[static_cast<std::size_t>(v)]) anchors.push_back(v);
  }
  if (anchors.empty()) throw std::logic_error("executeLogStar: no anchors");

  for (std::size_t a = 0; a < anchors.size(); ++a) {
    int v = anchors[a];
    int next = anchors[(a + 1) % anchors.size()];
    int gap = (next - v + n) % n;
    if (gap == 0) gap = n;  // single anchor: whole cycle is one gap
    if (gap < k + 1 || gap > 2 * k + 1) {
      throw std::logic_error("executeLogStar: anchor gap out of range");
    }
    const auto& walk = walks_[static_cast<std::size_t>(gap - (k + 1))];
    for (int t = 0; t < gap; ++t) {
      int hNode = walk[static_cast<std::size_t>(t)];
      run.labels[static_cast<std::size_t>((v + t) % n)] =
          graph_->nodeLabels(hNode)[0];
    }
  }
  run.rounds += 2 * k + 1;  // constant-time filling with radius O(k)
  run.solved = true;
  return run;
}

CycleRun CycleAlgorithm::executeGlobal(int n) const {
  // Gather everything (diameter = floor(n/2) rounds), then find a length-n
  // closed walk in H by dynamic programming from each potential start node.
  CycleRun run;
  run.rounds = n / 2 + 1;
  for (int start = 0; start < graph_->nodeCount(); ++start) {
    auto walk = graph_->closedWalk(start, n);
    if (!walk) continue;
    run.labels.assign(static_cast<std::size_t>(n), -1);
    for (int t = 0; t < n; ++t) {
      run.labels[static_cast<std::size_t>(t)] =
          graph_->nodeLabels((*walk)[static_cast<std::size_t>(t)])[0];
    }
    run.solved = true;
    return run;
  }
  return run;  // not solvable at this n
}

}  // namespace lclgrid::cycle
