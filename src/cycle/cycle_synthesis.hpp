// Automated synthesis of asymptotically optimal algorithms for LCL problems
// on directed cycles (Section 4): everything here is decidable and the
// produced algorithm matches the problem's complexity class.
//
//  * Constant problems output the self-loop label everywhere.
//  * LogStar problems run the normal form: an MIS of the k-th power of the
//    cycle (the anchors), followed by constant-time filling of the gaps
//    with closed walks of the flexible node u in the neighbourhood graph H.
//  * Global problems gather the whole cycle (n rounds) and fill in a
//    feasible labelling found by dynamic programming over H.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cycle/classifier.hpp"
#include "cycle/cycle_lcl.hpp"
#include "cycle/neighbourhood_graph.hpp"

namespace lclgrid::cycle {

struct CycleRun {
  bool solved = false;
  std::vector<int> labels;
  int rounds = 0;
};

class CycleAlgorithm {
 public:
  /// Builds the optimal algorithm for the problem; classification is
  /// computed internally (and exposed for reporting).
  explicit CycleAlgorithm(const CycleLcl& lcl);

  const Classification& classification() const { return classification_; }
  /// The power k such that anchors form an MIS of C^(k) (LogStar only).
  int anchorPower() const { return anchorPower_; }

  /// Executes the algorithm on a directed cycle of |ids| nodes with the
  /// given unique identifiers. Counts LOCAL rounds faithfully: the MIS
  /// subroutine's grid rounds plus the constant-time filling.
  CycleRun execute(const std::vector<std::uint64_t>& ids) const;

 private:
  CycleRun executeConstant(int n) const;
  CycleRun executeLogStar(const std::vector<std::uint64_t>& ids) const;
  CycleRun executeGlobal(int n) const;

  CycleLcl lcl_;
  Classification classification_;
  std::unique_ptr<NeighbourhoodGraph> graph_;
  int anchorPower_ = 0;
  // Precomputed closed walks of the flexible node, one per admissible gap
  // length i in [k+1, 2k+1]; walks_[i - (k+1)][t] is the H-node covering
  // offset t of a gap of length i.
  std::vector<std::vector<int>> walks_;
};

}  // namespace lclgrid::cycle
