// The decidable complexity classification of LCL problems on directed cycles
// (Claim 1, Section 4): O(1) iff H has a self-loop, else Theta(log* n) iff
// some node of H is flexible, else Theta(n) (or unsolvable when H is
// acyclic). The contrast with 2-dimensional grids -- where the same
// classification question is undecidable (Section 6) -- is the heart of the
// paper.
#pragma once

#include <string>

#include "cycle/cycle_lcl.hpp"
#include "cycle/neighbourhood_graph.hpp"

namespace lclgrid::cycle {

enum class ComplexityClass {
  Unsolvable,   // no feasible labelling for any large n
  Constant,     // O(1)
  LogStar,      // Theta(log* n)
  Global,       // Theta(n)
};

std::string complexityName(ComplexityClass c);

struct Classification {
  ComplexityClass complexity = ComplexityClass::Unsolvable;
  // For LogStar problems: the flexible node and its flexibility (the k used
  // by the synthesized algorithm).
  int flexibleNode = -1;
  int flexibility = -1;
  // Diagnostics.
  bool hasSelfLoop = false;
  bool hasCycle = false;
};

/// Decides the complexity class of a cycle LCL. Always terminates -- the
/// 1-dimensional classification is decidable.
Classification classifyCycleLcl(const CycleLcl& lcl);

}  // namespace lclgrid::cycle
