#include "service/protocol.hpp"

#include <cstring>

namespace lclgrid::service {

namespace wire {

namespace {

void appendBytes(std::vector<std::uint8_t>& out, const void* data,
                 std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + bytes);
}

}  // namespace

void appendU32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void appendU64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void appendI64(std::vector<std::uint8_t>& out, std::int64_t value) {
  appendU64(out, static_cast<std::uint64_t>(value));
}

std::uint8_t readU8(std::span<const std::uint8_t> bytes,
                    std::size_t& offset) {
  if (offset + 1 > bytes.size()) {
    throw ProtocolError("protocol: truncated payload");
  }
  return bytes[offset++];
}

std::uint32_t readU32(std::span<const std::uint8_t> bytes,
                      std::size_t& offset) {
  if (offset + 4 > bytes.size()) {
    throw ProtocolError("protocol: truncated payload");
  }
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(bytes[offset++]) << shift;
  }
  return value;
}

std::uint64_t readU64(std::span<const std::uint8_t> bytes,
                      std::size_t& offset) {
  if (offset + 8 > bytes.size()) {
    throw ProtocolError("protocol: truncated payload");
  }
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(bytes[offset++]) << shift;
  }
  return value;
}

std::int64_t readI64(std::span<const std::uint8_t> bytes,
                     std::size_t& offset) {
  return static_cast<std::int64_t>(readU64(bytes, offset));
}

void appendHeader(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint32_t requestId, std::uint32_t payloadBytes) {
  appendBytes(out, kMagic, sizeof(kMagic));
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // flags
  out.push_back(0);  // reserved
  out.push_back(0);
  appendU32(out, requestId);
  appendU32(out, payloadBytes);
}

bool decodeHeader(const std::uint8_t* bytes, FrameHeader* header) {
  if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) return false;
  header->type = static_cast<FrameType>(bytes[4]);
  std::size_t offset = 8;
  const std::span<const std::uint8_t> rest(bytes, kHeaderBytes);
  header->requestId = readU32(rest, offset);
  header->payloadBytes = readU32(rest, offset);
  return true;
}

}  // namespace wire

namespace {

constexpr std::size_t kVerifyPrefixBytes = 40;
constexpr std::size_t kVerifyResultPrefixBytes = 32;
constexpr std::size_t kClassifyPrefixBytes = 16;

std::size_t padTo4(std::size_t offset) { return (offset + 3) & ~std::size_t{3}; }

/// batch * n^dims label words, guarded against overflow; 0 on bad geometry
/// (the caller turns that into a ProtocolError with context).
std::uint64_t labelWordsOf(std::uint32_t dims, std::uint32_t n,
                           std::uint32_t batch) {
  if (dims == 0 || dims > 16 || n == 0 || batch == 0) return 0;
  std::uint64_t nodes = 1;
  for (std::uint32_t a = 0; a < dims; ++a) {
    if (nodes > (std::uint64_t{1} << 40) / n) return 0;
    nodes *= n;
  }
  if (batch > (std::uint64_t{1} << 40) / nodes) return 0;
  return nodes * batch;
}

}  // namespace

std::vector<std::uint8_t> encodeVerifyRequest(const VerifyRequestFrame& frame) {
  std::vector<std::uint8_t> out;
  const std::size_t labelBytes = frame.labels.size() * 4;
  out.reserve(kVerifyPrefixBytes + frame.spec.size() + frame.path.size() + 4 +
              labelBytes);
  out.push_back(static_cast<std::uint8_t>(frame.problemRef));
  out.push_back(frame.countViolations ? 1 : 0);
  out.push_back(static_cast<std::uint8_t>(frame.labelling));
  out.push_back(frame.tierPin);
  wire::appendU32(out, frame.threads);
  wire::appendU64(out, frame.fingerprint);
  wire::appendU32(out, frame.dims);
  wire::appendU32(out, frame.n);
  wire::appendU32(out, frame.batch);
  wire::appendU32(out, static_cast<std::uint32_t>(frame.spec.size()));
  wire::appendU32(out, static_cast<std::uint32_t>(frame.path.size()));
  wire::appendU32(out, frame.allowDegrade ? 1u : 0u);  // flags
  out.insert(out.end(), frame.spec.begin(), frame.spec.end());
  out.insert(out.end(), frame.path.begin(), frame.path.end());
  while (out.size() % 4 != 0) out.push_back(0);
  for (int label : frame.labels) {
    wire::appendU32(out, static_cast<std::uint32_t>(label));
  }
  return out;
}

VerifyRequestFrame decodeVerifyRequest(std::span<const std::uint8_t> payload) {
  VerifyRequestFrame frame;
  std::size_t offset = 0;
  frame.problemRef =
      static_cast<ProblemRefKind>(wire::readU8(payload, offset));
  frame.countViolations = wire::readU8(payload, offset) != 0;
  frame.labelling = static_cast<LabellingKind>(wire::readU8(payload, offset));
  frame.tierPin = wire::readU8(payload, offset);
  frame.threads = wire::readU32(payload, offset);
  frame.fingerprint = wire::readU64(payload, offset);
  frame.dims = wire::readU32(payload, offset);
  frame.n = wire::readU32(payload, offset);
  frame.batch = wire::readU32(payload, offset);
  const std::uint32_t specLen = wire::readU32(payload, offset);
  const std::uint32_t pathLen = wire::readU32(payload, offset);
  frame.allowDegrade = (wire::readU32(payload, offset) & 1u) != 0;  // flags
  if (offset + specLen + pathLen > payload.size()) {
    throw ProtocolError("protocol: verify spec/path overruns the payload");
  }
  frame.spec.assign(reinterpret_cast<const char*>(payload.data()) + offset,
                    specLen);
  offset += specLen;
  frame.path.assign(reinterpret_cast<const char*>(payload.data()) + offset,
                    pathLen);
  offset += pathLen;
  offset = padTo4(offset);
  if (frame.labelling == LabellingKind::kPath) {
    if (offset != payload.size()) {
      throw ProtocolError("protocol: path verify request carries labels");
    }
    return frame;
  }
  const std::uint64_t words = labelWordsOf(frame.dims, frame.n, frame.batch);
  if (words == 0) {
    throw ProtocolError("protocol: bad verify geometry (dims/n/batch)");
  }
  if (offset + words * 4 != payload.size()) {
    throw ProtocolError(
        "protocol: label payload is not batch * n^dims int32 words");
  }
  // Zero-copy hand-off: the receive buffer is allocator-aligned and the
  // label region starts on a 4-byte boundary, so the int32 view is valid.
  frame.labels = std::span<const int>(
      reinterpret_cast<const int*>(payload.data() + offset),
      static_cast<std::size_t>(words));
  return frame;
}

std::vector<std::uint8_t> encodeVerifyResult(const VerifyResultFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kVerifyResultPrefixBytes + frame.feasiblePerLabelling.size() +
              frame.violationsPerLabelling.size() * 8);
  out.push_back(frame.feasible ? 1 : 0);
  out.push_back(frame.tier);
  const std::uint8_t perLabelling = !frame.feasiblePerLabelling.empty() ? 1
                                    : !frame.violationsPerLabelling.empty()
                                        ? 2
                                        : 0;
  out.push_back(perLabelling);
  out.push_back(frame.degraded ? 1 : 0);  // flags
  wire::appendU32(out, static_cast<std::uint32_t>(frame.labellings));
  wire::appendI64(out, frame.violations);
  wire::appendU64(out, frame.fingerprint);
  wire::appendI64(out, frame.nanos);
  if (perLabelling == 1) {
    out.insert(out.end(), frame.feasiblePerLabelling.begin(),
               frame.feasiblePerLabelling.end());
  } else if (perLabelling == 2) {
    for (std::int64_t v : frame.violationsPerLabelling) {
      wire::appendI64(out, v);
    }
  }
  return out;
}

VerifyResultFrame decodeVerifyResult(std::span<const std::uint8_t> payload) {
  VerifyResultFrame frame;
  std::size_t offset = 0;
  frame.feasible = wire::readU8(payload, offset) != 0;
  frame.tier = wire::readU8(payload, offset);
  const std::uint8_t perLabelling = wire::readU8(payload, offset);
  frame.degraded = (wire::readU8(payload, offset) & 1u) != 0;  // flags
  const std::uint32_t labellings = wire::readU32(payload, offset);
  frame.labellings = labellings;
  frame.violations = wire::readI64(payload, offset);
  frame.fingerprint = wire::readU64(payload, offset);
  frame.nanos = wire::readI64(payload, offset);
  if (perLabelling == 1) {
    if (offset + labellings != payload.size()) {
      throw ProtocolError("protocol: verify result per-labelling mismatch");
    }
    frame.feasiblePerLabelling.assign(payload.begin() + offset,
                                      payload.end());
  } else if (perLabelling == 2) {
    if (offset + std::size_t{labellings} * 8 != payload.size()) {
      throw ProtocolError("protocol: verify result per-labelling mismatch");
    }
    frame.violationsPerLabelling.reserve(labellings);
    for (std::uint32_t i = 0; i < labellings; ++i) {
      frame.violationsPerLabelling.push_back(wire::readI64(payload, offset));
    }
  }
  return frame;
}

std::vector<std::uint8_t> encodeClassifyRequest(
    const ClassifyRequestFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kClassifyPrefixBytes + frame.spec.size());
  out.push_back(static_cast<std::uint8_t>(frame.problemRef));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  wire::appendU32(out, static_cast<std::uint32_t>(frame.spec.size()));
  wire::appendU64(out, frame.fingerprint);
  out.insert(out.end(), frame.spec.begin(), frame.spec.end());
  return out;
}

ClassifyRequestFrame decodeClassifyRequest(
    std::span<const std::uint8_t> payload) {
  ClassifyRequestFrame frame;
  std::size_t offset = 0;
  frame.problemRef =
      static_cast<ProblemRefKind>(wire::readU8(payload, offset));
  (void)wire::readU8(payload, offset);
  (void)wire::readU8(payload, offset);
  (void)wire::readU8(payload, offset);
  const std::uint32_t specLen = wire::readU32(payload, offset);
  frame.fingerprint = wire::readU64(payload, offset);
  if (offset + specLen != payload.size()) {
    throw ProtocolError("protocol: classify spec overruns the payload");
  }
  frame.spec.assign(reinterpret_cast<const char*>(payload.data()) + offset,
                    specLen);
  return frame;
}

}  // namespace lclgrid::service
