// The verification service daemon (docs/service.md): a long-lived process
// hosting the compiled-table engine behind a socket, so repeated
// verification / classification requests amortise table compilation,
// bit-slice plan construction and oracle runs across calls instead of
// paying them per process.
//
// Architecture (one object, in-process embeddable -- the tests and
// bench_service run the daemon in the same process; lclgrid_serve wraps it
// in a binary):
//
//  * an acceptor thread listens on a Unix socket or TCP loopback and spawns
//    one reader thread per connection (bounded by maxConnections);
//  * readers parse frames (binary or newline-JSON debug mode, detected on
//    the first bytes of the connection) and admit requests into a central
//    queue, bounding each client to maxQueuedPerClient admitted requests --
//    an over-limit request is answered with an explicit kBusy frame and not
//    executed, never silently dropped;
//  * serviceThreads worker threads drain the queue and execute requests
//    through the unified front doors -- verify(VerifyRequest) and
//    engine::classify() -- never through the legacy overloads;
//  * problems resolve through a fingerprint-indexed LRU cache of compiled
//    problems (spec -> GridLcl/GridLclD, fingerprint -> GridLcl) and oracle
//    reports reuse an engine::ReportCache, both capacity-bounded;
//  * inline label batches are handed to the engine zero-copy: the int32
//    region of the receive buffer is spanned directly into
//    VerifyRequest::labels (the wire layout 4-byte-aligns it).
//
// The engine pool: requests execute with EngineOptions::threads ==
// config.engineThreads. The default 1 runs each request serially on its
// worker -- the daemon's parallelism is across requests (serviceThreads),
// which is the high-QPS regime. engineThreads > 1 parallelises single
// large requests instead, at a private-pool setup cost per request
// (engine/thread_pool.hpp: a pool's task queues are fed by one caller at a
// time, so concurrent workers cannot share one pool safely).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/family_sweep.hpp"
#include "lcl/grid_lcl.hpp"
#include "lcl/grid_lcl_d.hpp"
#include "service/protocol.hpp"
#include "support/json.hpp"
#include "support/lru_cache.hpp"
#include "support/telemetry.hpp"

namespace lclgrid::service {

struct ServiceConfig {
  /// Listen on this Unix socket path when non-empty; else TCP on loopback.
  std::string unixSocketPath;
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int tcpPort = 0;
  /// Worker threads executing requests (>= 1).
  int serviceThreads = 2;
  /// EngineOptions::threads per request (see the header comment).
  int engineThreads = 1;
  /// Admitted (queued + executing) requests per client before kBusy.
  int maxQueuedPerClient = 8;
  /// Compiled problems kept by the spec/fingerprint LRU.
  std::size_t problemCacheCapacity = 64;
  /// Oracle reports kept by the classification LRU.
  std::size_t reportCacheCapacity = 64;
  /// Frames above this payload size are a framing error (connection
  /// closes); bounds a client's buffer demand.
  std::size_t maxPayloadBytes = std::size_t{64} << 20;
  /// Concurrent connections; further accepts are closed immediately.
  int maxConnections = 64;
  /// Enables wire::FrameType::kSleep (tests drive the BUSY path with it).
  bool enableTestOps = false;
  /// Per-request deadline: a request still queued this many ms after
  /// admission is answered kTimeout instead of executed (0 = no deadline).
  /// Bounds queue-wait latency; an already-executing request is never
  /// preempted (docs/robustness.md).
  int requestDeadlineMs = 0;
  /// SO_SNDTIMEO on every connection socket: bounds a worker blocked
  /// writing a response to a wedged peer (0 = no bound).
  int sendTimeoutMs = 5000;
  /// stop() drains admitted requests for this long, then answers the still
  /// queued remainder with kTimeout -- a typed shed, never a silent drop.
  /// The request currently executing on each worker still completes.
  int drainTimeoutMs = 2000;
  /// Load shedding engages while the queue is at least this deep
  /// (0 = auto: 4 * serviceThreads). Under shed: countViolations requests
  /// that set allowDegrade run as early-exit verify, and the per-client
  /// admission budget halves.
  int shedQueueDepth = 0;
  /// Master switch for the shedding policy (the overload bench A/Bs it).
  bool shedEnabled = true;
};

/// Point-in-time service counters (plain values, available regardless of
/// whether telemetry is compiled in; also exported in the stats frame).
struct ServiceCounters {
  std::int64_t requests = 0;
  std::int64_t verifyRequests = 0;
  std::int64_t classifyRequests = 0;
  std::int64_t busyRejections = 0;
  std::int64_t errors = 0;
  std::int64_t connectionsAccepted = 0;
  std::int64_t connectionsRejected = 0;
  std::int64_t queueDepth = 0;      // now
  std::int64_t queuePeakDepth = 0;  // high-water mark
  /// kTimeout responses: queue-wait deadline expiries plus requests shed
  /// while draining. Never silently dropped -- every one was answered.
  std::int64_t timeouts = 0;
  /// countViolations requests downgraded to early-exit verify under shed
  /// pressure (the request allowed it; the result carried degraded).
  std::int64_t shedDowngrades = 0;
  /// kBusy rejections attributable to the halved shed-mode admission
  /// budget (also counted in busyRejections).
  std::int64_t shedAdmission = 0;
};

class VerificationService {
 public:
  explicit VerificationService(ServiceConfig config);
  ~VerificationService();  // stop()s if still running
  VerificationService(const VerificationService&) = delete;
  VerificationService& operator=(const VerificationService&) = delete;

  /// Binds, listens and spawns the acceptor + workers; throws
  /// std::runtime_error on socket failures.
  void start();
  /// Graceful teardown: stops accepting, unblocks readers/workers, joins
  /// every thread. Idempotent.
  void stop();
  /// Blocks until a client's kShutdown request, noteSignalShutdown() or
  /// stop().
  void waitForShutdown();
  /// Async-signal-safe shutdown request (the daemon binary's SIGINT /
  /// SIGTERM handler): one atomic store, observed by waitForShutdown's
  /// bounded waits.
  void noteSignalShutdown() { shutdownRequested_.store(true); }

  /// The resolved TCP port (after start(); -1 on a Unix socket).
  int port() const { return port_; }
  const ServiceConfig& config() const { return config_; }

  ServiceCounters counters() const;
  /// The stats document served by kStats: {"metrics": <telemetry
  /// metrics_snapshot>, "service": {counters, queue, caches}}.
  std::string statsJson() const;

 private:
  struct Connection {
    int fd = -1;
    std::mutex writeMutex;
    std::atomic<int> inflight{0};
    /// Set by the reader on exit; the side that observes inflight == 0
    /// afterwards closes the fd (reader or the last worker, whichever is
    /// later -- responses to a disconnected client must not write a
    /// recycled descriptor).
    std::atomic<bool> closeRequested{false};
    bool jsonMode = false;
  };
  struct Task {
    std::shared_ptr<Connection> conn;
    wire::FrameType type = wire::FrameType::kPing;
    std::uint32_t requestId = 0;
    std::vector<std::uint8_t> payload;   // binary frames
    support::JsonValue jsonRequest;      // debug-mode requests
    bool json = false;
    /// Admission time; the worker enforces requestDeadlineMs against it.
    std::chrono::steady_clock::time_point admitted;
  };

  /// Compiled problems by spec string, with a fingerprint index maintained
  /// through the LRU's eviction callback (so fingerprint refs only resolve
  /// while the problem is cached). 2D problems only in the fingerprint
  /// index -- VerifyRequest's resolver is 2D, matching the service contract.
  class ProblemCache {
   public:
    explicit ProblemCache(std::size_t capacity);
    std::shared_ptr<const GridLcl> bySpec(const std::string& spec);
    std::shared_ptr<const GridLclD> bySpecD(const std::string& spec);
    std::shared_ptr<const GridLcl> byFingerprint(std::uint64_t fingerprint);
    support::LruStats stats() const;

   private:
    mutable std::mutex mutex_;
    support::LruCache<std::string, std::shared_ptr<const GridLcl>> specs_;
    support::LruCache<std::string, std::shared_ptr<const GridLclD>> specsD_;
    std::unordered_map<std::uint64_t, std::shared_ptr<const GridLcl>>
        fingerprints_;
  };

  void acceptLoop();
  void connectionLoop(std::shared_ptr<Connection> conn);
  void binaryLoop(const std::shared_ptr<Connection>& conn);
  void jsonLoop(const std::shared_ptr<Connection>& conn);
  /// Admission control; sends kBusy / enqueues. Returns false when the
  /// connection should close (shutdown request).
  bool admit(Task task);
  void workerLoop();
  void execute(Task& task);
  void executeJson(Task& task);
  void requestShutdown();
  void closeConnection(Connection& conn);
  /// True while the shedding policy is engaged (queue at/over threshold).
  bool sheddingNow() const;
  /// Answers a task kTimeout (binary) / {"timeout":true} (JSON) without
  /// executing it; counts it.
  void sendTimeout(Task& task);

  VerifyResultFrame runVerify(const VerifyRequestFrame& frame,
                              bool shedActive);
  std::string runClassify(const ClassifyRequestFrame& frame);

  void sendFrame(Connection& conn, wire::FrameType type,
                 std::uint32_t requestId,
                 std::span<const std::uint8_t> payload);
  void sendError(Connection& conn, std::uint32_t requestId,
                 const std::string& message);
  void sendJsonLine(Connection& conn, const std::string& line);

  ServiceConfig config_;
  int listenFd_ = -1;
  int port_ = -1;
  int shedThreshold_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdownRequested_{false};
  /// stop() is draining: admissions answer kBusy, keeping the drain bound.
  std::atomic<bool> draining_{false};
  /// The drain deadline expired: workers answer queued tasks kTimeout.
  std::atomic<bool> cancelQueued_{false};
  /// Queue depth mirrored atomically for lock-free shed checks.
  std::atomic<std::int64_t> queueDepthAtomic_{0};
  /// Requests currently executing on workers (the drain wait's second
  /// condition next to an empty queue).
  std::atomic<int> executing_{0};
  std::mutex shutdownMutex_;
  std::condition_variable shutdownCv_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex connectionsMutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> connectionThreads_;
  std::atomic<int> liveConnections_{0};

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<Task> queue_;

  ProblemCache problems_;
  engine::ReportCache reports_;

  mutable std::mutex countersMutex_;
  ServiceCounters counters_;
  support::telemetry::Counter requestCounter_;
  support::telemetry::Counter busyCounter_;
  support::telemetry::Counter errorCounter_;
  support::telemetry::Counter timeoutCounter_;
  support::telemetry::Counter shedCounter_;
  support::telemetry::Gauge queueGauge_;
};

}  // namespace lclgrid::service
