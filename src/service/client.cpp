#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "support/faultpoint.hpp"

namespace lclgrid::service {

namespace {

namespace fp = support::faultpoint;

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error("client: " + what + ": " + std::strerror(errno));
}

/// True when errno carries a socket-timeout verdict (SO_RCVTIMEO /
/// SO_SNDTIMEO expiry -- EAGAIN and EWOULDBLOCK may be distinct values).
bool errnoIsTimeout() {
  return errno == EAGAIN || errno == EWOULDBLOCK || errno == ETIMEDOUT;
}

enum class IoStatus { kOk, kDisconnected, kTimedOut };

/// Blocking read of exactly `bytes`, looping over EINTR and partial recvs.
/// The client.recv fault point injects a hard error (errno -- a timeout
/// errno surfaces as kTimedOut, matching a real SO_RCVTIMEO expiry) or
/// clamps one recv short, which the loop must absorb.
IoStatus readFully(int fd, void* data, std::size_t bytes) {
  long long shortClamp = 0;
  {
    const auto fault = FAULT_POINT("client.recv");
    if (fault.action == fp::Action::kErrno) {
      errno = fault.errnoValue;
      return errnoIsTimeout() ? IoStatus::kTimedOut : IoStatus::kDisconnected;
    }
    if (fault.action == fp::Action::kShort) shortClamp = fault.arg;
  }
  auto* out = static_cast<std::uint8_t*>(data);
  while (bytes > 0) {
    std::size_t ask = bytes;
    if (shortClamp > 0) {
      ask = std::min(ask, static_cast<std::size_t>(shortClamp));
      shortClamp = 0;
    }
    const ssize_t got = ::recv(fd, out, ask, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return errnoIsTimeout() ? IoStatus::kTimedOut : IoStatus::kDisconnected;
    }
    if (got == 0) return IoStatus::kDisconnected;
    out += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return IoStatus::kOk;
}

/// Blocking write of exactly `bytes`, looping over EINTR and partial
/// sends; throws on hard errors. The client.send fault point injects a
/// hard error or clamps one send short (the partial-send regression
/// vector: the loop must finish the frame, not truncate it).
IoStatus writeFully(int fd, const void* data, std::size_t bytes) {
  long long shortClamp = 0;
  {
    const auto fault = FAULT_POINT("client.send");
    if (fault.action == fp::Action::kErrno) {
      errno = fault.errnoValue;
      if (errnoIsTimeout()) return IoStatus::kTimedOut;
      throwErrno("send");
    }
    if (fault.action == fp::Action::kShort) shortClamp = fault.arg;
  }
  const auto* in = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    std::size_t ask = bytes;
    if (shortClamp > 0) {
      ask = std::min(ask, static_cast<std::size_t>(shortClamp));
      shortClamp = 0;
    }
    const ssize_t put = ::send(fd, in, ask, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errnoIsTimeout()) return IoStatus::kTimedOut;
      throwErrno("send");
    }
    in += put;
    bytes -= static_cast<std::size_t>(put);
  }
  return IoStatus::kOk;
}

int connectTcpFd(int port) {
  {
    const auto fault = FAULT_POINT("client.connect");
    if (fault.action == fp::Action::kErrno) {
      errno = fault.errnoValue;
      throwErrno("connect(loopback:" + std::to_string(port) + ")");
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throwErrno("connect(loopback:" + std::to_string(port) + ")");
  }
  return fd;
}

int connectUnixFd(const std::string& path) {
  {
    const auto fault = FAULT_POINT("client.connect");
    if (fault.action == fp::Action::kErrno) {
      errno = fault.errnoValue;
      throwErrno("connect(" + path + ")");
    }
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("client: unix socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throwErrno("connect(" + path + ")");
  }
  return fd;
}

void applySocketDeadline(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

// --- ServiceClient ----------------------------------------------------------

ServiceClient ServiceClient::connectTcp(int port) {
  return ServiceClient(connectTcpFd(port), port, std::string());
}

ServiceClient ServiceClient::connectUnix(const std::string& path) {
  return ServiceClient(connectUnixFd(path), -1, path);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      nextRequestId_(other.nextRequestId_),
      deadlineMs_(other.deadlineMs_),
      port_(other.port_),
      unixPath_(std::move(other.unixPath_)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    nextRequestId_ = other.nextRequestId_;
    deadlineMs_ = other.deadlineMs_;
    port_ = other.port_;
    unixPath_ = std::move(other.unixPath_);
  }
  return *this;
}

void ServiceClient::setDeadlineMs(int millis) {
  deadlineMs_ = std::max(0, millis);
  if (fd_ >= 0) applySocketDeadline(fd_, deadlineMs_);
}

void ServiceClient::reconnect() {
  close();
  fd_ = unixPath_.empty() ? connectTcpFd(port_) : connectUnixFd(unixPath_);
  if (deadlineMs_ > 0) applySocketDeadline(fd_, deadlineMs_);
}

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::sendFrame(wire::FrameType type, std::uint32_t requestId,
                              std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(wire::kHeaderBytes + payload.size());
  wire::appendHeader(frame, type, requestId,
                     static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  if (writeFully(fd_, frame.data(), frame.size()) == IoStatus::kTimedOut) {
    // A partially sent frame cannot be completed later: the stream is
    // desynchronised, so the connection is dead to us.
    close();
    throw TimeoutError("client: send deadline expired mid-frame");
  }
}

void ServiceClient::sendRaw(std::span<const std::uint8_t> bytes) {
  if (writeFully(fd_, bytes.data(), bytes.size()) == IoStatus::kTimedOut) {
    close();
    throw TimeoutError("client: send deadline expired");
  }
}

std::optional<ServiceClient::Reply> ServiceClient::receive() {
  std::uint8_t header[wire::kHeaderBytes];
  IoStatus status = readFully(fd_, header, sizeof(header));
  if (status == IoStatus::kTimedOut) {
    // The response may still arrive after we give up; reading it later
    // would answer the WRONG request. Close so the caller reconnects.
    close();
    throw TimeoutError("client: receive deadline expired");
  }
  if (status != IoStatus::kOk) return std::nullopt;
  wire::FrameHeader frame;
  if (!wire::decodeHeader(header, &frame)) {
    throw RemoteError("client: corrupt frame magic from server");
  }
  Reply reply;
  reply.type = frame.type;
  reply.requestId = frame.requestId;
  reply.payload.resize(frame.payloadBytes);
  status = readFully(fd_, reply.payload.data(), reply.payload.size());
  if (status == IoStatus::kTimedOut) {
    close();
    throw TimeoutError("client: receive deadline expired mid-frame");
  }
  if (status != IoStatus::kOk) return std::nullopt;
  return reply;
}

std::optional<ServiceClient::Reply> ServiceClient::call(
    wire::FrameType type, std::span<const std::uint8_t> payload,
    wire::FrameType expected) {
  const std::uint32_t requestId = nextRequestId_++;
  sendFrame(type, requestId, payload);
  std::optional<Reply> reply = receive();
  if (!reply) {
    throw DisconnectError("client: connection closed awaiting a response");
  }
  if (reply->type == wire::FrameType::kBusy) return std::nullopt;
  if (reply->type == wire::FrameType::kTimeout) {
    // The daemon's verdict, not ours: the request was never executed, the
    // stream stays framed, the connection stays usable.
    throw TimeoutError("client: request timed out in the service queue");
  }
  if (reply->type == wire::FrameType::kError) {
    throw RemoteError(
        std::string(reinterpret_cast<const char*>(reply->payload.data()),
                    reply->payload.size()));
  }
  if (reply->type != expected) {
    throw RemoteError("client: unexpected response frame type");
  }
  return reply;
}

bool ServiceClient::ping() {
  try {
    return call(wire::FrameType::kPing, {}, wire::FrameType::kPong)
        .has_value();
  } catch (const RemoteError&) {
    return false;
  }
}

std::optional<VerifyResultFrame> ServiceClient::verify(
    const VerifyRequestFrame& request) {
  const std::vector<std::uint8_t> payload = encodeVerifyRequest(request);
  std::optional<Reply> reply =
      call(wire::FrameType::kVerify, payload, wire::FrameType::kVerifyResult);
  if (!reply) return std::nullopt;
  return decodeVerifyResult(reply->payload);
}

std::optional<std::string> ServiceClient::classify(
    const ClassifyRequestFrame& request) {
  const std::vector<std::uint8_t> payload = encodeClassifyRequest(request);
  std::optional<Reply> reply = call(wire::FrameType::kClassify, payload,
                                    wire::FrameType::kClassifyResult);
  if (!reply) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(reply->payload.data()),
                     reply->payload.size());
}

std::optional<std::string> ServiceClient::stats() {
  std::optional<Reply> reply =
      call(wire::FrameType::kStats, {}, wire::FrameType::kStatsResult);
  if (!reply) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(reply->payload.data()),
                     reply->payload.size());
}

void ServiceClient::requestShutdown() {
  (void)call(wire::FrameType::kShutdown, {}, wire::FrameType::kShutdownAck);
}

bool ServiceClient::sleepMs(std::uint32_t millis) {
  std::vector<std::uint8_t> payload;
  wire::appendU32(payload, millis);
  return call(wire::FrameType::kSleep, payload, wire::FrameType::kPong)
      .has_value();
}

// --- JsonDebugClient --------------------------------------------------------

JsonDebugClient JsonDebugClient::connectTcp(int port) {
  return JsonDebugClient(connectTcpFd(port));
}

JsonDebugClient::JsonDebugClient(JsonDebugClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

JsonDebugClient& JsonDebugClient::operator=(JsonDebugClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

JsonDebugClient::~JsonDebugClient() { close(); }

void JsonDebugClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<std::string> JsonDebugClient::request(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  writeFully(fd_, out.data(), out.size());
  char chunk[4096];
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return std::nullopt;
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

}  // namespace lclgrid::service
