#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace lclgrid::service {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error("client: " + what + ": " + std::strerror(errno));
}

bool readFully(int fd, void* data, std::size_t bytes) {
  auto* out = static_cast<std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t got = ::recv(fd, out, bytes, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    out += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

void writeFully(int fd, const void* data, std::size_t bytes) {
  const auto* in = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t put = ::send(fd, in, bytes, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      throwErrno("send");
    }
    in += put;
    bytes -= static_cast<std::size_t>(put);
  }
}

int connectTcpFd(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throwErrno("connect(loopback:" + std::to_string(port) + ")");
  }
  return fd;
}

}  // namespace

// --- ServiceClient ----------------------------------------------------------

ServiceClient ServiceClient::connectTcp(int port) {
  return ServiceClient(connectTcpFd(port));
}

ServiceClient ServiceClient::connectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("client: unix socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throwErrno("connect(" + path + ")");
  }
  return ServiceClient(fd);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      nextRequestId_(other.nextRequestId_) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    nextRequestId_ = other.nextRequestId_;
  }
  return *this;
}

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::sendFrame(wire::FrameType type, std::uint32_t requestId,
                              std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(wire::kHeaderBytes + payload.size());
  wire::appendHeader(frame, type, requestId,
                     static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  writeFully(fd_, frame.data(), frame.size());
}

void ServiceClient::sendRaw(std::span<const std::uint8_t> bytes) {
  writeFully(fd_, bytes.data(), bytes.size());
}

std::optional<ServiceClient::Reply> ServiceClient::receive() {
  std::uint8_t header[wire::kHeaderBytes];
  if (!readFully(fd_, header, sizeof(header))) return std::nullopt;
  wire::FrameHeader frame;
  if (!wire::decodeHeader(header, &frame)) {
    throw RemoteError("client: corrupt frame magic from server");
  }
  Reply reply;
  reply.type = frame.type;
  reply.requestId = frame.requestId;
  reply.payload.resize(frame.payloadBytes);
  if (!readFully(fd_, reply.payload.data(), reply.payload.size())) {
    return std::nullopt;
  }
  return reply;
}

std::optional<ServiceClient::Reply> ServiceClient::call(
    wire::FrameType type, std::span<const std::uint8_t> payload,
    wire::FrameType expected) {
  const std::uint32_t requestId = nextRequestId_++;
  sendFrame(type, requestId, payload);
  std::optional<Reply> reply = receive();
  if (!reply) {
    throw RemoteError("client: connection closed awaiting a response");
  }
  if (reply->type == wire::FrameType::kBusy) return std::nullopt;
  if (reply->type == wire::FrameType::kError) {
    throw RemoteError(
        std::string(reinterpret_cast<const char*>(reply->payload.data()),
                    reply->payload.size()));
  }
  if (reply->type != expected) {
    throw RemoteError("client: unexpected response frame type");
  }
  return reply;
}

bool ServiceClient::ping() {
  try {
    return call(wire::FrameType::kPing, {}, wire::FrameType::kPong)
        .has_value();
  } catch (const RemoteError&) {
    return false;
  }
}

std::optional<VerifyResultFrame> ServiceClient::verify(
    const VerifyRequestFrame& request) {
  const std::vector<std::uint8_t> payload = encodeVerifyRequest(request);
  std::optional<Reply> reply =
      call(wire::FrameType::kVerify, payload, wire::FrameType::kVerifyResult);
  if (!reply) return std::nullopt;
  return decodeVerifyResult(reply->payload);
}

std::optional<std::string> ServiceClient::classify(
    const ClassifyRequestFrame& request) {
  const std::vector<std::uint8_t> payload = encodeClassifyRequest(request);
  std::optional<Reply> reply = call(wire::FrameType::kClassify, payload,
                                    wire::FrameType::kClassifyResult);
  if (!reply) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(reply->payload.data()),
                     reply->payload.size());
}

std::optional<std::string> ServiceClient::stats() {
  std::optional<Reply> reply =
      call(wire::FrameType::kStats, {}, wire::FrameType::kStatsResult);
  if (!reply) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(reply->payload.data()),
                     reply->payload.size());
}

void ServiceClient::requestShutdown() {
  (void)call(wire::FrameType::kShutdown, {}, wire::FrameType::kShutdownAck);
}

bool ServiceClient::sleepMs(std::uint32_t millis) {
  std::vector<std::uint8_t> payload;
  wire::appendU32(payload, millis);
  return call(wire::FrameType::kSleep, payload, wire::FrameType::kPong)
      .has_value();
}

// --- JsonDebugClient --------------------------------------------------------

JsonDebugClient JsonDebugClient::connectTcp(int port) {
  return JsonDebugClient(connectTcpFd(port));
}

JsonDebugClient::JsonDebugClient(JsonDebugClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

JsonDebugClient& JsonDebugClient::operator=(JsonDebugClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

JsonDebugClient::~JsonDebugClient() { close(); }

void JsonDebugClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<std::string> JsonDebugClient::request(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  writeFully(fd_, out.data(), out.size());
  char chunk[4096];
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return std::nullopt;
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

}  // namespace lclgrid::service
