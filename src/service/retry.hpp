// Client-side retry with capped exponential backoff and decorrelated
// jitter, wrapping ServiceClient (docs/robustness.md).
//
// What retries, and why it is safe: only the service's idempotent
// operations -- verify, classify and stats. All three are pure reads of
// the request against daemon-side caches; re-executing one cannot change
// any observable state (docs/service.md, "Idempotency"). The retryable
// outcomes are the three typed, request-not-executed verdicts:
//
//  * kBusy       -- back-pressure; the daemon promised it did not run the
//                   request (retryBusy);
//  * kTimeout    -- the daemon shed the request from its queue, or the
//                   client's own deadline expired awaiting a response. A
//                   client-side expiry forces a reconnect first: the
//                   abandoned byte stream cannot be re-synchronised
//                   (retryTimeout);
//  * disconnect  -- the connection died before a response; the request
//                   may or may not have executed, which is precisely why
//                   only idempotent operations route through this class
//                   (retryDisconnect).
//
// kError never retries: the request itself is bad, and resending the same
// bytes reproduces the same error.
//
// Backoff: decorrelated jitter (Brooker) -- sleep_k ~ uniform(baseDelayMs,
// 3 * sleep_{k-1}), capped at maxDelayMs. Avoids both thundering-herd
// lockstep (all clients retrying in sync) and the long deterministic tail
// of plain doubling. Deterministic per seed, so tests assert the schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "service/client.hpp"
#include "service/protocol.hpp"

namespace lclgrid::service {

struct RetryPolicy {
  /// Total tries including the first (1 = no retry).
  int maxAttempts = 5;
  /// Lower bound of every backoff draw, and the first draw's upper bound.
  int baseDelayMs = 2;
  /// Cap on any single backoff sleep.
  int maxDelayMs = 250;
  /// Seeds the jitter RNG; fixed seed -> reproducible schedule in tests.
  std::uint64_t jitterSeed = 0x9e3779b97f4a7c15ull;
  bool retryBusy = true;
  bool retryTimeout = true;
  bool retryDisconnect = true;
};

/// What a retried call actually did; accumulates across calls on the same
/// RetryingClient (bench_service reports these per run).
struct RetryStats {
  std::int64_t attempts = 0;     // tries issued, including first tries
  std::int64_t busy = 0;         // kBusy answers absorbed
  std::int64_t timeouts = 0;     // TimeoutError answers absorbed
  std::int64_t disconnects = 0;  // connection-loss answers absorbed
  std::int64_t reconnects = 0;   // successful reconnect() calls
  std::int64_t backoffMs = 0;    // total time slept in backoff
};

/// Wraps a connected ServiceClient with the retry policy. Only the
/// idempotent surface is exposed -- there is deliberately no retrying
/// shutdown or sleep.
class RetryingClient {
 public:
  RetryingClient(ServiceClient client, RetryPolicy policy);

  /// Retries until a verdict or maxAttempts; throws RemoteError (daemon
  /// error, never retried), TimeoutError / RemoteError when attempts are
  /// exhausted on a retryable outcome.
  VerifyResultFrame verify(const VerifyRequestFrame& request);
  std::string classify(const ClassifyRequestFrame& request);
  std::string stats();

  const RetryStats& retryStats() const { return stats_; }
  ServiceClient& client() { return client_; }

  /// The next backoff sleep for attempt `k` (exposed for tests; advances
  /// the jitter state exactly like a real retry would).
  int drawBackoffMs();

 private:
  template <typename Fn>
  auto callWithRetry(Fn&& fn) -> decltype(fn());
  void noteFailureAndBackoff(bool needReconnect, int attempt);

  ServiceClient client_;
  RetryPolicy policy_;
  RetryStats stats_;
  std::uint64_t rngState_;
  int lastSleepMs_ = 0;
};

}  // namespace lclgrid::service
