#include "service/problem_registry.hpp"

#include <charconv>
#include <set>
#include <stdexcept>
#include <vector>

#include "lcl/problems.hpp"

namespace lclgrid::service {

namespace {

[[noreturn]] void badSpec(std::string_view spec, const char* why) {
  throw std::invalid_argument("problem spec \"" + std::string(spec) +
                              "\": " + why);
}

/// Splits on ':' (the family token first).
std::vector<std::string_view> tokens(std::string_view spec) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t colon = spec.find(':');
    if (colon == std::string_view::npos) {
      out.push_back(spec);
      return out;
    }
    out.push_back(spec.substr(0, colon));
    spec.remove_prefix(colon + 1);
  }
}

int parseInt(std::string_view spec, std::string_view token) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    badSpec(spec, "malformed integer parameter");
  }
  return value;
}

void wantParams(std::string_view spec,
                const std::vector<std::string_view>& parts,
                std::size_t params) {
  if (parts.size() != params + 1) badSpec(spec, "wrong parameter count");
}

}  // namespace

bool isProblemDSpec(std::string_view spec) {
  const std::string_view family = spec.substr(0, spec.find(':'));
  return family == "vcd" || family == "xor" || family == "mono";
}

bool isCycleSpec(std::string_view spec) {
  const std::string_view family = spec.substr(0, spec.find(':'));
  return family == "cvc" || family == "cmis";
}

GridLcl buildProblem(std::string_view spec) {
  const std::vector<std::string_view> parts = tokens(spec);
  const std::string_view family = parts[0];
  if (family == "vc") {
    wantParams(spec, parts, 1);
    return problems::vertexColouring(parseInt(spec, parts[1]));
  }
  if (family == "mis") {
    wantParams(spec, parts, 0);
    return problems::maximalIndependentSet();
  }
  if (family == "is") {
    wantParams(spec, parts, 0);
    return problems::independentSet();
  }
  if (family == "mm") {
    wantParams(spec, parts, 0);
    return problems::maximalMatching();
  }
  if (family == "ec") {
    wantParams(spec, parts, 1);
    return problems::edgeColouring(parseInt(spec, parts[1]));
  }
  if (family == "orient") {
    wantParams(spec, parts, 1);
    std::set<int> degrees;
    std::string_view list = parts[1];
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      degrees.insert(parseInt(spec, list.substr(0, comma)));
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
    if (degrees.empty()) badSpec(spec, "empty in-degree set");
    return problems::orientation(degrees);
  }
  if (family == "nh1p") {
    wantParams(spec, parts, 0);
    return problems::noHorizontalOnePair();
  }
  if (family == "weak") {
    wantParams(spec, parts, 2);
    return problems::weakColouring(parseInt(spec, parts[1]),
                                   parseInt(spec, parts[2]));
  }
  badSpec(spec, isProblemDSpec(spec)   ? "d-dimensional spec on a 2D request"
          : isCycleSpec(spec)          ? "cycle spec on a grid request"
                                       : "unknown problem family");
}

GridLclD buildProblemD(std::string_view spec) {
  const std::vector<std::string_view> parts = tokens(spec);
  const std::string_view family = parts[0];
  if (family == "vcd") {
    wantParams(spec, parts, 2);
    return problems_d::vertexColouring(parseInt(spec, parts[1]),
                                       parseInt(spec, parts[2]));
  }
  if (family == "xor") {
    wantParams(spec, parts, 1);
    return problems_d::xorParity(parseInt(spec, parts[1]));
  }
  if (family == "mono") {
    wantParams(spec, parts, 3);
    return problems_d::monotoneAxis(parseInt(spec, parts[1]),
                                    parseInt(spec, parts[2]),
                                    parseInt(spec, parts[3]));
  }
  badSpec(spec, "unknown d-dimensional problem family");
}

cycle::CycleLcl buildCycleProblem(std::string_view spec) {
  const std::vector<std::string_view> parts = tokens(spec);
  const std::string_view family = parts[0];
  if (family == "cvc") {
    wantParams(spec, parts, 1);
    const int k = parseInt(spec, parts[1]);
    if (k < 1) badSpec(spec, "colour count must be positive");
    return cycle::CycleLcl(
        "cycle-vertex-colouring-" + std::to_string(k), k, /*radius=*/1,
        [](const std::vector<int>& window) {
          return window[1] != window[0] && window[1] != window[2];
        });
  }
  if (family == "cmis") {
    wantParams(spec, parts, 0);
    // sigma = 2, 1 = in the set: no two adjacent 1s, and a 0 centre must
    // see a 1 (maximality).
    return cycle::CycleLcl(
        "cycle-mis", 2, /*radius=*/1, [](const std::vector<int>& window) {
          if (window[1] == 1) return window[0] == 0 && window[2] == 0;
          return window[0] == 1 || window[2] == 1;
        });
  }
  badSpec(spec, "unknown cycle problem family");
}

}  // namespace lclgrid::service
