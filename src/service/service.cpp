#include "service/service.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"
#include "lcl/verify_api.hpp"
#include "service/problem_registry.hpp"
#include "support/faultpoint.hpp"

namespace lclgrid::service {

namespace {

namespace fp = support::faultpoint;

using support::JsonWriter;
using support::JsonValue;

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error("service: " + what + ": " + std::strerror(errno));
}

/// Blocking read of exactly `bytes`, looping over EINTR and partial
/// recvs; false on EOF or a hard error (the connection is then treated as
/// disconnected, mid-frame or not). The service.read_request fault point
/// injects a hard recv error (errno) or clamps one recv to a partial read
/// (short), which the loop must absorb.
bool readFully(int fd, void* data, std::size_t bytes) {
  long long shortClamp = 0;
  {
    const auto fault = FAULT_POINT("service.read_request");
    if (fault.action == fp::Action::kErrno) {
      errno = fault.errnoValue;
      return false;
    }
    if (fault.action == fp::Action::kShort) shortClamp = fault.arg;
  }
  auto* out = static_cast<std::uint8_t*>(data);
  while (bytes > 0) {
    std::size_t ask = bytes;
    if (shortClamp > 0) {
      ask = std::min(ask, static_cast<std::size_t>(shortClamp));
      shortClamp = 0;
    }
    const ssize_t got = ::recv(fd, out, ask, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    out += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

/// Best-effort blocking write, looping over EINTR and partial sends; a
/// failure (client went away mid-response, or send timed out against
/// SO_SNDTIMEO) is deliberately ignored -- the reader side notices the
/// disconnect. The service.write_response fault point drops the whole
/// frame (the client's deadline turns that into a typed timeout), injects
/// a hard send error, or clamps one send short.
void writeFully(int fd, const void* data, std::size_t bytes) {
  long long shortClamp = 0;
  {
    const auto fault = FAULT_POINT("service.write_response");
    if (fault.action == fp::Action::kDrop ||
        fault.action == fp::Action::kErrno) {
      return;
    }
    if (fault.action == fp::Action::kShort) shortClamp = fault.arg;
  }
  const auto* in = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    std::size_t ask = bytes;
    if (shortClamp > 0) {
      ask = std::min(ask, static_cast<std::size_t>(shortClamp));
      shortClamp = 0;
    }
    const ssize_t put = ::send(fd, in, ask, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return;
    }
    in += put;
    bytes -= static_cast<std::size_t>(put);
  }
}

std::uint8_t tierPinOf(const std::string& name) {
  if (name == "auto") return 0;
  if (name == "functional") return 1;
  if (name == "table") return 2;
  if (name == "bitsliced") return 3;
  throw std::invalid_argument("service: unknown tier pin \"" + name + "\"");
}

std::string jsonErrorLine(std::uint32_t requestId, std::string_view message) {
  JsonWriter json;
  json.beginObject();
  json.key("id").value(static_cast<long long>(requestId));
  json.key("error").value(message);
  json.endObject();
  return json.str();
}

}  // namespace

// --- ProblemCache -----------------------------------------------------------

VerificationService::ProblemCache::ProblemCache(std::size_t capacity)
    : specs_(capacity, "service.problem_cache"),
      specsD_(capacity, "service.problem_cache_d") {
  // Keep the fingerprint index consistent with the LRU: an evicted problem
  // must stop resolving by fingerprint (the index would otherwise pin its
  // memory forever and grow without bound).
  specs_.setEvictionCallback(
      [this](const std::string&, const std::shared_ptr<const GridLcl>& lcl) {
        if (!lcl->hasTable()) return;
        const auto it = fingerprints_.find(lcl->table().fingerprint());
        if (it != fingerprints_.end() && it->second.get() == lcl.get()) {
          fingerprints_.erase(it);
        }
      });
}

std::shared_ptr<const GridLcl> VerificationService::ProblemCache::bySpec(
    const std::string& spec) {
  std::lock_guard lock(mutex_);
  if (std::optional hit = specs_.get(spec)) return *hit;
  auto built = std::make_shared<const GridLcl>(buildProblem(spec));
  specs_.put(spec, built);
  if (built->hasTable()) {
    fingerprints_[built->table().fingerprint()] = built;
  }
  return built;
}

std::shared_ptr<const GridLclD> VerificationService::ProblemCache::bySpecD(
    const std::string& spec) {
  std::lock_guard lock(mutex_);
  if (std::optional hit = specsD_.get(spec)) return *hit;
  auto built = std::make_shared<const GridLclD>(buildProblemD(spec));
  specsD_.put(spec, built);
  return built;
}

std::shared_ptr<const GridLcl>
VerificationService::ProblemCache::byFingerprint(std::uint64_t fingerprint) {
  std::lock_guard lock(mutex_);
  const auto it = fingerprints_.find(fingerprint);
  return it == fingerprints_.end() ? nullptr : it->second;
}

support::LruStats VerificationService::ProblemCache::stats() const {
  std::lock_guard lock(mutex_);
  const support::LruStats a = specs_.stats();
  const support::LruStats b = specsD_.stats();
  return {a.hits + b.hits, a.misses + b.misses, a.evictions + b.evictions,
          a.entries + b.entries};
}

// --- lifecycle --------------------------------------------------------------

VerificationService::VerificationService(ServiceConfig config)
    : config_(std::move(config)),
      problems_(config_.problemCacheCapacity),
      reports_(config_.reportCacheCapacity, "service.report_cache"),
      requestCounter_(telemetry::counter("service.requests")),
      busyCounter_(telemetry::counter("service.busy")),
      errorCounter_(telemetry::counter("service.errors")),
      timeoutCounter_(telemetry::counter("service.timeouts")),
      shedCounter_(telemetry::counter("service.shed")),
      queueGauge_(telemetry::gauge("service.queue_depth")) {
  config_.serviceThreads = std::max(1, config_.serviceThreads);
  config_.engineThreads = std::max(1, config_.engineThreads);
  config_.maxQueuedPerClient = std::max(1, config_.maxQueuedPerClient);
  config_.maxConnections = std::max(1, config_.maxConnections);
  shedThreshold_ = config_.shedQueueDepth > 0 ? config_.shedQueueDepth
                                              : 4 * config_.serviceThreads;
}

VerificationService::~VerificationService() { stop(); }

void VerificationService::start() {
  if (running_.exchange(true)) {
    throw std::logic_error("service: already started");
  }
  shutdownRequested_.store(false);
  draining_.store(false);
  cancelQueued_.store(false);
  if (!config_.unixSocketPath.empty()) {
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
      running_.store(false);
      throwErrno("socket(AF_UNIX)");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unixSocketPath.size() >= sizeof(addr.sun_path)) {
      ::close(listenFd_);
      listenFd_ = -1;
      running_.store(false);
      throw std::runtime_error("service: unix socket path too long");
    }
    std::strncpy(addr.sun_path, config_.unixSocketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.unixSocketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listenFd_);
      listenFd_ = -1;
      running_.store(false);
      throwErrno("bind(" + config_.unixSocketPath + ")");
    }
    port_ = -1;
  } else {
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
      running_.store(false);
      throwErrno("socket(AF_INET)");
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcpPort));
    if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listenFd_);
      listenFd_ = -1;
      running_.store(false);
      throwErrno("bind(loopback)");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listenFd_, 64) != 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    running_.store(false);
    throwErrno("listen");
  }
  workers_.reserve(static_cast<std::size_t>(config_.serviceThreads));
  for (int i = 0; i < config_.serviceThreads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  acceptor_ = std::thread([this] { acceptLoop(); });
}

void VerificationService::stop() {
  // Phase 0: new admissions answer kBusy from here on, so the drain below
  // is a race against a bounded backlog, not a live request stream.
  draining_.store(true);
  if (!running_.exchange(false)) return;
  {
    std::lock_guard lock(shutdownMutex_);
  }
  shutdownCv_.notify_all();
  if (listenFd_ >= 0) {
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  listenFd_ = -1;
  // Phase 1: bounded drain -- give admitted requests drainTimeoutMs to
  // finish (connections stay open so their responses still land). Workers
  // keep popping because the queue is non-empty; they exit once it drains.
  queueCv_.notify_all();
  const auto drainDeadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(0, config_.drainTimeoutMs));
  while (std::chrono::steady_clock::now() < drainDeadline) {
    if (queueDepthAtomic_.load(std::memory_order_relaxed) == 0 &&
        executing_.load(std::memory_order_relaxed) == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Phase 2: deadline expired (or drain done) -- remaining queued requests
  // are answered kTimeout by the workers, typed rather than dropped. The
  // flush is quick (no execution), so wait for it unboundedly short of the
  // executing requests, which cannot be preempted.
  cancelQueued_.store(true);
  queueCv_.notify_all();
  const auto flushDeadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  while ((queueDepthAtomic_.load(std::memory_order_relaxed) > 0 ||
          executing_.load(std::memory_order_relaxed) > 0) &&
         std::chrono::steady_clock::now() < flushDeadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 3: tear the connections down and join everything.
  {
    std::lock_guard lock(connectionsMutex_);
    for (const auto& conn : connections_) {
      std::lock_guard writeLock(conn->writeMutex);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  // The acceptor is joined, so no new connection threads appear.
  for (auto& thread : connectionThreads_) {
    if (thread.joinable()) thread.join();
  }
  queueCv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  for (const auto& conn : connections_) closeConnection(*conn);
  connections_.clear();
  connectionThreads_.clear();
  if (!config_.unixSocketPath.empty()) {
    ::unlink(config_.unixSocketPath.c_str());
  }
  draining_.store(false);
  cancelQueued_.store(false);
}

void VerificationService::waitForShutdown() {
  // Bounded waits, not a plain wait: noteSignalShutdown() runs in a signal
  // handler and can only store the flag, never touch the cv.
  std::unique_lock lock(shutdownMutex_);
  while (!shutdownCv_.wait_for(lock, std::chrono::milliseconds(200), [this] {
    return shutdownRequested_.load() || !running_.load();
  })) {
  }
}

void VerificationService::requestShutdown() {
  shutdownRequested_.store(true);
  {
    std::lock_guard lock(shutdownMutex_);
  }
  shutdownCv_.notify_all();
}

void VerificationService::closeConnection(Connection& conn) {
  std::lock_guard lock(conn.writeMutex);
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
}

// --- accept / read side -----------------------------------------------------

void VerificationService::acceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    {
      // Injected accept failure: the connection is refused (closed before
      // any frame) -- connection-level, so the client sees a reset, not a
      // silent request drop.
      const auto fault = FAULT_POINT("service.accept");
      if (fault.action == fp::Action::kErrno ||
          fault.action == fp::Action::kDrop) {
        ::close(fd);
        std::lock_guard lock(countersMutex_);
        ++counters_.connectionsRejected;
        continue;
      }
    }
    if (liveConnections_.fetch_add(1) >= config_.maxConnections) {
      liveConnections_.fetch_sub(1);
      ::close(fd);
      std::lock_guard lock(countersMutex_);
      ++counters_.connectionsRejected;
      continue;
    }
    {
      std::lock_guard lock(countersMutex_);
      ++counters_.connectionsAccepted;
    }
    if (config_.sendTimeoutMs > 0) {
      // Bounds a worker blocked in send() against a wedged peer; a timed
      // out response write is absorbed like a disconnect.
      timeval tv{};
      tv.tv_sec = config_.sendTimeoutMs / 1000;
      tv.tv_usec = (config_.sendTimeoutMs % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard lock(connectionsMutex_);
    connections_.push_back(conn);
    connectionThreads_.emplace_back(
        [this, conn] { connectionLoop(conn); });
  }
}

void VerificationService::connectionLoop(std::shared_ptr<Connection> conn) {
  // Framing detection: peek the first 4 bytes -- the binary magic selects
  // length-prefixed frames, anything else the newline-JSON debug mode.
  std::uint8_t probe[4];
  ssize_t got;
  do {
    got = ::recv(conn->fd, probe, sizeof(probe), MSG_PEEK | MSG_WAITALL);
  } while (got < 0 && errno == EINTR);
  if (got == static_cast<ssize_t>(sizeof(probe))) {
    conn->jsonMode = std::memcmp(probe, wire::kMagic, sizeof(probe)) != 0;
    if (conn->jsonMode) {
      jsonLoop(conn);
    } else {
      binaryLoop(conn);
    }
  }
  liveConnections_.fetch_sub(1);
  // Close now unless a worker still owes this client responses; the last
  // such worker closes instead (both sides re-check, so the close cannot
  // be lost between the two).
  conn->closeRequested.store(true, std::memory_order_release);
  if (conn->inflight.load(std::memory_order_acquire) == 0) {
    closeConnection(*conn);
  }
}

void VerificationService::binaryLoop(const std::shared_ptr<Connection>& conn) {
  std::uint8_t header[wire::kHeaderBytes];
  while (running_.load()) {
    if (!readFully(conn->fd, header, sizeof(header))) return;
    wire::FrameHeader frame;
    if (!wire::decodeHeader(header, &frame)) {
      // The stream cannot be re-synchronised after a framing error; report
      // and close (docs/service.md).
      sendError(*conn, 0, "service: bad frame magic");
      return;
    }
    if (frame.payloadBytes > config_.maxPayloadBytes) {
      sendError(*conn, frame.requestId,
                "service: frame payload exceeds the configured size limit");
      return;
    }
    Task task;
    task.payload.resize(frame.payloadBytes);
    if (!readFully(conn->fd, task.payload.data(), task.payload.size())) {
      return;  // disconnect mid-frame
    }
    if (frame.type == wire::FrameType::kShutdown) {
      sendFrame(*conn, wire::FrameType::kShutdownAck, frame.requestId, {});
      requestShutdown();
      continue;
    }
    task.conn = conn;
    task.type = frame.type;
    task.requestId = frame.requestId;
    admit(std::move(task));
  }
}

void VerificationService::jsonLoop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  while (running_.load()) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::uint32_t requestId = 0;
      try {
        JsonValue request = support::parseJson(line);
        if (const JsonValue* id = request.find("id")) {
          requestId = static_cast<std::uint32_t>(id->asInt());
        }
        const std::string& op = request.at("op").asString();
        if (op == "shutdown") {
          JsonWriter ack;
          ack.beginObject();
          ack.key("id").value(static_cast<long long>(requestId));
          ack.key("ok").value(true);
          ack.key("shutdown").value(true);
          ack.endObject();
          sendJsonLine(*conn, ack.str());
          requestShutdown();
          continue;
        }
        Task task;
        task.conn = conn;
        task.json = true;
        task.requestId = requestId;
        if (op == "ping") {
          task.type = wire::FrameType::kPing;
        } else if (op == "verify") {
          task.type = wire::FrameType::kVerify;
        } else if (op == "classify") {
          task.type = wire::FrameType::kClassify;
        } else if (op == "stats") {
          task.type = wire::FrameType::kStats;
        } else if (op == "sleep") {
          task.type = wire::FrameType::kSleep;
        } else {
          throw std::invalid_argument("service: unknown op \"" + op + "\"");
        }
        task.jsonRequest = std::move(request);
        admit(std::move(task));
      } catch (const std::exception& error) {
        sendJsonLine(*conn, jsonErrorLine(requestId, error.what()));
      }
    }
    if (buffer.size() > config_.maxPayloadBytes) {
      sendJsonLine(*conn, jsonErrorLine(0, "service: request line too long"));
      return;
    }
    ssize_t got = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return;
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
}

bool VerificationService::admit(Task task) {
  Connection& conn = *task.conn;
  // Shed mode halves the per-client budget: a client holding half its
  // normal allotment already contributes its fair share of an overloaded
  // queue. Draining means stop() is waiting for the queue to empty -- every
  // new admission would extend the drain, so all of them answer kBusy.
  const bool shedBudget = sheddingNow();
  const int budget =
      draining_.load(std::memory_order_acquire)
          ? 0
          : (shedBudget ? std::max(1, config_.maxQueuedPerClient / 2)
                        : config_.maxQueuedPerClient);
  // Only this connection's reader increments, so load-then-add is not a
  // race against other admissions for the same client.
  if (conn.inflight.load(std::memory_order_acquire) >= budget) {
    {
      std::lock_guard lock(countersMutex_);
      ++counters_.busyRejections;
      if (shedBudget &&
          conn.inflight.load(std::memory_order_relaxed) <
              config_.maxQueuedPerClient) {
        // Would have been admitted under the full budget: this rejection
        // is attributable to shedding, not the client's own backlog.
        ++counters_.shedAdmission;
      }
    }
    busyCounter_.increment();
    if (task.json) {
      JsonWriter busy;
      busy.beginObject();
      busy.key("id").value(static_cast<long long>(task.requestId));
      busy.key("busy").value(true);
      busy.endObject();
      sendJsonLine(conn, busy.str());
    } else {
      sendFrame(conn, wire::FrameType::kBusy, task.requestId, {});
    }
    return true;
  }
  conn.inflight.fetch_add(1, std::memory_order_acq_rel);
  task.admitted = std::chrono::steady_clock::now();
  std::size_t depth;
  {
    std::lock_guard lock(queueMutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
    queueDepthAtomic_.store(static_cast<std::int64_t>(depth),
                            std::memory_order_relaxed);
  }
  queueCv_.notify_one();
  queueGauge_.set(static_cast<std::int64_t>(depth));
  std::lock_guard lock(countersMutex_);
  counters_.queueDepth = static_cast<std::int64_t>(depth);
  counters_.queuePeakDepth =
      std::max(counters_.queuePeakDepth, counters_.queueDepth);
  return true;
}

// --- worker side ------------------------------------------------------------

void VerificationService::workerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock lock(queueMutex_);
      queueCv_.wait(lock, [this] {
        return !queue_.empty() || !running_.load() ||
               cancelQueued_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        if (!running_.load()) return;  // spurious wake with no work
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      counters_.queueDepth = static_cast<std::int64_t>(queue_.size());
      queueDepthAtomic_.store(counters_.queueDepth,
                              std::memory_order_relaxed);
      queueGauge_.set(counters_.queueDepth);
      // Incremented under the queue lock so stop()'s drain wait can never
      // observe queue == 0 && executing == 0 while a popped task is still
      // between the pop and its execution.
      executing_.fetch_add(1, std::memory_order_relaxed);
    }
    // Typed shed paths: a task still queued when the drain deadline
    // expired, or whose queue-wait deadline passed, is answered kTimeout --
    // the request was never executed, so a retry is always safe.
    const bool cancelled = cancelQueued_.load(std::memory_order_acquire);
    const bool expired =
        config_.requestDeadlineMs > 0 &&
        std::chrono::steady_clock::now() - task.admitted >=
            std::chrono::milliseconds(config_.requestDeadlineMs);
    if (cancelled || expired) {
      sendTimeout(task);
    } else {
      (void)FAULT_POINT("service.dispatch");
      if (task.json) {
        executeJson(task);
      } else {
        execute(task);
      }
    }
    executing_.fetch_sub(1, std::memory_order_relaxed);
    Connection& conn = *task.conn;
    if (conn.inflight.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        conn.closeRequested.load(std::memory_order_acquire)) {
      closeConnection(conn);
    }
  }
}

void VerificationService::execute(Task& task) {
  Connection& conn = *task.conn;
  requestCounter_.increment();
  {
    std::lock_guard lock(countersMutex_);
    ++counters_.requests;
    if (task.type == wire::FrameType::kVerify) ++counters_.verifyRequests;
    if (task.type == wire::FrameType::kClassify) ++counters_.classifyRequests;
  }
  try {
    switch (task.type) {
      case wire::FrameType::kPing:
        sendFrame(conn, wire::FrameType::kPong, task.requestId, {});
        break;
      case wire::FrameType::kSleep: {
        if (!config_.enableTestOps) {
          throw std::invalid_argument(
              "service: sleep is a test-only operation");
        }
        std::size_t offset = 0;
        const std::uint32_t millis = wire::readU32(task.payload, offset);
        std::this_thread::sleep_for(std::chrono::milliseconds(millis));
        sendFrame(conn, wire::FrameType::kPong, task.requestId, {});
        break;
      }
      case wire::FrameType::kVerify: {
        const VerifyRequestFrame request = decodeVerifyRequest(task.payload);
        const VerifyResultFrame result = runVerify(request, sheddingNow());
        const std::vector<std::uint8_t> payload = encodeVerifyResult(result);
        sendFrame(conn, wire::FrameType::kVerifyResult, task.requestId,
                  payload);
        break;
      }
      case wire::FrameType::kClassify: {
        const ClassifyRequestFrame request =
            decodeClassifyRequest(task.payload);
        const std::string json = runClassify(request);
        sendFrame(conn, wire::FrameType::kClassifyResult, task.requestId,
                  {reinterpret_cast<const std::uint8_t*>(json.data()),
                   json.size()});
        break;
      }
      case wire::FrameType::kStats: {
        const std::string json = statsJson();
        sendFrame(conn, wire::FrameType::kStatsResult, task.requestId,
                  {reinterpret_cast<const std::uint8_t*>(json.data()),
                   json.size()});
        break;
      }
      default:
        throw std::invalid_argument("service: unknown request frame type");
    }
  } catch (const std::exception& error) {
    {
      std::lock_guard lock(countersMutex_);
      ++counters_.errors;
    }
    errorCounter_.increment();
    sendError(conn, task.requestId, error.what());
  }
}

void VerificationService::executeJson(Task& task) {
  Connection& conn = *task.conn;
  requestCounter_.increment();
  {
    std::lock_guard lock(countersMutex_);
    ++counters_.requests;
    if (task.type == wire::FrameType::kVerify) ++counters_.verifyRequests;
    if (task.type == wire::FrameType::kClassify) ++counters_.classifyRequests;
  }
  const JsonValue& request = task.jsonRequest;
  const long long id = task.requestId;
  try {
    switch (task.type) {
      case wire::FrameType::kPing: {
        JsonWriter json;
        json.beginObject();
        json.key("id").value(id);
        json.key("ok").value(true);
        json.key("pong").value(true);
        json.endObject();
        sendJsonLine(conn, json.str());
        break;
      }
      case wire::FrameType::kSleep: {
        if (!config_.enableTestOps) {
          throw std::invalid_argument(
              "service: sleep is a test-only operation");
        }
        const JsonValue* millis = request.find("ms");
        std::this_thread::sleep_for(
            std::chrono::milliseconds(millis ? millis->asInt() : 0));
        JsonWriter json;
        json.beginObject();
        json.key("id").value(id);
        json.key("ok").value(true);
        json.key("pong").value(true);
        json.endObject();
        sendJsonLine(conn, json.str());
        break;
      }
      case wire::FrameType::kVerify: {
        VerifyRequestFrame frame;
        std::vector<int> labels;  // owns what the frame's span views
        if (const JsonValue* fingerprint = request.find("fingerprint")) {
          frame.problemRef = ProblemRefKind::kFingerprint;
          frame.fingerprint =
              static_cast<std::uint64_t>(fingerprint->asInt());
        } else {
          frame.spec = request.at("problem").asString();
        }
        if (const JsonValue* count = request.find("count")) {
          frame.countViolations = count->asBool();
        }
        if (const JsonValue* degrade = request.find("allow_degrade")) {
          frame.allowDegrade = degrade->asBool();
        }
        if (const JsonValue* tier = request.find("tier")) {
          frame.tierPin = tierPinOf(tier->asString());
        }
        if (const JsonValue* threads = request.find("threads")) {
          frame.threads = static_cast<std::uint32_t>(threads->asInt());
        }
        if (const JsonValue* path = request.find("path")) {
          frame.labelling = LabellingKind::kPath;
          frame.path = path->asString();
        } else {
          const std::vector<JsonValue>& array = request.at("labels").asArray();
          labels.reserve(array.size());
          for (const JsonValue& label : array) {
            labels.push_back(static_cast<int>(label.asInt()));
          }
          frame.labels = labels;
          frame.n = static_cast<std::uint32_t>(request.at("n").asInt());
          if (const JsonValue* dims = request.find("dims")) {
            frame.dims = static_cast<std::uint32_t>(dims->asInt());
          }
          if (const JsonValue* batch = request.find("batch")) {
            frame.batch = static_cast<std::uint32_t>(batch->asInt());
          }
        }
        const VerifyResultFrame result = runVerify(frame, sheddingNow());
        JsonWriter json;
        json.beginObject();
        json.key("id").value(id);
        json.key("ok").value(true);
        json.key("feasible").value(result.feasible);
        if (result.degraded) {
          json.key("degraded").value(true);
        }
        json.key("violations").value(
            static_cast<long long>(result.violations));
        json.key("labellings").value(
            static_cast<long long>(result.labellings));
        json.key("tier").value(
            verifyTierName(static_cast<VerifyTier>(result.tier)));
        json.key("fingerprint").value(JsonWriter::hex(result.fingerprint));
        json.key("nanos").value(static_cast<long long>(result.nanos));
        if (!result.feasiblePerLabelling.empty()) {
          json.key("feasible_per_labelling").beginArray();
          for (std::uint8_t feasible : result.feasiblePerLabelling) {
            json.value(feasible != 0);
          }
          json.endArray();
        }
        if (!result.violationsPerLabelling.empty()) {
          json.key("violations_per_labelling").beginArray();
          for (std::int64_t violations : result.violationsPerLabelling) {
            json.value(static_cast<long long>(violations));
          }
          json.endArray();
        }
        json.endObject();
        sendJsonLine(conn, json.str());
        break;
      }
      case wire::FrameType::kClassify: {
        ClassifyRequestFrame frame;
        if (const JsonValue* fingerprint = request.find("fingerprint")) {
          frame.problemRef = ProblemRefKind::kFingerprint;
          frame.fingerprint =
              static_cast<std::uint64_t>(fingerprint->asInt());
        } else {
          frame.spec = request.at("problem").asString();
        }
        const std::string classification = runClassify(frame);
        sendJsonLine(conn, "{\"id\":" + std::to_string(id) +
                               ",\"ok\":true,\"classification\":" +
                               classification + "}");
        break;
      }
      case wire::FrameType::kStats:
        sendJsonLine(conn, "{\"id\":" + std::to_string(id) +
                               ",\"ok\":true,\"stats\":" + statsJson() + "}");
        break;
      default:
        throw std::invalid_argument("service: unknown request type");
    }
  } catch (const std::exception& error) {
    {
      std::lock_guard lock(countersMutex_);
      ++counters_.errors;
    }
    errorCounter_.increment();
    sendJsonLine(conn, jsonErrorLine(task.requestId, error.what()));
  }
}

// --- request execution ------------------------------------------------------

bool VerificationService::sheddingNow() const {
  return config_.shedEnabled &&
         queueDepthAtomic_.load(std::memory_order_relaxed) >=
             static_cast<std::int64_t>(shedThreshold_);
}

void VerificationService::sendTimeout(Task& task) {
  {
    std::lock_guard lock(countersMutex_);
    ++counters_.timeouts;
  }
  timeoutCounter_.increment();
  Connection& conn = *task.conn;
  if (task.json) {
    JsonWriter json;
    json.beginObject();
    json.key("id").value(static_cast<long long>(task.requestId));
    json.key("timeout").value(true);
    json.endObject();
    sendJsonLine(conn, json.str());
  } else {
    sendFrame(conn, wire::FrameType::kTimeout, task.requestId, {});
  }
}

VerifyResultFrame VerificationService::runVerify(
    const VerifyRequestFrame& frame, bool shedActive) {
  VerifyRequest request;
  // The shared_ptrs keep cached problems alive across a concurrent
  // eviction for the duration of the call.
  std::shared_ptr<const GridLcl> held;
  std::shared_ptr<const GridLclD> heldD;
  if (frame.problemRef == ProblemRefKind::kFingerprint) {
    held = problems_.byFingerprint(frame.fingerprint);
    if (!held) {
      throw std::invalid_argument(
          "service: unknown problem fingerprint (not in the cache; send the "
          "spec once first)");
    }
    request.problem = held.get();
  } else if (isCycleSpec(frame.spec)) {
    throw std::invalid_argument(
        "service: cycle problems take classify requests, not verify");
  } else if (isProblemDSpec(frame.spec)) {
    heldD = problems_.bySpecD(frame.spec);
    request.problemD = heldD.get();
  } else {
    held = problems_.bySpec(frame.spec);
    request.problem = held.get();
  }
  if (frame.tierPin > 3) {
    throw std::invalid_argument("service: unknown tier pin");
  }
  request.options.tier = static_cast<TierPin>(frame.tierPin);
  request.options.countViolations = frame.countViolations;
  // Graceful degradation: under shed pressure a countViolations request
  // that opted in runs as early-exit verify instead -- same feasibility
  // verdict, but the count becomes a lower bound; the result says so.
  bool degraded = false;
  if (shedActive && frame.allowDegrade && frame.countViolations) {
    request.options.countViolations = false;
    degraded = true;
    {
      std::lock_guard lock(countersMutex_);
      ++counters_.shedDowngrades;
    }
    shedCounter_.increment();
  }
  // Per-request parallelism is capped by the daemon's engineThreads budget
  // (0 on the wire asks for the daemon default).
  const int askedThreads =
      frame.threads == 0 ? config_.engineThreads
                         : static_cast<int>(frame.threads);
  request.options.engine.threads =
      std::clamp(askedThreads, 1, config_.engineThreads);

  std::optional<Torus2D> torus;
  std::optional<TorusD> torusD;
  if (frame.labelling == LabellingKind::kPath) {
    request.labellingPath = frame.path;
  } else {
    if (request.problemD != nullptr) {
      torusD.emplace(static_cast<int>(frame.dims), static_cast<int>(frame.n));
      request.torusD = &*torusD;
    } else {
      if (frame.dims != 2) {
        throw std::invalid_argument("service: 2D problems need dims == 2");
      }
      torus.emplace(static_cast<int>(frame.n));
      request.torus = &*torus;
    }
    request.labels = frame.labels;
  }

  VerifyResult result = verify(request);
  VerifyResultFrame out;
  out.degraded = degraded;
  out.feasible = result.feasible;
  out.tier = static_cast<std::uint8_t>(result.tier);
  out.violations = result.violations;
  out.labellings = result.labellings;
  out.fingerprint = result.fingerprint;
  out.nanos = result.nanos;
  out.feasiblePerLabelling = std::move(result.feasiblePerLabelling);
  out.violationsPerLabelling = std::move(result.violationsPerLabelling);
  return out;
}

std::string VerificationService::runClassify(
    const ClassifyRequestFrame& frame) {
  engine::ClassifyOptions options;
  options.reportCache = &reports_;
  engine::ClassifyResult result;
  const char* engineName = "grid";
  if (frame.problemRef == ProblemRefKind::kFingerprint) {
    const std::shared_ptr<const GridLcl> held =
        problems_.byFingerprint(frame.fingerprint);
    if (!held) {
      throw std::invalid_argument(
          "service: unknown problem fingerprint (not in the cache; send the "
          "spec once first)");
    }
    result = engine::classify(*held, options);
  } else if (isCycleSpec(frame.spec)) {
    result = engine::classify(buildCycleProblem(frame.spec), options);
    engineName = "cycle";
  } else if (isProblemDSpec(frame.spec)) {
    throw std::invalid_argument(
        "service: classification covers 2D grid and cycle problems");
  } else {
    const std::shared_ptr<const GridLcl> held = problems_.bySpec(frame.spec);
    result = engine::classify(*held, options);
  }
  JsonWriter json;
  json.beginObject();
  json.key("problem").value(result.problem);
  json.key("engine").value(engineName);
  json.key("complexity").value(result.complexity);
  json.key("fingerprint").value(JsonWriter::hex(result.fingerprint));
  json.key("cache_hit").value(result.cacheHit);
  json.key("seconds").value(result.seconds);
  if (result.grid) {
    json.key("trivial_label").value(result.grid->trivialLabel);
    json.key("attempts").value(
        static_cast<long long>(result.grid->attempts.size()));
  }
  if (result.cycle) {
    json.key("flexible_node").value(result.cycle->flexibleNode);
    json.key("flexibility").value(result.cycle->flexibility);
    json.key("has_self_loop").value(result.cycle->hasSelfLoop);
    json.key("has_cycle").value(result.cycle->hasCycle);
  }
  json.endObject();
  return json.str();
}

// --- stats ------------------------------------------------------------------

ServiceCounters VerificationService::counters() const {
  std::lock_guard lock(countersMutex_);
  return counters_;
}

std::string VerificationService::statsJson() const {
  const ServiceCounters counters = this->counters();
  const support::LruStats problemStats = problems_.stats();
  const support::LruStats reportStats = reports_.stats();
  JsonWriter service;
  service.beginObject();
  service.key("requests").value(static_cast<long long>(counters.requests));
  service.key("verify_requests")
      .value(static_cast<long long>(counters.verifyRequests));
  service.key("classify_requests")
      .value(static_cast<long long>(counters.classifyRequests));
  service.key("busy_rejections")
      .value(static_cast<long long>(counters.busyRejections));
  service.key("errors").value(static_cast<long long>(counters.errors));
  service.key("connections_accepted")
      .value(static_cast<long long>(counters.connectionsAccepted));
  service.key("connections_rejected")
      .value(static_cast<long long>(counters.connectionsRejected));
  service.key("queue_depth").value(static_cast<long long>(counters.queueDepth));
  service.key("queue_peak_depth")
      .value(static_cast<long long>(counters.queuePeakDepth));
  service.key("timeouts").value(static_cast<long long>(counters.timeouts));
  service.key("shed_downgrades")
      .value(static_cast<long long>(counters.shedDowngrades));
  service.key("shed_admission")
      .value(static_cast<long long>(counters.shedAdmission));
  const auto cacheObject = [&service](const char* name,
                                      const support::LruStats& stats) {
    service.key(name).beginObject();
    service.key("hits").value(static_cast<long long>(stats.hits));
    service.key("misses").value(static_cast<long long>(stats.misses));
    service.key("evictions").value(static_cast<long long>(stats.evictions));
    service.key("entries").value(static_cast<long long>(stats.entries));
    service.endObject();
  };
  cacheObject("problem_cache", problemStats);
  cacheObject("report_cache", reportStats);
  service.endObject();
  // The telemetry snapshot is already a complete JSON document; splice it
  // in verbatim ("null" when telemetry is compiled out).
  std::string metrics = telemetry::metricsJson();
  if (metrics.empty()) metrics = "null";
  return "{\"metrics\":" + metrics + ",\"service\":" + service.str() + "}";
}

// --- response writers -------------------------------------------------------

void VerificationService::sendFrame(Connection& conn, wire::FrameType type,
                                    std::uint32_t requestId,
                                    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(wire::kHeaderBytes + payload.size());
  wire::appendHeader(frame, type, requestId,
                     static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  std::lock_guard lock(conn.writeMutex);
  if (conn.fd < 0) return;
  writeFully(conn.fd, frame.data(), frame.size());
}

void VerificationService::sendError(Connection& conn, std::uint32_t requestId,
                                    const std::string& message) {
  sendFrame(conn, wire::FrameType::kError, requestId,
            {reinterpret_cast<const std::uint8_t*>(message.data()),
             message.size()});
}

void VerificationService::sendJsonLine(Connection& conn,
                                       const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::lock_guard lock(conn.writeMutex);
  if (conn.fd < 0) return;
  writeFully(conn.fd, out.data(), out.size());
}

}  // namespace lclgrid::service
