// Problem spec strings of the verification service: a compact, stable text
// name for every problem the daemon can build on demand, so clients refer
// to problems without shipping predicates over the wire. Colon-separated,
// first token the family, the rest integer parameters:
//
//   2D grid (lcl/problems.hpp):        d-dimensional (problems_d):
//     "vc:<k>"      vertexColouring      "vcd:<dims>:<k>"  vertexColouring
//     "mis"         maximalIndependentSet"xor:<dims>"      xorParity
//     "is"          independentSet       "mono:<dims>:<axis>:<sigma>"
//     "mm"          maximalMatching                        monotoneAxis
//     "ec:<k>"      edgeColouring
//     "orient:<a>,<b>,..."  orientation (allowed in-degrees)
//     "nh1p"        noHorizontalOnePair
//     "weak:<k>:<m>" weakColouring
//
//   cycles (classification requests only):
//     "cvc:<k>"  proper k-colouring of the directed cycle
//     "cmis"     maximal independent set on the directed cycle
//
// Unknown family names or malformed parameters throw std::invalid_argument
// with the offending spec -- the daemon relays that as a kError frame.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "cycle/cycle_lcl.hpp"
#include "lcl/grid_lcl.hpp"
#include "lcl/grid_lcl_d.hpp"

namespace lclgrid::service {

/// True iff the spec names a d-dimensional problem ("vcd:", "xor:",
/// "mono:") -- those resolve through buildProblemD.
bool isProblemDSpec(std::string_view spec);

/// True iff the spec names a cycle problem ("cvc:", "cmis").
bool isCycleSpec(std::string_view spec);

/// Builds the named 2D grid problem; throws std::invalid_argument for
/// unknown/malformed specs (including d-dimensional and cycle specs).
GridLcl buildProblem(std::string_view spec);

/// Builds the named d-dimensional problem; throws for anything else.
GridLclD buildProblemD(std::string_view spec);

/// Builds the named cycle problem; throws for anything else.
cycle::CycleLcl buildCycleProblem(std::string_view spec);

}  // namespace lclgrid::service
