// Wire protocol of the verification service (docs/service.md). Two framings
// share one connection port:
//
//  * Binary (the default): length-prefixed frames with a 16-byte header --
//    4 magic bytes "LGS1", a type byte, a flags byte (reserved, zero), a
//    reserved u16, a u32 request id (echoed verbatim in the response) and a
//    u32 payload length -- followed by `payload length` bytes. All scalars
//    little-endian. The verify payload keeps its label array 4-byte
//    aligned, so the daemon streams inline batches zero-copy into the
//    engine (a span over the receive buffer, no unpack).
//
//  * Newline JSON (debug): when the first bytes of a connection are not the
//    magic, every line is one JSON request object and every response one
//    JSON line -- telnet/netcat-friendly; parsed with support::parseJson.
//
// Overload policy: a request arriving while the client already has
// maxQueuedPerClient requests admitted is answered with an explicit kBusy
// frame (same request id) and NOT executed -- never a silent drop, never a
// disconnect. Malformed payloads yield kError with a message; malformed
// *framing* (bad magic mid-stream, oversized payload) closes the
// connection after a best-effort kError, since the stream can no longer be
// re-synchronised.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace lclgrid::service {

/// Malformed frame or payload; the daemon relays what() in a kError frame.
struct ProtocolError : std::runtime_error {
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

namespace wire {

inline constexpr unsigned char kMagic[4] = {'L', 'G', 'S', '1'};
inline constexpr std::size_t kHeaderBytes = 16;

enum class FrameType : std::uint8_t {
  // Requests.
  kPing = 0x01,
  kVerify = 0x02,
  kClassify = 0x03,
  kStats = 0x04,
  kShutdown = 0x05,
  /// Test-only (ServiceConfig::enableTestOps): hold a worker for the given
  /// milliseconds -- the deterministic way to drive the BUSY path.
  kSleep = 0x06,
  // Responses.
  kPong = 0x81,
  kVerifyResult = 0x82,
  kClassifyResult = 0x83,  // payload: UTF-8 JSON
  kStatsResult = 0x84,     // payload: UTF-8 JSON (telemetry metrics_snapshot)
  kBusy = 0x85,            // payload: empty
  kError = 0x86,           // payload: UTF-8 message
  kShutdownAck = 0x87,
  /// Deadline outcome, distinct from kBusy (back-pressure: retry later)
  /// and kError (the request itself is bad): the request was admitted but
  /// its deadline expired before a worker could run it, or the daemon shed
  /// it while draining. The request was NOT executed. Payload: empty.
  kTimeout = 0x88,
};

struct FrameHeader {
  FrameType type = FrameType::kPing;
  std::uint32_t requestId = 0;
  std::uint32_t payloadBytes = 0;
};

/// Appends a 16-byte header to `out`.
void appendHeader(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint32_t requestId, std::uint32_t payloadBytes);

/// Decodes the 16 bytes at `bytes`; returns false iff the magic mismatches
/// (the caller decides between JSON debug mode and a framing error).
bool decodeHeader(const std::uint8_t* bytes, FrameHeader* header);

}  // namespace wire

// --- verify request / result payloads --------------------------------------

enum class ProblemRefKind : std::uint8_t { kSpec = 0, kFingerprint = 1 };
enum class LabellingKind : std::uint8_t { kInline = 0, kPath = 1 };

/// Fixed prefix: 40 bytes -- u8 problemRef, u8 countViolations, u8
/// labelling, u8 tierPin, u32 threads, u64 fingerprint, u32 dims, u32 n,
/// u32 batch, u32 specLen, u32 pathLen, u32 flags -- then the spec
/// bytes, the path bytes, zero padding to a 4-byte boundary, and batch *
/// n^dims little-endian int32 labels (inline labellings only). The flags
/// word was reserved-zero before the degradation protocol, so old encoders
/// interoperate (bit 0 = allowDegrade).
struct VerifyRequestFrame {
  ProblemRefKind problemRef = ProblemRefKind::kSpec;
  bool countViolations = false;
  LabellingKind labelling = LabellingKind::kInline;
  std::uint8_t tierPin = 0;  // mirrors lclgrid::TierPin's enumerator order
  std::uint32_t threads = 1;
  std::uint64_t fingerprint = 0;
  std::uint32_t dims = 2;
  std::uint32_t n = 0;
  std::uint32_t batch = 1;
  /// Under shed pressure the daemon may downgrade this countViolations
  /// request to early-exit verify (docs/robustness.md); the result then
  /// carries degraded = true and `violations` is only a lower bound.
  bool allowDegrade = false;
  std::string spec;
  std::string path;
  /// Decoded frames: a view into the receive buffer (zero-copy); valid
  /// while that buffer lives.
  std::span<const int> labels;
};

std::vector<std::uint8_t> encodeVerifyRequest(const VerifyRequestFrame& frame);
/// Throws ProtocolError on truncation, length mismatches, or a label
/// payload that is not exactly batch * n^dims int32 words.
VerifyRequestFrame decodeVerifyRequest(std::span<const std::uint8_t> payload);

/// Fixed prefix: 32 bytes -- u8 feasible, u8 tier (lclgrid::VerifyTier
/// order), u8 perLabelling (0 none / 1 feasible bytes / 2 violation i64s),
/// u8 flags (was reserved-zero; bit 0 = degraded), u32 labellings, i64
/// violations, u64 fingerprint, i64 nanos -- then the per-labelling array
/// when perLabelling != 0.
struct VerifyResultFrame {
  bool feasible = false;
  std::uint8_t tier = 0;
  /// True when the daemon downgraded a countViolations request to
  /// early-exit verify under shed pressure (the request allowed it);
  /// `violations` is then 0 or a lower bound, not an exact count.
  bool degraded = false;
  std::int64_t violations = 0;
  std::int64_t labellings = 1;
  std::uint64_t fingerprint = 0;
  std::int64_t nanos = 0;
  std::vector<std::uint8_t> feasiblePerLabelling;
  std::vector<std::int64_t> violationsPerLabelling;
};

std::vector<std::uint8_t> encodeVerifyResult(const VerifyResultFrame& frame);
VerifyResultFrame decodeVerifyResult(std::span<const std::uint8_t> payload);

// --- classify request payload ----------------------------------------------
// (Classify and stats *responses* are JSON text payloads; the hot path is
// verify, which stays fully binary.)

/// Fixed prefix: 16 bytes -- u8 problemRef, 3 reserved bytes, u32 specLen,
/// u64 fingerprint -- then the spec bytes.
struct ClassifyRequestFrame {
  ProblemRefKind problemRef = ProblemRefKind::kSpec;
  std::uint64_t fingerprint = 0;
  std::string spec;
};

std::vector<std::uint8_t> encodeClassifyRequest(
    const ClassifyRequestFrame& frame);
ClassifyRequestFrame decodeClassifyRequest(
    std::span<const std::uint8_t> payload);

// --- little-endian scalar helpers (shared with tests) -----------------------

namespace wire {

void appendU32(std::vector<std::uint8_t>& out, std::uint32_t value);
void appendU64(std::vector<std::uint8_t>& out, std::uint64_t value);
void appendI64(std::vector<std::uint8_t>& out, std::int64_t value);

/// Bounds-checked reads advancing `offset`; throw ProtocolError past end.
std::uint8_t readU8(std::span<const std::uint8_t> bytes, std::size_t& offset);
std::uint32_t readU32(std::span<const std::uint8_t> bytes,
                      std::size_t& offset);
std::uint64_t readU64(std::span<const std::uint8_t> bytes,
                      std::size_t& offset);
std::int64_t readI64(std::span<const std::uint8_t> bytes, std::size_t& offset);

}  // namespace wire

}  // namespace lclgrid::service
