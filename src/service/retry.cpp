#include "service/retry.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace lclgrid::service {

namespace {

std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

RetryingClient::RetryingClient(ServiceClient client, RetryPolicy policy)
    : client_(std::move(client)),
      policy_(policy),
      rngState_(policy.jitterSeed != 0 ? policy.jitterSeed : 1) {
  policy_.maxAttempts = std::max(1, policy_.maxAttempts);
  policy_.baseDelayMs = std::max(0, policy_.baseDelayMs);
  policy_.maxDelayMs = std::max(policy_.baseDelayMs, policy_.maxDelayMs);
}

int RetryingClient::drawBackoffMs() {
  // Decorrelated jitter: sleep_k ~ uniform(base, 3 * sleep_{k-1}), capped.
  // The 3x of the *previous actual sleep* (not attempt index) is what
  // decorrelates concurrent clients: one early short draw keeps that
  // client's whole schedule shifted off its neighbours'.
  const long long lo = policy_.baseDelayMs;
  const long long prev = lastSleepMs_ > 0 ? lastSleepMs_
                         : policy_.baseDelayMs > 0 ? policy_.baseDelayMs
                                                   : 1;
  const long long hi = std::max(lo + 1, 3 * prev);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo + 1);
  long long sleep =
      lo + static_cast<long long>(xorshift(rngState_) % span);
  sleep = std::min<long long>(sleep, policy_.maxDelayMs);
  lastSleepMs_ = static_cast<int>(sleep);
  return lastSleepMs_;
}

void RetryingClient::noteFailureAndBackoff(bool needReconnect, int attempt) {
  if (attempt + 1 >= policy_.maxAttempts) return;  // no sleep before giving up
  const int sleepMs = drawBackoffMs();
  if (sleepMs > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleepMs));
    stats_.backoffMs += sleepMs;
  }
  if (needReconnect) {
    client_.reconnect();
    ++stats_.reconnects;
  }
}

template <typename Fn>
auto RetryingClient::callWithRetry(Fn&& fn) -> decltype(fn()) {
  for (int attempt = 0;; ++attempt) {
    ++stats_.attempts;
    const bool last = attempt + 1 >= policy_.maxAttempts;
    try {
      auto result = fn();
      if (result) return result;
      // kBusy: the daemon promised the request was not executed.
      ++stats_.busy;
      if (!policy_.retryBusy || last) {
        throw RemoteError("retry: service busy, attempts exhausted");
      }
      noteFailureAndBackoff(/*needReconnect=*/false, attempt);
    } catch (const TimeoutError&) {
      ++stats_.timeouts;
      if (!policy_.retryTimeout || last) throw;
      // A client-side expiry closed the connection (the stream cannot be
      // re-synchronised); a daemon kTimeout left it framed and open.
      noteFailureAndBackoff(!client_.connected(), attempt);
    } catch (const DisconnectError&) {
      ++stats_.disconnects;
      if (!policy_.retryDisconnect || last) throw;
      noteFailureAndBackoff(/*needReconnect=*/true, attempt);
    } catch (const RemoteError&) {
      // The daemon judged the request itself bad; the same bytes would
      // earn the same answer. Never retried.
      throw;
    } catch (const std::runtime_error&) {
      // Transport-level failure below the protocol (hard send error such
      // as EPIPE, failed reconnect): treated as a disconnect.
      ++stats_.disconnects;
      if (!policy_.retryDisconnect || last) throw;
      noteFailureAndBackoff(/*needReconnect=*/true, attempt);
    }
  }
}

VerifyResultFrame RetryingClient::verify(const VerifyRequestFrame& request) {
  return *callWithRetry([&] { return client_.verify(request); });
}

std::string RetryingClient::classify(const ClassifyRequestFrame& request) {
  return *callWithRetry([&] { return client_.classify(request); });
}

std::string RetryingClient::stats() {
  return *callWithRetry([&] { return client_.stats(); });
}

}  // namespace lclgrid::service
