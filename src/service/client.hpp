// Client side of the verification service protocol: a blocking,
// one-request-at-a-time connection speaking the binary framing of
// service/protocol.hpp, plus a newline-JSON debug client. Used by the
// service tests, bench_service and the lclgrid_serve --request mode; the
// raw send/receive surface is public so protocol error-path tests can craft
// malformed frames.
//
// Overload surface: requests the daemon rejects with kBusy return
// std::nullopt (callers decide between retrying and backing off); kError
// frames throw RemoteError carrying the daemon's message.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace lclgrid::service {

/// The daemon answered kError; what() is the daemon's message.
struct RemoteError : std::runtime_error {
  explicit RemoteError(const std::string& what) : std::runtime_error(what) {}
};

/// A deadline outcome: the daemon answered kTimeout (the request was NOT
/// executed), or the client's own socket deadline (setDeadlineMs) expired
/// mid-call. In the latter case the connection is closed -- a byte stream
/// abandoned mid-frame cannot be re-synchronised -- and the caller must
/// reconnect before retrying (RetryingClient in service/retry.hpp does).
struct TimeoutError : RemoteError {
  explicit TimeoutError(const std::string& what) : RemoteError(what) {}
};

/// The connection died before a response arrived (EOF or a hard socket
/// error mid-call). Whether the request executed is UNKNOWN -- only
/// idempotent operations may be retried across this (service/retry.hpp).
struct DisconnectError : RemoteError {
  explicit DisconnectError(const std::string& what) : RemoteError(what) {}
};

class ServiceClient {
 public:
  /// Connects to the daemon on TCP loopback / a Unix socket; throws
  /// std::runtime_error when the connection fails.
  static ServiceClient connectTcp(int port);
  static ServiceClient connectUnix(const std::string& path);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  void close();
  bool connected() const { return fd_ >= 0; }

  /// Bounds every subsequent send/recv on the socket (SO_RCVTIMEO /
  /// SO_SNDTIMEO). When a call trips the deadline the client closes the
  /// connection and throws TimeoutError -- the response could still arrive
  /// later and would desynchronise the framing. 0 removes the bound.
  void setDeadlineMs(int millis);
  int deadlineMs() const { return deadlineMs_; }

  /// Re-establishes the connection to the endpoint this client was created
  /// with (after a deadline close or server-side disconnect). Preserves the
  /// deadline; throws std::runtime_error when the connect fails.
  void reconnect();

  /// Round-trips a ping; false on a dead connection.
  bool ping();
  /// One verification request; nullopt when the daemon answered kBusy.
  std::optional<VerifyResultFrame> verify(const VerifyRequestFrame& request);
  /// One classification request; the daemon's JSON report.
  std::optional<std::string> classify(const ClassifyRequestFrame& request);
  /// The daemon's stats document (telemetry metrics + service counters).
  std::optional<std::string> stats();
  /// Asks the daemon to shut down (it acks, then waitForShutdown() on the
  /// server side returns).
  void requestShutdown();
  /// Test op (ServiceConfig::enableTestOps): occupy a worker for `millis`.
  /// False when the daemon answered kBusy.
  bool sleepMs(std::uint32_t millis);

  // --- raw frame access (protocol tests) -----------------------------------

  struct Reply {
    wire::FrameType type = wire::FrameType::kError;
    std::uint32_t requestId = 0;
    std::vector<std::uint8_t> payload;
  };

  /// Sends one well-formed frame.
  void sendFrame(wire::FrameType type, std::uint32_t requestId,
                 std::span<const std::uint8_t> payload);
  /// Sends arbitrary bytes (malformed-frame tests).
  void sendRaw(std::span<const std::uint8_t> bytes);
  /// Receives one frame; nullopt when the daemon closed the connection.
  /// Throws RemoteError if the server's framing itself is corrupt.
  std::optional<Reply> receive();

 private:
  ServiceClient(int fd, int port, std::string unixPath)
      : fd_(fd), port_(port), unixPath_(std::move(unixPath)) {}
  /// Send + receive, unwrapping kError into RemoteError, kTimeout into
  /// TimeoutError, and expecting `expected` (or kBusy -> nullopt).
  std::optional<Reply> call(wire::FrameType type,
                            std::span<const std::uint8_t> payload,
                            wire::FrameType expected);

  int fd_ = -1;
  std::uint32_t nextRequestId_ = 1;
  int deadlineMs_ = 0;
  /// Remembered endpoint for reconnect(): TCP port, or the Unix path when
  /// non-empty.
  int port_ = -1;
  std::string unixPath_;
};

/// Newline-JSON debug-mode client (the "telnet" framing): one JSON request
/// line out, one JSON response line back.
class JsonDebugClient {
 public:
  static JsonDebugClient connectTcp(int port);
  JsonDebugClient(JsonDebugClient&& other) noexcept;
  JsonDebugClient& operator=(JsonDebugClient&& other) noexcept;
  JsonDebugClient(const JsonDebugClient&) = delete;
  JsonDebugClient& operator=(const JsonDebugClient&) = delete;
  ~JsonDebugClient();

  void close();
  /// Sends `line` (newline appended) and returns the daemon's response
  /// line; nullopt when the daemon closed the connection.
  std::optional<std::string> request(const std::string& line);

 private:
  explicit JsonDebugClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace lclgrid::service
