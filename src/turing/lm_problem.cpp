#include "turing/lm_problem.hpp"

namespace lclgrid::turing {

std::string qTypeName(QType t) {
  switch (t) {
    case QType::NW: return "NW";
    case QType::NE: return "NE";
    case QType::SE: return "SE";
    case QType::SW: return "SW";
    case QType::N: return "N";
    case QType::S: return "S";
    case QType::E: return "E";
    case QType::W: return "W";
    case QType::A: return "A";
  }
  return "?";
}

int diagDx(QType t) {
  switch (t) {
    case QType::NW: return -1;
    case QType::NE: return 1;
    case QType::SE: return 1;
    case QType::SW: return -1;
    case QType::E: return 1;
    case QType::W: return -1;
    default: return 0;
  }
}

int diagDy(QType t) {
  switch (t) {
    case QType::NW: return 1;
    case QType::NE: return 1;
    case QType::SE: return -1;
    case QType::SW: return -1;
    case QType::N: return 1;
    case QType::S: return -1;
    default: return 0;
  }
}

long long lmAlphabetSize(int numStates, int numSymbols) {
  // P1 colours + P2 labels: 9 types x 2 diagonal colours x (no tape, or
  // symbol x (no head + states)).
  long long tapePayload = 1 + static_cast<long long>(numSymbols) * (1 + numStates);
  return 3 + 9LL * 2 * tapePayload;
}

}  // namespace lclgrid::turing
