// The LCL problem L_M of Section 6: for a Turing machine M, L_M is the
// disjoint union of P1 (proper 3-colouring, always solvable but global) and
// P2 (the anchor/quadrant/execution-table labelling, solvable in
// Theta(log* n) iff M halts on the empty tape). Deciding which of the two
// complexities L_M has is therefore undecidable (Theorem 3).
//
// Labels: each node either carries a P1 colour, or a P2 label consisting of
// a type Q in {NW, NE, SE, SW, N, S, E, W, A} (the direction pointing
// toward the node's anchor; A = anchor), a diagonal 2-colouring bit, and an
// optional execution-table cell (tape symbol + optional head state).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/torus2d.hpp"

namespace lclgrid::turing {

enum class QType : std::uint8_t { NW, NE, SE, SW, N, S, E, W, A };

std::string qTypeName(QType t);

/// The diagonal step of a type: the direction toward the anchor.
/// (dx, dy) with x east, y north; the anchor itself steps (0, 0).
int diagDx(QType t);
int diagDy(QType t);

struct LmLabel {
  bool usesP1 = false;
  int p1Colour = 0;       // in [0, 3) when usesP1
  QType type = QType::A;  // when !usesP1
  int diagColour = 0;     // in {0, 1}
  bool hasTape = false;
  int tapeSymbol = 0;     // in [0, numSymbols)
  int headState = -1;     // -1 = no head; otherwise the machine state

  bool operator==(const LmLabel&) const = default;
};

using LmLabelling = std::vector<LmLabel>;

/// Number of distinct labels of L_M for a machine with the given state and
/// symbol counts -- the (constant) alphabet size of the LCL.
long long lmAlphabetSize(int numStates, int numSymbols);

}  // namespace lclgrid::turing
