// Turing machine substrate for the undecidability construction of Section 6.
// Machines run on a one-way-infinite tape (cells 0, 1, 2, ...) starting on
// an empty (all-blank) tape with the head on cell 0 -- matching the
// execution-table encoding of L_M, whose columns are tape cells to the east
// of the anchor. Machines in the zoo never move left of cell 0.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace lclgrid::turing {

enum class Move { Left, Right, Stay };

struct Transition {
  int nextState = 0;
  int writeSymbol = 0;
  Move move = Move::Right;
};

/// Deterministic single-tape machine. Symbol 0 is the blank. A missing
/// transition halts the machine.
class Machine {
 public:
  Machine(std::string name, int numStates, int numSymbols);

  const std::string& name() const { return name_; }
  int numStates() const { return numStates_; }
  int numSymbols() const { return numSymbols_; }

  void setTransition(int state, int symbol, Transition t);
  std::optional<Transition> transition(int state, int symbol) const;

  /// True iff (state, symbol) has no outgoing transition.
  bool halts(int state, int symbol) const;

 private:
  std::string name_;
  int numStates_;
  int numSymbols_;
  std::vector<std::optional<Transition>> table_;  // state * numSymbols + symbol
};

/// One row of the execution table: the configuration before step `step`.
struct Configuration {
  std::vector<int> tape;  // cells 0..width-1
  int headCell = 0;
  int state = 0;
  bool halted = false;  // no transition applies in this configuration
};

struct ExecutionTable {
  bool halted = false;   // the machine halted within the step budget
  int steps = 0;         // number of steps executed (rows - 1)
  int width = 0;         // tape cells used
  std::vector<Configuration> rows;  // rows[j] = configuration before step j
  bool wentNegative = false;        // head attempted to move left of cell 0
};

/// Runs the machine on the empty tape for at most maxSteps steps and records
/// every configuration (the execution table E(M) of Section 6).
ExecutionTable runOnEmptyTape(const Machine& machine, int maxSteps);

}  // namespace lclgrid::turing
