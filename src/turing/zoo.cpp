#include "turing/zoo.hpp"

#include <stdexcept>

namespace lclgrid::turing {

Machine onesWriter(int count) {
  if (count < 1) throw std::invalid_argument("onesWriter: count >= 1");
  // States 0..count: state s < count writes a 1 and moves right; state
  // `count` has no transition, so the machine halts after exactly `count`
  // steps having written `count` ones.
  Machine m("ones-writer-" + std::to_string(count), count + 1, 2);
  for (int s = 0; s < count; ++s) {
    m.setTransition(s, 0, {s + 1, 1, Move::Right});
  }
  return m;
}

Machine bouncer(int width) {
  if (width < 1) throw std::invalid_argument("bouncer: width >= 1");
  // State 0: walk right writing 1s until `width` cells written (encoded in
  // unary by position -- we use `width` walk states), then state W walks
  // left over 1s, halting on the blank... but moving left of cell 0 is
  // forbidden, so the left walk halts on reading a 1 in state W when the
  // cell to the left is the origin: we instead walk left until reading a 1
  // with a marker 2 at the origin.
  // Layout: states 0..width-1 write 1 and move right; state `width` moves
  // left while reading 1; on reading 2 (the origin marker) it halts.
  // State 0 writes the marker 2 instead of 1.
  Machine m("bouncer-" + std::to_string(width), width + 1, 3);
  m.setTransition(0, 0, {1, 2, Move::Right});
  for (int s = 1; s < width; ++s) {
    m.setTransition(s, 0, {s + 1, 1, Move::Right});
  }
  m.setTransition(width, 0, {width, 0, Move::Left});
  m.setTransition(width, 1, {width, 1, Move::Left});
  // (width, 2) undefined -> halts at the origin marker.
  return m;
}

Machine rightRunner() {
  Machine m("right-runner", 1, 2);
  m.setTransition(0, 0, {0, 1, Move::Right});
  m.setTransition(0, 1, {0, 1, Move::Right});
  return m;
}

Machine blinker() {
  Machine m("blinker", 2, 3);
  m.setTransition(0, 0, {1, 1, Move::Stay});
  m.setTransition(0, 1, {1, 2, Move::Stay});
  m.setTransition(0, 2, {1, 1, Move::Stay});
  m.setTransition(1, 1, {0, 2, Move::Stay});
  m.setTransition(1, 2, {0, 1, Move::Stay});
  return m;
}

Machine unaryCounter(int target) {
  if (target < 1) throw std::invalid_argument("unaryCounter: target >= 1");
  // Repeatedly walk right to the first blank, write a 1, walk back to the
  // origin marker, repeat `target` times (counted in states), then halt.
  // States: 0 = initialise marker; for round r in 0..target-1:
  //   state 1+2r = walk right over 1s, write 1 at blank, turn;
  //   state 2+2r = walk left over 1s to the marker 2.
  Machine m("unary-counter-" + std::to_string(target), 2 * target + 1, 3);
  m.setTransition(0, 0, {1, 2, Move::Right});
  for (int r = 0; r < target; ++r) {
    int walkRight = 1 + 2 * r;
    int walkLeft = 2 + 2 * r;
    m.setTransition(walkRight, 1, {walkRight, 1, Move::Right});
    m.setTransition(walkRight, 0, {walkLeft, 1, Move::Left});
    m.setTransition(walkLeft, 1, {walkLeft, 1, Move::Left});
    if (r + 1 < target) {
      m.setTransition(walkLeft, 2, {walkRight + 2, 2, Move::Right});
    }
    // Final round: (walkLeft, 2) undefined -> halt at the marker.
  }
  return m;
}

}  // namespace lclgrid::turing
