// Constructive solvers for L_M (Section 6):
//  * solveLmLogStar -- the O(log* n) construction available exactly when M
//    halts on the empty tape: sparse anchors, L-infinity Voronoi quadrant
//    types, alternating diagonal colours, and the execution table E(M)
//    placed north-east of every anchor.
//  * solveLmGlobal -- the P1 fallback (3-colouring via the global solver),
//    always available but inherently Theta(n).
//  * lmOracle -- the one-sided semi-decision procedure: tries step budgets
//    1..budget and reports whether the fast construction ever materialises
//    (it does iff M halts within the budget; for non-halting M it fails at
//    every budget, which is the undecidability phenomenon in finite form).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/torus2d.hpp"
#include "turing/lm_problem.hpp"
#include "turing/machine.hpp"

namespace lclgrid::turing {

struct LmBuildResult {
  bool solved = false;
  LmLabelling labels;
  int rounds = 0;
  int stepsUsed = -1;        // halting time when solved via P2
  int anchorSeparation = 0;  // separation of the anchor ruling set
  std::string failure;
};

/// The Theta(log* n) construction; fails iff M does not halt within
/// `stepBudget` steps (or the torus is too small for the table).
LmBuildResult solveLmLogStar(const Torus2D& torus, const Machine& machine,
                             const std::vector<std::uint64_t>& ids,
                             int stepBudget);

/// The P1 fallback: label everything with a proper 3-colouring.
LmBuildResult solveLmGlobal(const Torus2D& torus);

struct LmOracleReport {
  bool halting = false;    // fast construction found within the budget
  int haltingSteps = -1;
  int budgetTried = 0;
};

/// Searches step budgets 1..maxBudget for the fast construction.
LmOracleReport lmOracle(const Machine& machine, int maxBudget);

}  // namespace lclgrid::turing
