// Verifier for L_M (Section 6). The rules are locally checkable (radius 2);
// the implementation checks them with global access for clarity, grouped
// exactly as in the paper:
//   V1  family uniformity: adjacent nodes use the same sub-problem.
//   V2  P1: proper 3-colouring.
//   V3  P2 type rules: diagonal compatibility (rules (1)-(4)), border
//       neighbourhoods, anchor surroundings.
//   V4  diagonal 2-colouring: equal-type diagonal neighbours differ in x.
//   V5  execution tables: every anchor is the bottom-left corner of a
//       rectangular encoding of M's run on the empty tape -- blank first
//       row with the head on the anchor, transition-consistent consecutive
//       rows, halting top row; tables sit on {A, S, W, SW} nodes only and
//       do not overlap.
#pragma once

#include <string>
#include <vector>

#include "grid/torus2d.hpp"
#include "turing/lm_problem.hpp"
#include "turing/machine.hpp"

namespace lclgrid::turing {

struct LmViolation {
  int node = -1;
  std::string rule;  // "V1".."V5"
  std::string description;
};

std::vector<LmViolation> listLmViolations(const Torus2D& torus,
                                          const Machine& machine,
                                          const LmLabelling& labels,
                                          int maxReported = 8);

bool verifyLm(const Torus2D& torus, const Machine& machine,
              const LmLabelling& labels);

}  // namespace lclgrid::turing
