#include "turing/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclgrid::turing {

Machine::Machine(std::string name, int numStates, int numSymbols)
    : name_(std::move(name)), numStates_(numStates), numSymbols_(numSymbols) {
  if (numStates < 1 || numSymbols < 1) {
    throw std::invalid_argument("Machine: need >= 1 state and symbol");
  }
  table_.resize(static_cast<std::size_t>(numStates) *
                static_cast<std::size_t>(numSymbols));
}

void Machine::setTransition(int state, int symbol, Transition t) {
  if (state < 0 || state >= numStates_ || symbol < 0 || symbol >= numSymbols_) {
    throw std::out_of_range("setTransition: state/symbol out of range");
  }
  if (t.nextState < 0 || t.nextState >= numStates_ || t.writeSymbol < 0 ||
      t.writeSymbol >= numSymbols_) {
    throw std::out_of_range("setTransition: target out of range");
  }
  table_[static_cast<std::size_t>(state) * numSymbols_ + symbol] = t;
}

std::optional<Transition> Machine::transition(int state, int symbol) const {
  return table_[static_cast<std::size_t>(state) * numSymbols_ + symbol];
}

bool Machine::halts(int state, int symbol) const {
  return !transition(state, symbol).has_value();
}

ExecutionTable runOnEmptyTape(const Machine& machine, int maxSteps) {
  ExecutionTable table;
  Configuration current;
  current.tape.assign(1, 0);
  current.headCell = 0;
  current.state = 0;

  for (int step = 0; step <= maxSteps; ++step) {
    int symbol = current.tape[static_cast<std::size_t>(current.headCell)];
    auto t = machine.transition(current.state, symbol);
    current.halted = !t.has_value();
    table.rows.push_back(current);
    if (current.halted) {
      table.halted = true;
      table.steps = step;
      break;
    }
    if (step == maxSteps) {
      table.steps = step;
      break;
    }
    // Apply the transition.
    current.tape[static_cast<std::size_t>(current.headCell)] = t->writeSymbol;
    current.state = t->nextState;
    if (t->move == Move::Left) {
      if (current.headCell == 0) {
        table.wentNegative = true;
        table.steps = step + 1;
        break;
      }
      current.headCell -= 1;
    } else if (t->move == Move::Right) {
      current.headCell += 1;
      if (current.headCell == static_cast<int>(current.tape.size())) {
        current.tape.push_back(0);
      }
    }
  }

  // Pad all rows to the same width (the table is rectangular).
  std::size_t width = 0;
  for (const auto& row : table.rows) width = std::max(width, row.tape.size());
  for (auto& row : table.rows) row.tape.resize(width, 0);
  table.width = static_cast<int>(width);
  return table;
}

}  // namespace lclgrid::turing
