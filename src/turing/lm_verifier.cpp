#include "turing/lm_verifier.hpp"

#include <sstream>

namespace lclgrid::turing {

namespace {

bool typeAllowsDiag(QType from, QType to) {
  switch (from) {
    case QType::NE:
      return to == QType::NE || to == QType::N || to == QType::E || to == QType::A;
    case QType::SE:
      return to == QType::SE || to == QType::S || to == QType::E || to == QType::A;
    case QType::SW:
      return to == QType::SW || to == QType::S || to == QType::W || to == QType::A;
    case QType::NW:
      return to == QType::NW || to == QType::N || to == QType::W || to == QType::A;
    case QType::N: return to == QType::N || to == QType::A;
    case QType::S: return to == QType::S || to == QType::A;
    case QType::E: return to == QType::E || to == QType::A;
    case QType::W: return to == QType::W || to == QType::A;
    case QType::A: return true;  // diag of an anchor is itself
  }
  return false;
}

bool tapeCarrierType(QType t) {
  return t == QType::A || t == QType::S || t == QType::W || t == QType::SW;
}

}  // namespace

std::vector<LmViolation> listLmViolations(const Torus2D& torus,
                                          const Machine& machine,
                                          const LmLabelling& labels,
                                          int maxReported) {
  std::vector<LmViolation> violations;
  auto report = [&](int node, const char* rule, const std::string& what) {
    if (static_cast<int>(violations.size()) < maxReported) {
      violations.push_back({node, rule, what});
    }
  };
  auto at = [&](int v) -> const LmLabel& {
    return labels[static_cast<std::size_t>(v)];
  };

  if (static_cast<int>(labels.size()) != torus.size()) {
    report(-1, "V0", "labelling size mismatch");
    return violations;
  }

  // V1 family uniformity + V2 P1 colouring.
  for (int v = 0; v < torus.size(); ++v) {
    const LmLabel& me = at(v);
    for (Dir d : {Dir::North, Dir::East}) {
      const LmLabel& other = at(torus.step(v, d));
      if (me.usesP1 != other.usesP1) {
        report(v, "V1", "adjacent nodes mix P1 and P2");
      } else if (me.usesP1 && me.p1Colour == other.p1Colour) {
        report(v, "V2", "3-colouring violated");
      }
    }
    if (me.usesP1 && (me.p1Colour < 0 || me.p1Colour > 2)) {
      report(v, "V2", "P1 colour out of range");
    }
  }
  if (!violations.empty()) return violations;
  if (!labels.empty() && labels[0].usesP1) return violations;  // P1 solution

  // V3 type rules.
  for (int v = 0; v < torus.size(); ++v) {
    const LmLabel& me = at(v);
    if (me.type != QType::A) {
      int diagNode = torus.shift(v, diagDx(me.type), diagDy(me.type));
      const LmLabel& diag = at(diagNode);
      if (!typeAllowsDiag(me.type, diag.type)) {
        report(v, "V3", "diag rule: " + qTypeName(me.type) + " -> " +
                            qTypeName(diag.type));
      }
      // V4 diagonal 2-colouring.
      if (diag.type == me.type && diag.diagColour == me.diagColour) {
        report(v, "V4", "diagonal not 2-coloured at type " + qTypeName(me.type));
      }
    }
    // Border surroundings.
    auto typeOf = [&](int dx, int dy) { return at(torus.shift(v, dx, dy)).type; };
    switch (me.type) {
      case QType::N:
        if (typeOf(-1, 0) != QType::NE || typeOf(1, 0) != QType::NW) {
          report(v, "V3", "N border neighbours wrong");
        }
        break;
      case QType::S:
        if (typeOf(-1, 0) != QType::SE || typeOf(1, 0) != QType::SW) {
          report(v, "V3", "S border neighbours wrong");
        }
        break;
      case QType::E:
        if (typeOf(0, 1) != QType::SE || typeOf(0, -1) != QType::NE) {
          report(v, "V3", "E border neighbours wrong");
        }
        break;
      case QType::W:
        if (typeOf(0, 1) != QType::SW || typeOf(0, -1) != QType::NW) {
          report(v, "V3", "W border neighbours wrong");
        }
        break;
      case QType::A:
        if (typeOf(0, 1) != QType::S || typeOf(1, 1) != QType::SW ||
            typeOf(1, 0) != QType::W || typeOf(1, -1) != QType::NW ||
            typeOf(0, -1) != QType::N || typeOf(-1, -1) != QType::NE ||
            typeOf(-1, 0) != QType::E || typeOf(-1, 1) != QType::SE) {
          report(v, "V3", "anchor surroundings wrong");
        }
        break;
      default:
        break;
    }
    // Tape carriers must have the right type.
    if (me.hasTape && !tapeCarrierType(me.type)) {
      report(v, "V5", "tape on type " + qTypeName(me.type));
    }
  }
  if (!violations.empty()) return violations;

  // V5 execution tables.
  std::vector<std::uint8_t> claimed(static_cast<std::size_t>(torus.size()), 0);
  long long tapeNodes = 0;
  for (int v = 0; v < torus.size(); ++v) {
    if (at(v).hasTape) ++tapeNodes;
  }
  long long accounted = 0;
  for (int v = 0; v < torus.size(); ++v) {
    if (at(v).type != QType::A) continue;
    // Table extent.
    if (!at(v).hasTape) {
      report(v, "V5", "anchor without execution table");
      continue;
    }
    int width = 0;
    while (width < torus.n() && at(torus.shift(v, width, 0)).hasTape) ++width;
    int height = 0;
    while (height < torus.n() && at(torus.shift(v, 0, height)).hasTape) ++height;
    if (width >= torus.n() || height >= torus.n()) {
      report(v, "V5", "execution table wraps around the torus");
      continue;
    }
    // Rectangle of tape cells, each claimed exactly once.
    bool shapeOk = true;
    for (int j = 0; j < height && shapeOk; ++j) {
      for (int i = 0; i < width && shapeOk; ++i) {
        int cell = torus.shift(v, i, j);
        if (!at(cell).hasTape) {
          report(cell, "V5", "hole inside execution table");
          shapeOk = false;
        } else if (claimed[static_cast<std::size_t>(cell)]) {
          report(cell, "V5", "tape cell claimed by two tables");
          shapeOk = false;
        } else {
          claimed[static_cast<std::size_t>(cell)] = 1;
          ++accounted;
        }
      }
    }
    if (!shapeOk) continue;

    // Decode rows into configurations and check the run.
    bool rowsOk = true;
    std::vector<Configuration> rows(static_cast<std::size_t>(height));
    for (int j = 0; j < height && rowsOk; ++j) {
      Configuration& config = rows[static_cast<std::size_t>(j)];
      config.tape.resize(static_cast<std::size_t>(width));
      config.headCell = -1;
      for (int i = 0; i < width; ++i) {
        const LmLabel& cell = at(torus.shift(v, i, j));
        config.tape[static_cast<std::size_t>(i)] = cell.tapeSymbol;
        if (cell.headState >= 0) {
          if (config.headCell >= 0) {
            report(v, "V5", "two heads in one row");
            rowsOk = false;
          }
          config.headCell = i;
          config.state = cell.headState;
        }
      }
      if (config.headCell < 0) {
        report(v, "V5", "row without head");
        rowsOk = false;
      }
    }
    if (!rowsOk) continue;

    // First row: empty tape, head on the anchor in the initial state.
    const Configuration& first = rows[0];
    bool firstBlank = true;
    for (int symbol : first.tape) firstBlank = firstBlank && symbol == 0;
    if (!firstBlank || first.headCell != 0 || first.state != 0) {
      report(v, "V5", "first row is not the initial configuration");
      continue;
    }
    // Transition consistency.
    bool runOk = true;
    for (int j = 0; j + 1 < height && runOk; ++j) {
      const Configuration& cur = rows[static_cast<std::size_t>(j)];
      const Configuration& nxt = rows[static_cast<std::size_t>(j + 1)];
      auto t = machine.transition(
          cur.state, cur.tape[static_cast<std::size_t>(cur.headCell)]);
      if (!t) {
        report(v, "V5", "row continues after a halting configuration");
        runOk = false;
        break;
      }
      Configuration expect = cur;
      expect.tape[static_cast<std::size_t>(cur.headCell)] = t->writeSymbol;
      expect.state = t->nextState;
      if (t->move == Move::Left) expect.headCell -= 1;
      if (t->move == Move::Right) expect.headCell += 1;
      if (expect.headCell < 0 || expect.headCell >= width) {
        report(v, "V5", "head leaves the table");
        runOk = false;
        break;
      }
      if (expect.tape != nxt.tape || expect.headCell != nxt.headCell ||
          expect.state != nxt.state) {
        report(v, "V5", "rows inconsistent with the transition function");
        runOk = false;
      }
    }
    if (!runOk) continue;

    // Top row must be a halting configuration.
    const Configuration& last = rows[static_cast<std::size_t>(height - 1)];
    if (!machine.halts(last.state,
                       last.tape[static_cast<std::size_t>(last.headCell)])) {
      report(v, "V5", "top row is not a halting configuration");
    }
  }
  if (violations.empty() && accounted != tapeNodes) {
    report(-1, "V5", "tape cells outside every execution table");
  }
  return violations;
}

bool verifyLm(const Torus2D& torus, const Machine& machine,
              const LmLabelling& labels) {
  return listLmViolations(torus, machine, labels, 1).empty();
}

}  // namespace lclgrid::turing
