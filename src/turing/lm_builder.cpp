#include "turing/lm_builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "lcl/global_solver.hpp"
#include "lcl/problems.hpp"
#include "local/ruling_set.hpp"

namespace lclgrid::turing {

namespace {

QType typeFromOffset(int dx, int dy) {
  // (dx, dy) is the offset from the node to its anchor.
  if (dx == 0 && dy == 0) return QType::A;
  if (dx == 0) return dy > 0 ? QType::N : QType::S;
  if (dy == 0) return dx > 0 ? QType::E : QType::W;
  if (dx > 0) return dy > 0 ? QType::NE : QType::SE;
  return dy > 0 ? QType::NW : QType::SW;
}

}  // namespace

LmBuildResult solveLmLogStar(const Torus2D& torus, const Machine& machine,
                             const std::vector<std::uint64_t>& ids,
                             int stepBudget) {
  // The solution family realised here uses *aligned* anchor tiles: anchors
  // on an s x s lattice (s even, s >= 2*span+2, s | n), every tile labelled
  // relative to its own anchor exactly as in Figure 3(b). With aligned
  // tiles every rule of L_M is tile-internal or a tail-to-tail ray meeting,
  // so the labelling verifies against the paper's local rules as stated.
  // The paper's sketch instead places anchors by an MIS and tiles by a
  // Voronoi partition with "ties broken in an arbitrary but consistent
  // manner"; resolving the 45-degree seam cases that partition creates is
  // left implicit there, and a naive closest-anchor assignment genuinely
  // violates the border side rules -- see DESIGN.md (fidelity notes). The
  // Theta(log* n) symmetry-breaking component is demonstrated separately by
  // the S_k experiments; what this builder demonstrates is the dichotomy's
  // mechanism: valid anchor tilings exist exactly when M halts.
  LmBuildResult result;
  ExecutionTable table = runOnEmptyTape(machine, stepBudget);
  if (table.wentNegative) {
    result.failure = "machine moves left of cell 0 (unsupported by L_M)";
    return result;
  }
  if (!table.halted) {
    result.failure = "machine did not halt within the step budget";
    return result;
  }
  result.stepsUsed = table.steps;
  const int height = static_cast<int>(table.rows.size());
  const int width = table.width;
  const int span = std::max(width, height);

  // Smallest even tile size s >= 2*span + 2 dividing n.
  int tile = -1;
  for (int s = 2 * span + 2; s <= torus.n(); ++s) {
    if (s % 2 == 0 && torus.n() % s == 0) {
      tile = s;
      break;
    }
  }
  if (tile < 0) {
    result.failure = "no even tile size >= 2*span+2 divides n";
    return result;
  }
  result.anchorSeparation = tile;
  const int half = tile / 2;

  result.labels.assign(static_cast<std::size_t>(torus.size()), LmLabel{});
  for (int v = 0; v < torus.size(); ++v) {
    // Offset from the node to its lattice anchor; components in
    // [-half, half-1] (anchors sit at coordinates divisible by `tile`).
    auto centred = [&](int coordinate) {
      int r = coordinate % tile;
      return r < half ? -r : tile - r;
    };
    int dx = centred(torus.xOf(v));
    int dy = centred(torus.yOf(v));
    LmLabel& label = result.labels[static_cast<std::size_t>(v)];
    label.usesP1 = false;
    label.type = typeFromOffset(dx, dy);
    label.diagColour =
        std::max(dx < 0 ? -dx : dx, dy < 0 ? -dy : dy) % 2;
  }

  // Execution tables north-east of every anchor.
  for (int v = 0; v < torus.size(); ++v) {
    if (result.labels[static_cast<std::size_t>(v)].type != QType::A) continue;
    for (int j = 0; j < height; ++j) {
      const Configuration& row = table.rows[static_cast<std::size_t>(j)];
      for (int i = 0; i < width; ++i) {
        LmLabel& cell =
            result.labels[static_cast<std::size_t>(torus.shift(v, i, j))];
        cell.hasTape = true;
        cell.tapeSymbol = row.tape[static_cast<std::size_t>(i)];
        cell.headState = (row.headCell == i) ? row.state : -1;
      }
    }
  }

  // Round accounting covers the constant-radius part (tile interior work);
  // the anchor placement itself is the S_k component (O(log* n)), measured
  // by the dedicated normal-form experiments. `ids` are accepted for
  // interface uniformity.
  (void)ids;
  result.rounds += 2 * tile + span;
  result.solved = true;
  return result;
}

LmBuildResult solveLmGlobal(const Torus2D& torus) {
  LmBuildResult result;
  auto colouring = solveGlobally(torus, problems::vertexColouring(3));
  result.rounds = bruteForceRounds(torus.n());
  if (!colouring.feasible) {
    result.failure = "3-colouring infeasible (torus too small?)";
    return result;
  }
  result.labels.assign(static_cast<std::size_t>(torus.size()), LmLabel{});
  for (int v = 0; v < torus.size(); ++v) {
    LmLabel& label = result.labels[static_cast<std::size_t>(v)];
    label.usesP1 = true;
    label.p1Colour = colouring.labels[static_cast<std::size_t>(v)];
  }
  result.solved = true;
  return result;
}

LmOracleReport lmOracle(const Machine& machine, int maxBudget) {
  LmOracleReport report;
  report.budgetTried = maxBudget;
  ExecutionTable table = runOnEmptyTape(machine, maxBudget);
  if (table.halted && !table.wentNegative) {
    report.halting = true;
    report.haltingSteps = table.steps;
  }
  return report;
}

}  // namespace lclgrid::turing
