// A small zoo of Turing machines for the Section 6 experiments: halting
// machines of various running times (L_M becomes Theta(log* n)) and
// non-halting machines (L_M becomes Theta(n)). All stay on cells >= 0.
#pragma once

#include "turing/machine.hpp"

namespace lclgrid::turing {

/// Writes `count` ones moving right, then halts. Halts in `count` steps.
Machine onesWriter(int count);

/// Walks right flipping 0->1, then returns to the left end and halts:
/// a two-phase machine halting in 2*width+1-ish steps.
Machine bouncer(int width);

/// Single state, moves right forever: never halts.
Machine rightRunner();

/// Flips cell 0 between 1 and 2 forever: never halts, bounded tape.
Machine blinker();

/// A 3-state machine that counts in unary and halts; a slightly larger
/// halting example.
Machine unaryCounter(int target);

}  // namespace lclgrid::turing
