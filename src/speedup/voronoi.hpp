// Voronoi tiling with respect to an anchor set (proof of Theorem 2): every
// node is assigned to its closest anchor (ties broken deterministically and
// locally), and receives a local coordinate -- its offset from the anchor --
// which serves as a locally unique identifier from [k^2].
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "grid/torus2d.hpp"

namespace lclgrid::speedup {

struct VoronoiTiling {
  std::vector<int> anchorOf;                  // node -> anchor node id
  std::vector<std::pair<int, int>> offset;    // node -> (dx, dy) to its anchor
  int maxRadius = 0;                          // max L1 distance to own anchor
};

/// Builds the Voronoi tiling of the anchor set. `searchRadius` bounds the
/// anchor search (any node must have an anchor within it; for an MIS of
/// G^(k) the radius k suffices). Ties are broken by (distance, dy, dx).
VoronoiTiling buildVoronoi(const Torus2D& torus,
                           const std::vector<std::uint8_t>& anchors,
                           int searchRadius);

/// Locally unique identifiers from the tiling: two nodes within L1 distance
/// `uniqueRadius` of each other never share an identifier when anchors are
/// an MIS of G^(uniqueRadius) (proof of Theorem 2). Identifiers are >= 1 and
/// bounded by (2*searchRadius+1)^2.
std::vector<std::uint64_t> localIdentifiers(const Torus2D& torus,
                                            const VoronoiTiling& tiling,
                                            int searchRadius);

}  // namespace lclgrid::speedup
