#include "speedup/speedup.hpp"

#include <stdexcept>

#include "local/graph_view.hpp"
#include "local/mis.hpp"

namespace lclgrid::speedup {

SpeedupResult speedUp(const Torus2D& torus,
                      const std::vector<std::uint64_t>& ids, int k,
                      const InnerAlgorithm& inner) {
  if (k < 4 || k % 2 != 0) {
    throw std::invalid_argument("speedUp: k must be even and >= 4");
  }
  if (torus.n() < 2 * k) {
    throw std::invalid_argument("speedUp: torus too small for the chosen k");
  }
  SpeedupResult result;
  result.k = k;

  // Step (2): anchors = MIS of G^(k/2), the only Theta(log* n) component.
  auto view = local::l1PowerView(torus, k / 2);
  auto mis = local::computeMis(view, ids);
  result.anchorRounds = mis.gridRounds;

  // Step (3): Voronoi local coordinates as locally unique identifiers from
  // [ (k+1)^2 ] -- no identifier repeats within L1 distance k/2.
  std::vector<std::uint8_t> anchors(mis.inSet.begin(), mis.inSet.end());
  VoronoiTiling tiling = buildVoronoi(torus, anchors, k / 2);
  auto localIds = localIdentifiers(torus, tiling, k / 2);

  // Simulate A with the instance-size lie.
  InnerRun run = inner(torus, localIds, k);
  result.innerRounds = run.rounds;
  result.theoremGuarantee = run.rounds < k / 4 - 4;

  result.labels = std::move(run.labels);
  result.rounds = result.anchorRounds + 2 * (k / 2) /* Voronoi gather */ +
                  result.innerRounds;
  result.solved = true;
  return result;
}

}  // namespace lclgrid::speedup
