// The speed-up transformer of Theorem 2: given ANY algorithm A that solves
// an LCL P in T(n) = o(n) rounds, produce an O(log* n)-round algorithm B.
//
// B picks a constant k with T(k) < k/4 - 4, computes anchors (an MIS of
// G^(k/2)) in O(log* n) rounds, derives locally unique identifiers from the
// Voronoi local coordinates, and then runs A "with a bit of cheating": A is
// told the instance has size k x k. Because A's horizon T(k) is smaller than
// the local-uniqueness radius, A cannot distinguish the lie from a real
// k x k instance, so its output must be feasible everywhere.
//
// The inner algorithm is abstracted as a callable that runs on a torus with
// given identifiers and a claimed instance size; the synthesized normal-form
// algorithms and the colouring algorithms of Sections 8/10 all fit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "grid/torus2d.hpp"
#include "speedup/voronoi.hpp"

namespace lclgrid::speedup {

struct InnerRun {
  std::vector<int> labels;
  int rounds = 0;
};

/// An algorithm that can be executed with prescribed (possibly only locally
/// unique) identifiers while being told the instance size is `claimedN`.
using InnerAlgorithm = std::function<InnerRun(
    const Torus2D& torus, const std::vector<std::uint64_t>& ids, int claimedN)>;

struct SpeedupResult {
  bool solved = false;
  std::vector<int> labels;
  int rounds = 0;       // anchors + simulation + constant overhead
  int anchorRounds = 0; // the only Theta(log* n) part
  int innerRounds = 0;  // T(k): constant, independent of the real n
  int k = 0;            // the constant instance-size lie
  /// True when T(k) < k/4 - 4 held, i.e. the Theorem 2 precondition that
  /// certifies correctness for EVERY inner algorithm. Concrete inner
  /// algorithms (whose components only require locally proper colourings)
  /// remain correct at much smaller k; the LCL verifier confirms each run.
  bool theoremGuarantee = false;
  std::string failure;
};

/// Runs the Theorem 2 construction. `k` must be even and >= 4.
SpeedupResult speedUp(const Torus2D& torus,
                      const std::vector<std::uint64_t>& ids, int k,
                      const InnerAlgorithm& inner);

}  // namespace lclgrid::speedup
