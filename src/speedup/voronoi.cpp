#include "speedup/voronoi.hpp"

#include <stdexcept>
#include <tuple>

namespace lclgrid::speedup {

VoronoiTiling buildVoronoi(const Torus2D& torus,
                           const std::vector<std::uint8_t>& anchors,
                           int searchRadius) {
  if (static_cast<int>(anchors.size()) != torus.size()) {
    throw std::invalid_argument("buildVoronoi: anchor vector size mismatch");
  }
  VoronoiTiling tiling;
  tiling.anchorOf.assign(static_cast<std::size_t>(torus.size()), -1);
  tiling.offset.assign(static_cast<std::size_t>(torus.size()), {0, 0});

  for (int v = 0; v < torus.size(); ++v) {
    // Scan the offset diamond of radius searchRadius; deterministic
    // tie-breaking on (distance, dy, dx) keeps the tiling locally
    // computable and consistent between neighbouring nodes.
    std::tuple<int, int, int> best{torus.size(), 0, 0};
    bool found = false;
    for (int dy = -searchRadius; dy <= searchRadius; ++dy) {
      int span = searchRadius - (dy < 0 ? -dy : dy);
      for (int dx = -span; dx <= span; ++dx) {
        int candidate = torus.shift(v, dx, dy);
        if (!anchors[static_cast<std::size_t>(candidate)]) continue;
        std::tuple<int, int, int> key{(dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy),
                                      dy, dx};
        if (!found || key < best) {
          best = key;
          found = true;
          tiling.anchorOf[static_cast<std::size_t>(v)] = candidate;
          tiling.offset[static_cast<std::size_t>(v)] = {dx, dy};
        }
      }
    }
    if (!found) {
      throw std::invalid_argument(
          "buildVoronoi: node has no anchor within the search radius");
    }
    auto [dx, dy] = tiling.offset[static_cast<std::size_t>(v)];
    tiling.maxRadius = std::max(tiling.maxRadius,
                                (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy));
  }
  return tiling;
}

std::vector<std::uint64_t> localIdentifiers(const Torus2D& torus,
                                            const VoronoiTiling& tiling,
                                            int searchRadius) {
  const int span = 2 * searchRadius + 1;
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    auto [dx, dy] = tiling.offset[static_cast<std::size_t>(v)];
    // Offsets point from node to anchor; both coordinates lie in
    // [-searchRadius, searchRadius].
    ids[static_cast<std::size_t>(v)] =
        static_cast<std::uint64_t>((dy + searchRadius) * span +
                                   (dx + searchRadius)) +
        1;
  }
  return ids;
}

}  // namespace lclgrid::speedup
