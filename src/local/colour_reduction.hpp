// Kuhn-Wattenhofer style colour reduction: a proper m-colouring of a graph
// with maximum degree Delta becomes a proper (Delta+1)-colouring in
// O(Delta * log(m / Delta)) rounds by halving the palette -- colour classes
// are grouped into blocks of 2(Delta+1), and each block independently
// recolours its upper half greedily into its lower half.
#pragma once

#include <vector>

#include "local/graph_view.hpp"

namespace lclgrid::local {

struct ReducedColouring {
  std::vector<int> colour;  // values in [0, Delta+1)
  int paletteSize = 0;
  int viewRounds = 0;
};

/// Reduces a proper colouring with values < paletteSize to Delta+1 colours.
ReducedColouring reduceToDegreePlusOne(const GraphView& view,
                                       const std::vector<long long>& colour,
                                       long long paletteSize);

}  // namespace lclgrid::local
