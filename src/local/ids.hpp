// Unique-identifier assignment (Section 3: IDs come from {1, ..., poly(n)}
// with O(log n) bits). Deterministic under a seed so experiments reproduce.
#pragma once

#include <cstdint>
#include <vector>

namespace lclgrid::local {

/// `count` distinct identifiers drawn from [1, count^3], randomly placed.
std::vector<std::uint64_t> randomIds(int count, std::uint64_t seed);

/// Worst-case-flavoured assignment: identifiers in sequential order along
/// the node numbering (adversarial for algorithms that exploit randomness).
std::vector<std::uint64_t> sequentialIds(int count);

/// Upper bound (exclusive) on identifiers returned for `count` nodes.
std::uint64_t idSpace(int count);

}  // namespace lclgrid::local
