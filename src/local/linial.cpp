#include "local/linial.hpp"

#include <cmath>
#include <stdexcept>

#include "support/numeric.hpp"

namespace lclgrid::local {

LinialParams chooseLinialParams(long long paletteSize, int maxDegree) {
  if (paletteSize < 2) throw std::invalid_argument("palette must have >= 2 colours");
  LinialParams best;
  bool haveBest = false;
  // Degrees beyond ~60 are useless: q >= d*Delta+1 grows while q^(d+1)
  // covers any conceivable palette long before.
  for (int d = 1; d <= 60; ++d) {
    // Smallest q with q^(d+1) >= paletteSize.
    long long qFloor = static_cast<long long>(
        std::ceil(std::pow(static_cast<double>(paletteSize),
                           1.0 / static_cast<double>(d + 1))));
    // Guard against floating point undershoot.
    auto power = [&](long long base) {
      long long value = 1;
      for (int i = 0; i <= d; ++i) {
        if (value > paletteSize / base + 1) return paletteSize;  // saturate
        value *= base;
      }
      return value;
    };
    while (power(qFloor) < paletteSize) ++qFloor;
    long long qMin = std::max<long long>(
        qFloor, static_cast<long long>(d) * maxDegree + 1);
    if (qMin > 1'000'000) continue;
    int q = nextPrime(static_cast<int>(qMin));
    LinialParams candidate{d, q};
    if (!haveBest || candidate.newPaletteSize() < best.newPaletteSize()) {
      best = candidate;
      haveBest = true;
    }
  }
  if (!haveBest) throw std::runtime_error("chooseLinialParams: no feasible (d,q)");
  return best;
}

std::vector<long long> linialStep(const GraphView& view,
                                  const std::vector<long long>& colour,
                                  long long paletteSize,
                                  const LinialParams& params) {
  const int q = params.q;
  const int d = params.degree;
  std::vector<long long> next(colour.size());

  // Precompute every node's polynomial evaluation table (q points each);
  // this is the message a node sends to its neighbours.
  std::vector<int> evals(static_cast<std::size_t>(view.count) *
                         static_cast<std::size_t>(q));
  for (int v = 0; v < view.count; ++v) {
    std::vector<int> digits =
        digitsBaseQ(colour[static_cast<std::size_t>(v)], q, d + 1);
    int* row = &evals[static_cast<std::size_t>(v) * static_cast<std::size_t>(q)];
    for (int a = 0; a < q; ++a) row[a] = evalPolyModQ(digits, a, q);
  }

  std::vector<bool> bad(static_cast<std::size_t>(q));
  for (int v = 0; v < view.count; ++v) {
    auto nbrs = view.neighbours(v);
    if (static_cast<int>(nbrs.size()) > view.maxDegree) {
      throw std::logic_error("linialStep: degree bound violated");
    }
    // Find an evaluation point a where my polynomial differs from every
    // neighbour's. Each distinct neighbour polynomial agrees with mine on at
    // most d points, so at most d*Delta < q points are bad.
    std::fill(bad.begin(), bad.end(), false);
    const int* mine =
        &evals[static_cast<std::size_t>(v) * static_cast<std::size_t>(q)];
    for (int u : nbrs) {
      if (colour[static_cast<std::size_t>(u)] ==
          colour[static_cast<std::size_t>(v)]) {
        throw std::logic_error("linialStep: input colouring not proper");
      }
      const int* theirs =
          &evals[static_cast<std::size_t>(u) * static_cast<std::size_t>(q)];
      for (int a = 0; a < q; ++a) {
        if (mine[a] == theirs[a]) bad[static_cast<std::size_t>(a)] = true;
      }
    }
    int chosen = -1;
    for (int a = 0; a < q; ++a) {
      if (!bad[static_cast<std::size_t>(a)]) {
        chosen = a;
        break;
      }
    }
    if (chosen < 0) throw std::logic_error("linialStep: no good evaluation point");
    next[static_cast<std::size_t>(v)] =
        static_cast<long long>(chosen) * q + mine[chosen];
  }
  (void)paletteSize;
  return next;
}

IteratedColouring iteratedLinial(const GraphView& view,
                                 const std::vector<std::uint64_t>& ids) {
  if (static_cast<int>(ids.size()) != view.count) {
    throw std::invalid_argument("iteratedLinial: id count mismatch");
  }
  IteratedColouring result;
  result.colour.assign(ids.begin(), ids.end());
  std::uint64_t maxId = 0;
  for (std::uint64_t id : ids) maxId = std::max(maxId, id);
  result.paletteSize = static_cast<long long>(maxId) + 1;

  while (true) {
    if (result.paletteSize <= view.maxDegree + 1) break;  // cannot improve
    LinialParams params = chooseLinialParams(result.paletteSize, view.maxDegree);
    if (params.newPaletteSize() >= result.paletteSize) break;  // fixpoint
    result.colour = linialStep(view, result.colour, result.paletteSize, params);
    result.paletteSize = params.newPaletteSize();
    result.viewRounds += 1;
  }
  return result;
}

}  // namespace lclgrid::local
