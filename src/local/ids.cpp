#include "local/ids.hpp"

#include "support/numeric.hpp"

namespace lclgrid::local {

std::uint64_t idSpace(int count) {
  auto n = static_cast<std::uint64_t>(count);
  return n * n * n + 1;
}

std::vector<std::uint64_t> randomIds(int count, std::uint64_t seed) {
  auto ids = randomDistinct(count, idSpace(count) - 1, seed);
  for (auto& id : ids) id += 1;  // identifiers start at 1
  return ids;
}

std::vector<std::uint64_t> sequentialIds(int count) {
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ids[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i) + 1;
  }
  return ids;
}

}  // namespace lclgrid::local
