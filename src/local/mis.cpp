#include "local/mis.hpp"

#include <stdexcept>

#include "local/colour_reduction.hpp"
#include "local/linial.hpp"

namespace lclgrid::local {

MisResult greedyMisByColour(const GraphView& view,
                            const std::vector<int>& colour, int paletteSize) {
  if (static_cast<int>(colour.size()) != view.count) {
    throw std::invalid_argument("greedyMisByColour: size mismatch");
  }
  MisResult result;
  result.inSet.assign(static_cast<std::size_t>(view.count), 0);
  std::vector<std::uint8_t> dominated(static_cast<std::size_t>(view.count), 0);

  // One round per colour class: all undominated nodes of the class join
  // simultaneously (the class is independent, so this is safe), then their
  // neighbours become dominated.
  for (int c = 0; c < paletteSize; ++c) {
    for (int v = 0; v < view.count; ++v) {
      if (colour[static_cast<std::size_t>(v)] != c) continue;
      if (dominated[static_cast<std::size_t>(v)]) continue;
      result.inSet[static_cast<std::size_t>(v)] = 1;
      dominated[static_cast<std::size_t>(v)] = 1;
    }
    // Notify neighbours (part of the same round).
    for (int v = 0; v < view.count; ++v) {
      if (colour[static_cast<std::size_t>(v)] != c ||
          !result.inSet[static_cast<std::size_t>(v)]) {
        continue;
      }
      for (int u : view.neighbours(v)) {
        dominated[static_cast<std::size_t>(u)] = 1;
      }
    }
    result.viewRounds += 1;
  }
  result.gridRounds = result.viewRounds * view.simulationFactor;
  return result;
}

MisResult computeMis(const GraphView& view,
                     const std::vector<std::uint64_t>& ids) {
  IteratedColouring base = iteratedLinial(view, ids);
  ReducedColouring reduced =
      reduceToDegreePlusOne(view, base.colour, base.paletteSize);
  MisResult mis = greedyMisByColour(view, reduced.colour, reduced.paletteSize);
  mis.viewRounds += base.viewRounds + reduced.viewRounds;
  mis.gridRounds = mis.viewRounds * view.simulationFactor;
  return mis;
}

bool isMaximalIndependentSet(const GraphView& view,
                             const std::vector<std::uint8_t>& inSet) {
  for (int v = 0; v < view.count; ++v) {
    bool inMis = inSet[static_cast<std::size_t>(v)] != 0;
    bool neighbourInMis = false;
    for (int u : view.neighbours(v)) {
      if (inSet[static_cast<std::size_t>(u)]) {
        neighbourInMis = true;
        if (inMis) return false;  // independence violated
      }
    }
    if (!inMis && !neighbourInMis) return false;  // maximality violated
  }
  return true;
}

}  // namespace lclgrid::local
