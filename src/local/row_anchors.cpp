#include "local/row_anchors.hpp"

#include <algorithm>
#include <stdexcept>

#include "local/cole_vishkin.hpp"

namespace lclgrid::local {

namespace {

/// All row representatives (nodes with coordinate 0 along `axis`).
std::vector<long long> rowRepresentatives(const TorusD& torus, int axis) {
  std::vector<long long> reps;
  for (long long v = 0; v < torus.size(); ++v) {
    if (torus.coord(v, axis) == 0) reps.push_back(v);
  }
  return reps;
}

}  // namespace

RowAnchors sparseRowAnchors(const TorusD& torus, int axis, int D,
                            const std::vector<std::uint64_t>& ids) {
  if (D < 2) throw std::invalid_argument("sparseRowAnchors: D must be >= 2");
  if (torus.n() < 2 * (D + 1)) {
    throw std::invalid_argument(
        "sparseRowAnchors: row too short to keep 2 anchors at spacing D");
  }
  const int n = torus.n();
  RowAnchors result;

  // Level 0: Cole-Vishkin 3-colouring of every row at once, then a greedy
  // row-MIS by colour class (3 rounds).
  CycleFamily rows{static_cast<int>(torus.size()), [&torus, axis](int v) {
                     return static_cast<int>(torus.shiftAxis(v, axis, 1));
                   }};
  auto cv = colourCycleFamily3(rows, ids);
  result.rounds += cv.rounds;

  std::vector<std::uint8_t> anchor(static_cast<std::size_t>(torus.size()), 0);
  for (int c = 0; c < 3; ++c) {
    for (long long v = 0; v < torus.size(); ++v) {
      if (cv.colour[static_cast<std::size_t>(v)] != c) continue;
      if (anchor[static_cast<std::size_t>(torus.shiftAxis(v, axis, 1))] ||
          anchor[static_cast<std::size_t>(torus.shiftAxis(v, axis, -1))] ||
          anchor[static_cast<std::size_t>(v)]) {
        continue;
      }
      anchor[static_cast<std::size_t>(v)] = 1;
    }
    result.rounds += 1;
  }
  int separation = 1;  // pairwise distance > 1
  int domination = 1;

  // Thinning levels: 3-colour the contracted cycle of surviving anchors,
  // then greedily keep a subset at pairwise row-distance > T, doubling T
  // until it reaches D.
  auto reps = rowRepresentatives(torus, axis);
  int T = separation;
  while (T < D) {
    T = std::min(2 * T + 1, D);

    // Contracted cycles: per row, the anchors in cyclic order.
    std::vector<long long> anchorNode;
    std::vector<int> anchorRow;     // index into reps
    std::vector<int> anchorPos;     // position along the row
    std::vector<int> rowStart;      // first anchor index of each row
    for (std::size_t rep = 0; rep < reps.size(); ++rep) {
      rowStart.push_back(static_cast<int>(anchorNode.size()));
      long long v = reps[rep];
      for (int t = 0; t < n; ++t) {
        if (anchor[static_cast<std::size_t>(v)]) {
          anchorNode.push_back(v);
          anchorRow.push_back(static_cast<int>(rep));
          anchorPos.push_back(t);
        }
        v = torus.shiftAxis(v, axis, 1);
      }
    }
    rowStart.push_back(static_cast<int>(anchorNode.size()));

    // Cole-Vishkin handles contracted cycles down to length 2 (distinct
    // identifiers keep adjacent colours distinct); stop thinning early if a
    // row is about to run out entirely (the caller sees the achieved
    // separation and can retry with other parameters).
    bool rowTooSparse = false;
    for (std::size_t rep = 0; rep < reps.size(); ++rep) {
      if (rowStart[rep + 1] - rowStart[rep] < 2) rowTooSparse = true;
    }
    if (rowTooSparse) break;

    // Successor = next anchor of the same row (cyclically).
    CycleFamily contracted{static_cast<int>(anchorNode.size()), [&](int i) {
                             int rep = anchorRow[static_cast<std::size_t>(i)];
                             int next = i + 1;
                             if (next == rowStart[static_cast<std::size_t>(rep + 1)]) {
                               next = rowStart[static_cast<std::size_t>(rep)];
                             }
                             return next;
                           }};
    std::vector<std::uint64_t> anchorIds(anchorNode.size());
    for (std::size_t i = 0; i < anchorNode.size(); ++i) {
      anchorIds[i] = ids[static_cast<std::size_t>(anchorNode[i])];
    }
    auto levelCv = colourCycleFamily3(contracted, anchorIds);
    // One contracted round costs up to the current anchor gap in real rounds.
    const int hopCost = 2 * domination + 1;
    result.rounds += levelCv.rounds * hopCost;

    // Greedy thinning by colour class; `kept` holds positions per row.
    std::vector<std::uint8_t> kept(anchorNode.size(), 0);
    for (int c = 0; c < 3; ++c) {
      for (std::size_t i = 0; i < anchorNode.size(); ++i) {
        if (levelCv.colour[i] != c) continue;
        bool blocked = false;
        // Scan kept anchors of the same row within distance T.
        int rep = anchorRow[i];
        for (int j = rowStart[static_cast<std::size_t>(rep)];
             j < rowStart[static_cast<std::size_t>(rep + 1)]; ++j) {
          if (!kept[static_cast<std::size_t>(j)]) continue;
          int delta = std::abs(anchorPos[static_cast<std::size_t>(j)] -
                               anchorPos[i]);
          if (std::min(delta, n - delta) <= T) {
            blocked = true;
            break;
          }
        }
        if (!blocked) kept[i] = 1;
      }
      result.rounds += hopCost;
    }
    for (std::size_t i = 0; i < anchorNode.size(); ++i) {
      if (!kept[i]) anchor[static_cast<std::size_t>(anchorNode[i])] = 0;
    }
    domination += T;  // every removed anchor had a kept one within T
    separation = T;   // pairwise distance > T
  }

  result.inSet = std::move(anchor);
  result.separation = separation;
  result.domination = domination;
  return result;
}

}  // namespace lclgrid::local
