// Hierarchical ruling sets on the 2-dimensional torus (L-infinity metric):
// a set of anchors with pairwise separation > target and bounded domination
// radius, computed by O(log target) levels of cheap constant-degree MIS
// (each level doubles the separation among the survivors of the previous
// level). The standard substitute for an MIS of G[target] when target is
// too large to simulate the power graph directly: every level's candidate
// graph has degree <= 25, so the whole stack stays O(log* n) rounds with
// small constants.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/torus2d.hpp"

namespace lclgrid::local {

struct RulingSet {
  std::vector<std::uint8_t> inSet;
  int rounds = 0;
  int separation = 0;  // pairwise L-infinity distance > separation
  int domination = 0;  // every node within L-infinity `domination` of the set
};

/// Anchors with pairwise L-infinity separation > targetSeparation and
/// domination radius <= ~2*targetSeparation.
RulingSet hierarchicalRulingSet(const Torus2D& torus, int targetSeparation,
                                const std::vector<std::uint64_t>& ids);

/// An exact maximal independent set of G[ell] (pairwise separation > ell,
/// domination radius <= ell): hierarchical ruling set followed by a
/// Luby-style completion -- undominated nodes join when they hold the
/// locally largest identifier. Completion takes O(log n) iterations in
/// expectation (each costing ~2*ell rounds); the hierarchical part stays
/// O(log* n).
RulingSet misOfLinfPower(const Torus2D& torus, int ell,
                         const std::vector<std::uint64_t>& ids);

}  // namespace lclgrid::local
