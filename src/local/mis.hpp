// Maximal independent set from a proper colouring: colour classes join
// greedily, one class per round. Combined with iterated Linial and
// Kuhn-Wattenhofer reduction this is the problem-independent component S_k
// of the normal form (Section 5): an MIS of G^(k) in O(log* n) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "local/graph_view.hpp"

namespace lclgrid::local {

struct MisResult {
  std::vector<std::uint8_t> inSet;  // indicator over view nodes
  int viewRounds = 0;               // rounds on the view
  int gridRounds = 0;               // view rounds * simulation factor
};

/// Greedy MIS by colour class; `paletteSize` rounds on the view.
MisResult greedyMisByColour(const GraphView& view,
                            const std::vector<int>& colour, int paletteSize);

/// The full S_k pipeline on a view: identifiers -> iterated Linial ->
/// Kuhn-Wattenhofer reduction -> greedy MIS.
MisResult computeMis(const GraphView& view,
                     const std::vector<std::uint64_t>& ids);

/// Checks the MIS property on the view (independence + domination).
bool isMaximalIndependentSet(const GraphView& view,
                             const std::vector<std::uint8_t>& inSet);

}  // namespace lclgrid::local
