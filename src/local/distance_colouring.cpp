#include "local/distance_colouring.hpp"

#include "local/colour_reduction.hpp"
#include "local/linial.hpp"

namespace lclgrid::local {

DistanceColouring colourView(const GraphView& view,
                             const std::vector<std::uint64_t>& ids) {
  IteratedColouring base = iteratedLinial(view, ids);
  ReducedColouring reduced =
      reduceToDegreePlusOne(view, base.colour, base.paletteSize);
  DistanceColouring result;
  result.colour = std::move(reduced.colour);
  result.paletteSize = reduced.paletteSize;
  result.viewRounds = base.viewRounds + reduced.viewRounds;
  result.gridRounds = result.viewRounds * view.simulationFactor;
  return result;
}

DistanceColouring distanceColouringLinf(const Torus2D& torus, int k,
                                        const std::vector<std::uint64_t>& ids) {
  return colourView(linfPowerView(torus, k), ids);
}

DistanceColouring distanceColouringL1(const Torus2D& torus, int k,
                                      const std::vector<std::uint64_t>& ids) {
  return colourView(l1PowerView(torus, k), ids);
}

bool isDistanceColouring(const Torus2D& torus, int k, bool metricL1,
                         const std::vector<int>& colour) {
  for (int v = 0; v < torus.size(); ++v) {
    auto nbrs = metricL1 ? torus.l1PowerNeighbours(v, k)
                         : torus.linfPowerNeighbours(v, k);
    for (int u : nbrs) {
      if (colour[static_cast<std::size_t>(u)] ==
          colour[static_cast<std::size_t>(v)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace lclgrid::local
