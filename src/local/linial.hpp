// Linial's colour reduction [30] with explicit polynomial cover-free
// families over GF(q): one communication round turns a proper m-colouring of
// a graph with maximum degree Delta into a proper q^2-colouring, where q is
// a prime with q > d*Delta and q^(d+1) >= m. Iterating reaches a palette of
// size O(Delta^2 log Delta) in O(log* m) rounds -- the engine behind every
// O(log* n) bound in the paper that is not a directed cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "local/graph_view.hpp"

namespace lclgrid::local {

struct LinialParams {
  int degree = 1;     // polynomial degree d
  int q = 2;          // field size (prime)
  long long newPaletteSize() const { return static_cast<long long>(q) * q; }
};

/// Chooses (d, q) minimising the new palette size q^2 subject to
/// q^(d+1) >= paletteSize and q > d * maxDegree.
LinialParams chooseLinialParams(long long paletteSize, int maxDegree);

/// One Linial reduction round. `colour` must be a proper colouring with
/// values < paletteSize. Returns a proper colouring with values < q^2.
std::vector<long long> linialStep(const GraphView& view,
                                  const std::vector<long long>& colour,
                                  long long paletteSize,
                                  const LinialParams& params);

struct IteratedColouring {
  std::vector<long long> colour;
  long long paletteSize = 0;
  int viewRounds = 0;
};

/// Iterates linialStep from initial unique identifiers until the palette
/// stops shrinking (the O(Delta^2 log Delta) fixpoint).
IteratedColouring iteratedLinial(const GraphView& view,
                                 const std::vector<std::uint64_t>& ids);

}  // namespace lclgrid::local
