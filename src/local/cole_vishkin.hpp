// Cole-Vishkin deterministic coin tossing [13]: 3-colouring a directed cycle
// (or any disjoint union of directed cycles, e.g. the rows of the torus) in
// O(log* n) rounds. The structure is generic over a successor function so
// the same implementation colours standalone cycles, torus rows, torus
// columns, and the 1-dimensional row-cycles used by the edge-colouring
// algorithm of Section 10.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "local/rounds.hpp"

namespace lclgrid::local {

/// A disjoint union of directed cycles over nodes {0, ..., count-1}:
/// successor(v) is the next node along v's cycle. Every node must lie on a
/// cycle of length >= 3 for 3-colouring to exist.
struct CycleFamily {
  int count = 0;
  std::function<int(int)> successor;
};

struct CycleColouring {
  std::vector<int> colour;  // values in {0, 1, 2}
  int rounds = 0;           // synchronous rounds used
};

/// 3-colours the cycle family from unique identifiers in O(log* n) rounds:
/// iterated Cole-Vishkin bit reduction down to 6 colours, then three
/// shift-out rounds to remove colours 5, 4, 3.
CycleColouring colourCycleFamily3(const CycleFamily& family,
                                  const std::vector<std::uint64_t>& ids);

/// Internal step exposed for testing: one Cole-Vishkin reduction round.
/// Requires colour[v] != colour[successor(v)] for all v.
std::vector<std::uint64_t> coleVishkinStep(
    const CycleFamily& family, const std::vector<std::uint64_t>& colour);

}  // namespace lclgrid::local
