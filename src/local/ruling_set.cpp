#include "local/ruling_set.hpp"

#include <algorithm>
#include <stdexcept>

#include "local/graph_view.hpp"
#include "local/mis.hpp"

namespace lclgrid::local {

RulingSet hierarchicalRulingSet(const Torus2D& torus, int targetSeparation,
                                const std::vector<std::uint64_t>& ids) {
  if (targetSeparation < 1) {
    throw std::invalid_argument("hierarchicalRulingSet: target >= 1");
  }
  if (torus.n() <= 2 * targetSeparation + 1) {
    throw std::invalid_argument("hierarchicalRulingSet: torus too small");
  }
  RulingSet result;

  // Level 0: MIS of G[1].
  auto baseView = linfPowerView(torus, 1);
  auto baseMis = computeMis(baseView, ids);
  result.rounds += baseMis.gridRounds;
  std::vector<std::uint8_t> anchors(baseMis.inSet.begin(), baseMis.inSet.end());
  result.separation = 1;
  result.domination = 1;

  while (result.separation < targetSeparation) {
    const int threshold =
        std::min(2 * result.separation + 1, targetSeparation);

    // Candidate list and index map.
    std::vector<int> candidates;
    std::vector<int> indexOf(static_cast<std::size_t>(torus.size()), -1);
    for (int v = 0; v < torus.size(); ++v) {
      if (anchors[static_cast<std::size_t>(v)]) {
        indexOf[static_cast<std::size_t>(v)] =
            static_cast<int>(candidates.size());
        candidates.push_back(v);
      }
    }
    if (candidates.empty()) break;

    // Candidate adjacency: pairs within L-infinity `threshold`. Previous
    // separation bounds the degree by a constant (~(2*threshold/sep + 1)^2).
    std::vector<std::vector<int>> adj(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      for (int u : torus.linfBall(candidates[i], threshold)) {
        int j = indexOf[static_cast<std::size_t>(u)];
        if (j >= 0 && j != static_cast<int>(i)) {
          adj[i].push_back(j);
        }
      }
    }
    int maxDegree = 1;
    for (const auto& list : adj) {
      maxDegree = std::max(maxDegree, static_cast<int>(list.size()));
    }

    GraphView view;
    view.count = static_cast<int>(candidates.size());
    view.maxDegree = maxDegree;
    view.simulationFactor = 2 * threshold;
    view.neighbours = [&adj](int v) { return adj[static_cast<std::size_t>(v)]; };
    std::vector<std::uint64_t> candidateIds(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      candidateIds[i] = ids[static_cast<std::size_t>(candidates[i])];
    }
    auto levelMis = computeMis(view, candidateIds);
    result.rounds += levelMis.gridRounds;

    std::vector<std::uint8_t> next(static_cast<std::size_t>(torus.size()), 0);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (levelMis.inSet[i]) next[static_cast<std::size_t>(candidates[i])] = 1;
    }
    anchors.swap(next);
    // Every removed candidate had a surviving one within `threshold`.
    result.domination += threshold;
    result.separation = threshold;
  }

  result.inSet = std::move(anchors);
  return result;
}

RulingSet misOfLinfPower(const Torus2D& torus, int ell,
                         const std::vector<std::uint64_t>& ids) {
  RulingSet result = hierarchicalRulingSet(torus, ell, ids);

  // Completion: undominated nodes (no anchor within ell) join whenever they
  // hold the largest identifier among undominated nodes within ell.
  while (true) {
    std::vector<int> undominated;
    std::vector<std::uint8_t> isUndominated(
        static_cast<std::size_t>(torus.size()), 0);
    for (int v = 0; v < torus.size(); ++v) {
      bool dominated = false;
      for (int u : torus.linfBall(v, ell)) {
        if (result.inSet[static_cast<std::size_t>(u)]) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        undominated.push_back(v);
        isUndominated[static_cast<std::size_t>(v)] = 1;
      }
    }
    if (undominated.empty()) break;
    for (int v : undominated) {
      bool localMax = true;
      for (int u : torus.linfBall(v, ell)) {
        if (u != v && isUndominated[static_cast<std::size_t>(u)] &&
            ids[static_cast<std::size_t>(u)] > ids[static_cast<std::size_t>(v)]) {
          localMax = false;
          break;
        }
      }
      if (localMax) result.inSet[static_cast<std::size_t>(v)] = 1;
    }
    result.rounds += 2 * ell + 2;  // one join iteration
  }
  result.separation = ell;
  result.domination = ell;
  return result;
}

}  // namespace lclgrid::local
