// Distance-k colourings (Definition 16 / Lemma 17): a vertex colouring in
// which nodes at L-infinity distance <= k receive distinct colours, computed
// by running the colouring stack on the power graph G[k]. Also the L1
// variant used by S_k.
#pragma once

#include <cstdint>
#include <vector>

#include "local/graph_view.hpp"

namespace lclgrid::local {

struct DistanceColouring {
  std::vector<int> colour;
  int paletteSize = 0;
  int viewRounds = 0;  // rounds on the power view
  int gridRounds = 0;  // after simulation overhead
};

/// Proper colouring of an arbitrary view with maxDegree+1 colours in
/// O(log* n + poly(Delta)) view rounds (iterated Linial + KW reduction).
DistanceColouring colourView(const GraphView& view,
                             const std::vector<std::uint64_t>& ids);

/// Colouring of L-infinity distance k of the 2-dimensional torus with at
/// most (2k+1)^2 colours (compare Lemma 17's (2k+1)^d bound).
DistanceColouring distanceColouringLinf(const Torus2D& torus, int k,
                                        const std::vector<std::uint64_t>& ids);

/// Colouring of L1 distance k (distinct within G^(k)).
DistanceColouring distanceColouringL1(const Torus2D& torus, int k,
                                      const std::vector<std::uint64_t>& ids);

/// Validity check: no two distinct nodes within the metric ball share a
/// colour. metricL1 selects between L1 and L-infinity.
bool isDistanceColouring(const Torus2D& torus, int k, bool metricL1,
                         const std::vector<int>& colour);

}  // namespace lclgrid::local
