// Luby-style randomised MIS: every undecided node joins when it holds the
// locally largest random priority; O(log n) rounds in expectation. Section
// 12 of the paper discusses the randomised complexity landscape (no LCL sits
// between omega(log* n) and o(sqrt(log n)) on grids); this is the standard
// randomised counterpart to the deterministic Linial-based S_k, and the
// fig_randomised bench compares the two empirically.
#pragma once

#include <cstdint>
#include <vector>

#include "local/graph_view.hpp"

namespace lclgrid::local {

struct LubyResult {
  std::vector<std::uint8_t> inSet;
  int iterations = 0;  // join rounds until every node is decided
  int viewRounds = 0;  // 2 view-rounds per iteration (draw + notify)
  int gridRounds = 0;
};

/// Randomised MIS on a view; the seed drives all random priorities.
LubyResult lubyMis(const GraphView& view, std::uint64_t seed);

}  // namespace lclgrid::local
