#include "local/graph_view.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclgrid::local {

GraphView l1PowerView(const Torus2D& torus, int k) {
  GraphView view;
  view.count = torus.size();
  view.maxDegree = std::min(l1PowerDegreeBound(k), torus.size() - 1);
  view.simulationFactor = k;
  view.neighbours = [&torus, k](int v) { return torus.l1PowerNeighbours(v, k); };
  return view;
}

GraphView linfPowerView(const Torus2D& torus, int k) {
  GraphView view;
  view.count = torus.size();
  view.maxDegree = std::min(linfPowerDegreeBound(k), torus.size() - 1);
  view.simulationFactor = 2 * k;
  view.neighbours = [&torus, k](int v) {
    return torus.linfPowerNeighbours(v, k);
  };
  return view;
}

GraphView linfPowerViewD(const TorusD& torus, int k) {
  if (torus.size() > (1LL << 30)) {
    throw std::invalid_argument("linfPowerViewD: torus too large for int ids");
  }
  GraphView view;
  view.count = static_cast<int>(torus.size());
  long long ballBound = 1;
  for (int i = 0; i < torus.dims(); ++i) ballBound *= 2 * k + 1;
  view.maxDegree = static_cast<int>(
      std::min<long long>(ballBound - 1, torus.size() - 1));
  view.simulationFactor = torus.dims() * k;
  view.neighbours = [&torus, k](int v) {
    auto ball = torus.linfBall(v, k);
    std::vector<int> result;
    result.reserve(ball.size() - 1);
    for (long long u : ball) {
      if (u != v) result.push_back(static_cast<int>(u));
    }
    return result;
  };
  return view;
}

GraphView torusView(const Torus2D& torus) { return l1PowerView(torus, 1); }

}  // namespace lclgrid::local
