#include "local/cole_vishkin.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclgrid::local {

namespace {
int lowestDifferingBit(std::uint64_t a, std::uint64_t b) {
  std::uint64_t diff = a ^ b;
  if (diff == 0) throw std::logic_error("Cole-Vishkin: equal adjacent colours");
  return __builtin_ctzll(diff);
}
}  // namespace

std::vector<std::uint64_t> coleVishkinStep(
    const CycleFamily& family, const std::vector<std::uint64_t>& colour) {
  std::vector<std::uint64_t> next(colour.size());
  for (int v = 0; v < family.count; ++v) {
    std::uint64_t mine = colour[static_cast<std::size_t>(v)];
    std::uint64_t theirs =
        colour[static_cast<std::size_t>(family.successor(v))];
    int bit = lowestDifferingBit(mine, theirs);
    next[static_cast<std::size_t>(v)] =
        2ULL * static_cast<std::uint64_t>(bit) + ((mine >> bit) & 1ULL);
  }
  return next;
}

CycleColouring colourCycleFamily3(const CycleFamily& family,
                                  const std::vector<std::uint64_t>& ids) {
  if (static_cast<int>(ids.size()) != family.count) {
    throw std::invalid_argument("colourCycleFamily3: id count mismatch");
  }
  CycleColouring result;
  std::vector<std::uint64_t> colour = ids;

  // Phase 1: iterated Cole-Vishkin until the palette fits in {0, ..., 5}.
  auto paletteTooLarge = [&]() {
    return std::any_of(colour.begin(), colour.end(),
                       [](std::uint64_t c) { return c > 5; });
  };
  while (paletteTooLarge()) {
    colour = coleVishkinStep(family, colour);
    result.rounds += 1;
  }

  // Phase 2: eliminate colours 5, 4, 3 one class per round. Each class is an
  // independent set (the colouring is proper), so all its members recolour
  // simultaneously, picking a free colour among {0,1,2} (two neighbours
  // block at most two).
  std::vector<int> predecessor(static_cast<std::size_t>(family.count), -1);
  for (int v = 0; v < family.count; ++v) {
    predecessor[static_cast<std::size_t>(family.successor(v))] = v;
  }
  for (std::uint64_t doomed = 5; doomed >= 3; --doomed) {
    std::vector<std::uint64_t> next = colour;
    for (int v = 0; v < family.count; ++v) {
      if (colour[static_cast<std::size_t>(v)] != doomed) continue;
      std::uint64_t succColour =
          colour[static_cast<std::size_t>(family.successor(v))];
      std::uint64_t predColour =
          colour[static_cast<std::size_t>(predecessor[static_cast<std::size_t>(v)])];
      for (std::uint64_t candidate = 0; candidate < 3; ++candidate) {
        if (candidate != succColour && candidate != predColour) {
          next[static_cast<std::size_t>(v)] = candidate;
          break;
        }
      }
    }
    colour.swap(next);
    result.rounds += 1;
  }

  result.colour.resize(colour.size());
  for (std::size_t i = 0; i < colour.size(); ++i) {
    result.colour[i] = static_cast<int>(colour[i]);
  }
  return result;
}

}  // namespace lclgrid::local
