// Sparse anchors along grid rows: a (D, ~2D)-ruling set of every axis-q row
// at once, computed by hierarchical contraction -- per-row Cole-Vishkin
// 3-colouring, greedy MIS by colour class, then repeatedly 3-colour the
// contracted cycle of surviving anchors and thin it to double the spacing.
// O(log D) levels of O(log* n) rounds each; the cheap 1-dimensional
// counterpart of the per-row "maximal independent set of large distance"
// used by the edge-colouring algorithm of Section 10.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/torusd.hpp"

namespace lclgrid::local {

struct RowAnchors {
  std::vector<std::uint8_t> inSet;  // indicator over torus nodes
  int rounds = 0;                   // LOCAL rounds on the grid
  /// Guarantees: along every axis-`q` row, anchors are pairwise further
  /// than `separation` apart, and every node has an anchor within
  /// `domination` on its row.
  int separation = 0;
  int domination = 0;
};

/// Computes sparse anchors with separation > D on every axis-`axis` row.
RowAnchors sparseRowAnchors(const TorusD& torus, int axis, int D,
                            const std::vector<std::uint64_t>& ids);

}  // namespace lclgrid::local
