#include "local/luby_mis.hpp"

#include <stdexcept>
#include <utility>

#include "support/numeric.hpp"

namespace lclgrid::local {

LubyResult lubyMis(const GraphView& view, std::uint64_t seed) {
  LubyResult result;
  result.inSet.assign(static_cast<std::size_t>(view.count), 0);
  // 0 = undecided, 1 = in MIS, 2 = dominated.
  std::vector<std::uint8_t> state(static_cast<std::size_t>(view.count), 0);
  SplitMix64 rng(seed);

  int undecided = view.count;
  while (undecided > 0) {
    // Fresh priorities each iteration (each node draws locally).
    std::vector<std::uint64_t> priority(static_cast<std::size_t>(view.count));
    for (int v = 0; v < view.count; ++v) priority[static_cast<std::size_t>(v)] = rng.next();

    // Join step: undecided local maxima enter the set.
    std::vector<int> joiners;
    for (int v = 0; v < view.count; ++v) {
      if (state[static_cast<std::size_t>(v)] != 0) continue;
      bool localMax = true;
      for (int u : view.neighbours(v)) {
        // Ties (astronomically unlikely with 64-bit draws) break on the
        // node id so two adjacent maxima can never join together.
        if (state[static_cast<std::size_t>(u)] == 0 &&
            std::pair{priority[static_cast<std::size_t>(u)], u} >
                std::pair{priority[static_cast<std::size_t>(v)], v}) {
          localMax = false;
          break;
        }
      }
      if (localMax) joiners.push_back(v);
    }
    for (int v : joiners) {
      state[static_cast<std::size_t>(v)] = 1;
      result.inSet[static_cast<std::size_t>(v)] = 1;
      --undecided;
    }
    // Notify step: neighbours of joiners become dominated.
    for (int v : joiners) {
      for (int u : view.neighbours(v)) {
        if (state[static_cast<std::size_t>(u)] == 0) {
          state[static_cast<std::size_t>(u)] = 2;
          --undecided;
        }
      }
    }
    result.iterations += 1;
    result.viewRounds += 2;
    if (result.iterations > 64 * 32) {
      throw std::logic_error("lubyMis: did not converge (priority bug?)");
    }
  }
  result.gridRounds = result.viewRounds * view.simulationFactor;
  return result;
}

}  // namespace lclgrid::local
