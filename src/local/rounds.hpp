// Round accounting for the LOCAL model. Every distributed subroutine in the
// library reports how many synchronous communication rounds it used; running
// a subroutine on the k-th power of the grid multiplies its round count by
// the simulation overhead (Section 3: one power-graph round costs k grid
// rounds under L1, and d*k under L-infinity in d dimensions, since
// ||.||_1 <= d ||.||_inf).
#pragma once

namespace lclgrid::local {

class RoundCounter {
 public:
  void add(int rounds) { total_ += rounds; }
  /// Adds `rounds` power-graph rounds with a per-round simulation factor.
  void addSimulated(int rounds, int factor) { total_ += rounds * factor; }
  int total() const { return total_; }
  void reset() { total_ = 0; }

 private:
  int total_ = 0;
};

}  // namespace lclgrid::local
