#include "local/colour_reduction.hpp"

#include <stdexcept>

namespace lclgrid::local {

ReducedColouring reduceToDegreePlusOne(const GraphView& view,
                                       const std::vector<long long>& colour,
                                       long long paletteSize) {
  if (static_cast<int>(colour.size()) != view.count) {
    throw std::invalid_argument("reduceToDegreePlusOne: size mismatch");
  }
  const long long target = view.maxDegree + 1;
  ReducedColouring result;
  std::vector<long long> current = colour;
  long long palette = paletteSize;

  while (palette > target) {
    // Blocks of 2*target colours; block b covers colours
    // [b*2*target, (b+1)*2*target). Each block maps into [b*target,
    // (b+1)*target): its lower half keeps (shifted) colours, its upper half
    // recolours greedily, one colour class per round. Distinct blocks write
    // into disjoint output ranges, so only same-block neighbours matter.
    const long long blockSpan = 2 * target;
    std::vector<long long> next(current.size());
    for (int v = 0; v < view.count; ++v) {
      long long c = current[static_cast<std::size_t>(v)];
      long long block = c / blockSpan;
      long long offset = c % blockSpan;
      // Lower half: colour is final immediately.
      next[static_cast<std::size_t>(v)] =
          offset < target ? block * target + offset : -1;
    }
    // Upper half: target rounds, one offset class at a time. All nodes of the
    // same class recolour simultaneously; the class is independent because
    // the input colouring is proper.
    for (long long doomed = target; doomed < blockSpan; ++doomed) {
      for (int v = 0; v < view.count; ++v) {
        long long c = current[static_cast<std::size_t>(v)];
        if (c % blockSpan != doomed) continue;
        long long block = c / blockSpan;
        // Pick the smallest free colour within this block's output range.
        std::vector<bool> used(static_cast<std::size_t>(target), false);
        for (int u : view.neighbours(v)) {
          long long uc = next[static_cast<std::size_t>(u)];
          if (uc >= block * target && uc < (block + 1) * target) {
            used[static_cast<std::size_t>(uc - block * target)] = true;
          }
        }
        long long chosen = -1;
        for (long long candidate = 0; candidate < target; ++candidate) {
          if (!used[static_cast<std::size_t>(candidate)]) {
            chosen = candidate;
            break;
          }
        }
        if (chosen < 0) {
          throw std::logic_error("reduceToDegreePlusOne: no free colour");
        }
        next[static_cast<std::size_t>(v)] = block * target + chosen;
      }
      result.viewRounds += 1;
    }
    current.swap(next);
    palette = (palette + blockSpan - 1) / blockSpan * target;
  }

  result.colour.resize(current.size());
  for (std::size_t i = 0; i < current.size(); ++i) {
    result.colour[i] = static_cast<int>(current[i]);
  }
  result.paletteSize = static_cast<int>(target);
  return result;
}

}  // namespace lclgrid::local
