// A lightweight bounded-degree graph abstraction for the symmetry-breaking
// stack. Power graphs of tori are exposed as views; algorithms running on a
// view report view-rounds, which callers convert to grid rounds via the
// simulation factor (Section 3).
#pragma once

#include <functional>
#include <vector>

#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"

namespace lclgrid::local {

struct GraphView {
  int count = 0;
  int maxDegree = 0;
  /// Number of grid rounds needed to simulate one round on this view.
  int simulationFactor = 1;
  std::function<std::vector<int>(int)> neighbours;
};

/// View of G^(k): neighbours at L1 distance in [1, k]. One view round costs
/// k grid rounds.
GraphView l1PowerView(const Torus2D& torus, int k);

/// View of G[k]: neighbours at L-infinity distance in [1, k]. One view round
/// costs 2k grid rounds in 2 dimensions (||.||_1 <= 2 ||.||_inf).
GraphView linfPowerView(const Torus2D& torus, int k);

/// View of the L-infinity power of a d-dimensional torus (node count must
/// fit in int). One view round costs d*k grid rounds.
GraphView linfPowerViewD(const TorusD& torus, int k);

/// View of the torus itself (k = 1).
GraphView torusView(const Torus2D& torus);

}  // namespace lclgrid::local
