// Non-toroidal m x m grid with boundary (Appendix A.3): degree-2 corner
// nodes, degree-3 side nodes and degree-4 internal nodes. Unlike Torus2D
// there is no global orientation -- the corner-coordination problem is posed
// on plain graphs, so the adjacency interface is port-based.
#pragma once

#include <optional>
#include <vector>

#include "grid/direction.hpp"

namespace lclgrid {

class BoundedGrid {
 public:
  explicit BoundedGrid(int m);

  int m() const { return m_; }
  int size() const { return m_ * m_; }

  int id(int x, int y) const;  // requires coordinates in range
  int xOf(int v) const { return v % m_; }
  int yOf(int v) const { return v / m_; }
  bool inRange(int x, int y) const;

  /// Neighbour in a compass direction, if it exists.
  std::optional<int> neighbour(int v, Dir d) const;
  /// All neighbours of v (2, 3 or 4 of them).
  std::vector<int> neighbours(int v) const;
  int degree(int v) const;

  bool isCorner(int v) const;
  bool isBoundary(int v) const;  // degree < 4 (includes corners)

  /// The four corner node ids, in (0,0), (m-1,0), (0,m-1), (m-1,m-1) order.
  std::vector<int> corners() const;

 private:
  int m_;
};

}  // namespace lclgrid
