// d-dimensional toroidal grid with n^d nodes (Sections 8 and 10). Each node
// has 2d neighbours, one per signed axis direction; the orientation gives
// every node consistent "+i" / "-i" port labels for each dimension i.
#pragma once

#include <vector>

namespace lclgrid {

class TorusD {
 public:
  TorusD(int dims, int n);

  int dims() const { return dims_; }
  int n() const { return n_; }
  long long size() const { return size_; }

  /// Linear node id from a coordinate vector (wrapped mod n).
  long long id(const std::vector<int>& coords) const;
  /// Coordinate vector of a node id.
  std::vector<int> coords(long long v) const;
  /// Coordinate of v along one axis.
  int coord(long long v, int axis) const;

  /// Neighbour of v along `axis`, displaced by +1 (positive = true) or -1.
  long long step(long long v, int axis, bool positive) const;
  /// Node displaced from v by `delta` along `axis`.
  long long shiftAxis(long long v, int axis, int delta) const;
  /// Node displaced from v by the offset vector.
  long long shift(long long v, const std::vector<int>& delta) const;

  int axisDist(int a, int b) const;
  int l1(long long u, long long v) const;
  int linf(long long u, long long v) const;

  /// All nodes within L-infinity distance r of v (includes v).
  std::vector<long long> linfBall(long long v, int r) const;
  /// All nodes within L1 distance r of v (includes v).
  std::vector<long long> l1Ball(long long v, int r) const;

  /// Total number of undirected edges: d * n^d.
  long long edgeCount() const;

 private:
  int dims_;
  int n_;
  long long size_;
  std::vector<long long> strides_;
};

}  // namespace lclgrid
