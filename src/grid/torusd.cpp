#include "grid/torusd.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclgrid {

namespace {
int mod(int a, int n) {
  int r = a % n;
  return r < 0 ? r + n : r;
}
}  // namespace

TorusD::TorusD(int dims, int n) : dims_(dims), n_(n) {
  if (dims < 1) throw std::invalid_argument("TorusD: dims must be positive");
  if (n < 1) throw std::invalid_argument("TorusD: n must be positive");
  size_ = 1;
  strides_.resize(dims_);
  for (int i = 0; i < dims_; ++i) {
    strides_[i] = size_;
    size_ *= n_;
  }
}

long long TorusD::id(const std::vector<int>& coords) const {
  if (static_cast<int>(coords.size()) != dims_) {
    throw std::invalid_argument("TorusD::id: wrong coordinate arity");
  }
  long long v = 0;
  for (int i = 0; i < dims_; ++i) v += strides_[i] * mod(coords[i], n_);
  return v;
}

std::vector<int> TorusD::coords(long long v) const {
  std::vector<int> c(dims_);
  for (int i = 0; i < dims_; ++i) {
    c[i] = static_cast<int>(v % n_);
    v /= n_;
  }
  return c;
}

int TorusD::coord(long long v, int axis) const {
  return static_cast<int>((v / strides_[axis]) % n_);
}

long long TorusD::step(long long v, int axis, bool positive) const {
  return shiftAxis(v, axis, positive ? 1 : -1);
}

long long TorusD::shiftAxis(long long v, int axis, int delta) const {
  int c = coord(v, axis);
  int nc = mod(c + delta, n_);
  return v + static_cast<long long>(nc - c) * strides_[axis];
}

long long TorusD::shift(long long v, const std::vector<int>& delta) const {
  for (int i = 0; i < dims_; ++i) v = shiftAxis(v, i, delta[i]);
  return v;
}

int TorusD::axisDist(int a, int b) const {
  int d = mod(a - b, n_);
  return std::min(d, n_ - d);
}

int TorusD::l1(long long u, long long v) const {
  int total = 0;
  for (int i = 0; i < dims_; ++i) total += axisDist(coord(u, i), coord(v, i));
  return total;
}

int TorusD::linf(long long u, long long v) const {
  int worst = 0;
  for (int i = 0; i < dims_; ++i) {
    worst = std::max(worst, axisDist(coord(u, i), coord(v, i)));
  }
  return worst;
}

std::vector<long long> TorusD::linfBall(long long v, int r) const {
  std::vector<long long> ball = {v};
  for (int axis = 0; axis < dims_; ++axis) {
    std::vector<long long> next;
    next.reserve(ball.size() * (2 * r + 1));
    for (long long u : ball) {
      for (int delta = -r; delta <= r; ++delta) {
        next.push_back(shiftAxis(u, axis, delta));
      }
    }
    ball.swap(next);
  }
  std::sort(ball.begin(), ball.end());
  ball.erase(std::unique(ball.begin(), ball.end()), ball.end());
  return ball;
}

std::vector<long long> TorusD::l1Ball(long long v, int r) const {
  std::vector<long long> ball = linfBall(v, r);
  ball.erase(std::remove_if(ball.begin(), ball.end(),
                            [&](long long u) { return l1(v, u) > r; }),
             ball.end());
  return ball;
}

long long TorusD::edgeCount() const { return static_cast<long long>(dims_) * size_; }

}  // namespace lclgrid
