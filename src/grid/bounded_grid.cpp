#include "grid/bounded_grid.hpp"

#include <stdexcept>

namespace lclgrid {

BoundedGrid::BoundedGrid(int m) : m_(m) {
  if (m < 2) throw std::invalid_argument("BoundedGrid: m must be at least 2");
}

int BoundedGrid::id(int x, int y) const {
  if (!inRange(x, y)) throw std::out_of_range("BoundedGrid::id");
  return y * m_ + x;
}

bool BoundedGrid::inRange(int x, int y) const {
  return x >= 0 && x < m_ && y >= 0 && y < m_;
}

std::optional<int> BoundedGrid::neighbour(int v, Dir d) const {
  int x = xOf(v) + dxOf(d);
  int y = yOf(v) + dyOf(d);
  if (!inRange(x, y)) return std::nullopt;
  return id(x, y);
}

std::vector<int> BoundedGrid::neighbours(int v) const {
  std::vector<int> result;
  for (Dir d : kAllDirs) {
    if (auto u = neighbour(v, d)) result.push_back(*u);
  }
  return result;
}

int BoundedGrid::degree(int v) const {
  return static_cast<int>(neighbours(v).size());
}

bool BoundedGrid::isCorner(int v) const { return degree(v) == 2; }

bool BoundedGrid::isBoundary(int v) const { return degree(v) < 4; }

std::vector<int> BoundedGrid::corners() const {
  return {id(0, 0), id(m_ - 1, 0), id(0, m_ - 1), id(m_ - 1, m_ - 1)};
}

}  // namespace lclgrid
