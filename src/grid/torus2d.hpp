// The 2-dimensional toroidal n x n grid of Section 3: nodes are (x, y) with
// coordinates mod n, edges connect L1-distance-1 pairs, and all edges carry a
// consistent global orientation (each node knows north/east/south/west).
//
// Node identity used by the library is the linear index y*n + x. The
// *distributed* algorithms never read these coordinates directly -- they only
// move through `step`/`shift` relative to a node, mirroring the LOCAL model
// where nodes see the orientation but not their coordinates.
#pragma once

#include <utility>
#include <vector>

#include "grid/direction.hpp"

namespace lclgrid {

class Torus2D {
 public:
  explicit Torus2D(int n);

  int n() const { return n_; }
  int size() const { return n_ * n_; }

  /// Linear node id for (possibly out-of-range) coordinates; wraps mod n.
  int id(int x, int y) const;
  /// Coordinates of a node id, in [0, n) x [0, n).
  std::pair<int, int> xy(int v) const;
  int xOf(int v) const { return v % n_; }
  int yOf(int v) const { return v / n_; }

  /// The neighbour of v in direction d (distance `dist` steps).
  int step(int v, Dir d, int dist = 1) const;
  /// The node at relative offset (dx east, dy north) from v.
  int shift(int v, int dx, int dy) const;

  /// Toroidal coordinate distance min(|a-b|, n-|a-b|) along one axis.
  int axisDist(int a, int b) const;
  /// L1 (grid) distance between nodes -- the distance of G.
  int l1(int u, int v) const;
  /// L-infinity distance between nodes -- the distance of G[k] powers.
  int linf(int u, int v) const;

  /// All nodes w with l1(v, w) <= r (includes v). On small tori the ball
  /// wraps and is deduplicated.
  std::vector<int> l1Ball(int v, int r) const;
  /// All nodes w with linf(v, w) <= r (includes v).
  std::vector<int> linfBall(int v, int r) const;

  /// Adjacency of the L1 power graph G^(k): all w != v with l1 <= k.
  std::vector<int> l1PowerNeighbours(int v, int k) const;
  /// Adjacency of the L-infinity power graph G[k].
  std::vector<int> linfPowerNeighbours(int v, int k) const;

 private:
  int n_;
};

/// Maximum degree of G^(k) on a large torus: |L1 ball of radius k| - 1.
int l1PowerDegreeBound(int k);
/// Maximum degree of G[k] on a large torus: (2k+1)^2 - 1.
int linfPowerDegreeBound(int k);

}  // namespace lclgrid
