#include "grid/torus2d.hpp"

#include <algorithm>
#include <stdexcept>

namespace lclgrid {

namespace {
int mod(int a, int n) {
  int r = a % n;
  return r < 0 ? r + n : r;
}
}  // namespace

Torus2D::Torus2D(int n) : n_(n) {
  if (n < 1) throw std::invalid_argument("Torus2D: n must be positive");
}

int Torus2D::id(int x, int y) const { return mod(y, n_) * n_ + mod(x, n_); }

std::pair<int, int> Torus2D::xy(int v) const { return {v % n_, v / n_}; }

int Torus2D::step(int v, Dir d, int dist) const {
  return shift(v, dxOf(d) * dist, dyOf(d) * dist);
}

int Torus2D::shift(int v, int dx, int dy) const {
  return id(xOf(v) + dx, yOf(v) + dy);
}

int Torus2D::axisDist(int a, int b) const {
  int d = mod(a - b, n_);
  return std::min(d, n_ - d);
}

int Torus2D::l1(int u, int v) const {
  return axisDist(xOf(u), xOf(v)) + axisDist(yOf(u), yOf(v));
}

int Torus2D::linf(int u, int v) const {
  return std::max(axisDist(xOf(u), xOf(v)), axisDist(yOf(u), yOf(v)));
}

std::vector<int> Torus2D::l1Ball(int v, int r) const {
  std::vector<int> ball;
  // Enumerate the offset diamond and deduplicate wrapped nodes via sort.
  for (int dy = -r; dy <= r; ++dy) {
    int span = r - (dy < 0 ? -dy : dy);
    for (int dx = -span; dx <= span; ++dx) {
      ball.push_back(shift(v, dx, dy));
    }
  }
  std::sort(ball.begin(), ball.end());
  ball.erase(std::unique(ball.begin(), ball.end()), ball.end());
  return ball;
}

std::vector<int> Torus2D::linfBall(int v, int r) const {
  std::vector<int> ball;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      ball.push_back(shift(v, dx, dy));
    }
  }
  std::sort(ball.begin(), ball.end());
  ball.erase(std::unique(ball.begin(), ball.end()), ball.end());
  return ball;
}

std::vector<int> Torus2D::l1PowerNeighbours(int v, int k) const {
  std::vector<int> nbrs = l1Ball(v, k);
  nbrs.erase(std::remove(nbrs.begin(), nbrs.end(), v), nbrs.end());
  return nbrs;
}

std::vector<int> Torus2D::linfPowerNeighbours(int v, int k) const {
  std::vector<int> nbrs = linfBall(v, k);
  nbrs.erase(std::remove(nbrs.begin(), nbrs.end(), v), nbrs.end());
  return nbrs;
}

int l1PowerDegreeBound(int k) { return 2 * k * (k + 1); }

int linfPowerDegreeBound(int k) { return (2 * k + 1) * (2 * k + 1) - 1; }

}  // namespace lclgrid
