// Compass directions on the consistently oriented toroidal grid (Section 3):
// every node knows which incident edge points north / east / south / west.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace lclgrid {

enum class Dir : std::uint8_t { North = 0, East = 1, South = 2, West = 3 };

constexpr std::array<Dir, 4> kAllDirs = {Dir::North, Dir::East, Dir::South,
                                         Dir::West};

constexpr Dir opposite(Dir d) {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::East: return Dir::West;
    case Dir::South: return Dir::North;
    case Dir::West: return Dir::East;
  }
  return Dir::North;  // unreachable
}

/// Unit displacement of a direction; x grows east, y grows north.
constexpr int dxOf(Dir d) {
  return d == Dir::East ? 1 : d == Dir::West ? -1 : 0;
}
constexpr int dyOf(Dir d) {
  return d == Dir::North ? 1 : d == Dir::South ? -1 : 0;
}

inline std::string dirName(Dir d) {
  switch (d) {
    case Dir::North: return "N";
    case Dir::East: return "E";
    case Dir::South: return "S";
    case Dir::West: return "W";
  }
  return "?";
}

}  // namespace lclgrid
