// A minimal streaming JSON writer for the bench binaries and the engine's
// sweep reports, plus the recursive-descent parser behind the service
// daemon's newline-JSON debug mode. All JSON emitted by the repo follows
// one top-level schema:
//
//   { "name": <bench/driver id>, "config": { ... }, "results": [ ... ] }
//
// so the perf-trajectory tooling can ingest every binary uniformly. The
// writer tracks the container stack and inserts commas; strings are escaped
// per RFC 8259. Numbers: doubles use shortest round-trip-ish %.12g (JSON
// has no NaN/Inf -- those are emitted as null), 64-bit ints print exactly,
// and uint64 fingerprints should be passed through hex() to stay inside the
// interoperable 53-bit integer range.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lclgrid::support {

class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Object key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  // One overload per distinct signed type: int/long/long long are always
  // distinct types, whereas an std::int64_t overload would collide with one
  // of them on some ABI (long on LP64, long long on LLP64).
  JsonWriter& value(long long number);
  JsonWriter& value(long number) { return value(static_cast<long long>(number)); }
  JsonWriter& value(int number) { return value(static_cast<long long>(number)); }
  JsonWriter& value(bool flag);

  /// "0x..." rendering for 64-bit fingerprints (exact in every JSON parser).
  static std::string hex(std::uint64_t word);

  /// The completed document; the container stack must be empty.
  const std::string& str() const;

 private:
  void beforeValue();

  std::string out_;
  struct Frame {
    bool isObject = false;
    std::size_t count = 0;  // elements written so far
  };
  std::vector<Frame> frames_;
  bool pendingKey_ = false;
};

/// A parsed JSON value (the service's newline-JSON debug requests are tiny,
/// so a straightforward boxed tree is plenty). Numbers keep both renderings:
/// isInt() when the literal was integral and fits int64.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }

  /// Typed accessors; throw std::runtime_error("json: ...") on a kind
  /// mismatch (the debug-mode error frame relays the message verbatim).
  bool asBool() const;
  std::int64_t asInt() const;       // Int only
  double asDouble() const;          // Int or Double
  const std::string& asString() const;
  const std::vector<JsonValue>& asArray() const;

  /// Object member or nullptr when absent / not an object.
  const JsonValue* find(std::string_view key) const;
  /// Required object member; throws std::runtime_error naming the key.
  const JsonValue& at(std::string_view key) const;

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool b);
  static JsonValue makeInt(std::int64_t i);
  static JsonValue makeDouble(double d);
  static JsonValue makeString(std::string s);
  static JsonValue makeArray(std::vector<JsonValue> items);
  static JsonValue makeObject(std::map<std::string, JsonValue, std::less<>> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue, std::less<>> object_;
};

/// Parses one JSON document (RFC 8259: objects, arrays, strings with the
/// standard escapes incl. \uXXXX, numbers, true/false/null); trailing
/// non-whitespace or any syntax error throws std::runtime_error with a
/// byte offset. Duplicate object keys keep the last occurrence.
JsonValue parseJson(std::string_view text);

}  // namespace lclgrid::support
