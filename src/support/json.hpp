// A minimal streaming JSON writer for the bench binaries and the engine's
// sweep reports. All JSON emitted by the repo follows one top-level schema:
//
//   { "name": <bench/driver id>, "config": { ... }, "results": [ ... ] }
//
// so the perf-trajectory tooling can ingest every binary uniformly. The
// writer tracks the container stack and inserts commas; strings are escaped
// per RFC 8259. Numbers: doubles use shortest round-trip-ish %.12g (JSON
// has no NaN/Inf -- those are emitted as null), 64-bit ints print exactly,
// and uint64 fingerprints should be passed through hex() to stay inside the
// interoperable 53-bit integer range.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lclgrid::support {

class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Object key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  // One overload per distinct signed type: int/long/long long are always
  // distinct types, whereas an std::int64_t overload would collide with one
  // of them on some ABI (long on LP64, long long on LLP64).
  JsonWriter& value(long long number);
  JsonWriter& value(long number) { return value(static_cast<long long>(number)); }
  JsonWriter& value(int number) { return value(static_cast<long long>(number)); }
  JsonWriter& value(bool flag);

  /// "0x..." rendering for 64-bit fingerprints (exact in every JSON parser).
  static std::string hex(std::uint64_t word);

  /// The completed document; the container stack must be empty.
  const std::string& str() const;

 private:
  void beforeValue();

  std::string out_;
  struct Frame {
    bool isObject = false;
    std::size_t count = 0;  // elements written so far
  };
  std::vector<Frame> frames_;
  bool pendingKey_ = false;
};

}  // namespace lclgrid::support
