// Read-only memory-mapped files for the out-of-core verification tier
// (lcl/stream_verify.hpp). An MmapFile maps a whole file into the address
// space with a sequential-access hint, so the streaming kernels can walk
// labellings far larger than RAM: the OS pages data in ahead of the read
// cursor and the caller drops the pages behind it with dropRange, keeping
// the resident set bounded by the rolling window instead of the file size.
//
// On platforms without <sys/mman.h> the class degrades to reading the whole
// file into heap memory (dropRange becomes a no-op) -- correct, just not
// out-of-core. The repo's CI and dev targets are all POSIX.
#pragma once

#include <cstddef>
#include <string>

namespace lclgrid::support {

class MmapFile {
 public:
  MmapFile() = default;
  /// Opens and maps `path` read-only; advises sequential access. Throws
  /// std::runtime_error (with errno text) when the file cannot be opened,
  /// stat'ed or mapped. A zero-byte file maps to data() == nullptr.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  bool isOpen() const { return data_ != nullptr || size_ == 0; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }

  /// Advises the OS that [offset, offset + length) will not be needed
  /// again, so its resident pages may be reclaimed (the mapping stays
  /// valid -- a later access re-reads from the file). The range is shrunk
  /// inward to whole pages; a sub-page range is a no-op. Purely advisory:
  /// never affects the bytes an access observes.
  void dropRange(std::size_t offset, std::size_t length) const;

 private:
  void reset() noexcept;

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // true: munmap on destruction; false: heap buffer
};

}  // namespace lclgrid::support
