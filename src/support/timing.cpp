#include "support/timing.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define LCLGRID_HAVE_RUSAGE 1
#endif

namespace lclgrid::support {

long long peakRssKb() {
#if defined(LCLGRID_HAVE_RUSAGE)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // Darwin reports bytes, not KiB
#else
    return usage.ru_maxrss;
#endif
  }
#endif
  return -1;
}

}  // namespace lclgrid::support
