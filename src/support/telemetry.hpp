// Process-wide, thread-aware instrumentation: named monotonic counters,
// log2-bucketed histograms, set/max gauges, and RAII scoped spans, with two
// exporters -- a metrics snapshot in the repo {name, config, results[]}
// JSON schema (support/json.hpp) and a Chrome trace-event JSON file
// (chrome://tracing / Perfetto) of spans per thread.
//
// Hot-path contract: a Counter/Histogram handle is an index into a
// thread-local shard, so add()/record() touch only the calling thread's
// cache lines (one relaxed atomic store each -- the atomics exist so a
// concurrent snapshot may read the slots without a data race, never for
// cross-thread ordering). Shards register themselves with the process
// registry on first use and fold their totals into a retired accumulator on
// thread exit, so counts survive pool workers coming and going. Snapshots
// merge live shards + retired totals and are therefore exact whenever the
// instrumented threads are quiescent (and monotone under races).
//
// Spans record one complete ("X") trace event per scope into a bounded
// per-thread buffer, but only while tracing is enabled -- the disabled
// constructor is one relaxed load. Enable programmatically
// (setTraceEnabled) or via the environment:
//
//   LCLGRID_TRACE=1      collect spans (export is the caller's job)
//   LCLGRID_TRACE=path   collect spans and write the Chrome trace to
//                        `path` at process exit
//   LCLGRID_METRICS=path write the metrics snapshot to `path` at exit
//
// Building with -DLCLGRID_TELEMETRY=OFF defines LCLGRID_TELEMETRY_DISABLED
// and compiles every probe in this header to an empty inline body (no
// registry, no thread-locals, no atomics), so fully instrumented code pays
// nothing. kCompiledIn tells callers (and tests) which world they are in.
//
// Probe naming scheme (see docs/observability.md): dot-separated
// lowercase_underscore components, "<layer>.<metric>" for counters/gauges
// ("verify.nodes.bitsliced", "pool.steals", "sat.conflicts") and
// '/'-separated hierarchical names for spans ("verify/bitsliced",
// "sweep/classify/<problem>").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#if defined(LCLGRID_TELEMETRY_DISABLED)
#define LCLGRID_TELEMETRY_ENABLED 0
#else
#define LCLGRID_TELEMETRY_ENABLED 1
#endif

namespace lclgrid::support::telemetry {

inline constexpr bool kCompiledIn = LCLGRID_TELEMETRY_ENABLED != 0;

#if LCLGRID_TELEMETRY_ENABLED

/// Handle to a named monotonic counter. Cheap to copy; obtain via
/// counter(name) (idempotent -- the same name always yields the same slot).
class Counter {
 public:
  Counter() = default;
  /// Adds delta to the calling thread's shard slot (relaxed; ~one store).
  void add(std::int64_t delta) const noexcept;
  void increment() const noexcept { add(1); }

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t index) : index_(index) {}
  std::uint32_t index_ = UINT32_MAX;  // UINT32_MAX: null handle (no-op)
};

/// Handle to a named gauge: a process-wide last-value/high-water cell
/// (gauges are set rarely -- slab boundaries, pass ends -- so they share
/// one atomic rather than per-thread shards).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t value) const noexcept;
  /// Raises the gauge to value if larger (high-water mark).
  void max(std::int64_t value) const noexcept;

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::uint32_t index) : index_(index) {}
  std::uint32_t index_ = UINT32_MAX;
};

/// Handle to a named histogram over non-negative values, bucketed by
/// bit-width (bucket b counts values with bit_width == b; 65 buckets).
class Histogram {
 public:
  Histogram() = default;
  void record(std::int64_t value) const noexcept;

 private:
  friend Histogram histogram(std::string_view name);
  explicit Histogram(std::uint32_t index) : index_(index) {}
  std::uint32_t index_ = UINT32_MAX;
};

/// Registers (or looks up) a counter/gauge/histogram by name. Registration
/// takes the registry mutex -- call once and keep the handle (function-local
/// static at the probe site is the idiom). Returns a null no-op handle if
/// the fixed slot budget (kMaxCounters etc.) is exhausted.
Counter counter(std::string_view name);
Gauge gauge(std::string_view name);
Histogram histogram(std::string_view name);

/// Span collection gate (also settable via LCLGRID_TRACE, read once at
/// first telemetry use).
bool traceEnabled() noexcept;
void setTraceEnabled(bool on) noexcept;

/// RAII scoped span: records one complete trace event [ctor, dtor) on the
/// calling thread when tracing is enabled. The const char* overload must
/// receive a pointer that outlives the trace (string literals); the
/// std::string overload copies and is for dynamic labels.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // null: inactive (tracing was off at ctor)
  std::string owned_;
  std::uint64_t startNs_ = 0;
};

// --- snapshots & exporters ---

struct CounterValue {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // 0 when count == 0
  std::int64_t max = 0;
};

struct MetricsSnapshot {
  std::vector<CounterValue> counters;    // registration order
  std::vector<GaugeValue> gauges;        // registration order
  std::vector<HistogramValue> histograms;
};

/// Merges all live thread shards plus retired totals.
MetricsSnapshot snapshotMetrics();

/// The snapshot as one repo-schema JSON document
/// {name: "metrics_snapshot", config: {...}, results: [...]} -- each
/// results[] entry is {kind: counter|gauge|histogram, name, value | stats}.
std::string metricsJson();

/// Writes metricsJson() to path. Returns false (and writes nothing) on
/// open/write failure.
bool writeMetricsFile(const std::string& path);

/// One recorded span, for tests and programmatic inspection.
struct TraceEvent {
  std::string name;
  int tid = 0;                // small sequential per-thread id (1-based)
  std::uint64_t startNs = 0;  // since process telemetry epoch
  std::uint64_t durNs = 0;
};

/// Copies all recorded spans (live buffers + retired threads).
std::vector<TraceEvent> snapshotTrace();

/// The recorded spans as a Chrome trace-event JSON document
/// {"traceEvents": [...]} with one "M" thread-name metadata event per
/// thread and one "X" complete event per span (ts/dur in microseconds).
std::string chromeTraceJson();

/// Writes chromeTraceJson() to path. Returns false on open/write failure.
bool writeTraceFile(const std::string& path);

/// Discards all recorded spans (tests; not thread-safe against concurrent
/// span destruction on other threads).
void clearTrace();

/// Spans dropped because a per-thread buffer hit its cap (bounded memory:
/// kMaxEventsPerThread). Exported into the trace document's metadata.
std::int64_t droppedTraceEvents() noexcept;

#else  // LCLGRID_TELEMETRY_ENABLED == 0: every probe is an inline no-op.

class Counter {
 public:
  Counter() = default;
  void add(std::int64_t) const noexcept {}
  void increment() const noexcept {}
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t) const noexcept {}
  void max(std::int64_t) const noexcept {}
};

class Histogram {
 public:
  Histogram() = default;
  void record(std::int64_t) const noexcept {}
};

inline Counter counter(std::string_view) { return {}; }
inline Gauge gauge(std::string_view) { return {}; }
inline Histogram histogram(std::string_view) { return {}; }

inline bool traceEnabled() noexcept { return false; }
inline void setTraceEnabled(bool) noexcept {}

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) noexcept {}
  explicit ScopedSpan(std::string) noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

struct CounterValue {
  std::string name;
  std::int64_t value = 0;
};
struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};
struct HistogramValue {
  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
};
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};
inline MetricsSnapshot snapshotMetrics() { return {}; }
inline std::string metricsJson() { return {}; }
inline bool writeMetricsFile(const std::string&) { return false; }

struct TraceEvent {
  std::string name;
  int tid = 0;
  std::uint64_t startNs = 0;
  std::uint64_t durNs = 0;
};
inline std::vector<TraceEvent> snapshotTrace() { return {}; }
inline std::string chromeTraceJson() { return {}; }
inline bool writeTraceFile(const std::string&) { return false; }
inline void clearTrace() {}
inline std::int64_t droppedTraceEvents() noexcept { return 0; }

#endif  // LCLGRID_TELEMETRY_ENABLED

}  // namespace lclgrid::support::telemetry

namespace lclgrid {
namespace telemetry = support::telemetry;
}
