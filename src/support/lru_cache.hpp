// A capacity-bounded LRU cache with telemetry hit/miss/eviction counters,
// shared by the engine's oracle-report cache (engine/family_sweep.hpp) and
// the verification service's compiled-table cache (service/service.hpp).
//
// Design: a std::list holds the entries in recency order (front = most
// recent) and an unordered_map indexes list iterators by key, so get(),
// put() and the eviction on overflow are all O(1). Capacity counts entries;
// a capacity of 0 disables caching entirely (every get() misses, put() is a
// no-op) -- useful for "run everything fresh" configurations.
//
// Telemetry: constructing a cache with a name prefix registers
// "<prefix>.hits", "<prefix>.misses" and "<prefix>.evictions" counters in
// the process registry (support/telemetry.hpp), so cache behaviour shows up
// in telemetry::metricsJson() -- the service's stats frame serves exactly
// that snapshot. The per-instance stats() struct is maintained regardless
// of whether telemetry is compiled in.
//
// Thread-safety: none -- the cache is a plain container. Callers that share
// one across threads (the service, the sweep's cross-call report cache)
// guard it with their own mutex; see engine::ReportCache for the locked
// idiom.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "support/telemetry.hpp"

namespace lclgrid::support {

struct LruStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t entries = 0;  // current size
};

template <typename Key, typename Value>
class LruCache {
 public:
  /// `counterPrefix` empty: no telemetry counters are registered (the
  /// per-instance stats() are still maintained).
  explicit LruCache(std::size_t capacity, std::string_view counterPrefix = {})
      : capacity_(capacity) {
    if (!counterPrefix.empty()) {
      const std::string prefix(counterPrefix);
      hitCounter_ = telemetry::counter(prefix + ".hits");
      missCounter_ = telemetry::counter(prefix + ".misses");
      evictionCounter_ = telemetry::counter(prefix + ".evictions");
    }
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }

  /// Observer fired with (key, value) of each entry evicted on capacity
  /// overflow -- not by erase()/clear(). The service's problem cache keeps
  /// its fingerprint index consistent with the LRU through this.
  void setEvictionCallback(std::function<void(const Key&, const Value&)> fn) {
    onEvict_ = std::move(fn);
  }

  /// Looks the key up and, on a hit, marks the entry most-recently-used.
  /// Returns a copy of the value (entries stay owned by the cache; cache
  /// shared_ptrs for heavy values).
  std::optional<Value> get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      missCounter_.increment();
      return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.hits;
    hitCounter_.increment();
    return entries_.front().second;
  }

  /// Inserts (or refreshes) key -> value as most-recently-used, evicting
  /// the least-recently-used entry on overflow. With capacity() == 0 the
  /// call is a no-op.
  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
    if (entries_.size() > capacity_) {
      if (onEvict_) onEvict_(entries_.back().first, entries_.back().second);
      index_.erase(entries_.back().first);
      entries_.pop_back();
      ++stats_.evictions;
      evictionCounter_.increment();
    }
    stats_.entries = static_cast<std::int64_t>(entries_.size());
  }

  /// Removes the key if present; returns true iff it was.
  bool erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    entries_.erase(it->second);
    index_.erase(it);
    stats_.entries = static_cast<std::int64_t>(entries_.size());
    return true;
  }

  void clear() {
    entries_.clear();
    index_.clear();
    stats_.entries = 0;
  }

  /// Applies fn(key, value) in recency order (most recent first).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const auto& [key, value] : entries_) fn(key, value);
  }

  LruStats stats() const {
    LruStats out = stats_;
    out.entries = static_cast<std::int64_t>(entries_.size());
    return out;
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> entries_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
  LruStats stats_;
  std::function<void(const Key&, const Value&)> onEvict_;
  telemetry::Counter hitCounter_;    // null handles when prefix was empty:
  telemetry::Counter missCounter_;   // increment() is a no-op
  telemetry::Counter evictionCounter_;
};

}  // namespace lclgrid::support
