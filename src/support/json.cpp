#include "support/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace lclgrid::support {

namespace {

void appendEscaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void JsonWriter::beforeValue() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;
  }
  if (!frames_.empty() && frames_.back().isObject) {
    throw std::logic_error("JsonWriter: bare value inside object (use key)");
  }
  if (!frames_.empty() && frames_.back().count > 0) out_.push_back(',');
  if (!frames_.empty()) ++frames_.back().count;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_.push_back('{');
  frames_.push_back({/*isObject=*/true, 0});
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (frames_.empty() || !frames_.back().isObject || pendingKey_) {
    throw std::logic_error("JsonWriter: mismatched endObject");
  }
  frames_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_.push_back('[');
  frames_.push_back({/*isObject=*/false, 0});
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (frames_.empty() || frames_.back().isObject || pendingKey_) {
    throw std::logic_error("JsonWriter: mismatched endArray");
  }
  frames_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (frames_.empty() || !frames_.back().isObject || pendingKey_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (frames_.back().count > 0) out_.push_back(',');
  ++frames_.back().count;
  appendEscaped(out_, name);
  out_.push_back(':');
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  beforeValue();
  appendEscaped(out_, text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  beforeValue();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(long long number) {
  beforeValue();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  beforeValue();
  out_ += flag ? "true" : "false";
  return *this;
}

std::string JsonWriter::hex(std::uint64_t word) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(word));
  return buffer;
}

const std::string& JsonWriter::str() const {
  if (!frames_.empty()) {
    throw std::logic_error("JsonWriter: unclosed container");
  }
  return out_;
}

// --- parser -----------------------------------------------------------------

bool JsonValue::asBool() const {
  if (kind_ != Kind::Bool) throw std::runtime_error("json: not a bool");
  return bool_;
}

std::int64_t JsonValue::asInt() const {
  if (kind_ != Kind::Int) throw std::runtime_error("json: not an integer");
  return int_;
}

double JsonValue::asDouble() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ != Kind::Double) throw std::runtime_error("json: not a number");
  return double_;
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::String) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::asArray() const {
  if (kind_ != Kind::Array) throw std::runtime_error("json: not an array");
  return array_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("json: missing key \"" + std::string(key) + '"');
  }
  return *value;
}

JsonValue JsonValue::makeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::makeInt(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::Int;
  v.int_ = i;
  return v;
}
JsonValue JsonValue::makeDouble(double d) {
  JsonValue v;
  v.kind_ = Kind::Double;
  v.double_ = d;
  return v;
}
JsonValue JsonValue::makeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::makeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(items);
  return v;
}
JsonValue JsonValue::makeObject(
    std::map<std::string, JsonValue, std::less<>> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(members);
  return v;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + '\'');
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expectLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal");
    }
    pos_ += literal.size();
  }

  JsonValue parseValue() {
    skipWhitespace();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return JsonValue::makeString(parseString());
      case 't': expectLiteral("true"); return JsonValue::makeBool(true);
      case 'f': expectLiteral("false"); return JsonValue::makeBool(false);
      case 'n': expectLiteral("null"); return JsonValue::makeNull();
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    std::map<std::string, JsonValue, std::less<>> members;
    skipWhitespace();
    if (consume('}')) return JsonValue::makeObject(std::move(members));
    while (true) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      members.insert_or_assign(std::move(key), parseValue());
      skipWhitespace();
      if (consume('}')) return JsonValue::makeObject(std::move(members));
      expect(',');
    }
  }

  JsonValue parseArray() {
    expect('[');
    std::vector<JsonValue> items;
    skipWhitespace();
    if (consume(']')) return JsonValue::makeArray(std::move(items));
    while (true) {
      items.push_back(parseValue());
      skipWhitespace();
      if (consume(']')) return JsonValue::makeArray(std::move(items));
      expect(',');
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': appendUtf8(out, parseHex4()); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parseHex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return code;
  }

  // BMP-only \u handling (no surrogate pairing): the debug protocol's
  // fields are ASCII identifiers and file paths, and an unpaired surrogate
  // encodes as its raw 3-byte form rather than an error.
  static void appendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    consume('-');
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("invalid number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue::makeInt(value);
      }
      // Out of int64 range: fall through to the double rendering.
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return JsonValue::makeDouble(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(std::string_view text) {
  return JsonParser(text).parseDocument();
}

}  // namespace lclgrid::support
