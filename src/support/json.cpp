#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lclgrid::support {

namespace {

void appendEscaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void JsonWriter::beforeValue() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;
  }
  if (!frames_.empty() && frames_.back().isObject) {
    throw std::logic_error("JsonWriter: bare value inside object (use key)");
  }
  if (!frames_.empty() && frames_.back().count > 0) out_.push_back(',');
  if (!frames_.empty()) ++frames_.back().count;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_.push_back('{');
  frames_.push_back({/*isObject=*/true, 0});
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (frames_.empty() || !frames_.back().isObject || pendingKey_) {
    throw std::logic_error("JsonWriter: mismatched endObject");
  }
  frames_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_.push_back('[');
  frames_.push_back({/*isObject=*/false, 0});
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (frames_.empty() || frames_.back().isObject || pendingKey_) {
    throw std::logic_error("JsonWriter: mismatched endArray");
  }
  frames_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (frames_.empty() || !frames_.back().isObject || pendingKey_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (frames_.back().count > 0) out_.push_back(',');
  ++frames_.back().count;
  appendEscaped(out_, name);
  out_.push_back(':');
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  beforeValue();
  appendEscaped(out_, text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  beforeValue();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(long long number) {
  beforeValue();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  beforeValue();
  out_ += flag ? "true" : "false";
  return *this;
}

std::string JsonWriter::hex(std::uint64_t word) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(word));
  return buffer;
}

const std::string& JsonWriter::str() const {
  if (!frames_.empty()) {
    throw std::logic_error("JsonWriter: unclosed container");
  }
  return out_;
}

}  // namespace lclgrid::support
