#include "support/telemetry.hpp"

#if LCLGRID_TELEMETRY_ENABLED

#include <atomic>
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <unordered_map>

#include "support/json.hpp"

namespace lclgrid::support::telemetry {

namespace {

// Fixed slot budgets: shards preallocate their slot arrays, so handles never
// race a reallocation. Generous against current probe counts (~30 names).
constexpr std::uint32_t kMaxCounters = 256;
constexpr std::uint32_t kMaxGauges = 64;
constexpr std::uint32_t kMaxHistograms = 32;
constexpr std::size_t kMaxEventsPerThread = 1u << 18;

constexpr std::int64_t kHistMinEmpty = INT64_MAX;

// The atomics below are single-writer (the owning thread); relaxed ordering
// everywhere -- they exist so snapshot readers on other threads are
// race-free, not to order anything.
struct HistShard {
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  std::atomic<std::int64_t> min{kHistMinEmpty};
  std::atomic<std::int64_t> max{0};
  std::array<std::atomic<std::int64_t>, 65> buckets{};
};

struct Shard {
  std::array<std::atomic<std::int64_t>, kMaxCounters> counters{};
  std::array<HistShard, kMaxHistograms> hists{};
};

struct HistTotal {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = kHistMinEmpty;
  std::int64_t max = 0;
};

struct TraceBuf {
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::string> counterNames;
  std::vector<std::string> gaugeNames;
  std::vector<std::string> histogramNames;
  std::unordered_map<std::string, std::uint32_t> counterIndex;
  std::unordered_map<std::string, std::uint32_t> gaugeIndex;
  std::unordered_map<std::string, std::uint32_t> histogramIndex;
  // Gauges are process-wide cells, not per-thread shards (set rarely).
  std::array<std::atomic<std::int64_t>, kMaxGauges> gaugeValues{};

  std::vector<Shard*> shards;            // live thread shards
  std::vector<std::int64_t> retiredCounters;   // folded-in dead threads
  std::vector<HistTotal> retiredHists;
  std::vector<TraceBuf*> traceBufs;      // live, parallel to shards' threads
  std::vector<TraceEvent> retiredTrace;

  std::atomic<int> nextTid{1};
  std::atomic<bool> traceOn{false};
  std::atomic<std::int64_t> droppedEvents{0};
  std::chrono::steady_clock::time_point epoch;
  std::string traceExitPath;
  std::string metricsExitPath;
  bool metricsExitStderr = false;

  Registry()
      : retiredCounters(kMaxCounters, 0),
        retiredHists(kMaxHistograms),
        epoch(std::chrono::steady_clock::now()) {}
};

void writeAtExit();

Registry& registry() {
  // Leaked deliberately: pool-worker thread_locals (and atexit exporters)
  // may outlive any static destruction order we could arrange.
  static Registry* instance = []() {
    Registry* r = new Registry();
    if (const char* env = std::getenv("LCLGRID_TRACE")) {
      const std::string value(env);
      if (!value.empty() && value != "0") {
        r->traceOn.store(true, std::memory_order_relaxed);
        if (value != "1") r->traceExitPath = value;
      }
    }
    if (const char* env = std::getenv("LCLGRID_METRICS")) {
      const std::string value(env);
      if (!value.empty() && value != "0") {
        if (value == "1") {
          r->metricsExitStderr = true;
        } else {
          r->metricsExitPath = value;
        }
      }
    }
    if (!r->traceExitPath.empty() || !r->metricsExitPath.empty() ||
        r->metricsExitStderr) {
      std::atexit(writeAtExit);
    }
    return r;
  }();
  return *instance;
}

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - registry().epoch)
          .count());
}

struct ThreadState {
  Shard shard;
  TraceBuf trace;
  int tid;

  ThreadState() {
    Registry& r = registry();
    tid = r.nextTid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(r.mutex);
    r.shards.push_back(&shard);
    r.traceBufs.push_back(&trace);
  }

  // Fold this thread's totals into the retired accumulators so counts and
  // spans survive pool workers exiting before the snapshot.
  ~ThreadState() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (std::uint32_t i = 0; i < kMaxCounters; ++i) {
      r.retiredCounters[i] +=
          shard.counters[i].load(std::memory_order_relaxed);
    }
    for (std::uint32_t i = 0; i < kMaxHistograms; ++i) {
      const HistShard& h = shard.hists[i];
      HistTotal& total = r.retiredHists[i];
      total.count += h.count.load(std::memory_order_relaxed);
      total.sum += h.sum.load(std::memory_order_relaxed);
      total.min = std::min(total.min, h.min.load(std::memory_order_relaxed));
      total.max = std::max(total.max, h.max.load(std::memory_order_relaxed));
    }
    {
      std::lock_guard<std::mutex> traceLock(trace.mutex);
      r.retiredTrace.insert(r.retiredTrace.end(),
                            std::make_move_iterator(trace.events.begin()),
                            std::make_move_iterator(trace.events.end()));
    }
    std::erase(r.shards, &shard);
    std::erase(r.traceBufs, &trace);
  }
};

ThreadState& threadState() {
  thread_local ThreadState state;
  return state;
}

void recordSpan(std::string name, std::uint64_t startNs) {
  const std::uint64_t endNs = nowNs();
  ThreadState& state = threadState();
  std::lock_guard<std::mutex> lock(state.trace.mutex);
  if (state.trace.events.size() >= kMaxEventsPerThread) {
    registry().droppedEvents.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  state.trace.events.push_back(TraceEvent{
      std::move(name), state.tid, startNs,
      endNs > startNs ? endNs - startNs : 0});
}

void writeAtExit() {
  Registry& r = registry();
  if (!r.traceExitPath.empty()) writeTraceFile(r.traceExitPath);
  if (!r.metricsExitPath.empty()) writeMetricsFile(r.metricsExitPath);
  if (r.metricsExitStderr) std::fputs(metricsJson().c_str(), stderr);
}

std::uint32_t registerName(std::unordered_map<std::string, std::uint32_t>& map,
                           std::vector<std::string>& names,
                           std::uint32_t capacity, std::string_view name) {
  auto it = map.find(std::string(name));
  if (it != map.end()) return it->second;
  if (names.size() >= capacity) return UINT32_MAX;  // budget exhausted: no-op
  const auto index = static_cast<std::uint32_t>(names.size());
  names.emplace_back(name);
  map.emplace(names.back(), index);
  return index;
}

}  // namespace

Counter counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return Counter(
      registerName(r.counterIndex, r.counterNames, kMaxCounters, name));
}

Gauge gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return Gauge(registerName(r.gaugeIndex, r.gaugeNames, kMaxGauges, name));
}

Histogram histogram(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return Histogram(
      registerName(r.histogramIndex, r.histogramNames, kMaxHistograms, name));
}

void Counter::add(std::int64_t delta) const noexcept {
  if (index_ == UINT32_MAX) return;
  std::atomic<std::int64_t>& slot = threadState().shard.counters[index_];
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void Gauge::set(std::int64_t value) const noexcept {
  if (index_ == UINT32_MAX) return;
  registry().gaugeValues[index_].store(value, std::memory_order_relaxed);
}

void Gauge::max(std::int64_t value) const noexcept {
  if (index_ == UINT32_MAX) return;
  std::atomic<std::int64_t>& cell = registry().gaugeValues[index_];
  std::int64_t seen = cell.load(std::memory_order_relaxed);
  while (value > seen &&
         !cell.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::record(std::int64_t value) const noexcept {
  if (index_ == UINT32_MAX) return;
  if (value < 0) value = 0;
  HistShard& h = threadState().shard.hists[index_];
  h.count.store(h.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
  const int bucket = std::bit_width(static_cast<std::uint64_t>(value));
  h.buckets[static_cast<std::size_t>(bucket)].store(
      h.buckets[static_cast<std::size_t>(bucket)].load(
          std::memory_order_relaxed) +
          1,
      std::memory_order_relaxed);
}

bool traceEnabled() noexcept {
  return registry().traceOn.load(std::memory_order_relaxed);
}

void setTraceEnabled(bool on) noexcept {
  registry().traceOn.store(on, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name) noexcept {
  if (!traceEnabled()) return;
  name_ = name;
  startNs_ = nowNs();
}

ScopedSpan::ScopedSpan(std::string name) {
  if (!traceEnabled()) return;
  owned_ = std::move(name);
  name_ = owned_.c_str();
  startNs_ = nowNs();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  recordSpan(owned_.empty() ? std::string(name_) : std::move(owned_),
             startNs_);
}

MetricsSnapshot snapshotMetrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snapshot;

  snapshot.counters.reserve(r.counterNames.size());
  for (std::uint32_t i = 0; i < r.counterNames.size(); ++i) {
    std::int64_t total = r.retiredCounters[i];
    for (const Shard* shard : r.shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snapshot.counters.push_back(CounterValue{r.counterNames[i], total});
  }

  snapshot.gauges.reserve(r.gaugeNames.size());
  for (std::uint32_t i = 0; i < r.gaugeNames.size(); ++i) {
    snapshot.gauges.push_back(GaugeValue{
        r.gaugeNames[i], r.gaugeValues[i].load(std::memory_order_relaxed)});
  }

  snapshot.histograms.reserve(r.histogramNames.size());
  for (std::uint32_t i = 0; i < r.histogramNames.size(); ++i) {
    HistTotal total = r.retiredHists[i];
    for (const Shard* shard : r.shards) {
      const HistShard& h = shard->hists[i];
      total.count += h.count.load(std::memory_order_relaxed);
      total.sum += h.sum.load(std::memory_order_relaxed);
      total.min = std::min(total.min, h.min.load(std::memory_order_relaxed));
      total.max = std::max(total.max, h.max.load(std::memory_order_relaxed));
    }
    snapshot.histograms.push_back(HistogramValue{
        r.histogramNames[i], total.count, total.sum,
        total.count > 0 ? total.min : 0, total.max});
  }
  return snapshot;
}

std::string metricsJson() {
  // Guarantees the document always carries at least one result (the repo
  // schema requires a non-empty results[]) and counts exports as a bonus.
  static const Counter exports = counter("telemetry.exports");
  exports.increment();

  const MetricsSnapshot snapshot = snapshotMetrics();
  JsonWriter json;
  json.beginObject();
  json.key("name").value("metrics_snapshot");
  json.key("config").beginObject();
  json.key("compiled_in").value(true);
  json.key("trace_enabled").value(traceEnabled());
  json.key("dropped_trace_events").value(droppedTraceEvents());
  json.endObject();
  json.key("results").beginArray();
  for (const CounterValue& c : snapshot.counters) {
    json.beginObject();
    json.key("kind").value("counter");
    json.key("name").value(c.name);
    json.key("value").value(static_cast<long long>(c.value));
    json.endObject();
  }
  for (const GaugeValue& g : snapshot.gauges) {
    json.beginObject();
    json.key("kind").value("gauge");
    json.key("name").value(g.name);
    json.key("value").value(static_cast<long long>(g.value));
    json.endObject();
  }
  for (const HistogramValue& h : snapshot.histograms) {
    json.beginObject();
    json.key("kind").value("histogram");
    json.key("name").value(h.name);
    json.key("count").value(static_cast<long long>(h.count));
    json.key("sum").value(static_cast<long long>(h.sum));
    json.key("min").value(static_cast<long long>(h.min));
    json.key("max").value(static_cast<long long>(h.max));
    json.endObject();
  }
  json.endArray();
  json.endObject();
  return json.str();
}

bool writeMetricsFile(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << metricsJson() << '\n';
  return static_cast<bool>(out);
}

std::vector<TraceEvent> snapshotTrace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<TraceEvent> events = r.retiredTrace;
  for (TraceBuf* buf : r.traceBufs) {
    std::lock_guard<std::mutex> bufLock(buf->mutex);
    events.insert(events.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.startNs != b.startNs) return a.startNs < b.startNs;
              return a.durNs > b.durNs;  // parents before children
            });
  return events;
}

std::string chromeTraceJson() {
  const std::vector<TraceEvent> events = snapshotTrace();
  JsonWriter json;
  json.beginObject();
  json.key("displayTimeUnit").value("ms");
  json.key("dropped_events").value(static_cast<long long>(
      droppedTraceEvents()));
  json.key("traceEvents").beginArray();
  int lastTid = 0;
  for (const TraceEvent& event : events) {
    if (event.tid != lastTid) {
      lastTid = event.tid;
      json.beginObject();
      json.key("name").value("thread_name");
      json.key("ph").value("M");
      json.key("pid").value(1);
      json.key("tid").value(event.tid);
      json.key("args").beginObject();
      json.key("name").value("lclgrid-t" + std::to_string(event.tid));
      json.endObject();
      json.endObject();
    }
    json.beginObject();
    json.key("name").value(event.name);
    json.key("cat").value("lclgrid");
    json.key("ph").value("X");
    json.key("ts").value(static_cast<double>(event.startNs) / 1000.0);
    json.key("dur").value(static_cast<double>(event.durNs) / 1000.0);
    json.key("pid").value(1);
    json.key("tid").value(event.tid);
    json.endObject();
  }
  json.endArray();
  json.endObject();
  return json.str();
}

bool writeTraceFile(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << chromeTraceJson() << '\n';
  return static_cast<bool>(out);
}

void clearTrace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.retiredTrace.clear();
  for (TraceBuf* buf : r.traceBufs) {
    std::lock_guard<std::mutex> bufLock(buf->mutex);
    buf->events.clear();
  }
  r.droppedEvents.store(0, std::memory_order_relaxed);
}

std::int64_t droppedTraceEvents() noexcept {
  return registry().droppedEvents.load(std::memory_order_relaxed);
}

}  // namespace lclgrid::support::telemetry

#else  // telemetry compiled out: keep the TU non-empty for strict linkers.

namespace lclgrid::support::telemetry {
namespace {
[[maybe_unused]] constexpr int kTranslationUnitAnchor = 0;
}
}  // namespace lclgrid::support::telemetry

#endif  // LCLGRID_TELEMETRY_ENABLED
