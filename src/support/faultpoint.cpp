#include "support/faultpoint.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace lclgrid::support::faultpoint {

namespace detail {
std::atomic<int> gArmedPoints{0};
}  // namespace detail

namespace {

using detail::gArmedPoints;

struct Slot {
  std::string name;
  std::atomic<bool> armed{false};
  std::atomic<long long> hits{0};
  std::atomic<long long> fired{0};
  FaultSpec spec;              // guarded by the registry mutex
  std::uint64_t rngState = 0;  // ditto
};

struct Registry {
  std::mutex mutex;
  // Slot pointers are stable: registerPoint never moves them.
  std::vector<std::unique_ptr<Slot>> slots;
  std::unordered_map<std::string, std::uint32_t> byName;
  bool envLoaded = false;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: probe sites may
  return *instance;                            // fire during static teardown
}

std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// Callers hold registry().mutex for all *Locked helpers.
void armSlotLocked(Slot& slot, const FaultSpec& spec) {
  if (!slot.armed.exchange(true)) {
    gArmedPoints.fetch_add(1, std::memory_order_relaxed);
  }
  slot.spec = spec;
  slot.rngState = spec.seed ? spec.seed : 0x9e3779b97f4a7c15ull;
  slot.hits.store(0, std::memory_order_relaxed);
}

void disarmSlotLocked(Slot& slot) {
  if (slot.armed.exchange(false)) {
    gArmedPoints.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::uint32_t registerLocked(Registry& reg, std::string_view name) {
  auto it = reg.byName.find(std::string(name));
  if (it != reg.byName.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(reg.slots.size());
  reg.slots.push_back(std::make_unique<Slot>());
  reg.slots.back()->name = std::string(name);
  reg.byName.emplace(std::string(name), index);
  return index;
}

[[noreturn]] void badEntry(std::string_view entry, const char* why) {
  throw std::invalid_argument("faultpoint: bad spec entry '" +
                              std::string(entry) + "': " + why);
}

int errnoByName(std::string_view name) {
  struct Pair {
    const char* name;
    int value;
  };
  static constexpr Pair kNames[] = {
      {"EPIPE", EPIPE},           {"ECONNRESET", ECONNRESET},
      {"EINTR", EINTR},           {"EIO", EIO},
      {"ENOSPC", ENOSPC},         {"EAGAIN", EAGAIN},
      {"ETIMEDOUT", ETIMEDOUT},   {"EBADF", EBADF},
      {"ENOMEM", ENOMEM},         {"ECONNREFUSED", ECONNREFUSED},
      {"EACCES", EACCES},         {"ENOENT", ENOENT},
  };
  for (const Pair& pair : kNames) {
    if (name == pair.name) return pair.value;
  }
  return 0;
}

long long parseNumber(std::string_view text, std::string_view entry,
                      const char* what) {
  if (text.empty()) badEntry(entry, what);
  long long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') badEntry(entry, what);
    value = value * 10 + (c - '0');
  }
  return value;
}

// Split a spec string on commas, applying `each` to every nonempty entry.
template <typename Fn>
void forEachEntry(std::string_view spec, Fn&& each) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(start, comma - start);
    if (!entry.empty()) each(entry);
    if (comma == spec.size()) break;
    start = comma + 1;
  }
}

void loadEnvLocked(Registry& reg) {
  if (reg.envLoaded) return;
  reg.envLoaded = true;
  const char* env = std::getenv("LCLGRID_FAULTS");
  if (env == nullptr || *env == '\0') return;
  // A daemon must not die on a typo in its environment: warn and skip the
  // bad entry. (The test API throws instead.)
  forEachEntry(env, [&](std::string_view entry) {
    try {
      std::string name;
      const FaultSpec parsed = parseEntry(entry, &name);
      armSlotLocked(*reg.slots[registerLocked(reg, name)], parsed);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "lclgrid: ignoring bad LCLGRID_FAULTS entry '%.*s': %s\n",
                   static_cast<int>(entry.size()), entry.data(), e.what());
    }
  });
}

Slot* findSlot(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  loadEnvLocked(reg);
  auto it = reg.byName.find(std::string(name));
  return it == reg.byName.end() ? nullptr : reg.slots[it->second].get();
}

}  // namespace

namespace detail {

std::uint32_t registerPoint(const char* name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  loadEnvLocked(reg);
  return registerLocked(reg, name);
}

Fired fireSlow(std::uint32_t index) {
  Registry& reg = registry();
  Fired result;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    Slot& slot = *reg.slots[index];
    if (!slot.armed.load(std::memory_order_relaxed)) return {};
    const long long hit =
        slot.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    const FaultSpec& spec = slot.spec;
    if (spec.nth > 0 && hit != spec.nth) return {};
    if (spec.probability < 1.0) {
      const double draw =
          static_cast<double>(xorshift(slot.rngState) >> 11) * 0x1.0p-53;
      if (draw >= spec.probability) return {};
    }
    slot.fired.fetch_add(1, std::memory_order_relaxed);
    if (spec.oneShot || spec.nth > 0) disarmSlotLocked(slot);
    result = Fired{spec.action, spec.errnoValue, spec.arg};
  }
  // Framework-applied actions run outside the lock.
  if (result.action == Action::kDelay) {
    if (result.arg > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(result.arg));
    }
    return {};
  }
  if (result.action == Action::kAbort) std::abort();
  return result;
}

}  // namespace detail

const char* actionName(Action action) {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kErrno: return "errno";
    case Action::kShort: return "short";
    case Action::kDelay: return "delay";
    case Action::kDrop: return "drop";
    case Action::kAbort: return "abort";
  }
  return "?";
}

FaultSpec parseEntry(std::string_view entry, std::string* pointName) {
  const std::size_t colon = entry.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    badEntry(entry, "expected 'point:action'");
  }
  if (pointName != nullptr) *pointName = std::string(entry.substr(0, colon));
  std::string_view rest = entry.substr(colon + 1);

  // Split on '@' into the action token and trigger tokens.
  std::vector<std::string_view> tokens;
  while (!rest.empty()) {
    const std::size_t at = rest.find('@');
    tokens.push_back(rest.substr(0, at));
    if (at == std::string_view::npos) break;
    rest = rest.substr(at + 1);
  }
  if (tokens.empty() || tokens[0].empty()) badEntry(entry, "missing action");

  auto splitKv = [](std::string_view token, std::string_view* value) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      *value = {};
      return token;
    }
    *value = token.substr(eq + 1);
    return token.substr(0, eq);
  };

  FaultSpec spec;
  std::string_view value;
  const std::string_view action = splitKv(tokens[0], &value);
  if (action == "errno") {
    spec.action = Action::kErrno;
    spec.errnoValue = errnoByName(value);
    if (spec.errnoValue == 0) {
      spec.errnoValue =
          static_cast<int>(parseNumber(value, entry, "bad errno value"));
    }
    if (spec.errnoValue == 0) badEntry(entry, "errno needs a nonzero value");
  } else if (action == "short") {
    spec.action = Action::kShort;
    spec.arg = parseNumber(value, entry, "short needs a byte count");
  } else if (action == "delay") {
    spec.action = Action::kDelay;
    spec.arg = parseNumber(value, entry, "delay needs milliseconds");
  } else if (action == "drop") {
    if (!value.empty()) badEntry(entry, "drop takes no value");
    spec.action = Action::kDrop;
  } else if (action == "abort") {
    if (!value.empty()) badEntry(entry, "abort takes no value");
    spec.action = Action::kAbort;
  } else {
    badEntry(entry, "unknown action");
  }

  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view key = splitKv(tokens[i], &value);
    if (key == "nth") {
      spec.nth = parseNumber(value, entry, "nth needs a hit index");
      if (spec.nth <= 0) badEntry(entry, "nth must be >= 1");
    } else if (key == "once") {
      if (!value.empty()) badEntry(entry, "once takes no value");
      spec.oneShot = true;
    } else if (key == "p") {
      if (value.empty()) badEntry(entry, "p needs a probability");
      try {
        spec.probability = std::stod(std::string(value));
      } catch (const std::exception&) {
        badEntry(entry, "bad probability");
      }
      if (spec.probability < 0.0 || spec.probability > 1.0) {
        badEntry(entry, "probability out of [0,1]");
      }
    } else if (key == "seed") {
      spec.seed =
          static_cast<std::uint64_t>(parseNumber(value, entry, "bad seed"));
    } else {
      badEntry(entry, "unknown trigger");
    }
  }
  return spec;
}

void arm(std::string_view point, const FaultSpec& spec) {
  if (spec.action == Action::kNone) {
    throw std::invalid_argument("faultpoint: cannot arm an empty spec");
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  loadEnvLocked(reg);
  // Registering here means arming a not-yet-executed point simply creates
  // its slot; the probe site binds to it on first execution.
  armSlotLocked(*reg.slots[registerLocked(reg, point)], spec);
}

void armEntry(std::string_view entry) {
  std::string name;
  const FaultSpec spec = parseEntry(entry, &name);
  arm(name, spec);
}

int armSpecString(std::string_view spec) {
  int armed = 0;
  forEachEntry(spec, [&](std::string_view entry) {
    armEntry(entry);
    ++armed;
  });
  return armed;
}

void disarm(std::string_view point) {
  Slot* slot = findSlot(point);
  if (slot == nullptr) return;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  disarmSlotLocked(*slot);
}

void disarmAll() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  loadEnvLocked(reg);
  for (auto& slot : reg.slots) disarmSlotLocked(*slot);
}

long long hitCount(std::string_view point) {
  Slot* slot = findSlot(point);
  return slot == nullptr ? 0 : slot->hits.load(std::memory_order_relaxed);
}

long long firedCount(std::string_view point) {
  Slot* slot = findSlot(point);
  return slot == nullptr ? 0 : slot->fired.load(std::memory_order_relaxed);
}

std::vector<PointInfo> registeredPoints() {
  Registry& reg = registry();
  std::vector<PointInfo> out;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    out.reserve(reg.slots.size());
    for (const auto& slot : reg.slots) {
      out.push_back(PointInfo{slot->name,
                              slot->armed.load(std::memory_order_relaxed),
                              slot->hits.load(std::memory_order_relaxed),
                              slot->fired.load(std::memory_order_relaxed)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PointInfo& a, const PointInfo& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace lclgrid::support::faultpoint
