#include "support/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "support/faultpoint.hpp"

#if defined(__has_include)
#if __has_include(<sys/mman.h>)
#define LCLGRID_HAVE_MMAP 1
#endif
#endif

#if defined(LCLGRID_HAVE_MMAP)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

namespace lclgrid::support {

namespace {

[[noreturn]] void throwErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error("MmapFile: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

#if defined(LCLGRID_HAVE_MMAP)
std::size_t pageSize() {
  static const std::size_t size = [] {
    const long probed = ::sysconf(_SC_PAGESIZE);
    return probed > 0 ? static_cast<std::size_t>(probed) : std::size_t{4096};
  }();
  return size;
}
#endif

}  // namespace

MmapFile::MmapFile(const std::string& path) {
  {
    // Injected open/map failure surfaces as the same typed error a real
    // one would (docs/robustness.md).
    const auto fault = FAULT_POINT("mmap.open");
    if (fault.action == faultpoint::Action::kErrno) {
      errno = fault.errnoValue;
      throwErrno("open", path);
    }
  }
#if defined(LCLGRID_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throwErrno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno("stat", path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      size_ = 0;
      throwErrno("mmap", path);
    }
    data_ = static_cast<std::byte*>(mapping);
    mapped_ = true;
    // Advisory only; a kernel that rejects the hint still maps correctly.
    (void)::madvise(data_, size_, MADV_SEQUENTIAL);
  }
  // The mapping holds its own reference to the file.
  ::close(fd);
#else
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throwErrno("open", path);
  std::fseek(file, 0, SEEK_END);
  const long end = std::ftell(file);
  if (end < 0) {
    std::fclose(file);
    throwErrno("stat", path);
  }
  std::fseek(file, 0, SEEK_SET);
  size_ = static_cast<std::size_t>(end);
  if (size_ > 0) {
    data_ = new std::byte[size_];
    if (std::fread(data_, 1, size_, file) != size_) {
      std::fclose(file);
      delete[] data_;
      data_ = nullptr;
      size_ = 0;
      throw std::runtime_error("MmapFile: short read '" + path + "'");
    }
  }
  std::fclose(file);
#endif
}

MmapFile::~MmapFile() { reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

void MmapFile::reset() noexcept {
#if defined(LCLGRID_HAVE_MMAP)
  if (data_ != nullptr && mapped_) ::munmap(data_, size_);
#endif
  if (data_ != nullptr && !mapped_) delete[] data_;
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

void MmapFile::dropRange(std::size_t offset, std::size_t length) const {
#if defined(LCLGRID_HAVE_MMAP)
  if (data_ == nullptr || !mapped_ || length == 0) return;
  const std::size_t page = pageSize();
  const std::size_t begin = (offset + page - 1) / page * page;  // round up
  std::size_t end = offset + length;
  if (end > size_) end = size_;
  end = end / page * page;  // round down
  if (begin >= end) return;
  (void)::madvise(data_ + begin, end - begin, MADV_DONTNEED);
#else
  (void)offset;
  (void)length;
#endif
}

}  // namespace lclgrid::support
