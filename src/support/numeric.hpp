// Numeric helpers shared across the library: iterated logarithm, primes and
// GF(q) arithmetic for Linial's colour-reduction polynomials, gcd utilities,
// and a deterministic splitmix64 RNG (all experiments are reproducible).
#pragma once

#include <cstdint>
#include <vector>

namespace lclgrid {

/// Iterated logarithm (base 2): the number of times log2 must be applied to
/// n before the result drops to at most 1. logStar(1) = 0, logStar(2) = 1,
/// logStar(4) = 2, logStar(16) = 3, logStar(65536) = 4.
int logStar(double n);

/// Smallest prime p with p >= n (n >= 2). Deterministic trial division;
/// the inputs in this library are tiny (q < 10^6).
int nextPrime(int n);

bool isPrime(int n);

/// gcd of two non-negative integers.
long long gcdLL(long long a, long long b);

/// Evaluate the polynomial with the given coefficients (coeffs[i] is the
/// coefficient of x^i) at point x over GF(q), q prime.
int evalPolyModQ(const std::vector<int>& coeffs, int x, int q);

/// Digits of value in base q, least significant first, padded to width.
std::vector<int> digitsBaseQ(long long value, int q, int width);

/// Deterministic 64-bit mixer / RNG. Used wherever "random" identifiers or
/// instances are needed so experiments are exactly reproducible.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();
  /// Uniform value in [0, bound).
  std::uint64_t nextBelow(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double nextDouble();

 private:
  std::uint64_t state_;
};

/// A uniformly random permutation of {0, ..., n-1} under the given seed.
std::vector<std::uint64_t> randomDistinct(int count, std::uint64_t upperBound,
                                          std::uint64_t seed);

}  // namespace lclgrid
