#include "support/numeric.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace lclgrid {

int logStar(double n) {
  int iterations = 0;
  while (n > 1.0) {
    n = std::log2(n);
    ++iterations;
  }
  return iterations;
}

bool isPrime(int n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (int d = 3; static_cast<long long>(d) * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

int nextPrime(int n) {
  if (n <= 2) return 2;
  int candidate = n;
  while (!isPrime(candidate)) ++candidate;
  return candidate;
}

long long gcdLL(long long a, long long b) {
  while (b != 0) {
    long long t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

int evalPolyModQ(const std::vector<int>& coeffs, int x, int q) {
  long long acc = 0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
    acc = (acc * x + *it) % q;
  }
  return static_cast<int>(acc);
}

std::vector<int> digitsBaseQ(long long value, int q, int width) {
  std::vector<int> digits(width, 0);
  for (int i = 0; i < width; ++i) {
    digits[i] = static_cast<int>(value % q);
    value /= q;
  }
  if (value != 0) {
    throw std::invalid_argument("digitsBaseQ: value does not fit in width");
  }
  return digits;
}

std::uint64_t SplitMix64::next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t SplitMix64::nextBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias; bound is never close to 2^64
  // in this library, so the loop terminates almost immediately.
  if (bound == 0) throw std::invalid_argument("nextBelow: bound must be > 0");
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return draw % bound;
}

double SplitMix64::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<std::uint64_t> randomDistinct(int count, std::uint64_t upperBound,
                                          std::uint64_t seed) {
  if (static_cast<std::uint64_t>(count) > upperBound) {
    throw std::invalid_argument("randomDistinct: not enough values available");
  }
  SplitMix64 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(count));
  while (values.size() < static_cast<std::size_t>(count)) {
    std::uint64_t v = rng.nextBelow(upperBound);
    if (seen.insert(v).second) values.push_back(v);
  }
  return values;
}

}  // namespace lclgrid
