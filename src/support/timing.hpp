// Shared wall-clock / resident-set helpers for the bench binaries and the
// engine drivers -- previously hand-rolled per binary (ISSUE 7 satellite).
#pragma once

#include <chrono>

namespace lclgrid::support {

/// Seconds elapsed since a steady_clock time point.
inline double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Restartable wall-clock stopwatch over steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const { return secondsSince(start_); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process peak resident set in KiB (getrusage ru_maxrss high-water mark).
/// Returns -1 where the platform has no getrusage. The bounded-memory
/// witness of the streaming verification tier (docs/perf.md).
long long peakRssKb();

}  // namespace lclgrid::support
