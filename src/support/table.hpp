// Minimal fixed-width ASCII table printer used by the bench binaries to
// regenerate the paper's tables in a uniform format.
#pragma once

#include <string>
#include <vector>

namespace lclgrid {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);
  /// Render with column widths fitted to contents, pipe-separated.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience number-to-string helpers for table cells.
std::string fmtInt(long long v);
std::string fmtDouble(double v, int precision = 2);
std::string fmtBool(bool v);

}  // namespace lclgrid
