// Fault injection for robustness testing (docs/robustness.md).
//
// A fault point is a named site on an I/O or lifecycle edge:
//
//   const auto fault = FAULT_POINT("service.write_response");
//   if (fault.action == faultpoint::Action::kErrno) { errno = fault.errnoValue; ... }
//
// Unarmed cost is one relaxed atomic load of a global counter and a
// predicted-not-taken branch -- the same discipline as the telemetry
// layer's disabled path -- so points stay compiled into release binaries
// (scripts/bench_smoke.sh proves the armed-but-not-firing cost is inside
// the noise; see docs/robustness.md).
//
// Arming: either the test API below (arm / armSpecString / disarmAll) or
// the environment, read once at first use:
//
//   LCLGRID_FAULTS="service.write_response:errno=EPIPE@nth=3,stream.slab:delay=5@p=0.1@seed=7"
//
// Spec grammar (comma-separated entries):
//
//   entry   := point ':' action [ '@' trigger ]*
//   action  := 'errno' '=' (NAME|NUM)   -- site fails with this errno
//            | 'short' '=' BYTES        -- one send/recv/write clamped to BYTES
//            | 'delay' '=' MILLIS       -- framework sleeps here, then continues
//            | 'drop'                   -- site skips the operation (e.g. a frame)
//            | 'abort'                  -- std::abort() here (crash tests)
//   trigger := 'nth' '=' N              -- fire on the Nth hit after arming only
//            | 'once'                   -- fire on the first hit, then disarm
//            | 'p' '=' PROB             -- fire with probability PROB per hit
//            | 'seed' '=' N             -- seed for the p= RNG (deterministic)
//
// `delay` and `abort` are applied by the framework inside fire(); `errno`,
// `short` and `drop` are returned to the call site, which applies the
// semantics it documents (see the registry table in docs/robustness.md).
// Call sites ignore actions they do not support.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lclgrid::support::faultpoint {

enum class Action : std::uint8_t {
  kNone = 0,
  kErrno,   // fail with errnoValue
  kShort,   // clamp one I/O call to `arg` bytes
  kDelay,   // sleep `arg` ms (applied inside fire())
  kDrop,    // skip the operation entirely
  kAbort,   // std::abort() (applied inside fire())
};

const char* actionName(Action action);

/// What a fault point returned for one hit. kNone (the common case) means
/// "proceed normally".
struct Fired {
  Action action = Action::kNone;
  int errnoValue = 0;   // kErrno
  long long arg = 0;    // kShort: byte clamp; kDelay: milliseconds
  explicit operator bool() const { return action != Action::kNone; }
};

/// One armed behaviour for a point.
struct FaultSpec {
  Action action = Action::kNone;
  int errnoValue = 0;
  long long arg = 0;
  /// Fire on exactly the Nth hit after arming (1-based); 0 = every
  /// eligible hit. Firing an nth trigger disarms the point.
  long long nth = 0;
  /// Disarm after the first firing.
  bool oneShot = false;
  /// Fire with this probability per hit (1.0 = always), from a seeded
  /// xorshift stream so chaos runs are reproducible.
  double probability = 1.0;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

namespace detail {
// Count of currently armed points across the process. The fast path is a
// single relaxed load of this.
extern std::atomic<int> gArmedPoints;
Fired fireSlow(std::uint32_t index);
std::uint32_t registerPoint(const char* name);
}  // namespace detail

/// A registered fault point. Construct through FAULT_POINT (a
/// function-local static, mirroring telemetry's probe-site idiom);
/// registration is idempotent per name.
class FaultPoint {
 public:
  explicit FaultPoint(const char* name) : index_(detail::registerPoint(name)) {}

  /// Returns the action to apply at this site for this hit (kNone unless
  /// an armed spec's trigger fires). kDelay sleeps and kAbort aborts
  /// before returning.
  Fired fire() const {
    if (detail::gArmedPoints.load(std::memory_order_relaxed) == 0) return {};
    return detail::fireSlow(index_);
  }

 private:
  std::uint32_t index_;
};

/// The probe-site macro: registers once, evaluates the point's armed spec
/// for this hit.
#define FAULT_POINT(name_literal)                                       \
  ([]() -> ::lclgrid::support::faultpoint::Fired {                      \
    static ::lclgrid::support::faultpoint::FaultPoint point(            \
        name_literal);                                                  \
    return point.fire();                                                \
  }())

// --- control API (tests, chaos harnesses) ----------------------------------

/// Arm `point` with `spec`. The point need not be registered yet -- the
/// arming binds when the first FAULT_POINT with that name executes. Resets
/// the point's hit counter. Throws std::invalid_argument on a kNone spec.
void arm(std::string_view point, const FaultSpec& spec);

/// Parse and arm one grammar entry ("point:action[@trigger...]"). Throws
/// std::invalid_argument on a malformed entry.
void armEntry(std::string_view entry);

/// Parse and arm a full comma-separated spec string; returns the number of
/// entries armed. Throws std::invalid_argument on the first malformed entry.
int armSpecString(std::string_view spec);

/// Disarm one point / all points. Counters are retained until re-arm.
void disarm(std::string_view point);
void disarmAll();

/// Hits observed by `point` since it was last armed (0 when never armed;
/// the unarmed fast path does not count).
long long hitCount(std::string_view point);
/// Times `point`'s trigger fired since registration.
long long firedCount(std::string_view point);

struct PointInfo {
  std::string name;
  bool armed = false;
  long long hits = 0;
  long long fired = 0;
};

/// Every point registered so far, sorted by name. Registration is lazy
/// (first execution of the FAULT_POINT site), so run the code paths first.
std::vector<PointInfo> registeredPoints();

/// Parse one grammar entry without arming (exposed for tests).
FaultSpec parseEntry(std::string_view entry, std::string* pointName);

}  // namespace lclgrid::support::faultpoint
