#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace lclgrid {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("AsciiTable: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto renderRow = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  std::string separator = "+";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    separator += std::string(widths[c] + 2, '-') + "+";
  }
  separator += "\n";

  os << separator << renderRow(header_) << separator;
  for (const auto& row : rows_) os << renderRow(row);
  os << separator;
  return os.str();
}

std::string fmtInt(long long v) { return std::to_string(v); }

std::string fmtDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmtBool(bool v) { return v ? "yes" : "no"; }

}  // namespace lclgrid
