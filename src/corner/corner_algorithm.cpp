#include "corner/corner_algorithm.hpp"

#include <deque>
#include <stdexcept>

namespace lclgrid::corner {

CornerRun solveCornerCoordination(const BoundedGrid& grid,
                                  const std::vector<std::uint64_t>& ids) {
  if (static_cast<int>(ids.size()) != grid.size()) {
    throw std::invalid_argument("solveCornerCoordination: id count mismatch");
  }
  const int m = grid.m();
  CornerRun run;
  run.labelling.edges.assign(static_cast<std::size_t>(2 * grid.size()),
                             EdgeDir::None);
  // Information has to travel the length of a side for the two corners of
  // the side to be compared: m-1 hops each way, plus one announcement round.
  run.rounds = m + 1;

  // Directs the side from corner `a` towards corner `b` when id(a) < id(b).
  // The side runs along `axis` (0 = bottom/top rows, 1 = left/right cols).
  auto directSide = [&](int cornerA, int cornerB, bool horizontal) {
    int from = ids[static_cast<std::size_t>(cornerA)] <
                       ids[static_cast<std::size_t>(cornerB)]
                   ? cornerA
                   : cornerB;
    int to = from == cornerA ? cornerB : cornerA;
    // Walk from `from` to `to` setting each edge forward along the walk.
    int steps = m - 1;
    int sign = horizontal ? (grid.xOf(to) > grid.xOf(from) ? 1 : -1)
                          : (grid.yOf(to) > grid.yOf(from) ? 1 : -1);
    int current = from;
    for (int i = 0; i < steps; ++i) {
      int x = grid.xOf(current), y = grid.yOf(current);
      if (horizontal) {
        int owner = sign > 0 ? current : grid.id(x - 1, y);
        run.labelling.edges[static_cast<std::size_t>(2 * owner + 1)] =
            sign > 0 ? EdgeDir::Forward : EdgeDir::Backward;
        current = grid.id(x + sign, y);
      } else {
        int owner = sign > 0 ? current : grid.id(x, y - 1);
        run.labelling.edges[static_cast<std::size_t>(2 * owner)] =
            sign > 0 ? EdgeDir::Forward : EdgeDir::Backward;
        current = grid.id(x, y + sign);
      }
    }
  };

  int bl = grid.id(0, 0);
  int br = grid.id(m - 1, 0);
  int tl = grid.id(0, m - 1);
  int tr = grid.id(m - 1, m - 1);
  directSide(bl, br, /*horizontal=*/true);   // south side
  directSide(tl, tr, /*horizontal=*/true);   // north side
  directSide(bl, tl, /*horizontal=*/false);  // west side
  directSide(br, tr, /*horizontal=*/false);  // east side

  run.solved = true;
  return run;
}

long long cornerBallSize(const BoundedGrid& grid, int radius) {
  // BFS from corner (0,0).
  std::vector<int> distance(static_cast<std::size_t>(grid.size()), -1);
  std::deque<int> queue{grid.id(0, 0)};
  distance[static_cast<std::size_t>(grid.id(0, 0))] = 0;
  long long count = 0;
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    if (distance[static_cast<std::size_t>(v)] > radius) continue;
    ++count;
    for (int u : grid.neighbours(v)) {
      if (distance[static_cast<std::size_t>(u)] < 0) {
        distance[static_cast<std::size_t>(u)] =
            distance[static_cast<std::size_t>(v)] + 1;
        if (distance[static_cast<std::size_t>(u)] <= radius) queue.push_back(u);
      }
    }
  }
  return count;
}

}  // namespace lclgrid::corner
