#include "corner/corner_problem.hpp"

#include <sstream>

namespace lclgrid::corner {

namespace {

struct DirectedEdge {
  int from;
  int to;
};

}  // namespace

std::vector<CornerViolation> listCornerViolations(
    const BoundedGrid& grid, const CornerLabelling& labelling,
    int maxReported) {
  std::vector<CornerViolation> violations;
  auto report = [&](const char* rule, const std::string& what) {
    if (static_cast<int>(violations.size()) < maxReported) {
      violations.push_back({rule, what});
    }
  };
  if (static_cast<int>(labelling.edges.size()) != 2 * grid.size()) {
    report("R0", "labelling size mismatch");
    return violations;
  }

  // Collect directed edges; edge slots of nonexistent edges must be None.
  std::vector<DirectedEdge> edges;
  for (int v = 0; v < grid.size(); ++v) {
    for (int slot = 0; slot < 2; ++slot) {
      Dir direction = slot == 0 ? Dir::North : Dir::East;
      EdgeDir state = labelling.edges[static_cast<std::size_t>(2 * v + slot)];
      auto neighbour = grid.neighbour(v, direction);
      if (!neighbour) {
        if (state != EdgeDir::None) report("R0", "direction on missing edge");
        continue;
      }
      if (state == EdgeDir::Forward) edges.push_back({v, *neighbour});
      if (state == EdgeDir::Backward) edges.push_back({*neighbour, v});
    }
  }

  std::vector<int> outDeg(static_cast<std::size_t>(grid.size()), 0);
  std::vector<int> inDeg(static_cast<std::size_t>(grid.size()), 0);
  std::vector<int> outEdge(static_cast<std::size_t>(grid.size()), -1);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    outDeg[static_cast<std::size_t>(edges[e].from)]++;
    inDeg[static_cast<std::size_t>(edges[e].to)]++;
    outEdge[static_cast<std::size_t>(edges[e].from)] = static_cast<int>(e);
  }

  // R1/R4: non-corner nodes lie on at most one tree: in- and out-degree at
  // most 1. (Corners have only two incident edges, so their degrees are
  // bounded automatically; they may join two trees.)
  for (int v = 0; v < grid.size(); ++v) {
    if (grid.isCorner(v)) continue;
    if (outDeg[static_cast<std::size_t>(v)] > 1) {
      report("R1", "non-corner node with two outgoing edges");
    }
    if (inDeg[static_cast<std::size_t>(v)] > 1) {
      report("R4", "two trees meet at a non-corner node");
    }
  }
  if (!violations.empty()) return violations;

  // Segments: maximal directed paths, broken at corners. A segment must
  // start and end at corners (R3) and respect row/column contiguity (R2).
  std::vector<std::uint8_t> edgeVisited(edges.size(), 0);
  auto walkSegment = [&](std::size_t firstEdge) {
    int steps = 0;
    // R2 bookkeeping: runs per row/column along the node sequence.
    std::vector<int> rowEntries(static_cast<std::size_t>(grid.m()), 0);
    std::vector<int> colEntries(static_cast<std::size_t>(grid.m()), 0);
    int previousRow = -1, previousCol = -1;
    auto visit = [&](int node) {
      int row = grid.yOf(node), col = grid.xOf(node);
      if (row != previousRow) {
        rowEntries[static_cast<std::size_t>(row)]++;
        if (rowEntries[static_cast<std::size_t>(row)] > 1) {
          report("R2", "segment crosses a row twice");
        }
      }
      if (col != previousCol) {
        colEntries[static_cast<std::size_t>(col)]++;
        if (colEntries[static_cast<std::size_t>(col)] > 1) {
          report("R2", "segment crosses a column twice");
        }
      }
      previousRow = row;
      previousCol = col;
    };

    std::size_t e = firstEdge;
    visit(edges[e].from);
    while (true) {
      if (edgeVisited[e]) break;  // safety against cycles
      edgeVisited[e] = 1;
      ++steps;
      int node = edges[e].to;
      visit(node);
      if (grid.isCorner(node)) return;  // proper end (leaf at a corner)
      int next = outEdge[static_cast<std::size_t>(node)];
      if (next < 0) {
        report("R3", "segment ends at a non-corner node");
        return;
      }
      e = static_cast<std::size_t>(next);
    }
  };

  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (edgeVisited[e]) continue;
    int start = edges[e].from;
    // A segment starts at a corner, or at a node with no incoming edge.
    bool isStart = grid.isCorner(start) ||
                   inDeg[static_cast<std::size_t>(start)] == 0;
    if (!isStart) continue;
    if (!grid.isCorner(start) && inDeg[static_cast<std::size_t>(start)] == 0) {
      report("R3", "segment starts (roots) at a non-corner node");
    }
    walkSegment(e);
  }
  // Remaining unvisited edges belong to corner-free directed cycles.
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (!edgeVisited[e]) {
      walkSegment(e);  // R2 flags the revisit inherent to grid cycles
      report("R3", "directed cycle without corners");
      break;
    }
  }

  // R5: every corner is the root or leaf of at least one tree.
  for (int cornerNode : grid.corners()) {
    if (outDeg[static_cast<std::size_t>(cornerNode)] +
            inDeg[static_cast<std::size_t>(cornerNode)] ==
        0) {
      std::ostringstream os;
      os << "corner (" << grid.xOf(cornerNode) << "," << grid.yOf(cornerNode)
         << ") is in no tree";
      report("R5", os.str());
    }
  }
  return violations;
}

bool verifyCornerLabelling(const BoundedGrid& grid,
                           const CornerLabelling& labelling) {
  return listCornerViolations(grid, labelling, 1).empty();
}

}  // namespace lclgrid::corner
