// The corner coordination problem (Appendix A.3): an LCL on general graphs
// with complexity Theta(sqrt n). On a bounded grid, nodes must direct edges
// so that the directed edges form pseudotrees satisfying:
//   (1) within each tree, every node has at most one outgoing edge;
//   (2) consistent orientation: a path of a tree crosses each row and each
//       column at most once (equivalently, its visit to any row/column is
//       one contiguous run);
//   (3) only corner nodes can be roots or leaves;
//   (4) distinct trees meet only at corners (or broken nodes);
//   (5) every corner is the root or leaf of at least one tree.
// The canonical solutions direct each boundary side corner-to-corner, which
// requires the two side corners to agree -- coordination over distance
// sqrt(n), hence the complexity.
#pragma once

#include <string>
#include <vector>

#include "grid/bounded_grid.hpp"

namespace lclgrid::corner {

/// Orientation of an edge of the bounded grid; edges are identified by
/// (node, direction) with direction in {North, East} owned by `node`.
enum class EdgeDir : std::uint8_t { None, Forward, Backward };
// Forward: node -> neighbour(North/East); Backward: the reverse.

struct CornerLabelling {
  /// edge (v, North) at index 2*v, edge (v, East) at 2*v+1; edges that do
  /// not exist (boundary) must stay None.
  std::vector<EdgeDir> edges;
};

struct CornerViolation {
  std::string rule;  // "R1".."R5"
  std::string description;
};

std::vector<CornerViolation> listCornerViolations(
    const BoundedGrid& grid, const CornerLabelling& labelling,
    int maxReported = 8);

bool verifyCornerLabelling(const BoundedGrid& grid,
                           const CornerLabelling& labelling);

}  // namespace lclgrid::corner
