// The Theta(sqrt n) upper bound for corner coordination (Theorem 27): every
// boundary node walks the boundary in both directions until it has seen the
// two corners of its side (at most ~2*sqrt(n) hops, cf. Proposition 28),
// then the side is directed from its smaller-identifier corner to the
// larger one. Every side becomes one corner-to-corner path, satisfying all
// five pseudotree rules; internal nodes output nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "corner/corner_problem.hpp"
#include "grid/bounded_grid.hpp"

namespace lclgrid::corner {

struct CornerRun {
  bool solved = false;
  CornerLabelling labelling;
  int rounds = 0;
};

CornerRun solveCornerCoordination(const BoundedGrid& grid,
                                  const std::vector<std::uint64_t>& ids);

/// |B_r(corner)| on the bounded grid (Proposition 28: (r+2 choose 2) while
/// the ball sees no other corner or boundary irregularity).
long long cornerBallSize(const BoundedGrid& grid, int radius);

}  // namespace lclgrid::corner
