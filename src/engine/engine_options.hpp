// The knob struct shared by every threaded entry point in the library.
// Deliberately free of <thread>-family includes: lcl/verifier.hpp includes
// this (not the pool itself) to declare its threaded overloads, so the lcl
// translation units stay lean and the engine -> lcl library dependency has
// no include cycle back. The overload *definitions* live in lclgrid_engine
// (src/engine/parallel_verifier.cpp); link that library (or the umbrella
// `lclgrid` target) to call them.
#pragma once

#include <cstdint>

namespace lclgrid::engine {

class ThreadPool;

/// Worker lanes used when EngineOptions::threads == 0: the LCLGRID_THREADS
/// environment variable if set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (at least 1).
int defaultThreads();

struct EngineOptions {
  /// Total lanes (including the calling thread); 0 means defaultThreads(),
  /// 1 means run serially on the caller. A non-default count with a null
  /// `pool` spins up (and joins) a private pool *per call* -- fine for a
  /// one-off, but hot loops wanting a non-default count should construct a
  /// ThreadPool once and pass it via `pool` (as the benches do).
  int threads = 0;
  /// Work items per chunk: grid rows for single-labelling verification (on
  /// every code path -- the node-indexed fallback scales the row grain
  /// internally), labellings for the batch entry points. FamilySweep
  /// always runs one problem per task regardless (a slow classification
  /// must not serialise chunk-mates).
  /// 0 picks a size that yields a few chunks per lane -- that auto size
  /// depends on the lane count, which is harmless for the verifier's
  /// associative integer counts (identical for every chunking). Pass an
  /// explicit grain to fix the chunk boundaries themselves, which makes
  /// even non-associative reductions bit-identical across thread counts.
  std::int64_t grain = 0;
  /// Optional existing pool to run on (non-owning). When null, `threads`
  /// selects the process-global pool or a temporary one.
  ThreadPool* pool = nullptr;
};

}  // namespace lclgrid::engine
