// The sharded parallel verifier: the threaded overloads declared in
// lcl/verifier.hpp. A single labelling is sharded by grid rows (the flat
// row-pointer kernel is allocation-free and data-parallel); batches run one
// labelling per chunk. Per-shard violation counts are combined in shard
// order, so every result is bit-identical to the serial engine -- the
// determinism tests pin this down for 1/2/8 threads on every registry
// problem.
#include <atomic>
#include <stdexcept>

#include "engine/thread_pool.hpp"
#include "lcl/verifier.hpp"

namespace lclgrid {

namespace {

using verifier_detail::allLabelsInRange;
using verifier_detail::functionalViolationRange;
using verifier_detail::tableViolationRows;

/// EngineOptions::grain counts grid rows for a single labelling; the
/// functional fallback shards by node index, so the row grain is scaled by
/// the row length to keep the chunk payload (and hence the scheduling
/// overhead) identical on both paths.
std::int64_t nodeGrain(std::int64_t rowGrain, const Torus2D& torus) {
  return rowGrain > 0 ? rowGrain * torus.n() : 0;
}

/// Sharded table-path precondition check. The serial allLabelsInRange scan
/// would sit in front of the parallel kernel as a serial O(N) pass (a
/// material Amdahl fraction -- the kernel itself is only a few loads per
/// node), so the scan is sharded too, with chunks after the first
/// out-of-range find returning immediately.
bool shardedAllInRange(engine::ThreadPool& pool, std::int64_t grain,
                       const Torus2D& torus, int sigma,
                       std::span<const int> labels) {
  std::atomic<bool> outOfRange{false};
  pool.parallelFor(
      0, static_cast<std::int64_t>(labels.size()), nodeGrain(grain, torus),
      [&](std::int64_t begin, std::int64_t end) {
        if (outOfRange.load(std::memory_order_relaxed)) return;
        if (!allLabelsInRange(
                sigma, labels.subspan(static_cast<std::size_t>(begin),
                                      static_cast<std::size_t>(end - begin)))) {
          outOfRange.store(true, std::memory_order_relaxed);
        }
      });
  return !outOfRange.load();
}

/// Sharded violation count over one labelling; exact same shard kernels as
/// the serial path, summed in shard order.
std::int64_t shardedCount(engine::ThreadPool& pool, std::int64_t grain,
                          const Torus2D& torus, const GridLcl& lcl,
                          std::span<const int> labels) {
  if (static_cast<int>(labels.size()) != torus.size()) {
    throw std::invalid_argument("verifier: labelling size mismatch");
  }
  const auto sum = [](std::int64_t a, std::int64_t b) { return a + b; };
  if (lcl.hasTable() &&
      shardedAllInRange(pool, grain, torus, lcl.sigma(), labels)) {
    return pool.parallelReduce(
        0, torus.n(), grain, std::int64_t{0},
        [&](std::int64_t yBegin, std::int64_t yEnd) {
          return tableViolationRows(lcl.table(), torus.n(), labels.data(),
                                    static_cast<int>(yBegin),
                                    static_cast<int>(yEnd),
                                    /*stopAtFirst=*/false);
        },
        sum);
  }
  return pool.parallelReduce(
      0, torus.size(), nodeGrain(grain, torus), std::int64_t{0},
      [&](std::int64_t vBegin, std::int64_t vEnd) {
        return functionalViolationRange(torus, lcl, labels,
                                        static_cast<int>(vBegin),
                                        static_cast<int>(vEnd),
                                        /*stopAtFirst=*/false);
      },
      sum);
}

/// Sharded feasibility check with cooperative early exit: shards that start
/// after a violation was found return immediately. The boolean outcome is
/// scheduling-independent either way.
bool shardedVerify(engine::ThreadPool& pool, std::int64_t grain,
                   const Torus2D& torus, const GridLcl& lcl,
                   std::span<const int> labels) {
  if (static_cast<int>(labels.size()) != torus.size()) {
    throw std::invalid_argument("verifier: labelling size mismatch");
  }
  std::atomic<bool> violated{false};
  const bool tablePath =
      lcl.hasTable() && shardedAllInRange(pool, grain, torus, lcl.sigma(), labels);
  const std::int64_t items = tablePath ? torus.n() : torus.size();
  pool.parallelFor(0, items, tablePath ? grain : nodeGrain(grain, torus),
                   [&](std::int64_t begin, std::int64_t end) {
                     if (violated.load(std::memory_order_relaxed)) return;
                     const std::int64_t bad =
                         tablePath
                             ? tableViolationRows(
                                   lcl.table(), torus.n(), labels.data(),
                                   static_cast<int>(begin),
                                   static_cast<int>(end), /*stopAtFirst=*/true)
                             : functionalViolationRange(
                                   torus, lcl, labels, static_cast<int>(begin),
                                   static_cast<int>(end),
                                   /*stopAtFirst=*/true);
                     if (bad > 0) {
                       violated.store(true, std::memory_order_relaxed);
                     }
                   });
  return !violated.load();
}

}  // namespace

bool verify(const Torus2D& torus, const GridLcl& lcl,
            std::span<const int> labels,
            const engine::EngineOptions& options) {
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) return verify(torus, lcl, labels);
  return shardedVerify(handle.pool(), options.grain, torus, lcl, labels);
}

std::int64_t countViolations(const Torus2D& torus, const GridLcl& lcl,
                             std::span<const int> labels,
                             const engine::EngineOptions& options) {
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) return countViolations(torus, lcl, labels);
  return shardedCount(handle.pool(), options.grain, torus, lcl, labels);
}

std::vector<std::uint8_t> verifyBatch(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labelsBatch,
                                      const engine::EngineOptions& options) {
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) {
    return verifyBatch(torus, lcl, labelsBatch);
  }
  const std::size_t count = verifier_detail::batchCount(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::uint8_t> feasible(count, 0);
  if (count == 1) {
    // Auto row grain rather than options.grain: the caller's grain counts
    // labellings on the batch entry points, not grid rows.
    feasible[0] =
        shardedVerify(handle.pool(), /*grain=*/0, torus, lcl, labelsBatch)
            ? 1
            : 0;
    return feasible;
  }
  // One labelling per work item; each shard owns its result slots.
  // options.grain counts labellings per chunk here (0 = auto).
  handle.pool().parallelFor(
      0, static_cast<std::int64_t>(count), options.grain,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          feasible[static_cast<std::size_t>(i)] =
              verify(torus, lcl,
                     labelsBatch.subspan(static_cast<std::size_t>(i) * stride,
                                         stride))
                  ? 1
                  : 0;
        }
      });
  return feasible;
}

std::vector<std::int64_t> countViolationsBatch(
    const Torus2D& torus, const GridLcl& lcl, std::span<const int> labelsBatch,
    const engine::EngineOptions& options) {
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) {
    return countViolationsBatch(torus, lcl, labelsBatch);
  }
  const std::size_t count = verifier_detail::batchCount(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::int64_t> violations(count, 0);
  if (count == 1) {
    // Auto row grain, as in verifyBatch: batch grain counts labellings.
    violations[0] =
        shardedCount(handle.pool(), /*grain=*/0, torus, lcl, labelsBatch);
    return violations;
  }
  handle.pool().parallelFor(
      0, static_cast<std::int64_t>(count), options.grain,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          violations[static_cast<std::size_t>(i)] = countViolations(
              torus, lcl,
              labelsBatch.subspan(static_cast<std::size_t>(i) * stride,
                                  stride));
        }
      });
  return violations;
}

std::vector<std::uint8_t> verifyBatch(
    const GridLcl& lcl, std::span<const LabellingInstance> instances,
    const engine::EngineOptions& options) {
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) return verifyBatch(lcl, instances);
  for (const LabellingInstance& instance : instances) {
    if (instance.torus == nullptr) {
      throw std::invalid_argument("verifyBatch: null torus in instance");
    }
  }
  std::vector<std::uint8_t> feasible(instances.size(), 0);
  handle.pool().parallelFor(
      0, static_cast<std::int64_t>(instances.size()), options.grain,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const LabellingInstance& instance =
              instances[static_cast<std::size_t>(i)];
          feasible[static_cast<std::size_t>(i)] =
              verify(*instance.torus, lcl, instance.labels) ? 1 : 0;
        }
      });
  return feasible;
}

}  // namespace lclgrid
