// The threaded verification overloads declared in lcl/verifier.hpp and
// lcl/stream_verify.hpp. Since the unified front door (lcl/verify_api.hpp)
// landed, the in-core overloads here are thin forwarders: they validate the
// single-labelling/batch shape their signature promises, build a
// VerifyRequest and dispatch through verify(VerifyRequest) -- one tier
// selection, one sharding scheme (engine/shard_detail.hpp), bit-identical
// to what these overloads computed before the redesign (the determinism
// tests pin this at 1/2/8 threads). The streaming overloads shard each
// slab of the stream pass through the pool directly; their slab walk is
// stream_verify_detail::runStreamPass, shared with the serial entries.
#include <cstddef>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "engine/shard_detail.hpp"
#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"
#include "lcl/verify_api.hpp"

namespace lclgrid {

namespace {

namespace sd = engine::shard_detail;

/// Shared forwarder body for the four in-core single-labelling overloads.
template <typename Torus, typename Lcl>
VerifyResult forwardSingle(const Torus& torus, const Lcl& lcl,
                           std::span<const int> labels,
                           const engine::EngineOptions& options,
                           bool countViolations) {
  // The single-labelling overloads reject any other span shape outright; a
  // whole multiple of torus.size() must not silently become a batch here.
  sd::checkLabelling(torus, lcl, labels);
  VerifyRequest request;
  if constexpr (std::is_same_v<Torus, Torus2D>) {
    request.problem = &lcl;
    request.torus = &torus;
  } else {
    request.problemD = &lcl;
    request.torusD = &torus;
  }
  request.labels = labels;
  request.options.countViolations = countViolations;
  request.options.engine = options;
  return verify(request);
}

/// Shared forwarder body for the four in-core batch overloads. On the
/// batch entry points options.grain counts labellings, and a one-labelling
/// batch runs the sharded single-labelling path with auto item grain --
/// the pre-redesign contract, preserved by zeroing the grain.
template <typename Torus, typename Lcl>
VerifyResult forwardBatch(const Torus& torus, const Lcl& lcl,
                          std::span<const int> labelsBatch,
                          const engine::EngineOptions& options,
                          bool countViolations) {
  const std::size_t count = sd::batchCountOf(torus, labelsBatch);
  VerifyRequest request;
  if constexpr (std::is_same_v<Torus, Torus2D>) {
    request.problem = &lcl;
    request.torus = &torus;
  } else {
    request.problemD = &lcl;
    request.torusD = &torus;
  }
  request.labels = labelsBatch;
  request.options.countViolations = countViolations;
  request.options.engine = options;
  if (count == 1) request.options.engine.grain = 0;
  return verify(request);
}

}  // namespace

// --- streaming (out-of-core) overloads -------------------------------------

std::int64_t streamCountViolations(const StreamLabelling& file,
                                   const GridLcl& lcl,
                                   const engine::EngineOptions& options,
                                   const StreamWindow& window) {
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) {
    return streamCountViolations(file, lcl, window);
  }
  stream_verify_detail::checkStream2D(file, lcl);
  const Torus2D torus(file.n());
  return sd::shardedStream(handle.pool(), options.grain, file, lcl, torus,
                           window, /*stopAtFirst=*/false);
}

bool streamVerify(const StreamLabelling& file, const GridLcl& lcl,
                  const engine::EngineOptions& options,
                  const StreamWindow& window) {
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) return streamVerify(file, lcl, window);
  stream_verify_detail::checkStream2D(file, lcl);
  const Torus2D torus(file.n());
  return sd::shardedStream(handle.pool(), options.grain, file, lcl, torus,
                           window, /*stopAtFirst=*/true) == 0;
}

std::int64_t streamCountViolations(const StreamLabelling& file,
                                   const GridLclD& lcl,
                                   const engine::EngineOptions& options,
                                   const StreamWindow& window) {
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) {
    return streamCountViolations(file, lcl, window);
  }
  stream_verify_detail::checkStreamD(file, lcl);
  const TorusD torus(file.dims(), file.n());
  return sd::shardedStream(handle.pool(), options.grain, file, lcl, torus,
                           window, /*stopAtFirst=*/false);
}

bool streamVerify(const StreamLabelling& file, const GridLclD& lcl,
                  const engine::EngineOptions& options,
                  const StreamWindow& window) {
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) return streamVerify(file, lcl, window);
  stream_verify_detail::checkStreamD(file, lcl);
  const TorusD torus(file.dims(), file.n());
  return sd::shardedStream(handle.pool(), options.grain, file, lcl, torus,
                           window, /*stopAtFirst=*/true) == 0;
}

// --- Torus2D ---------------------------------------------------------------

bool verify(const Torus2D& torus, const GridLcl& lcl,
            std::span<const int> labels,
            const engine::EngineOptions& options) {
  return forwardSingle(torus, lcl, labels, options,
                       /*countViolations=*/false)
      .feasible;
}

std::int64_t countViolations(const Torus2D& torus, const GridLcl& lcl,
                             std::span<const int> labels,
                             const engine::EngineOptions& options) {
  return forwardSingle(torus, lcl, labels, options, /*countViolations=*/true)
      .violations;
}

std::vector<std::uint8_t> verifyBatch(const Torus2D& torus, const GridLcl& lcl,
                                      std::span<const int> labelsBatch,
                                      const engine::EngineOptions& options) {
  VerifyResult result =
      forwardBatch(torus, lcl, labelsBatch, options, /*countViolations=*/false);
  if (result.labellings == 1) return {result.feasible ? std::uint8_t{1}
                                                      : std::uint8_t{0}};
  return std::move(result.feasiblePerLabelling);
}

std::vector<std::int64_t> countViolationsBatch(
    const Torus2D& torus, const GridLcl& lcl, std::span<const int> labelsBatch,
    const engine::EngineOptions& options) {
  VerifyResult result =
      forwardBatch(torus, lcl, labelsBatch, options, /*countViolations=*/true);
  if (result.labellings == 1) return {result.violations};
  return std::move(result.violationsPerLabelling);
}

std::vector<std::uint8_t> verifyBatch(
    const GridLcl& lcl, std::span<const LabellingInstance> instances,
    const engine::EngineOptions& options) {
  // Heterogeneous tori: not expressible as one VerifyRequest (which names a
  // single geometry), so this overload keeps its direct implementation --
  // one serial verification per instance, chunked across the pool.
  engine::PoolHandle handle(options);
  if (handle.pool().lanes() == 1) return verifyBatch(lcl, instances);
  for (const LabellingInstance& instance : instances) {
    if (instance.torus == nullptr) {
      throw std::invalid_argument("verifyBatch: null torus in instance");
    }
  }
  std::vector<std::uint8_t> feasible(instances.size(), 0);
  handle.pool().parallelFor(
      0, static_cast<std::int64_t>(instances.size()), options.grain,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const LabellingInstance& instance =
              instances[static_cast<std::size_t>(i)];
          feasible[static_cast<std::size_t>(i)] =
              verify(*instance.torus, lcl, instance.labels) ? 1 : 0;
        }
      });
  return feasible;
}

// --- TorusD ----------------------------------------------------------------

bool verify(const TorusD& torus, const GridLclD& lcl,
            std::span<const int> labels,
            const engine::EngineOptions& options) {
  return forwardSingle(torus, lcl, labels, options,
                       /*countViolations=*/false)
      .feasible;
}

std::int64_t countViolations(const TorusD& torus, const GridLclD& lcl,
                             std::span<const int> labels,
                             const engine::EngineOptions& options) {
  return forwardSingle(torus, lcl, labels, options, /*countViolations=*/true)
      .violations;
}

std::vector<std::uint8_t> verifyBatch(const TorusD& torus, const GridLclD& lcl,
                                      std::span<const int> labelsBatch,
                                      const engine::EngineOptions& options) {
  VerifyResult result =
      forwardBatch(torus, lcl, labelsBatch, options, /*countViolations=*/false);
  if (result.labellings == 1) return {result.feasible ? std::uint8_t{1}
                                                      : std::uint8_t{0}};
  return std::move(result.feasiblePerLabelling);
}

std::vector<std::int64_t> countViolationsBatch(
    const TorusD& torus, const GridLclD& lcl, std::span<const int> labelsBatch,
    const engine::EngineOptions& options) {
  VerifyResult result =
      forwardBatch(torus, lcl, labelsBatch, options, /*countViolations=*/true);
  if (result.labellings == 1) return {result.violations};
  return std::move(result.violationsPerLabelling);
}

}  // namespace lclgrid
