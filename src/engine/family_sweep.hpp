// The concurrent family sweep driver: runs the Section 7 oracle pipeline
// (synthesis probes + classifyOnGrid) over a whole problem family on the
// work-stealing pool, one problem per task. This is the "multi-instance
// workload" of the ROADMAP -- the machine-classification loop behind
// surveys like Chang's (arXiv:2311.06726), where whole families of LCLs are
// classified mechanically.
//
// Results are cached by LclTable content fingerprint: a family that
// contains the same relation twice (e.g. the same problem under two names,
// or a combinator composition that collapses to a known table) runs the
// oracle once and fans the report out. Problems without a compiled table
// (alphabets beyond the table limits) bypass the cache.
//
// Determinism: entries come back in family order, and unique problems are
// classified independently (classifyOnGrid takes no shared mutable state,
// see synthesis/oracle.hpp), so the report content is independent of
// scheduling and thread count; only per-entry wall times vary.
//
// Incremental SAT: each classification task owns one live solver pipeline
// (FeasibilityProber + IncrementalSynthesizer) for its whole probe/synthesis
// ladder -- solver instances are reused *within* a task, never shared
// across pool threads, per sat::Solver's thread-safety contract. The
// differential suite (tests/test_differential.cpp) pins sweep verdicts to
// the fresh-solver-per-instance reference at 1/2/8 threads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"
#include "lcl/grid_lcl.hpp"
#include "synthesis/oracle.hpp"

namespace lclgrid::engine {

struct SweepOptions {
  synthesis::OracleOptions oracle;
  EngineOptions engine;
  /// Reuse oracle reports across equal-fingerprint problems (default on;
  /// turn off to force one oracle run per family member, e.g. for timing).
  bool cacheByFingerprint = true;
};

struct SweepEntry {
  std::string problem;            // GridLcl::name()
  std::uint64_t fingerprint = 0;  // 0 iff the problem has no compiled table
  /// True iff this entry reused the report of an earlier equal-fingerprint
  /// family member instead of running the oracle.
  bool cacheHit = false;
  /// For an entry that ran the oracle: how many later family members reused
  /// its report (0 for cache-hit entries and never-reused runners).
  int fingerprintHits = 0;
  double seconds = 0.0;  // oracle wall time; 0 for cache hits
  std::shared_ptr<const synthesis::OracleReport> report;
};

struct SweepReport {
  std::vector<SweepEntry> entries;  // in family order
  int oracleRuns = 0;
  int cacheHits = 0;
  int threads = 1;
  double seconds = 0.0;  // wall time of the whole sweep
};

/// Classifies every problem of the family; unique fingerprints run
/// concurrently on the pool selected by options.engine.
SweepReport sweepFamily(std::span<const GridLcl> family,
                        const SweepOptions& options = {});

/// Structured report in the repo-wide JSON schema
/// {name, config, results[]}; results carry one object per family member
/// (problem, fingerprint, complexity, cache_hit, probe outcomes, timings).
std::string sweepReportJson(const SweepReport& report,
                            const SweepOptions& options);

}  // namespace lclgrid::engine
