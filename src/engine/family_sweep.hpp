// The concurrent family sweep driver: runs the Section 7 oracle pipeline
// (synthesis probes + classifyOnGrid) over a whole problem family on the
// work-stealing pool, one problem per task. This is the "multi-instance
// workload" of the ROADMAP -- the machine-classification loop behind
// surveys like Chang's (arXiv:2311.06726), where whole families of LCLs are
// classified mechanically.
//
// Results are cached by LclTable content fingerprint: a family that
// contains the same relation twice (e.g. the same problem under two names,
// or a combinator composition that collapses to a known table) runs the
// oracle once and fans the report out. Problems without a compiled table
// (alphabets beyond the table limits) bypass the cache.
//
// Determinism: entries come back in family order, and unique problems are
// classified independently (classifyOnGrid takes no shared mutable state,
// see synthesis/oracle.hpp), so the report content is independent of
// scheduling and thread count; only per-entry wall times vary.
//
// Incremental SAT: each classification task owns one live solver pipeline
// (FeasibilityProber + IncrementalSynthesizer) for its whole probe/synthesis
// ladder -- solver instances are reused *within* a task, never shared
// across pool threads, per sat::Solver's thread-safety contract. The
// differential suite (tests/test_differential.cpp) pins sweep verdicts to
// the fresh-solver-per-instance reference at 1/2/8 threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cycle/classifier.hpp"
#include "cycle/cycle_lcl.hpp"
#include "engine/thread_pool.hpp"
#include "lcl/grid_lcl.hpp"
#include "lcl/lcl_table.hpp"
#include "support/lru_cache.hpp"
#include "synthesis/oracle.hpp"

namespace lclgrid::engine {

/// A capacity-bounded, thread-safe cache of oracle reports keyed by table
/// content fingerprint, for reuse *across* classification calls -- the
/// within-call dedup of sweepFamily is separate and always exact. Backed by
/// support::LruCache, so a long-lived holder (the verification service, a
/// REPL loop) cannot grow without bound; eviction is least-recently-used.
/// Each entry keeps a copy of the compiled table so a 64-bit fingerprint
/// collision is detected by exact content comparison and treated as a miss,
/// never served a wrong report. Uncompiled problems bypass the cache.
class ReportCache {
 public:
  /// `counterPrefix` registers "<prefix>.hits/.misses/.evictions" telemetry
  /// counters (empty: none).
  explicit ReportCache(std::size_t capacity,
                       std::string_view counterPrefix = "sweep.report_cache");

  /// The cached report for this problem's table content, or nullptr.
  std::shared_ptr<const synthesis::OracleReport> find(const GridLcl& problem);
  /// Caches the report under the problem's table fingerprint (no-op for
  /// uncompiled problems).
  void insert(const GridLcl& problem,
              std::shared_ptr<const synthesis::OracleReport> report);
  support::LruStats stats() const;

 private:
  struct Entry {
    LclTable table;  // exact-content guard behind the fingerprint key
    std::shared_ptr<const synthesis::OracleReport> report;
  };
  mutable std::mutex mutex_;
  support::LruCache<std::uint64_t, Entry> cache_;
};

struct SweepOptions {
  synthesis::OracleOptions oracle;
  EngineOptions engine;
  /// Reuse oracle reports across equal-fingerprint problems (default on;
  /// turn off to force one oracle run per family member, e.g. for timing).
  bool cacheByFingerprint = true;
  /// Optional cross-call report cache: designated runners consult it before
  /// running the oracle and publish their fresh reports into it afterwards.
  /// Both touches happen deterministically on the calling thread; the cache
  /// may be shared with concurrent classify() callers (it locks internally).
  ReportCache* reportCache = nullptr;
};

struct SweepEntry {
  std::string problem;            // GridLcl::name()
  std::uint64_t fingerprint = 0;  // 0 iff the problem has no compiled table
  /// True iff this entry reused the report of an earlier equal-fingerprint
  /// family member instead of running the oracle.
  bool cacheHit = false;
  /// For an entry that ran the oracle: how many later family members reused
  /// its report (0 for cache-hit entries and never-reused runners).
  int fingerprintHits = 0;
  double seconds = 0.0;  // oracle wall time; 0 for cache hits
  std::shared_ptr<const synthesis::OracleReport> report;
};

struct SweepReport {
  std::vector<SweepEntry> entries;  // in family order
  int oracleRuns = 0;
  int cacheHits = 0;
  int threads = 1;
  double seconds = 0.0;  // wall time of the whole sweep
};

/// Classifies every problem of the family; unique fingerprints run
/// concurrently on the pool selected by options.engine.
SweepReport sweepFamily(std::span<const GridLcl> family,
                        const SweepOptions& options = {});

/// Structured report in the repo-wide JSON schema
/// {name, config, results[]}; results carry one object per family member
/// (problem, fingerprint, complexity, cache_hit, probe outcomes, timings).
std::string sweepReportJson(const SweepReport& report,
                            const SweepOptions& options);

// --- the unified classification front door ---------------------------------
// One classify() entry for both classification engines of the repo: the
// grid oracle (synthesis::classifyOnGrid -- one-sided, Section 7) and the
// decidable cycle classifier (cycle::classifyCycleLcl -- Claim 1). The
// verification service dispatches classification requests exclusively
// through these; sweepFamily remains the batched driver on top of the same
// oracle and the same ReportCache.

struct ClassifyOptions {
  synthesis::OracleOptions oracle;  // grid requests only
  /// Optional cross-call report cache for grid requests (cycle
  /// classification is decidable and fast; it is never cached).
  ReportCache* reportCache = nullptr;
};

struct ClassifyResult {
  std::string problem;            // the problem's name()
  std::uint64_t fingerprint = 0;  // grid requests with a compiled table
  bool cacheHit = false;          // served from options.reportCache
  double seconds = 0.0;           // classification wall time (0 on cache hit)
  /// Complexity class name, uniform across both engines
  /// (synthesis::gridComplexityName / cycle::complexityName).
  std::string complexity;
  /// Grid requests: the full oracle report.
  std::shared_ptr<const synthesis::OracleReport> grid;
  /// Cycle requests: the full classification.
  std::optional<cycle::Classification> cycle;
};

/// Classifies one grid problem through the Section 7 oracle, consulting and
/// filling options.reportCache when attached.
ClassifyResult classify(const GridLcl& problem,
                        const ClassifyOptions& options = {});

/// Classifies one cycle problem through the decidable Section 4 procedure.
ClassifyResult classify(const cycle::CycleLcl& problem,
                        const ClassifyOptions& options = {});

}  // namespace lclgrid::engine
