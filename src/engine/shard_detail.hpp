// Internal sharding machinery of the parallel verifier, shared by the
// unified front door (engine/verify_api.cpp) and the compatibility
// overloads + streaming shards (engine/parallel_verifier.cpp). One
// labelling is sharded into contiguous ranges of "shard items" -- grid rows
// on Torus2D, axis-0 lines on TorusD (a chunk of the line space is a slab
// along the outermost axes) -- each shard runs the exact serial kernel
// slice (lcl/verifier.hpp verifier_detail), and per-shard violation counts
// are combined in chunk order, so every result is bit-identical to the
// serial engine; the determinism tests pin this down for 1/2/8 threads.
//
// Both torus families share one set of sharding templates; the per-family
// differences (item count, kernel slice, size validation) are small
// overloaded shims, so the sharding scheme itself cannot diverge between
// 2D and d dimensions. The d = 2 TorusD case additionally delegates to the
// 2D row kernel inside tableViolationLinesD, so the sharded 2D fast path
// is one code path however it is reached.
//
// NOT a stable API: this header exists so the engine's translation units
// share one implementation; include it only from src/engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "engine/thread_pool.hpp"
#include "lcl/stream_verify.hpp"
#include "lcl/verifier.hpp"
#include "lcl/verify_probes.hpp"

namespace lclgrid::engine::shard_detail {

// --- per-torus shims -------------------------------------------------------

/// Shard items of one labelling: grid rows / axis-0 lines.
inline std::int64_t shardItems(const Torus2D& torus) { return torus.n(); }
inline std::int64_t shardItems(const TorusD& torus) {
  return verifier_detail::lineCountD(torus);
}

/// Labelling size validation (TorusD also checks the dimension match).
inline void checkLabelling(const Torus2D& torus, const GridLcl&,
                           std::span<const int> labels) {
  if (static_cast<int>(labels.size()) != torus.size()) {
    throw std::invalid_argument("verifier: labelling size mismatch");
  }
}
inline void checkLabelling(const TorusD& torus, const GridLclD& lcl,
                           std::span<const int> labels) {
  if (torus.dims() != lcl.dims()) {
    throw std::invalid_argument("verifier: torus/problem dimension mismatch");
  }
  if (static_cast<long long>(labels.size()) != torus.size()) {
    throw std::invalid_argument("verifier: labelling size mismatch");
  }
}

/// The serial compiled-table kernel slice over shard items [begin, end).
inline std::int64_t tableSlice(const Torus2D& torus, const GridLcl& lcl,
                               const int* labels, std::int64_t begin,
                               std::int64_t end, bool stopAtFirst) {
  return verifier_detail::tableViolationRows(
      lcl.table(), torus.n(), labels, static_cast<int>(begin),
      static_cast<int>(end), stopAtFirst);
}
inline std::int64_t tableSlice(const TorusD& torus, const GridLclD& lcl,
                               const int* labels, std::int64_t begin,
                               std::int64_t end, bool stopAtFirst) {
  return verifier_detail::tableViolationLinesD(lcl.table(), torus, labels,
                                               begin, end, stopAtFirst);
}

/// The serial functional-fallback slice over nodes [begin, end).
inline std::int64_t functionalSlice(const Torus2D& torus, const GridLcl& lcl,
                                    std::span<const int> labels,
                                    std::int64_t begin, std::int64_t end,
                                    bool stopAtFirst) {
  return verifier_detail::functionalViolationRange(
      torus, lcl, labels, static_cast<int>(begin), static_cast<int>(end),
      stopAtFirst);
}
inline std::int64_t functionalSlice(const TorusD& torus, const GridLclD& lcl,
                                    std::span<const int> labels,
                                    std::int64_t begin, std::int64_t end,
                                    bool stopAtFirst) {
  return verifier_detail::functionalViolationRangeD(torus, lcl, labels, begin,
                                                    end, stopAtFirst);
}

inline std::size_t batchCountOf(const Torus2D& torus,
                                std::span<const int> labelsBatch) {
  return verifier_detail::batchCount(torus, labelsBatch);
}
inline std::size_t batchCountOf(const TorusD& torus,
                                std::span<const int> labelsBatch) {
  return verifier_detail::batchCountD(torus, labelsBatch);
}

/// The engine's bit-slice selection shims (mirror the serial engine's, so
/// every thread count runs the same kernel tier).
inline bool bitsliceSelectedFor(const GridLcl& lcl, long long nodes) {
  return verifier_detail::bitsliceSelected(lcl, nodes);
}
inline bool bitsliceSelectedFor(const GridLclD& lcl, long long nodes) {
  return verifier_detail::bitsliceSelectedD(lcl, nodes);
}

/// EngineOptions::grain counts shard items (rows / lines) for a single
/// labelling; the functional fallback shards by node index, so the item
/// grain is scaled by the item length to keep the chunk payload (and hence
/// the scheduling overhead) identical on both paths.
template <typename Torus>
std::int64_t nodeGrain(std::int64_t itemGrain, const Torus& torus) {
  return itemGrain > 0 ? itemGrain * torus.n() : 0;
}

// --- bit-sliced shard runners ---------------------------------------------
// Selection mirrors the serial engine (verifier_detail::bitsliceSelected*),
// so every thread count runs the same kernel tier; each runner returns
// false when the problem stays on the row-pointer kernel. 2D shards (and
// d = 2 TorusD shards, via the delegated table) run the self-contained
// rolling row kernel; d >= 3 stages the whole labelling into a LabelPlanes
// buffer with its own sharded transposition pass first (disjoint line
// ranges, so the staging writes are race-free). `forced` bypasses the
// selection predicate for a pinned-tier request (the caller has already
// validated that a plan exists).

inline bool bitsliceShardCount(engine::ThreadPool& pool, std::int64_t grain,
                               const Torus2D& torus, const GridLcl& lcl,
                               std::span<const int> labels,
                               std::int64_t* result, bool forced = false) {
  if (!forced && !verifier_detail::bitsliceSelected(lcl, torus.size())) {
    return false;
  }
  verify_probes::recordCall(verify_probes::Tier::kBitsliced,
                            static_cast<std::int64_t>(labels.size()));
  telemetry::ScopedSpan span(
      verify_probes::spanName(verify_probes::Tier::kBitsliced));
  *result = pool.parallelReduce(
      0, shardItems(torus), grain, std::int64_t{0},
      [&](std::int64_t begin, std::int64_t end) {
        return verifier_detail::bitsliceViolationRows(
            lcl.table(), torus.n(), torus.n(), labels.data(),
            static_cast<int>(begin), static_cast<int>(end),
            /*stopAtFirst=*/false);
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  return true;
}

inline bool bitsliceShardCount(engine::ThreadPool& pool, std::int64_t grain,
                               const TorusD& torus, const GridLclD& lcl,
                               std::span<const int> labels,
                               std::int64_t* result, bool forced = false) {
  if (!forced && !verifier_detail::bitsliceSelectedD(lcl, torus.size())) {
    return false;
  }
  verify_probes::recordCall(verify_probes::Tier::kBitsliced,
                            static_cast<std::int64_t>(labels.size()));
  telemetry::ScopedSpan span(
      verify_probes::spanName(verify_probes::Tier::kBitsliced));
  const std::int64_t lines = shardItems(torus);
  LabelPlanes planes = verifier_detail::bitsliceMakePlanesD(torus, lcl.table());
  if (planes.rows() > 0) {
    pool.parallelFor(0, lines, grain,
                     [&](std::int64_t begin, std::int64_t end) {
                       verifier_detail::bitsliceStageLinesD(
                           torus, labels, planes, begin, end);
                     });
  }
  *result = pool.parallelReduce(
      0, lines, grain, std::int64_t{0},
      [&](std::int64_t begin, std::int64_t end) {
        return verifier_detail::bitsliceViolationLinesD(
            lcl.table(), torus, planes, labels.data(), begin, end,
            /*stopAtFirst=*/false);
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  return true;
}

inline bool bitsliceShardVerify(engine::ThreadPool& pool, std::int64_t grain,
                                const Torus2D& torus, const GridLcl& lcl,
                                std::span<const int> labels, bool* feasible,
                                bool forced = false) {
  if (!forced && !verifier_detail::bitsliceSelected(lcl, torus.size())) {
    return false;
  }
  verify_probes::recordCall(verify_probes::Tier::kBitsliced,
                            static_cast<std::int64_t>(labels.size()));
  telemetry::ScopedSpan span(
      verify_probes::spanName(verify_probes::Tier::kBitsliced));
  std::atomic<bool> violated{false};
  pool.parallelFor(0, shardItems(torus), grain,
                   [&](std::int64_t begin, std::int64_t end) {
                     if (violated.load(std::memory_order_relaxed)) return;
                     if (verifier_detail::bitsliceViolationRows(
                             lcl.table(), torus.n(), torus.n(), labels.data(),
                             static_cast<int>(begin), static_cast<int>(end),
                             /*stopAtFirst=*/true) > 0) {
                       violated.store(true, std::memory_order_relaxed);
                     }
                   });
  *feasible = !violated.load();
  return true;
}

inline bool bitsliceShardVerify(engine::ThreadPool& pool, std::int64_t grain,
                                const TorusD& torus, const GridLclD& lcl,
                                std::span<const int> labels, bool* feasible,
                                bool forced = false) {
  if (!forced && !verifier_detail::bitsliceSelectedD(lcl, torus.size())) {
    return false;
  }
  verify_probes::recordCall(verify_probes::Tier::kBitsliced,
                            static_cast<std::int64_t>(labels.size()));
  telemetry::ScopedSpan span(
      verify_probes::spanName(verify_probes::Tier::kBitsliced));
  const std::int64_t lines = shardItems(torus);
  // The d >= 3 staging below is one full parallel pass; only the kernel
  // pass early-exits cooperatively. (The serial engine staggers staging
  // one block ahead instead -- see verifier_d.cpp -- but a sharded
  // staggered stage would serialise on block order.)
  LabelPlanes planes = verifier_detail::bitsliceMakePlanesD(torus, lcl.table());
  if (planes.rows() > 0) {
    pool.parallelFor(0, lines, grain,
                     [&](std::int64_t begin, std::int64_t end) {
                       verifier_detail::bitsliceStageLinesD(
                           torus, labels, planes, begin, end);
                     });
  }
  std::atomic<bool> violated{false};
  pool.parallelFor(0, lines, grain,
                   [&](std::int64_t begin, std::int64_t end) {
                     if (violated.load(std::memory_order_relaxed)) return;
                     if (verifier_detail::bitsliceViolationLinesD(
                             lcl.table(), torus, planes, labels.data(), begin,
                             end, /*stopAtFirst=*/true) > 0) {
                       violated.store(true, std::memory_order_relaxed);
                     }
                   });
  *feasible = !violated.load();
  return true;
}

// --- shared sharding scheme ------------------------------------------------

/// Sharded table-path precondition check. The serial allLabelsInRange scan
/// would sit in front of the parallel kernel as a serial O(N) pass (a
/// material Amdahl fraction -- the kernel itself is only a few loads per
/// node), so the scan is sharded too, with chunks after the first
/// out-of-range find returning immediately.
template <typename Torus>
bool shardedAllInRange(engine::ThreadPool& pool, std::int64_t grain,
                       const Torus& torus, int sigma,
                       std::span<const int> labels) {
  std::atomic<bool> outOfRange{false};
  pool.parallelFor(
      0, static_cast<std::int64_t>(labels.size()), nodeGrain(grain, torus),
      [&](std::int64_t begin, std::int64_t end) {
        if (outOfRange.load(std::memory_order_relaxed)) return;
        if (!verifier_detail::allLabelsInRange(
                sigma, labels.subspan(static_cast<std::size_t>(begin),
                                      static_cast<std::size_t>(end - begin)))) {
          outOfRange.store(true, std::memory_order_relaxed);
        }
      });
  return !outOfRange.load();
}

/// Sharded violation count over one labelling; exact same shard kernels as
/// the serial path, summed in shard order.
template <typename Torus, typename Lcl>
std::int64_t shardedCount(engine::ThreadPool& pool, std::int64_t grain,
                          const Torus& torus, const Lcl& lcl,
                          std::span<const int> labels) {
  checkLabelling(torus, lcl, labels);
  const auto sum = [](std::int64_t a, std::int64_t b) { return a + b; };
  if (lcl.hasTable() &&
      shardedAllInRange(pool, grain, torus, lcl.sigma(), labels)) {
    std::int64_t bitsliced = 0;
    if (bitsliceShardCount(pool, grain, torus, lcl, labels, &bitsliced)) {
      return bitsliced;
    }
    verify_probes::recordCall(verify_probes::Tier::kTable,
                              static_cast<std::int64_t>(labels.size()));
    telemetry::ScopedSpan span(
        verify_probes::spanName(verify_probes::Tier::kTable));
    return pool.parallelReduce(
        0, shardItems(torus), grain, std::int64_t{0},
        [&](std::int64_t begin, std::int64_t end) {
          return tableSlice(torus, lcl, labels.data(), begin, end,
                            /*stopAtFirst=*/false);
        },
        sum);
  }
  verify_probes::recordCall(verify_probes::Tier::kFunctional,
                            static_cast<std::int64_t>(labels.size()));
  telemetry::ScopedSpan span(
      verify_probes::spanName(verify_probes::Tier::kFunctional));
  return pool.parallelReduce(
      0, static_cast<std::int64_t>(labels.size()), nodeGrain(grain, torus),
      std::int64_t{0},
      [&](std::int64_t begin, std::int64_t end) {
        return functionalSlice(torus, lcl, labels, begin, end,
                               /*stopAtFirst=*/false);
      },
      sum);
}

/// Sharded feasibility check with cooperative early exit: shards that start
/// after a violation was found return immediately. The boolean outcome is
/// scheduling-independent either way.
template <typename Torus, typename Lcl>
bool shardedVerify(engine::ThreadPool& pool, std::int64_t grain,
                   const Torus& torus, const Lcl& lcl,
                   std::span<const int> labels) {
  checkLabelling(torus, lcl, labels);
  std::atomic<bool> violated{false};
  const bool tablePath =
      lcl.hasTable() &&
      shardedAllInRange(pool, grain, torus, lcl.sigma(), labels);
  if (tablePath) {
    bool feasible = true;
    if (bitsliceShardVerify(pool, grain, torus, lcl, labels, &feasible)) {
      return feasible;
    }
  }
  const verify_probes::Tier tier = tablePath ? verify_probes::Tier::kTable
                                             : verify_probes::Tier::kFunctional;
  verify_probes::recordCall(tier, static_cast<std::int64_t>(labels.size()));
  telemetry::ScopedSpan span(verify_probes::spanName(tier));
  const std::int64_t items = tablePath
                                 ? shardItems(torus)
                                 : static_cast<std::int64_t>(labels.size());
  pool.parallelFor(0, items, tablePath ? grain : nodeGrain(grain, torus),
                   [&](std::int64_t begin, std::int64_t end) {
                     if (violated.load(std::memory_order_relaxed)) return;
                     const std::int64_t bad =
                         tablePath
                             ? tableSlice(torus, lcl, labels.data(), begin,
                                          end, /*stopAtFirst=*/true)
                             : functionalSlice(torus, lcl, labels, begin, end,
                                               /*stopAtFirst=*/true);
                     if (bad > 0) {
                       violated.store(true, std::memory_order_relaxed);
                     }
                   });
  return !violated.load();
}

/// Batched feasibility: one labelling per work item (options.grain counts
/// labellings); a single-labelling batch falls through to the sharded
/// single-labelling path with auto item grain (the caller's grain counts
/// labellings on the batch entry points, not rows/lines).
template <typename Torus, typename Lcl>
std::vector<std::uint8_t> shardedVerifyBatch(engine::ThreadPool& pool,
                                             std::int64_t grain,
                                             const Torus& torus,
                                             const Lcl& lcl,
                                             std::span<const int> labelsBatch) {
  const std::size_t count = batchCountOf(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::uint8_t> feasible(count, 0);
  if (count == 1) {
    feasible[0] =
        shardedVerify(pool, /*grain=*/0, torus, lcl, labelsBatch) ? 1 : 0;
    return feasible;
  }
  pool.parallelFor(
      0, static_cast<std::int64_t>(count), grain,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          feasible[static_cast<std::size_t>(i)] =
              verify(torus, lcl,
                     labelsBatch.subspan(static_cast<std::size_t>(i) * stride,
                                         stride))
                  ? 1
                  : 0;
        }
      });
  return feasible;
}

/// Batched violation counts; same chunking contract as shardedVerifyBatch.
template <typename Torus, typename Lcl>
std::vector<std::int64_t> shardedCountBatch(engine::ThreadPool& pool,
                                            std::int64_t grain,
                                            const Torus& torus, const Lcl& lcl,
                                            std::span<const int> labelsBatch) {
  const std::size_t count = batchCountOf(torus, labelsBatch);
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  std::vector<std::int64_t> violations(count, 0);
  if (count == 1) {
    violations[0] = shardedCount(pool, /*grain=*/0, torus, lcl, labelsBatch);
    return violations;
  }
  pool.parallelFor(
      0, static_cast<std::int64_t>(count), grain,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          violations[static_cast<std::size_t>(i)] = countViolations(
              torus, lcl,
              labelsBatch.subspan(static_cast<std::size_t>(i) * stride,
                                  stride));
        }
      });
  return violations;
}

// --- streaming (out-of-core) sharding --------------------------------------
// The sharded halves of the lcl/stream_verify.hpp overloads: the slab walk
// itself (window geometry, validation frontier, drop-behind, functional
// restart) is stream_verify_detail::runStreamPass -- the exact code the
// serial streaming entry points run -- and only the per-slab callbacks
// differ: each slab shards across the pool with the chunk-ordered combine
// of the in-core sharded verifier, so counts stay bit-identical to the
// serial pass at every thread count.

/// The compiled-kernel slice of one streaming chunk; `sliced` is the
/// pass-wide tier choice (stream_verify_detail::streamUsesBitslice*).
inline std::int64_t streamKernelSlice(const Torus2D& torus, const GridLcl& lcl,
                                      const int* labels, bool sliced,
                                      std::int64_t begin, std::int64_t end,
                                      bool stopAtFirst) {
  if (sliced) {
    return verifier_detail::bitsliceViolationRows(
        lcl.table(), torus.n(), torus.n(), labels, static_cast<int>(begin),
        static_cast<int>(end), stopAtFirst);
  }
  return tableSlice(torus, lcl, labels, begin, end, stopAtFirst);
}
inline std::int64_t streamKernelSlice(const TorusD& torus, const GridLclD& lcl,
                                      const int* labels, bool sliced,
                                      std::int64_t begin, std::int64_t end,
                                      bool stopAtFirst) {
  if (sliced) {
    // Streaming only selects the d = 2 delegated row kernel, which reads
    // the raw labels and ignores the plane buffer.
    static const LabelPlanes kNoPlanes;
    return verifier_detail::bitsliceViolationLinesD(
        lcl.table(), torus, kNoPlanes, labels, begin, end, stopAtFirst);
  }
  return tableSlice(torus, lcl, labels, begin, end, stopAtFirst);
}

inline bool streamSliced(const StreamLabelling& file, const GridLcl& lcl) {
  return stream_verify_detail::streamUsesBitslice(file, lcl);
}
inline bool streamSliced(const StreamLabelling& file, const GridLclD& lcl) {
  return stream_verify_detail::streamUsesBitsliceD(file, lcl);
}

template <typename Torus, typename Lcl>
std::int64_t shardedStream(engine::ThreadPool& pool, std::int64_t grain,
                           const StreamLabelling& file, const Lcl& lcl,
                           const Torus& torus, const StreamWindow& window,
                           bool stopAtFirst) {
  const int n = file.n();
  const long long lines = file.lines();
  const int* labels = file.labels();
  const std::span<const int> all(labels,
                                 static_cast<std::size_t>(file.size()));
  stream_verify_detail::StreamPass pass;
  pass.file = &file;
  pass.window = stream_verify_detail::resolveWindowRows(n, lines, window.rows);
  pass.wrapKeep = stream_verify_detail::wrapWindowRows(file.dims(), n);
  pass.dropBehind = window.dropBehind;
  pass.tablePath = lcl.hasTable();
  stream_verify_detail::applyCheckpointConfig(
      pass, file, window, lcl.hasTable() ? lcl.table().fingerprint() : 0);
  const bool sliced = streamSliced(file, lcl);
  const auto sum = [](std::int64_t a, std::int64_t b) { return a + b; };
  if (pass.tablePath) {
    pass.rowsInRange = [&, n](long long begin, long long end) {
      return shardedAllInRange(
          pool, grain, torus, lcl.sigma(),
          all.subspan(static_cast<std::size_t>(begin * n),
                      static_cast<std::size_t>((end - begin) * n)));
    };
    pass.kernelRows = [&, sliced](long long begin, long long end,
                                  bool stop) -> std::int64_t {
      if (stop) {
        std::atomic<bool> violated{false};
        pool.parallelFor(begin, end, grain,
                         [&](std::int64_t s, std::int64_t t) {
                           if (violated.load(std::memory_order_relaxed)) {
                             return;
                           }
                           if (streamKernelSlice(torus, lcl, labels, sliced,
                                                 s, t,
                                                 /*stopAtFirst=*/true) > 0) {
                             violated.store(true, std::memory_order_relaxed);
                           }
                         });
        return violated.load() ? 1 : 0;
      }
      return pool.parallelReduce(begin, end, grain, std::int64_t{0},
                                 [&](std::int64_t s, std::int64_t t) {
                                   return streamKernelSlice(
                                       torus, lcl, labels, sliced, s, t,
                                       /*stopAtFirst=*/false);
                                 },
                                 sum);
    };
  }
  pass.functionalRows = [&, n](long long begin, long long end,
                               bool stop) -> std::int64_t {
    const std::int64_t nodeBegin = begin * n;
    const std::int64_t nodeEnd = end * n;
    if (stop) {
      std::atomic<bool> violated{false};
      pool.parallelFor(nodeBegin, nodeEnd, nodeGrain(grain, torus),
                       [&](std::int64_t s, std::int64_t t) {
                         if (violated.load(std::memory_order_relaxed)) return;
                         if (functionalSlice(torus, lcl, all, s, t,
                                             /*stopAtFirst=*/true) > 0) {
                           violated.store(true, std::memory_order_relaxed);
                         }
                       });
      return violated.load() ? 1 : 0;
    }
    return pool.parallelReduce(nodeBegin, nodeEnd, nodeGrain(grain, torus),
                               std::int64_t{0},
                               [&](std::int64_t s, std::int64_t t) {
                                 return functionalSlice(
                                     torus, lcl, all, s, t,
                                     /*stopAtFirst=*/false);
                               },
                               sum);
  };
  return stream_verify_detail::runStreamPass(pass, stopAtFirst);
}

}  // namespace lclgrid::engine::shard_detail
