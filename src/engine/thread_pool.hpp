// The parallel execution runtime: a work-stealing thread pool plus
// deterministic data-parallel loops on top of it. This is the substrate for
// the sharded verifier (lcl/verifier.hpp overloads taking EngineOptions,
// implemented in engine/parallel_verifier.cpp) and the concurrent family
// sweep driver (engine/family_sweep.hpp).
//
// Design:
//  * every worker owns a deque; submitted tasks are dealt round-robin,
//    workers pop their own back (LIFO, cache-warm) and steal from other
//    fronts (FIFO, oldest work) when empty;
//  * the thread that calls parallelFor/parallelReduce participates: it
//    executes tasks itself until its batch drains, so a pool constructed
//    with `threads == 1` spawns no workers at all and runs serially on the
//    caller -- the degenerate case is exactly the serial code path;
//  * reductions are deterministic by construction: partial results are
//    combined on the caller in ascending chunk order, never in completion
//    order, so the result is independent of scheduling. With an explicit
//    grain the chunk boundaries depend only on (range, grain) and the
//    result is bit-identical across thread counts even for non-associative
//    (e.g. floating-point) combines; the auto grain (0) scales with the
//    lane count, which still yields identical results for associative
//    combines such as the verifier's integer counts.
//
// Thread-safety contract: ThreadPool itself is safe to share; the loop
// bodies handed to parallelFor/parallelReduce run concurrently and must not
// mutate shared state without their own synchronisation. Exceptions thrown
// by a body are caught, the first one is rethrown on the calling thread
// after the batch drains (remaining chunks still run).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine_options.hpp"

namespace lclgrid::engine {

class ThreadPool {
 public:
  /// Spawns threads-1 workers (the caller is the remaining lane);
  /// threads == 0 means defaultThreads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes, counting the thread that calls parallelFor.
  int lanes() const { return static_cast<int>(workers_.size()) + 1; }

  /// Fire-and-forget task; runs on some worker (or on a caller draining a
  /// parallelFor batch). Tasks submitted before destruction are drained by
  /// the destructor's join. Tasks should handle their own errors: an
  /// escaping exception is swallowed by the runner (there is no caller to
  /// rethrow to, and it must not unwind an unrelated parallelFor that
  /// stole the task). Use parallelFor for joinable work.
  void submit(std::function<void()> task);

  /// Runs body(chunkBegin, chunkEnd) over [begin, end) split into chunks of
  /// `grain` (0 = auto); returns when every chunk has run. The caller
  /// participates. Rethrows the first body exception after the batch drains.
  void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                   const std::function<void(std::int64_t, std::int64_t)>& body);

  /// Deterministic map-reduce: partial results are produced per chunk and
  /// combined on the calling thread in ascending chunk order, so the result
  /// is independent of scheduling; with an explicit grain it is also
  /// bit-identical across thread counts for non-associative combines (see
  /// the header comment).
  template <typename T, typename Map, typename Combine>
  T parallelReduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                   T identity, Map&& map, Combine&& combine) {
    const std::int64_t items = end - begin;
    if (items <= 0) return identity;
    grain = resolveGrain(items, grain, lanes());
    const std::int64_t chunks = (items + grain - 1) / grain;
    std::vector<T> partial(static_cast<std::size_t>(chunks), identity);
    parallelFor(begin, end, grain,
                [&](std::int64_t chunkBegin, std::int64_t chunkEnd) {
                  partial[static_cast<std::size_t>((chunkBegin - begin) /
                                                   grain)] =
                      map(chunkBegin, chunkEnd);
                });
    T result = std::move(identity);
    for (T& p : partial) result = combine(std::move(result), std::move(p));
    return result;
  }

  /// The process-global pool (defaultThreads() lanes, built on first use).
  static ThreadPool& global();

  /// Chunk size actually used for (items, grain, lanes); exposed so tests
  /// can pin down the deterministic chunking.
  static std::int64_t resolveGrain(std::int64_t items, std::int64_t grain,
                                   int lanes);

 private:
  struct Batch {
    std::mutex mutex;
    std::condition_variable done;
    std::int64_t pending = 0;
    std::exception_ptr error;
  };
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void workerLoop(std::size_t self);
  /// Pops from `self`'s back or steals from another worker's front.
  bool tryTake(std::size_t self, std::function<void()>& task);
  void push(std::function<void()> task, bool notify = true);
  /// Bumps the wake epoch under the idle mutex and notifies; pairs with
  /// the predicated wait in workerLoop so wake-ups cannot be lost.
  void wake(bool all);
  /// Runs a fire-and-forget task, swallowing any escaping exception.
  static void runDetached(const std::function<void()>& task) noexcept;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex idleMutex_;
  std::condition_variable idle_;
  std::atomic<std::size_t> nextLane_{0};  // round-robin submission cursor
  std::uint64_t wakeEpoch_ = 0;           // guarded by idleMutex_
  bool stopping_ = false;
};

/// Resolves EngineOptions to a runnable pool: options.pool if set, the
/// global pool when the requested lane count matches it (or threads == 0),
/// otherwise a private pool owned by the returned holder.
class PoolHandle {
 public:
  explicit PoolHandle(const EngineOptions& options);
  ThreadPool& pool() { return *pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
};

}  // namespace lclgrid::engine
