// The unified verification front door (lcl/verify_api.hpp). This is where
// the engine's tier selection lives once: one range scan (sharded when a
// pool is attached), then a direct dispatch onto the exact serial kernel
// slices / sharded runners the per-tier overloads run -- the overloads in
// parallel_verifier.cpp now forward here, and the bit-identity tests pin
// the new API against the old entry points at 1/2/8 threads.
#include "lcl/verify_api.hpp"

#include <chrono>
#include <cstddef>
#include <optional>
#include <stdexcept>

#include "engine/shard_detail.hpp"
#include "grid/torus2d.hpp"
#include "grid/torusd.hpp"

namespace lclgrid {

namespace {

namespace sd = engine::shard_detail;
using verify_probes::Tier;

/// The kernel the request resolved to (VerifyTier minus kStream, which has
/// its own dispatch below).
enum class Kernel { kFunctional, kTable, kBitsliced };

VerifyTier tierOf(Kernel kernel) {
  switch (kernel) {
    case Kernel::kTable:
      return VerifyTier::kTable;
    case Kernel::kBitsliced:
      return VerifyTier::kBitsliced;
    case Kernel::kFunctional:
      break;
  }
  return VerifyTier::kFunctional;
}

/// Plan existence for a kBitsliced pin: independent of the LCLGRID_BITSLICE
/// gate and the node floor (pins bypass both; the plan itself is compiled
/// unconditionally when the relation fits a plan shape).
bool hasBitslicePlan(const GridLcl& lcl) {
  return lcl.hasTable() && lcl.table().bitslicePlan() != nullptr;
}
bool hasBitslicePlan(const GridLclD& lcl) {
  if (!lcl.hasTable()) return false;
  if (const LclTable* table2d = lcl.table().as2d()) {
    return table2d->bitslicePlan() != nullptr;
  }
  return lcl.table().bitslicePlanD() != nullptr;
}

/// Serial bit-sliced pass over the whole labelling; the d >= 3 case stages
/// everything up front (same counts as the serial engine's staggered
/// staging, which is a resident-set optimisation, not a semantic one).
std::int64_t bitsliceSerial(const Torus2D& torus, const GridLcl& lcl,
                            std::span<const int> labels, bool stopAtFirst) {
  return verifier_detail::bitsliceViolationRows(lcl.table(), torus.n(),
                                                torus.n(), labels.data(), 0,
                                                torus.n(), stopAtFirst);
}
std::int64_t bitsliceSerial(const TorusD& torus, const GridLclD& lcl,
                            std::span<const int> labels, bool stopAtFirst) {
  const long long lines = verifier_detail::lineCountD(torus);
  LabelPlanes planes = verifier_detail::bitsliceMakePlanesD(torus, lcl.table());
  if (planes.rows() > 0) {
    verifier_detail::bitsliceStageLinesD(torus, labels, planes, 0, lines);
  }
  return verifier_detail::bitsliceViolationLinesD(
      lcl.table(), torus, planes, labels.data(), 0, lines, stopAtFirst);
}

/// One range scan deciding (or validating, for a pin) the kernel. `pool`
/// is null for serial execution; the scan shards when a pool is attached,
/// exactly like the old threaded overloads.
template <typename Torus, typename Lcl>
Kernel selectKernel(engine::ThreadPool* pool, std::int64_t grain,
                    const Torus& torus, const Lcl& lcl,
                    std::span<const int> labels, TierPin pin) {
  const auto labelsInRange = [&] {
    return pool != nullptr
               ? sd::shardedAllInRange(*pool, grain, torus, lcl.sigma(),
                                       labels)
               : verifier_detail::allLabelsInRange(lcl.sigma(), labels);
  };
  switch (pin) {
    case TierPin::kAuto:
      if (!lcl.hasTable() || !labelsInRange()) return Kernel::kFunctional;
      return sd::bitsliceSelectedFor(
                 lcl, static_cast<long long>(labels.size()))
                 ? Kernel::kBitsliced
                 : Kernel::kTable;
    case TierPin::kFunctional:
      return Kernel::kFunctional;
    case TierPin::kTable:
      if (!lcl.hasTable()) {
        throw std::invalid_argument(
            "verify: tier pin kTable needs a compiled table");
      }
      if (!labelsInRange()) {
        throw std::invalid_argument(
            "verify: tier pin kTable needs every label in [0, sigma)");
      }
      return Kernel::kTable;
    case TierPin::kBitsliced:
      if (!hasBitslicePlan(lcl)) {
        throw std::invalid_argument(
            "verify: tier pin kBitsliced needs a bit-slice plan");
      }
      if (!labelsInRange()) {
        throw std::invalid_argument(
            "verify: tier pin kBitsliced needs every label in [0, sigma)");
      }
      return Kernel::kBitsliced;
  }
  throw std::invalid_argument("verify: unknown tier pin");
}

/// Exact violation count of one labelling on the resolved kernel.
template <typename Torus, typename Lcl>
std::int64_t runCount(engine::ThreadPool* pool, std::int64_t grain,
                      const Torus& torus, const Lcl& lcl,
                      std::span<const int> labels, Kernel kernel) {
  const auto sum = [](std::int64_t a, std::int64_t b) { return a + b; };
  switch (kernel) {
    case Kernel::kBitsliced: {
      if (pool != nullptr) {
        std::int64_t bitsliced = 0;
        sd::bitsliceShardCount(*pool, grain, torus, lcl, labels, &bitsliced,
                               /*forced=*/true);
        return bitsliced;
      }
      verify_probes::recordCall(Tier::kBitsliced,
                                static_cast<std::int64_t>(labels.size()));
      telemetry::ScopedSpan span(verify_probes::spanName(Tier::kBitsliced));
      return bitsliceSerial(torus, lcl, labels, /*stopAtFirst=*/false);
    }
    case Kernel::kTable: {
      verify_probes::recordCall(Tier::kTable,
                                static_cast<std::int64_t>(labels.size()));
      telemetry::ScopedSpan span(verify_probes::spanName(Tier::kTable));
      if (pool != nullptr) {
        return pool->parallelReduce(
            0, sd::shardItems(torus), grain, std::int64_t{0},
            [&](std::int64_t begin, std::int64_t end) {
              return sd::tableSlice(torus, lcl, labels.data(), begin, end,
                                    /*stopAtFirst=*/false);
            },
            sum);
      }
      return sd::tableSlice(torus, lcl, labels.data(), 0,
                            sd::shardItems(torus), /*stopAtFirst=*/false);
    }
    case Kernel::kFunctional:
      break;
  }
  verify_probes::recordCall(Tier::kFunctional,
                            static_cast<std::int64_t>(labels.size()));
  telemetry::ScopedSpan span(verify_probes::spanName(Tier::kFunctional));
  const std::int64_t nodes = static_cast<std::int64_t>(labels.size());
  if (pool != nullptr) {
    return pool->parallelReduce(0, nodes, sd::nodeGrain(grain, torus),
                                std::int64_t{0},
                                [&](std::int64_t begin, std::int64_t end) {
                                  return sd::functionalSlice(
                                      torus, lcl, labels, begin, end,
                                      /*stopAtFirst=*/false);
                                },
                                sum);
  }
  return sd::functionalSlice(torus, lcl, labels, 0, nodes,
                             /*stopAtFirst=*/false);
}

/// Feasibility of one labelling on the resolved kernel, early-exiting at
/// the first violation (cooperatively across shards when pooled).
template <typename Torus, typename Lcl>
bool runVerify(engine::ThreadPool* pool, std::int64_t grain,
               const Torus& torus, const Lcl& lcl,
               std::span<const int> labels, Kernel kernel) {
  if (kernel == Kernel::kBitsliced) {
    if (pool != nullptr) {
      bool feasible = true;
      sd::bitsliceShardVerify(*pool, grain, torus, lcl, labels, &feasible,
                              /*forced=*/true);
      return feasible;
    }
    verify_probes::recordCall(Tier::kBitsliced,
                              static_cast<std::int64_t>(labels.size()));
    telemetry::ScopedSpan span(verify_probes::spanName(Tier::kBitsliced));
    return bitsliceSerial(torus, lcl, labels, /*stopAtFirst=*/true) == 0;
  }
  const bool tablePath = kernel == Kernel::kTable;
  const Tier tier = tablePath ? Tier::kTable : Tier::kFunctional;
  verify_probes::recordCall(tier, static_cast<std::int64_t>(labels.size()));
  telemetry::ScopedSpan span(verify_probes::spanName(tier));
  if (pool == nullptr) {
    const std::int64_t bad =
        tablePath ? sd::tableSlice(torus, lcl, labels.data(), 0,
                                   sd::shardItems(torus), /*stopAtFirst=*/true)
                  : sd::functionalSlice(torus, lcl, labels, 0,
                                        static_cast<std::int64_t>(
                                            labels.size()),
                                        /*stopAtFirst=*/true);
    return bad == 0;
  }
  std::atomic<bool> violated{false};
  const std::int64_t items = tablePath
                                 ? sd::shardItems(torus)
                                 : static_cast<std::int64_t>(labels.size());
  pool->parallelFor(0, items, tablePath ? grain : sd::nodeGrain(grain, torus),
                    [&](std::int64_t begin, std::int64_t end) {
                      if (violated.load(std::memory_order_relaxed)) return;
                      const std::int64_t bad =
                          tablePath
                              ? sd::tableSlice(torus, lcl, labels.data(),
                                               begin, end,
                                               /*stopAtFirst=*/true)
                              : sd::functionalSlice(torus, lcl, labels, begin,
                                                    end, /*stopAtFirst=*/true);
                      if (bad > 0) {
                        violated.store(true, std::memory_order_relaxed);
                      }
                    });
  return !violated.load();
}

/// Dispatch of an in-core request (single labelling or batch) for one
/// torus family; fills everything except nanos.
template <typename Torus, typename Lcl>
VerifyResult dispatchInCore(const Torus& torus, const Lcl& lcl,
                            std::span<const int> labels,
                            const VerifyOptions& options) {
  engine::PoolHandle handle(options.engine);
  engine::ThreadPool* pool =
      handle.pool().lanes() == 1 ? nullptr : &handle.pool();
  const std::int64_t grain = options.engine.grain;

  VerifyResult result;
  const std::size_t count = sd::batchCountOf(torus, labels);
  result.labellings = static_cast<std::int64_t>(count);
  if (count == 0) {
    result.feasible = true;
    return result;
  }
  if (count == 1) {
    sd::checkLabelling(torus, lcl, labels);
    const Kernel kernel =
        selectKernel(pool, grain, torus, lcl, labels, options.tier);
    result.tier = tierOf(kernel);
    if (options.countViolations) {
      result.violations = runCount(pool, grain, torus, lcl, labels, kernel);
      result.feasible = result.violations == 0;
    } else {
      result.feasible = runVerify(pool, grain, torus, lcl, labels, kernel);
      result.violations = result.feasible ? 0 : 1;
    }
    return result;
  }

  // Batch: one labelling per work item, each selecting its own kernel --
  // exactly the batch overloads' contract. The reported tier is the first
  // labelling's selection (resolved serially; selection does not scan when
  // pinned or uncompiled).
  const std::size_t stride = static_cast<std::size_t>(torus.size());
  const std::span<const int> first = labels.subspan(0, stride);
  sd::checkLabelling(torus, lcl, first);
  result.tier =
      tierOf(selectKernel(nullptr, grain, torus, lcl, first, options.tier));
  if (options.countViolations) {
    result.violationsPerLabelling.assign(count, 0);
  } else {
    result.feasiblePerLabelling.assign(count, 0);
  }
  const auto oneLabelling = [&](std::size_t i) {
    const std::span<const int> sub = labels.subspan(i * stride, stride);
    const Kernel kernel =
        selectKernel(nullptr, grain, torus, lcl, sub, options.tier);
    if (options.countViolations) {
      result.violationsPerLabelling[i] =
          runCount(nullptr, grain, torus, lcl, sub, kernel);
    } else {
      result.feasiblePerLabelling[i] =
          runVerify(nullptr, grain, torus, lcl, sub, kernel) ? 1 : 0;
    }
  };
  if (pool != nullptr) {
    pool->parallelFor(0, static_cast<std::int64_t>(count), grain,
                      [&](std::int64_t begin, std::int64_t end) {
                        for (std::int64_t i = begin; i < end; ++i) {
                          oneLabelling(static_cast<std::size_t>(i));
                        }
                      });
  } else {
    for (std::size_t i = 0; i < count; ++i) oneLabelling(i);
  }
  result.feasible = true;
  result.violations = 0;
  if (options.countViolations) {
    for (std::int64_t v : result.violationsPerLabelling) {
      result.violations += v;
    }
    result.feasible = result.violations == 0;
  } else {
    for (std::uint8_t ok : result.feasiblePerLabelling) {
      if (ok == 0) {
        result.feasible = false;
        ++result.violations;
      }
    }
  }
  return result;
}

/// Dispatch of a streaming request through the stream_verify entry points
/// (which fall back to the serial pass on a 1-lane pool themselves).
template <typename Lcl>
VerifyResult dispatchStream(const StreamLabelling& file, const Lcl& lcl,
                            const VerifyOptions& options) {
  if (options.tier != TierPin::kAuto) {
    throw std::invalid_argument(
        "verify: streaming requests accept only TierPin::kAuto");
  }
  VerifyResult result;
  result.tier = VerifyTier::kStream;
  if (options.countViolations) {
    result.violations =
        streamCountViolations(file, lcl, options.engine, options.window);
    result.feasible = result.violations == 0;
  } else {
    result.feasible = streamVerify(file, lcl, options.engine, options.window);
    result.violations = result.feasible ? 0 : 1;
  }
  return result;
}

}  // namespace

const char* verifyTierName(VerifyTier tier) {
  switch (tier) {
    case VerifyTier::kFunctional:
      return "functional";
    case VerifyTier::kTable:
      return "table";
    case VerifyTier::kBitsliced:
      return "bitsliced";
    case VerifyTier::kStream:
      return "stream";
  }
  return "unknown";
}

VerifyResult verify(const VerifyRequest& request) {
  // --- resolve the problem reference ---------------------------------------
  const GridLcl* problem = request.problem;
  const GridLclD* problemD = request.problemD;
  if (problem != nullptr && problemD != nullptr) {
    throw std::invalid_argument(
        "verify: request names both a 2D and a d-dimensional problem");
  }
  if (problem == nullptr && problemD == nullptr) {
    if (!request.resolveFingerprint) {
      throw std::invalid_argument(
          "verify: request has no problem and no fingerprint resolver");
    }
    problem = request.resolveFingerprint(request.fingerprint);
    if (problem == nullptr) {
      throw std::invalid_argument("verify: unknown problem fingerprint");
    }
  }

  // --- resolve the instance -------------------------------------------------
  const bool hasFile = request.file != nullptr;
  const bool hasPath = !request.labellingPath.empty();
  const bool hasInline = request.torus != nullptr || request.torusD != nullptr;
  if (static_cast<int>(hasFile) + static_cast<int>(hasPath) +
          static_cast<int>(hasInline) !=
      1) {
    throw std::invalid_argument(
        "verify: request needs exactly one instance (torus labels, an open "
        "labelling, or a labelling path)");
  }

  VerifyResult result;
  const auto started = std::chrono::steady_clock::now();
  if (hasFile || hasPath) {
    // StreamLabelling's constructor validates the header (std::runtime_error
    // on bad magic / truncation), matching the documented error contract.
    std::optional<StreamLabelling> opened;
    if (hasPath) opened.emplace(request.labellingPath);
    const StreamLabelling& file = hasPath ? *opened : *request.file;
    result = problem != nullptr ? dispatchStream(file, *problem,
                                                 request.options)
                                : dispatchStream(file, *problemD,
                                                 request.options);
  } else if (problem != nullptr) {
    if (request.torus == nullptr) {
      throw std::invalid_argument(
          "verify: a 2D problem needs VerifyRequest::torus");
    }
    result = dispatchInCore(*request.torus, *problem, request.labels,
                            request.options);
  } else {
    if (request.torusD == nullptr) {
      throw std::invalid_argument(
          "verify: a d-dimensional problem needs VerifyRequest::torusD");
    }
    result = dispatchInCore(*request.torusD, *problemD, request.labels,
                            request.options);
  }
  result.nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - started)
                     .count();
  if (problem != nullptr) {
    result.fingerprint = problem->hasTable() ? problem->table().fingerprint()
                                             : 0;
  } else {
    result.fingerprint = problemD->hasTable() ? problemD->table().fingerprint()
                                              : 0;
  }
  return result;
}

}  // namespace lclgrid
