#include "engine/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <utility>

#include "support/faultpoint.hpp"
#include "support/telemetry.hpp"

namespace lclgrid::engine {

int defaultThreads() {
  if (const char* env = std::getenv("LCLGRID_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = defaultThreads();
  const int workerCount = threads - 1;
  workers_.reserve(static_cast<std::size_t>(workerCount));
  for (int i = 0; i < workerCount; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(workerCount));
  for (int i = 0; i < workerCount; ++i) {
    threads_.emplace_back(
        [this, i]() { workerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idleMutex_);
    stopping_ = true;
  }
  idle_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::push(std::function<void()> task, bool notify) {
  static const telemetry::Counter tasksSubmitted =
      telemetry::counter("pool.tasks_submitted");
  static const telemetry::Gauge queueDepthMax =
      telemetry::gauge("pool.queue_depth_max");
  // Lock-free cursor: the dealing loop of parallelFor calls push once per
  // chunk, so it must not serialise on the idle mutex the workers wait on.
  const std::size_t lane =
      nextLane_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(workers_[lane]->mutex);
    workers_[lane]->tasks.push_back(std::move(task));
    depth = workers_[lane]->tasks.size();
  }
  tasksSubmitted.increment();
  queueDepthMax.max(static_cast<std::int64_t>(depth));
  if (notify) wake(/*all=*/false);
}

void ThreadPool::wake(bool all) {
  // The epoch bump under the mutex is what makes wake-ups lossless: a
  // worker that found the queues empty re-reads the epoch under the same
  // mutex before sleeping, so a wake between its scan and its wait flips
  // the predicate instead of evaporating.
  {
    std::lock_guard<std::mutex> lock(idleMutex_);
    ++wakeEpoch_;
  }
  if (all) {
    idle_.notify_all();
  } else {
    idle_.notify_one();
  }
}

void ThreadPool::runDetached(const std::function<void()>& task) noexcept {
  // Detached tasks have no caller to rethrow to; swallowing here also keeps
  // a stolen submit() task from unwinding some other thread's parallelFor.
  try {
    task();
  } catch (...) {
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers: run inline -- a 1-lane pool is the serial code path.
    runDetached(task);
    return;
  }
  push([task = std::move(task)]() { runDetached(task); });
}

bool ThreadPool::tryTake(std::size_t self, std::function<void()>& task) {
  // Own queue first, newest task (LIFO keeps the working set warm)...
  if (self < workers_.size()) {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // ...then steal the oldest task from someone else (FIFO spreads the
  // biggest remaining chunks of a batch). The steal counter includes the
  // caller's helping-loop takes (self == workers_.size()): every FIFO take
  // from another lane's deque counts.
  static const telemetry::Counter steals = telemetry::counter("pool.steals");
  for (std::size_t offset = 1; offset <= workers_.size(); ++offset) {
    const std::size_t victim = (self + offset) % workers_.size();
    if (victim == self) continue;
    Worker& other = *workers_[victim];
    std::lock_guard<std::mutex> lock(other.mutex);
    if (!other.tasks.empty()) {
      task = std::move(other.tasks.front());
      other.tasks.pop_front();
      steals.increment();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t self) {
  for (;;) {
    // Epoch snapshot BEFORE scanning the queues: any wake() that lands
    // after the snapshot flips the wait predicate below, so a push racing
    // the empty scan can never be slept through (the 50 ms timeout is a
    // belt-and-braces bound, not the recovery mechanism).
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(idleMutex_);
      seen = wakeEpoch_;
    }
    std::function<void()> task;
    if (tryTake(self, task)) {
      // Injected scheduling jitter (delay) for chaos runs; a slow worker
      // must never change counts, only latency.
      (void)FAULT_POINT("pool.task");
      task();
      continue;
    }
    // stopping_ is only checked here, where the queues were just seen
    // empty -- never before tryTake -- so shutdown drains every task
    // submitted before the destructor ran (the drain contract of
    // submit()); a worker woken by the destructor loops through tryTake
    // first.
    std::unique_lock<std::mutex> lock(idleMutex_);
    if (stopping_) return;
    idle_.wait_for(lock, std::chrono::milliseconds(50),
                   [&]() { return stopping_ || wakeEpoch_ != seen; });
  }
}

std::int64_t ThreadPool::resolveGrain(std::int64_t items, std::int64_t grain,
                                      int lanes) {
  if (grain > 0) return grain;
  // A few chunks per lane for load balance; note the auto grain depends on
  // the lane count, which is fine for associative reductions (the verifier's
  // integer counts) -- callers needing cross-thread-count bit-identity for
  // non-associative types pass an explicit grain.
  const std::int64_t target = static_cast<std::int64_t>(lanes) * 4;
  const std::int64_t g = (items + target - 1) / target;
  return g >= 1 ? g : 1;
}

void ThreadPool::parallelFor(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t items = end - begin;
  if (items <= 0) return;
  grain = resolveGrain(items, grain, lanes());

  if (workers_.empty() || items <= grain) {
    // Serial fast path: no task machinery at all.
    for (std::int64_t b = begin; b < end; b += grain) {
      telemetry::ScopedSpan span("pool/chunk");
      body(b, std::min(b + grain, end));
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->pending = (items + grain - 1) / grain;

  auto runChunk = [&body, batch, this](std::int64_t chunkBegin,
                                       std::int64_t chunkEnd) {
    try {
      // One span per shard chunk: with tracing on, the per-thread rows of
      // the Chrome trace show how the batch's chunks spread and steal.
      telemetry::ScopedSpan span("pool/chunk");
      body(chunkBegin, chunkEnd);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch->mutex);
      if (!batch->error) batch->error = std::current_exception();
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(batch->mutex);
      last = --batch->pending == 0;
    }
    if (last) batch->done.notify_all();
  };

  // Keep the first chunk for the caller; deal the rest to the workers with
  // one wake-up for the whole batch (a notify per chunk is measurable
  // overhead at verifier-kernel granularity).
  for (std::int64_t b = begin + grain; b < end; b += grain) {
    const std::int64_t e = std::min(b + grain, end);
    push([runChunk, b, e]() { runChunk(b, e); }, /*notify=*/false);
  }
  wake(/*all=*/true);
  runChunk(begin, std::min(begin + grain, end));

  // Help until the batch drains: execute whatever is queued (our own chunks
  // or unrelated submitted tasks -- either way the pool makes progress).
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(batch->mutex);
      if (batch->pending == 0) break;
    }
    std::function<void()> task;
    if (tryTake(workers_.size(), task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait_for(lock, std::chrono::milliseconds(1),
                         [&]() { return batch->pending == 0; });
    if (batch->pending == 0) break;
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(defaultThreads());
  return pool;
}

PoolHandle::PoolHandle(const EngineOptions& options) {
  if (options.pool != nullptr) {
    pool_ = options.pool;
    return;
  }
  // Compare against defaultThreads() rather than global().lanes() so a
  // request for a non-default lane count never instantiates the global
  // pool's worker threads as a side effect of the comparison.
  const int want = options.threads > 0 ? options.threads : defaultThreads();
  if (want == defaultThreads()) {
    pool_ = &ThreadPool::global();
    return;
  }
  owned_ = std::make_unique<ThreadPool>(want);
  pool_ = owned_.get();
}

}  // namespace lclgrid::engine
