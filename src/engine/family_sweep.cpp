#include "engine/family_sweep.hpp"

#include <unordered_map>
#include <utility>

#include "support/json.hpp"
#include "support/telemetry.hpp"
#include "support/timing.hpp"

namespace lclgrid::engine {

using support::Stopwatch;

ReportCache::ReportCache(std::size_t capacity, std::string_view counterPrefix)
    : cache_(capacity, counterPrefix) {}

std::shared_ptr<const synthesis::OracleReport> ReportCache::find(
    const GridLcl& problem) {
  if (!problem.hasTable()) return nullptr;
  const std::lock_guard<std::mutex> lock(mutex_);
  std::optional<Entry> entry = cache_.get(problem.table().fingerprint());
  if (!entry) return nullptr;
  // Exact content check behind the 64-bit hash: a collision with a
  // different relation is a miss, never an aliased report.
  if (!entry->table.sameContent(problem.table())) return nullptr;
  return entry->report;
}

void ReportCache::insert(
    const GridLcl& problem,
    std::shared_ptr<const synthesis::OracleReport> report) {
  if (!problem.hasTable() || report == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  cache_.put(problem.table().fingerprint(),
             Entry{problem.table(), std::move(report)});
}

support::LruStats ReportCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.stats();
}

SweepReport sweepFamily(std::span<const GridLcl> family,
                        const SweepOptions& options) {
  static const telemetry::Counter problemCounter =
      telemetry::counter("sweep.problems");
  static const telemetry::Counter oracleRunCounter =
      telemetry::counter("sweep.oracle_runs");
  static const telemetry::Counter cacheHitCounter =
      telemetry::counter("sweep.cache_hits");
  const Stopwatch sweepClock;
  telemetry::ScopedSpan sweepSpan("sweep/family");
  SweepReport report;
  report.entries.resize(family.size());

  // Resolve the cache structure up front (deterministically, on the
  // caller): each family index is either the designated runner for its
  // fingerprint or a reader of an earlier run. Uncompiled problems get no
  // fingerprint and always run.
  std::vector<std::size_t> runOf(family.size());
  std::vector<std::size_t> jobs;  // indices that run the oracle
  std::unordered_map<std::uint64_t, std::size_t> firstWithFingerprint;
  for (std::size_t i = 0; i < family.size(); ++i) {
    SweepEntry& entry = report.entries[i];
    entry.problem = family[i].name();
    if (options.cacheByFingerprint && family[i].hasTable()) {
      entry.fingerprint = family[i].table().fingerprint();
      auto [it, inserted] =
          firstWithFingerprint.try_emplace(entry.fingerprint, i);
      // Exact content check behind the 64-bit hash: a fingerprint
      // collision between different relations must run fresh, never alias
      // another problem's report.
      if (!inserted &&
          family[i].table().sameContent(family[it->second].table())) {
        runOf[i] = it->second;
        entry.cacheHit = true;
        ++report.entries[it->second].fingerprintHits;
        continue;
      }
    } else if (family[i].hasTable()) {
      entry.fingerprint = family[i].table().fingerprint();
    }
    runOf[i] = i;
    jobs.push_back(i);
  }

  // Cross-call cache: designated runners consult the shared ReportCache
  // (deterministically, on the caller) and drop out of the job list on a
  // hit; their readers fan out from the cached report like any other.
  if (options.reportCache != nullptr) {
    std::vector<std::size_t> stillToRun;
    stillToRun.reserve(jobs.size());
    for (std::size_t i : jobs) {
      if (auto cached = options.reportCache->find(family[i])) {
        report.entries[i].report = std::move(cached);
        report.entries[i].cacheHit = true;
      } else {
        stillToRun.push_back(i);
      }
    }
    jobs = std::move(stillToRun);
  }
  report.oracleRuns = static_cast<int>(jobs.size());
  report.cacheHits = static_cast<int>(family.size() - jobs.size());
  problemCounter.add(static_cast<std::int64_t>(family.size()));
  oracleRunCounter.add(report.oracleRuns);
  cacheHitCounter.add(report.cacheHits);

  // One oracle run per unique problem, one job per pool task. grain 1: a
  // single slow classification (a deep synthesis loop) must not serialise
  // its chunk-mates, and the work-stealing deques rebalance the rest.
  PoolHandle handle(options.engine);
  report.threads = handle.pool().lanes();
  handle.pool().parallelFor(
      0, static_cast<std::int64_t>(jobs.size()), /*grain=*/1,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t j = begin; j < end; ++j) {
          const std::size_t i = jobs[static_cast<std::size_t>(j)];
          const Stopwatch clock;
          telemetry::ScopedSpan classifySpan("sweep/classify/" +
                                             report.entries[i].problem);
          report.entries[i].report =
              std::make_shared<const synthesis::OracleReport>(
                  synthesis::classifyOnGrid(family[i], options.oracle));
          report.entries[i].seconds = clock.seconds();
        }
      });

  // Publish fresh reports into the cross-call cache (caller thread, family
  // order -- deterministic), then fan cached reports out to their readers.
  if (options.reportCache != nullptr) {
    for (std::size_t i : jobs) {
      options.reportCache->insert(family[i], report.entries[i].report);
    }
  }
  for (std::size_t i = 0; i < family.size(); ++i) {
    if (runOf[i] != i) {
      report.entries[i].report = report.entries[runOf[i]].report;
    }
  }
  report.seconds = sweepClock.seconds();
  return report;
}

ClassifyResult classify(const GridLcl& problem,
                        const ClassifyOptions& options) {
  static const telemetry::Counter gridCounter =
      telemetry::counter("classify.grid");
  gridCounter.increment();
  ClassifyResult result;
  result.problem = problem.name();
  if (problem.hasTable()) {
    result.fingerprint = problem.table().fingerprint();
  }
  if (options.reportCache != nullptr) {
    if (auto cached = options.reportCache->find(problem)) {
      result.grid = std::move(cached);
      result.cacheHit = true;
      result.complexity = synthesis::gridComplexityName(result.grid->complexity);
      return result;
    }
  }
  const Stopwatch clock;
  telemetry::ScopedSpan span("classify/grid/" + result.problem);
  result.grid = std::make_shared<const synthesis::OracleReport>(
      synthesis::classifyOnGrid(problem, options.oracle));
  result.seconds = clock.seconds();
  result.complexity = synthesis::gridComplexityName(result.grid->complexity);
  if (options.reportCache != nullptr) {
    options.reportCache->insert(problem, result.grid);
  }
  return result;
}

ClassifyResult classify(const cycle::CycleLcl& problem,
                        const ClassifyOptions& options) {
  static const telemetry::Counter cycleCounter =
      telemetry::counter("classify.cycle");
  (void)options;  // cycle classification takes no oracle knobs and no cache
  cycleCounter.increment();
  ClassifyResult result;
  result.problem = problem.name();
  const Stopwatch clock;
  telemetry::ScopedSpan span("classify/cycle/" + result.problem);
  result.cycle = cycle::classifyCycleLcl(problem);
  result.seconds = clock.seconds();
  result.complexity = cycle::complexityName(result.cycle->complexity);
  return result;
}

std::string sweepReportJson(const SweepReport& report,
                            const SweepOptions& options) {
  support::JsonWriter json;
  json.beginObject();
  json.key("name").value("family_sweep");
  json.key("config").beginObject();
  json.key("threads").value(report.threads);
  json.key("problems").value(static_cast<int>(report.entries.size()));
  json.key("cache_by_fingerprint").value(options.cacheByFingerprint);
  json.key("incremental_sat").value(options.oracle.synthesis.incremental);
  json.key("max_k").value(options.oracle.synthesis.maxK);
  json.key("probe_sizes").beginArray();
  for (int n : options.oracle.probeSizes) json.value(n);
  json.endArray();
  json.endObject();

  json.key("results").beginArray();
  for (const SweepEntry& entry : report.entries) {
    json.beginObject();
    json.key("problem").value(entry.problem);
    json.key("fingerprint")
        .value(support::JsonWriter::hex(entry.fingerprint));
    json.key("cache_hit").value(entry.cacheHit);
    json.key("fingerprint_hits").value(entry.fingerprintHits);
    json.key("seconds").value(entry.seconds);
    if (entry.report) {
      json.key("complexity")
          .value(synthesis::gridComplexityName(entry.report->complexity));
      json.key("trivial_label").value(entry.report->trivialLabel);
      json.key("synthesis_attempts")
          .value(static_cast<int>(entry.report->attempts.size()));
      if (entry.report->rule) {
        json.key("rule_k").value(entry.report->rule->k);
      }
      json.key("feasibility").beginArray();
      for (const auto& [n, feasible] : entry.report->feasibility) {
        json.beginObject();
        json.key("n").value(n);
        json.key("feasible").value(feasible);
        json.endObject();
      }
      json.endArray();
    }
    json.endObject();
  }
  json.endArray();

  json.key("oracle_runs").value(report.oracleRuns);
  json.key("cache_hits").value(report.cacheHits);
  json.key("seconds").value(report.seconds);
  json.endObject();
  return json.str();
}

}  // namespace lclgrid::engine
