#include "engine/family_sweep.hpp"

#include <unordered_map>
#include <utility>

#include "support/json.hpp"
#include "support/telemetry.hpp"
#include "support/timing.hpp"

namespace lclgrid::engine {

using support::Stopwatch;

SweepReport sweepFamily(std::span<const GridLcl> family,
                        const SweepOptions& options) {
  static const telemetry::Counter problemCounter =
      telemetry::counter("sweep.problems");
  static const telemetry::Counter oracleRunCounter =
      telemetry::counter("sweep.oracle_runs");
  static const telemetry::Counter cacheHitCounter =
      telemetry::counter("sweep.cache_hits");
  const Stopwatch sweepClock;
  telemetry::ScopedSpan sweepSpan("sweep/family");
  SweepReport report;
  report.entries.resize(family.size());

  // Resolve the cache structure up front (deterministically, on the
  // caller): each family index is either the designated runner for its
  // fingerprint or a reader of an earlier run. Uncompiled problems get no
  // fingerprint and always run.
  std::vector<std::size_t> runOf(family.size());
  std::vector<std::size_t> jobs;  // indices that run the oracle
  std::unordered_map<std::uint64_t, std::size_t> firstWithFingerprint;
  for (std::size_t i = 0; i < family.size(); ++i) {
    SweepEntry& entry = report.entries[i];
    entry.problem = family[i].name();
    if (options.cacheByFingerprint && family[i].hasTable()) {
      entry.fingerprint = family[i].table().fingerprint();
      auto [it, inserted] =
          firstWithFingerprint.try_emplace(entry.fingerprint, i);
      // Exact content check behind the 64-bit hash: a fingerprint
      // collision between different relations must run fresh, never alias
      // another problem's report.
      if (!inserted &&
          family[i].table().sameContent(family[it->second].table())) {
        runOf[i] = it->second;
        entry.cacheHit = true;
        ++report.entries[it->second].fingerprintHits;
        continue;
      }
    } else if (family[i].hasTable()) {
      entry.fingerprint = family[i].table().fingerprint();
    }
    runOf[i] = i;
    jobs.push_back(i);
  }
  report.oracleRuns = static_cast<int>(jobs.size());
  report.cacheHits = static_cast<int>(family.size() - jobs.size());
  problemCounter.add(static_cast<std::int64_t>(family.size()));
  oracleRunCounter.add(report.oracleRuns);
  cacheHitCounter.add(report.cacheHits);

  // One oracle run per unique problem, one job per pool task. grain 1: a
  // single slow classification (a deep synthesis loop) must not serialise
  // its chunk-mates, and the work-stealing deques rebalance the rest.
  PoolHandle handle(options.engine);
  report.threads = handle.pool().lanes();
  handle.pool().parallelFor(
      0, static_cast<std::int64_t>(jobs.size()), /*grain=*/1,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t j = begin; j < end; ++j) {
          const std::size_t i = jobs[static_cast<std::size_t>(j)];
          const Stopwatch clock;
          telemetry::ScopedSpan classifySpan("sweep/classify/" +
                                             report.entries[i].problem);
          report.entries[i].report =
              std::make_shared<const synthesis::OracleReport>(
                  synthesis::classifyOnGrid(family[i], options.oracle));
          report.entries[i].seconds = clock.seconds();
        }
      });

  // Fan cached reports out to their readers.
  for (std::size_t i = 0; i < family.size(); ++i) {
    if (runOf[i] != i) {
      report.entries[i].report = report.entries[runOf[i]].report;
    }
  }
  report.seconds = sweepClock.seconds();
  return report;
}

std::string sweepReportJson(const SweepReport& report,
                            const SweepOptions& options) {
  support::JsonWriter json;
  json.beginObject();
  json.key("name").value("family_sweep");
  json.key("config").beginObject();
  json.key("threads").value(report.threads);
  json.key("problems").value(static_cast<int>(report.entries.size()));
  json.key("cache_by_fingerprint").value(options.cacheByFingerprint);
  json.key("incremental_sat").value(options.oracle.synthesis.incremental);
  json.key("max_k").value(options.oracle.synthesis.maxK);
  json.key("probe_sizes").beginArray();
  for (int n : options.oracle.probeSizes) json.value(n);
  json.endArray();
  json.endObject();

  json.key("results").beginArray();
  for (const SweepEntry& entry : report.entries) {
    json.beginObject();
    json.key("problem").value(entry.problem);
    json.key("fingerprint")
        .value(support::JsonWriter::hex(entry.fingerprint));
    json.key("cache_hit").value(entry.cacheHit);
    json.key("fingerprint_hits").value(entry.fingerprintHits);
    json.key("seconds").value(entry.seconds);
    if (entry.report) {
      json.key("complexity")
          .value(synthesis::gridComplexityName(entry.report->complexity));
      json.key("trivial_label").value(entry.report->trivialLabel);
      json.key("synthesis_attempts")
          .value(static_cast<int>(entry.report->attempts.size()));
      if (entry.report->rule) {
        json.key("rule_k").value(entry.report->rule->k);
      }
      json.key("feasibility").beginArray();
      for (const auto& [n, feasible] : entry.report->feasibility) {
        json.beginObject();
        json.key("n").value(n);
        json.key("feasible").value(feasible);
        json.endObject();
      }
      json.endArray();
    }
    json.endObject();
  }
  json.endArray();

  json.key("oracle_runs").value(report.oracleRuns);
  json.key("cache_hits").value(report.cacheHits);
  json.key("seconds").value(report.seconds);
  json.endObject();
  return json.str();
}

}  // namespace lclgrid::engine
