#include "lowerbound/qsum.hpp"

#include <cstdlib>

namespace lclgrid::lowerbound {

bool verifyQSum(const std::vector<int>& labels, long long target) {
  long long total = 0;
  for (int label : labels) {
    if (label < -1 || label > 1) return false;
    total += label;
  }
  return total == target;
}

QSumRun solveQSumGlobally(int n, long long target) {
  QSumRun run;
  run.rounds = n / 2 + 1;
  if (std::abs(target) > n) {
    run.failure = "target out of range";
    return run;
  }
  run.labels.assign(static_cast<std::size_t>(n), 0);
  // Deterministic assignment: the first |target| nodes output sign(target).
  int sign = target > 0 ? 1 : -1;
  for (long long i = 0; i < std::abs(target); ++i) {
    run.labels[static_cast<std::size_t>(i)] = sign;
  }
  run.solved = true;
  return run;
}

bool qSumConditionsHold(int n, long long target) {
  if (n % 2 == 1 && target % 2 == 0) return false;
  return std::abs(target) * 2 <= n;
}

}  // namespace lclgrid::lowerbound
