// The q-sum coordination problem (Section 9, Theorem 10): on a directed
// n-cycle every node outputs a label in {-1, 0, +1} whose total equals q(n).
// For any q with q(n) odd for odd n and |q(n)| <= n/2 the problem needs
// Omega(n) rounds; 3-colouring (and {0,3,4}-orientation) of grids reduce to
// it, which is how the paper proves their Omega(n) lower bounds.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace lclgrid::lowerbound {

/// Checks a q-sum output vector.
bool verifyQSum(const std::vector<int>& labels, long long target);

struct QSumRun {
  bool solved = false;
  std::vector<int> labels;
  int rounds = 0;
  std::string failure;
};

/// The optimal (Theta(n)) solver: gather the cycle, let the identifier-
/// minimal node output the residue. Fails when |target| > n.
QSumRun solveQSumGlobally(int n, long long target);

/// The admissibility conditions of Theorem 10 on the function q.
bool qSumConditionsHold(int n, long long target);

}  // namespace lclgrid::lowerbound
