// The 3-colouring lower-bound machinery of Section 9 (Theorem 9): from any
// *greedy* 3-colouring of the torus, an auxiliary directed graph H is built
// on the colour-3 nodes (edges between diagonal pairs sharing a colour-1
// and a colour-2 neighbour, directed so colour 1 is on the left). The
// per-row balance of northbound minus southbound crossings,
//   s_r(G) = sum over colour-3 nodes v of row r of l(v),
// is invariant across rows (Lemma 12), odd for odd n and bounded by n/2
// (Lemma 14) -- so a o(n)-round 3-colouring algorithm would solve q-sum
// coordination, which is impossible (Theorem 10).
#pragma once

#include <vector>

#include "grid/torus2d.hpp"

namespace lclgrid::lowerbound {

/// Greedy-ification preprocessing (2 rounds): recolour classes 2 then 1 so
/// that every colour-c node has neighbours of all smaller colours. Input
/// must be a proper 3-colouring (labels 0, 1, 2); output remains proper.
std::vector<int> makeGreedy(const Torus2D& torus, std::vector<int> colours);

/// True iff the colouring is greedy in the paper's sense.
bool isGreedyColouring(const Torus2D& torus, const std::vector<int>& colours);

/// The label l(v) in {-1, 0, +1} of a colour-3 node (Lemma 14): +1 for a
/// northbound crossing, -1 southbound, 0 otherwise. Nodes of other colours
/// get 0.
int crossingLabel(const Torus2D& torus, const std::vector<int>& colours,
                  int node);

/// s_r(G) for one row.
long long rowInvariant(const Torus2D& torus, const std::vector<int>& colours,
                       int row);

/// s_r(G) for every row (Lemma 12 predicts all entries equal).
std::vector<long long> allRowInvariants(const Torus2D& torus,
                                        const std::vector<int>& colours);

}  // namespace lclgrid::lowerbound
