#include "lowerbound/orientation_invariant.hpp"

#include <stdexcept>

#include "lcl/problems.hpp"

namespace lclgrid::lowerbound {

std::vector<int> inDegrees(const Torus2D& torus,
                           const std::vector<int>& orientationLabels) {
  std::vector<int> degree(static_cast<std::size_t>(torus.size()));
  for (int v = 0; v < torus.size(); ++v) {
    int south = orientationLabels[static_cast<std::size_t>(
        torus.step(v, Dir::South))];
    int west = orientationLabels[static_cast<std::size_t>(
        torus.step(v, Dir::West))];
    degree[static_cast<std::size_t>(v)] = problems::orientationInDegree(
        orientationLabels[static_cast<std::size_t>(v)], south, west);
  }
  return degree;
}

int verticalEdgeLabel(const Torus2D& torus, const std::vector<int>& inDegree,
                      const std::vector<int>& orientationLabels, int x,
                      int i) {
  int lower = torus.id(x, i);
  int upper = torus.id(x, i + 1);
  // Rule 1: an endpoint with in-degree 0 labels the edge 0.
  if (inDegree[static_cast<std::size_t>(lower)] == 0 ||
      inDegree[static_cast<std::size_t>(upper)] == 0) {
    return 0;
  }
  // Nearest 0-vertices in rows i, i+1 to the left and right. (Gaps between
  // 0-columns are bounded for valid orientations; the scan is capped by n.)
  auto findZero = [&](int direction) -> std::pair<int, int> {
    for (int step = 1; step < torus.n(); ++step) {
      int column = x + direction * step;
      for (int row : {i, i + 1}) {
        int node = torus.id(column, row);
        if (inDegree[static_cast<std::size_t>(node)] == 0) {
          return {step, row};  // column distance and row of the 0-vertex
        }
      }
    }
    return {-1, -1};
  };
  auto [leftSteps, leftRow] = findZero(-1);
  auto [rightSteps, rightRow] = findZero(1);
  if (leftSteps < 0 || rightSteps < 0) return 0;  // no 0-vertices at all
  int l1 = leftSteps + rightSteps + (leftRow == rightRow ? 0 : 1);
  if (l1 % 2 == 0) return 0;
  // Odd distance: sign by the edge's direction ("up" = +1). The edge from
  // (x,i) to (x,i+1) is the N-edge of the lower node.
  bool pointsUp = problems::orientationNOut(
      orientationLabels[static_cast<std::size_t>(lower)]);
  return pointsUp ? 1 : -1;
}

long long verticalRowSum(const Torus2D& torus,
                         const std::vector<int>& orientationLabels, int i) {
  auto degree = inDegrees(torus, orientationLabels);
  long long total = 0;
  for (int x = 0; x < torus.n(); ++x) {
    total += verticalEdgeLabel(torus, degree, orientationLabels, x, i);
  }
  return total;
}

std::vector<long long> allVerticalRowSums(
    const Torus2D& torus, const std::vector<int>& orientationLabels) {
  auto degree = inDegrees(torus, orientationLabels);
  std::vector<long long> sums(static_cast<std::size_t>(torus.n()));
  for (int i = 0; i < torus.n(); ++i) {
    long long total = 0;
    for (int x = 0; x < torus.n(); ++x) {
      total += verticalEdgeLabel(torus, degree, orientationLabels, x, i);
    }
    sums[static_cast<std::size_t>(i)] = total;
  }
  return sums;
}

}  // namespace lclgrid::lowerbound
