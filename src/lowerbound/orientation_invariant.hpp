// The {0,3,4}-orientation lower-bound machinery of Theorem 25: the vertical
// edges between rows i and i+1 are labelled {-1, 0, +1} from the parity of
// the L1 distance between the nearest in-degree-0 vertices to the left and
// right; the row sum r(i) is invariant across rows, odd for odd n, and
// bounded by n/2 -- reducing {0,3,4}-orientation to q-sum coordination.
#pragma once

#include <vector>

#include "grid/torus2d.hpp"

namespace lclgrid::lowerbound {

/// In-degree of every node under an orientation labelling (the encoding of
/// problems::orientation: bit 0 = own E-edge points east, bit 1 = own
/// N-edge points north).
std::vector<int> inDegrees(const Torus2D& torus,
                           const std::vector<int>& orientationLabels);

/// The label of the vertical edge between (x, i) and (x, i+1).
int verticalEdgeLabel(const Torus2D& torus, const std::vector<int>& inDegree,
                      const std::vector<int>& orientationLabels, int x, int i);

/// r(i): the sum of vertical-edge labels between rows i and i+1.
long long verticalRowSum(const Torus2D& torus,
                         const std::vector<int>& orientationLabels, int i);

/// r(i) for every i (Theorem 25 predicts all equal).
std::vector<long long> allVerticalRowSums(
    const Torus2D& torus, const std::vector<int>& orientationLabels);

}  // namespace lclgrid::lowerbound
