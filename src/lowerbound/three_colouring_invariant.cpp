#include "lowerbound/three_colouring_invariant.hpp"

#include <stdexcept>

namespace lclgrid::lowerbound {

namespace {

/// H-edge test: is there a directed edge from colour-3 node `from` to
/// colour-3 node `to`, where `to` = from + (dx, dy), dx, dy in {-1, +1}?
/// The two shared neighbours are from+(dx,0) and from+(0,dy); the edge is
/// directed so that the colour-1 (label 0) node lies to the LEFT of the
/// direction of travel.
bool hEdge(const Torus2D& torus, const std::vector<int>& colours, int from,
           int dx, int dy) {
  int to = torus.shift(from, dx, dy);
  if (colours[static_cast<std::size_t>(from)] != 2 ||
      colours[static_cast<std::size_t>(to)] != 2) {
    return false;
  }
  int sideA = torus.shift(from, dx, 0);  // horizontal shared neighbour
  int sideB = torus.shift(from, 0, dy);  // vertical shared neighbour
  int colourA = colours[static_cast<std::size_t>(sideA)];
  int colourB = colours[static_cast<std::size_t>(sideB)];
  // Left of direction (dx, dy) is the side whose cross product
  // (dx, dy) x (cell - from) is positive: for the horizontal cell (dx, 0):
  // cross = dx*0 - dy*dx = -dx*dy; for the vertical cell (0, dy):
  // cross = dx*dy. So the vertical cell is left iff dx*dy > 0.
  int leftColour = dx * dy > 0 ? colourB : colourA;
  int rightColour = dx * dy > 0 ? colourA : colourB;
  return leftColour == 0 && rightColour == 1;
}

}  // namespace

std::vector<int> makeGreedy(const Torus2D& torus, std::vector<int> colours) {
  // Recolour classes 2 then 1 (each class is independent, so simultaneous
  // recolouring keeps the colouring proper) and iterate to a fixpoint:
  // lowering a node can strip a neighbour's support, so one sweep is not
  // always enough. The total colour sum strictly decreases with every
  // effective sweep, so termination is immediate; in practice 2-3 sweeps
  // suffice (still O(1) rounds for the reduction's purposes).
  bool changed = true;
  while (changed) {
    changed = false;
    for (int cls = 2; cls >= 1; --cls) {
      std::vector<int> next = colours;
      for (int v = 0; v < torus.size(); ++v) {
        if (colours[static_cast<std::size_t>(v)] != cls) continue;
        bool used[3] = {false, false, false};
        for (Dir d : kAllDirs) {
          int c = colours[static_cast<std::size_t>(torus.step(v, d))];
          if (c >= 0 && c < 3) used[c] = true;
        }
        for (int candidate = 0; candidate < cls; ++candidate) {
          if (!used[candidate]) {
            next[static_cast<std::size_t>(v)] = candidate;
            changed = true;
            break;
          }
        }
      }
      colours.swap(next);
    }
  }
  return colours;
}

bool isGreedyColouring(const Torus2D& torus, const std::vector<int>& colours) {
  for (int v = 0; v < torus.size(); ++v) {
    int c = colours[static_cast<std::size_t>(v)];
    bool seen[3] = {false, false, false};
    for (Dir d : kAllDirs) {
      int nc = colours[static_cast<std::size_t>(torus.step(v, d))];
      if (nc >= 0 && nc < 3) seen[nc] = true;
      if (nc == c) return false;  // not even proper
    }
    for (int smaller = 0; smaller < c; ++smaller) {
      if (!seen[smaller]) return false;
    }
  }
  return true;
}

int crossingLabel(const Torus2D& torus, const std::vector<int>& colours,
                  int node) {
  if (colours[static_cast<std::size_t>(node)] != 2) return 0;
  // Collect in- and out-neighbours over the four diagonal directions.
  int inFrom = -2, outTo = -2;  // -2 = none, -1 = multiple
  int inCount = 0, outCount = 0;
  for (int dx : {-1, 1}) {
    for (int dy : {-1, 1}) {
      if (hEdge(torus, colours, node, dx, dy)) {
        ++outCount;
        outTo = outCount == 1 ? torus.shift(node, dx, dy) : -1;
      }
      int from = torus.shift(node, dx, dy);
      if (hEdge(torus, colours, from, -dx, -dy)) {
        ++inCount;
        inFrom = inCount == 1 ? from : -1;
      }
    }
  }
  if (inCount != 1 || outCount != 1) return 0;
  int y = torus.yOf(node);
  int fromNorth = torus.yOf(inFrom) == (y + 1) % torus.n();
  int toNorth = torus.yOf(outTo) == (y + 1) % torus.n();
  if (!fromNorth && toNorth) return 1;   // northbound
  if (fromNorth && !toNorth) return -1;  // southbound
  return 0;
}

long long rowInvariant(const Torus2D& torus, const std::vector<int>& colours,
                       int row) {
  long long total = 0;
  for (int x = 0; x < torus.n(); ++x) {
    total += crossingLabel(torus, colours, torus.id(x, row));
  }
  return total;
}

std::vector<long long> allRowInvariants(const Torus2D& torus,
                                        const std::vector<int>& colours) {
  std::vector<long long> rows(static_cast<std::size_t>(torus.n()));
  for (int r = 0; r < torus.n(); ++r) {
    rows[static_cast<std::size_t>(r)] = rowInvariant(torus, colours, r);
  }
  return rows;
}

}  // namespace lclgrid::lowerbound
