#include "synthesis/synthesizer.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sat/cnf.hpp"
#include "support/telemetry.hpp"
#include "support/timing.hpp"
#include "tiles/enumerator.hpp"

namespace lclgrid::synthesis {

bool incrementalSatDefault() {
  const char* env = std::getenv("LCLGRID_INCREMENTAL_SAT");
  return env == nullptr || std::string_view(env) != "0";
}

std::vector<tiles::TileShape> candidateShapes(const GridLcl& lcl, int k,
                                              bool wider) {
  // Overlap windows must stay within 63 bits: for edge-decomposable
  // problems the largest is (h+1) x w or h x (w+1); otherwise (h+2) x (w+2).
  const bool decomposable = lcl.isEdgeDecomposable();
  auto encodable = [&](const tiles::TileShape& s) {
    if (s.cells() > 63) return false;
    if (decomposable) {
      return (s.height + 1) * s.width <= 63 && s.height * (s.width + 1) <= 63;
    }
    return (s.height + 2) * (s.width + 2) <= 63;
  };
  std::vector<tiles::TileShape> shapes;
  auto add = [&](int h, int w) {
    if (h < 1 || w < 1) return;
    tiles::TileShape s{h, w};
    for (const auto& existing : shapes) {
      if (existing == s) return;
    }
    if (encodable(s)) shapes.push_back(s);
  };
  // The paper's choices first: 3x2 for k=1, 7x5 for k=3 follow the pattern
  // (2k+1) x (2k-1) with a wider fallback.
  add(2 * k + 1, std::max(2, 2 * k - 1));
  if (wider) {
    add(2 * k + 1, 2 * k);
    add(2 * k + 1, 2 * k + 1);
    add(2 * k + 3, 2 * k + 1);
  }
  return shapes;
}

namespace {

/// One-hot label variables for every tile, with the exactly-one constraints
/// routed through `add` so the incremental path can guard them with its
/// activation literal. The fresh path's `add` is a plain solver.addClause,
/// which reproduces makeDomainVar() clause for clause.
template <typename AddClause>
std::vector<sat::DomainVar> makeTileLabels(sat::Solver& solver, int tileCount,
                                           int sigma, AddClause&& add) {
  std::vector<sat::DomainVar> label;
  label.reserve(static_cast<std::size_t>(tileCount));
  std::vector<int> atLeastOne;
  for (int t = 0; t < tileCount; ++t) {
    sat::DomainVar dv(solver, sigma);
    atLeastOne.clear();
    for (int v = 0; v < sigma; ++v) atLeastOne.push_back(dv.is(v));
    add(atLeastOne);
    for (int a = 0; a < sigma; ++a) {
      for (int b = a + 1; b < sigma; ++b) {
        add({dv.isNot(a), dv.isNot(b)});
      }
    }
    label.push_back(dv);
  }
  return label;
}

/// Emits every blocking clause of the synthesis CSP through `add`; shared by
/// the fresh and incremental paths so both encode the identical instance.
/// Returns the number of blocking clauses (the attempt's clauseCount).
template <typename AddClause>
long long encodeConstraints(const GridLcl& lcl,
                            const ConstraintSystem& constraints,
                            const std::vector<sat::DomainVar>& label,
                            AddClause&& add) {
  const int sigma = lcl.sigma();
  long long clauses = 0;

  if (constraints.edgeDecomposable) {
    for (const TilePair& pair : constraints.horizontal) {
      for (int a = 0; a < sigma; ++a) {
        for (int b = 0; b < sigma; ++b) {
          if (lcl.horizontalOk(a, b)) continue;
          add({label[static_cast<std::size_t>(pair.a)].isNot(a),
               label[static_cast<std::size_t>(pair.b)].isNot(b)});
          ++clauses;
        }
      }
    }
    for (const TilePair& pair : constraints.vertical) {
      for (int a = 0; a < sigma; ++a) {
        for (int b = 0; b < sigma; ++b) {
          if (lcl.verticalOk(a, b)) continue;
          add({label[static_cast<std::size_t>(pair.a)].isNot(a),
               label[static_cast<std::size_t>(pair.b)].isNot(b)});
          ++clauses;
        }
      }
    }
    return clauses;
  }

  // One blocking clause per forbidden table row and tile cross; the
  // compiled table walks only the dependent positions (fully-allowed
  // rows are skipped a word at a time). Uncompiled problems fall back
  // to the seed's sigma^5 predicate enumeration.
  const std::uint8_t deps = lcl.deps();
  const bool useN = deps & kDepN, useE = deps & kDepE;
  const bool useS = deps & kDepS, useW = deps & kDepW;
  std::vector<int> clause;
  for (const TileCross& cross : constraints.crosses) {
    auto blockTuple = [&](int c, int n, int e, int s, int w) {
      clause.clear();
      clause.push_back(label[static_cast<std::size_t>(cross.centre)].isNot(c));
      if (useN)
        clause.push_back(label[static_cast<std::size_t>(cross.north)].isNot(n));
      if (useE)
        clause.push_back(label[static_cast<std::size_t>(cross.east)].isNot(e));
      if (useS)
        clause.push_back(label[static_cast<std::size_t>(cross.south)].isNot(s));
      if (useW)
        clause.push_back(label[static_cast<std::size_t>(cross.west)].isNot(w));
      add(clause);
      ++clauses;
    };
    if (lcl.hasTable()) {
      lcl.table().forEachForbidden(blockTuple);
    } else {
      for (int c = 0; c < sigma; ++c) {
        for (int n = 0; n < (useN ? sigma : 1); ++n) {
          for (int e = 0; e < (useE ? sigma : 1); ++e) {
            for (int s = 0; s < (useS ? sigma : 1); ++s) {
              for (int w = 0; w < (useW ? sigma : 1); ++w) {
                if (!lcl.allows(c, n, e, s, w)) blockTuple(c, n, e, s, w);
              }
            }
          }
        }
      }
    }
  }
  return clauses;
}

/// The fresh-regime attempt: encode (k, shape) into the throwaway `solver`
/// with unconditional clauses and solve. The incremental regime reuses the
/// same generators (makeTileLabels / encodeConstraints) through its
/// activation-gated ClauseGroup instead.
SynthesisAttempt attemptOn(const GridLcl& lcl, int k, tiles::TileShape shape,
                           std::int64_t satConflictBudget,
                           sat::Solver& solver) {
  auto add = [&](const std::vector<int>& clause) { solver.addClause(clause); };
  SynthesisAttempt attempt;
  attempt.k = k;
  attempt.shape = shape;
  auto startTime = std::chrono::steady_clock::now();
  auto finish = [&]() {
    attempt.seconds = support::secondsSince(startTime);
    return attempt;
  };

  tiles::TileSet tileSet = tiles::enumerateTiles(k, shape.height, shape.width);
  attempt.tileCount = tileSet.size();

  ConstraintSystem constraints;
  try {
    constraints = buildConstraints(lcl, tileSet);
  } catch (const std::invalid_argument&) {
    attempt.failureReason = "window too large to encode";
    return finish();
  }

  auto label = makeTileLabels(solver, tileSet.size(), lcl.sigma(), add);
  attempt.clauseCount = encodeConstraints(lcl, constraints, label, add);

  sat::Result outcome = solver.solve(satConflictBudget);
  attempt.satConflicts = solver.conflicts();
  if (outcome == sat::Result::Unknown) {
    attempt.failureReason = "sat budget exhausted";
    return finish();
  }
  if (outcome == sat::Result::Unsat) {
    attempt.failureReason = "unsat";
    return finish();
  }

  SynthesizedRule rule;
  rule.k = k;
  rule.shape = shape;
  rule.labelOf.resize(static_cast<std::size_t>(tileSet.size()));
  for (int t = 0; t < tileSet.size(); ++t) {
    rule.labelOf[static_cast<std::size_t>(t)] =
        label[static_cast<std::size_t>(t)].decode(solver);
  }
  rule.tileSet = std::move(tileSet);
  attempt.success = true;
  attempt.rule = std::move(rule);
  return finish();
}

/// The ladder loop shared by the two regimes.
template <typename Attempt>
SynthesisResult runLadder(const GridLcl& lcl, const SynthesisOptions& options,
                          Attempt&& attemptShape) {
  static const telemetry::Counter attemptCounter =
      telemetry::counter("synth.attempts");
  static const telemetry::Counter successCounter =
      telemetry::counter("synth.successes");
  SynthesisResult result;
  for (int k = 1; k <= options.maxK; ++k) {
    // One span per ladder rung: the Chrome trace shows the k-climb of each
    // synthesis as a run of sibling spans under the classify span.
    telemetry::ScopedSpan rungSpan("synth/k=" + std::to_string(k));
    for (const tiles::TileShape& shape :
         candidateShapes(lcl, k, options.tryWiderShapes)) {
      attemptCounter.increment();
      SynthesisAttempt attempt =
          attemptShape(k, shape, options.satConflictBudget);
      bool success = attempt.success;
      if (success) successCounter.increment();
      if (success) {
        result.rule = std::move(attempt.rule);
        attempt.rule.reset();
      }
      result.attempts.push_back(std::move(attempt));
      if (success) {
        result.success = true;
        return result;
      }
    }
  }
  return result;
}

}  // namespace

SynthesisAttempt synthesizeForShape(const GridLcl& lcl, int k,
                                    tiles::TileShape shape,
                                    std::int64_t satConflictBudget) {
  sat::Solver solver;
  return attemptOn(lcl, k, shape, satConflictBudget, solver);
}

IncrementalSynthesizer::IncrementalSynthesizer(const GridLcl& lcl)
    : lcl_(lcl) {}

SynthesisAttempt IncrementalSynthesizer::attemptShape(
    int k, tiles::TileShape shape, std::int64_t satConflictBudget) {
  auto startTime = std::chrono::steady_clock::now();
  // Retire the previous instance: one unit clause kills its whole group,
  // including every learnt clause that mentioned its activation literal.
  if (activeGroup_.open()) activeGroup_.retire(solver_);
  activeGroup_ = sat::ClauseGroup(solver_);
  active_ = ActiveInstance{};
  active_.k = k;
  active_.shape = shape;
  active_.tileSet = tiles::enumerateTiles(k, shape.height, shape.width);

  ConstraintSystem constraints;
  try {
    constraints = buildConstraints(lcl_, active_.tileSet);
  } catch (const std::invalid_argument&) {
    SynthesisAttempt attempt;
    attempt.k = k;
    attempt.shape = shape;
    attempt.tileCount = active_.tileSet.size();
    attempt.failureReason = "window too large to encode";
    attempt.seconds = support::secondsSince(startTime);
    return attempt;
  }

  auto add = [&](const std::vector<int>& clause) {
    activeGroup_.addClause(solver_, clause);
  };
  active_.label =
      makeTileLabels(solver_, active_.tileSet.size(), lcl_.sigma(), add);
  active_.clauseCount = encodeConstraints(lcl_, constraints, active_.label, add);
  active_.encodable = true;
  return solveActive(satConflictBudget, startTime);
}

SynthesisAttempt IncrementalSynthesizer::resolveActive(
    std::int64_t satConflictBudget) {
  if (!active_.encodable) {
    throw std::logic_error(
        "IncrementalSynthesizer::resolveActive: no encoded instance");
  }
  return solveActive(satConflictBudget, std::chrono::steady_clock::now());
}

SynthesisAttempt IncrementalSynthesizer::solveActive(
    std::int64_t satConflictBudget,
    std::chrono::steady_clock::time_point startTime) {
  SynthesisAttempt attempt;
  attempt.k = active_.k;
  attempt.shape = active_.shape;
  attempt.tileCount = active_.tileSet.size();
  attempt.clauseCount = active_.clauseCount;
  auto finish = [&]() {
    attempt.seconds = support::secondsSince(startTime);
    return attempt;
  };

  const std::int64_t conflictsBefore = solver_.conflicts();
  sat::Result outcome =
      solver_.solve({activeGroup_.activation()}, satConflictBudget);
  attempt.satConflicts = solver_.conflicts() - conflictsBefore;
  if (outcome == sat::Result::Unknown) {
    attempt.failureReason = "sat budget exhausted";
    return finish();
  }
  if (outcome == sat::Result::Unsat) {
    attempt.failureReason = "unsat";
    return finish();
  }

  SynthesizedRule rule;
  rule.k = active_.k;
  rule.shape = active_.shape;
  rule.labelOf.resize(static_cast<std::size_t>(active_.tileSet.size()));
  for (int t = 0; t < active_.tileSet.size(); ++t) {
    rule.labelOf[static_cast<std::size_t>(t)] =
        active_.label[static_cast<std::size_t>(t)].decode(solver_);
  }
  rule.tileSet = active_.tileSet;  // copy: the instance stays live
  attempt.success = true;
  attempt.rule = std::move(rule);
  return finish();
}

SynthesisResult IncrementalSynthesizer::run(const SynthesisOptions& options) {
  return runLadder(lcl_, options,
                   [&](int k, tiles::TileShape shape, std::int64_t budget) {
                     return attemptShape(k, shape, budget);
                   });
}

SynthesisResult synthesize(const GridLcl& lcl, const SynthesisOptions& options) {
  if (options.incremental) {
    IncrementalSynthesizer synthesizer(lcl);
    return synthesizer.run(options);
  }
  return runLadder(lcl, options,
                   [&](int k, tiles::TileShape shape, std::int64_t budget) {
                     return synthesizeForShape(lcl, k, shape, budget);
                   });
}

}  // namespace lclgrid::synthesis
