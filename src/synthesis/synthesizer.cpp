#include "synthesis/synthesizer.hpp"

#include <chrono>

#include "sat/cnf.hpp"
#include "tiles/enumerator.hpp"

namespace lclgrid::synthesis {

std::vector<tiles::TileShape> candidateShapes(const GridLcl& lcl, int k,
                                              bool wider) {
  // Overlap windows must stay within 63 bits: for edge-decomposable
  // problems the largest is (h+1) x w or h x (w+1); otherwise (h+2) x (w+2).
  const bool decomposable = lcl.isEdgeDecomposable();
  auto encodable = [&](const tiles::TileShape& s) {
    if (s.cells() > 63) return false;
    if (decomposable) {
      return (s.height + 1) * s.width <= 63 && s.height * (s.width + 1) <= 63;
    }
    return (s.height + 2) * (s.width + 2) <= 63;
  };
  std::vector<tiles::TileShape> shapes;
  auto add = [&](int h, int w) {
    if (h < 1 || w < 1) return;
    tiles::TileShape s{h, w};
    for (const auto& existing : shapes) {
      if (existing == s) return;
    }
    if (encodable(s)) shapes.push_back(s);
  };
  // The paper's choices first: 3x2 for k=1, 7x5 for k=3 follow the pattern
  // (2k+1) x (2k-1) with a wider fallback.
  add(2 * k + 1, std::max(2, 2 * k - 1));
  if (wider) {
    add(2 * k + 1, 2 * k);
    add(2 * k + 1, 2 * k + 1);
    add(2 * k + 3, 2 * k + 1);
  }
  return shapes;
}

SynthesisAttempt synthesizeForShape(const GridLcl& lcl, int k,
                                    tiles::TileShape shape,
                                    std::int64_t satConflictBudget) {
  SynthesisAttempt attempt;
  attempt.k = k;
  attempt.shape = shape;
  auto startTime = std::chrono::steady_clock::now();
  auto finish = [&]() {
    attempt.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - startTime)
                          .count();
    return attempt;
  };

  tiles::TileSet tileSet = tiles::enumerateTiles(k, shape.height, shape.width);
  attempt.tileCount = tileSet.size();

  ConstraintSystem constraints;
  try {
    constraints = buildConstraints(lcl, tileSet);
  } catch (const std::invalid_argument&) {
    attempt.failureReason = "window too large to encode";
    return finish();
  }

  // SAT encoding: a one-hot label per tile plus blocking clauses for every
  // violating label combination on every tile adjacency.
  sat::Solver solver;
  const int sigma = lcl.sigma();
  std::vector<sat::DomainVar> label;
  label.reserve(static_cast<std::size_t>(tileSet.size()));
  for (int t = 0; t < tileSet.size(); ++t) {
    label.push_back(sat::makeDomainVar(solver, sigma));
  }
  long long clauses = 0;

  if (constraints.edgeDecomposable) {
    for (const TilePair& pair : constraints.horizontal) {
      for (int a = 0; a < sigma; ++a) {
        for (int b = 0; b < sigma; ++b) {
          if (lcl.horizontalOk(a, b)) continue;
          solver.addClause({label[static_cast<std::size_t>(pair.a)].isNot(a),
                            label[static_cast<std::size_t>(pair.b)].isNot(b)});
          ++clauses;
        }
      }
    }
    for (const TilePair& pair : constraints.vertical) {
      for (int a = 0; a < sigma; ++a) {
        for (int b = 0; b < sigma; ++b) {
          if (lcl.verticalOk(a, b)) continue;
          solver.addClause({label[static_cast<std::size_t>(pair.a)].isNot(a),
                            label[static_cast<std::size_t>(pair.b)].isNot(b)});
          ++clauses;
        }
      }
    }
  } else {
    // One blocking clause per forbidden table row and tile cross; the
    // compiled table walks only the dependent positions (fully-allowed
    // rows are skipped a word at a time). Uncompiled problems fall back
    // to the seed's sigma^5 predicate enumeration.
    const std::uint8_t deps = lcl.deps();
    const bool useN = deps & kDepN, useE = deps & kDepE;
    const bool useS = deps & kDepS, useW = deps & kDepW;
    std::vector<int> clause;
    for (const TileCross& cross : constraints.crosses) {
      auto blockTuple = [&](int c, int n, int e, int s, int w) {
        clause.clear();
        clause.push_back(
            label[static_cast<std::size_t>(cross.centre)].isNot(c));
        if (useN)
          clause.push_back(
              label[static_cast<std::size_t>(cross.north)].isNot(n));
        if (useE)
          clause.push_back(
              label[static_cast<std::size_t>(cross.east)].isNot(e));
        if (useS)
          clause.push_back(
              label[static_cast<std::size_t>(cross.south)].isNot(s));
        if (useW)
          clause.push_back(
              label[static_cast<std::size_t>(cross.west)].isNot(w));
        solver.addClause(clause);
        ++clauses;
      };
      if (lcl.hasTable()) {
        lcl.table().forEachForbidden(blockTuple);
      } else {
        for (int c = 0; c < sigma; ++c) {
          for (int n = 0; n < (useN ? sigma : 1); ++n) {
            for (int e = 0; e < (useE ? sigma : 1); ++e) {
              for (int s = 0; s < (useS ? sigma : 1); ++s) {
                for (int w = 0; w < (useW ? sigma : 1); ++w) {
                  if (!lcl.allows(c, n, e, s, w)) blockTuple(c, n, e, s, w);
                }
              }
            }
          }
        }
      }
    }
  }
  attempt.clauseCount = clauses;

  sat::Result outcome = solver.solve(satConflictBudget);
  attempt.satConflicts = solver.conflicts();
  if (outcome == sat::Result::Unknown) {
    attempt.failureReason = "sat budget exhausted";
    return finish();
  }
  if (outcome == sat::Result::Unsat) {
    attempt.failureReason = "unsat";
    return finish();
  }

  SynthesizedRule rule;
  rule.k = k;
  rule.shape = shape;
  rule.labelOf.resize(static_cast<std::size_t>(tileSet.size()));
  for (int t = 0; t < tileSet.size(); ++t) {
    rule.labelOf[static_cast<std::size_t>(t)] =
        label[static_cast<std::size_t>(t)].decode(solver);
  }
  rule.tileSet = std::move(tileSet);
  attempt.success = true;
  attempt.rule = std::move(rule);
  return finish();
}

SynthesisResult synthesize(const GridLcl& lcl, const SynthesisOptions& options) {
  SynthesisResult result;
  for (int k = 1; k <= options.maxK; ++k) {
    for (const tiles::TileShape& shape :
         candidateShapes(lcl, k, options.tryWiderShapes)) {
      SynthesisAttempt attempt =
          synthesizeForShape(lcl, k, shape, options.satConflictBudget);
      bool success = attempt.success;
      if (success) {
        result.rule = std::move(attempt.rule);
        attempt.rule.reset();
      }
      result.attempts.push_back(std::move(attempt));
      if (success) {
        result.success = true;
        return result;
      }
    }
  }
  return result;
}

}  // namespace lclgrid::synthesis
