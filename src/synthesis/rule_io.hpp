// Serialization of synthesized rules: a normal form A' o S_k is a finite
// object (k, window shape, tile patterns, one label per tile), so it can be
// stored as text and shipped with an application -- synthesis happens once,
// offline, exactly as the paper envisions ("the algorithm synthesis becomes
// a matter of searching through the finite-size space of possible
// functions").
#pragma once

#include <iosfwd>
#include <string>

#include "synthesis/synthesizer.hpp"

namespace lclgrid::synthesis {

/// Text format:
///   lclgrid-rule v1
///   k <k>
///   shape <height> <width>
///   tiles <count>
///   <pattern-hex> <label>     (one line per tile)
std::string serializeRule(const SynthesizedRule& rule);
void writeRule(std::ostream& out, const SynthesizedRule& rule);

/// Parses the format above; throws std::runtime_error on malformed input.
SynthesizedRule parseRule(std::istream& in);
SynthesizedRule parseRuleString(const std::string& text);

}  // namespace lclgrid::synthesis
