#include "synthesis/rule_io.hpp"

#include <sstream>
#include <stdexcept>

namespace lclgrid::synthesis {

void writeRule(std::ostream& out, const SynthesizedRule& rule) {
  out << "lclgrid-rule v1\n";
  out << "k " << rule.k << "\n";
  out << "shape " << rule.shape.height << " " << rule.shape.width << "\n";
  out << "tiles " << rule.tileSet.size() << "\n";
  out << std::hex;
  for (int t = 0; t < rule.tileSet.size(); ++t) {
    out << rule.tileSet.pattern(t) << " " << std::dec
        << rule.labelOf[static_cast<std::size_t>(t)] << std::hex << "\n";
  }
  out << std::dec;
}

std::string serializeRule(const SynthesizedRule& rule) {
  std::ostringstream os;
  writeRule(os, rule);
  return os.str();
}

SynthesizedRule parseRule(std::istream& in) {
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "lclgrid-rule" || version != "v1") {
    throw std::runtime_error("parseRule: bad header");
  }
  std::string keyword;
  SynthesizedRule rule;
  int height = 0, width = 0, count = 0;
  if (!(in >> keyword >> rule.k) || keyword != "k" || rule.k < 1) {
    throw std::runtime_error("parseRule: bad k");
  }
  if (!(in >> keyword >> height >> width) || keyword != "shape" || height < 1 ||
      width < 1 || height * width > 63) {
    throw std::runtime_error("parseRule: bad shape");
  }
  if (!(in >> keyword >> count) || keyword != "tiles" || count < 1) {
    throw std::runtime_error("parseRule: bad tile count");
  }
  rule.shape = tiles::TileShape{height, width};

  std::vector<std::uint64_t> patterns;
  std::vector<std::pair<std::uint64_t, int>> entries;
  patterns.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    int label = 0;
    if (!(in >> std::hex >> bits >> std::dec >> label)) {
      throw std::runtime_error("parseRule: truncated tile list");
    }
    if (bits >> (height * width)) {
      throw std::runtime_error("parseRule: pattern exceeds the window");
    }
    patterns.push_back(bits);
    entries.emplace_back(bits, label);
  }
  rule.tileSet = tiles::TileSet(rule.shape, rule.k, patterns);
  if (rule.tileSet.size() != count) {
    throw std::runtime_error("parseRule: duplicate tile patterns");
  }
  rule.labelOf.assign(static_cast<std::size_t>(count), -1);
  for (auto [bits, label] : entries) {
    rule.labelOf[static_cast<std::size_t>(rule.tileSet.indexOf(bits))] = label;
  }
  return rule;
}

SynthesizedRule parseRuleString(const std::string& text) {
  std::istringstream in(text);
  return parseRule(in);
}

}  // namespace lclgrid::synthesis
